(* A realistic deductive-database application: role-based access control
   over an org chart — the kind of workload the paper's introduction has in
   mind when it argues that literal-order-dependent negation-as-failure is
   "unnatural and undesirable" for databases and that a declarative
   semantics is needed.

   The program uses recursion (management chains), stratified negation
   (revocations beat grants), goal-directed queries (magic sets),
   provenance ("why can eve read the ledger?") and incremental maintenance
   (an employee leaves).

   Run with:  dune exec examples/access_control.exe *)

let program =
  Negdl.Parser.parse_program_exn
    "% management chain: the transitive closure of manages/2\n\
     chain(X, Y) :- manages(X, Y).\n\
     chain(X, Y) :- manages(X, Z), chain(Z, Y).\n\
     % a grant flows down the chain unless revoked on the way\n\
     grant(U, R) :- granted(U, R).\n\
     grant(U, R) :- chain(M, U), granted(M, R).\n\
     access(U, R) :- grant(U, R), !revoked(U, R).\n\
     % dormant: users with no access at all\n\
     dormant(U) :- person(U), !has_any(U).\n\
     has_any(U) :- access(U, R)."

let db_text =
  "person(alice). person(bob). person(carol). person(dan). person(eve).\n\
   manages(alice, bob). manages(bob, carol). manages(bob, dan).\n\
   manages(alice, eve).\n\
   granted(alice, ledger). granted(bob, wiki). granted(eve, wiki).\n\
   revoked(dan, ledger).\n\
   #universe ledger wiki."

let db = Negdl.Database.parse_exn db_text

let show_relation name rel =
  Format.printf "  %-8s = %a@." name Negdl.Relation.pp rel

let () =
  Format.printf "Program:@.%a@.@." Negdl.Pretty.pp_program program;
  (match Negdl.Stratify.stratify program with
  | Negdl.Stratify.Stratified { strata; _ } ->
    Format.printf "Strata: %s@.@."
      (String.concat " < "
         (List.map (fun s -> "{" ^ String.concat ", " s ^ "}") strata))
  | Negdl.Stratify.Not_stratifiable _ | Negdl.Stratify.Not_limit_stratifiable _
    ->
    assert false);

  (* Stratified semantics is the intended reading here. *)
  let result =
    match Negdl.run Negdl.Semantics_stratified program db with
    | Ok r -> r.Negdl.facts
    | Error e -> failwith e
  in
  Format.printf "Access decisions (stratified semantics):@.";
  show_relation "access" (Negdl.Idb.get result "access");
  show_relation "dormant" (Negdl.Idb.get result "dormant");

  (* Goal-directed querying: who can read the ledger?  The chain/grant part
     of the program is positive, so magic sets apply to it. *)
  let positive_part =
    Negdl.Parser.parse_program_exn
      "chain(X, Y) :- manages(X, Y).\n\
       chain(X, Y) :- manages(X, Z), chain(Z, Y).\n\
       grant(U, R) :- granted(U, R).\n\
       grant(U, R) :- chain(M, U), granted(M, R)."
  in
  let goal = Negdl.Ast.atom "grant" [ Negdl.Ast.Var "U"; Negdl.Ast.const "ledger" ] in
  let grants =
    Negdl.Query.answer_exn positive_part db ~query:goal
  in
  Format.printf "@.Who is granted the ledger (magic-set query grant(U, ledger)):@.";
  Format.printf "  %a@." Negdl.Relation.pp grants;

  (* Provenance: why does carol have ledger access?  (alice granted it,
     alice manages bob manages carol.)  Under the inflationary semantics
     the derivation tree is the same here because the program's negations
     are not on the path. *)
  Format.printf "@.Why grant(carol, ledger)?@.";
  (match
     Negdl.Provenance.explain positive_part db ~pred:"grant"
       (Negdl.Tuple.of_strings [ "carol"; "ledger" ])
   with
  | Some j -> Format.printf "%s@." (Negdl.Provenance.to_string j)
  | None -> Format.printf "  (not derivable)@.");

  (* Incremental maintenance: bob leaves the company; his manages-edges
     disappear.  DRed repairs the chain without recomputing. *)
  let current = Negdl.Naive.least_fixpoint positive_part db in
  let delta =
    Negdl.Dred.delete_facts positive_part db ~current
      ~removals:
        [
          ("manages", Negdl.Tuple.of_strings [ "alice"; "bob" ]);
          ("manages", Negdl.Tuple.of_strings [ "bob"; "carol" ]);
          ("manages", Negdl.Tuple.of_strings [ "bob"; "dan" ]);
        ]
  in
  Format.printf
    "@.Bob leaves: %d chain/grant facts over-deleted, %d re-derived@."
    delta.Negdl.Dred.overdeleted delta.Negdl.Dred.rederived;
  Format.printf "  grants after the change: %a@." Negdl.Relation.pp
    (Negdl.Idb.get delta.Negdl.Dred.new_idb "grant");

  (* And the maintained result matches recomputation. *)
  let recomputed = Negdl.Naive.least_fixpoint positive_part delta.Negdl.Dred.new_db in
  Format.printf "  maintained = recomputed: %b@."
    (Negdl.Idb.equal delta.Negdl.Dred.new_idb recomputed)
