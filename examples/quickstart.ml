(* Quickstart: parse a DATALOG-not program, evaluate it under the paper's
   semantics, and poke at its fixpoint structure.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A program mixing recursion and negation: reachability from a source,
     and the complement of reachability (a stratified use of negation). *)
  let program =
    Negdl.Parser.parse_program_exn
      "reach(X) :- source(X).\n\
       reach(Y) :- reach(X), e(X, Y).\n\
       blocked(X) :- node(X), !reach(X)."
  in
  let db =
    Negdl.Database.parse_exn
      "source(a).\n\
       node(a). node(b). node(c). node(d).\n\
       e(a, b). e(b, c). % d is unreachable\n"
  in
  Format.printf "Program:@.%a@.@." Negdl.Pretty.pp_program program;
  Format.printf "Static check: %s@.@." (Negdl.Check.describe program);

  (* Evaluate under two semantics.  They disagree on [blocked]: the
     inflationary iteration fires !reach(X) at stage 1, when reach is still
     empty, so every node lands in blocked and stays (relations only grow);
     the stratified semantics finishes reach first and gets the intuitive
     answer {d}.  Exactly the kind of divergence Section 4 discusses. *)
  let eval semantics =
    match Negdl.run semantics program db with
    | Ok r -> r.Negdl.facts
    | Error e -> failwith e
  in
  let show label result =
    Format.printf "%s:@." label;
    List.iter
      (fun (name, rel) ->
        Format.printf "  %s = %a@." name Negdl.Relation.pp rel)
      (Negdl.Idb.bindings result)
  in
  show "Inflationary semantics (Section 4; total, but eager)"
    (eval Negdl.Semantics_inflationary);
  show "Stratified semantics (layers: reach, then blocked)"
    (eval Negdl.Semantics_stratified);

  (* This program is stratifiable, and on stratified programs the
     stratified semantics agrees with the well-founded one. *)
  (match Negdl.Stratify.stratify program with
  | Negdl.Stratify.Stratified { strata; _ } ->
    Format.printf "@.Strata: %s@."
      (String.concat " < "
         (List.map (fun s -> "{" ^ String.concat ", " s ^ "}") strata))
  | Negdl.Stratify.Not_stratifiable _ | Negdl.Stratify.Not_limit_stratifiable _
    ->
    assert false);

  (* Fixpoint structure (Section 3): this program has a unique fixpoint,
     which is therefore also its least one. *)
  let report = Negdl.analyze_fixpoints program db in
  Format.printf "@.Fixpoints: exists=%b unique=%b least=%s@."
    report.Negdl.has_fixpoint report.Negdl.unique
    (match report.Negdl.least with Some _ -> "yes" | None -> "no")
