(* Tests for the incremental materialization server: the snapshot after any
   sequence of insert/delete batches must fingerprint-identically match
   from-scratch stratified saturation (the differential oracle runs the same
   random op sequences through both paths, on both storage backends and at
   several pool sizes); the query cache must hit per version and miss across
   updates; snapshots pinned by a reader must be immune to concurrent
   writes; and the protocol layer must answer errors without dying. *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Serve = Evallib.Serve
module Stratified = Evallib.Stratified
module Idb = Evallib.Idb
module Query = Evallib.Query
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module Tuple = Relalg.Tuple
module Relation = Relalg.Relation
module Database = Relalg.Database

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let ok_or_fail = function Ok v -> v | Error e -> Alcotest.fail e

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let tc =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

(* Reachability with a negation-dependent complement: exercises all three
   DRed phases across a stratum boundary. *)
let reach =
  Parser.parse_program_exn
    "r(X, Y) :- e(X, Y). r(X, Y) :- e(X, Z), r(Z, Y). reached(Y) :- r(X, \
     Y). unreached(X) :- v(X), !reached(X)."

let vsym = Digraph.vertex_symbol
let edge u v = ("e", Tuple.pair (vsym u) (vsym v))

let with_vertices db n =
  List.fold_left
    (fun d i -> Database.add_fact "v" (Tuple.singleton (vsym i)) d)
    db
    (List.init n (fun i -> i))

let goal s =
  match Parser.parse_rule (s ^ ".") with
  | Ok { Ast.head; body = [] } -> head
  | Ok _ | Error _ -> Alcotest.failf "bad test goal %s" s

(* --- the serving state ---------------------------------------------------- *)

let test_create_and_query () =
  let db = Digraph.to_database (Generate.path 4) in
  let t = ok_or_fail (Serve.create tc db) in
  check int "initial version" 0 (Serve.version t);
  let rel = ok_or_fail (Serve.query t (goal "s(v0, Y)")) in
  check int "closure from v0" 3 (Relation.cardinal rel);
  (* EDB predicates are queryable too. *)
  let e = ok_or_fail (Serve.query t (goal "e(X, Y)")) in
  check int "edb relation" 3 (Relation.cardinal e);
  check bool "unknown predicate is an Error" true
    (Result.is_error (Serve.query t (goal "nope(X)")))

let test_update_maintains_model () =
  let db = Digraph.to_database (Generate.path 4) in
  let t = ok_or_fail (Serve.create tc db) in
  let r = ok_or_fail (Serve.insert t [ edge 3 0 ]) in
  check int "one fact inserted" 1 r.Serve.inserted;
  check bool "cycle closes the square" true
    (Idb.equal (Serve.snapshot t)
       (Stratified.eval_exn tc (Serve.database t)));
  let r = ok_or_fail (Serve.delete t [ edge 1 2 ]) in
  check int "one fact deleted" 1 r.Serve.deleted;
  check bool "overdeletion happened" true (r.Serve.overdeleted > 0);
  check bool "still matches recomputation" true
    (Idb.equal (Serve.snapshot t)
       (Stratified.eval_exn tc (Serve.database t)));
  check int "version bumped per batch" 2 (Serve.version t)

let test_update_validation_keeps_state () =
  let db = Digraph.to_database (Generate.path 3) in
  let t = ok_or_fail (Serve.create tc db) in
  let v = Serve.version t and idb = Serve.snapshot t in
  check bool "IDB insert rejected" true
    (Result.is_error (Serve.insert t [ ("s", Tuple.pair (vsym 0) (vsym 1)) ]));
  check bool "absent removal rejected" true
    (Result.is_error (Serve.delete t [ edge 2 0 ]));
  check bool "arity mismatch rejected" true
    (Result.is_error (Serve.insert t [ ("e", Tuple.singleton (vsym 0)) ]));
  check int "version unchanged" v (Serve.version t);
  check bool "snapshot unchanged" true (Idb.equal idb (Serve.snapshot t))

let test_query_cache () =
  let db = Digraph.to_database (Generate.path 4) in
  let t = ok_or_fail (Serve.create tc db) in
  ignore (ok_or_fail (Serve.query t (goal "s(v0, Y)")));
  ignore (ok_or_fail (Serve.query t (goal "s(v0, Y)")));
  let c = Serve.counters t in
  check int "second identical query hits" 1 c.Serve.cache_hits;
  check int "first was a miss" 1 c.Serve.cache_misses;
  (* An update bumps the version: the cached entry must go stale. *)
  ignore (ok_or_fail (Serve.insert t [ edge 3 0 ]));
  let rel = ok_or_fail (Serve.query t (goal "s(v0, Y)")) in
  check int "post-update answer is fresh" 4 (Relation.cardinal rel);
  let c = Serve.counters t in
  check int "update invalidated the entry" 2 c.Serve.cache_misses

let test_query_batch () =
  let db = Digraph.to_database (Generate.path 4) in
  let pool = Negdl_util.Domain_pool.create ~size:2 () in
  let t = ok_or_fail (Serve.create ~pool tc db) in
  let atoms =
    [ goal "s(v0, Y)"; goal "s(v1, Y)"; goal "s(v0, Y)"; goal "nope(X)" ]
  in
  (match Serve.query_all t atoms with
  | [ Ok a; Ok b; Ok a'; Error _ ] ->
    check int "s(v0, _)" 3 (Relation.cardinal a);
    check int "s(v1, _)" 2 (Relation.cardinal b);
    check bool "duplicate answered identically" true (Relation.equal a a')
  | _ -> Alcotest.fail "unexpected batch shape");
  Negdl_util.Domain_pool.shutdown pool

(* --- Query.select (regression: arity mismatch was a bare exception) ------- *)

let test_select_arity_and_diagonal () =
  let rel =
    Relation.of_list 2
      [
        Tuple.of_strings [ "a"; "a" ];
        Tuple.of_strings [ "a"; "b" ];
        Tuple.of_strings [ "b"; "b" ];
      ]
  in
  (match Query.select rel ~query:(goal "s(X)") with
  | Error msg ->
    check bool "message names both arities" true
      (String.length msg > 0
      && msg = "query atom s/1 does not match the stored relation s/2")
  | Ok _ -> Alcotest.fail "arity mismatch must be an Error");
  (* Repeated variables select the diagonal. *)
  let diag = ok_or_fail (Query.select rel ~query:(goal "s(X, X)")) in
  check int "diagonal" 2 (Relation.cardinal diag);
  let bound = ok_or_fail (Query.select rel ~query:(goal "s(a, Y)")) in
  check int "bound first column" 2 (Relation.cardinal bound)

(* --- snapshot isolation ---------------------------------------------------- *)

let test_snapshot_isolation () =
  (* A reader pins the snapshot, then a writer applies updates: the pinned
     values must not move, and fresh reads see the new state. *)
  let db = Digraph.to_database (Generate.path 4) in
  let t = ok_or_fail (Serve.create tc db) in
  let pinned = Serve.snapshot t in
  let before = Idb.fingerprint pinned in
  let writer =
    Domain.spawn (fun () ->
        ignore (ok_or_fail (Serve.insert t [ edge 3 0 ]));
        ignore (ok_or_fail (Serve.delete t [ edge 0 1 ])))
  in
  (* Concurrent reads of the pinned snapshot while the writer runs. *)
  for _ = 1 to 100 do
    check int "pinned snapshot never moves" before (Idb.fingerprint pinned)
  done;
  Domain.join writer;
  check int "pinned still identical after the writer" before
    (Idb.fingerprint pinned);
  check bool "fresh snapshot reflects the updates" true
    (Idb.equal (Serve.snapshot t)
       (Stratified.eval_exn tc (Serve.database t)))

(* --- the line protocol ----------------------------------------------------- *)

let reply t line =
  match Serve.handle_line t line with
  | Serve.Reply lines -> lines
  | Serve.Quit -> [ "<quit>" ]
  | Serve.Shutdown -> [ "<shutdown>" ]

let test_protocol () =
  (* Path v0->v1->v2 with v(v0..v2): only v0 is unreached.  Inserting
     e(v2, v3) brings a brand-new constant in with its fact; deleting it
     again overdeletes the whole chain it enabled. *)
  let db = with_vertices (Digraph.to_database (Generate.path 3)) 3 in
  let t = ok_or_fail (Serve.create reach db) in
  check (Alcotest.list Alcotest.string) "comments and blanks" []
    (reply t "% a comment" @ reply t "   ");
  check (Alcotest.list Alcotest.string) "insert replies with counts"
    [ "ok inserted=1 overdeleted=0 derived=4" ]
    (reply t "insert e(v2, v3).");
  check (Alcotest.list Alcotest.string) "delete replies with counts"
    [ "ok deleted=1 overdeleted=4 rederived=0" ]
    (reply t "delete e(v2, v3).");
  (match reply t "query unreached(X)" with
  | [ line ] ->
    check bool "v0 still unreached" true
      (contains ~needle:"v0" line)
  | _ -> Alcotest.fail "one answer line expected");
  (match reply t "query r(v0, Y); unreached(X)" with
  | [ _; _ ] -> ()
  | _ -> Alcotest.fail "two answer lines expected");
  check bool "unknown command is an error" true
    (match reply t "frobnicate" with
    | [ line ] -> contains ~needle:"error:" line
    | _ -> false);
  check bool "bad facts are an error" true
    (match reply t "insert e(v0" with
    | [ line ] -> contains ~needle:"error:" line
    | _ -> false);
  check bool "IDB insert is an error, session survives" true
    (match reply t "insert r(v0, v1)." with
    | [ line ] -> contains ~needle:"error:" line
    | _ -> false);
  (* Five core lines, plus the store-contention line whenever the hashed
     backend has touched the packed store (cumulative, so by this point in
     the session it has). *)
  let stats_reply = reply t "stats" in
  check bool "stats is five or six lines" true
    (List.length stats_reply = 5 || List.length stats_reply = 6);
  check bool "contention line present iff sixth" true
    (match List.rev stats_reply with
    | last :: _ when List.length stats_reply = 6 ->
      contains ~needle:"contention:" last
    | _ -> List.length stats_reply = 5);
  check (Alcotest.list Alcotest.string) "quit" [ "<quit>" ] (reply t "quit");
  check (Alcotest.list Alcotest.string) "shutdown" [ "<shutdown>" ]
    (reply t "shutdown")

let flatten_batch t lines =
  List.map
    (function
      | Serve.Reply ls -> ls
      | Serve.Quit -> [ "<quit>" ]
      | Serve.Shutdown -> [ "<shutdown>" ])
    (Serve.handle_batch t lines)

let test_batch_coalescing () =
  (* Three consecutive inserts are one DRed batch: one combined report,
     two "ok coalesced", and the batch counter moves by one.  A delete
     breaks the run.  Replies stay line-for-line positional. *)
  let db = with_vertices (Digraph.to_database (Generate.path 3)) 3 in
  let t = ok_or_fail (Serve.create reach db) in
  let replies =
    flatten_batch t
      [
        "insert e(v2, v3).";
        "insert e(v3, v4).";
        "insert e(v4, v0).";
        "delete e(v4, v0).";
        "query unreached(X)";
      ]
  in
  (match replies with
  | [ [ first ]; [ "ok coalesced" ]; [ "ok coalesced" ]; [ del ]; [ _q ] ] ->
    check bool "combined report counts all three" true
      (contains ~needle:"inserted=3" first);
    check bool "delete not merged into the insert run" true
      (contains ~needle:"deleted=1" del)
  | _ -> Alcotest.fail "unexpected reply shape");
  check int "two DRed batches for four write lines" 2
    (Serve.counters t).Serve.batches;
  (* A run of one is byte-identical to handle_line. *)
  let t2 = ok_or_fail (Serve.create reach db) in
  let batch_reply = flatten_batch t2 [ "insert e(v2, v3)." ] in
  let t3 = ok_or_fail (Serve.create reach db) in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "singleton run = handle_line" batch_reply
    [ reply t3 "insert e(v2, v3)." ];
  (* Unparseable write lines are not coalesced; a failing merged run
     answers error on every line; quit stops the batch. *)
  let t4 = ok_or_fail (Serve.create reach db) in
  let replies =
    flatten_batch t4
      [
        "insert e(v0";
        "delete e(v0, v9).";
        "delete e(v1, v9).";
        "quit";
        "query unreached(X)";
      ]
  in
  match replies with
  | [ [ bad ]; [ del1 ]; [ del2 ]; [ "<quit>" ] ] ->
    check bool "parse error answered alone" true
      (contains ~needle:"error:" bad);
    check bool "merged delete run fails on its first line" true
      (contains ~needle:"error:" del1);
    check bool "later lines of a failed run say coalesced" true
      (contains ~needle:"coalesced" del2)
  | _ -> Alcotest.fail "quit must end the batch before the query"

(* --- differential oracle ---------------------------------------------------
   Random op sequences through the incremental path vs from-scratch
   stratified saturation: after every batch the fingerprints must agree. *)

type op = Insert of int * int | Delete of int | Query of int

let pp_op = function
  | Insert (u, v) -> Printf.sprintf "ins(%d,%d)" u v
  | Delete i -> Printf.sprintf "del#%d" i
  | Query u -> Printf.sprintf "q(%d)" u

let gen_ops n =
  QCheck.Gen.(
    list_size (int_range 3 10)
      (frequency
         [
           ( 3,
             let* u = int_range 0 (n - 1) in
             let* v = int_range 0 (n - 1) in
             return (Insert (u, v)) );
           (3, map (fun i -> Delete i) (int_range 0 50));
           (2, map (fun u -> Query u) (int_range 0 (n - 1)));
         ]))

let current_edges t =
  match Database.relation "e" (Serve.database t) with
  | None -> []
  | Some rel -> List.rev (Relation.fold (fun tup acc -> tup :: acc) rel [])

(* Runs one op sequence through a server and checks the oracle after every
   mutation.  Returns true (QCheck property) or raises via Alcotest.fail. *)
let run_ops ~pool ~engine ~storage program db ops =
  let t = ok_or_fail (Serve.create ~engine ~storage ?pool program db) in
  List.iter
    (fun op ->
      (match op with
      | Insert (u, v) ->
        (* Inserting a present edge is rejected as a no-op batch only when
           validation fails; present-fact inserts are accepted and change
           nothing — both fine for the oracle. *)
        ignore (Serve.insert t [ edge u v ])
      | Delete i -> (
        match current_edges t with
        | [] -> ()
        | edges ->
          let tup = List.nth edges (i mod List.length edges) in
          ignore (ok_or_fail (Serve.delete t [ ("e", tup) ])))
      | Query u ->
        ignore (Serve.query t (goal (Printf.sprintf "r(v%d, Y)" u)));
        ignore (Serve.query t (goal (Printf.sprintf "unreached(v%d)" u))));
      let scratch = Stratified.eval_exn program (Serve.database t) in
      if Idb.fingerprint (Serve.snapshot t) <> Idb.fingerprint scratch then
        Alcotest.failf "fingerprint divergence after %s" (pp_op op);
      if not (Idb.equal (Serve.snapshot t) scratch) then
        Alcotest.failf "model divergence after %s" (pp_op op))
    ops;
  true

let prop_differential ~name ~engine ~storage ~pool_size =
  QCheck.Test.make ~name ~count:40
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 3 5 in
         let* seed = int_range 0 10_000 in
         let* ops = gen_ops n in
         return (n, seed, ops))
       ~print:(fun (n, seed, ops) ->
         Printf.sprintf "n=%d seed=%d ops=[%s]" n seed
           (String.concat "; " (List.map pp_op ops))))
    (fun (n, seed, ops) ->
      let db =
        with_vertices
          (Digraph.to_database (Generate.random ~seed ~n ~p:0.35))
          n
      in
      let pool =
        if pool_size = 0 then None
        else Some (Negdl_util.Domain_pool.create ~size:pool_size ())
      in
      let r = run_ops ~pool ~engine ~storage reach db ops in
      Option.iter Negdl_util.Domain_pool.shutdown pool;
      r)

let differential_props =
  [
    prop_differential ~name:"oracle: seminaive, hashed, par=1"
      ~engine:`Seminaive ~storage:`Hashed ~pool_size:0;
    prop_differential ~name:"oracle: seminaive, treeset, par=1"
      ~engine:`Seminaive ~storage:`Treeset ~pool_size:0;
    prop_differential ~name:"oracle: parallel, hashed, par=2"
      ~engine:`Parallel ~storage:`Hashed ~pool_size:1;
    prop_differential ~name:"oracle: parallel, hashed, par=4"
      ~engine:`Parallel ~storage:`Hashed ~pool_size:3;
    prop_differential ~name:"oracle: parallel, treeset, par=4"
      ~engine:`Parallel ~storage:`Treeset ~pool_size:3;
  ]

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "create and query" `Quick test_create_and_query;
          Alcotest.test_case "update maintains model" `Quick
            test_update_maintains_model;
          Alcotest.test_case "validation keeps state" `Quick
            test_update_validation_keeps_state;
          Alcotest.test_case "query cache" `Quick test_query_cache;
          Alcotest.test_case "query batch" `Quick test_query_batch;
          Alcotest.test_case "select arity and diagonal" `Quick
            test_select_arity_and_diagonal;
          Alcotest.test_case "snapshot isolation" `Quick
            test_snapshot_isolation;
          Alcotest.test_case "protocol" `Quick test_protocol;
          Alcotest.test_case "batch coalescing" `Quick test_batch_coalescing;
        ] );
      ("oracle", List.map QCheck_alcotest.to_alcotest differential_props);
    ]
