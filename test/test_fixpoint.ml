(* Tests for fixpoint search: the Section 2 census of pi_1's fixpoints on
   paths, cycles and disjoint unions of cycles, brute force vs the SAT
   encoding, and the least-fixpoint characterisation of Theorem 3. *)

open Fixpointlib
module Idb = Evallib.Idb
module Ground = Evallib.Ground
module Theta = Evallib.Theta
module Parser = Datalog.Parser
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let pi1 = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let pi3 =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let toggle = Parser.parse_program_exn "t(Z) :- !t(W)."

let db_of_graph g = Digraph.to_database g

let solve_of g = Solve.prepare pi1 (db_of_graph g)

let ground_of p g = Ground.ground p (db_of_graph g)

(* --- The paper's census (Section 2) ------------------------------------- *)

let test_path_unique_fixpoint () =
  (* On L_n the program pi_1 has a unique fixpoint: the even positions
     {2, 4, ...} in the paper's 1-based numbering = odd indices 0-based. *)
  for n = 1 to 7 do
    let g = Generate.path n in
    let ground = ground_of pi1 g in
    let fps = Brute.all_fixpoints ground in
    check int (Printf.sprintf "L%d has one fixpoint" n) 1 (List.length fps);
    let expected_vertices =
      List.filter (fun v -> v mod 2 = 1) (Digraph.vertices g)
    in
    let expected =
      List.fold_left
        (fun r v -> Relation.add (Tuple.singleton (Digraph.vertex_symbol v)) r)
        (Relation.empty 1) expected_vertices
    in
    match fps with
    | [ fp ] ->
      let t =
        if Idb.mem fp "t" then Idb.get fp "t" else Relation.empty 1
      in
      check bool
        (Printf.sprintf "L%d fixpoint = even positions" n)
        true
        (Relation.equal t expected)
    | _ -> Alcotest.fail "expected exactly one fixpoint"
  done

let test_cycle_census () =
  (* C_n: no fixpoint for odd n, exactly two for even n. *)
  for n = 2 to 9 do
    let expected = if n mod 2 = 0 then 2 else 0 in
    let count = Brute.count (ground_of pi1 (Generate.cycle n)) in
    check int (Printf.sprintf "C%d" n) expected count
  done

let test_even_cycle_fixpoints_incomparable () =
  let ground = ground_of pi1 (Generate.cycle 6) in
  match Brute.all_fixpoints ground with
  | [ a; b ] ->
    check bool "incomparable" true
      ((not (Idb.subset a b)) && not (Idb.subset b a))
  | _ -> Alcotest.fail "expected two fixpoints"

let test_disjoint_cycles_exponential () =
  (* k disjoint copies of C_4 give 2^k pairwise incomparable fixpoints and
     no least fixpoint (the paper's G_n, with C_4 instead of C_n to keep the
     atom count small). *)
  for k = 1 to 3 do
    let g = Generate.disjoint_copies k (Generate.cycle 4) in
    let ground = ground_of pi1 g in
    let fps = Brute.all_fixpoints ground in
    check int (Printf.sprintf "2^%d fixpoints" k) (1 lsl k) (List.length fps);
    check bool "no least fixpoint" true (Brute.least ground = None);
    (* All pairwise incomparable. *)
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if not (Idb.equal a b) then
              check bool "incomparable" false (Idb.subset a b))
          fps)
      fps
  done

let test_exact_census_matches_enumeration () =
  List.iter
    (fun g ->
      let solver = solve_of g in
      match Solve.count_exact solver with
      | Satlib.Outcome.Lower_bound _ -> Alcotest.fail "budget should suffice"
      | Satlib.Outcome.Exact n ->
        check int "exact = enumerated" (Solve.count solver) n)
    [
      Generate.path 5;
      Generate.cycle 4;
      Generate.cycle 5;
      Generate.disjoint_copies 3 (Generate.cycle 4);
      Generate.star 4;
    ]

let test_exact_census_scales_to_big_gn () =
  (* 10 disjoint C_4's: 2^10 fixpoints counted without enumerating them
     (the component decomposition mirrors the graph's disjointness). *)
  let g = Generate.disjoint_copies 10 (Generate.cycle 4) in
  match Solve.count_exact (solve_of g) with
  | Satlib.Outcome.Exact n -> check int "2^10" 1024 n
  | Satlib.Outcome.Lower_bound _ -> Alcotest.fail "components keep this cheap"

(* --- Brute force vs SAT -------------------------------------------------- *)

let test_sat_agrees_with_brute_on_census () =
  let graphs =
    [
      Generate.path 3;
      Generate.path 5;
      Generate.cycle 3;
      Generate.cycle 4;
      Generate.cycle 5;
      Generate.cycle 6;
      Generate.disjoint_copies 2 (Generate.cycle 4);
      Generate.star 4;
      Generate.complete 3;
    ]
  in
  List.iter
    (fun g ->
      let ground = ground_of pi1 g in
      let solve = solve_of g in
      check int "counts agree" (Brute.count ground) (Solve.count solve);
      check bool "existence agrees" (Brute.exists ground) (Solve.exists solve);
      check bool "uniqueness agrees" (Brute.has_unique ground)
        (Solve.has_unique solve))
    graphs

let test_sat_agrees_on_random_graphs () =
  List.iter
    (fun seed ->
      let g = Generate.random ~seed ~n:5 ~p:0.3 in
      let ground = ground_of pi1 g in
      let solve = solve_of g in
      check int
        (Printf.sprintf "count seed %d" seed)
        (Brute.count ground) (Solve.count solve))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_found_fixpoints_check_out () =
  List.iter
    (fun seed ->
      let g = Generate.random ~seed:(50 + seed) ~n:5 ~p:0.35 in
      let db = db_of_graph g in
      let solve = Solve.prepare pi1 db in
      List.iter
        (fun fp ->
          check bool "is a fixpoint" true (Theta.is_fixpoint pi1 db fp))
        (Solve.enumerate solve))
    [ 1; 2; 3; 4; 5 ]

(* --- Least fixpoints (Theorem 3) ----------------------------------------- *)

let test_least_on_positive_program () =
  (* A positive program always has a least fixpoint, and it is the naive
     evaluation result. *)
  List.iter
    (fun seed ->
      let g = Generate.random ~seed:(80 + seed) ~n:4 ~p:0.4 in
      let db = db_of_graph g in
      let solve = Solve.prepare pi3 db in
      match Solve.least solve with
      | None -> Alcotest.fail "positive program must have a least fixpoint"
      | Some lfp ->
        check bool "least = naive lfp" true
          (Idb.equal lfp (Evallib.Naive.least_fixpoint pi3 db)))
    [ 1; 2; 3 ]

let test_least_agrees_with_brute () =
  let graphs =
    [
      Generate.path 4;
      Generate.cycle 4;
      Generate.cycle 5;
      Generate.disjoint_copies 2 (Generate.cycle 4);
    ]
  in
  List.iter
    (fun g ->
      let ground = ground_of pi1 g in
      let solve = solve_of g in
      let brute = Brute.least ground in
      let sat = Solve.least solve in
      match (brute, sat) with
      | None, None -> ()
      | Some a, Some b -> check bool "least agree" true (Idb.equal a b)
      | _ -> Alcotest.fail "least-fixpoint existence disagrees")
    graphs

let test_unique_fixpoint_is_least () =
  (* On a path the unique fixpoint is trivially the least one. *)
  let solve = solve_of (Generate.path 5) in
  check bool "unique" true (Solve.has_unique solve);
  check bool "least exists" true (Solve.least solve <> None)

let test_even_cycle_no_least_but_minimal () =
  let solve = solve_of (Generate.cycle 4) in
  check bool "no least" true (Solve.least solve = None);
  match Solve.minimal solve with
  | None -> Alcotest.fail "C4 has fixpoints"
  | Some m ->
    (* A minimal fixpoint of pi_1 on C_4 has exactly 2 elements. *)
    check int "minimal size" 2 (Idb.total_cardinal m)

let test_intersection_on_even_cycle () =
  (* The two fixpoints on C_4 are disjoint, so the intersection is empty —
     and empty is not a fixpoint (every vertex has a predecessor). *)
  let solve = solve_of (Generate.cycle 4) in
  match Solve.intersection solve with
  | None -> Alcotest.fail "C4 has fixpoints"
  | Some inter -> check int "empty intersection" 0 (Idb.total_cardinal inter)

(* --- Toggle rule --------------------------------------------------------- *)

let test_toggle_no_fixpoint () =
  (* T(z) <- !T(w) has no fixpoint on any nonempty universe. *)
  for n = 1 to 4 do
    let db = Relalg.Database.create_ints n in
    let solve = Solve.prepare toggle db in
    check bool (Printf.sprintf "toggle n=%d" n) false (Solve.exists solve);
    check bool "brute agrees" false (Brute.exists (Ground.ground toggle db))
  done

let test_conditional_toggle () =
  (* T(z) <- !Q(u), !T(w) with Q IDB but underivable: still no fixpoint.
     With Q covering the universe (via an EDB copy rule), T = empty works. *)
  let p = Parser.parse_program_exn "q(X) :- base(X). t(Z) :- !q(U), !t(W)." in
  let full =
    Relalg.Database.of_facts ~universe:[ "a"; "b" ]
      [ ("base", [ "a" ]); ("base", [ "b" ]) ]
  in
  let partial =
    Relalg.Database.of_facts ~universe:[ "a"; "b" ] [ ("base", [ "a" ]) ]
  in
  check bool "full coverage: fixpoint exists" true
    (Solve.exists (Solve.prepare p full));
  check bool "gap in q: no fixpoint" false
    (Solve.exists (Solve.prepare p partial))

(* --- Minimal fixpoints --------------------------------------------------- *)

let test_minimal_is_fixpoint_and_minimal () =
  let g = Generate.disjoint_copies 2 (Generate.cycle 4) in
  let db = db_of_graph g in
  let solve = Solve.prepare pi1 db in
  match Solve.minimal solve with
  | None -> Alcotest.fail "fixpoints exist"
  | Some m ->
    check bool "is fixpoint" true (Theta.is_fixpoint pi1 db m);
    let all = Brute.all_fixpoints (Ground.ground pi1 db) in
    check bool "nothing strictly below" true
      (not
         (List.exists
            (fun s -> (not (Idb.equal s m)) && Idb.subset s m)
            all))

let test_brute_minimal_census () =
  (* On 2 disjoint C_4's all four fixpoints are minimal. *)
  let g = Generate.disjoint_copies 2 (Generate.cycle 4) in
  let ground = ground_of pi1 g in
  check int "all minimal" 4 (List.length (Brute.minimal_fixpoints ground))

(* --- Parallel search: differential battery and determinism --------------- *)

let option_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

(* Random DATALOG-not programs: the whole Section 3 query suite, answered
   through the SAT encoding at every parallelism level, must agree with
   brute-force enumeration of all fixpoints. *)
let prop_parallel_matches_brute =
  QCheck.Test.make
    ~name:"differential: exists/census/least/intersection = brute, par 1/2/4"
    ~count:500 ~max_gen:100_000 Testsupport.Gen_programs.arb_case
    (fun (p, db) ->
      let ground = Ground.ground p db in
      QCheck.assume (Ground.atom_count ground <= 10);
      let fps = Brute.all_fixpoints ground in
      let expected_count = List.length fps in
      let expected_least = Brute.least ground in
      let expected_inter =
        match fps with
        | [] -> None
        | first :: rest -> Some (List.fold_left Idb.inter first rest)
      in
      let s = Solve.prepare p db in
      (* Existence and exact census at every parallelism level; the
         par-independent queries (enumerated census, least, intersection)
         once. *)
      List.for_all
        (fun par ->
          let mode = if par >= 2 then `Portfolio par else `Sequential in
          Solve.exists ~mode s = (fps <> [])
          &&
          match Solve.count_exact ~budget:500_000 ~par s with
          | Satlib.Outcome.Exact n -> n = expected_count
          | Satlib.Outcome.Lower_bound _ -> false)
        [ 1; 2; 4 ]
      && Solve.count s = expected_count
      && option_equal Idb.equal (Solve.least s) expected_least
      && option_equal Idb.equal (Solve.intersection s) expected_inter)

let test_census_deterministic_across_parallelism () =
  (* Parallelism must never change an answer, only how it is searched for:
     census, uniqueness and existence are bit-identical for par 1, 2 and 8
     on the E1-E8 graph workloads (single components take the
     cube-and-conquer path at par >= 2, disjoint unions the
     component-parallel one — both must reproduce the sequential count). *)
  let cases =
    [
      ("path 6", solve_of (Generate.path 6));
      ("cycle 5", solve_of (Generate.cycle 5));
      ("cycle 6", solve_of (Generate.cycle 6));
      ("8 x C4", solve_of (Generate.disjoint_copies 8 (Generate.cycle 4)));
      ("star 5", solve_of (Generate.star 5));
      ("complete 3", solve_of (Generate.complete 3));
      ("random", solve_of (Generate.random ~seed:3 ~n:5 ~p:0.3));
    ]
  in
  List.iter
    (fun (label, s) ->
      let snapshot par =
        let mode = if par >= 2 then `Portfolio par else `Sequential in
        ( Solve.count_exact ~budget:1_000_000 ~par s,
          Solve.has_unique s,
          Solve.exists ~mode s )
      in
      let reference = snapshot 1 in
      List.iter
        (fun par ->
          check bool
            (Printf.sprintf "%s: par %d = par 1" label par)
            true
            (snapshot par = reference))
        [ 2; 8 ])
    cases

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_parallel_matches_brute ]

let () =
  Alcotest.run "fixpoint"
    [
      ( "census",
        [
          Alcotest.test_case "path unique" `Quick test_path_unique_fixpoint;
          Alcotest.test_case "cycle parity" `Quick test_cycle_census;
          Alcotest.test_case "even cycle incomparable" `Quick
            test_even_cycle_fixpoints_incomparable;
          Alcotest.test_case "disjoint cycles 2^k" `Quick
            test_disjoint_cycles_exponential;
          Alcotest.test_case "exact census" `Quick
            test_exact_census_matches_enumeration;
          Alcotest.test_case "exact census scales" `Quick
            test_exact_census_scales_to_big_gn;
        ] );
      ( "sat-vs-brute",
        [
          Alcotest.test_case "census graphs" `Quick
            test_sat_agrees_with_brute_on_census;
          Alcotest.test_case "random graphs" `Quick
            test_sat_agrees_on_random_graphs;
          Alcotest.test_case "models are fixpoints" `Quick
            test_found_fixpoints_check_out;
        ] );
      ( "least",
        [
          Alcotest.test_case "positive program" `Quick
            test_least_on_positive_program;
          Alcotest.test_case "agrees with brute" `Quick
            test_least_agrees_with_brute;
          Alcotest.test_case "unique implies least" `Quick
            test_unique_fixpoint_is_least;
          Alcotest.test_case "even cycle minimal" `Quick
            test_even_cycle_no_least_but_minimal;
          Alcotest.test_case "intersection" `Quick
            test_intersection_on_even_cycle;
        ] );
      ( "toggle",
        [
          Alcotest.test_case "no fixpoint" `Quick test_toggle_no_fixpoint;
          Alcotest.test_case "conditional" `Quick test_conditional_toggle;
        ] );
      ( "minimal",
        [
          Alcotest.test_case "solve minimal" `Quick
            test_minimal_is_fixpoint_and_minimal;
          Alcotest.test_case "brute census" `Quick test_brute_minimal_census;
        ] );
      ( "parallel",
        Alcotest.test_case "determinism across par" `Quick
          test_census_deterministic_across_parallelism
        :: qcheck_tests );
    ]
