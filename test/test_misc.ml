(* Edge-case tests that cut across modules: the Idb valuation algebra,
   empty and degenerate universes, digit-initial constants (the {0,1}
   domain of Theorem 4), 0-ary predicates end to end, and schema
   handling. *)

module Idb = Evallib.Idb
module Parser = Datalog.Parser
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Schema = Relalg.Schema
module Database = Relalg.Database

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Idb algebra ------------------------------------------------------------ *)

let schema2 = Schema.of_list [ ("p", 1); ("q", 2) ]

let idb_of facts =
  List.fold_left
    (fun idb (pred, args) -> Idb.add_fact idb pred (Tuple.of_strings args))
    (Idb.empty schema2) facts

let test_idb_set_arity_guard () =
  let idb = Idb.empty schema2 in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Idb.set: p has arity 1, relation has arity 2")
    (fun () -> ignore (Idb.set idb "p" (Relation.empty 2)))

let test_idb_union_diff_inter () =
  let a = idb_of [ ("p", [ "x" ]); ("q", [ "x"; "y" ]) ] in
  let b = idb_of [ ("p", [ "x" ]); ("p", [ "y" ]) ] in
  check int "union" 3 (Idb.total_cardinal (Idb.union a b));
  check int "diff" 1 (Idb.total_cardinal (Idb.diff a b));
  check int "inter" 1 (Idb.total_cardinal (Idb.inter a b));
  check bool "subset" true (Idb.subset (Idb.inter a b) a);
  check bool "not subset" false (Idb.subset b a)

let test_idb_equal_ignores_missing_empties () =
  (* A missing predicate counts as empty for equality. *)
  let narrow = Idb.empty (Schema.of_list [ ("p", 1) ]) in
  let wide = Idb.empty schema2 in
  check bool "both empty" true (Idb.equal narrow wide)

let test_idb_restrict_and_to_database () =
  let a = idb_of [ ("p", [ "x" ]); ("q", [ "x"; "y" ]) ] in
  let only_p = Idb.restrict [ "p" ] a in
  check bool "q gone" false (Idb.mem only_p "q");
  let db = Database.create_strings [ "x"; "y" ] in
  let db' = Idb.to_database a db in
  check bool "facts exposed" true
    (Database.mem_fact "q" (Tuple.of_strings [ "x"; "y" ]) db')

(* --- degenerate universes ----------------------------------------------------- *)

let test_empty_universe () =
  (* No constants at all: every relation is empty under every semantics,
     and the toggle rule vacuously has the empty fixpoint. *)
  let db = Database.create ~universe:[] in
  let toggle = Parser.parse_program_exn "t(Z) :- !t(W)." in
  let result = Evallib.Inflationary.eval toggle db in
  check bool "inflationary empty" true (Idb.is_empty result);
  let solver = Fixpointlib.Solve.prepare toggle db in
  check bool "empty valuation is a fixpoint" true (Fixpointlib.Solve.exists solver);
  check int "exactly one" 1 (Fixpointlib.Solve.count solver)

let test_singleton_universe () =
  let db = Database.create_strings [ "a" ] in
  let toggle = Parser.parse_program_exn "t(Z) :- !t(W)." in
  check bool "no fixpoint on one constant" false
    (Fixpointlib.Solve.exists (Fixpointlib.Solve.prepare toggle db));
  check int "inflationary saturates" 1
    (Idb.total_cardinal (Evallib.Inflationary.eval toggle db))

(* --- digit-initial constants (the {0,1} domain) -------------------------------- *)

let test_digit_constants_parse () =
  let p = Parser.parse_program_exn "g(1, X) :- h(X, 0)." in
  match (List.hd p.Datalog.Ast.rules).Datalog.Ast.head.Datalog.Ast.args with
  | [ Datalog.Ast.Const c; Datalog.Ast.Var "X" ] ->
    check Alcotest.string "constant 1" "1" (Relalg.Symbol.name c)
  | _ -> Alcotest.fail "unexpected head shape"

let test_digit_constants_evaluate () =
  let p = Parser.parse_program_exn "flip(X, Y) :- bit(X), bit(Y), X != Y." in
  let db =
    Database.of_facts ~universe:[] [ ("bit", [ "0" ]); ("bit", [ "1" ]) ]
  in
  let result = Evallib.Inflationary.eval p db in
  check int "two flips" 2 (Relation.cardinal (Idb.get result "flip"))

(* --- 0-ary predicates end to end ----------------------------------------------- *)

let test_zero_ary_pipeline () =
  (* 0-ary IDB flag driven by a unary EDB, with negation. *)
  let p =
    Parser.parse_program_exn
      "nonempty :- mark(X). empty :- !nonempty. out(X) :- elem(X), empty."
  in
  let db_marked =
    Database.of_facts ~universe:[ "a" ] [ ("mark", [ "a" ]); ("elem", [ "a" ]) ]
  in
  let db_unmarked = Database.of_facts ~universe:[ "a" ] [ ("elem", [ "a" ]) ] in
  let strat db = Evallib.Stratified.eval_exn p db in
  check bool "marked: out empty" true
    (Relation.is_empty (Idb.get (strat db_marked) "out"));
  check int "unmarked: out = elem" 1
    (Relation.cardinal (Idb.get (strat db_unmarked) "out"));
  (* The 0-ary atoms also survive grounding and SAT encoding. *)
  let solver = Fixpointlib.Solve.prepare p db_unmarked in
  check bool "fixpoint exists" true (Fixpointlib.Solve.exists solver)

(* --- schema inference corner cases ---------------------------------------------- *)

let test_idb_schema_of_head_only_predicate () =
  (* A predicate appearing only in heads still lands in the IDB schema with
     the right arity. *)
  let p = Parser.parse_program_exn "a(X, Y) :- e(X, Y)." in
  match Datalog.Ast.idb_schema p with
  | Ok s -> check (Alcotest.option int) "a/2" (Some 2) (Schema.arity "a" s)
  | Error e -> Alcotest.fail e

let test_database_relation_or_empty_arity () =
  let db = Database.create_strings [ "a" ] in
  let r = Database.relation_or_empty ~arity:3 "ghost" db in
  check int "requested arity" 3 (Relation.arity r);
  check bool "empty" true (Relation.is_empty r)

(* --- saturate from a non-empty seed ---------------------------------------------- *)

let test_saturate_from_seed () =
  (* Seeding the iteration with facts must behave like inserting them:
     the closure grows from the seed. *)
  let tc =
    Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."
  in
  let db = Graphlib.Digraph.to_database (Graphlib.Generate.path 3) in
  let schema =
    match Datalog.Ast.idb_schema tc with Ok s -> s | Error e -> failwith e
  in
  let seed =
    Idb.add_fact (Idb.empty schema) "s"
      (Tuple.of_strings [ "v2"; "v0" ])  (* a fake back edge *)
  in
  let trace =
    Evallib.Saturate.run ~rules:tc.Datalog.Ast.rules ~schema
      ~universe:(Database.universe db)
      ~base:(Evallib.Engine.database_source db)
      ~neg:`Current ~init:seed ()
  in
  let s = Idb.get trace.Evallib.Saturate.result "s" in
  (* With the fake s(v2, v0) seeded, e(v1, v2) extends it to s(v1, v0). *)
  check bool "seed is kept" true (Relation.mem (Tuple.of_strings [ "v2"; "v0" ]) s);
  check bool "seed is extended" true
    (Relation.mem (Tuple.of_strings [ "v1"; "v0" ]) s)

let test_stage_of_absent () =
  let tc = Parser.parse_program_exn "s(X, Y) :- e(X, Y)." in
  let db = Graphlib.Digraph.to_database (Graphlib.Generate.path 2) in
  let trace = Evallib.Inflationary.eval_trace tc db in
  check (Alcotest.option int) "absent tuple has no stage" None
    (Evallib.Saturate.stage_of trace "s" (Tuple.of_strings [ "v1"; "v0" ]))

(* --- bounded equivalence checking ------------------------------------------------ *)

let infl = Evallib.Inflationary.eval

let test_equiv_identical_programs () =
  let p = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  match Evallib.Equiv.equivalent_up_to ~eval:infl ~edb:[ ("e", 2) ] p p with
  | Ok checked -> check bool "checked many" true (checked >= 16)
  | Error _ -> Alcotest.fail "a program equals itself"

let test_equiv_detects_difference () =
  (* t <- e(Y,X) vs t <- e(X,Y): differ on asymmetric edge relations. *)
  let p = Parser.parse_program_exn "t(X) :- e(Y, X)." in
  let q = Parser.parse_program_exn "t(X) :- e(X, Y)." in
  match Evallib.Equiv.equivalent_up_to ~eval:infl ~edb:[ ("e", 2) ] p q with
  | Ok _ -> Alcotest.fail "programs differ"
  | Error cex ->
    (* The counterexample really separates them. *)
    check bool "left <> right" false
      (Relation.equal
         (Idb.get cex.Evallib.Equiv.left "t")
         (Idb.get cex.Evallib.Equiv.right "t"))

let test_equiv_simplify_exhaustively () =
  (* Default simplification is inflationary-equivalent on every database up
     to size 2 for a mildly redundant program. *)
  let p =
    Parser.parse_program_exn
      "a(X) :- e(X, Y), e(X, Y), X = X.\n\
       a(X) :- e(X, Y).\n\
       b(X) :- a(X), !e(X, X), Y != Y."
  in
  let q = Datalog.Transform.simplify p in
  match Evallib.Equiv.equivalent_up_to ~eval:infl ~edb:[ ("e", 2) ] p q with
  | Ok checked -> check bool "all small dbs" true (checked > 0)
  | Error _ -> Alcotest.fail "simplify must preserve semantics"

let test_equiv_prop1_roundtrip_exhaustively () =
  let p = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  let q =
    Reductions.Prop1.program_of_operators_exn
      (Reductions.Prop1.operators_of_program p)
  in
  match Evallib.Equiv.equivalent_up_to ~eval:infl ~edb:[ ("e", 2) ] p q with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Prop 1 round-trip must preserve semantics"

let test_databases_over_count () =
  let universe = [ Relalg.Symbol.intern "k0" ] in
  (* u/1 over one constant: 2 relations; e/2: 2 relations; 4 combinations. *)
  check int "4 databases" 4
    (List.length (Evallib.Equiv.databases_over ~universe [ ("u", 1); ("e", 2) ]))

(* --- Prng: rejection sampling kills the modulo bias ------------------------------ *)

let test_prng_bounds_and_determinism () =
  let rng = Negdl_util.Prng.create 42 in
  for _ = 1 to 1000 do
    let v = Negdl_util.Prng.int rng 7 in
    check bool "in range" true (v >= 0 && v < 7)
  done;
  let a = Negdl_util.Prng.create 9 and b = Negdl_util.Prng.create 9 in
  for _ = 1 to 100 do
    check int "same stream" (Negdl_util.Prng.int a 1000) (Negdl_util.Prng.int b 1000)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument
    "Prng.int: bound must be positive")
    (fun () -> ignore (Negdl_util.Prng.int rng 0))

let test_prng_no_modulo_bias () =
  (* With bound = 3 * 2^60, plain [raw mod bound] on a 62-bit non-negative
     raw would land in [0, 2^60) with probability ~1/2 (the wrapped
     remainder doubles up that low range) instead of the uniform 1/3.
     Rejection sampling must restore ~1/3. *)
  let bound = 3 * (1 lsl 60) in
  let cut = 1 lsl 60 in
  let rng = Negdl_util.Prng.create 1234 in
  let draws = 10_000 in
  let low = ref 0 in
  for _ = 1 to draws do
    if Negdl_util.Prng.int rng bound < cut then incr low
  done;
  let fraction = float_of_int !low /. float_of_int draws in
  (* 1/3 +- 5 sigma (sigma ~ 0.0047); the biased version gives ~0.5. *)
  check bool
    (Printf.sprintf "low-range fraction %.4f is ~1/3" fraction)
    true
    (fraction > 0.309 &&
     fraction < 0.357)

(* --- Domain_pool ------------------------------------------------------------------ *)

let test_domain_pool_run () =
  let pool = Negdl_util.Domain_pool.create ~size:2 () in
  let jobs = List.init 20 (fun i -> fun () -> i * i) in
  check (Alcotest.list int) "order-preserving barrier"
    (List.init 20 (fun i -> i * i))
    (Negdl_util.Domain_pool.run pool jobs);
  (* Reusable after a run, and after an explicit shutdown. *)
  check (Alcotest.list int) "reusable" [ 1; 2 ]
    (Negdl_util.Domain_pool.run pool [ (fun () -> 1); (fun () -> 2) ]);
  Negdl_util.Domain_pool.shutdown pool;
  check (Alcotest.list int) "respawns after shutdown" [ 7; 8; 9 ]
    (Negdl_util.Domain_pool.run pool
       [ (fun () -> 7); (fun () -> 8); (fun () -> 9) ]);
  Negdl_util.Domain_pool.shutdown pool

let test_domain_pool_exception () =
  let pool = Negdl_util.Domain_pool.create ~size:1 () in
  Alcotest.check_raises "first exception re-raised" (Failure "job 1")
    (fun () ->
      ignore
        (Negdl_util.Domain_pool.run pool
           [ (fun () -> 0); (fun () -> failwith "job 1"); (fun () -> 2) ]));
  (* The pool survives a failing batch. *)
  check (Alcotest.list int) "still works" [ 5 ]
    (Negdl_util.Domain_pool.run pool [ (fun () -> 5) ]);
  Negdl_util.Domain_pool.shutdown pool

let test_domain_pool_inline () =
  (* Size 0: everything runs on the calling domain, no spawn. *)
  let pool = Negdl_util.Domain_pool.create ~size:0 () in
  check int "size" 0 (Negdl_util.Domain_pool.size pool);
  check (Alcotest.list int) "inline execution" [ 2; 4; 6 ]
    (Negdl_util.Domain_pool.run pool
       [ (fun () -> 2); (fun () -> 4); (fun () -> 6) ])

let test_domain_pool_order_under_skew () =
  (* Regression: results must come back in job order even when later jobs
     finish first.  Make the first job the slowest so any
     completion-ordered implementation would scramble the list. *)
  let pool = Negdl_util.Domain_pool.create ~size:3 () in
  let jobs =
    List.init 8 (fun i ->
        fun () ->
          Unix.sleepf (float_of_int (8 - i) *. 0.002);
          i)
  in
  check (Alcotest.list int) "job order, not completion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Negdl_util.Domain_pool.run pool jobs);
  Negdl_util.Domain_pool.shutdown pool

let test_domain_pool_run_morsels () =
  let pool = Negdl_util.Domain_pool.create ~size:2 () in
  let morsels = 37 in
  let results, report =
    Negdl_util.Domain_pool.run_morsels pool ~morsels (fun _p i -> i)
  in
  (* Every morsel index executed exactly once, results in morsel order. *)
  check (Alcotest.array int) "all indices, in order"
    (Array.init morsels Fun.id) results;
  check int "participants" 3 report.Negdl_util.Domain_pool.participants;
  check int "executed sums to morsels" morsels
    (Array.fold_left ( + ) 0 report.Negdl_util.Domain_pool.executed);
  check bool "steals non-negative" true
    (report.Negdl_util.Domain_pool.steals >= 0);
  (* Edge cases: zero morsels, one morsel, and more participants than
     morsels. *)
  let empty, r0 = Negdl_util.Domain_pool.run_morsels pool ~morsels:0 (fun _ i -> i) in
  check int "zero morsels" 0 (Array.length empty);
  check int "zero morsels executed" 0
    (Array.fold_left ( + ) 0 r0.Negdl_util.Domain_pool.executed);
  let one, r1 = Negdl_util.Domain_pool.run_morsels pool ~morsels:1 (fun _ i -> i * 10) in
  check (Alcotest.array int) "one morsel" [| 0 |] one;
  check int "one participant for one morsel" 1
    r1.Negdl_util.Domain_pool.participants;
  Negdl_util.Domain_pool.shutdown pool

let test_domain_pool_run_morsels_inline () =
  (* Pool of size 0: the inline path must behave identically. *)
  let pool = Negdl_util.Domain_pool.create ~size:0 () in
  let results, report =
    Negdl_util.Domain_pool.run_morsels pool ~morsels:5 (fun p i ->
        check int "single participant" 0 p;
        i + 1)
  in
  check (Alcotest.array int) "inline results" [| 1; 2; 3; 4; 5 |] results;
  check int "inline participants" 1 report.Negdl_util.Domain_pool.participants;
  check int "inline steals" 0 report.Negdl_util.Domain_pool.steals

let test_domain_pool_run_morsels_exception () =
  let pool = Negdl_util.Domain_pool.create ~size:1 () in
  Alcotest.check_raises "first failing morsel re-raised" (Failure "morsel 3")
    (fun () ->
      ignore
        (Negdl_util.Domain_pool.run_morsels pool ~morsels:6 (fun _ i ->
             if i = 3 then failwith "morsel 3" else i)));
  (* The pool survives a failing batch. *)
  let ok, _ = Negdl_util.Domain_pool.run_morsels pool ~morsels:2 (fun _ i -> i) in
  check (Alcotest.array int) "still works" [| 0; 1 |] ok;
  Negdl_util.Domain_pool.shutdown pool

let test_domain_pool_concurrent_first_run () =
  (* Regression: [ensure_started] used to check [t.workers = []] outside
     the mutex, so two domains hitting a fresh pool simultaneously could
     both observe the empty list and both spawn a full worker set —
     leaking domains that [shutdown] never joins.  Race several first
     callers against a fresh pool and count what actually got spawned. *)
  for _round = 1 to 5 do
    let pool = Negdl_util.Domain_pool.create ~size:3 () in
    let callers =
      List.init 4 (fun c ->
          Domain.spawn (fun () ->
              Negdl_util.Domain_pool.run pool
                (List.init 8 (fun i -> fun () -> (c * 100) + i))))
    in
    let results = List.map Domain.join callers in
    List.iteri
      (fun c r ->
        check (Alcotest.list int) "each caller gets its own results in order"
          (List.init 8 (fun i -> (c * 100) + i))
          r)
      results;
    check int "exactly one worker set spawned" 3
      (Negdl_util.Domain_pool.worker_count pool);
    Negdl_util.Domain_pool.shutdown pool
  done

(* --- Relation: persistent column indexes ----------------------------------------- *)

let test_relation_index_incremental () =
  let tup a b = Tuple.of_strings [ a; b ] in
  let r =
    Relation.of_list 2 [ tup "a" "b"; tup "a" "c"; tup "b" "c" ]
  in
  let sym = Relalg.Symbol.intern in
  (* Build the column-0 index, then extend the relation: the derived
     relation must see the new tuple through the same index without a
     rebuild. *)
  check int "matching a" 2 (List.length (Relation.matching 0 (sym "a") r));
  check bool "index built" true (Relation.has_index r 0);
  let r' = Relation.add (tup "a" "d") r in
  check bool "index carried over" true (Relation.has_index r' 0);
  check int "matching a after add" 3
    (List.length (Relation.matching 0 (sym "a") r'));
  check int "original unchanged" 2
    (List.length (Relation.matching 0 (sym "a") r));
  (* Union maintains the bigger side's indexes incrementally. *)
  let extra = Relation.of_list 2 [ tup "a" "e"; tup "c" "a" ] in
  let u = Relation.union r' extra in
  check int "matching a after union" 4
    (List.length (Relation.matching 0 (sym "a") u));
  check int "matching c after union" 1
    (List.length (Relation.matching 0 (sym "c") u));
  (* A derived relation with different tuples must not share stale
     indexes. *)
  let filtered = Relation.filter (fun t -> Tuple.get t 0 = sym "a") u in
  check bool "fresh memo on filter" false (Relation.has_index filtered 0);
  check int "filtered matching" 4
    (List.length (Relation.matching 0 (sym "a") filtered));
  check int "filtered non-match" 0
    (List.length (Relation.matching 0 (sym "b") filtered))

let () =
  Alcotest.run "misc"
    [
      ( "idb",
        [
          Alcotest.test_case "set arity guard" `Quick test_idb_set_arity_guard;
          Alcotest.test_case "union/diff/inter" `Quick test_idb_union_diff_inter;
          Alcotest.test_case "equal ignores empties" `Quick
            test_idb_equal_ignores_missing_empties;
          Alcotest.test_case "restrict/to_database" `Quick
            test_idb_restrict_and_to_database;
        ] );
      ( "universes",
        [
          Alcotest.test_case "empty" `Quick test_empty_universe;
          Alcotest.test_case "singleton" `Quick test_singleton_universe;
        ] );
      ( "constants",
        [
          Alcotest.test_case "digits parse" `Quick test_digit_constants_parse;
          Alcotest.test_case "digits evaluate" `Quick test_digit_constants_evaluate;
        ] );
      ( "zero-ary",
        [ Alcotest.test_case "pipeline" `Quick test_zero_ary_pipeline ] );
      ( "schema",
        [
          Alcotest.test_case "head-only pred" `Quick
            test_idb_schema_of_head_only_predicate;
          Alcotest.test_case "relation_or_empty" `Quick
            test_database_relation_or_empty_arity;
        ] );
      ( "saturate",
        [
          Alcotest.test_case "from seed" `Quick test_saturate_from_seed;
          Alcotest.test_case "stage of absent" `Quick test_stage_of_absent;
        ] );
      ( "prng",
        [
          Alcotest.test_case "bounds and determinism" `Quick
            test_prng_bounds_and_determinism;
          Alcotest.test_case "no modulo bias" `Quick test_prng_no_modulo_bias;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "run" `Quick test_domain_pool_run;
          Alcotest.test_case "exception" `Quick test_domain_pool_exception;
          Alcotest.test_case "inline" `Quick test_domain_pool_inline;
          Alcotest.test_case "order under skew" `Quick
            test_domain_pool_order_under_skew;
          Alcotest.test_case "run_morsels" `Quick test_domain_pool_run_morsels;
          Alcotest.test_case "run_morsels inline" `Quick
            test_domain_pool_run_morsels_inline;
          Alcotest.test_case "run_morsels exception" `Quick
            test_domain_pool_run_morsels_exception;
          Alcotest.test_case "concurrent first run" `Quick
            test_domain_pool_concurrent_first_run;
        ] );
      ( "relation-index",
        [
          Alcotest.test_case "incremental" `Quick
            test_relation_index_incremental;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "identical" `Quick test_equiv_identical_programs;
          Alcotest.test_case "detects difference" `Quick
            test_equiv_detects_difference;
          Alcotest.test_case "simplify exhaustively" `Quick
            test_equiv_simplify_exhaustively;
          Alcotest.test_case "prop1 exhaustively" `Quick
            test_equiv_prop1_roundtrip_exhaustively;
          Alcotest.test_case "database census" `Quick test_databases_over_count;
        ] );
    ]
