(* Plan-layer tests.

   The plan layer compiles each rule once into a static physical plan and
   every Theta-consumer executes it, so the properties here are the
   load-bearing ones for the refactor:

   - the planner ablation matrix: [`Static], [`Greedy] and [`Scan] plans
     compute the same model under every engine and storage backend, for
     every semantics, on random programs;
   - delta-specialized plans derive exactly what full plans derive: the
     semi-naive engine (which runs the [Delta j] variants) agrees with the
     naive engine (full plans only) on the experiment workloads;
   - the plan cache's policy: static plans are reused until relation sizes
     drift, scan plans forever, greedy plans never;
   - compiled plans are well-formed on the paper's programs (negation
     becomes [Neg_check], unbound head variables become [Enumerate]);
   - [Theta.iterate] detects long-period orbits in one fingerprint lookup
     per step — a shift-register program with period k stays cheap for
     k far beyond what the old linear history scan handled. *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Idb = Evallib.Idb
module Theta = Evallib.Theta
module Plan = Planlib.Plan
module Cache = Planlib.Cache
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module Database = Relalg.Database
module Tuple = Relalg.Tuple

let arb_case = Testsupport.Gen_programs.arb_case

let positivise = Testsupport.Gen_programs.positivise

let db_of g = Digraph.to_database g

let pi1 = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let tc_program =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

(* --- the planner x engine x storage agreement matrix ----------------------- *)

let planners : Plan.planner list = [ `Static; `Greedy; `Scan; `Adaptive ]

let engines = [ `Seminaive; `Parallel ]

let storages : Relalg.Relation.storage list = [ `Hashed; `Treeset ]

(* The grain axis only matters under the [`Parallel] engine (morsel
   sharding vs rule fan-out); everywhere else one point suffices. *)
let grains_for = function
  | `Parallel -> ([ `Auto; `Fixed 2; `Rules ] : Evallib.Engine.grain list)
  | _ -> [ `Auto ]

let all_modes_agree eval equal reference =
  List.for_all
    (fun planner ->
      List.for_all
        (fun engine ->
          List.for_all
            (fun storage ->
              List.for_all
                (fun grain ->
                  equal reference (eval ~planner ~engine ~storage ~grain))
                (grains_for engine))
            storages)
        engines)
    planners

let prop_matrix_inflationary =
  QCheck.Test.make
    ~name:"planner x engine x storage matrix agrees (inflationary)" ~count:60
    arb_case (fun (p, db) ->
      let reference = Evallib.Inflationary.eval p db in
      all_modes_agree
        (fun ~planner ~engine ~storage ~grain ->
          Evallib.Inflationary.eval ~planner ~engine ~storage ~grain p db)
        Idb.equal reference)

let prop_matrix_positive =
  QCheck.Test.make
    ~name:"planner x engine x storage matrix agrees (positive lfp)" ~count:60
    arb_case (fun (p, db) ->
      let p = positivise p in
      let reference = Evallib.Naive.least_fixpoint p db in
      all_modes_agree
        (fun ~planner ~engine ~storage ~grain ->
          Evallib.Naive.least_fixpoint ~planner ~engine ~storage ~grain p db)
        Idb.equal reference)

let prop_matrix_semantics =
  QCheck.Test.make
    ~name:
      "planner x engine x storage matrix agrees (stratified + well-founded)"
    ~count:40 arb_case (fun (p, db) ->
      QCheck.assume (Datalog.Stratify.is_stratified p);
      let strat_ref = Evallib.Stratified.eval_exn p db in
      let wf_ref = Evallib.Wellfounded.eval p db in
      let wf_equal (a : Evallib.Wellfounded.model) b =
        Idb.equal a.Evallib.Wellfounded.true_facts
          b.Evallib.Wellfounded.true_facts
        && Idb.equal a.Evallib.Wellfounded.possible
             b.Evallib.Wellfounded.possible
      in
      all_modes_agree
        (fun ~planner ~engine ~storage ~grain ->
          Evallib.Stratified.eval_exn ~planner ~engine ~storage ~grain p db)
        Idb.equal strat_ref
      && all_modes_agree
           (fun ~planner ~engine ~storage ~grain ->
             Evallib.Wellfounded.eval ~planner ~engine ~storage ~grain p db)
           wf_equal wf_ref)

(* Kripke-Kleene runs through the grounding, whose instantiation plans are
   the planner-sensitive part. *)
let prop_matrix_fitting =
  QCheck.Test.make ~name:"planner matrix agrees (Kripke-Kleene grounding)"
    ~count:40 arb_case (fun (p, db) ->
      let reference = Evallib.Fitting.eval p db in
      List.for_all
        (fun planner ->
          let m = Evallib.Fitting.eval ~planner p db in
          Idb.equal m.Evallib.Fitting.true_facts
            reference.Evallib.Fitting.true_facts
          && Idb.equal m.Evallib.Fitting.possible
               reference.Evallib.Fitting.possible)
        planners)

(* --- delta-specialized plans = full plans on the experiment workloads ----- *)

let distance_program =
  Parser.parse_program_exn
    "s1(X, Y) :- e(X, Y).\n\
     s1(X, Y) :- e(X, Z), s1(Z, Y).\n\
     s2(Xs, Ys) :- e(Xs, Ys).\n\
     s2(Xs, Ys) :- e(Xs, Zs), s2(Zs, Ys).\n\
     s3(X, Y, Xs, Ys) :- e(X, Y), !s2(Xs, Ys).\n\
     s3(X, Y, Xs, Ys) :- e(X, Z), s1(Z, Y), !s2(Xs, Ys)."

let workload_graphs =
  [
    ("L_6", Generate.path 6);
    ("C_6", Generate.cycle 6);
    ("C_7", Generate.cycle 7);
    ("2xC_4", Generate.disjoint_copies 2 (Generate.cycle 4));
    ("rnd6", Generate.random ~seed:41 ~n:6 ~p:0.3);
    ("star5", Generate.star 5);
  ]

let test_delta_equals_full () =
  List.iter
    (fun (gname, g) ->
      let db = db_of g in
      List.iter
        (fun (pname, p) ->
          let full =
            Evallib.Inflationary.eval ~engine:`Naive ~planner:`Static p db
          in
          let delta =
            Evallib.Inflationary.eval ~engine:`Seminaive ~planner:`Static p db
          in
          Alcotest.(check bool)
            (Printf.sprintf "delta plans = full plans: %s on %s" pname gname)
            true (Idb.equal full delta))
        [ ("pi1", pi1); ("tc", tc_program); ("distance", distance_program) ])
    workload_graphs

(* --- the cache policy ------------------------------------------------------ *)

let tc_rec_rule = List.nth tc_program.Ast.rules 1

let test_cache_policy () =
  let cache = Cache.create () in
  let counters = Plan.counters () in
  let size = ref 16 in
  let sizes _ _ = !size in
  let find planner =
    Cache.find ~counters ~planner cache ~sizes ~universe_size:16 tc_rec_rule
  in
  let p1 = find `Static in
  let p2 = find `Static in
  Alcotest.(check bool) "static plan is reused" true (p1 == p2);
  (* Same magnitude: no drift, still a hit. *)
  size := 40;
  let p3 = find `Static in
  Alcotest.(check bool) "4x-with-slack drift not yet reached" true (p1 == p3);
  (* Past the 4x + slack threshold: recompiled. *)
  size := 1000;
  let p4 = find `Static in
  Alcotest.(check bool) "drifted sizes force a replan" true (p1 != p4);
  (* Greedy never reuses. *)
  let g1 = find `Greedy in
  let g2 = find `Greedy in
  Alcotest.(check bool) "greedy always replans" true (g1 != g2);
  (* Scan plans are size-independent. *)
  let s1 = find `Scan in
  size := 7;
  let s2 = find `Scan in
  Alcotest.(check bool) "scan plans never drift" true (s1 == s2);
  Alcotest.(check bool) "compiles and hits were counted" true
    (counters.Plan.plan_compiles >= 4 && counters.Plan.plan_cache_hits >= 3)

(* --- the adaptive feedback loop -------------------------------------------- *)

(* Exactly one bounded feedback replan: compile against a lying size
   estimate, run against a dense relation, and the next cache lookup must
   recompile with the observed effective cardinality substituted — once,
   with unchanged results, and with the override suppressing any further
   replanning. *)
let test_adaptive_replan () =
  let db = db_of (Generate.random ~seed:5 ~n:8 ~p:0.9) in
  let e =
    match Database.relation "e" db with
    | Some r -> r
    | None -> Alcotest.fail "generated graph has no edges"
  in
  let rule =
    List.hd (Parser.parse_program_exn "s(X, Y) :- e(X, Y).").Ast.rules
  in
  let cache = Cache.create () in
  let counters = Plan.counters () in
  (* The estimate the cost model sees is a fraction of [e]'s true
     cardinality — far past the drift factor + slack once observed. *)
  let sizes _ _ = 2 in
  let find () =
    Cache.find ~counters ~planner:`Adaptive cache ~sizes
      ~universe_size:(Database.universe_size db) rule
  in
  let resolver _ = { Plan.find = (fun _ _ -> e) } in
  let universe = Database.universe db in
  let results plan =
    let rows = ref [] in
    Plan.run ~resolver ~universe plan ~on_row:(fun row ->
        rows := Array.to_list row :: !rows);
    List.sort compare !rows
  in
  let p1 = find () in
  Alcotest.(check int) "no replan before feedback" 0 counters.Plan.plan_replans;
  let r1 = results p1 in
  let p2 = find () in
  Alcotest.(check int) "observed divergence triggers one replan" 1
    counters.Plan.plan_replans;
  Alcotest.(check bool) "replan produced a fresh plan" true (p1 != p2);
  Alcotest.(check bool) "replan recorded an override" true
    (p2.Plan.overrides <> []);
  Alcotest.(check int) "replan advanced the generation" 1 p2.Plan.generation;
  let r2 = results p2 in
  Alcotest.(check bool) "replanned plan derives the same rows" true (r1 = r2);
  let p3 = find () in
  Alcotest.(check bool) "the override suppresses further replans" true
    (p2 == p3);
  Alcotest.(check int) "replan count is stable" 1 counters.Plan.plan_replans

(* --- plan shape on the paper's rules -------------------------------------- *)

let ops plan =
  Array.to_list (Array.map (fun (s : Plan.step) -> s.Plan.op) plan.Plan.steps)

let test_plan_shapes () =
  let sizes _ _ = 8 in
  (* pi_1: the negated IDB literal compiles to a Neg_check. *)
  let p = Plan.compile ~sizes ~universe_size:8 (List.hd pi1.Ast.rules) in
  Alcotest.(check bool) "pi_1 plan has a negation check" true
    (List.exists
       (function Plan.Neg_check _ -> true | _ -> false)
       (ops p));
  (* The toggle rule: only the head variable Z forces an enumeration.  U
     and W appear in exactly one negated literal each, so the plan answers
     them with first-witness existence checks instead of materialising
     every binding (the paper's non-range-restricted semantics is
     preserved: a negated literal with a dead variable holds unless the
     relation already covers every instantiation). *)
  let toggle = Parser.parse_program_exn "t(Z) :- !q(U), !t(W)." in
  let p = Plan.compile ~sizes ~universe_size:8 (List.hd toggle.Ast.rules) in
  let enums =
    List.length
      (List.filter
         (function Plan.Enumerate _ -> true | _ -> false)
         (ops p))
  in
  Alcotest.(check int) "toggle rule enumerates only Z" 1 enums;
  let neg_exists =
    List.length
      (List.filter
         (function Plan.Neg_exists _ -> true | _ -> false)
         (ops p))
  in
  Alcotest.(check int) "dead negated variables become existence checks" 2
    neg_exists;
  (* The recursive TC rule under static planning probes through an index;
     under scan planning it must not. *)
  let p = Plan.compile ~planner:`Static ~sizes ~universe_size:8 tc_rec_rule in
  Alcotest.(check bool) "tc join compiles to an index probe" true
    (List.exists
       (function Plan.Index_probe _ -> true | _ -> false)
       (ops p));
  let p = Plan.compile ~planner:`Scan ~sizes ~universe_size:8 tc_rec_rule in
  Alcotest.(check bool) "scan planner emits no probes" false
    (List.exists
       (function Plan.Index_probe _ -> true | _ -> false)
       (ops p))

(* --- Theta.iterate orbit detection ----------------------------------------- *)

(* A shift register: one atom circulating through k unary predicates.
   Theta moves the token one position per step, so the orbit has period
   exactly k and every valuation along it is distinct — the workload that
   made the old O(steps^2) history scan quadratic. *)
let shift_register k =
  let rules =
    List.init k (fun i ->
        Printf.sprintf "p%d(X) :- p%d(X)." ((i + 1) mod k) i)
  in
  Parser.parse_program_exn (String.concat " " rules)

let test_iterate_long_period () =
  let k = 48 in
  let p = shift_register k in
  let db = Database.create_strings [ "a" ] in
  let a = List.hd (Database.universe db) in
  let start = Idb.add_fact (Idb.of_program p) "p0" (Tuple.singleton a) in
  (match Theta.iterate p db start with
  | Theta.Entered_cycle { entry; period; states } ->
    Alcotest.(check int) "shift register period" k period;
    Alcotest.(check int) "cycle entered immediately" 0 entry;
    Alcotest.(check int) "one state per phase" k (List.length states)
  | Theta.Reached_fixpoint _ -> Alcotest.fail "shift register reached fixpoint"
  | Theta.Gave_up _ -> Alcotest.fail "orbit detection gave up");
  (* The empty valuation is a fixpoint of the same program. *)
  match Theta.iterate p db (Idb.of_program p) with
  | Theta.Reached_fixpoint { steps; _ } ->
    Alcotest.(check int) "empty valuation is already fixed" 0 steps
  | _ -> Alcotest.fail "empty valuation should be a fixpoint"

let test_iterate_pi1 () =
  (* pi_1 converges on paths, oscillates with period 2 on cycles — the
     paper's Section 2 observation, through the fingerprint detector. *)
  let check_path n =
    match Theta.iterate pi1 (db_of (Generate.path n)) (Idb.of_program pi1) with
    | Theta.Reached_fixpoint _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "pi_1 converges on L_5" true (check_path 5);
  let check_cycle n =
    match
      Theta.iterate pi1 (db_of (Generate.cycle n)) (Idb.of_program pi1)
    with
    | Theta.Entered_cycle { period; _ } -> period
    | _ -> -1
  in
  Alcotest.(check int) "pi_1 oscillates with period 2 on C_5" 2 (check_cycle 5);
  Alcotest.(check int) "pi_1 oscillates with period 2 on C_6" 2 (check_cycle 6)

(* --- explain output -------------------------------------------------------- *)

let test_pp_mentions_estimates () =
  let sizes _ _ = 8 in
  let plan = Plan.compile ~sizes ~universe_size:8 tc_rec_rule in
  let text = Plan.to_string plan in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp shows the rule" true
    (contains text "s(X, Y) :- e(X, Z), s(Z, Y).");
  Alcotest.(check bool) "pp shows estimates" true (contains text "est");
  Alcotest.(check bool) "pp shows the projection" true (contains text "project")

let () =
  Alcotest.run "plan"
    [
      ( "matrix",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matrix_inflationary;
            prop_matrix_positive;
            prop_matrix_semantics;
            prop_matrix_fitting;
          ] );
      ( "regressions",
        [
          Alcotest.test_case "delta plans = full plans (E-workloads)" `Quick
            test_delta_equals_full;
          Alcotest.test_case "cache policy (static drift, greedy, scan)" `Quick
            test_cache_policy;
          Alcotest.test_case "adaptive feedback replan (bounded, same model)"
            `Quick test_adaptive_replan;
          Alcotest.test_case "plan shapes (neg check, enumerate, probes)"
            `Quick test_plan_shapes;
          Alcotest.test_case "pp output" `Quick test_pp_mentions_estimates;
        ] );
      ( "theta-orbits",
        [
          Alcotest.test_case "long-period shift register" `Quick
            test_iterate_long_period;
          Alcotest.test_case "pi_1 paths converge, cycles oscillate" `Quick
            test_iterate_pi1;
        ] );
    ]
