Limit predicates end to end: `p min k` / `p max k` declarations, the
tightening plan operators, and incremental maintenance of group bounds.

The shortest-path program declares `dist min 2`: dist/2 keeps, per
source column value, only the tuple with the least cost in its second
column.  check reports the declaration; the guarded threshold stratum
and the negation above it stratify as usual:

  $ negdl check sp.dl
  4 rule(s); IDB: dist, far, near; EDB: edge, node, source; DATALOG with negation, 1 limit predicate(s)

  $ negdl stratify sp.dl
  stratum 0: dist, near
  stratum 1: far

Evaluation keeps one dominant tuple per group — four bounds, not one
tuple per distinct path cost — and the strata above see the bounds
(limit programs require the stratified semantics):

  $ negdl eval sp.dl sp.facts -s stratified
  dist/2 (4 tuples) = {(a, 0); (b, 1); (c, 2); (d, 3)}
  far/1 (1 tuples) = {(d)}
  near/1 (3 tuples) = {(a); (b); (c)}

  $ negdl eval sp.dl sp.facts
  negdl: inflationary: limit predicates (dist min) require the stratified semantics
  [1]

Parser errors carry the line, the column, and the offending token:

  $ cat > bad_dot.dl <<'DONE'
  > p(X) :- q(X)
  > r(X) :- p(X).
  > DONE
  $ negdl check bad_dot.dl
  negdl: bad_dot.dl: line 2, column 2: expected '.' but found identifier "r"
  [1]

  $ cat > bad_tok.dl <<'DONE'
  > p(X) :- q(X), , r(X).
  > DONE
  $ negdl check bad_tok.dl
  negdl: bad_tok.dl: line 1, column 15: expected a body literal but found ','
  [1]

  $ cat > bad_cmp.dl <<'DONE'
  > near(X) :- dist(X, D), D <= .
  > DONE
  $ negdl check bad_cmp.dl
  negdl: bad_cmp.dl: line 1, column 29: expected a term but found '.'
  [1]

Limit declarations use 1-based column numbers; 0 is rejected where it
appears:

  $ cat > bad_col.dl <<'DONE'
  > dist min 0.
  > dist(X, 0) :- source(X).
  > DONE
  $ negdl check bad_col.dl
  negdl: bad_col.dl: line 1, column 11: column numbers in 'dist min' declarations start at 1
  [1]

Limit stratification is stricter than ordinary stratification: a rule
may only use a bound monotonically inside the recursive component that
computes it.  An upper-bound guard on a max predicate reads its bound
anti-monotonically (raising the bound can kill the derivation), and the
error names the rule:

  $ cat > bad_strat.dl <<'DONE'
  > best max 2.
  > best(X, 0) :- source(X).
  > best(Y, S) :- best(X, D), edge(X, Y, W), S = D + W, S <= 9.
  > DONE
  $ negdl stratify bad_strat.dl
  not limit-stratifiable: rule "best(Y, S) :- best(X, D), edge(X, Y, W), S = D + W, S <= 9." uses the bound of limit predicate best non-monotonically inside the recursive component that computes it
  [2]

Rules deriving a limit predicate compile with the tightening pair at the
tail: aggregate-probe filters candidates against the group's current
bound, tighten-emit keeps the per-group dominant survivors — the
changed-group delta that downstream semi-naive stages consume:

  $ negdl explain sp.dl sp.facts
  dist(X, 0) :- source(X).  {static, full}
    1. scan source(X)  [est 1.0 rows]
    2. aggregate-probe dist(X) bound 0 (min at column 1)  [est 0.5 rows]
    3. tighten-emit dist(X) bound 0 (min at column 1)  [est 0.2 rows]
    4. project dist(X, 0)  [est 0.2 rows]
  dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W.  {static, full}
    1. scan edge(X, Y, W)  [est 4.0 rows]
    2. probe dist(X, D) via column 0 = X  [est 4.0 rows]
    3. add S := D + W  [est 4.0 rows]
    4. aggregate-probe dist(Y) bound S (min at column 1)  [est 2.0 rows]
    5. tighten-emit dist(Y) bound S (min at column 1)  [est 1.0 rows]
    6. project dist(Y, S)  [est 1.0 rows]
  dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W.  {static, delta@0}
    1. scan edge(X, Y, W)  [est 4.0 rows]
    2. probe dist(X, D) via column 0 = X  [est 4.0 rows]
    3. add S := D + W  [est 4.0 rows]
    4. aggregate-probe dist(Y) bound S (min at column 1)  [est 2.0 rows]
    5. tighten-emit dist(Y) bound S (min at column 1)  [est 1.0 rows]
    6. project dist(Y, S)  [est 1.0 rows]
  near(X) :- dist(X, D), D <= 2.  {static, full}
    1. scan dist(X, D)  [est 6.0 rows]
    2. compare D <= 2  [est 3.0 rows]
    3. project near(X)  [est 3.0 rows]
  near(X) :- dist(X, D), D <= 2.  {static, delta@0}
    1. scan dist(X, D)  [est 6.0 rows]
    2. compare D <= 2  [est 3.0 rows]
    3. project near(X)  [est 3.0 rows]
  far(X) :- node(X), !near(X).  {static, full}
    1. scan node(X)  [est 4.0 rows]
    2. check !near(X)  [est 0.0 rows]
    3. project far(X)  [est 0.0 rows]

--explain on eval prints the executed tightening plans with actual rows;
the delta variant drives from the changed bounds, and the survivors of
tighten-emit are what semi-naive feeds forward:

  $ negdl eval sp.dl sp.facts -s stratified --explain -p dist
  dist(X, 0) :- source(X).  {static, full}
    1. scan source(X)  [est 1.0 rows]  [actual 1]
    2. aggregate-probe dist(X) bound 0 (min at column 1)  [est 0.5 rows]  [actual 1]
    3. tighten-emit dist(X) bound 0 (min at column 1)  [est 0.2 rows]  [actual 1]
    4. project dist(X, 0)  [est 0.2 rows]
  dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W.  {static, full}
    1. scan dist(X, D)  [est 0.0 rows]  [actual 0]
    2. probe edge(X, Y, W) via column 0 = X  [est 0.0 rows]  [actual 0]
    3. add S := D + W  [est 0.0 rows]  [actual 0]
    4. aggregate-probe dist(Y) bound S (min at column 1)  [est 0.0 rows]  [actual 0]
    5. tighten-emit dist(Y) bound S (min at column 1)  [est 0.0 rows]  [actual 0]
    6. project dist(Y, S)  [est 0.0 rows]
  dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W.  {static, delta@0}
    1. scan dist(X, D)  [est 1.0 rows]  [actual 6]
    2. probe edge(X, Y, W) via column 0 = X  [est 0.7 rows]  [actual 5]
    3. add S := D + W  [est 0.7 rows]  [actual 5]
    4. aggregate-probe dist(Y) bound S (min at column 1)  [est 0.3 rows]  [actual 5]
    5. tighten-emit dist(Y) bound S (min at column 1)  [est 0.2 rows]  [actual 5]
    6. project dist(Y, S)  [est 0.2 rows]
  near(X) :- dist(X, D), D <= 2.  {static, full}
    1. scan dist(X, D)  [est 0.0 rows]  [actual 0]
    2. compare D <= 2  [est 0.0 rows]  [actual 0]
    3. project near(X)  [est 0.0 rows]
  near(X) :- dist(X, D), D <= 2.  {static, delta@0}
    1. scan dist(X, D)  [est 1.0 rows]  [actual 6]
    2. compare D <= 2  [est 0.5 rows]  [actual 3]
    3. project near(X)  [est 0.5 rows]
  far(X) :- node(X), !near(X).  {static, full}
    1. scan node(X)  [est 4.0 rows]  [actual 4]
    2. check !near(X)  [est 2.0 rows]  [actual 1]
    3. project far(X)  [est 2.0 rows]
  {(a, 0); (b, 1); (c, 2); (d, 3)}

The server maintains the bounds incrementally, and coalesces write
bursts: the script goes through a file (stdin from a regular file
arrives in one read, so the run of three insert lines is one block) and
the three consecutive inserts are applied as ONE DRed batch — the first
line answers with the combined report, the rest answer "ok coalesced",
and `batches` moves by exactly one between the two stats blocks.
Deleting the cheap shortcut then relaxes dist(d) from 1 back to its
second-best support 3 — and dist(e) cascades from 2 to 4 — which flips
both vertices across the near/far threshold strata.  Everything runs on
the delta path: full_applications stays 0 throughout.

  $ cat > session.txt <<'DONE'
  > stats
  > insert edge(a, d, 1).
  > insert edge(d, e, 1). node(e).
  > insert edge(b, d, 9).
  > stats
  > query dist(X, D)
  > delete edge(a, d, 1).
  > query dist(X, D)
  > query far(X)
  > quit
  > DONE

  $ NEGDL_DOMAINS=1 negdl serve sp.dl sp.facts < session.txt
  facts: edb=9 idb=8 universe=6 version=0
  updates: batches=0 inserted=0 deleted=0 overdeleted=0 rederived=0
  queries: served=0 cache_hits=0 cache_misses=0
  plans: cached=6 compiles=6 cache_hits=6 replans=0
  work: rule_applications=12 delta_applications=0 putback_applications=0 full_applications=0
  contention: stripe_locks=14 cache_hits=17 cache_misses=14 partition_skew=4
  ok inserted=4 overdeleted=1 derived=3
  ok coalesced
  ok coalesced
  facts: edb=13 idb=10 universe=8 version=1
  updates: batches=1 inserted=4 deleted=0 overdeleted=1 rederived=3
  queries: served=0 cache_hits=0 cache_misses=0
  plans: cached=10 compiles=10 cache_hits=12 replans=0
  work: rule_applications=22 delta_applications=3 putback_applications=1 full_applications=0
  contention: stripe_locks=22 cache_hits=34 cache_misses=22 partition_skew=4
  {(a, 0); (b, 1); (c, 2); (d, 1); (e, 2)} % 5 answer(s)
  ok deleted=1 overdeleted=4 rederived=4
  {(a, 0); (b, 1); (c, 2); (d, 3); (e, 4)} % 5 answer(s)
  {(d); (e)} % 2 answer(s)
  bye
