(* Tests for the relational substrate: symbols, tuples, relations,
   schemas, databases and the fact-file parser. *)

open Relalg

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Symbol -------------------------------------------------------------- *)

let test_symbol_interning () =
  let a1 = Symbol.intern "alpha" in
  let a2 = Symbol.intern "alpha" in
  let b = Symbol.intern "beta" in
  check bool "same symbol" true (Symbol.equal a1 a2);
  check bool "different symbols" false (Symbol.equal a1 b);
  check (Alcotest.string) "name round trip" "alpha" (Symbol.name a1)

let test_symbol_fresh () =
  let f1 = Symbol.fresh "gensym" in
  let f2 = Symbol.fresh "gensym" in
  check bool "fresh are distinct" false (Symbol.equal f1 f2)

let test_symbol_of_int () =
  check bool "of_int = intern of decimal" true
    (Symbol.equal (Symbol.of_int 42) (Symbol.intern "42"))

(* --- Tuple ---------------------------------------------------------------- *)

let test_tuple_basic () =
  let t = Tuple.of_strings [ "a"; "b"; "c" ] in
  check int "arity" 3 (Tuple.arity t);
  check (Alcotest.string) "get" "b" (Symbol.name (Tuple.get t 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Tuple.get")
    (fun () -> ignore (Tuple.get t 3))

let test_tuple_compare () =
  let t1 = Tuple.of_ints [ 1; 2 ] in
  let t2 = Tuple.of_ints [ 1; 2 ] in
  let t3 = Tuple.of_ints [ 1 ] in
  check bool "equal" true (Tuple.equal t1 t2);
  check bool "shorter first" true (Tuple.compare t3 t1 < 0)

let test_tuple_ops () =
  let t = Tuple.of_strings [ "a"; "b"; "c"; "d" ] in
  check bool "project reorders" true
    (Tuple.equal (Tuple.project [ 2; 0 ] t) (Tuple.of_strings [ "c"; "a" ]));
  check bool "append" true
    (Tuple.equal
       (Tuple.append (Tuple.of_strings [ "a" ]) (Tuple.of_strings [ "b" ]))
       (Tuple.of_strings [ "a"; "b" ]));
  check bool "sub" true
    (Tuple.equal (Tuple.sub t 1 2) (Tuple.of_strings [ "b"; "c" ]))

let test_tuple_immutability () =
  let arr = [| Symbol.intern "a" |] in
  let t = Tuple.make arr in
  arr.(0) <- Symbol.intern "b";
  check (Alcotest.string) "copy on make" "a" (Symbol.name (Tuple.get t 0))

(* --- Relation ------------------------------------------------------------- *)

let r_ab = Relation.of_list 2 [ Tuple.of_strings [ "a"; "b" ] ]

let test_relation_set_ops () =
  let r1 =
    Relation.of_list 1 [ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ]
  in
  let r2 = Relation.of_list 1 [ Tuple.of_strings [ "b" ] ] in
  check int "union" 2 (Relation.cardinal (Relation.union r1 r2));
  check int "inter" 1 (Relation.cardinal (Relation.inter r1 r2));
  check int "diff" 1 (Relation.cardinal (Relation.diff r1 r2));
  check bool "subset" true (Relation.subset r2 r1);
  check bool "not subset" false (Relation.subset r1 r2)

let test_relation_arity_mismatch () =
  Alcotest.check_raises "add wrong arity"
    (Invalid_argument "Relation.add: tuple arity 1, relation arity 2")
    (fun () -> ignore (Relation.add (Tuple.of_strings [ "a" ]) r_ab))

let test_relation_product_project () =
  let r1 = Relation.of_list 1 [ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ] in
  let r2 = Relation.of_list 1 [ Tuple.of_strings [ "c" ] ] in
  let p = Relation.product r1 r2 in
  check int "product size" 2 (Relation.cardinal p);
  check int "product arity" 2 (Relation.arity p);
  let back = Relation.project [ 0 ] p in
  check bool "project back" true (Relation.equal back r1)

let test_relation_full_complement () =
  let u = List.map Symbol.intern [ "a"; "b"; "c" ] in
  let full = Relation.full u 2 in
  check int "3^2" 9 (Relation.cardinal full);
  let c = Relation.complement u r_ab in
  check int "complement" 8 (Relation.cardinal c);
  check bool "misses ab" false (Relation.mem (Tuple.of_strings [ "a"; "b" ]) c)

let test_relation_full_zero_arity () =
  let u = List.map Symbol.intern [ "a" ] in
  check int "A^0 = {()}" 1 (Relation.cardinal (Relation.full u 0));
  check int "empty universe, arity 0" 1 (Relation.cardinal (Relation.full [] 0));
  check int "empty universe, arity 2" 0 (Relation.cardinal (Relation.full [] 2))

let test_relation_join_positions () =
  let e =
    Relation.of_list 2
      [ Tuple.of_strings [ "a"; "b" ]; Tuple.of_strings [ "b"; "c" ] ]
  in
  let joined = Relation.join_positions [ (1, 0) ] e e in
  (* (a,b) joins (b,c): one result. *)
  check int "path of length 2" 1 (Relation.cardinal joined);
  check int "arity 4" 4 (Relation.arity joined)

(* --- Limit semantics -------------------------------------------------------- *)

let rel2 rows = Relation.of_list 2 (List.map Tuple.of_strings rows)

let test_relation_tighten () =
  let current = rel2 [ [ "a"; "3" ]; [ "b"; "2" ] ] in
  let candidates =
    rel2 [ [ "a"; "1" ]; [ "a"; "2" ]; [ "b"; "5" ]; [ "c"; "4" ] ]
  in
  let result, changed = Relation.tighten ~kind:`Min ~col:1 current candidates in
  check bool "bounds tightened, new group admitted" true
    (Relation.equal result (rel2 [ [ "a"; "1" ]; [ "b"; "2" ]; [ "c"; "4" ] ]));
  check bool "changed-group delta holds exactly the new bounds" true
    (Relation.equal changed (rel2 [ [ "a"; "1" ]; [ "c"; "4" ] ]));
  let result', changed' = Relation.tighten ~kind:`Min ~col:1 result candidates in
  check bool "idempotent on dominated candidates" true
    (Relation.equal result' result);
  check bool "no-op yields an empty delta" true (Relation.is_empty changed')

let test_relation_tighten_max () =
  let current = rel2 [ [ "a"; "3" ] ] in
  let candidates = rel2 [ [ "a"; "5" ]; [ "a"; "4" ] ] in
  let result, changed = Relation.tighten ~kind:`Max ~col:1 current candidates in
  check bool "max keeps the greatest" true
    (Relation.equal result (rel2 [ [ "a"; "5" ] ]));
  check bool "delta is the one improved bound" true
    (Relation.equal changed (rel2 [ [ "a"; "5" ] ]))

let test_relation_dominant () =
  (* "9" vs "10" pins numeric, not lexicographic, value comparison. *)
  let r = rel2 [ [ "a"; "9" ]; [ "a"; "10" ]; [ "b"; "7" ] ] in
  check bool "min keeps least per group" true
    (Relation.equal
       (Relation.dominant ~kind:`Min ~col:1 r)
       (rel2 [ [ "a"; "9" ]; [ "b"; "7" ] ]));
  check bool "max keeps greatest per group" true
    (Relation.equal
       (Relation.dominant ~kind:`Max ~col:1 r)
       (rel2 [ [ "a"; "10" ]; [ "b"; "7" ] ]));
  check bool "out-of-range column rejected" true
    (try
       ignore (Relation.dominant ~kind:`Min ~col:2 r);
       false
     with Invalid_argument _ -> true)

(* --- Idset ------------------------------------------------------------------ *)

let test_idset_basic () =
  let s = Idset.of_list [ 5; 1; 3; 1; 5 ] in
  check int "cardinal dedups" 3 (Idset.cardinal s);
  check bool "mem" true (Idset.mem 3 s);
  check bool "not mem" false (Idset.mem 2 s);
  check (Alcotest.list int) "elements increasing" [ 1; 3; 5 ]
    (Idset.elements s);
  check (Alcotest.option int) "choose_opt is minimum" (Some 1)
    (Idset.choose_opt s);
  check bool "remove" false (Idset.mem 3 (Idset.remove 3 s));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Idset.add: negative element") (fun () ->
      ignore (Idset.add (-1) Idset.empty))

let test_idset_sharing () =
  let s = Idset.of_list [ 0; 7; 42 ] in
  check bool "re-add is physically the same set" true (Idset.add 7 s == s)

let test_idset_large () =
  (* Exercise branch paths well past one machine word of prefix bits. *)
  let xs = List.init 500 (fun i -> (i * 7919) land 0xFFFFF) in
  let s = Idset.of_list xs in
  let module IS = Set.Make (Int) in
  let ref_set = IS.of_list xs in
  check int "cardinal" (IS.cardinal ref_set) (Idset.cardinal s);
  check (Alcotest.list int) "elements" (IS.elements ref_set)
    (Idset.elements s)

let arb_id_lists =
  QCheck.make
    QCheck.Gen.(
      pair
        (list_size (int_range 0 40) (int_range 0 200))
        (list_size (int_range 0 40) (int_range 0 200)))

let prop_idset_model =
  QCheck.Test.make ~name:"Idset ops agree with Set.Make(Int)" ~count:300
    arb_id_lists (fun (l1, l2) ->
      let module IS = Set.Make (Int) in
      let s1 = Idset.of_list l1 and s2 = Idset.of_list l2 in
      let m1 = IS.of_list l1 and m2 = IS.of_list l2 in
      let same s m = Idset.elements s = IS.elements m in
      same (Idset.union s1 s2) (IS.union m1 m2)
      && same (Idset.inter s1 s2) (IS.inter m1 m2)
      && same (Idset.diff s1 s2) (IS.diff m1 m2)
      && Idset.subset s1 s2 = IS.subset m1 m2
      && Idset.equal s1 s2 = IS.equal m1 m2)

let prop_idset_compare =
  QCheck.Test.make ~name:"Idset compare is consistent with equal" ~count:300
    arb_id_lists (fun (l1, l2) ->
      let s1 = Idset.of_list l1 and s2 = Idset.of_list l2 in
      let c12 = Idset.compare s1 s2 and c21 = Idset.compare s2 s1 in
      if Idset.equal s1 s2 then c12 = 0 && c21 = 0
      else c12 <> 0 && c12 * c21 < 0)

(* --- Store ------------------------------------------------------------------ *)

let test_store_intern () =
  let t = Tuple.of_strings [ "store_x"; "store_y" ] in
  let id1 = Store.intern t in
  let id2 = Store.intern (Tuple.of_strings [ "store_x"; "store_y" ]) in
  check int "same tuple, same id" id1 id2;
  check bool "memoized tuple round trip" true (Tuple.equal t (Store.tuple id1));
  check int "hash precomputed" (Tuple.hash t) (Store.hash id1);
  check int "arity" 2 (Store.arity id1);
  check (Alcotest.string) "get" "store_y" (Symbol.name (Store.get id1 1))

let test_store_find_no_intern () =
  let probe = Tuple.of_strings [ "store_never_interned"; "q" ] in
  let before = Store.count () in
  check bool "find misses without interning" true (Store.find probe = None);
  check int "probe did not grow the store" before (Store.count ());
  let id = Store.intern probe in
  check (Alcotest.option int) "find after intern" (Some id) (Store.find probe);
  check bool "mem" true (Store.mem probe)

let test_store_partition_ids () =
  let id = Store.intern (Tuple.of_strings [ "part_probe"; "p" ]) in
  let p = Store.id_part id in
  check bool "stripe in range" true (p >= 0 && p < Store.partitions ());
  check int "id recomposes" id (Store.id_make ~part:p ~local:(Store.id_local id));
  check int "stripe counts sum to the total" (Store.count ())
    (Array.fold_left ( + ) 0 (Store.part_counts ()));
  (* The contention record is internally consistent: counters only grow
     and skew is bounded by the largest stripe. *)
  let c = Store.contention () in
  check bool "contention counters non-negative" true
    (c.Store.stripe_locks >= 0 && c.Store.cache_hits >= 0
   && c.Store.cache_misses >= 0 && c.Store.partition_skew >= 0);
  check bool "skew bounded by max stripe" true
    (c.Store.partition_skew
    <= Array.fold_left max 0 (Store.part_counts ()))

(* --- Storage backends -------------------------------------------------------- *)

let storages : Relation.storage list = [ `Hashed; `Treeset ]

let t2 a b = Tuple.of_strings [ a; b ]

let test_backend_round_trip () =
  List.iter
    (fun storage ->
      let r =
        Relation.of_list ~storage 2 [ t2 "a" "b"; t2 "b" "c"; t2 "a" "b" ]
      in
      check bool "storage kept" true (Relation.storage_of r = storage);
      check int "of_list dedups" 2 (Relation.cardinal r);
      check bool "mem" true (Relation.mem (t2 "b" "c") r);
      check bool "not mem" false (Relation.mem (t2 "c" "b") r);
      let r' = Relation.of_seq ~storage 2 (List.to_seq (Relation.to_list r)) in
      check bool "of_seq round trip" true (Relation.equal r r'))
    storages

let test_backend_equal_across () =
  let tuples = [ t2 "a" "b"; t2 "b" "c" ] in
  let h = Relation.of_list ~storage:`Hashed 2 tuples in
  let t = Relation.of_list ~storage:`Treeset 2 tuples in
  check bool "hashed = treeset with same contents" true (Relation.equal h t);
  check bool "subset both ways" true
    (Relation.subset h t && Relation.subset t h);
  check int "compare agrees" 0 (Relation.compare h t);
  let t' = Relation.add (t2 "c" "d") t in
  check bool "differ after add" false (Relation.equal h t')

let test_backend_mixed_ops () =
  let h = Relation.of_list ~storage:`Hashed 1 [ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ] in
  let t = Relation.of_list ~storage:`Treeset 1 [ Tuple.of_strings [ "b" ]; Tuple.of_strings [ "c" ] ] in
  let u = Relation.union h t in
  check int "mixed union" 3 (Relation.cardinal u);
  check bool "union keeps left backend" true (Relation.storage_of u = `Hashed);
  check int "mixed inter" 1 (Relation.cardinal (Relation.inter h t));
  check int "mixed diff" 1 (Relation.cardinal (Relation.diff t h));
  check bool "mixed product" true
    (Relation.equal (Relation.product h t)
       (Relation.product
          (Relation.of_list ~storage:`Treeset 1 (Relation.to_list h))
          t))

let test_backend_add_all () =
  List.iter
    (fun storage ->
      let r = Relation.of_list ~storage 2 [ t2 "a" "b" ] in
      (* Build a column index first so add_all must extend it. *)
      ignore (Relation.matching 0 (Symbol.intern "a") r);
      let r' = Relation.add_all [ t2 "a" "c"; t2 "a" "b"; t2 "d" "e" ] r in
      check int "add_all adds only fresh" 3 (Relation.cardinal r');
      check int "extended index serves new tuples" 2
        (List.length (Relation.matching 0 (Symbol.intern "a") r')))
    storages

let test_backend_builder () =
  List.iter
    (fun storage ->
      let b = Relation.builder ~storage 2 in
      check bool "first add is fresh" true (Relation.builder_add b (t2 "a" "b"));
      check bool "duplicate add reports stale" false
        (Relation.builder_add b (t2 "a" "b"));
      check bool "second fresh" true (Relation.builder_add b (t2 "b" "c"));
      check int "builder cardinal" 2 (Relation.builder_cardinal b);
      let r = Relation.build b in
      check int "built cardinal" 2 (Relation.cardinal r);
      check bool "built storage" true (Relation.storage_of r = storage))
    storages

let test_backend_builder_merge () =
  List.iter
    (fun storage ->
      (* Disjoint accumulators: the union has both sides' tuples. *)
      let fill tuples =
        let b = Relation.builder ~storage 2 in
        List.iter (fun t -> ignore (Relation.builder_add b t)) tuples;
        b
      in
      let a = fill [ t2 "a" "b"; t2 "a" "c" ] in
      let b = fill [ t2 "b" "c" ] in
      let m = Relation.builder_merge a b in
      check int "disjoint merge cardinal" 3 (Relation.builder_cardinal m);
      check int "merged arity" 2 (Relation.builder_arity m);
      (* Overlapping accumulators: cross-builder duplicates collapse by
         [build] at the latest (the hashed backend defers dedup there, so
         the post-merge builder cardinal is only an upper bound). *)
      let c = fill [ t2 "a" "b"; t2 "d" "e" ] in
      let d = fill [ t2 "d" "e"; t2 "a" "b"; t2 "f" "g" ] in
      let m2 = Relation.builder_merge c d in
      check bool "overlapping merge cardinal is an upper bound" true
        (Relation.builder_cardinal m2 >= 3);
      let built2 = Relation.build m2 in
      check int "overlapping built cardinal" 3 (Relation.cardinal built2);
      check bool "merge equals set union" true
        (Relation.equal built2
           (Relation.of_list ~storage 2
              [ t2 "a" "b"; t2 "d" "e"; t2 "f" "g" ]));
      (* Merging with an empty accumulator is the identity on contents. *)
      let e = fill [ t2 "x" "y" ] in
      let m3 = Relation.builder_merge e (fill []) in
      check int "empty right" 1 (Relation.builder_cardinal m3);
      (* Arity mismatch is rejected. *)
      let b1 = Relation.builder ~storage 1 in
      let b2 = Relation.builder ~storage 2 in
      Alcotest.check_raises "arity mismatch"
        (Invalid_argument "Relation.builder_merge: arities 1 and 2 differ")
        (fun () -> ignore (Relation.builder_merge b1 b2)))
    storages;
  (* Mixed backends are rejected: accumulators cannot be unified cheaply
     across representations. *)
  let h = Relation.builder ~storage:`Hashed 2 in
  let t = Relation.builder ~storage:`Treeset 2 in
  Alcotest.check_raises "mixed backends"
    (Invalid_argument "Relation.builder_merge: mixed storage backends")
    (fun () -> ignore (Relation.builder_merge h t))

let test_backend_full () =
  let u = List.map Symbol.intern [ "a"; "b"; "c" ] in
  let h = Relation.full ~storage:`Hashed u 2 in
  let t = Relation.full ~storage:`Treeset u 2 in
  check int "hashed full 3^2" 9 (Relation.cardinal h);
  check bool "backends agree on full" true (Relation.equal h t)

let test_default_storage () =
  let saved = Relation.default_storage () in
  Fun.protect
    ~finally:(fun () -> Relation.set_default_storage saved)
    (fun () ->
      Relation.set_default_storage `Treeset;
      check bool "default respected" true
        (Relation.storage_of (Relation.empty 1) = `Treeset);
      Relation.set_default_storage `Hashed;
      check bool "default restored" true
        (Relation.storage_of (Relation.empty 1) = `Hashed))

let arb_backend_case =
  QCheck.make
    QCheck.Gen.(
      let* arity = int_range 0 2 in
      let tg = list_size (return arity) (int_range 0 4) >|= Tuple.of_ints in
      let* l1 = list_size (int_range 0 12) tg in
      let* l2 = list_size (int_range 0 12) tg in
      return (arity, l1, l2))

let prop_backends_agree =
  QCheck.Test.make ~name:"hashed and treeset backends agree on set algebra"
    ~count:200 arb_backend_case (fun (arity, l1, l2) ->
      let via storage =
        let r1 = Relation.of_list ~storage arity l1 in
        let r2 = Relation.of_list ~storage arity l2 in
        ( Relation.to_list (Relation.union r1 r2),
          Relation.to_list (Relation.inter r1 r2),
          Relation.to_list (Relation.diff r1 r2),
          Relation.subset r1 r2,
          Relation.equal r1 r2 )
      in
      via `Hashed = via `Treeset)

(* --- Concurrent interning ----------------------------------------------------- *)

(* Satellite 1: hammer the global Symbol and Store intern tables from
   several domains at once.  Every job interns an overlapping window of
   names and tuples; domain-safety means all jobs observe identical ids
   and every name/tuple round-trips afterwards. *)

let test_concurrent_interning () =
  let pool = Negdl_util.Domain_pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Negdl_util.Domain_pool.shutdown pool)
    (fun () ->
      let jobs = 8 and names = 200 in
      let name k = Printf.sprintf "conc_sym_%d" k in
      let job j () =
        (* Each job walks the shared window from a different offset so the
           domains race on first-intern of each name. *)
        List.init names (fun i ->
            let k = (i + (j * 17)) mod names in
            let sym = Symbol.intern (name k) in
            let id = Store.intern (Tuple.make [| sym; sym |]) in
            (k, (sym :> int), id))
      in
      let results =
        Negdl_util.Domain_pool.run pool (List.init jobs job)
        |> List.map (List.sort compare)
      in
      (match results with
      | [] -> Alcotest.fail "no results"
      | first :: rest ->
        List.iteri
          (fun j r ->
            check bool
              (Printf.sprintf "job %d observed the same ids as job 0" (j + 1))
              true (r = first))
          rest);
      for k = 0 to names - 1 do
        check (Alcotest.string) "name round trip after the race" (name k)
          (Symbol.name (Symbol.intern (name k)))
      done)

let test_concurrent_fresh () =
  let pool = Negdl_util.Domain_pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Negdl_util.Domain_pool.shutdown pool)
    (fun () ->
      let per_job = 50 in
      let job () = List.init per_job (fun _ -> Symbol.fresh "conc_fresh") in
      let all =
        Negdl_util.Domain_pool.run pool (List.init 6 (fun _ -> job))
        |> List.concat
        |> List.map (fun s -> (s : Symbol.t :> int))
      in
      let distinct = List.sort_uniq compare all in
      check int "fresh symbols are globally distinct across domains"
        (List.length all) (List.length distinct))

(* Regression for Symbol.intern's lock-free fast path: names interned
   before the race must resolve to their existing ids from every domain
   without ever taking the lock's append path (the symbol count must not
   move). *)
let test_symbol_reintern_race () =
  let pool = Negdl_util.Domain_pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Negdl_util.Domain_pool.shutdown pool)
    (fun () ->
      let names = 300 in
      let name k = Printf.sprintf "reintern_%d" k in
      let expected =
        Array.init names (fun k -> (Symbol.intern (name k) :> int))
      in
      let count_before = Symbol.count () in
      let job j () =
        List.init names (fun i ->
            let k = (i + (j * 41)) mod names in
            (k, (Symbol.intern (name k) :> int)))
      in
      let results = Negdl_util.Domain_pool.run pool (List.init 8 job) in
      List.iter
        (List.iter
           (fun (k, id) ->
             check int
               (Printf.sprintf "racing re-intern of %s kept its id" (name k))
               expected.(k) id))
        results;
      check int "racing re-interns created no symbols" count_before
        (Symbol.count ()))

(* All pool participants intern overlapping segment batches into the same
   stripes; every participant must observe identical ids, the store must
   grow by exactly the distinct rows, and contents must round-trip. *)
let test_concurrent_intern_seg () =
  let pool = Negdl_util.Domain_pool.create ~size:3 () in
  Fun.protect
    ~finally:(fun () -> Negdl_util.Domain_pool.shutdown pool)
    (fun () ->
      let k = 3 and rows = 400 and distinct = 157 in
      (* Row [r] is determined by [r mod distinct], so the 400-row batch
         re-interns most rows and the 8 participants collide heavily. *)
      let flat =
        Array.init (rows * k) (fun w ->
            let r = w / k and j = w mod k in
            let base = r mod distinct in
            Symbol.intern
              (Printf.sprintf "seg_%d_%d" j ((base * (j + 3)) mod distinct)))
      in
      let count_before = Store.count () in
      let job j () =
        List.init rows (fun i ->
            let r = (i + (j * 53)) mod rows in
            (r, Store.intern_seg flat ~pos:(r * k) ~len:k))
        |> List.sort compare
      in
      let results = Negdl_util.Domain_pool.run pool (List.init 8 job) in
      (match results with
      | [] -> Alcotest.fail "no results"
      | first :: rest ->
        List.iteri
          (fun j r ->
            check bool
              (Printf.sprintf "participant %d observed the same ids" (j + 1))
              true (r = first))
          rest;
        let ids =
          List.sort_uniq compare (List.map snd first)
        in
        check int "distinct ids = distinct rows" distinct (List.length ids);
        check int "store grew by exactly the distinct rows"
          (count_before + distinct) (Store.count ());
        (* Striping sanity: 157 hash-scattered rows cannot all land in one
           of >= 2 stripes. *)
        if Store.partitions () > 1 then
          check bool "rows landed in more than one stripe" true
            (List.length
               (List.sort_uniq compare (List.map Store.id_part ids))
            > 1);
        List.iter
          (fun (r, id) ->
            check bool "segment round trip" true
              (Tuple.equal (Store.tuple id)
                 (Tuple.make (Array.sub flat (r * k) k))))
          first))

(* Simulate the sharded barrier on the hashed backend: per-participant
   builders fed round-robin, merged pairwise, built once — the result must
   be exactly the bulk-constructed relation, with an exact cardinal. *)
let test_partitioned_builder_barrier () =
  (* Row [i] is determined by [i mod 50], so the same tuple recurs in
     different builders (50 mod 4 <> 0): cross-builder duplicates must
     collapse in the build. *)
  let tuples =
    List.init 200 (fun i ->
        let r = i mod 50 in
        t2 (Printf.sprintf "pb_%d" r) (string_of_int (r * 7 mod 11)))
  in
  let builders = Array.init 4 (fun _ -> Relation.builder ~storage:`Hashed 2) in
  List.iteri
    (fun i t -> ignore (Relation.builder_add builders.(i mod 4) t))
    tuples;
  let merged = ref builders.(0) in
  for p = 1 to 3 do
    merged := Relation.builder_merge !merged builders.(p)
  done;
  let r = Relation.build !merged in
  check int "exact cardinal after barrier build"
    (List.length (List.sort_uniq Tuple.compare tuples))
    (Relation.cardinal r);
  check bool "barrier build equals bulk construction" true
    (Relation.equal r (Relation.of_list ~storage:`Hashed 2 tuples));
  Alcotest.check_raises "builder_add after merge is refused"
    (Invalid_argument "Hash_store.builder_add: builder was merged")
    (fun () -> ignore (Relation.builder_add !merged (t2 "pb_x" "pb_y")))

(* --- Schema ---------------------------------------------------------------- *)

let test_schema () =
  let s = Schema.of_list [ ("e", 2); ("t", 1) ] in
  check (Alcotest.option Alcotest.int) "arity" (Some 2) (Schema.arity "e" s);
  check (Alcotest.option Alcotest.int) "missing" None (Schema.arity "x" s);
  Alcotest.check_raises "conflict"
    (Invalid_argument "Schema.add: e declared with arity 2, then 3")
    (fun () -> ignore (Schema.add "e" 3 s))

(* --- Database --------------------------------------------------------------- *)

let test_database_basics () =
  let db =
    Database.of_facts ~universe:[ "a"; "b"; "c" ]
      [ ("e", [ "a"; "b" ]); ("e", [ "b"; "c" ]); ("v", [ "a" ]) ]
  in
  check int "universe" 3 (Database.universe_size db);
  check bool "fact" true (Database.mem_fact "e" (Tuple.of_strings [ "a"; "b" ]) db);
  check bool "no fact" false
    (Database.mem_fact "e" (Tuple.of_strings [ "b"; "a" ]) db);
  check int "schema" 2 (List.length (Schema.to_list (Database.schema db)))

let test_database_universe_guard () =
  let db = Database.create_strings [ "a" ] in
  Alcotest.check_raises "outside universe"
    (Invalid_argument
       "Database.add_fact: tuple (z) of p uses a constant outside the universe")
    (fun () -> ignore (Database.add_fact "p" (Tuple.of_strings [ "z" ]) db))

let test_database_merge_restrict () =
  let d1 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d2 = Database.of_facts ~universe:[ "b" ] [ ("q", [ "b" ]); ("p", [ "b" ]) ] in
  let m = Database.merge d1 d2 in
  check int "merged universe" 2 (Database.universe_size m);
  check int "merged p" 2
    (Relation.cardinal (Database.relation_or_empty ~arity:1 "p" m));
  let r = Database.restrict [ "q" ] m in
  check bool "restrict drops p" true (Database.relation "p" r = None);
  check bool "restrict keeps q" true (Database.relation "q" r <> None)

let test_database_parse () =
  let text =
    "% a graph\n#universe isolated.\nedge(a, b).\nedge(b, c).\nmark(a).\n"
  in
  let db = Database.parse_exn text in
  check int "universe includes isolated" 4 (Database.universe_size db);
  check bool "edge" true
    (Database.mem_fact "edge" (Tuple.of_strings [ "a"; "b" ]) db)

let test_database_parse_zero_ary () =
  let db = Database.parse_exn "flag." in
  check bool "zero-ary fact" true (Database.mem_fact "flag" Tuple.empty db)

let test_database_parse_errors () =
  (match Database.parse "edge(a, b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing paren accepted");
  match Database.parse "bad stuff(a)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

let test_database_equal () =
  let d1 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d2 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d3 = Database.of_facts ~universe:[ "a"; "b" ] [ ("p", [ "a" ]) ] in
  check bool "equal" true (Database.equal d1 d2);
  check bool "universe matters" false (Database.equal d1 d3)

(* --- Properties ------------------------------------------------------------- *)

let tuple_gen =
  QCheck.Gen.(
    let* len = int_range 0 3 in
    list_size (return len) (int_range 0 5) >|= Tuple.of_ints)

let relation_of_tuples arity ts =
  List.fold_left
    (fun r t -> if Tuple.arity t = arity then Relation.add t r else r)
    (Relation.empty arity) ts

let arb_pair_of_relations =
  QCheck.make
    QCheck.Gen.(
      let* arity = int_range 0 2 in
      let tg =
        list_size (return arity) (int_range 0 4) >|= Tuple.of_ints
      in
      let* l1 = list_size (int_range 0 12) tg in
      let* l2 = list_size (int_range 0 12) tg in
      return (arity, l1, l2))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:200 arb_pair_of_relations
    (fun (arity, l1, l2) ->
      let r1 = relation_of_tuples arity l1 in
      let r2 = relation_of_tuples arity l2 in
      Relation.equal (Relation.union r1 r2) (Relation.union r2 r1))

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff + inter = left operand" ~count:200
    arb_pair_of_relations (fun (arity, l1, l2) ->
      let r1 = relation_of_tuples arity l1 in
      let r2 = relation_of_tuples arity l2 in
      Relation.equal
        (Relation.union (Relation.diff r1 r2) (Relation.inter r1 r2))
        r1)

let prop_tuple_compare_total =
  QCheck.Test.make ~name:"tuple compare antisymmetric" ~count:200
    (QCheck.make QCheck.Gen.(pair tuple_gen tuple_gen))
    (fun (t1, t2) ->
      let c12 = Tuple.compare t1 t2 and c21 = Tuple.compare t2 t1 in
      (c12 = 0 && c21 = 0 && Tuple.equal t1 t2) || c12 * c21 < 0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_union_commutes;
      prop_diff_inter_partition;
      prop_tuple_compare_total;
      prop_idset_model;
      prop_idset_compare;
      prop_backends_agree;
    ]

let () =
  Alcotest.run "relalg"
    [
      ( "symbol",
        [
          Alcotest.test_case "interning" `Quick test_symbol_interning;
          Alcotest.test_case "fresh" `Quick test_symbol_fresh;
          Alcotest.test_case "of_int" `Quick test_symbol_of_int;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basic" `Quick test_tuple_basic;
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          Alcotest.test_case "ops" `Quick test_tuple_ops;
          Alcotest.test_case "immutability" `Quick test_tuple_immutability;
        ] );
      ( "relation",
        [
          Alcotest.test_case "set ops" `Quick test_relation_set_ops;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
          Alcotest.test_case "product/project" `Quick test_relation_product_project;
          Alcotest.test_case "full/complement" `Quick test_relation_full_complement;
          Alcotest.test_case "zero arity" `Quick test_relation_full_zero_arity;
          Alcotest.test_case "join" `Quick test_relation_join_positions;
          Alcotest.test_case "tighten" `Quick test_relation_tighten;
          Alcotest.test_case "tighten max" `Quick test_relation_tighten_max;
          Alcotest.test_case "dominant" `Quick test_relation_dominant;
        ] );
      ( "idset",
        [
          Alcotest.test_case "basic" `Quick test_idset_basic;
          Alcotest.test_case "sharing" `Quick test_idset_sharing;
          Alcotest.test_case "large" `Quick test_idset_large;
        ] );
      ( "store",
        [
          Alcotest.test_case "intern" `Quick test_store_intern;
          Alcotest.test_case "find without intern" `Quick
            test_store_find_no_intern;
          Alcotest.test_case "partitioned ids" `Quick test_store_partition_ids;
        ] );
      ( "storage",
        [
          Alcotest.test_case "round trip" `Quick test_backend_round_trip;
          Alcotest.test_case "equal across backends" `Quick
            test_backend_equal_across;
          Alcotest.test_case "mixed-backend ops" `Quick test_backend_mixed_ops;
          Alcotest.test_case "add_all" `Quick test_backend_add_all;
          Alcotest.test_case "builder" `Quick test_backend_builder;
          Alcotest.test_case "builder merge" `Quick
            test_backend_builder_merge;
          Alcotest.test_case "partitioned barrier build" `Quick
            test_partitioned_builder_barrier;
          Alcotest.test_case "full" `Quick test_backend_full;
          Alcotest.test_case "default storage" `Quick test_default_storage;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent interning" `Quick
            test_concurrent_interning;
          Alcotest.test_case "concurrent fresh" `Quick test_concurrent_fresh;
          Alcotest.test_case "racing re-intern" `Quick
            test_symbol_reintern_race;
          Alcotest.test_case "concurrent segment intern" `Quick
            test_concurrent_intern_seg;
        ] );
      ("schema", [ Alcotest.test_case "basic" `Quick test_schema ]);
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "universe guard" `Quick test_database_universe_guard;
          Alcotest.test_case "merge/restrict" `Quick test_database_merge_restrict;
          Alcotest.test_case "parse" `Quick test_database_parse;
          Alcotest.test_case "parse zero-ary" `Quick test_database_parse_zero_ary;
          Alcotest.test_case "parse errors" `Quick test_database_parse_errors;
          Alcotest.test_case "equal" `Quick test_database_equal;
        ] );
      ("properties", qcheck_tests);
    ]
