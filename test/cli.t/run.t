The negdl command-line interface, end to end.

Static check of pi_1:

  $ negdl check pi1.dl
  1 rule(s); IDB: t; EDB: e; DATALOG with negation

pi_1 does not stratify (recursion through negation):

  $ negdl stratify pi1.dl
  not stratifiable: t depends negatively on t within a recursive component
  [2]

The transitive-closure program does, trivially:

  $ negdl stratify tc.dl
  stratum 0: s

Inflationary evaluation on the 4-cycle saturates t:

  $ negdl eval pi1.dl c4.facts -s inflationary -p t
  {(v0); (v1); (v2); (v3)}

The parallel engine and the alternative indexing modes compute the same
model:

  $ negdl eval pi1.dl c4.facts --engine parallel -p t
  {(v0); (v1); (v2); (v3)}

  $ negdl eval tc.dl path4.facts --engine parallel --indexing scan -p s
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}

So does the tree-set storage ablation (the default backend is the packed
hashed one):

  $ negdl eval tc.dl path4.facts --storage treeset -p s
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}

So does the planner ablation (static cost-based ordering is the default;
greedy replans on every application, scan runs the body in textual order):

  $ negdl eval tc.dl path4.facts --planner scan -p s
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}

  $ negdl eval pi1.dl c4.facts --planner greedy -p t
  {(v0); (v1); (v2); (v3)}

  $ negdl fixpoints pi1.dl c4.facts --storage treeset | head -5
  ground atoms:    4
  ground rules:    4
  fixpoint exists: true
  fixpoints:       2
  unique:          false

--stats reports the evaluation counters on stderr (timings elided here):

  $ negdl eval tc.dl path4.facts --stats -p s 2>&1 | grep -v -e stage -e "wall time" -e "merge ns"
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}
  iterations:        4
  rule applications: 5
  tuples derived:    6
  tuples allocated:  6
  bulk builds:       5
  plan compiles:     3
  plan cache hits:   2
  plan replans:      0
  index hits:        6
  index builds:      3
  full scans:        5
  bucket probes:     3
  enumerations:      0
  morsels executed:  0
  morsel steals:     0
  max shard skew:    0
  stripe locks:      6
  intern cache hits: 3
  intern cache miss: 6
  partition skew:    2

The parallel engine can shard a rule's driving input into morsels
(--parallel-grain tuples each).  NEGDL_DOMAINS=1 pins the default pool to
a single participant, so the scheduling counters are deterministic: the
sequential engine above never shards (all three counters 0), while here
each one-task stage runs morsel-by-morsel with nothing to steal:

  $ NEGDL_DOMAINS=1 negdl eval tc.dl path4.facts --engine parallel --parallel-grain 1 --stats -p s 2>&1 | grep -v -e stage -e "wall time" -e "merge ns"
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}
  iterations:        4
  rule applications: 5
  tuples derived:    6
  tuples allocated:  6
  bulk builds:       5
  plan compiles:     3
  plan cache hits:   2
  plan replans:      0
  index hits:        6
  index builds:      3
  full scans:        11
  bucket probes:     3
  enumerations:      0
  morsels executed:  9
  morsel steals:     0
  max shard skew:    0
  stripe locks:      6
  intern cache hits: 3
  intern cache miss: 6
  partition skew:    2

--parallel-grain rules restores pure whole-rule fan-out (the pre-morsel
behaviour); the model is the same and no morsels are scheduled:

  $ NEGDL_DOMAINS=1 negdl eval tc.dl path4.facts --engine parallel --parallel-grain rules --stats -p s 2>&1 | grep -v -e stage -e "wall time" -e "merge ns"
  {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}
  iterations:        4
  rule applications: 5
  tuples derived:    6
  tuples allocated:  6
  bulk builds:       5
  plan compiles:     3
  plan cache hits:   2
  plan replans:      0
  index hits:        6
  index builds:      3
  full scans:        5
  bucket probes:     3
  enumerations:      0
  morsels executed:  0
  morsel steals:     0
  max shard skew:    0
  stripe locks:      6
  intern cache hits: 3
  intern cache miss: 6
  partition skew:    2

A bad grain is a usage error:

  $ negdl eval tc.dl path4.facts --parallel-grain zero -p s 2>&1 | head -1
  negdl: option '--parallel-grain': unknown grain "zero" (auto, rules, or a

The Section 2 census on the 4-cycle: two incomparable fixpoints, no least:

  $ negdl fixpoints pi1.dl c4.facts --enumerate
  ground atoms:    4
  ground rules:    4
  fixpoint exists: true
  fixpoints:       2
  unique:          false
  least fixpoint:  no
  -- fixpoint 1 --
  t/1 (2 tuples) = {(v1); (v3)}
  -- fixpoint 2 --
  t/1 (2 tuples) = {(v0); (v2)}

On the path the fixpoint is unique (the even positions) and hence least:

  $ negdl fixpoints pi1.dl path4.facts
  ground atoms:    3
  ground rules:    3
  fixpoint exists: true
  fixpoints:       1
  unique:          true
  least fixpoint:  yes
  -- least fixpoint --
  t/1 (2 tuples) = {(v1); (v3)}
  -- example fixpoint --
  t/1 (2 tuples) = {(v1); (v3)}

Stable models coincide with the fixpoints for pi_1:

  $ negdl stable pi1.dl c4.facts
  stable models: 2
  -- stable model 1 --
  t/1 (2 tuples) = {(v1); (v3)}
  -- stable model 2 --
  t/1 (2 tuples) = {(v0); (v2)}

Goal-directed querying through magic sets:

  $ negdl query tc.dl path4.facts "s(v1, Y)"
  {(v1, v2); (v1, v3)}
  % 2 answer(s)

Negation is rejected by the magic-set rewriter:

  $ negdl query pi1.dl c4.facts "t(X)"
  negdl: magic sets: the program must be positive (no negation, no !=)
  [1]

Provenance of a closure fact:

  $ negdl why tc.dl path4.facts "s(v0, v2)"
  s(v0, v2) @ stage 2
    by s(v0, v2) :- s(v1, v2).
    s(v1, v2) @ stage 1
      by s(v1, v2).

Grounding of pi_1 on the path:

  $ negdl ground pi1.dl path4.facts
  t(v3) :- !t(v2).
  t(v2) :- !t(v1).
  t(v1).
  % 3 atoms, 3 instances

Physical plans are inspectable.  explain compiles every rule — and the
delta-specialized variants semi-naive evaluation runs — with cardinality
estimates from the database:

  $ negdl explain tc.dl path4.facts
  s(X, Y) :- e(X, Y).  {static, full}
    1. scan e(X, Y)  [est 3.0 rows]
    2. project s(X, Y)  [est 3.0 rows]
  s(X, Y) :- e(X, Z), s(Z, Y).  {static, full}
    1. scan e(X, Z)  [est 3.0 rows]
    2. probe s(Z, Y) via column 0 = Z  [est 3.0 rows]
    3. project s(X, Y)  [est 3.0 rows]
  s(X, Y) :- e(X, Z), s(Z, Y).  {static, delta@1}
    1. scan e(X, Z)  [est 3.0 rows]
    2. probe s(Z, Y) via column 0 = Z  [est 3.0 rows]
    3. project s(X, Y)  [est 3.0 rows]

A negated literal compiles to a membership check against the complement
(the 0-row estimate is the worst case of a saturated t):

  $ negdl explain pi1.dl c4.facts
  t(X) :- e(Y, X), !t(Y).  {static, full}
    1. scan e(Y, X)  [est 4.0 rows]
    2. check !t(Y)  [est 0.0 rows]
    3. project t(X)  [est 0.0 rows]

--explain on eval prints the executed plans with the actual rows each
operator produced next to the estimates:

  $ negdl eval pi1.dl c4.facts --explain -p t
  t(X) :- e(Y, X), !t(Y).  {static, full}
    1. scan e(Y, X)  [est 4.0 rows]  [actual 4]
    2. check !t(Y)  [est 4.0 rows]  [actual 4]
    3. project t(X)  [est 4.0 rows]
  {(v0); (v1); (v2); (v3)}

The adaptive planner closes the loop: every run of a compiled plan
records observed per-operator cardinalities, and a cache fetch whose
feedback diverges from the estimates past the drift factor recompiles
with the observed value substituted — counted as a replan, not a
compile.  On a funnel graph (complete bipartite 6x6 plus a two-edge
tail) the first delta stage joins the whole bipartite square while later
deltas shrink to the tail, so the delta plan is replanned exactly once:

  $ negdl eval tc.dl funnel.facts --planner adaptive --stats -p s 2>&1 | grep "plan"
  plan compiles:     3
  plan cache hits:   1
  plan replans:      1

--plan-drift loosens (or tightens) the divergence tolerance shared by
the static drift check and the feedback loop; at 100x nothing replans:

  $ negdl eval tc.dl funnel.facts --planner adaptive --plan-drift 100 --stats -p s 2>&1 | grep "replans"
  plan replans:      0

explain --feedback evaluates the program and prints each cached plan's
observed profile next to its estimates: the replanned delta variant
carries its override and generation, and its feedback averages the
post-replan runs:

  $ negdl explain tc.dl funnel.facts --feedback --planner adaptive
  s(X, Y) :- e(X, Y).  {adaptive, full, generation 0}
    runs 1; driving avg 38.0; emitted avg 38.0 (est 38.0)
    1. scan e(X, Y)  [est 38.0, obs 38.0]
    overrides: none
    replan: none
  s(X, Y) :- e(X, Z), s(Z, Y).  {adaptive, full, generation 0}
    runs 1; driving avg 0.0; emitted avg 0.0 (est 0.0)
    1. scan s(Z, Y)  [est 0.0, obs 0.0]
    2. scan e(X, Z)  [est 0.0, obs 0.0]
    overrides: none
    replan: none
  s(X, Y) :- e(X, Z), s(Z, Y).  {adaptive, delta@1, generation 1}
    runs 2; driving avg 6.5; emitted avg 3.0 (est 5.4)
    1. scan s(Z, Y)  [est 2.0, obs 6.5]
    2. scan e(X, Z)  [est 5.4, obs 3.0]
    overrides: occurrence 1 -> 2 rows
    replan: none

Errors are reported as usage messages:

  $ negdl check missing.dl
  negdl: PROGRAM argument: no 'missing.dl' file or directory
  Usage: negdl check [OPTION]… PROGRAM
  Try 'negdl check --help' or 'negdl --help' for more information.
  [124]

The built-in SAT solver speaks DIMACS:

  $ negdl sat inst.cnf
  s SATISFIABLE
  v 1 -2 3 0

Example 1's reduction, end to end: CNF -> (pi_SAT, D(I)) -> fixpoints.
The instance has a unique model, so Theorem 2 predicts a unique fixpoint:

  $ negdl sat2fp inst.cnf -o inst
  wrote inst.dl and inst.facts

  $ negdl fixpoints inst.dl inst.facts | head -6
  ground atoms:    18
  ground rules:    230
  fixpoint exists: true
  fixpoints:       1
  unique:          true
  least fixpoint:  yes

Parallel fixpoint search: --sat-par races diversified CDCL workers on the
existence query and --count-budget runs the exact #SAT census (the 4-cycle
splits into one component, counted without enumeration):

  $ negdl fixpoints pi1.dl c4.facts --sat-par 4 --count-budget 100000
  ground atoms:    4
  ground rules:    4
  fixpoint exists: true
  fixpoints:       2
  exact census:    2
  unique:          false
  least fixpoint:  no
  -- example fixpoint --
  t/1 (2 tuples) = {(v1); (v3)}

The search-layer counters ride along on --stats:

  $ negdl fixpoints pi1.dl c4.facts --sat-par 2 --count-budget 100000 --stats 2>&1 | grep "^sat"
  sat portfolio runs: 2
  sat races won by worker 0: 2

An exhausted existence budget is an answer, not an error — the census and
least-fixpoint questions are skipped and the exit is clean:

  $ negdl fixpoints pi1.dl c4.facts --sat-budget 0
  ground atoms:    4
  ground rules:    4
  fixpoint exists: unknown (conflict budget exhausted)

The sat subcommand exposes the same controls; the portfolio returns the
same answer as the sequential solver, and a dead budget reports UNKNOWN:

  $ negdl sat inst.cnf --portfolio 4
  s SATISFIABLE
  v 1 -2 3 0

  $ negdl sat inst.cnf --budget 0
  c conflict budget exhausted
  s UNKNOWN

The full semantics zoo is selectable; Kripke-Kleene is three-valued:

  $ negdl eval pi1.dl c4.facts -s kripke-kleene
  t/1 (0 tuples) = {}
  -- unknown (three-valued) --
  t/1 (4 tuples) = {(v0); (v1); (v2); (v3)}

  $ negdl eval pi1.dl c4.facts -s well-founded
  t/1 (0 tuples) = {}
  -- unknown (three-valued) --
  t/1 (4 tuples) = {(v0); (v1); (v2); (v3)}
