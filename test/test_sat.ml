(* Tests for the SAT substrate: CNF representation, DIMACS round-trips, the
   CDCL solver against the exhaustive baseline, enumeration and counting. *)

open Satlib

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Cnf ---------------------------------------------------------------- *)

let test_cnf_basic () =
  let cnf = Cnf.of_list 3 [ [ 1; -2 ]; [ 2; 3 ]; [ -1 ] ] in
  check int "vars" 3 (Cnf.num_vars cnf);
  check int "clauses" 3 (Cnf.num_clauses cnf);
  check bool "eval true" true
    (Cnf.eval cnf (fun v -> v = 3));
  check bool "eval false" false (Cnf.eval cnf (fun v -> v = 1))

let test_cnf_tautology_dropped () =
  let cnf = Cnf.of_list 2 [ [ 1; -1 ]; [ 2 ] ] in
  check int "tautology dropped" 1 (Cnf.num_clauses cnf)

let test_cnf_duplicate_literals () =
  let cnf = Cnf.of_list 2 [ [ 1; 1; 2 ] ] in
  (match Cnf.clauses cnf with
  | [ c ] -> check int "collapsed" 2 (List.length c)
  | _ -> Alcotest.fail "expected one clause");
  ()

let test_cnf_bad_literal () =
  Alcotest.check_raises "out of range" (Invalid_argument "Cnf: literal 4 out of range 1..3")
    (fun () -> ignore (Cnf.of_list 3 [ [ 4 ] ]))

let test_cnf_empty_clause () =
  let cnf = Cnf.of_list 1 [ [] ] in
  check int "empty clause kept" 1 (Cnf.num_clauses cnf);
  check bool "unsat" false (Cnf.eval cnf (fun _ -> true))

(* --- Dimacs ------------------------------------------------------------- *)

let test_dimacs_roundtrip () =
  let cnf = Cnf.of_list 4 [ [ 1; -2; 3 ]; [ -4 ]; [ 2; 4 ] ] in
  let cnf' = Dimacs.parse_exn (Dimacs.to_string cnf) in
  check int "vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf');
  Alcotest.(check (list (list int)))
    "clauses" (Cnf.clauses cnf) (Cnf.clauses cnf')

let test_dimacs_comments () =
  let text = "c a comment\np cnf 2 2\n1 -2 0\nc another\n2 0\n" in
  let cnf = Dimacs.parse_exn text in
  check int "clauses" 2 (Cnf.num_clauses cnf)

let test_dimacs_multiline_clause () =
  let text = "p cnf 3 1\n1 2\n3 0\n" in
  let cnf = Dimacs.parse_exn text in
  Alcotest.(check (list (list int))) "clause" [ [ 1; 2; 3 ] ] (Cnf.clauses cnf)

let test_dimacs_errors () =
  (match Dimacs.parse "1 2 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing header accepted");
  match Dimacs.parse "p cnf 2 1\n1 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated clause accepted"

let test_dimacs_validation () =
  let expect_error name text fragment =
    match Dimacs.parse text with
    | Ok _ -> Alcotest.fail (name ^ ": accepted")
    | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      check bool
        (Printf.sprintf "%s: %S mentions %S" name msg fragment)
        true (contains msg fragment)
  in
  expect_error "clause undercount" "p cnf 2 3\n1 0\n2 0\n"
    "declares 3 clauses but 2 found";
  expect_error "clause overcount" "p cnf 2 1\n1 0\n2 0\n"
    "declares 1 clauses but 2 found";
  expect_error "literal out of range" "p cnf 2 1\n3 0\n" "literal 3 out of range";
  expect_error "negative literal out of range" "p cnf 2 1\n-5 0\n"
    "literal -5 out of range";
  expect_error "bad clause count" "p cnf 2 x\n1 0\n" "bad clause count";
  expect_error "negative clause count" "p cnf 2 -1\n1 0\n"
    "negative clause count";
  expect_error "truncated header" "p cnf 2" "truncated";
  (* The header is line-scoped: a bare "p cnf" must not consume the first
     clause's literals as its variable/clause counts. *)
  expect_error "truncated header before clauses" "p cnf\n1 0\n" "truncated";
  (* A tautological clause still counts towards the declared total even
     though the Cnf constructor drops it. *)
  match Dimacs.parse "p cnf 2 2\n1 -1 0\n2 0\n" with
  | Error msg -> Alcotest.fail ("tautology miscounted: " ^ msg)
  | Ok cnf -> check bool "tautology dropped" true (Cnf.num_clauses cnf <= 2)

(* --- Solver vs brute force ---------------------------------------------- *)

let test_solver_trivial () =
  check bool "empty cnf sat" true (Solver.is_satisfiable (Cnf.create 0));
  check bool "unit sat" true (Solver.is_satisfiable (Cnf.of_list 1 [ [ 1 ] ]));
  check bool "contradiction" false
    (Solver.is_satisfiable (Cnf.of_list 1 [ [ 1 ]; [ -1 ] ]));
  check bool "empty clause" false
    (Solver.is_satisfiable (Cnf.of_list 1 [ [] ]))

let test_solver_model_valid () =
  let cnf =
    Workload.random_3cnf ~seed:7 ~vars:20 ~clauses:60
  in
  match Solver.solve cnf with
  | Solver.Unsat -> ()
  | Solver.Sat _ as r -> check bool "model satisfies" true (Solver.model_checks r cnf)

let test_solver_forced_sat () =
  (* Instances built around a hidden assignment must come back SAT. *)
  for seed = 1 to 20 do
    let cnf = Workload.forced_sat ~seed ~vars:30 ~clauses:120 ~k:3 in
    check bool (Printf.sprintf "forced sat seed %d" seed) true
      (Solver.is_satisfiable cnf)
  done

let test_solver_pigeonhole () =
  for n = 1 to 5 do
    check bool
      (Printf.sprintf "pigeonhole %d unsat" n)
      false
      (Solver.is_satisfiable (Workload.pigeonhole n))
  done

let test_solver_vs_brute () =
  for seed = 1 to 60 do
    let vars = 4 + (seed mod 6) in
    let clauses = 2 + (3 * (seed mod 8)) in
    let cnf = Workload.random_3cnf ~seed ~vars ~clauses in
    let expected = Brute.is_satisfiable cnf in
    check bool
      (Printf.sprintf "seed %d agrees" seed)
      expected
      (Solver.is_satisfiable cnf)
  done

let test_solve_with_units () =
  let cnf = Cnf.of_list 2 [ [ 1; 2 ] ] in
  (match Solver.solve_with_units cnf [ -1; -2 ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "units should make it unsat");
  match Solver.solve_with_units cnf [ -1 ] with
  | Solver.Sat m -> check bool "x2 forced" true m.(2)
  | Solver.Unsat -> Alcotest.fail "should be sat"

(* --- Enumeration -------------------------------------------------------- *)

let test_enumerate_counts () =
  for seed = 1 to 30 do
    let vars = 3 + (seed mod 4) in
    let clauses = 2 + (2 * (seed mod 5)) in
    let cnf = Workload.random_kcnf ~seed ~vars ~clauses ~k:2 in
    check int
      (Printf.sprintf "count seed %d" seed)
      (Brute.count_models cnf) (Enumerate.count cnf)
  done

let test_enumerate_limit () =
  let cnf = Cnf.create 4 in
  check int "limit caps" 5 (Enumerate.count ~limit:5 cnf);
  check int "all models" 16 (Enumerate.count cnf)

let test_enumerate_projection () =
  (* x1 free, x2 forced true: projecting on x2 gives one model, on x1 two. *)
  let cnf = Cnf.of_list 2 [ [ 2 ] ] in
  check int "projection x2" 1 (Enumerate.count ~projection:[ 2 ] cnf);
  check int "projection x1" 2 (Enumerate.count ~projection:[ 1 ] cnf)

let test_exactly_k_models () =
  for k = 0 to 8 do
    let cnf = Workload.exactly_k_models 3 k in
    check int (Printf.sprintf "k=%d" k) k (Brute.count_models cnf);
    check int (Printf.sprintf "k=%d via solver" k) k (Enumerate.count cnf)
  done

let test_unique () =
  check bool "unique" true (Enumerate.is_unique (Workload.exactly_k_models 3 1));
  check bool "two models" false
    (Enumerate.is_unique (Workload.exactly_k_models 3 2));
  check bool "unsat not unique" false
    (Enumerate.is_unique (Workload.exactly_k_models 3 0))

let test_forced_true () =
  let cnf = Cnf.of_list 3 [ [ 1 ]; [ -1; 2 ] ] in
  Alcotest.(check (list int))
    "forced" [ 1; 2 ]
    (Enumerate.forced_true cnf [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "unsat forces nothing" []
    (Enumerate.forced_true (Cnf.of_list 1 [ [ 1 ]; [ -1 ] ]) [ 1 ])

(* --- Exact counting (#SAT) ----------------------------------------------- *)

let test_count_basics () =
  check int "free formula" 16 (Count.count (Cnf.create 4));
  check int "unit" 1 (Count.count (Cnf.of_list 1 [ [ 1 ] ]));
  check int "contradiction" 0 (Count.count (Cnf.of_list 1 [ [ 1 ]; [ -1 ] ]));
  check int "xor" 2 (Count.count (Cnf.of_list 2 [ [ 1; 2 ]; [ -1; -2 ] ]));
  check int "or over 3" 7 (Count.count (Cnf.of_list 3 [ [ 1; 2; 3 ] ]))

let test_count_vs_brute () =
  for seed = 1 to 40 do
    let vars = 3 + (seed mod 6) in
    let clauses = 2 + (2 * (seed mod 6)) in
    let cnf = Workload.random_kcnf ~seed ~vars ~clauses ~k:2 in
    check int
      (Printf.sprintf "seed %d" seed)
      (Brute.count_models cnf) (Count.count cnf)
  done

let test_count_engineered () =
  for k = 0 to 8 do
    check int
      (Printf.sprintf "exactly %d" k)
      k
      (Count.count (Workload.exactly_k_models 3 k))
  done;
  check int "pigeonhole 3" 0 (Count.count (Workload.pigeonhole 3))

let test_count_components_scale () =
  (* k disjoint xor-pairs: 2^k models, cheap thanks to the component
     split even for k = 20 (enumeration would need a million calls). *)
  let k = 20 in
  let cnf =
    Cnf.of_list (2 * k)
      (List.concat
         (List.init k (fun i ->
              let a = (2 * i) + 1 and b = (2 * i) + 2 in
              [ [ a; b ]; [ -a; -b ] ])))
  in
  check int "2^20" (1 lsl 20) (Count.count cnf)

let test_count_budget () =
  let cnf = Workload.random_3cnf ~seed:5 ~vars:20 ~clauses:40 in
  (match Count.count_limited ~budget:3 cnf with
  | Outcome.Lower_bound (n, Outcome.Node_budget) ->
    check bool "partial bound is non-negative" true (n >= 0)
  | Outcome.Lower_bound _ -> Alcotest.fail "expected a node-budget reason"
  | Outcome.Exact _ -> Alcotest.fail "tiny budget should give up");
  match Count.count_limited ~budget:10_000_000 cnf with
  | Outcome.Exact n -> check bool "real budget counts" true (n >= 0)
  | Outcome.Lower_bound _ -> Alcotest.fail "expected a count"

(* --- Incremental sessions ------------------------------------------------ *)

let test_session_basic () =
  let cnf = Cnf.of_list 3 [ [ 1; 2 ]; [ -1; 3 ] ] in
  let s = Solver.session cnf in
  (match Solver.solve_assuming s [] with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "satisfiable");
  (match Solver.solve_assuming s [ -2 ] with
  | Solver.Sat m -> check bool "x1 and x3 forced" true (m.(1) && m.(3))
  | Solver.Unsat -> Alcotest.fail "sat under -2");
  (match Solver.solve_assuming s [ -2; -3 ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "x1 forced then x3 forced: unsat");
  (* The session recovers after an unsat query. *)
  match Solver.solve_assuming s [] with
  | Solver.Sat _ -> ()
  | Solver.Unsat -> Alcotest.fail "still satisfiable"

let test_session_add_clause () =
  let cnf = Cnf.create 2 in
  let s = Solver.session cnf in
  Solver.add_clause s [ 1 ];
  (match Solver.solve_assuming s [ -1 ] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "x1 is now forced");
  Solver.add_clause s [ -1 ];
  match Solver.solve_assuming s [] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "contradictory clauses"

let test_session_blocking_enumeration () =
  (* Manual enumeration over a 3-variable free formula: 8 models. *)
  let cnf = Cnf.create 3 in
  let s = Solver.session cnf in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Solver.solve_assuming s [] with
    | Solver.Unsat -> continue := false
    | Solver.Sat m ->
      incr count;
      Solver.add_clause s
        (List.init 3 (fun i -> if m.(i + 1) then -(i + 1) else i + 1))
  done;
  check int "8 models" 8 !count

let prop_session_matches_units =
  QCheck.Test.make ~name:"session+assumptions = fresh solve with units"
    ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* vars = int_range 1 6 in
         let* n_clauses = int_range 0 10 in
         let clause =
           let* len = int_range 1 3 in
           list_size (return len)
             (let* v = int_range 1 vars in
              let* sign = bool in
              return (if sign then v else -v))
         in
         let* cs = list_size (return n_clauses) clause in
         let* n_queries = int_range 1 4 in
         let assumption_set =
           let* len = int_range 0 3 in
           list_size (return len)
             (let* v = int_range 1 vars in
              let* sign = bool in
              return (if sign then v else -v))
         in
         let* queries = list_size (return n_queries) assumption_set in
         return (vars, cs, queries))
       ~print:(fun (v, cs, qs) ->
         Printf.sprintf "vars=%d clauses=%d queries=%d" v (List.length cs)
           (List.length qs)))
    (fun (vars, cs, queries) ->
      let cnf = Cnf.of_list vars cs in
      let s = Solver.session cnf in
      List.for_all
        (fun assumptions ->
          let via_session =
            match Solver.solve_assuming s assumptions with
            | Solver.Sat _ -> true
            | Solver.Unsat -> false
          in
          let via_fresh =
            match Solver.solve_with_units cnf assumptions with
            | Solver.Sat _ -> true
            | Solver.Unsat -> false
          in
          via_session = via_fresh)
        queries)

(* --- Outcomes, budgets and cancellation ---------------------------------- *)

let test_count_budget_boundary () =
  (* Two independent xor components with 2 models each.  The node budget
     dies inside the second component: the old counter threw the whole
     computation away, the partial semantics keeps the fully counted first
     component (2 models) as a sound lower bound.  Pinned exactly. *)
  let cnf = Cnf.of_list 4 [ [ 1; 2 ]; [ -1; -2 ]; [ 3; 4 ]; [ -3; -4 ] ] in
  let expect budget expected =
    let got = Count.count_limited ~budget cnf in
    check bool
      (Printf.sprintf "budget %d" budget)
      true (got = expected)
  in
  expect 1 (Outcome.Lower_bound (0, Outcome.Node_budget));
  expect 3 (Outcome.Lower_bound (0, Outcome.Node_budget));
  (* First component fully counted, second cut mid-branch: bound 2 = 2 x 1. *)
  expect 4 (Outcome.Lower_bound (2, Outcome.Node_budget));
  expect 5 (Outcome.Exact 4);
  expect 100 (Outcome.Exact 4);
  (* An input-level empty clause is exactly zero models, never a crash and
     never a budget question. *)
  check bool "empty clause" true
    (Count.count_limited ~budget:1 (Cnf.of_list 2 [ []; [ 1 ] ])
    = Outcome.Exact 0)

let test_outcome_cancelled () =
  let cnf = Workload.pigeonhole 4 in
  let stop = Atomic.make true in
  (match Solver.solve_outcome ~stop cnf with
  | Outcome.Unknown Outcome.Cancelled -> ()
  | _ -> Alcotest.fail "a raised stop flag must cancel the search");
  match Solver.solve_outcome ~mode:(`Portfolio 3) ~stop cnf with
  | Outcome.Unknown Outcome.Cancelled -> ()
  | _ -> Alcotest.fail "the portfolio honours the caller's stop flag"

let test_outcome_conflict_budget () =
  let cnf = Workload.pigeonhole 5 in
  (match Solver.solve_outcome ~conflict_budget:3 cnf with
  | Outcome.Unknown Outcome.Conflict_budget -> ()
  | _ -> Alcotest.fail "a tiny conflict budget must report exhaustion");
  (match Solver.solve_outcome ~mode:(`Portfolio 4) ~conflict_budget:3 cnf with
  | Outcome.Unknown Outcome.Conflict_budget -> ()
  | _ -> Alcotest.fail "portfolio-wide budget exhaustion is an Unknown");
  match Solver.solve_outcome ~conflict_budget:1_000_000 cnf with
  | Outcome.Unsat -> ()
  | _ -> Alcotest.fail "a generous budget decides pigeonhole 5"

let test_outcome_time_budget () =
  match Solver.solve_outcome ~time_budget:0.0 (Workload.pigeonhole 6) with
  | Outcome.Unknown Outcome.Time_budget -> ()
  | _ -> Alcotest.fail "a zero time budget must give up immediately"

let test_session_budget_resume () =
  let s = Solver.session (Workload.pigeonhole 5) in
  (match Solver.solve_assuming_outcome ~conflict_budget:3 s [] with
  | Outcome.Unknown Outcome.Conflict_budget -> ()
  | _ -> Alcotest.fail "session call respects its conflict budget");
  (* The state (learned clauses, phases, restart schedule) survives the
     Unknown: an unbudgeted call resumes and finishes the proof. *)
  match Solver.solve_assuming s [] with
  | Solver.Unsat -> ()
  | Solver.Sat _ -> Alcotest.fail "pigeonhole 5 is unsat"

let test_portfolio_decides () =
  (* Satisfiable and unsatisfiable instances through every worker count,
     including n > the profile table. *)
  List.iter
    (fun n ->
      check bool
        (Printf.sprintf "forced sat, n=%d" n)
        true
        (Solver.is_satisfiable ~mode:(`Portfolio n)
           (Workload.forced_sat ~seed:n ~vars:30 ~clauses:100 ~k:3));
      check bool
        (Printf.sprintf "pigeonhole unsat, n=%d" n)
        false
        (Solver.is_satisfiable ~mode:(`Portfolio n) (Workload.pigeonhole 4)))
    [ 2; 3; 4; 6 ]

(* --- Properties --------------------------------------------------------- *)

let cnf_gen =
  let open QCheck.Gen in
  let* vars = int_range 1 6 in
  let* n_clauses = int_range 0 12 in
  let clause_gen =
    let* len = int_range 0 3 in
    list_size (return len)
      (let* v = int_range 1 vars in
       let* sign = bool in
       return (if sign then v else -v))
  in
  let* cs = list_size (return n_clauses) clause_gen in
  return (vars, cs)

let arbitrary_cnf =
  QCheck.make cnf_gen ~print:(fun (v, cs) ->
      Printf.sprintf "vars=%d clauses=%s" v
        (String.concat ";"
           (List.map
              (fun c -> "[" ^ String.concat "," (List.map string_of_int c) ^ "]")
              cs)))

let prop_solver_agrees_with_brute =
  QCheck.Test.make ~name:"solver agrees with brute force" ~count:300
    arbitrary_cnf (fun (vars, cs) ->
      let cnf = Cnf.of_list vars cs in
      Solver.is_satisfiable cnf = Brute.is_satisfiable cnf)

let prop_solver_model_satisfies =
  QCheck.Test.make ~name:"solver models satisfy the formula" ~count:300
    arbitrary_cnf (fun (vars, cs) ->
      let cnf = Cnf.of_list vars cs in
      Solver.model_checks (Solver.solve cnf) cnf)

let prop_enumeration_matches_brute =
  QCheck.Test.make ~name:"enumeration count = brute count" ~count:150
    arbitrary_cnf (fun (vars, cs) ->
      let cnf = Cnf.of_list vars cs in
      Enumerate.count cnf = Brute.count_models cnf)

let prop_dimacs_roundtrip =
  QCheck.Test.make ~name:"dimacs round trip" ~count:200 arbitrary_cnf
    (fun (vars, cs) ->
      let cnf = Cnf.of_list vars cs in
      let cnf' = Dimacs.parse_exn (Dimacs.to_string cnf) in
      Cnf.clauses cnf = Cnf.clauses cnf' && Cnf.num_vars cnf = Cnf.num_vars cnf')

(* Differential battery: every solving mode against the exhaustive
   baseline, on the same random CNF distribution.  The portfolio must be
   an observationally pure speedup — identical sat status, and any model
   it returns must actually satisfy the formula. *)
let prop_mode_vs_brute label mode =
  QCheck.Test.make
    ~name:(Printf.sprintf "differential: %s = brute force" label)
    ~count:500 arbitrary_cnf
    (fun (vars, cs) ->
      let cnf = Cnf.of_list vars cs in
      match Solver.solve ~mode cnf with
      | Solver.Sat _ as r ->
        Brute.is_satisfiable cnf && Solver.model_checks r cnf
      | Solver.Unsat -> not (Brute.is_satisfiable cnf))

let prop_sequential_vs_brute = prop_mode_vs_brute "sequential" `Sequential
let prop_portfolio2_vs_brute = prop_mode_vs_brute "portfolio n=2" (`Portfolio 2)
let prop_portfolio4_vs_brute = prop_mode_vs_brute "portfolio n=4" (`Portfolio 4)

let arbitrary_budgeted_cnf =
  QCheck.make
    QCheck.Gen.(pair cnf_gen (int_range 1 20))
    ~print:(fun ((v, cs), b) ->
      Printf.sprintf "vars=%d clauses=%d budget=%d" v (List.length cs) b)

let prop_count_budget_sound =
  QCheck.Test.make ~name:"budgeted census is exact or a sound lower bound"
    ~count:500 arbitrary_budgeted_cnf
    (fun ((vars, cs), budget) ->
      let cnf = Cnf.of_list vars cs in
      let brute = Brute.count_models cnf in
      match Count.count_limited ~budget cnf with
      | Outcome.Exact n -> n = brute
      | Outcome.Lower_bound (n, Outcome.Node_budget) -> 0 <= n && n <= brute
      | Outcome.Lower_bound _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_solver_agrees_with_brute;
      prop_solver_model_satisfies;
      prop_enumeration_matches_brute;
      prop_session_matches_units;
      prop_dimacs_roundtrip;
      prop_sequential_vs_brute;
      prop_portfolio2_vs_brute;
      prop_portfolio4_vs_brute;
      prop_count_budget_sound;
    ]

let () =
  Alcotest.run "sat"
    [
      ( "cnf",
        [
          Alcotest.test_case "basic" `Quick test_cnf_basic;
          Alcotest.test_case "tautology dropped" `Quick test_cnf_tautology_dropped;
          Alcotest.test_case "duplicate literals" `Quick test_cnf_duplicate_literals;
          Alcotest.test_case "bad literal" `Quick test_cnf_bad_literal;
          Alcotest.test_case "empty clause" `Quick test_cnf_empty_clause;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments" `Quick test_dimacs_comments;
          Alcotest.test_case "multiline clause" `Quick test_dimacs_multiline_clause;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "header validation" `Quick test_dimacs_validation;
        ] );
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_solver_trivial;
          Alcotest.test_case "model valid" `Quick test_solver_model_valid;
          Alcotest.test_case "forced sat" `Quick test_solver_forced_sat;
          Alcotest.test_case "pigeonhole" `Quick test_solver_pigeonhole;
          Alcotest.test_case "vs brute" `Quick test_solver_vs_brute;
          Alcotest.test_case "units" `Quick test_solve_with_units;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "counts" `Quick test_enumerate_counts;
          Alcotest.test_case "limit" `Quick test_enumerate_limit;
          Alcotest.test_case "projection" `Quick test_enumerate_projection;
          Alcotest.test_case "exactly k" `Quick test_exactly_k_models;
          Alcotest.test_case "unique" `Quick test_unique;
          Alcotest.test_case "forced true" `Quick test_forced_true;
        ] );
      ( "count",
        [
          Alcotest.test_case "basics" `Quick test_count_basics;
          Alcotest.test_case "vs brute" `Quick test_count_vs_brute;
          Alcotest.test_case "engineered" `Quick test_count_engineered;
          Alcotest.test_case "components scale" `Quick test_count_components_scale;
          Alcotest.test_case "budget" `Quick test_count_budget;
          Alcotest.test_case "budget boundary" `Quick
            test_count_budget_boundary;
        ] );
      ( "session",
        [
          Alcotest.test_case "basic" `Quick test_session_basic;
          Alcotest.test_case "add clause" `Quick test_session_add_clause;
          Alcotest.test_case "blocking enumeration" `Quick
            test_session_blocking_enumeration;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "cancelled" `Quick test_outcome_cancelled;
          Alcotest.test_case "conflict budget" `Quick
            test_outcome_conflict_budget;
          Alcotest.test_case "time budget" `Quick test_outcome_time_budget;
          Alcotest.test_case "session budget + resume" `Quick
            test_session_budget_resume;
          Alcotest.test_case "portfolio decides" `Quick test_portfolio_decides;
        ] );
      ("properties", qcheck_tests);
    ]
