(* Cross-cutting property tests: a random DATALOG-not program generator and
   the equivalences every component pair must satisfy.

   These are the strongest correctness checks in the repository: for
   arbitrary small programs and databases,
     - the naive and semi-naive inflationary engines agree;
     - the inflationary limit is a fixpoint of the inflationary operator
       (Theta(S) subset of S) and its stage deltas partition the result;
     - the grounding's immediate consequence operator tracks Theta along
       the inflationary iteration;
     - brute-force and SAT-based fixpoint censuses agree, and every model
       returned really is a fixpoint;
     - on positive programs, naive least fixpoint = inflationary =
       stratified, and a least fixpoint always exists;
     - on stratifiable programs the well-founded model is total and equals
       the stratified semantics;
     - the Proposition 1 operator translation preserves semantics. *)

module Ast = Datalog.Ast
module Idb = Evallib.Idb
module Theta = Evallib.Theta
module Ground = Evallib.Ground
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph

(* The shared random program/database generator lives in
   test/support/gen_programs.ml so every suite draws from the same space. *)

let arb_case = Testsupport.Gen_programs.arb_case

let positivise = Testsupport.Gen_programs.positivise

(* --- properties ------------------------------------------------------------ *)

let prop_engines_agree =
  QCheck.Test.make ~name:"naive and seminaive inflationary engines agree"
    ~count:150 arb_case (fun (p, db) ->
      Idb.equal
        (Evallib.Inflationary.eval ~engine:`Naive p db)
        (Evallib.Inflationary.eval ~engine:`Seminaive p db))

(* Every (storage, engine, indexing) combination must compute the same
   model — the fixpoint is a semantic object, not an artefact of relation
   representation, evaluation order, index structure, or domain
   scheduling. *)
let storages : Relalg.Relation.storage list = [ `Hashed; `Treeset ]

let engines = [ `Naive; `Seminaive; `Parallel ]

let indexings = [ `Cached; `Percall; `Scan ]

let all_modes_agree eval equal reference =
  List.for_all
    (fun storage ->
      List.for_all
        (fun engine ->
          List.for_all
            (fun indexing ->
              equal reference (eval ~storage ~engine ~indexing))
            indexings)
        engines)
    storages

let prop_engine_matrix_inflationary =
  QCheck.Test.make
    ~name:"all storage x engine x indexing modes agree (inflationary fixpoint)"
    ~count:60 arb_case (fun (p, db) ->
      let reference = Evallib.Inflationary.eval p db in
      all_modes_agree
        (fun ~storage ~engine ~indexing ->
          Evallib.Inflationary.eval ~storage ~engine ~indexing p db)
        Idb.equal reference)

let prop_engine_matrix_positive =
  QCheck.Test.make
    ~name:"all storage x engine x indexing modes agree (positive lfp)"
    ~count:60 arb_case (fun (p, db) ->
      let p = positivise p in
      let reference = Evallib.Naive.least_fixpoint p db in
      all_modes_agree
        (fun ~storage ~engine ~indexing ->
          Evallib.Naive.least_fixpoint ~storage ~engine ~indexing p db)
        Idb.equal reference)

let prop_engine_matrix_semantics =
  QCheck.Test.make
    ~name:
      "all storage x engine x indexing modes agree (stratified + well-founded)"
    ~count:40 arb_case (fun (p, db) ->
      QCheck.assume (Datalog.Stratify.is_stratified p);
      let strat_ref = Evallib.Stratified.eval_exn p db in
      let wf_equal (a : Evallib.Wellfounded.model) b =
        Idb.equal a.Evallib.Wellfounded.true_facts
          b.Evallib.Wellfounded.true_facts
        && Idb.equal a.Evallib.Wellfounded.possible
             b.Evallib.Wellfounded.possible
      in
      let wf_ref = Evallib.Wellfounded.eval p db in
      all_modes_agree
        (fun ~storage ~engine ~indexing ->
          Evallib.Stratified.eval_exn ~storage ~engine ~indexing p db)
        Idb.equal strat_ref
      && all_modes_agree
           (fun ~storage ~engine ~indexing ->
             Evallib.Wellfounded.eval ~storage ~engine ~indexing p db)
           wf_equal wf_ref)

(* The morsel grain is pure scheduling: whatever the shard size (one tuple,
   a prime that straddles shard boundaries, the auto heuristic) or the
   rule-level fallback, the [`Parallel] engine must compute the reference
   model — across planners and storage backends, and for every semantics
   built on saturation. *)
let grains : Evallib.Engine.grain list = [ `Fixed 1; `Fixed 7; `Auto; `Rules ]

let planners : Evallib.Engine.planner list = [ `Static; `Greedy; `Scan ]

(* One pool shared across all iterations: spawning domains per case would
   dominate the property's runtime. *)
let shared_pool = lazy (Negdl_util.Domain_pool.create ~size:2 ())

let prop_grain_matrix =
  QCheck.Test.make
    ~name:"parallel engine agrees across grain x planner x storage (all \
           semantics)"
    ~count:30 arb_case (fun (p, db) ->
      let pool = Lazy.force shared_pool in
      let agree eval equal reference =
        List.for_all
          (fun grain ->
            List.for_all
              (fun planner ->
                List.for_all
                  (fun storage ->
                    equal reference (eval ~grain ~planner ~storage))
                  storages)
              planners)
          grains
      in
      let infl_ref = Evallib.Inflationary.eval p db in
      let pos = positivise p in
      let lfp_ref = Evallib.Naive.least_fixpoint pos db in
      agree
        (fun ~grain ~planner ~storage ->
          Evallib.Inflationary.eval ~engine:`Parallel ~pool ~grain ~planner
            ~storage p db)
        Idb.equal infl_ref
      && agree
           (fun ~grain ~planner ~storage ->
             Evallib.Naive.least_fixpoint ~engine:`Parallel ~pool ~grain
               ~planner ~storage pos db)
           Idb.equal lfp_ref
      &&
      if not (Datalog.Stratify.is_stratified p) then true
      else
        let strat_ref = Evallib.Stratified.eval_exn p db in
        let wf_ref = Evallib.Wellfounded.eval p db in
        let wf_equal (a : Evallib.Wellfounded.model) b =
          Idb.equal a.Evallib.Wellfounded.true_facts
            b.Evallib.Wellfounded.true_facts
          && Idb.equal a.Evallib.Wellfounded.possible
               b.Evallib.Wellfounded.possible
        in
        agree
          (fun ~grain ~planner ~storage ->
            Evallib.Stratified.eval_exn ~engine:`Parallel ~pool ~grain
              ~planner ~storage p db)
          Idb.equal strat_ref
        && agree
             (fun ~grain ~planner ~storage ->
               Evallib.Wellfounded.eval ~engine:`Parallel ~pool ~grain
                 ~planner ~storage p db)
             wf_equal wf_ref)

(* The partitioned packed store must be observationally identical to the
   seed's single-table semantics: a Treeset/Seminaive reference model is
   compared against the Hashed (partitioned) backend under both the
   sequential and the parallel engine, at the auto and per-rule grains. *)
let prop_partitioned_store_oracle =
  QCheck.Test.make
    ~name:"partitioned hashed store matches single-table treeset semantics"
    ~count:40 arb_case (fun (p, db) ->
      if not (Datalog.Stratify.is_stratified p) then true
      else
        let pool = Lazy.force shared_pool in
        let reference =
          Evallib.Stratified.eval_exn ~engine:`Seminaive ~storage:`Treeset p
            db
        in
        List.for_all
          (fun storage ->
            Idb.equal reference
              (Evallib.Stratified.eval_exn ~engine:`Seminaive ~storage p db)
            && List.for_all
                 (fun grain ->
                   Idb.equal reference
                     (Evallib.Stratified.eval_exn ~engine:`Parallel ~pool
                        ~grain ~storage p db))
                 [ `Auto; `Rules ])
          [ `Hashed; `Treeset ])

let prop_limit_is_inflationary_fixpoint =
  QCheck.Test.make ~name:"Theta(limit) is contained in the limit" ~count:150
    arb_case (fun (p, db) ->
      let limit = Evallib.Inflationary.eval p db in
      Idb.subset (Theta.apply p db limit) limit)

let prop_deltas_partition =
  QCheck.Test.make ~name:"stage deltas are disjoint and union to the limit"
    ~count:100 arb_case (fun (p, db) ->
      let trace = Evallib.Inflationary.eval_trace p db in
      let union =
        List.fold_left Idb.union (Idb.of_program p) trace.Evallib.Saturate.deltas
      in
      let rec disjoint = function
        | [] -> true
        | d :: rest ->
          List.for_all (fun d' -> Idb.is_empty (Idb.inter d d')) rest
          && disjoint rest
      in
      Idb.equal union trace.Evallib.Saturate.result
      && disjoint trace.Evallib.Saturate.deltas)

let prop_ground_tracks_theta =
  QCheck.Test.make ~name:"ground apply = Theta along the iteration" ~count:100
    arb_case (fun (p, db) ->
      let g = Ground.ground p db in
      let rec walk s n =
        n = 0
        ||
        let via_theta = Theta.apply p db s in
        Idb.equal via_theta (Ground.apply g s)
        && walk (Idb.union s via_theta) (n - 1)
      in
      walk (Idb.of_program p) 3)

let prop_census_agrees =
  QCheck.Test.make ~name:"brute and SAT fixpoint censuses agree" ~count:60
    arb_case (fun (p, db) ->
      let g = Ground.ground p db in
      QCheck.assume (Ground.atom_count g <= 14);
      let solver = Fixpointlib.Solve.prepare p db in
      Fixpointlib.Brute.count g = Fixpointlib.Solve.count solver)

let prop_solve_models_are_fixpoints =
  QCheck.Test.make ~name:"every enumerated fixpoint satisfies Theta(S)=S"
    ~count:60 arb_case (fun (p, db) ->
      let solver = Fixpointlib.Solve.prepare p db in
      List.for_all
        (fun fp -> Theta.is_fixpoint p db fp)
        (Fixpointlib.Solve.enumerate ~limit:8 solver))

let prop_least_is_least =
  QCheck.Test.make ~name:"reported least fixpoint is below every fixpoint"
    ~count:60 arb_case (fun (p, db) ->
      let solver = Fixpointlib.Solve.prepare p db in
      match Fixpointlib.Solve.least solver with
      | None -> true
      | Some least ->
        Theta.is_fixpoint p db least
        && List.for_all
             (fun fp -> Idb.subset least fp)
             (Fixpointlib.Solve.enumerate ~limit:16 solver))

let prop_positive_semantics_coincide =
  QCheck.Test.make ~name:"positive: naive lfp = inflationary = stratified"
    ~count:100 arb_case (fun (p, db) ->
      let p = positivise p in
      let lfp = Evallib.Naive.least_fixpoint p db in
      Idb.equal lfp (Evallib.Inflationary.eval p db)
      && Idb.equal lfp (Evallib.Stratified.eval_exn p db))

let prop_positive_has_least_fixpoint =
  QCheck.Test.make ~name:"positive programs have a least fixpoint = naive lfp"
    ~count:40 arb_case (fun (p, db) ->
      let p = positivise p in
      let g = Ground.ground p db in
      QCheck.assume (Ground.atom_count g <= 12);
      match Fixpointlib.Solve.least (Fixpointlib.Solve.prepare p db) with
      | None -> false
      | Some least -> Idb.equal least (Evallib.Naive.least_fixpoint p db))

let prop_wellfounded_on_stratified =
  QCheck.Test.make ~name:"stratifiable: well-founded total and = stratified"
    ~count:100 arb_case (fun (p, db) ->
      QCheck.assume (Datalog.Stratify.is_stratified p);
      let m = Evallib.Wellfounded.eval p db in
      Evallib.Wellfounded.is_total m
      && Idb.equal m.Evallib.Wellfounded.true_facts
           (Evallib.Stratified.eval_exn p db))

let prop_wellfounded_bounds =
  QCheck.Test.make ~name:"well-founded: true facts within possible facts"
    ~count:100 arb_case (fun (p, db) ->
      let m = Evallib.Wellfounded.eval p db in
      Idb.subset m.Evallib.Wellfounded.true_facts m.Evallib.Wellfounded.possible)

let prop_prop1_translation =
  QCheck.Test.make ~name:"Prop 1 operator translation preserves semantics"
    ~count:60 arb_case (fun (p, db) -> Reductions.Prop1.agree p db)

let prop_wellfounded_algorithms_agree =
  QCheck.Test.make
    ~name:"alternating fixpoint = unfounded sets (well-founded model)"
    ~count:120 arb_case (fun (p, db) ->
      let via_alternation = Evallib.Wellfounded.eval p db in
      let via_unfounded = Evallib.Unfounded.eval p db in
      Idb.equal via_alternation.Evallib.Wellfounded.true_facts
        via_unfounded.Evallib.Wellfounded.true_facts
      && Idb.equal
           (Evallib.Wellfounded.unknown via_alternation)
           (Evallib.Wellfounded.unknown via_unfounded))

let prop_kripke_kleene_within_wellfounded =
  QCheck.Test.make ~name:"Kripke-Kleene is at most as decided as well-founded"
    ~count:100 arb_case (fun (p, db) ->
      let kk = Evallib.Fitting.eval p db in
      let wf = Evallib.Wellfounded.eval p db in
      Idb.subset kk.Evallib.Fitting.true_facts wf.Evallib.Wellfounded.true_facts
      && Idb.subset wf.Evallib.Wellfounded.possible kk.Evallib.Fitting.possible)

let prop_indexed_equals_scan =
  QCheck.Test.make ~name:"indexed joins = full-scan joins" ~count:100 arb_case
    (fun (p, db) ->
      match Ast.idb_schema p with
      | Error _ -> true
      | Ok schema ->
        let universe = Relalg.Database.universe db in
        (* One Theta application against the inflationary limit, computed
           under all three indexing strategies. *)
        let s = Evallib.Inflationary.eval p db in
        let resolver =
          Evallib.Engine.uniform (Evallib.Engine.layered db s)
        in
        let apply indexing =
          Evallib.Engine.eval_rules ~indexing ~universe ~resolver ~schema
            p.Ast.rules
        in
        let cached = apply `Cached in
        Idb.equal cached (apply `Percall) && Idb.equal cached (apply `Scan))

(* Limit predicates: the plan-path tightening evaluation must agree with
   a brute-force reference that materializes every cost tuple (same rules,
   no limit declarations) and then keeps only the dominant tuple of each
   group.  Because the generator's guards match the limit kind's polarity
   (min with <=, max with >=), the strata above the limit predicate are
   insensitive to the dominant filter, so the whole models must coincide —
   across storage backends, engines, and static/adaptive planners. *)
let prop_limit_differential =
  QCheck.Test.make ~name:"limit tightening = dominant filter of pair model"
    ~count:60 Testsupport.Gen_programs.arb_limit_case
    (fun (limit_p, pairs_p, db) ->
      let pairs = Evallib.Stratified.eval_exn pairs_p db in
      let reference =
        List.fold_left
          (fun idb (l : Ast.limit) ->
            let kind =
              match l.Ast.kind with Ast.Min -> `Min | Ast.Max -> `Max
            in
            Idb.set idb l.Ast.limit_pred
              (Relalg.Relation.dominant ~kind ~col:l.Ast.column
                 (Idb.get pairs l.Ast.limit_pred)))
          pairs limit_p.Ast.limits
      in
      List.for_all
        (fun storage ->
          List.for_all
            (fun engine ->
              List.for_all
                (fun planner ->
                  Idb.equal reference
                    (Evallib.Stratified.eval_exn ~storage ~engine ~planner
                       limit_p db))
                [ `Static; `Adaptive ])
            [ `Seminaive; `Parallel ])
        storages)

let prop_pretty_roundtrip =
  QCheck.Test.make ~name:"pretty-printed programs re-parse identically"
    ~count:150 arb_case (fun (p, _db) ->
      Datalog.Parser.parse_program_exn (Datalog.Pretty.program_to_string p) = p)

let () =
  Alcotest.run "properties"
    [
      ( "random-programs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engines_agree;
            prop_engine_matrix_inflationary;
            prop_engine_matrix_positive;
            prop_engine_matrix_semantics;
            prop_grain_matrix;
            prop_partitioned_store_oracle;
            prop_limit_is_inflationary_fixpoint;
            prop_deltas_partition;
            prop_ground_tracks_theta;
            prop_census_agrees;
            prop_solve_models_are_fixpoints;
            prop_least_is_least;
            prop_positive_semantics_coincide;
            prop_positive_has_least_fixpoint;
            prop_wellfounded_on_stratified;
            prop_wellfounded_bounds;
            prop_prop1_translation;
            prop_wellfounded_algorithms_agree;
            prop_kripke_kleene_within_wellfounded;
            prop_indexed_equals_scan;
            prop_limit_differential;
            prop_pretty_roundtrip;
          ] );
    ]
