module Ast = Datalog.Ast

let variables = [ "X"; "Y"; "Z" ]

let preds = [ ("p", 1); ("q", 1); ("r", 2); ("e", 2); ("u", 1) ]

let idb_preds = [ ("p", 1); ("q", 1); ("r", 2) ]

let gen_term = QCheck.Gen.(map (fun v -> Ast.Var v) (oneofl variables))

let gen_atom_of preds =
  QCheck.Gen.(
    let* name, arity = oneofl preds in
    let* args = list_size (return arity) gen_term in
    return (Ast.atom name args))

let gen_literal =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun a -> Ast.Pos a) (gen_atom_of preds));
        (3, map (fun a -> Ast.Neg a) (gen_atom_of preds));
        ( 1,
          let* v1 = oneofl variables in
          let* v2 = oneofl variables in
          let* eq = bool in
          return
            (if eq then Ast.Eq (Ast.Var v1, Ast.Var v2)
             else Ast.Neq (Ast.Var v1, Ast.Var v2)) );
      ])

let gen_rule =
  QCheck.Gen.(
    let* head = gen_atom_of idb_preds in
    let* body_len = int_range 1 3 in
    let* body = list_size (return body_len) gen_literal in
    return (Ast.rule head body))

let gen_program =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* rules = list_size (return n) gen_rule in
    return (Ast.program rules))

let gen_database =
  QCheck.Gen.(
    let* n = int_range 2 4 in
    let* seed = int_range 0 10000 in
    let g = Graphlib.Generate.random ~seed ~n ~p:0.35 in
    let db = Graphlib.Digraph.to_database g in
    let* marks = list_size (return n) bool in
    let db =
      List.fold_left
        (fun db (v, marked) ->
          if marked then
            Relalg.Database.add_fact "u"
              (Relalg.Tuple.singleton (Graphlib.Digraph.vertex_symbol v))
              db
          else db)
        db
        (List.mapi (fun v m -> (v, m)) marks)
    in
    return db)

let print_case (p, db) =
  Printf.sprintf "program:\n%s\ndatabase:\n%s"
    (Datalog.Pretty.program_to_string p)
    (Relalg.Database.to_string db)

let arb_case =
  QCheck.make (QCheck.Gen.pair gen_program gen_database) ~print:print_case

(* --- random limit programs ---------------------------------------------- *)

(* A weighted-graph cost workload whose shape guarantees termination of
   both the tightening evaluation and its pair-materializing reference
   (the [<= cap] guard bounds every derivable cost), and whose guard
   polarity matches the limit kind so the stratum above the limit
   predicate stays monotone under tightening.  Randomness lives in the
   kind, the cap/threshold, the negated stratum, the rule set (an
   optional unit-cost hop counter as a second limit predicate) and the
   weighted digraph. *)
let gen_limit_case =
  QCheck.Gen.(
    let* kind = oneofl [ Ast.Min; Ast.Max ] in
    let* cap = int_range 6 14 in
    let* thr = int_range 0 cap in
    let* negated = bool in
    let* two_sources = bool in
    let* with_hops = bool in
    let guard = match kind with Ast.Min -> "<=" | Ast.Max -> ">=" in
    (* A [S <= cap] guard is monotone in a min bound (shrinking D keeps
       the guard satisfied) but anti-monotone in a max bound, where the
       stratifier rightly rejects it.  So min workloads terminate by the
       cap over an arbitrary digraph, and max workloads terminate
       structurally over a DAG with no guard at all. *)
    let cap_guard =
      match kind with
      | Ast.Min -> Printf.sprintf ", S <= %d" cap
      | Ast.Max -> ""
    in
    let text =
      Printf.sprintf
        "dist(X, 0) :- source(X).\n\
         dist(Y, S) :- dist(X, D), edge(X, Y, W), S = D + W%s.\n\
         near(X) :- dist(X, D), D %s %d.%s%s"
        cap_guard guard thr
        (if negated then "\nfar(X) :- node(X), !near(X)." else "")
        (if with_hops then
           Printf.sprintf
             "\nhops(X, 0) :- source(X).\n\
              hops(Y, S) :- hops(X, D), edge(X, Y, W), S = D + 1%s."
             cap_guard
         else "")
    in
    let rules = (Datalog.Parser.parse_program_exn text).Ast.rules in
    let limits =
      { Ast.limit_pred = "dist"; kind; column = 1 }
      :: (if with_hops then [ { Ast.limit_pred = "hops"; kind; column = 1 } ]
          else [])
    in
    let* n = int_range 3 6 in
    let* nedges = int_range n (3 * n) in
    let* edges =
      list_size (return nedges)
        (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 4))
    in
    let edges =
      match kind with
      | Ast.Min -> edges
      | Ast.Max ->
        (* Orient every edge upward and drop self-loops: acyclicity is
           the max workload's termination argument. *)
        List.filter_map
          (fun (a, b, w) ->
            if a = b then None else Some (min a b, max a b, w))
          edges
    in
    let v i = Relalg.Symbol.intern (Printf.sprintf "v%d" i) in
    let add_fact pred syms db =
      Relalg.Database.add_fact pred
        (Relalg.Tuple.of_list syms)
        (Relalg.Database.add_universe syms db)
    in
    let db = Relalg.Database.create ~universe:[] in
    let db = add_fact "source" [ v 0 ] db in
    let db = if two_sources && n > 1 then add_fact "source" [ v 1 ] db else db in
    let db =
      List.fold_left
        (fun db i -> add_fact "node" [ v i ] db)
        db
        (List.init n (fun i -> i))
    in
    let db =
      List.fold_left
        (fun db (a, b, w) ->
          add_fact "edge" [ v a; v b; Relalg.Symbol.of_int w ] db)
        db edges
    in
    return (Ast.program ~limits rules, Ast.program rules, db))

let print_limit_case (limit_p, _pairs_p, db) =
  Printf.sprintf "program:\n%s\ndatabase:\n%s"
    (Datalog.Pretty.program_to_string limit_p)
    (Relalg.Database.to_string db)

let arb_limit_case = QCheck.make gen_limit_case ~print:print_limit_case

let positivise (p : Ast.program) =
  let fix_rule (r : Ast.rule) =
    let body =
      List.filter
        (function
          | Ast.Pos _ | Ast.Eq _ -> true
          | Ast.Neg _ | Ast.Neq _ | Ast.Leq _ | Ast.Geq _ | Ast.Plus _ ->
            false)
        r.body
    in
    let body =
      if List.exists (function Ast.Pos _ -> true | _ -> false) body then body
      else Ast.Pos (Ast.atom "e" [ Ast.Var "X"; Ast.Var "Y" ]) :: body
    in
    { r with Ast.body }
  in
  Ast.program (List.map fix_rule p.Ast.rules)
