(** Random DATALOG-not programs and databases for property tests.

    One shared generator so every suite exercises the same program space:
    IDB predicates p/1, q/1, r/2 over EDB e/2 (a random digraph) and u/1
    (random unary marks), with variables X, Y, Z, negation, and
    (in)equalities. *)

val gen_program : Datalog.Ast.program QCheck.Gen.t

val gen_database : Relalg.Database.t QCheck.Gen.t

val arb_case : (Datalog.Ast.program * Relalg.Database.t) QCheck.arbitrary
(** A program and a database, printed readably on failure. *)

val arb_limit_case :
  (Datalog.Ast.program * Datalog.Ast.program * Relalg.Database.t)
  QCheck.arbitrary
(** A random limit workload: a weighted digraph with a guarded
    cost-accumulation program, returned twice — once with [min]/[max]
    limit declarations on the cost predicates and once as the plain
    pair-materializing encoding of the same rules — plus the database.
    The guard polarity matches the limit kind, so the tightened model
    must equal the dominant-filtered pair model predicate for
    predicate. *)

val positivise : Datalog.Ast.program -> Datalog.Ast.program
(** Strips negation and inequality, padding empty-positive bodies with
    [e(X, Y)] so every rule keeps a positive literal. *)
