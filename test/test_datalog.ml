(* Tests for the DATALOG-not language layer: lexer, parser, pretty-printer
   round trips, AST queries, static checks, the dependency graph and
   stratification. *)

module Ast = Datalog.Ast
module Lexer = Datalog.Lexer
module Parser = Datalog.Parser
module Pretty = Datalog.Pretty
module Check = Datalog.Check
module Depgraph = Datalog.Depgraph
module Stratify = Datalog.Stratify
open Datalog.Dsl

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- Lexer ----------------------------------------------------------------- *)

let test_lexer_tokens () =
  match Lexer.tokenize "t(X) :- e(Y, X), !t(Y), X != Y. % trailing" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    let kinds = List.map fst tokens in
    check int "token count" 23 (List.length kinds);
    check bool "ends with eof" true (List.mem Lexer.EOF kinds);
    check bool "has neq" true (List.mem Lexer.NOT_EQUAL kinds)

let test_lexer_negation_spellings () =
  List.iter
    (fun text ->
      match Parser.parse_program text with
      | Ok p ->
        check bool text true
          (match (List.hd p.Ast.rules).Ast.body with
          | [ Ast.Neg _ ] -> true
          | _ -> false)
      | Error e -> Alcotest.fail e)
    [ "t(X) :- !p(X)."; "t(X) :- not p(X)."; "t(X) :- \\+p(X)." ]

let test_lexer_errors () =
  (match Lexer.tokenize "t(X) : - p(X)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone colon accepted");
  match Lexer.tokenize "t(X) <- p(X)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone < accepted"

(* --- Parser ----------------------------------------------------------------- *)

let test_parse_basic () =
  let p = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  check int "one rule" 1 (List.length p.Ast.rules);
  let r = List.hd p.Ast.rules in
  check string "head pred" "t" r.Ast.head.Ast.pred;
  check int "body size" 2 (List.length r.Ast.body)

let test_parse_fact_and_empty_body () =
  let p = Parser.parse_program_exn "start(a). p(X) :- ." in
  (match p.Ast.rules with
  | [ fact_rule; empty_rule ] ->
    check int "fact body" 0 (List.length fact_rule.Ast.body);
    check int "empty body" 0 (List.length empty_rule.Ast.body);
    check bool "constant arg" true
      (match fact_rule.Ast.head.Ast.args with
      | [ Ast.Const c ] -> Relalg.Symbol.name c = "a"
      | _ -> false)
  | _ -> Alcotest.fail "expected two rules");
  ()

let test_parse_zero_ary () =
  let p = Parser.parse_program_exn "flag :- marker(X). go :- flag." in
  check int "two rules" 2 (List.length p.Ast.rules)

let test_parse_comparisons () =
  let r = Parser.parse_rule_exn "p(X, Y) :- e(X, Y), X != Y, X = X." in
  check int "3 literals" 3 (List.length r.Ast.body)

let test_parse_constant_comparison () =
  let r = Parser.parse_rule_exn "p(X) :- e(X, Y), Y = a." in
  match r.Ast.body with
  | [ _; Ast.Eq (Ast.Var "Y", Ast.Const c) ] ->
    check string "constant" "a" (Relalg.Symbol.name c)
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_errors () =
  List.iter
    (fun text ->
      match Parser.parse_program text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [
      "t(X) :- e(X, Y)";      (* missing period *)
      "t(X) :- , e(X, Y).";   (* leading comma *)
      "t(X) :- e(X, Y,).";    (* trailing comma *)
      ":- e(X, Y).";          (* no head *)
      "t(X) :- !X = Y.";      (* negated comparison *)
      "t(X) :- X.";           (* bare variable as literal *)
    ]

(* --- Pretty round trip ------------------------------------------------------- *)

let roundtrip_programs =
  [
    "t(X) :- e(Y, X), !t(Y).";
    "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y).";
    "q(X) :- !s(X), n(X, Y), !s(Y).";
    "p(X, Y) :- e(X, Y), X != Y, Y = Y.";
    "flag. start(a). t(Z) :- !q(U), !t(W).";
  ]

let test_pretty_roundtrip () =
  List.iter
    (fun text ->
      let p = Parser.parse_program_exn text in
      let p' = Parser.parse_program_exn (Pretty.program_to_string p) in
      check bool text true (p = p'))
    roundtrip_programs

let test_pretty_shapes () =
  let r = Parser.parse_rule_exn "t(X) :- e(Y, X), !t(Y)." in
  check string "rule text" "t(X) :- e(Y, X), !t(Y)." (Pretty.rule_to_string r);
  let fact = Parser.parse_rule_exn "flag." in
  check string "fact text" "flag." (Pretty.rule_to_string fact)

(* --- AST queries ---------------------------------------------------------------- *)

let pi2 =
  (* The paper's pi_2: s1/s2 with negation across them. *)
  Parser.parse_program_exn
    "s1(X, Y) :- e(X, Y). s1(X, Y) :- e(X, Z), s1(Z, Y).\n\
     s2(X, Y, Z, W) :- s1(X, Y), !s1(Z, W)."

let test_idb_edb () =
  Alcotest.(check (list string)) "idb" [ "s1"; "s2" ] (Ast.idb_predicates pi2);
  Alcotest.(check (list string)) "edb" [ "e" ] (Ast.edb_predicates pi2)

let test_schema_inference () =
  match Ast.inferred_schema pi2 with
  | Error e -> Alcotest.fail e
  | Ok schema ->
    check (Alcotest.option int) "s2 arity" (Some 4)
      (Relalg.Schema.arity "s2" schema);
    check (Alcotest.option int) "e arity" (Some 2) (Relalg.Schema.arity "e" schema)

let test_schema_conflict () =
  let bad = Parser.parse_program_exn "p(X) :- q(X). p(X, Y) :- q(Y)." in
  match Ast.inferred_schema bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting arity accepted"

let test_rule_variables () =
  let r = Parser.parse_rule_exn "s2(X, Y, Z, W) :- s1(X, Y), !s1(Z, W)." in
  Alcotest.(check (list string)) "vars in order" [ "X"; "Y"; "Z"; "W" ]
    (Ast.rule_variables r);
  Alcotest.(check (list string)) "positive binds" [ "X"; "Y" ]
    (Ast.positive_body_variables r);
  check bool "not range restricted" false (Ast.is_range_restricted r)

let test_head_only_variables () =
  let r = Parser.parse_rule_exn "p(X, Y) :- e(X, Z)." in
  Alcotest.(check (list string)) "head only" [ "Y" ] (Ast.head_only_variables r)

let test_positivity () =
  check bool "pi2 not positive" false (Ast.is_positive pi2);
  check bool "tc positive" true
    (Ast.is_positive (Parser.parse_program_exn "s(X,Y) :- e(X,Y)."))

let test_rename_predicate () =
  let p = Ast.rename_predicate ~old_name:"e" ~new_name:"edge" pi2 in
  check bool "no more e" true (not (List.mem "e" (Ast.predicates p)));
  check bool "edge present" true (List.mem "edge" (Ast.predicates p))

let test_union_dedups () =
  let p = Parser.parse_program_exn "a(X) :- b(X)." in
  check int "dedup" 1 (List.length (Ast.union p p).Ast.rules)

(* --- Dsl --------------------------------------------------------------------- *)

let test_dsl_matches_parser () =
  let built =
    prog [ ("t", [ v "X" ]) <-- [ pos "e" [ v "Y"; v "X" ]; neg "t" [ v "Y" ] ] ]
  in
  let parsed = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  check bool "identical" true (built = parsed)

(* --- Check ------------------------------------------------------------------- *)

let test_check_reports () =
  match Check.validate pi2 with
  | Error _ -> Alcotest.fail "pi2 is valid"
  | Ok info ->
    check bool "negation" true info.Check.uses_negation;
    check bool "not range restricted" false info.Check.range_restricted;
    check int "one unrestricted rule" 1 (List.length info.Check.unrestricted_rules)

let test_check_errors () =
  (match Check.validate (Ast.program []) with
  | Error [ Check.Empty_program ] -> ()
  | _ -> Alcotest.fail "empty program should error");
  let bad = Parser.parse_program_exn "p(X) :- q(X). p(X, Y) :- q(Y)." in
  match Check.validate bad with
  | Error (Check.Inconsistent_arity _ :: _) -> ()
  | _ -> Alcotest.fail "arity clash should error"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_describe () =
  let d = Check.describe pi2 in
  check bool "mentions negation" true (contains d "negation");
  check bool "mentions universe-ranging" true (contains d "universe-ranging")

(* --- Depgraph ------------------------------------------------------------------ *)

let test_depgraph_edges () =
  let g = Depgraph.build pi2 in
  Alcotest.(check (list string)) "s2 depends" [ "s1" ] (Depgraph.depends_on g "s2");
  Alcotest.(check (list string)) "s2 negative" [ "s1" ]
    (Depgraph.negatively_depends_on g "s2");
  Alcotest.(check (list string)) "s1 depends" [ "e"; "s1" ]
    (List.sort String.compare (Depgraph.depends_on g "s1"))

let test_depgraph_recursion () =
  let g = Depgraph.build pi2 in
  Alcotest.(check (list string)) "recursive" [ "s1" ]
    (Depgraph.recursive_predicates g);
  check bool "no recursion through negation" false
    (Depgraph.has_recursion_through_negation g);
  let toggle = Parser.parse_program_exn "t(Z) :- !t(W)." in
  check bool "toggle recurses through negation" true
    (Depgraph.has_recursion_through_negation (Depgraph.build toggle))

(* --- Stratify ------------------------------------------------------------------- *)

let test_stratify_two_strata () =
  match Stratify.stratify pi2 with
  | Stratify.Not_stratifiable _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "pi2 stratifies"
  | Stratify.Stratified { strata; stratum_of } ->
    check int "two strata" 2 (List.length strata);
    check (Alcotest.option int) "s1 low" (Some 0) (stratum_of "s1");
    check (Alcotest.option int) "s2 high" (Some 1) (stratum_of "s2");
    check (Alcotest.option int) "edb none" None (stratum_of "e")

let test_stratify_rejects_toggle () =
  match Stratify.stratify (Parser.parse_program_exn "t(Z) :- !t(W).") with
  | Stratify.Not_stratifiable { offending = p, q } ->
    check string "offender" "t" p;
    check string "offended" "t" q
  | Stratify.Stratified _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "toggle must not stratify"

let test_stratify_mutual_recursion_positive () =
  (* Mutually recursive but positive: one stratum. *)
  let p = Parser.parse_program_exn "a(X) :- b(X). b(X) :- a(X). b(X) :- e(X)." in
  match Stratify.stratify p with
  | Stratify.Stratified { strata; _ } -> check int "one stratum" 1 (List.length strata)
  | Stratify.Not_stratifiable _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "positive recursion stratifies"

let test_stratify_mutual_negation () =
  let p = Parser.parse_program_exn "a(X) :- !b(X). b(X) :- !a(X)." in
  check bool "mutual negation rejected" false (Stratify.is_stratified p)

let test_stratify_chain () =
  (* Three layers: base, negation, negation of negation. *)
  let p =
    Parser.parse_program_exn
      "a(X) :- e(X, X). b(X) :- !a(X). c(X) :- !b(X), a(X)."
  in
  match Stratify.stratify p with
  | Stratify.Stratified { stratum_of; _ } ->
    check (Alcotest.option int) "a" (Some 0) (stratum_of "a");
    check (Alcotest.option int) "b" (Some 1) (stratum_of "b");
    check (Alcotest.option int) "c" (Some 2) (stratum_of "c")
  | Stratify.Not_stratifiable _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "chain stratifies"

let test_rules_of_stratum () =
  match Stratify.stratify pi2 with
  | Stratify.Stratified strat ->
    check int "stratum 0 rules" 2
      (List.length (Stratify.rules_of_stratum pi2 strat 0));
    check int "stratum 1 rules" 1
      (List.length (Stratify.rules_of_stratum pi2 strat 1))
  | Stratify.Not_stratifiable _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "pi2 stratifies"

(* --- Limit declarations --------------------------------------------------- *)

let sp_limit_text =
  "dist min 2. dist(X, 0) :- source(X). dist(Y, S) :- dist(X, D), edge(X, \
   Y, W), S = D + W. near(X) :- dist(X, D), D <= 7. far(X) :- node(X), \
   !near(X)."

let test_limit_parse () =
  (* Surface columns are 1-based; the AST stores them 0-based. *)
  let p = Parser.parse_program_exn sp_limit_text in
  (match p.Ast.limits with
  | [ { Ast.limit_pred = "dist"; kind = Ast.Min; column = 1 } ] -> ()
  | _ -> Alcotest.fail "expected dist min on 0-based column 1");
  let q = Parser.parse_program_exn "best max 1. best(X) :- source(X)." in
  match q.Ast.limits with
  | [ { Ast.limit_pred = "best"; kind = Ast.Max; column = 0 } ] -> ()
  | _ -> Alcotest.fail "expected best max on 0-based column 0"

let test_limit_pretty_roundtrip () =
  let p = Parser.parse_program_exn sp_limit_text in
  check bool "limit program re-parses identically" true
    (Parser.parse_program_exn (Pretty.program_to_string p) = p)

let test_limit_check () =
  let p = Parser.parse_program_exn sp_limit_text in
  check int "limit count" 1 (Check.validate_exn p).Check.limit_count;
  let errors text =
    match Check.validate (Parser.parse_program_exn text) with
    | Ok _ -> []
    | Error es -> es
  in
  check bool "column past arity rejected (1-based in the report)" true
    (List.mem
       (Check.Limit_column_out_of_range
          { pred = "dist"; column = 5; arity = 2 })
       (errors "dist min 5. dist(X, 0) :- source(X)."));
  check bool "conflicting declarations rejected" true
    (List.mem
       (Check.Duplicate_limit { pred = "dist" })
       (errors "dist min 2. dist max 2. dist(X, 0) :- source(X)."));
  check bool "limit on EDB rejected" true
    (List.mem
       (Check.Limit_on_edb { pred = "edge" })
       (errors "edge min 3. d(X) :- edge(X, Y, W)."))

let test_limit_stratify () =
  (* The monotone shortest-path program stratifies with the negation one
     stratum up; a max bound read under a <= guard inside its own
     recursive component does not, and the error names the rule. *)
  (match Stratify.stratify (Parser.parse_program_exn sp_limit_text) with
  | Stratify.Stratified { strata; _ } ->
    check int "two strata" 2 (List.length strata)
  | Stratify.Not_stratifiable _ | Stratify.Not_limit_stratifiable _ ->
    Alcotest.fail "shortest path limit-stratifies");
  let bad =
    Parser.parse_program_exn
      "best max 2. best(X, 0) :- source(X). best(Y, S) :- best(X, D), \
       edge(X, Y, W), S = D + W, S <= 9."
  in
  match Stratify.stratify bad with
  | Stratify.Not_limit_stratifiable { pred; rule } ->
    check string "offending predicate" "best" pred;
    let msg = Stratify.limit_error_to_string ~pred ~rule in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check bool "error names the rule" true
      (contains msg "non-monotonically"
      && contains msg (Pretty.rule_to_string rule))
  | Stratify.Stratified _ | Stratify.Not_stratifiable _ ->
    Alcotest.fail "anti-monotone guard must be rejected"

let () =
  Alcotest.run "datalog"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "negation spellings" `Quick test_lexer_negation_spellings;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "facts" `Quick test_parse_fact_and_empty_body;
          Alcotest.test_case "zero-ary" `Quick test_parse_zero_ary;
          Alcotest.test_case "comparisons" `Quick test_parse_comparisons;
          Alcotest.test_case "constant comparison" `Quick test_parse_constant_comparison;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "shapes" `Quick test_pretty_shapes;
        ] );
      ( "ast",
        [
          Alcotest.test_case "idb/edb" `Quick test_idb_edb;
          Alcotest.test_case "schema" `Quick test_schema_inference;
          Alcotest.test_case "schema conflict" `Quick test_schema_conflict;
          Alcotest.test_case "rule variables" `Quick test_rule_variables;
          Alcotest.test_case "head-only vars" `Quick test_head_only_variables;
          Alcotest.test_case "positivity" `Quick test_positivity;
          Alcotest.test_case "rename" `Quick test_rename_predicate;
          Alcotest.test_case "union dedup" `Quick test_union_dedups;
        ] );
      ("dsl", [ Alcotest.test_case "matches parser" `Quick test_dsl_matches_parser ]);
      ( "check",
        [
          Alcotest.test_case "reports" `Quick test_check_reports;
          Alcotest.test_case "errors" `Quick test_check_errors;
          Alcotest.test_case "describe" `Quick test_describe;
        ] );
      ( "depgraph",
        [
          Alcotest.test_case "edges" `Quick test_depgraph_edges;
          Alcotest.test_case "recursion" `Quick test_depgraph_recursion;
        ] );
      ( "stratify",
        [
          Alcotest.test_case "two strata" `Quick test_stratify_two_strata;
          Alcotest.test_case "rejects toggle" `Quick test_stratify_rejects_toggle;
          Alcotest.test_case "positive recursion" `Quick
            test_stratify_mutual_recursion_positive;
          Alcotest.test_case "mutual negation" `Quick test_stratify_mutual_negation;
          Alcotest.test_case "chain" `Quick test_stratify_chain;
          Alcotest.test_case "rules of stratum" `Quick test_rules_of_stratum;
        ] );
      ( "limits",
        [
          Alcotest.test_case "parse" `Quick test_limit_parse;
          Alcotest.test_case "pretty roundtrip" `Quick
            test_limit_pretty_roundtrip;
          Alcotest.test_case "check" `Quick test_limit_check;
          Alcotest.test_case "stratify" `Quick test_limit_stratify;
        ] );
    ]
