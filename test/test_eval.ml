(* Tests for the evaluation engines: the immediate consequence operator,
   naive/semi-naive least fixpoints, inflationary semantics, stratified
   semantics, the well-founded model, and grounding.  The workloads are the
   paper's own examples: pi_1 = T(x) <- E(y,x), !T(y) on paths and cycles,
   the transitive-closure program pi_3, and the toggle rule. *)

open Evallib
module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Digraph = Graphlib.Digraph
module Generate = Graphlib.Generate
module Traverse = Graphlib.Traverse

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* The paper's programs, in concrete syntax. *)
let pi1 = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let pi3 =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let toggle = Parser.parse_program_exn "t(Z) :- !t(W)."

let db_of_graph g = Digraph.to_database g

let vsym = Digraph.vertex_symbol

(* Relation {(vi, vj) : (i, j) in edges g} for comparisons. *)
let relation_of_graph g =
  List.fold_left
    (fun r (u, v) -> Relation.add (Tuple.pair (vsym u) (vsym v)) r)
    (Relation.empty 2) (Digraph.edges g)

let unary_of_vertices vs =
  List.fold_left
    (fun r v -> Relation.add (Tuple.singleton (vsym v)) r)
    (Relation.empty 1) vs

(* --- Theta -------------------------------------------------------------- *)

let test_theta_empty_idb () =
  (* Theta(empty) for pi_1 on L_3: T gets every vertex with a predecessor,
     because !T(y) is vacuously true. *)
  let db = db_of_graph (Generate.path 3) in
  let s0 = Idb.of_program pi1 in
  let s1 = Theta.apply pi1 db s0 in
  check bool "T = {v1, v2}" true
    (Relation.equal (Idb.get s1 "t") (unary_of_vertices [ 1; 2 ]))

let test_theta_fixpoint_detection () =
  (* On L_4 = 0->1->2->3 the unique fixpoint of pi_1 is {1, 3} (paper: even
     positions with 1-based vertex numbering). *)
  let db = db_of_graph (Generate.path 4) in
  let fp = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices [ 1; 3 ]) in
  check bool "fixpoint" true (Theta.is_fixpoint pi1 db fp);
  let not_fp = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices [ 1 ]) in
  check bool "not a fixpoint" false (Theta.is_fixpoint pi1 db not_fp)

let test_theta_odd_cycle_no_fixpoint () =
  (* C_3: no subset of vertices is a fixpoint. *)
  let db = db_of_graph (Generate.cycle 3) in
  for mask = 0 to 7 do
    let vs = List.filter (fun v -> (mask lsr v) land 1 = 1) [ 0; 1; 2 ] in
    let s = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices vs) in
    check bool "no fixpoint on C3" false (Theta.is_fixpoint pi1 db s)
  done

let test_theta_even_cycle_two_fixpoints () =
  let db = db_of_graph (Generate.cycle 4) in
  let evens = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices [ 0; 2 ]) in
  let odds = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices [ 1; 3 ]) in
  check bool "evens fixpoint" true (Theta.is_fixpoint pi1 db evens);
  check bool "odds fixpoint" true (Theta.is_fixpoint pi1 db odds);
  let all = Idb.set (Idb.of_program pi1) "t" (unary_of_vertices [ 0; 1; 2; 3 ]) in
  check bool "all is not" false (Theta.is_fixpoint pi1 db all)

let test_theta_iterate_converges_on_path () =
  (* On paths the naive Theta iteration from empty actually reaches the
     unique fixpoint of pi_1. *)
  let db = db_of_graph (Generate.path 4) in
  match Theta.iterate pi1 db (Idb.of_program pi1) with
  | Theta.Reached_fixpoint { fixpoint; steps } ->
    check bool "is the unique fixpoint" true
      (Relation.equal (Idb.get fixpoint "t") (unary_of_vertices [ 1; 3 ]));
    check bool "few steps" true (steps <= 8)
  | _ -> Alcotest.fail "expected convergence"

let test_theta_iterate_oscillates_on_cycles () =
  (* On cycles (odd or even) the orbit is empty <-> everything: period 2,
     and the iteration never discovers the even cycle's two fixpoints. *)
  List.iter
    (fun n ->
      let db = db_of_graph (Generate.cycle n) in
      match Theta.iterate pi1 db (Idb.of_program pi1) with
      | Theta.Entered_cycle { period; entry; states } ->
        check int (Printf.sprintf "C%d period" n) 2 period;
        check int "from the start" 0 entry;
        check int "two states" 2 (List.length states)
      | _ -> Alcotest.fail "expected oscillation")
    [ 3; 4; 5; 6 ]

let test_theta_iterate_toggle () =
  let db = db_of_graph (Generate.path 3) in
  match Theta.iterate toggle db (Idb.of_program toggle) with
  | Theta.Entered_cycle { period; _ } -> check int "toggle period" 2 period
  | _ -> Alcotest.fail "expected oscillation"

let test_theta_iterate_positive_reaches_lfp () =
  let g = Generate.random ~seed:9 ~n:5 ~p:0.3 in
  let db = db_of_graph g in
  match Theta.iterate pi3 db (Idb.of_program pi3) with
  | Theta.Reached_fixpoint { fixpoint; _ } ->
    check bool "equals naive lfp" true
      (Idb.equal fixpoint (Naive.least_fixpoint pi3 db))
  | _ -> Alcotest.fail "monotone iteration must converge"

(* --- Naive / least fixpoint --------------------------------------------- *)

let tc_via_datalog ?engine g =
  Idb.get (Naive.least_fixpoint ?engine pi3 (db_of_graph g)) "s"

let test_tc_on_path () =
  let g = Generate.path 5 in
  check bool "tc path" true
    (Relation.equal (tc_via_datalog g)
       (relation_of_graph (Traverse.transitive_closure g)))

let test_tc_on_random_graphs () =
  for seed = 1 to 12 do
    let g = Generate.random ~seed ~n:8 ~p:0.2 in
    let expected = relation_of_graph (Traverse.transitive_closure g) in
    check bool
      (Printf.sprintf "tc random seed %d (seminaive)" seed)
      true
      (Relation.equal (tc_via_datalog g) expected);
    check bool
      (Printf.sprintf "tc random seed %d (naive)" seed)
      true
      (Relation.equal (tc_via_datalog ~engine:`Naive g) expected)
  done

let test_naive_rejects_negation () =
  let db = db_of_graph (Generate.path 2) in
  Alcotest.check_raises "negation rejected"
    (Invalid_argument
       "Naive.least_fixpoint: the program uses negation or inequality; use \
        the inflationary, stratified or well-founded semantics instead")
    (fun () -> ignore (Naive.least_fixpoint pi1 db))

let test_least_fixpoint_is_fixpoint () =
  for seed = 1 to 8 do
    let g = Generate.random ~seed ~n:6 ~p:0.3 in
    let db = db_of_graph g in
    let lfp = Naive.least_fixpoint pi3 db in
    check bool (Printf.sprintf "lfp is fixpoint %d" seed) true
      (Theta.is_fixpoint pi3 db lfp)
  done

(* --- Inflationary ------------------------------------------------------- *)

let test_inflationary_toggle () =
  (* Theta-infinity of the toggle rule is the whole universe (Section 4). *)
  let db = db_of_graph (Generate.path 4) in
  let result = Inflationary.eval toggle db in
  check int "everything" 4 (Relation.cardinal (Idb.get result "t"))

let test_inflationary_pi1 () =
  (* Section 4: for pi_1, Theta-infinity = Theta^1 = {x : exists y E(y,x)}. *)
  for n = 2 to 6 do
    let g = Generate.cycle n in
    let db = db_of_graph g in
    let result = Inflationary.eval pi1 db in
    let expected = unary_of_vertices (Digraph.vertices g) in
    check bool (Printf.sprintf "C%d saturates" n) true
      (Relation.equal (Idb.get result "t") expected)
  done;
  let db = db_of_graph (Generate.path 4) in
  let result = Inflationary.eval pi1 db in
  check bool "L4: all but the source" true
    (Relation.equal (Idb.get result "t") (unary_of_vertices [ 1; 2; 3 ]))

let test_inflationary_equals_lfp_on_positive () =
  for seed = 1 to 10 do
    let g = Generate.random ~seed:(100 + seed) ~n:7 ~p:0.25 in
    let db = db_of_graph g in
    check bool (Printf.sprintf "seed %d" seed) true
      (Idb.equal (Inflationary.eval pi3 db) (Naive.least_fixpoint pi3 db))
  done

let test_inflationary_engines_agree () =
  let programs =
    [
      pi1;
      pi3;
      toggle;
      Parser.parse_program_exn
        "p(X) :- e(X, Y), !q(Y). q(X) :- e(Y, X), !p(X). r(X, Y) :- p(X), q(Y), X != Y.";
    ]
  in
  List.iter
    (fun p ->
      for seed = 1 to 6 do
        let g = Generate.random ~seed:(200 + seed) ~n:5 ~p:0.3 in
        let db = db_of_graph g in
        check bool "engines agree" true
          (Idb.equal
             (Inflationary.eval ~engine:`Naive p db)
             (Inflationary.eval ~engine:`Seminaive p db))
      done)
    programs

let test_inflationary_stages () =
  (* On the path 0->1->...->5, s(0, k) enters the TC at stage k. *)
  let db = db_of_graph (Generate.path 6) in
  let trace = Inflationary.eval_trace pi3 db in
  for k = 1 to 5 do
    check (Alcotest.option Alcotest.int)
      (Printf.sprintf "stage of (0,%d)" k)
      (Some k)
      (Saturate.stage_of trace "s" (Tuple.pair (vsym 0) (vsym k)))
  done

let test_inflationary_monotone_stages () =
  (* The trace deltas are disjoint and union to the result. *)
  let g = Generate.random ~seed:42 ~n:6 ~p:0.3 in
  let db = db_of_graph g in
  let trace = Inflationary.eval_trace pi1 db in
  let union =
    List.fold_left Idb.union (Idb.of_program pi1) trace.Saturate.deltas
  in
  check bool "deltas union to result" true
    (Idb.equal union trace.Saturate.result)

(* --- Stratified --------------------------------------------------------- *)

let strat_prog =
  (* Reachable pairs, and unreachable pairs via negation: two strata. *)
  Parser.parse_program_exn
    "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y).\n\
     u(X, Y) :- !s(X, Y)."

let test_stratified_negation_of_tc () =
  let g = Generate.path 3 in
  let db = db_of_graph g in
  let result = Stratified.eval_exn strat_prog db in
  let tc = relation_of_graph (Traverse.transitive_closure g) in
  check bool "s = tc" true (Relation.equal (Idb.get result "s") tc);
  let universe_sq = Relation.full (Relalg.Database.universe db) 2 in
  check bool "u = complement" true
    (Relation.equal (Idb.get result "u") (Relation.diff universe_sq tc))

let test_stratified_rejects_toggle () =
  let db = db_of_graph (Generate.path 2) in
  match Stratified.eval toggle db with
  | Error (Stratified.Not_stratifiable _) -> ()
  | Error (Stratified.Not_limit_stratifiable _) ->
    Alcotest.fail "toggle has no limits"
  | Ok _ -> Alcotest.fail "toggle rule must not stratify"

let test_stratified_agrees_with_naive_on_positive () =
  for seed = 1 to 8 do
    let g = Generate.random ~seed:(300 + seed) ~n:6 ~p:0.3 in
    let db = db_of_graph g in
    check bool (Printf.sprintf "seed %d" seed) true
      (Idb.equal (Stratified.eval_exn pi3 db) (Naive.least_fixpoint pi3 db))
  done

(* --- Well-founded ------------------------------------------------------- *)

let test_wellfounded_toggle_unknown () =
  (* The toggle rule's well-founded model leaves everything unknown. *)
  let db = db_of_graph (Generate.path 3) in
  let m = Wellfounded.eval toggle db in
  check bool "nothing true" true (Idb.is_empty m.Wellfounded.true_facts);
  check int "all unknown" 3 (Idb.total_cardinal (Wellfounded.unknown m))

let test_wellfounded_total_on_stratified () =
  for seed = 1 to 6 do
    let g = Generate.random ~seed:(400 + seed) ~n:5 ~p:0.3 in
    let db = db_of_graph g in
    let m = Wellfounded.eval strat_prog db in
    check bool "total" true (Wellfounded.is_total m);
    check bool "equals stratified" true
      (Idb.equal m.Wellfounded.true_facts (Stratified.eval_exn strat_prog db))
  done

let test_wellfounded_win_move () =
  (* The game program win(X) :- e(X, Y), !win(Y) on the path 0->1->2->3:
     positions 0 and 2 are winning (move to a losing position), 1 and 3
     losing; everything is determined. *)
  let win = Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." in
  let db = db_of_graph (Generate.path 4) in
  let m = Wellfounded.eval win db in
  check bool "total" true (Wellfounded.is_total m);
  check bool "win = {0, 2}" true
    (Relation.equal
       (Idb.get m.Wellfounded.true_facts "win")
       (unary_of_vertices [ 0; 2 ]));
  (* A bare 2-cycle is a draw: neither position has a losing successor, so
     both are unknown in the well-founded model. *)
  let g = Digraph.make 2 [ (0, 1); (1, 0) ] in
  let m = Wellfounded.eval win (db_of_graph g) in
  check bool "cycle undetermined" false (Wellfounded.is_total m);
  check int "both unknown" 2 (Idb.total_cardinal (Wellfounded.unknown m))

let test_reduct_antimonotone () =
  (* A is anti-monotone: S <= S' implies A(S') <= A(S). *)
  let db = db_of_graph (Generate.cycle 5) in
  let a = Wellfounded.reduct_fixpoint pi1 db in
  let small = Idb.of_program pi1 in
  let big = Idb.set small "t" (unary_of_vertices [ 0; 1; 2; 3; 4 ]) in
  check bool "antimonotone" true (Idb.subset (a big) (a small))

(* --- Kripke-Kleene (Fitting) --------------------------------------------- *)

let test_fitting_on_stratified_matches () =
  (* On this stratified program Kripke-Kleene is total and agrees with the
     stratified semantics. *)
  let db = db_of_graph (Generate.path 3) in
  let m = Fitting.eval strat_prog db in
  check bool "total" true (Fitting.is_total m);
  check bool "equals stratified" true
    (Idb.equal m.Fitting.true_facts (Stratified.eval_exn strat_prog db))

let test_fitting_less_decided_than_wf () =
  (* The positive loop p :- p: Kripke-Kleene leaves p unknown, the
     well-founded semantics makes it false. *)
  let p = Parser.parse_program_exn "p(X) :- p(X)." in
  let db = Relalg.Database.create_strings [ "a" ] in
  let kk = Fitting.eval p db in
  check int "kk leaves p unknown" 1 (Idb.total_cardinal (Fitting.unknown kk));
  let wf = Wellfounded.eval p db in
  check bool "wf decides everything" true (Wellfounded.is_total wf);
  check bool "wf makes p false" true (Idb.is_empty wf.Wellfounded.true_facts)

let test_fitting_refines_into_wf () =
  (* KK-true within WF-true and KK-possible contains WF-possible, on a few
     programs and graphs. *)
  let programs =
    [ pi1; strat_prog; Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." ]
  in
  List.iter
    (fun p ->
      for seed = 1 to 4 do
        let db = db_of_graph (Generate.random ~seed:(130 + seed) ~n:4 ~p:0.35) in
        let kk = Fitting.eval p db in
        let wf = Wellfounded.eval p db in
        check bool "kk true within wf true" true
          (Idb.subset kk.Fitting.true_facts wf.Wellfounded.true_facts);
        check bool "wf possible within kk possible" true
          (Idb.subset wf.Wellfounded.possible kk.Fitting.possible)
      done)
    programs

let test_fitting_toggle_unknown () =
  let db = db_of_graph (Generate.path 2) in
  let m = Fitting.eval toggle db in
  check bool "nothing true" true (Idb.is_empty m.Fitting.true_facts);
  check int "everything unknown" 2 (Idb.total_cardinal (Fitting.unknown m))

let test_unfounded_positive_loop () =
  (* p :- p has no external support: the greatest unfounded set contains it
     from the very first interpretation, so WF makes it false. *)
  let p = Parser.parse_program_exn "p(X) :- p(X)." in
  let db = Relalg.Database.create_strings [ "a" ] in
  let g = Ground.ground p db in
  let empty = Idb.of_program p in
  (match
     Unfounded.greatest_unfounded_set g ~true_facts:empty ~false_facts:empty
   with
  | [ a ] -> check bool "p(a) unfounded" true (a.Ground.pred = "p")
  | _ -> Alcotest.fail "expected exactly one unfounded atom");
  let m = Unfounded.eval p db in
  check bool "wf false" true (Idb.is_empty m.Wellfounded.true_facts);
  check bool "total" true (Wellfounded.is_total m)

let test_unfounded_agrees_on_examples () =
  List.iter
    (fun (prog, g) ->
      let db = db_of_graph g in
      let a = Wellfounded.eval prog db in
      let b = Unfounded.eval prog db in
      check bool "same true facts" true
        (Idb.equal a.Wellfounded.true_facts b.Wellfounded.true_facts);
      check bool "same unknowns" true
        (Idb.equal (Wellfounded.unknown a) (Wellfounded.unknown b)))
    [
      (pi1, Generate.cycle 4);
      (pi1, Generate.path 5);
      (Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y).", Generate.path 4);
      (toggle, Generate.path 3);
      (strat_prog, Generate.random ~seed:77 ~n:4 ~p:0.3);
    ]

(* --- Grounding ---------------------------------------------------------- *)

let test_ground_counts () =
  (* pi_1 on L_3: instances T(x) <- E(y, x), !T(y) for each edge (y, x). *)
  let db = db_of_graph (Generate.path 3) in
  let g = Ground.ground pi1 db in
  check int "two instances" 2 (Ground.rule_count g);
  check int "two derivable atoms" 2 (Ground.atom_count g)

let test_ground_apply_agrees_with_theta () =
  let programs = [ pi1; pi3; toggle; strat_prog ] in
  List.iter
    (fun p ->
      for seed = 1 to 5 do
        let graph = Generate.random ~seed:(500 + seed) ~n:4 ~p:0.35 in
        let db = db_of_graph graph in
        let g = Ground.ground p db in
        (* Walk the inflationary stages; each stays within the derivable
           atoms, where ground application must equal Theta. *)
        let rec walk s n =
          if n = 0 then ()
          else begin
            let via_theta = Theta.apply p db s in
            let via_ground = Ground.apply g s in
            check bool "ground = theta" true (Idb.equal via_theta via_ground);
            walk (Idb.union s via_theta) (n - 1)
          end
        in
        walk (Idb.of_program p) 4
      done)
    programs

let test_ground_toggle_shape () =
  (* Toggle on a 2-element universe: t(a) <- !t(a); t(a) <- !t(b); etc. *)
  let db = Relalg.Database.create_strings [ "a"; "b" ] in
  let g = Ground.ground toggle db in
  check int "atoms" 2 (Ground.atom_count g);
  check int "instances" 4 (Ground.rule_count g)

let test_ground_prunes_underivable () =
  (* p(X) <- q(X): q is IDB (appears as a head) but underivable on an empty
     database, so everything collapses. *)
  let p = Parser.parse_program_exn "p(X) :- q(X). q(X) :- q(X), r(X)." in
  let db = Relalg.Database.create_strings [ "a" ] in
  let g = Ground.ground p db in
  check int "no derivable atoms" 0 (Ground.atom_count g)

(* --- Provenance ----------------------------------------------------------- *)

let test_provenance_tc_chain () =
  let db = db_of_graph (Generate.path 4) in
  match
    Provenance.explain pi3 db ~pred:"s" (Tuple.pair (vsym 0) (vsym 3))
  with
  | None -> Alcotest.fail "fact is derivable"
  | Some j ->
    check int "entered at stage 3" 3 j.Provenance.stage;
    check bool "consistent" true (Provenance.check j);
    (* The chain has depth 3: s(0,3) <- s(1,3) <- s(2,3) <- e(2,3). *)
    let rec depth j =
      1
      + List.fold_left (fun acc s -> max acc (depth s)) 0 j.Provenance.supports
    in
    check int "depth" 3 (depth j)

let test_provenance_negative_literal () =
  (* pi_1 on C_4: t(v1) fires at stage 1 because t(v0) was absent then —
     although t(v0) also enters at stage 1. *)
  let db = db_of_graph (Generate.cycle 4) in
  match Provenance.explain pi1 db ~pred:"t" (Tuple.singleton (vsym 1)) with
  | None -> Alcotest.fail "derivable"
  | Some j ->
    check int "stage 1" 1 j.Provenance.stage;
    check bool "consistent" true (Provenance.check j);
    (match j.Provenance.absences with
    | [ (a, entered) ] ->
      check bool "negated t(v0)" true
        (a.Ground.pred = "t" && Tuple.equal a.Ground.tuple (Tuple.singleton (vsym 0)));
      check (Alcotest.option int) "which also entered at 1" (Some 1) entered
    | _ -> Alcotest.fail "expected one absence")

let test_provenance_underivable () =
  let db = db_of_graph (Generate.path 3) in
  check bool "no justification for absent fact" true
    (Provenance.explain pi3 db ~pred:"s" (Tuple.pair (vsym 2) (vsym 0)) = None)

let test_provenance_all_facts_explainable () =
  (* Every fact of the inflationary semantics has a consistent
     justification. *)
  let programs = [ pi1; pi3; strat_prog ] in
  List.iter
    (fun p ->
      let g = Generate.random ~seed:91 ~n:4 ~p:0.4 in
      let db = db_of_graph g in
      let result = Inflationary.eval p db in
      List.iter
        (fun (pred, rel) ->
          Relation.iter
            (fun tuple ->
              match Provenance.explain p db ~pred tuple with
              | None -> Alcotest.failf "no justification for %s" pred
              | Some j ->
                check bool "consistent" true (Provenance.check j))
            rel)
        (Idb.bindings result))
    programs

(* --- Universe-ranging variables ----------------------------------------- *)

let test_unbound_head_variable () =
  (* p(X, Y) :- e(X): Y ranges over the whole universe. *)
  let p = Parser.parse_program_exn "p(X, Y) :- e(X)." in
  let db =
    Relalg.Database.of_facts ~universe:[ "a"; "b"; "c" ] [ ("e", [ "a" ]) ]
  in
  let result = Inflationary.eval p db in
  check int "3 tuples" 3 (Relation.cardinal (Idb.get result "p"))

let test_unbound_negative_variable () =
  (* q(X) :- !e(X, Y): holds when some Y is missing an edge from X. *)
  let p = Parser.parse_program_exn "q(X) :- !e(X, Y)." in
  let db =
    Relalg.Database.of_facts ~universe:[ "a"; "b" ]
      [ ("e", [ "a"; "a" ]); ("e", [ "a"; "b" ]); ("e", [ "b"; "a" ]) ]
  in
  let result = Inflationary.eval p db in
  (* a has edges to everything; b is missing (b, b). *)
  check bool "q = {b}" true
    (Relation.equal (Idb.get result "q")
       (Relation.of_list 1 [ Tuple.of_strings [ "b" ] ]))

let test_equality_propagation () =
  let p = Parser.parse_program_exn "r(X, Y) :- e(X, Z), Y = Z." in
  let db = db_of_graph (Generate.path 3) in
  let result = Inflationary.eval p db in
  check bool "r = e" true
    (Relation.equal (Idb.get result "r") (relation_of_graph (Generate.path 3)))

let test_inequality_filter () =
  let p = Parser.parse_program_exn "r(X, Y) :- e(X, Y), X != Y." in
  let g = Digraph.make 2 [ (0, 0); (0, 1) ] in
  let result = Inflationary.eval p (db_of_graph g) in
  check bool "self-loop dropped" true
    (Relation.equal (Idb.get result "r")
       (Relation.of_list 2 [ Tuple.pair (vsym 0) (vsym 1) ]))

let test_constant_in_rule () =
  let p = Parser.parse_program_exn "r(X) :- e(v0, X)." in
  let db = db_of_graph (Generate.path 3) in
  let result = Inflationary.eval p (db_of_graph (Generate.path 3)) in
  ignore db;
  check bool "successors of v0" true
    (Relation.equal (Idb.get result "r") (unary_of_vertices [ 1 ]))

let () =
  Alcotest.run "eval"
    [
      ( "theta",
        [
          Alcotest.test_case "empty idb" `Quick test_theta_empty_idb;
          Alcotest.test_case "fixpoint detection" `Quick test_theta_fixpoint_detection;
          Alcotest.test_case "odd cycle" `Quick test_theta_odd_cycle_no_fixpoint;
          Alcotest.test_case "even cycle" `Quick test_theta_even_cycle_two_fixpoints;
          Alcotest.test_case "iterate converges on path" `Quick
            test_theta_iterate_converges_on_path;
          Alcotest.test_case "iterate oscillates on cycles" `Quick
            test_theta_iterate_oscillates_on_cycles;
          Alcotest.test_case "iterate toggle" `Quick test_theta_iterate_toggle;
          Alcotest.test_case "iterate positive" `Quick
            test_theta_iterate_positive_reaches_lfp;
        ] );
      ( "naive",
        [
          Alcotest.test_case "tc path" `Quick test_tc_on_path;
          Alcotest.test_case "tc random" `Quick test_tc_on_random_graphs;
          Alcotest.test_case "rejects negation" `Quick test_naive_rejects_negation;
          Alcotest.test_case "lfp is fixpoint" `Quick test_least_fixpoint_is_fixpoint;
        ] );
      ( "inflationary",
        [
          Alcotest.test_case "toggle" `Quick test_inflationary_toggle;
          Alcotest.test_case "pi1" `Quick test_inflationary_pi1;
          Alcotest.test_case "= lfp on positive" `Quick test_inflationary_equals_lfp_on_positive;
          Alcotest.test_case "engines agree" `Quick test_inflationary_engines_agree;
          Alcotest.test_case "stages" `Quick test_inflationary_stages;
          Alcotest.test_case "delta partition" `Quick test_inflationary_monotone_stages;
        ] );
      ( "stratified",
        [
          Alcotest.test_case "negation of tc" `Quick test_stratified_negation_of_tc;
          Alcotest.test_case "rejects toggle" `Quick test_stratified_rejects_toggle;
          Alcotest.test_case "agrees on positive" `Quick test_stratified_agrees_with_naive_on_positive;
        ] );
      ( "wellfounded",
        [
          Alcotest.test_case "toggle unknown" `Quick test_wellfounded_toggle_unknown;
          Alcotest.test_case "total on stratified" `Quick test_wellfounded_total_on_stratified;
          Alcotest.test_case "win-move" `Quick test_wellfounded_win_move;
          Alcotest.test_case "reduct antimonotone" `Quick test_reduct_antimonotone;
        ] );
      ( "fitting",
        [
          Alcotest.test_case "stratified matches" `Quick
            test_fitting_on_stratified_matches;
          Alcotest.test_case "less decided than wf" `Quick
            test_fitting_less_decided_than_wf;
          Alcotest.test_case "refines into wf" `Quick test_fitting_refines_into_wf;
          Alcotest.test_case "toggle unknown" `Quick test_fitting_toggle_unknown;
        ] );
      ( "unfounded",
        [
          Alcotest.test_case "positive loop" `Quick test_unfounded_positive_loop;
          Alcotest.test_case "agrees on examples" `Quick
            test_unfounded_agrees_on_examples;
        ] );
      ( "ground",
        [
          Alcotest.test_case "counts" `Quick test_ground_counts;
          Alcotest.test_case "agrees with theta" `Quick test_ground_apply_agrees_with_theta;
          Alcotest.test_case "toggle shape" `Quick test_ground_toggle_shape;
          Alcotest.test_case "prunes underivable" `Quick test_ground_prunes_underivable;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "tc chain" `Quick test_provenance_tc_chain;
          Alcotest.test_case "negative literal" `Quick
            test_provenance_negative_literal;
          Alcotest.test_case "underivable" `Quick test_provenance_underivable;
          Alcotest.test_case "all facts explainable" `Quick
            test_provenance_all_facts_explainable;
        ] );
      ( "engine",
        [
          Alcotest.test_case "unbound head var" `Quick test_unbound_head_variable;
          Alcotest.test_case "unbound negative var" `Quick test_unbound_negative_variable;
          Alcotest.test_case "equality propagation" `Quick test_equality_propagation;
          Alcotest.test_case "inequality filter" `Quick test_inequality_filter;
          Alcotest.test_case "constant in rule" `Quick test_constant_in_rule;
        ] );
    ]
