(* Tests for the versioned binary snapshot layer.

   The roundtrip oracle: saturate a random program on a random EDB, capture
   a snapshot, restore it, and the restored model must fingerprint-equal the
   original — across both storage backends and both saturation engines —
   and snapshotting the restored model must reproduce the file byte for
   byte (the encoding is canonical: dictionary ids, universal sorting).

   The corruption battery: every prefix truncation, every single-byte flip,
   seeded multi-byte flips and a trailing-garbage file must each yield a
   typed [Error] naming the failing section — never an exception — and
   must leave the global intern tables exactly as they were. *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Pretty = Datalog.Pretty
module Stratified = Evallib.Stratified
module Idb = Evallib.Idb
module Database = Relalg.Database
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Store = Relalg.Store
module Plan = Planlib.Plan
module Cache = Planlib.Cache
module Snapshot = Snapshotlib.Snapshot
module Codec = Snapshotlib.Codec
module Gen_programs = Testsupport.Gen_programs

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let ok_or_fail to_string = function
  | Ok v -> v
  | Error e -> Alcotest.fail (to_string e)

let snap_ok v = ok_or_fail Snapshot.error_to_string v

let tc =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let path_db n =
  Graphlib.Digraph.to_database (Graphlib.Generate.path n)

let idb_of_bindings program bindings =
  List.fold_left
    (fun idb (name, rel) -> Idb.set idb name rel)
    (Idb.of_program program) bindings

(* Saturate, capture and encode under one engine/storage combination. *)
let encode_of ~engine ~storage program db =
  let idb =
    ok_or_fail Stratified.error_to_string
      (Stratified.eval ~engine ~storage program db)
  in
  let image =
    snap_ok
      (Snapshot.capture ~program ~semantics:"stratified" ~db
         (Idb.bindings idb))
  in
  (idb, Snapshot.encode image)

let combos =
  [
    ("seminaive/hashed", `Seminaive, `Hashed);
    ("seminaive/treeset", `Seminaive, `Treeset);
    ("parallel/hashed", `Parallel, `Hashed);
    ("parallel/treeset", `Parallel, `Treeset);
  ]

(* --- codec primitives ----------------------------------------------------- *)

let test_crc32 () =
  (* The standard CRC-32 (IEEE) check vector. *)
  let s = "123456789" in
  check int "check vector" 0xCBF43926 (Codec.crc32 s ~pos:0 ~len:9);
  check int "bigstring agrees" 0xCBF43926
    (Codec.crc32_big (Codec.of_string s) ~pos:0 ~len:9);
  check int "empty" 0 (Codec.crc32 "" ~pos:0 ~len:0);
  check int "substring" (Codec.crc32 "345" ~pos:0 ~len:3)
    (Codec.crc32 s ~pos:2 ~len:3)

let test_codec_guards () =
  let b = Buffer.create 16 in
  (try
     Codec.add_u32 b (-1);
     Alcotest.fail "u32 accepted a negative"
   with Invalid_argument _ -> ());
  (try
     Codec.add_u32 b (1 lsl 32);
     Alcotest.fail "u32 accepted 2^32"
   with Invalid_argument _ -> ());
  (try
     Codec.add_u64 b (-1);
     Alcotest.fail "u64 accepted a negative"
   with Invalid_argument _ -> ());
  (* Reads past the window raise Short, never index out of range. *)
  let r = Codec.reader (Codec.of_string "\x01\x02") ~pos:0 ~len:2 in
  (try
     ignore (Codec.u32 r);
     Alcotest.fail "u32 read past the window"
   with Codec.Short _ -> ());
  (* A u64 with the top bits set cannot be a valid offset. *)
  let r =
    Codec.reader (Codec.of_string "\x00\x00\x00\x00\x00\x00\x00\xff") ~pos:0
      ~len:8
  in
  (try
     ignore (Codec.u64 r);
     Alcotest.fail "u64 accepted a value beyond max_int"
   with Codec.Short _ -> ());
  (* Roundtrip through the buffer writers. *)
  let b = Buffer.create 16 in
  Codec.add_u8 b 7;
  Codec.add_u32 b 0xFFFFFFFF;
  Codec.add_u64 b max_int;
  Codec.add_str b "hi";
  let r =
    Codec.reader (Codec.of_string (Buffer.contents b)) ~pos:0
      ~len:(Buffer.length b)
  in
  check int "u8" 7 (Codec.u8 r);
  check int "u32 max" 0xFFFFFFFF (Codec.u32 r);
  check bool "u64 max_int" true (Codec.u64 r = max_int);
  check string "str" "hi" (Codec.str r);
  check bool "at_end" true (Codec.at_end r)

(* --- roundtrip: fixed workload -------------------------------------------- *)

let test_roundtrip_fixed () =
  let db = path_db 6 in
  let per_combo =
    List.map
      (fun (name, engine, storage) ->
        (name, encode_of ~engine ~storage tc db))
      combos
  in
  let _, (idb0, bytes0) = List.hd per_combo in
  (* Canonical encoding: every engine/storage combination produces the same
     bytes for the same model. *)
  List.iter
    (fun (name, (_, bytes)) ->
      check bool (name ^ " encodes identically") true
        (String.equal bytes0 bytes))
    per_combo;
  let image = snap_ok (Snapshot.decode_string bytes0) in
  List.iter
    (fun (_, _, storage) ->
      let restored = snap_ok (Snapshot.restore ~storage image) in
      let ridb = idb_of_bindings tc restored.Snapshot.r_idb in
      check bool "restored model equals original" true (Idb.equal idb0 ridb);
      check int "fingerprints agree" (Idb.fingerprint idb0)
        (Idb.fingerprint ridb);
      check bool "restored EDB digest matches" true
        (String.equal
           (Snapshot.database_digest restored.Snapshot.r_db)
           (Snapshot.database_digest db));
      (* Snapshotting the restored model reproduces the file byte for
         byte, whatever backend it was rebuilt in. *)
      let image' =
        snap_ok
          (Snapshot.capture ~program:tc ~semantics:"stratified"
             ~db:restored.Snapshot.r_db restored.Snapshot.r_idb)
      in
      check bool "second snapshot is byte-identical" true
        (String.equal bytes0 (Snapshot.encode image')))
    combos

(* --- roundtrip: qcheck differential oracle -------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"snapshot roundtrip oracle" ~count:40
    Gen_programs.arb_case (fun (program0, db) ->
      (* Keep stratifiable inputs as they are (negation included); rescue
         the rest by dropping negative literals. *)
      let program =
        match Stratified.eval program0 db with
        | Ok _ -> program0
        | Error _ -> Gen_programs.positivise program0
      in
      let per_combo =
        List.map
          (fun (_, engine, storage) -> encode_of ~engine ~storage program db)
          combos
      in
      let idb0, bytes0 = List.hd per_combo in
      List.iter
        (fun (_, bytes) ->
          if not (String.equal bytes0 bytes) then
            QCheck.Test.fail_report "engines disagree on the encoding")
        per_combo;
      let image = snap_ok (Snapshot.decode_string bytes0) in
      List.iter
        (fun (_, _, storage) ->
          let restored = snap_ok (Snapshot.restore ~storage image) in
          let ridb = idb_of_bindings program restored.Snapshot.r_idb in
          if not (Idb.equal idb0 ridb) then
            QCheck.Test.fail_report "restored model differs";
          if Idb.fingerprint idb0 <> Idb.fingerprint ridb then
            QCheck.Test.fail_report "restored fingerprint differs";
          let image' =
            snap_ok
              (Snapshot.capture ~program ~semantics:"stratified"
                 ~db:restored.Snapshot.r_db restored.Snapshot.r_idb)
          in
          if not (String.equal bytes0 (Snapshot.encode image')) then
            QCheck.Test.fail_report "second snapshot not byte-identical")
        combos;
      true)

(* --- corruption battery --------------------------------------------------- *)

let known_sections =
  [ "header"; "symbols"; "relations"; "tuples"; "program"; "overrides";
    "trailer" ]

(* A snapshot exercising every section: symbols, EDB + IDB + unknown
   relations, program fingerprints and adaptive-planner overrides. *)
let battery_bytes () =
  let db = path_db 5 in
  let idb =
    ok_or_fail Stratified.error_to_string (Stratified.eval tc db)
  in
  let v i = Graphlib.Digraph.vertex_symbol i in
  let unknown =
    [ ("w", Relation.of_list 2 [ Tuple.pair (v 0) (v 3); Tuple.pair (v 1) (v 2) ]) ]
  in
  let r0 = List.nth tc.Ast.rules 0 and r1 = List.nth tc.Ast.rules 1 in
  let overrides =
    [ (r0, Plan.Full, [ (0, 5) ]); (r1, Plan.Delta 1, [ (0, 3); (1, 9) ]) ]
  in
  let image =
    snap_ok
      (Snapshot.capture ~unknown ~overrides ~program:tc
         ~semantics:"stratified" ~db (Idb.bindings idb))
  in
  Snapshot.encode image

(* Decode must answer corruption with [Error], never an exception. *)
let expect_error what s =
  match Snapshot.decode_string s with
  | Ok _ -> Alcotest.failf "%s: corrupt snapshot decoded Ok" what
  | Error e -> e
  | exception exn ->
    Alcotest.failf "%s: decode raised %s" what (Printexc.to_string exn)

let check_error_is_typed what = function
  | Snapshot.Corrupt { section; _ } ->
    if not (List.mem section known_sections) then
      Alcotest.failf "%s: unknown section %S in error" what section
  | Snapshot.Version_skew _ | Snapshot.Io _ -> ()
  | Snapshot.Program_mismatch _ | Snapshot.Semantics_mismatch _
  | Snapshot.Database_mismatch ->
    Alcotest.failf "%s: structural damage reported as a fingerprint error"
      what

let flip s pos mask =
  let b = Bytes.of_string s in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  Bytes.to_string b

let test_corruption_battery () =
  let bytes = battery_bytes () in
  let len = String.length bytes in
  let syms_before = Symbol.count () in
  let store_before = Store.count () in
  (* Every proper prefix must fail: truncation at any point — section
     boundaries included — is caught. *)
  for k = 0 to len - 1 do
    let what = Printf.sprintf "truncated to %d bytes" k in
    check_error_is_typed what (expect_error what (String.sub bytes 0 k))
  done;
  (* Every single-byte flip must fail: each byte is covered by a CRC (or,
     for the version field, by an explicit check). *)
  for pos = 0 to len - 1 do
    let what = Printf.sprintf "byte %d flipped" pos in
    check_error_is_typed what (expect_error what (flip bytes pos 0xFF))
  done;
  (* Seeded random multi-byte flips. *)
  let rng = Negdl_util.Prng.create 0xBADC0DE in
  let next bound = Negdl_util.Prng.int rng bound in
  for trial = 0 to 199 do
    let s = ref bytes in
    for _ = 0 to next 3 do
      s := flip !s (next len) (1 + next 255)
    done;
    if not (String.equal !s bytes) then
      let what = Printf.sprintf "random flip trial %d" trial in
      check_error_is_typed what (expect_error what !s)
  done;
  (* Trailing garbage is damage too, not slack. *)
  (match expect_error "trailing byte" (bytes ^ "\x00") with
  | Snapshot.Corrupt { section = "trailer"; _ } -> ()
  | e ->
    Alcotest.failf "trailing byte: expected a trailer error, got %s"
      (Snapshot.error_to_string e));
  (* No failed decode touched the global intern tables. *)
  check int "symbol table untouched" syms_before (Symbol.count ());
  check int "tuple store untouched" store_before (Store.count ())

(* Read the section table back out of the header to aim truncations at
   specific sections. *)
let section_table bytes =
  let r =
    Codec.reader (Codec.of_string bytes) ~pos:0 ~len:(String.length bytes)
  in
  let magic = Codec.take r 8 "magic" in
  check string "magic" "NEGDLSNP" magic;
  check int "format version" Snapshot.format_version (Codec.u32 r);
  let _flags = Codec.u32 r in
  let count = Codec.u32 r in
  List.init count (fun _ ->
      let id = Codec.u32 r in
      let off = Codec.u64 r in
      let len = Codec.u64 r in
      let _crc = Codec.u32 r in
      (id, off, len))

let section_name = function
  | 1 -> "symbols"
  | 2 -> "relations"
  | 3 -> "tuples"
  | 4 -> "program"
  | 5 -> "overrides"
  | id -> Printf.sprintf "unknown(%d)" id

let test_truncation_names_sections () =
  let bytes = battery_bytes () in
  let table = section_table bytes in
  check int "all five sections present" 5 (List.length table);
  List.iter
    (fun (id, off, len) ->
      check bool (section_name id ^ " is non-empty") true (len > 0);
      (* Cut one byte short of the section's end: everything before it is
         intact, so the error must name this section. *)
      let what = Printf.sprintf "cut inside %s" (section_name id) in
      match expect_error what (String.sub bytes 0 (off + len - 1)) with
      | Snapshot.Corrupt { section; reason } ->
        check string (what ^ " names the section") (section_name id) section;
        check bool (what ^ " says truncated") true
          (contains ~needle:"truncated" reason)
      | e ->
        Alcotest.failf "%s: expected Corrupt, got %s" what
          (Snapshot.error_to_string e))
    table

let test_header_field_perturbations () =
  let bytes = battery_bytes () in
  let corrupt_header what s =
    match expect_error what s with
    | Snapshot.Corrupt { section = "header"; _ } -> ()
    | e ->
      Alcotest.failf "%s: expected a header error, got %s" what
        (Snapshot.error_to_string e)
  in
  corrupt_header "magic" (flip bytes 0 0x20);
  (* The version field is checked before the header CRC: a future format
     is reported as skew, not as damage. *)
  (match expect_error "version" (flip bytes 8 0x06) with
  | Snapshot.Version_skew { found; supported } ->
    check int "found version" 7 found;
    check int "supported version" Snapshot.format_version supported;
    check bool "skew message says regenerate" true
      (contains ~needle:"regenerate"
         (Snapshot.error_to_string
            (Snapshot.Version_skew { found; supported })))
  | e ->
    Alcotest.failf "version: expected Version_skew, got %s"
      (Snapshot.error_to_string e));
  corrupt_header "flags" (flip bytes 12 0x80);
  corrupt_header "section count" (flip bytes 16 0x01);
  corrupt_header "table entry" (flip bytes 21 0xFF);
  (* The header CRC is the last 4 bytes before the first section. *)
  let _, first_off, _ =
    List.hd (List.sort (fun (_, a, _) (_, b, _) -> compare a b)
               (section_table bytes))
  in
  corrupt_header "header crc" (flip bytes (first_off - 1) 0xFF)

(* --- fingerprint guards --------------------------------------------------- *)

let test_program_guards () =
  let db = path_db 4 in
  let idb =
    ok_or_fail Stratified.error_to_string (Stratified.eval tc db)
  in
  let image =
    snap_ok
      (Snapshot.capture ~program:tc ~semantics:"stratified" ~db
         (Idb.bindings idb))
  in
  let image = snap_ok (Snapshot.decode_string (Snapshot.encode image)) in
  check bool "same program checks out" true
    (Result.is_ok
       (Snapshot.check_program image ~program:tc ~semantics:"stratified"));
  check bool "stored digest is the program digest" true
    (String.equal image.Snapshot.program_md5 (Snapshot.program_digest tc));
  let other = Parser.parse_program_exn "s(X, Y) :- e(X, Y)." in
  (match Snapshot.check_program image ~program:other ~semantics:"stratified"
   with
  | Error (Snapshot.Program_mismatch { snapshot; loaded }) ->
    check string "snapshot digest" (Snapshot.digest_hex image.program_md5)
      snapshot;
    check string "loaded digest"
      (Snapshot.digest_hex (Snapshot.program_digest other))
      loaded;
    check bool "message says different program" true
      (contains ~needle:"different program"
         (Snapshot.error_to_string
            (Snapshot.Program_mismatch { snapshot; loaded })))
  | _ -> Alcotest.fail "wrong program accepted");
  (match
     Snapshot.check_program image ~program:tc ~semantics:"wellfounded"
   with
  | Error (Snapshot.Semantics_mismatch { snapshot; loaded }) ->
    check string "snapshot semantics" "stratified" snapshot;
    check string "loaded semantics" "wellfounded" loaded
  | _ -> Alcotest.fail "wrong semantics accepted");
  (* The EDB digest pins the database the model was computed from. *)
  check bool "same database, same digest" true
    (String.equal image.Snapshot.edb_digest (Snapshot.database_digest db));
  check bool "different database, different digest" false
    (String.equal image.Snapshot.edb_digest
       (Snapshot.database_digest (path_db 5)))

(* --- overrides and unknown relations -------------------------------------- *)

let canonical_seeds seeds =
  List.sort compare
    (List.map
       (fun (rule, variant, pairs) ->
         (Pretty.rule_to_string rule, Plan.variant_to_string variant, pairs))
       seeds)

let test_overrides_roundtrip () =
  let db = path_db 5 in
  let idb =
    ok_or_fail Stratified.error_to_string (Stratified.eval tc db)
  in
  let r0 = List.nth tc.Ast.rules 0 and r1 = List.nth tc.Ast.rules 1 in
  let overrides =
    [ (r1, Plan.Delta 1, [ (0, 3); (1, 9) ]); (r0, Plan.Full, [ (0, 5) ]) ]
  in
  let roundtrip image =
    snap_ok (Snapshot.decode_string (Snapshot.encode image))
  in
  let image =
    roundtrip
      (snap_ok
         (Snapshot.capture ~overrides ~program:tc ~semantics:"stratified"
            ~db (Idb.bindings idb)))
  in
  let restored = snap_ok (Snapshot.restore image) in
  check bool "override seeds roundtrip" true
    (canonical_seeds overrides = canonical_seeds restored.Snapshot.r_seeds);
  (* Seeds feed the plan cache without raising; the pending table is
     consumed by the first fresh adaptive compile. *)
  let cache = Cache.create () in
  Cache.seed_overrides cache restored.Snapshot.r_seeds;
  check int "seeding does not compile anything" 0 (Cache.cardinal cache);
  (* No overrides: the section is omitted entirely and decodes to none. *)
  let plain =
    roundtrip
      (snap_ok
         (Snapshot.capture ~program:tc ~semantics:"stratified" ~db
            (Idb.bindings idb)))
  in
  check int "no override section without overrides" 4
    (List.length (section_table (Snapshot.encode plain)));
  check bool "no seeds decoded" true (plain.Snapshot.overrides = []);
  (* All-empty override lists are dropped, not encoded as an empty
     section. *)
  let dropped =
    roundtrip
      (snap_ok
         (Snapshot.capture ~overrides:[ (r0, Plan.Full, []) ] ~program:tc
            ~semantics:"stratified" ~db (Idb.bindings idb)))
  in
  check bool "empty override lists dropped" true
    (dropped.Snapshot.overrides = []);
  check bool "empty overrides encode as the plain snapshot" true
    (String.equal (Snapshot.encode plain) (Snapshot.encode dropped))

let test_unknown_roundtrip () =
  let db = path_db 4 in
  let v i = Graphlib.Digraph.vertex_symbol i in
  let unknown =
    [ ("limbo", Relation.of_list 1 [ Tuple.singleton (v 0) ]) ]
  in
  let image =
    snap_ok
      (Snapshot.capture ~unknown ~program:tc ~semantics:"wellfounded" ~db [])
  in
  let image = snap_ok (Snapshot.decode_string (Snapshot.encode image)) in
  let restored = snap_ok (Snapshot.restore image) in
  (match restored.Snapshot.r_unknown with
  | [ (name, rel) ] ->
    check string "unknown relation name" "limbo" name;
    check int "unknown relation cardinality" 1 (Relation.cardinal rel)
  | l -> Alcotest.failf "expected one unknown relation, got %d" (List.length l));
  check bool "no idb captured" true (restored.Snapshot.r_idb = [])

(* --- files ---------------------------------------------------------------- *)

let test_file_roundtrip () =
  let bytes = battery_bytes () in
  let image = snap_ok (Snapshot.decode_string bytes) in
  let file = Filename.temp_file "negdl_snap_test" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let written = snap_ok (Snapshot.write_file file image) in
      check int "write_file reports the file size" (String.length bytes)
        written;
      let back = snap_ok (Snapshot.read_file file) in
      check bool "read_file roundtrips" true
        (String.equal bytes (Snapshot.encode back)));
  match Snapshot.read_file "/nonexistent/negdl.snap" with
  | Error (Snapshot.Io _) -> ()
  | Error e ->
    Alcotest.failf "missing file: expected Io, got %s"
      (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "read_file invented a snapshot"

let () =
  Alcotest.run "snapshot"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 check vector" `Quick test_crc32;
          Alcotest.test_case "primitive guards" `Quick test_codec_guards;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "fixed workload, all combos" `Quick
            test_roundtrip_fixed;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "override seeds" `Quick test_overrides_roundtrip;
          Alcotest.test_case "unknown relations" `Quick test_unknown_roundtrip;
          Alcotest.test_case "files" `Quick test_file_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "battery" `Quick test_corruption_battery;
          Alcotest.test_case "truncation names sections" `Quick
            test_truncation_names_sections;
          Alcotest.test_case "header perturbations" `Quick
            test_header_field_perturbations;
        ] );
      ( "guards",
        [ Alcotest.test_case "fingerprints" `Quick test_program_guards ] );
    ]
