The on-disk persistence layer, end to end: write a snapshot, restore it,
and fail closed on every kind of damaged or mismatched file.

`negdl snapshot` materialises the stratified model once and writes the
versioned binary file; `negdl restore` loads it back — no re-evaluation —
and prints the model it holds:

  $ negdl snapshot reach.dl graph.facts state.snap
  wrote state.snap: 434 bytes, 4 symbols, 5 relations, 17 tuples

  $ negdl restore reach.dl state.snap
  r/2 (6 tuples) = {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}
  reached/1 (3 tuples) = {(v1); (v2); (v3)}
  unreached/1 (1 tuples) = {(v0)}

A second snapshot of the same model is byte-identical — the encoding is
canonical (dictionary ids, everything sorted), so equal models mean equal
files whatever process wrote them:

  $ negdl snapshot reach.dl graph.facts again.snap 2>/dev/null 1>&2
  $ cmp state.snap again.snap && echo identical
  identical

The encoding is also partition-independent: the packed store may run any
number of stripes (`NEGDL_PARTITIONS`), but the snapshot decodes ids back
to rows and sorts everything, so the bytes never depend on the layout:

  $ NEGDL_PARTITIONS=1 negdl snapshot reach.dl graph.facts p1.snap 2>/dev/null 1>&2
  $ NEGDL_PARTITIONS=4 negdl snapshot reach.dl graph.facts p4.snap 2>/dev/null 1>&2
  $ cmp p1.snap p4.snap && echo identical
  identical
  $ NEGDL_PARTITIONS=4 negdl restore reach.dl p1.snap | head -1
  r/2 (6 tuples) = {(v0, v1); (v0, v2); (v0, v3); (v1, v2); (v1, v3); (v2, v3)}

Restoring into the wrong program fails closed on the fingerprint, with
both digests named:

  $ cat > other.dl <<'EOF'
  > r(X, Y) :- e(X, Y).
  > EOF
  $ negdl restore other.dl state.snap
  negdl: snapshot: taken for a different program (snapshot fingerprint 415220b9860d19465a713f93effda724, loaded program 6f5a1f2d582fc63e4d298635fdc0ed26) — pass the program the snapshot was taken for, or regenerate it
  [1]

A snapshot from a future format version is skew, not damage — the message
says to regenerate, and the model is never touched:

  $ cp state.snap skew.snap
  $ printf '\007' | dd of=skew.snap bs=1 seek=8 conv=notrunc status=none
  $ negdl restore reach.dl skew.snap
  negdl: snapshot: format version 7, but this build reads version 1 — regenerate the snapshot with this binary
  [1]

Truncation and bit flips are caught by the section checksums and named:

  $ head -c 100 state.snap > trunc.snap
  $ negdl restore reach.dl trunc.snap
  negdl: snapshot: corrupt header section (truncated: u64)
  [1]

  $ cp state.snap flip.snap
  $ printf '\377' | dd of=flip.snap bs=1 seek=200 conv=notrunc status=none
  $ negdl restore reach.dl flip.snap
  negdl: snapshot: corrupt relations section (checksum mismatch)
  [1]

`negdl eval --snapshot` is a model cache: the first run evaluates and
writes, the second loads without evaluating (same answers, no "written"
notice):

  $ negdl eval reach.dl graph.facts --snapshot cache.snap -s stratified -p unreached
  negdl: snapshot written to cache.snap (434 bytes)
  {(v0)}
  $ negdl eval reach.dl graph.facts --snapshot cache.snap -s stratified -p unreached
  {(v0)}

The cache is keyed on the database fingerprint too: against a changed
database the snapshot is stale, so eval re-evaluates and overwrites it
rather than serve the old model:

  $ cat graph.facts > grown.facts
  $ echo 'e(v3, v4). v(v4).' >> grown.facts
  $ negdl eval reach.dl grown.facts --snapshot cache.snap -s stratified -p unreached
  negdl: snapshot is stale for this database; re-evaluating
  negdl: snapshot written to cache.snap (488 bytes)
  {(v0)}

A corrupt cache under `eval --snapshot` is a hard error, never silent
re-evaluation — a broken file the user pointed at should not pass:

  $ head -c 60 cache.snap > cache.snap.tmp && mv cache.snap.tmp cache.snap
  $ negdl eval reach.dl graph.facts --snapshot cache.snap -s stratified -p unreached
  negdl: snapshot: corrupt header section (truncated: u64)
  [1]

`negdl fixpoints --snapshot` caches the parsed EDB (the SAT search itself
is not persisted); the second run skips the database text entirely:

  $ negdl fixpoints reach.dl graph.facts --snapshot edb.snap | head -3
  negdl: EDB snapshot written to edb.snap (283 bytes)
  ground atoms:    13
  ground rules:    16
  fixpoint exists: true
  $ negdl fixpoints reach.dl graph.facts --snapshot edb.snap | head -3
  ground atoms:    13
  ground rules:    16
  fixpoint exists: true
