(* Tests for incremental maintenance under deletions (DRed): the maintained
   materialisation must equal recomputation from scratch, on hand-picked
   and random instances; the over-delete / re-derive counters must behave
   (alternative derivations come back). *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Dred = Evallib.Dred
module Naive = Evallib.Naive
module Idb = Evallib.Idb
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module Tuple = Relalg.Tuple
module Database = Relalg.Database

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tc =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let vsym = Digraph.vertex_symbol

let edge u v = ("e", Tuple.pair (vsym u) (vsym v))

let maintain p db removals =
  let current = Naive.least_fixpoint p db in
  Dred.delete_facts p db ~current ~removals

let test_delete_breaks_path () =
  (* Path 0->1->2->3; deleting (1,2) halves the closure. *)
  let db = Digraph.to_database (Generate.path 4) in
  let delta = maintain tc db [ edge 1 2 ] in
  let expected = Naive.least_fixpoint tc delta.Dred.new_db in
  check bool "matches recomputation" true (Idb.equal delta.Dred.new_idb expected);
  (* Remaining edges (0,1) and (2,3) are the whole closure. *)
  check int "closure size" 2 (Idb.total_cardinal delta.Dred.new_idb)

let test_alternative_derivation_survives () =
  (* Two parallel paths 0->1->3 and 0->2->3: deleting one middle edge keeps
     (0,3) reachable, so re-derivation must bring it back. *)
  let g = Digraph.make 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let db = Digraph.to_database g in
  let delta = maintain tc db [ edge 1 3 ] in
  let expected = Naive.least_fixpoint tc delta.Dred.new_db in
  check bool "matches recomputation" true (Idb.equal delta.Dred.new_idb expected);
  check bool "(0,3) still derived" true
    (Relalg.Relation.mem
       (Tuple.pair (vsym 0) (vsym 3))
       (Idb.get delta.Dred.new_idb "s"));
  check bool "something was re-derived" true (delta.Dred.rederived > 0)

let test_delete_multiple () =
  let g = Generate.cycle 5 in
  let db = Digraph.to_database g in
  let delta = maintain tc db [ edge 0 1; edge 2 3 ] in
  let expected = Naive.least_fixpoint tc delta.Dred.new_db in
  check bool "matches recomputation" true (Idb.equal delta.Dred.new_idb expected)

let test_validation () =
  let db = Digraph.to_database (Generate.path 3) in
  let current = Naive.least_fixpoint tc db in
  Alcotest.check_raises "IDB removal rejected"
    (Invalid_argument "Dred.delete_facts: s is an IDB predicate") (fun () ->
      ignore
        (Dred.delete_facts tc db ~current
           ~removals:[ ("s", Tuple.pair (vsym 0) (vsym 1)) ]));
  Alcotest.check_raises "absent fact rejected"
    (Invalid_argument "Dred.delete_facts: e(v2, v0) is not in the database")
    (fun () ->
      ignore
        (Dred.delete_facts tc db ~current
           ~removals:[ ("e", Tuple.pair (vsym 2) (vsym 0)) ]));
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument
       "Dred.delete_facts: arity mismatch: e(v0) has 1 component(s) but e \
        has arity 2") (fun () ->
      ignore
        (Dred.delete_facts tc db ~current
           ~removals:[ ("e", Tuple.singleton (vsym 0)) ]));
  (* Stratified negation is now supported; only recursion through negation
     is rejected. *)
  let neg = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  Alcotest.check_raises "non-stratifiable rejected"
    (Invalid_argument
       "Dred.delete_facts: the program must be stratifiable (t depends \
        negatively on t inside a recursive component)") (fun () ->
      ignore
        (Dred.delete_facts neg db ~current:(Idb.of_program neg)
           ~removals:[ edge 0 1 ]))

let test_two_predicates () =
  (* Same-generation style program with two EDB relations; delete from
     both. *)
  let p =
    Parser.parse_program_exn
      "r(X, Y) :- a(X, Y). r(X, Y) :- b(X, Y). rr(X, Y) :- r(X, Z), r(Z, Y)."
  in
  let db =
    Database.of_facts ~universe:[]
      [
        ("a", [ "x"; "y" ]); ("a", [ "y"; "z" ]);
        ("b", [ "x"; "y" ]); ("b", [ "z"; "w" ]);
      ]
  in
  let current = Naive.least_fixpoint p db in
  let delta =
    Dred.delete_facts p db ~current
      ~removals:[ ("a", Tuple.of_strings [ "x"; "y" ]) ]
  in
  let expected = Naive.least_fixpoint p delta.Dred.new_db in
  check bool "matches recomputation" true (Idb.equal delta.Dred.new_idb expected);
  (* r(x, y) survives via b. *)
  check bool "alternative base fact" true
    (Relalg.Relation.mem (Tuple.of_strings [ "x"; "y" ])
       (Idb.get delta.Dred.new_idb "r"))

let test_insert_extends_path () =
  (* Path 0->1->2; adding edge (2,3) with a brand-new vertex extends the
     closure. *)
  let db = Digraph.to_database (Generate.path 3) in
  let current = Naive.least_fixpoint tc db in
  let addition = ("e", Tuple.of_strings [ "v2"; "v3" ]) in
  let delta = Evallib.Dred.insert_facts tc db ~current ~additions:[ addition ] in
  let expected = Naive.least_fixpoint tc delta.Dred.new_db in
  check bool "matches recomputation" true (Idb.equal delta.Dred.new_idb expected);
  check int "three new closure facts" 3 delta.Dred.rederived

(* Stratified negation: reachability with an unreached complement.  The
   higher stratum must shrink when an edge appears and grow when one
   disappears — both directions of the negation triggers. *)
let reach =
  Parser.parse_program_exn
    "r(X, Y) :- e(X, Y). r(X, Y) :- e(X, Z), r(Z, Y). reached(Y) :- r(X, \
     Y). unreached(X) :- v(X), !reached(X)."

let with_vertices db n =
  List.fold_left
    (fun d i -> Database.add_fact "v" (Tuple.singleton (vsym i)) d)
    db
    (List.init n (fun i -> i))

let test_stratified_delete () =
  let db = with_vertices (Digraph.to_database (Generate.path 4)) 4 in
  let current = Evallib.Stratified.eval_exn reach db in
  let delta = Dred.delete_facts reach db ~current ~removals:[ edge 0 1 ] in
  let expected = Evallib.Stratified.eval_exn reach delta.Dred.new_db in
  check bool "matches stratified recomputation" true
    (Idb.equal delta.Dred.new_idb expected);
  check bool "v1 now unreached" true
    (Relalg.Relation.mem
       (Tuple.singleton (vsym 1))
       (Idb.get delta.Dred.new_idb "unreached"))

let test_stratified_insert () =
  (* Inserting an edge makes v3 reached: the negation-dependent
     unreached(v3) must be over-deleted through the flipped trigger. *)
  let db =
    with_vertices (Digraph.to_database (Digraph.make 4 [ (0, 1); (1, 2) ])) 4
  in
  let current = Evallib.Stratified.eval_exn reach db in
  let delta =
    Dred.apply reach db ~current ~additions:[ edge 2 3 ] ~removals:[] ()
  in
  let expected = Evallib.Stratified.eval_exn reach delta.Dred.new_db in
  check bool "matches stratified recomputation" true
    (Idb.equal delta.Dred.new_idb expected);
  check bool "v3 no longer unreached" true
    (not
       (Relalg.Relation.mem
          (Tuple.singleton (vsym 3))
          (Idb.get delta.Dred.new_idb "unreached")));
  check bool "something was over-deleted" true (delta.Dred.overdeleted > 0)

let test_mixed_batch () =
  (* One batch that removes an edge, closes the cycle, and grows the
     universe with a brand-new vertex. *)
  let db = Digraph.to_database (Generate.path 4) in
  let current = Naive.least_fixpoint tc db in
  let delta =
    Dred.apply tc db ~current
      ~additions:[ edge 3 0; ("e", Tuple.of_strings [ "v3"; "v4" ]) ]
      ~removals:[ edge 1 2 ] ()
  in
  let expected = Naive.least_fixpoint tc delta.Dred.new_db in
  check bool "matches recomputation" true
    (Idb.equal delta.Dred.new_idb expected)

(* --- limit predicates: group bounds under deletion ----------------------

   Deleting the support of a group's bound must relax the bound to the
   best surviving support (second-best derivation), drop the group when
   nothing survives, and cascade through downstream groups — all checked
   against from-scratch stratified evaluation. *)

let sp_limit =
  Parser.parse_program_exn
    "dist min 2. dist(X, 0) :- source(X). dist(Y, S) :- dist(X, D), edge(X, \
     Y, W), S = D + W."

let limit_maintain ?(additions = []) p db removals =
  let current = Evallib.Stratified.eval_exn p db in
  Dred.apply p db ~current ~additions ~removals ()

let check_limit_delta p (delta : Dred.delta) =
  check bool "matches stratified recomputation" true
    (Idb.equal delta.Dred.new_idb (Evallib.Stratified.eval_exn p delta.Dred.new_db))

let dist_has delta strs =
  Relalg.Relation.mem (Tuple.of_strings strs) (Idb.get delta.Dred.new_idb "dist")

let test_limit_second_best () =
  (* Parallel edges a->b of weight 1 and 5: deleting the cheaper one must
     relax dist(b) from 1 to the second-best support 5. *)
  let db =
    Database.of_facts ~universe:[]
      [
        ("source", [ "a" ]);
        ("edge", [ "a"; "b"; "1" ]);
        ("edge", [ "a"; "b"; "5" ]);
      ]
  in
  let delta =
    limit_maintain sp_limit db [ ("edge", Tuple.of_strings [ "a"; "b"; "1" ]) ]
  in
  check_limit_delta sp_limit delta;
  check bool "bound relaxed to second-best" true (dist_has delta [ "b"; "5" ]);
  check bool "old bound gone" false (dist_has delta [ "b"; "1" ])

let test_limit_max_second_best () =
  (* The max analog: deleting the heavier parallel edge relaxes the bound
     downward to the lighter surviving support. *)
  let p =
    Parser.parse_program_exn
      "best max 2. best(X, 0) :- source(X). best(Y, S) :- best(X, D), \
       edge(X, Y, W), S = D + W."
  in
  let db =
    Database.of_facts ~universe:[]
      [
        ("source", [ "a" ]);
        ("edge", [ "a"; "b"; "5" ]);
        ("edge", [ "a"; "b"; "1" ]);
      ]
  in
  let delta =
    limit_maintain p db [ ("edge", Tuple.of_strings [ "a"; "b"; "5" ]) ]
  in
  check_limit_delta p delta;
  check bool "bound relaxed to surviving support" true
    (Relalg.Relation.mem
       (Tuple.of_strings [ "b"; "1" ])
       (Idb.get delta.Dred.new_idb "best"))

let test_limit_group_vanishes () =
  (* A group with a single support disappears entirely when it goes. *)
  let db =
    Database.of_facts ~universe:[]
      [ ("source", [ "a" ]); ("edge", [ "a"; "b"; "3" ]) ]
  in
  let delta =
    limit_maintain sp_limit db [ ("edge", Tuple.of_strings [ "a"; "b"; "3" ]) ]
  in
  check_limit_delta sp_limit delta;
  check int "only the source group remains" 1
    (Relalg.Relation.cardinal (Idb.get delta.Dred.new_idb "dist"))

let test_limit_cascading_relax () =
  (* Relaxing dist(b) must re-propagate: dist(c) moves from 3 to 6. *)
  let db =
    Database.of_facts ~universe:[]
      [
        ("source", [ "a" ]);
        ("edge", [ "a"; "b"; "1" ]);
        ("edge", [ "a"; "b"; "4" ]);
        ("edge", [ "b"; "c"; "2" ]);
      ]
  in
  let delta =
    limit_maintain sp_limit db [ ("edge", Tuple.of_strings [ "a"; "b"; "1" ]) ]
  in
  check_limit_delta sp_limit delta;
  check bool "intermediate bound relaxed" true (dist_has delta [ "b"; "4" ]);
  check bool "downstream bound relaxed" true (dist_has delta [ "c"; "6" ])

let test_limit_mixed_batch () =
  (* One batch that deletes a bound's support and inserts a tighter route
     elsewhere: relaxation and tightening in the same application. *)
  let db =
    Database.of_facts ~universe:[]
      [
        ("source", [ "a" ]);
        ("edge", [ "a"; "b"; "1" ]);
        ("edge", [ "b"; "c"; "1" ]);
        ("edge", [ "a"; "c"; "9" ]);
      ]
  in
  let delta =
    limit_maintain sp_limit db
      ~additions:[ ("edge", Tuple.of_strings [ "a"; "c"; "1" ]) ]
      [ ("edge", Tuple.of_strings [ "b"; "c"; "1" ]) ]
  in
  check_limit_delta sp_limit delta;
  check bool "new route wins" true (dist_has delta [ "c"; "1" ])

let prop_insert_equals_recompute =
  QCheck.Test.make ~name:"insertion maintenance = recomputation" ~count:80
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 3 6 in
         let* seed = int_range 0 10000 in
         let* u = int_range 0 (n - 1) in
         let* v = int_range 0 (n - 1) in
         return (n, seed, u, v))
       ~print:(fun (n, seed, u, v) ->
         Printf.sprintf "n=%d seed=%d edge=(%d,%d)" n seed u v))
    (fun (n, seed, u, v) ->
      let g = Generate.random ~seed ~n ~p:0.3 in
      let db = Digraph.to_database g in
      let current = Naive.least_fixpoint tc db in
      let delta =
        Evallib.Dred.insert_facts tc db ~current ~additions:[ edge u v ]
      in
      Idb.equal delta.Dred.new_idb (Naive.least_fixpoint tc delta.Dred.new_db))

(* Random graphs: DRed = recompute, for random single and double deletions. *)
let prop_dred_equals_recompute =
  QCheck.Test.make ~name:"DRed = recomputation on random graphs" ~count:80
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 3 6 in
         let* seed = int_range 0 10000 in
         let* k = int_range 1 2 in
         return (n, seed, k))
       ~print:(fun (n, seed, k) -> Printf.sprintf "n=%d seed=%d k=%d" n seed k))
    (fun (n, seed, k) ->
      let g = Generate.random ~seed ~n ~p:0.4 in
      QCheck.assume (Digraph.edge_count g > k);
      let db = Digraph.to_database g in
      let edges = Digraph.edges g in
      let removals =
        List.filteri (fun i _ -> i < k) edges
        |> List.map (fun (u, v) -> edge u v)
      in
      let delta = maintain tc db removals in
      Idb.equal delta.Dred.new_idb (Naive.least_fixpoint tc delta.Dred.new_db))

let () =
  Alcotest.run "dred"
    [
      ( "dred",
        [
          Alcotest.test_case "breaks path" `Quick test_delete_breaks_path;
          Alcotest.test_case "alternative derivation" `Quick
            test_alternative_derivation_survives;
          Alcotest.test_case "multiple deletions" `Quick test_delete_multiple;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "two predicates" `Quick test_two_predicates;
          Alcotest.test_case "insert extends" `Quick test_insert_extends_path;
          Alcotest.test_case "stratified delete" `Quick test_stratified_delete;
          Alcotest.test_case "stratified insert" `Quick test_stratified_insert;
          Alcotest.test_case "mixed batch" `Quick test_mixed_batch;
        ] );
      ( "limits",
        [
          Alcotest.test_case "second-best support" `Quick
            test_limit_second_best;
          Alcotest.test_case "max second-best" `Quick
            test_limit_max_second_best;
          Alcotest.test_case "group vanishes" `Quick test_limit_group_vanishes;
          Alcotest.test_case "cascading relax" `Quick
            test_limit_cascading_relax;
          Alcotest.test_case "mixed limit batch" `Quick test_limit_mixed_batch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dred_equals_recompute; prop_insert_equals_recompute ] );
    ]
