The incremental materialization server, end to end: one scripted session
over stdin.  Reachability with an unreached complement — deletions must
over-delete and re-derive across the stratum boundary, inserts must run
seeded semi-naive (never a full re-saturation), repeated queries must hit
the version-tagged cache, and errors must leave the session alive.

  $ NEGDL_DOMAINS=1 negdl serve reach.dl graph.facts <<'EOF'
  > % the initial model: a path v0 -> v1 -> v2 -> v3, only v0 unreached
  > query unreached(X)
  > query r(v0, Y)
  > query r(v0, Y)
  > delete e(v1, v2).
  > query unreached(X)
  > insert e(v1, v2). e(v3, v4).
  > query unreached(X)
  > insert r(v0, v0).
  > delete e(v0, v9).
  > query reached(X); r(X, X)
  > stats
  > quit
  > EOF
  {(v0)} % 1 answer(s)
  {(v0, v1); (v0, v2); (v0, v3)} % 3 answer(s)
  {(v0, v1); (v0, v2); (v0, v3)} % 3 answer(s)
  ok deleted=1 overdeleted=6 rederived=2
  {(v0); (v2)} % 2 answer(s)
  ok inserted=2 overdeleted=1 derived=10
  {(v0)} % 1 answer(s)
  error: update: r is an IDB predicate
  error: update: e(v0, v9) is not in the database
  {(v1); (v2); (v3); (v4)} % 4 answer(s)
  {} % 0 answer(s)
  facts: edb=8 idb=15 universe=5 version=2
  updates: batches=2 inserted=2 deleted=1 overdeleted=7 rederived=12
  queries: served=7 cache_hits=3 cache_misses=6
  plans: cached=13 compiles=13 cache_hits=21 replans=0
  work: rule_applications=34 delta_applications=10 putback_applications=4 full_applications=0
  contention: stripe_locks=17 cache_hits=40 cache_misses=17 partition_skew=2
  bye

Mid-session adaptive replanning: under `--planner adaptive` the server's
long-lived plan cache self-tunes.  The hub batch (30 new sources all
pointing at v0) makes the cached delta plans' observed join cardinalities
diverge from the estimates they were compiled against at the initial
(4-vertex) sizes, so the next stage-barrier fetch replans — `stats` must
report it, and the version-tagged query cache must be entirely unaffected:
the post-update query is a miss against the new version with the new
answer, and repeating it hits.

  $ NEGDL_DOMAINS=1 negdl serve reach.dl graph.facts --planner adaptive <<'EOF'
  > query reached(X)
  > insert e(w1, v0). e(w2, v0). e(w3, v0). e(w4, v0). e(w5, v0). e(w6, v0). e(w7, v0). e(w8, v0). e(w9, v0). e(w10, v0). e(w11, v0). e(w12, v0). e(w13, v0). e(w14, v0). e(w15, v0). e(w16, v0). e(w17, v0). e(w18, v0). e(w19, v0). e(w20, v0). e(w21, v0). e(w22, v0). e(w23, v0). e(w24, v0). e(w25, v0). e(w26, v0). e(w27, v0). e(w28, v0). e(w29, v0). e(w30, v0).
  > query reached(X)
  > query reached(X)
  > stats
  > quit
  > EOF
  {(v1); (v2); (v3)} % 3 answer(s)
  ok inserted=30 overdeleted=1 derived=121
  {(v0); (v1); (v2); (v3)} % 4 answer(s)
  {(v0); (v1); (v2); (v3)} % 4 answer(s)
  facts: edb=37 idb=130 universe=34 version=1
  updates: batches=1 inserted=30 deleted=0 overdeleted=1 rederived=121
  queries: served=3 cache_hits=1 cache_misses=2
  plans: cached=10 compiles=10 cache_hits=7 replans=1
  work: rule_applications=18 delta_applications=3 putback_applications=1 full_applications=0
  contention: stripe_locks=130 cache_hits=218 cache_misses=133 partition_skew=3
  bye

Checkpoint under traffic and warm restart in place: `snapshot` writes the
pinned immutable model while the session keeps serving; mutations applied
after the checkpoint are undone by `restore`, which resets the version to
0 and clears the query cache — the repeated query must miss again (the
miss counter moves, the hit counter does not).  The next delta batch after
the restore still runs seeded semi-naive: full_applications stays 0.

  $ NEGDL_DOMAINS=1 negdl serve reach.dl graph.facts <<'EOF'
  > query unreached(X)
  > snapshot state.snap
  > insert e(v3, v0).
  > query unreached(X)
  > stats
  > restore state.snap
  > query unreached(X)
  > query unreached(X)
  > insert e(v3, v4).
  > stats
  > quit
  > EOF
  {(v0)} % 1 answer(s)
  ok bytes=434
  ok inserted=1 overdeleted=1 derived=11
  {} % 0 answer(s)
  facts: edb=8 idb=20 universe=4 version=1
  updates: batches=1 inserted=1 deleted=0 overdeleted=1 rederived=11
  queries: served=2 cache_hits=0 cache_misses=2
  plans: cached=10 compiles=10 cache_hits=12 replans=0
  work: rule_applications=22 delta_applications=3 putback_applications=1 full_applications=0
  contention: stripe_locks=20 cache_hits=28 cache_misses=20 partition_skew=3
  ok version=0
  {(v0)} % 1 answer(s)
  {(v0)} % 1 answer(s)
  ok inserted=1 overdeleted=0 derived=5
  facts: edb=8 idb=15 universe=5 version=1
  updates: batches=2 inserted=2 deleted=0 overdeleted=1 rederived=16
  queries: served=4 cache_hits=1 cache_misses=3
  plans: cached=10 compiles=10 cache_hits=23 replans=0
  work: rule_applications=33 delta_applications=6 putback_applications=1 full_applications=0
  contention: stripe_locks=25 cache_hits=34 cache_misses=25 partition_skew=4
  bye

Restarting from the checkpoint skips saturation entirely: the warm-started
server reports rule_applications=0 before its first batch, and serves the
checkpointed model.

  $ NEGDL_DOMAINS=1 negdl serve reach.dl graph.facts --snapshot state.snap <<'EOF'
  > query unreached(X)
  > stats
  > quit
  > EOF
  {(v0)} % 1 answer(s)
  facts: edb=7 idb=10 universe=4 version=0
  updates: batches=0 inserted=0 deleted=0 overdeleted=0 rederived=0
  queries: served=1 cache_hits=0 cache_misses=1
  plans: cached=0 compiles=0 cache_hits=0 replans=0
  work: rule_applications=0 delta_applications=0 putback_applications=0 full_applications=0
  contention: stripe_locks=10 cache_hits=0 cache_misses=0 partition_skew=1
  bye
