The incremental materialization server, end to end: one scripted session
over stdin.  Reachability with an unreached complement — deletions must
over-delete and re-derive across the stratum boundary, inserts must run
seeded semi-naive (never a full re-saturation), repeated queries must hit
the version-tagged cache, and errors must leave the session alive.

  $ NEGDL_DOMAINS=1 negdl serve reach.dl graph.facts <<'EOF'
  > % the initial model: a path v0 -> v1 -> v2 -> v3, only v0 unreached
  > query unreached(X)
  > query r(v0, Y)
  > query r(v0, Y)
  > delete e(v1, v2).
  > query unreached(X)
  > insert e(v1, v2). e(v3, v4).
  > query unreached(X)
  > insert r(v0, v0).
  > delete e(v0, v9).
  > query reached(X); r(X, X)
  > stats
  > quit
  > EOF
  {(v0)} % 1 answer(s)
  {(v0, v1); (v0, v2); (v0, v3)} % 3 answer(s)
  {(v0, v1); (v0, v2); (v0, v3)} % 3 answer(s)
  ok deleted=1 overdeleted=6 rederived=2
  {(v0); (v2)} % 2 answer(s)
  ok inserted=2 overdeleted=1 derived=10
  {(v0)} % 1 answer(s)
  error: update: r is an IDB predicate
  error: update: e(v0, v9) is not in the database
  {(v1); (v2); (v3); (v4)} % 4 answer(s)
  {} % 0 answer(s)
  facts: edb=8 idb=15 universe=5
  updates: batches=2 inserted=2 deleted=1 overdeleted=7 rederived=12
  queries: served=7 cache_hits=3 cache_misses=6
  plans: cached=13 compiles=13 cache_hits=21
  work: rule_applications=34 delta_applications=10 putback_applications=4 full_applications=0
  bye
