type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix rng.state

let int rng bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling: [raw] is uniform over the 2^62 values in
     [0, max_int].  Plain [raw mod bound] over-weights small residues
     whenever bound does not divide 2^62; instead, reject draws above the
     largest multiple of [bound] that fits.  [leftover] = 2^62 mod bound,
     computed without overflowing. *)
  let leftover = ((max_int mod bound) + 1) mod bound in
  let limit = max_int - leftover in
  let rec draw () =
    let raw = Int64.to_int (next_int64 rng) land max_int in
    if raw <= limit then raw mod bound else draw ()
  in
  draw ()

let float rng =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 rng) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool rng = Int64.logand (next_int64 rng) 1L = 1L

let pick rng l =
  match l with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth l (int rng (List.length l))

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let split rng =
  let seed = Int64.to_int (next_int64 rng) in
  create seed
