(** A small reusable pool of OCaml 5 domains.

    The pool exists so the evaluation engine can fan independent rule
    applications of one fixpoint iteration across cores without paying the
    domain spawn cost (~30us each) on every iteration.  Workers are spawned
    lazily on the first parallel run and then reused; the shared default
    pool is shut down automatically at exit.

    Jobs may intern symbols and tuples concurrently: both
    {!Relalg.Symbol.intern} and the packed tuple store serialise writers on
    a mutex and publish immutable snapshots, so reads from other domains
    are lock-free and data-race-free. *)

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] prepares a pool of [size] worker domains (default:
    [Domain.recommended_domain_count () - 1]).  No domain is spawned until
    the first {!run}.  A pool of size 0 — the default on a single-core
    host — never spawns: {!run} executes every job on the calling domain,
    which avoids the cross-domain minor-GC barrier when there is no
    parallelism to gain. *)

val size : t -> int

val worker_count : t -> int
(** Worker domains currently spawned: 0 before the first parallel {!run},
    [size] after it (and again 0 after {!shutdown}).  Concurrent first
    runs spawn exactly one complement of workers — the check-and-spawn is
    atomic — which this accessor lets tests assert. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] evaluates every thunk, distributing them over the
    worker domains (the calling domain also participates), and returns the
    results in order.

    Result order is a guarantee, not an accident of scheduling: result [i]
    is thunk [i]'s value {e whatever order the thunks complete in} (each
    job writes into its own slot, captured by index at submission).  The
    sharded plan executor relies on this to merge per-shard accumulators
    deterministically.  This is a barrier: it returns only once every thunk
    has finished.  If any thunk raises, the first exception (in task order)
    is re-raised after all tasks have settled.  Safe to call concurrently
    from several domains — worker startup is serialised on the pool's
    mutex, and each call waits at the barrier until the whole queue (its
    own jobs and any concurrent caller's) drains. *)

type morsel_report = {
  participants : int;
      (** Participants scheduled: [min (size + 1) morsels], at least 1. *)
  executed : int array;
      (** Morsels run by each participant (length [participants]); the
          spread between max and min is the shard skew. *)
  steals : int;  (** Successful steal-half operations. *)
}

val run_morsels :
  t -> morsels:int -> (int -> int -> 'a) -> 'a array * morsel_report
(** [run_morsels pool ~morsels f] evaluates [f p i] for every morsel index
    [i] in [0, morsels), fanned over the pool with work stealing:
    participants [p] start with an even contiguous split of the index
    space and, when their range runs dry, steal the larger half of the
    fullest remaining range — so uneven morsels don't straggle behind one
    worker.  Each index is claimed by exactly one participant, and the
    result array is indexed by morsel (deterministic regardless of the
    steal schedule).  [f] must be safe to call concurrently for distinct
    [p]; per-participant state may be keyed on [p], which is dense in
    [0, participants).  With a pool of size 0 (or a single morsel)
    everything runs inline on the calling domain in index order.  If any
    call raises, the first exception in morsel order is re-raised after
    the barrier. *)

val shutdown : t -> unit
(** Joins and discards the worker domains.  The pool can be reused — the
    next {!run} respawns them. *)

val set_worker_init : (unit -> unit) -> unit
(** Installs a hook run once by every worker domain (of every pool) right
    after it is spawned, before it takes any work.  Used to prime
    domain-local state — the plan layer registers the packed store's
    per-domain intern-cache initialisation here, since this library cannot
    depend on [relalg].  Replaces any previously installed hook; call
    before the first pool spawns workers. *)

val default : unit -> t
(** A process-wide shared pool, created on first use and shut down at
    exit.  The environment variable [NEGDL_DOMAINS], when set to a
    positive integer [n], pins this pool to [n] participants ([n - 1]
    workers plus the calling domain) regardless of the host's core
    count. *)
