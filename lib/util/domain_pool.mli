(** A small reusable pool of OCaml 5 domains.

    The pool exists so the evaluation engine can fan independent rule
    applications of one fixpoint iteration across cores without paying the
    domain spawn cost (~30us each) on every iteration.  Workers are spawned
    lazily on the first parallel run and then reused; the shared default
    pool is shut down automatically at exit.

    Jobs may intern symbols and tuples concurrently: both
    {!Relalg.Symbol.intern} and the packed tuple store serialise writers on
    a mutex and publish immutable snapshots, so reads from other domains
    are lock-free and data-race-free. *)

type t

val create : ?size:int -> unit -> t
(** [create ~size ()] prepares a pool of [size] worker domains (default:
    [Domain.recommended_domain_count () - 1]).  No domain is spawned until
    the first {!run}.  A pool of size 0 — the default on a single-core
    host — never spawns: {!run} executes every job on the calling domain,
    which avoids the cross-domain minor-GC barrier when there is no
    parallelism to gain. *)

val size : t -> int

val run : t -> (unit -> 'a) list -> 'a list
(** [run pool thunks] evaluates every thunk, distributing them over the
    worker domains (the calling domain also participates), and returns the
    results in order.  This is a barrier: it returns only once every thunk
    has finished.  If any thunk raises, the first exception (in task order)
    is re-raised after all tasks have settled.  Safe to call from one domain
    at a time per pool. *)

val shutdown : t -> unit
(** Joins and discards the worker domains.  The pool can be reused — the
    next {!run} respawns them. *)

val default : unit -> t
(** A process-wide shared pool, created on first use and shut down at
    exit. *)
