type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let create ?size () =
  let size =
    match size with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  {
    size;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    queue = Queue.create ();
    pending = 0;
    stop = false;
    workers = [];
  }

let size t = t.size

(* Runs [job] outside the lock, then decrements [pending] under it.  Both
   workers and the calling domain (in [run]) drain the queue through this. *)
let exec_one t job =
  Mutex.unlock t.mutex;
  (job () : unit);
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.work_done

(* A hook run by every spawned worker domain before it enters its loop —
   the plan layer installs the store's per-domain intern-cache priming
   here, so the first morsel a worker touches doesn't pay (or contend on)
   domain-local initialisation.  This library cannot depend on [relalg]
   directly, hence the inversion. *)
let worker_init : (unit -> unit) ref = ref (fun () -> ())

let set_worker_init f = worker_init := f

let worker t () =
  !worker_init ();
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.queue with
      | Some job ->
        exec_one t job;
        loop ()
      | None ->
        Condition.wait t.work_ready t.mutex;
        loop ()
  in
  loop ()

(* The emptiness check must happen under the mutex: two domains making
   their first concurrent [run] call would otherwise both observe
   [t.workers = []] and both spawn a full complement of workers — the
   losing list is overwritten and its domains leak, never joined by
   [shutdown].  A long-lived server issuing queries from several domains
   makes concurrent first use routine, so the check-and-spawn is atomic. *)
let ensure_started t =
  Mutex.lock t.mutex;
  if t.workers = [] then
    t.workers <- List.init t.size (fun _ -> Domain.spawn (worker t));
  Mutex.unlock t.mutex

let worker_count t =
  Mutex.lock t.mutex;
  let n = List.length t.workers in
  Mutex.unlock t.mutex;
  n

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.stop <- false

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

let run t thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  (* A pool of zero workers (single-core host) runs everything on the
     calling domain: spawning a second domain there only buys the
     stop-the-world minor-GC synchronisation overhead. *)
  | _ when t.size = 0 -> List.map (fun f -> f ()) thunks
  | _ ->
    ensure_started t;
    let thunks = Array.of_list thunks in
    let n = Array.length thunks in
    let results = Array.make n None in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i f ->
        Queue.add
          (fun () ->
            results.(i) <-
              Some
                (try Ok (f ())
                 with e -> Error (e, Printexc.get_raw_backtrace ())))
          t.queue)
      thunks;
    t.pending <- t.pending + n;
    Condition.broadcast t.work_ready;
    (* The calling domain helps drain the queue, then waits at the
       barrier. *)
    let rec drain () =
      if t.pending > 0 then begin
        (match Queue.take_opt t.queue with
        | Some job -> exec_one t job
        | None -> Condition.wait t.work_done t.mutex);
        drain ()
      end
    in
    drain ();
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error err) -> reraise err
           | None -> assert false)
         results)

(* --- morsel scheduling -------------------------------------------------- *)

type morsel_report = {
  participants : int;
  executed : int array;
  steals : int;
}

(* A participant's range of morsel indices, packed [lo, hi) into one
   atomic int so claim and steal are single CAS operations.  31 bits per
   bound keeps the packing portable to any 64-bit [int]. *)
let range_bits = 31

let range_mask = (1 lsl range_bits) - 1

let pack lo hi = (lo lsl range_bits) lor hi

let range_lo r = r lsr range_bits

let range_hi r = r land range_mask

let run_morsels t ~morsels f =
  if morsels < 0 then invalid_arg "Domain_pool.run_morsels: negative count";
  if morsels > range_mask then
    invalid_arg "Domain_pool.run_morsels: too many morsels";
  let np = max 1 (min (t.size + 1) morsels) in
  if np = 1 then begin
    (* Single participant (pool of size 0, or one morsel): run inline on
       the calling domain, no atomics, exceptions propagate directly. *)
    let results = Array.make morsels None in
    for i = 0 to morsels - 1 do
      results.(i) <- Some (f 0 i)
    done;
    ( Array.map (function Some v -> v | None -> assert false) results,
      { participants = 1; executed = [| morsels |]; steals = 0 } )
  end
  else begin
    (* Initial even split; a participant whose range runs dry steals the
       larger half of the fullest remaining range, so uneven morsels don't
       straggle behind one worker. *)
    let ranges =
      Array.init np (fun p ->
          Atomic.make (pack (p * morsels / np) ((p + 1) * morsels / np)))
    in
    let steals = Atomic.make 0 in
    let results = Array.make morsels None in
    let executed = Array.make np 0 in
    let rec claim p =
      let r = ranges.(p) in
      let cur = Atomic.get r in
      let lo = range_lo cur and hi = range_hi cur in
      if lo < hi then
        if Atomic.compare_and_set r cur (pack (lo + 1) hi) then Some lo
        else claim p
      else steal p
    and steal p =
      (* Only victims with >= 2 remaining morsels qualify: splitting a
         single-morsel range would leave one side empty, and the thief
         would spin re-stealing nothing until the owner finished it.  A
         lone straggler morsel is at most one [f] call of imbalance. *)
      let victim = ref (-1) and victim_rem = ref 1 in
      for q = 0 to np - 1 do
        if q <> p then begin
          let c = Atomic.get ranges.(q) in
          let rem = range_hi c - range_lo c in
          if rem > !victim_rem then begin
            victim := q;
            victim_rem := rem
          end
        end
      done;
      if !victim < 0 then None
      else begin
        let q = !victim in
        let c = Atomic.get ranges.(q) in
        let lo = range_lo c and hi = range_hi c in
        if hi - lo < 2 then steal p
        else
          let mid = lo + ((hi - lo) + 1) / 2 in
          if Atomic.compare_and_set ranges.(q) c (pack lo mid) then begin
            Atomic.incr steals;
            (* Our own range is empty (that is why we are stealing) and
               nobody else refills it, so a plain set is safe; thieves may
               immediately steal from the new range in turn. *)
            Atomic.set ranges.(p) (pack mid hi);
            claim p
          end
          else steal p
      end
    in
    let participant p () =
      let rec go () =
        match claim p with
        | None -> ()
        | Some i ->
          (* Each index is claimed exactly once, so the slot write is
             unique; the [run] barrier publishes it to the caller. *)
          results.(i) <-
            Some
              (try Ok (f p i)
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          executed.(p) <- executed.(p) + 1;
          go ()
      in
      go ()
    in
    let (_ : unit list) = run t (List.init np participant) in
    let values =
      Array.init morsels (fun i ->
          match results.(i) with
          | Some (Ok v) -> v
          | Some (Error err) -> reraise err
          | None -> assert false)
    in
    (values, { participants = np; executed; steals = Atomic.get steals })
  end

let default_pool =
  lazy
    (let size =
       (* NEGDL_DOMAINS pins the pool's participant count (workers + the
          calling domain) regardless of the host's core count — the cram
          tests use NEGDL_DOMAINS=1 for deterministic single-participant
          scheduling counters. *)
       match Sys.getenv_opt "NEGDL_DOMAINS" with
       | Some s -> (
         match int_of_string_opt (String.trim s) with
         | Some n when n >= 1 -> Some (n - 1)
         | _ -> None)
       | None -> None
     in
     let p = match size with Some n -> create ~size:n () | None -> create () in
     at_exit (fun () -> shutdown p);
     p)

let default () = Lazy.force default_pool
