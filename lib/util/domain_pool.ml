type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let create ?size () =
  let size =
    match size with
    | Some n -> max 0 n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  {
    size;
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    queue = Queue.create ();
    pending = 0;
    stop = false;
    workers = [];
  }

let size t = t.size

(* Runs [job] outside the lock, then decrements [pending] under it.  Both
   workers and the calling domain (in [run]) drain the queue through this. *)
let exec_one t job =
  Mutex.unlock t.mutex;
  (job () : unit);
  Mutex.lock t.mutex;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.work_done

let worker t () =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match Queue.take_opt t.queue with
      | Some job ->
        exec_one t job;
        loop ()
      | None ->
        Condition.wait t.work_ready t.mutex;
        loop ()
  in
  loop ()

let ensure_started t =
  if t.workers = [] then
    t.workers <- List.init t.size (fun _ -> Domain.spawn (worker t))

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.stop <- false

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

let run t thunks =
  match thunks with
  | [] -> []
  | [ f ] -> [ f () ]
  (* A pool of zero workers (single-core host) runs everything on the
     calling domain: spawning a second domain there only buys the
     stop-the-world minor-GC synchronisation overhead. *)
  | _ when t.size = 0 -> List.map (fun f -> f ()) thunks
  | _ ->
    ensure_started t;
    let thunks = Array.of_list thunks in
    let n = Array.length thunks in
    let results = Array.make n None in
    Mutex.lock t.mutex;
    Array.iteri
      (fun i f ->
        Queue.add
          (fun () ->
            results.(i) <-
              Some
                (try Ok (f ())
                 with e -> Error (e, Printexc.get_raw_backtrace ())))
          t.queue)
      thunks;
    t.pending <- t.pending + n;
    Condition.broadcast t.work_ready;
    (* The calling domain helps drain the queue, then waits at the
       barrier. *)
    let rec drain () =
      if t.pending > 0 then begin
        (match Queue.take_opt t.queue with
        | Some job -> exec_one t job
        | None -> Condition.wait t.work_done t.mutex);
        drain ()
      end
    in
    drain ();
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error err) -> reraise err
           | None -> assert false)
         results)

let default_pool =
  lazy
    (let p = create () in
     at_exit (fun () -> shutdown p);
     p)

let default () = Lazy.force default_pool
