module Ground = Evallib.Ground
module Idb = Evallib.Idb
module Cnf = Satlib.Cnf
module Solver = Satlib.Solver
module Count = Satlib.Count
module Enumerate = Satlib.Enumerate
module Outcome = Satlib.Outcome
module Sat_stats = Satlib.Sat_stats
module Domain_pool = Negdl_util.Domain_pool
module ISet = Satlib.Count.ISet

type t = {
  program : Datalog.Ast.program;
  db : Relalg.Database.t;
  ground : Ground.t;
  encoding : Encode.t;
}

let prepare ?planner ?plan_cache program db =
  let ground = Ground.ground ?planner ?cache:plan_cache program db in
  { program; db; ground; encoding = Encode.build ground }

let ground t = t.ground

let atom_count t = Ground.atom_count t.ground

let exists ?mode t = Solver.is_satisfiable ?mode (Encode.cnf t.encoding)

let exists_outcome ?mode ?conflict_budget ?time_budget t =
  Solver.solve_outcome ?mode ?conflict_budget ?time_budget
    (Encode.cnf t.encoding)

let find ?mode t =
  match Solver.solve ?mode (Encode.cnf t.encoding) with
  | Solver.Unsat -> None
  | Solver.Sat model -> Some (Encode.idb_of_model t.encoding model)

let find_outcome ?mode ?conflict_budget ?time_budget t =
  match
    Solver.solve_outcome ?mode ?conflict_budget ?time_budget
      (Encode.cnf t.encoding)
  with
  | Outcome.Sat model -> `Found (Encode.idb_of_model t.encoding model)
  | Outcome.Unsat -> `No_fixpoint
  | Outcome.Unknown r -> `Unknown r

(* --- component-parallel census ------------------------------------------- *)

(* The encoding's CNF falls apart into connected components exactly when
   the ground program does (the paper's G_n: one component per cycle).
   Fixpoints then factor: every combination of per-component models is a
   model, so the census is a product and the enumeration a cross-product.
   Only the atom variables matter for the result ([idb_of_model] ignores
   the instance auxiliaries), so components are recombined by overlaying
   their projected values. *)

let pow2 n = 1 lsl n

let flat_enumerate ?limit t =
  Enumerate.models
    ~projection:(Encode.atom_variables t.encoding)
    ?limit (Encode.cnf t.encoding)
  |> List.map (Encode.idb_of_model t.encoding)

let take limit l =
  match limit with
  | None -> l
  | Some n ->
    let rec go n = function
      | x :: rest when n > 0 -> x :: go (n - 1) rest
      | _ -> []
    in
    go n l

let enumerate ?limit t =
  let cnf = Encode.cnf t.encoding in
  let comps = Count.components (Cnf.clauses cnf) in
  match comps with
  | [] | [ _ ] ->
    (* Nothing to decompose (plus: keeps the flat enumeration order for
       single-component instances). *)
    flat_enumerate ?limit t
  | comps ->
    let atom_vars = Encode.atom_variables t.encoding in
    let nvars = Cnf.num_vars cnf in
    let jobs =
      List.map
        (fun (cs, vs) ->
          let projection = List.filter (fun v -> ISet.mem v vs) atom_vars in
          fun () ->
            Sat_stats.component_counted ();
            (projection,
             Enumerate.models ~projection ?limit (Cnf.of_list nvars cs)))
        comps
    in
    let per_component = Domain_pool.run (Domain_pool.default ()) jobs in
    (* Unconstrained atom variables are free: each doubles the census. *)
    let constrained =
      List.fold_left (fun acc (_, vs) -> ISet.union acc vs) ISet.empty comps
    in
    let free_atoms =
      List.filter (fun v -> not (ISet.mem v constrained)) atom_vars
    in
    let free_choices =
      List.map
        (fun v ->
          let tt = Array.make (nvars + 1) false in
          tt.(v) <- true;
          ([ v ], [ Array.make (nvars + 1) false; tt ]))
        free_atoms
    in
    let overlay base (projection, m) =
      let merged = Array.copy base in
      List.iter (fun v -> merged.(v) <- m.(v)) projection;
      merged
    in
    let combos =
      List.fold_left
        (fun acc (projection, ms) ->
          take limit
            (List.concat_map
               (fun base ->
                 List.map (fun m -> overlay base (projection, m)) ms)
               acc))
        [ Array.make (nvars + 1) false ]
        (per_component @ free_choices)
    in
    List.map (Encode.idb_of_model t.encoding) combos

let count ?limit t = List.length (enumerate ?limit t)

(* Cube-and-conquer: split one large component on the hottest VSIDS
   variables of a short probe run, count the cubes independently (they
   partition the model space) and sum. *)
let cube_count ~budget ~par cnf clauses vars =
  let constrained =
    List.fold_left
      (fun acc c -> List.fold_left (fun a l -> ISet.add (abs l) a) acc c)
      ISet.empty clauses
  in
  let k =
    let rec bits n acc = if n <= 1 then acc else bits (n / 2) (acc + 1) in
    min 4 (max 1 (bits (2 * par) 0))
  in
  let split =
    Solver.probe_activity_order cnf
    |> List.filter (fun v -> ISet.mem v constrained)
    |> take (Some k)
  in
  let rec cubes = function
    | [] -> [ [] ]
    | v :: rest ->
      let sub = cubes rest in
      List.map (fun c -> v :: c) sub @ List.map (fun c -> -v :: c) sub
  in
  let cube_list = cubes split in
  let vars' = List.fold_left (fun acc v -> ISet.remove v acc) vars split in
  let per_cube_budget = max 1 (budget / List.length cube_list) in
  let jobs =
    List.map
      (fun cube () ->
        let result =
          match
            List.fold_left (fun cs l -> Count.assign l cs) clauses cube
          with
          | exception Count.Conflict -> { Count.value = 0; exact = true }
          | cs -> Count.count_clauses ~budget:per_cube_budget cs vars'
        in
        Sat_stats.cube_solved ();
        result)
      cube_list
  in
  let parts = Domain_pool.run (Domain_pool.default ()) jobs in
  List.fold_left
    (fun acc (p : Count.partial) ->
      { Count.value = acc.Count.value + p.value; exact = acc.exact && p.exact })
    { Count.value = 0; exact = true }
    parts

let count_exact ?(budget = 2_000_000) ?par t =
  let par =
    match par with
    | Some n -> max 1 n
    | None -> Solver.default_parallelism ()
  in
  let cnf = Encode.cnf t.encoding in
  let nvars = Cnf.num_vars cnf in
  let all_vars = ISet.of_list (List.init nvars (fun i -> i + 1)) in
  let comps = Count.components (Cnf.clauses cnf) in
  match comps with
  | [] -> Outcome.Exact (pow2 nvars)
  | [ (cs, vs) ] when par >= 2 && ISet.cardinal vs >= 20 ->
    let free = ISet.cardinal (ISet.diff all_vars vs) in
    let p = cube_count ~budget ~par cnf cs vs in
    let value = p.Count.value * pow2 free in
    if p.Count.exact then Outcome.Exact value
    else Outcome.Lower_bound (value, Outcome.Node_budget)
  | [ _ ] -> Count.count_limited ~budget cnf
  | comps ->
    let constrained =
      List.fold_left (fun acc (_, vs) -> ISet.union acc vs) ISet.empty comps
    in
    let free = ISet.cardinal (ISet.diff all_vars constrained) in
    let per_comp_budget = max 1 (budget / List.length comps) in
    let jobs =
      List.map
        (fun (cs, vs) () ->
          Sat_stats.component_counted ();
          Count.count_clauses ~budget:per_comp_budget cs vs)
        comps
    in
    let parts = Domain_pool.run (Domain_pool.default ()) jobs in
    (* An exact zero absorbs the product no matter what the unexplored
       parts would have said. *)
    let exact_zero =
      List.exists (fun (p : Count.partial) -> p.value = 0 && p.exact) parts
    in
    let value =
      List.fold_left (fun a (p : Count.partial) -> a * p.value) 1 parts
    in
    let exact =
      exact_zero || List.for_all (fun (p : Count.partial) -> p.exact) parts
    in
    let value = if exact_zero then 0 else value * pow2 free in
    if exact then Outcome.Exact value
    else Outcome.Lower_bound (value, Outcome.Node_budget)

let has_unique t =
  Enumerate.is_unique
    ~projection:(Encode.atom_variables t.encoding)
    (Encode.cnf t.encoding)

let intersection t =
  let cnf = Encode.cnf t.encoding in
  match Solver.solve cnf with
  | Solver.Unsat -> None
  | Solver.Sat _ ->
    let forced =
      Enumerate.forced_true cnf (Encode.atom_variables t.encoding)
    in
    Some (Encode.idb_of_true_vars t.encoding forced)

let least t =
  match intersection t with
  | None -> None
  | Some inter ->
    if Idb.equal (Ground.apply t.ground inter) inter then Some inter
    else None

let minimal t =
  let session = Solver.session (Encode.cnf t.encoding) in
  let atom_vars = Encode.atom_variables t.encoding in
  match Solver.solve_assuming session [] with
  | Solver.Unsat -> None
  | Solver.Sat model ->
    (* Shrink: demand a model strictly below the current one until UNSAT.
       The narrowing clauses accumulate monotonically, so one incremental
       session serves the whole descent. *)
    let rec shrink model =
      let true_vars = List.filter (fun v -> model.(v)) atom_vars in
      let false_vars = List.filter (fun v -> not model.(v)) atom_vars in
      List.iter (fun v -> Solver.add_clause session [ -v ]) false_vars;
      Solver.add_clause session (List.map (fun v -> -v) true_vars);
      match Solver.solve_assuming session [] with
      | Solver.Unsat -> model
      | Solver.Sat smaller -> shrink smaller
    in
    Some (Encode.idb_of_model t.encoding (shrink model))
