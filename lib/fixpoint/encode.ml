module Ground = Evallib.Ground
module Idb = Evallib.Idb
module Cnf = Satlib.Cnf
module Symbol = Relalg.Symbol
module Store = Relalg.Store

(* Ground atoms are keyed by interned integer pairs — the predicate's
   symbol id and the tuple's packed id in the global {!Relalg.Store} — so
   building and querying the encoding never re-hashes or re-compares a
   symbol array. *)
let key_of_atom (a : Ground.gatom) =
  (Symbol.to_int (Symbol.intern a.pred), Store.intern a.tuple)

type t = {
  ground : Ground.t;
  cnf : Cnf.t;
  var_of : (int * int, int) Hashtbl.t;
  atom_of : Ground.gatom array;  (* indexed by variable - 1 *)
  atom_var_count : int;
}

let build g =
  let atoms = Array.of_list (Ground.atoms g) in
  let n_atoms = Array.length atoms in
  let var_of = Hashtbl.create (max 16 n_atoms) in
  Array.iteri (fun i a -> Hashtbl.replace var_of (key_of_atom a) (i + 1)) atoms;
  let var a = Hashtbl.find var_of (key_of_atom a) in
  (* Instance variables follow the atom variables. *)
  let instance_count =
    List.fold_left (fun acc _ -> acc + 1) 0 (Ground.rules g)
  in
  let total_vars = n_atoms + instance_count in
  let clauses = ref [] in
  let add c = clauses := c :: !clauses in
  let next_instance = ref (n_atoms + 1) in
  List.iter
    (fun atom ->
      let p = var atom in
      let instances = Ground.instances_for g atom in
      let body_vars =
        List.map
          (fun (gr : Ground.grule) ->
            let b = !next_instance in
            incr next_instance;
            let lits =
              List.map (fun a -> var a) gr.pos
              @ List.map (fun a -> -var a) gr.neg
            in
            (* b <-> conjunction of lits *)
            List.iter (fun l -> add [ -b; l ]) lits;
            add (b :: List.map (fun l -> -l) lits);
            b)
          instances
      in
      (* p <-> disjunction of the instance variables *)
      add (-p :: body_vars);
      List.iter (fun b -> add [ p; -b ]) body_vars)
    (Ground.atoms g);
  let cnf = Cnf.of_list total_vars (List.rev !clauses) in
  {
    ground = g;
    cnf;
    var_of;
    atom_of = atoms;
    atom_var_count = n_atoms;
  }

let cnf t = t.cnf

let atom_variables t = List.init t.atom_var_count (fun i -> i + 1)

let var_of_atom t a =
  (* Lookup-only: an atom whose tuple was never interned cannot be in the
     grounding, so probe the store without growing it. *)
  match Store.find a.Ground.tuple with
  | None -> raise Not_found
  | Some tid -> (
    match
      Hashtbl.find_opt t.var_of (Symbol.to_int (Symbol.intern a.Ground.pred), tid)
    with
    | Some v -> v
    | None -> raise Not_found)

let idb_of_true_vars t vars =
  Ground.to_idb t.ground
    (List.filter_map
       (fun v ->
         if v >= 1 && v <= t.atom_var_count then Some t.atom_of.(v - 1)
         else None)
       vars)

let idb_of_model t model =
  idb_of_true_vars t
    (List.filter (fun v -> model.(v)) (atom_variables t))
