(** The fixpoint query suite, answered through the SAT encoding.

    These are exactly the decision problems whose complexity Section 3
    pins down:

    - {!exists} / {!find} — fixpoint existence (NP-complete for fixed
      programs, Theorem 1; NEXP-complete with the program as input,
      Theorem 4: the exponential grounding step is visible here);
    - {!has_unique} — unique fixpoint (US-complete, Theorem 2);
    - {!least} — least fixpoint existence (US-hard, in FO(NP), Theorem 3):
      implemented with the paper's characterisation — compute the
      intersection of all fixpoints with one NP-oracle (SAT) call per
      ground atom, then check that the intersection is itself a fixpoint;
    - {!enumerate} / {!count} — fixpoint census (used to reproduce the
      2{^ n} incomparable fixpoints of the Section 2 example).

    The search layer underneath is parallel and resource-bounded: SAT
    calls accept a portfolio [mode] (see {!Satlib.Solver}), the census
    decomposes by connected CNF components — counted or enumerated
    concurrently on the shared domain pool and product-combined — and
    budgets degrade into structured {!Satlib.Outcome} values instead of
    exceptions.  Parallelism never changes an answer, only where a budget
    turns into an [Unknown]. *)

type t

val prepare :
  ?planner:Planlib.Plan.planner ->
  ?plan_cache:Planlib.Cache.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  t
(** Grounds the program ({!Evallib.Ground.ground} — [planner] selects the
    instantiation plans' join ordering, [plan_cache] retains them for
    display) and builds the SAT encoding. *)

val ground : t -> Evallib.Ground.t

val atom_count : t -> int

val exists : ?mode:Satlib.Solver.mode -> t -> bool

val exists_outcome :
  ?mode:Satlib.Solver.mode ->
  ?conflict_budget:int ->
  ?time_budget:float ->
  t ->
  Satlib.Outcome.t
(** Budgeted fixpoint existence: [Unknown] when the budget runs out before
    the SAT search decides. *)

val find : ?mode:Satlib.Solver.mode -> t -> Evallib.Idb.t option
(** Some fixpoint, if any. *)

val find_outcome :
  ?mode:Satlib.Solver.mode ->
  ?conflict_budget:int ->
  ?time_budget:float ->
  t ->
  [ `Found of Evallib.Idb.t
  | `No_fixpoint
  | `Unknown of Satlib.Outcome.reason ]
(** Budgeted {!find}. *)

val enumerate : ?limit:int -> t -> Evallib.Idb.t list
(** All fixpoints (up to [limit]).  Independent CNF components are
    enumerated concurrently and cross-product-combined; single-component
    encodings keep the flat blocking-clause enumeration order. *)

val count : ?limit:int -> t -> int
(** Census by SAT enumeration with blocking clauses (one solver call per
    fixpoint within each component). *)

val count_exact : ?budget:int -> ?par:int -> t -> Satlib.Outcome.count
(** Census by exact model counting (#SAT with component decomposition) —
    sound because the encoding's auxiliary variables are functionally
    determined by the atom variables.  On the Section 2 example G{_n}
    (k disjoint cycles) this counts the 2{^ k} fixpoints without
    enumerating them.  Components are counted concurrently on the domain
    pool; a single large component is split cube-and-conquer style on the
    hottest VSIDS variables when [par >= 2] (default: the solver's default
    parallelism).  When the [budget] of counting nodes (default two
    million) runs out, the completed work is kept and reported as
    [Lower_bound] — this function never raises. *)

val has_unique : t -> bool

val intersection : t -> Evallib.Idb.t option
(** Pointwise intersection of {e all} fixpoints ([None] when there is no
    fixpoint); one SAT call per ground atom. *)

val least : t -> Evallib.Idb.t option
(** The least fixpoint, if one exists. *)

val minimal : t -> Evallib.Idb.t option
(** Some {e minimal} fixpoint, obtained by iteratively shrinking a model
    with SAT calls.  A least fixpoint, when it exists, is the unique
    minimal one. *)
