(* Versioned binary snapshots.  See the .mli for the format layout.

   Two invariants carry the whole design:

   - {e Canonical encoding}: every variable part of the file is either
     derived from the model (dictionary ids, section offsets) or sorted
     (symbol names, relation directory, tuple rows, override plans), so
     [encode] is a pure function of the model and re-snapshotting a
     restored model reproduces the bytes exactly, whatever the process's
     intern order or storage backend.

   - {e Fail-closed decoding with no global effects}: [decode] works
     entirely on local ints and strings — it never interns a symbol or
     tuple — and validates structure (CRCs over every byte, strict sort
     order, exact section consumption, contiguity of the tuple spans)
     before [restore] is allowed to touch the global tables.  A damaged
     file therefore yields a located [Error] and leaves the process
     untouched. *)

module Database = Relalg.Database
module Relation = Relalg.Relation
module Symbol = Relalg.Symbol
module Store = Relalg.Store
module Idset = Relalg.Idset
module Tuple = Relalg.Tuple
module Pretty = Datalog.Pretty
module Parser = Datalog.Parser
module Plan = Planlib.Plan

type error =
  | Io of string
  | Corrupt of { section : string; reason : string }
  | Version_skew of { found : int; supported : int }
  | Program_mismatch of { snapshot : string; loaded : string }
  | Semantics_mismatch of { snapshot : string; loaded : string }
  | Database_mismatch

let error_to_string = function
  | Io m -> "snapshot: " ^ m
  | Corrupt { section; reason } ->
    Printf.sprintf "snapshot: corrupt %s section (%s)" section reason
  | Version_skew { found; supported } ->
    Printf.sprintf
      "snapshot: format version %d, but this build reads version %d — \
       regenerate the snapshot with this binary"
      found supported
  | Program_mismatch { snapshot; loaded } ->
    Printf.sprintf
      "snapshot: taken for a different program (snapshot fingerprint %s, \
       loaded program %s) — pass the program the snapshot was taken for, \
       or regenerate it"
      snapshot loaded
  | Semantics_mismatch { snapshot; loaded } ->
    Printf.sprintf
      "snapshot: taken under %s semantics, but %s was requested — \
       regenerate the snapshot"
      snapshot loaded
  | Database_mismatch ->
    "snapshot: EDB digest does not match the database — the snapshot is \
     stale; re-evaluate to regenerate it"

let format_version = 1

let magic = "NEGDLSNP"

type kind = Edb | Idb | Unknown

type relation_image = {
  kind : kind;
  name : string;
  arity : int;
  row_count : int;
  word_off : int;
}

type image = {
  symbols : string array;
  relations : relation_image list;
  words : int array;
  program_md5 : string;
  semantics : string;
  edb_digest : string;
  overrides : (string * int * (int * int) list) list;
}

let kind_code = function Edb -> 0 | Idb -> 1 | Unknown -> 2

let kind_of_code = function
  | 0 -> Some Edb
  | 1 -> Some Idb
  | 2 -> Some Unknown
  | _ -> None

let section_name = function
  | 1 -> "symbols"
  | 2 -> "relations"
  | 3 -> "tuples"
  | 4 -> "program"
  | 5 -> "overrides"
  | _ -> "unknown"

let compare_row (a : int array) (b : int array) =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* --- fingerprints ------------------------------------------------------- *)

let digest_hex = Digest.to_hex

let program_digest p = Digest.string (Pretty.program_to_string p)

(* Capture's working form: one relation's rows as dictionary-id arrays,
   before they are flattened into the image's single word array. *)
type rel_rows = {
  rr_kind : kind;
  rr_name : string;
  rr_arity : int;
  rr_rows : int array array;
}

(* The EDB digest covers the canonical bytes of the universe and the EDB
   relations — computed identically from a live [Database.t]
   ([database_digest]) and by [capture], so the [--snapshot] fast paths
   can compare a snapshot against a freshly parsed database without
   restoring it. *)
let edb_digest_of ~names ~(edb : rel_rows list) =
  let b = Buffer.create 1024 in
  Codec.add_u32 b (Array.length names);
  Array.iter (Codec.add_str b) names;
  List.iter
    (fun rr ->
      Codec.add_str b rr.rr_name;
      Codec.add_u32 b rr.rr_arity;
      Codec.add_u32 b (Array.length rr.rr_rows);
      Array.iter (fun row -> Array.iter (Codec.add_u32 b) row) rr.rr_rows)
    edb;
  Digest.string (Buffer.contents b)

(* --- capture ------------------------------------------------------------ *)

exception Out_of_universe of string

(* The dictionary is the universe, name-sorted; [sym_to_dict] maps a
   process-local symbol id to its dictionary position, -1 when the symbol
   is not in the universe. *)
let dictionary_of db =
  let universe = Database.universe db in
  let names =
    List.map Symbol.name universe |> List.sort String.compare |> Array.of_list
  in
  let sym_to_dict = Array.make (Symbol.count ()) (-1) in
  Array.iteri
    (fun d name -> sym_to_dict.(Symbol.to_int (Symbol.intern name)) <- d)
    names;
  (* Interning pre-existing universe names allocates nothing new. *)
  (names, sym_to_dict)

let rows_of_relation sym_to_dict kind name r =
  let dict_of_word w =
    let d = if w < Array.length sym_to_dict then sym_to_dict.(w) else -1 in
    if d < 0 then raise (Out_of_universe name) else d
  in
  let acc = ref [] in
  (match Relation.ids r with
  | Some ids ->
    (* Hashed backend: stream rows straight out of the packed store
       arrays — no per-tuple boxing.  Ids decode to (stripe, local); the
       encoded rows are dictionary-coded and sorted below, so the output
       bytes are independent of how tuples were striped. *)
    let v = Store.view () in
    Idset.iter
      (fun id ->
        let p = Store.id_part id and l = Store.id_local id in
        let off = v.Store.v_off.(p).(l) and len = v.Store.v_len.(p).(l) in
        let data = v.Store.v_data.(p) in
        acc :=
          Array.init len (fun j -> dict_of_word data.(off + j))
          :: !acc)
      ids
  | None ->
    Relation.iter
      (fun t ->
        acc :=
          Array.init (Tuple.arity t) (fun j ->
              dict_of_word (Symbol.to_int (Tuple.get t j)))
          :: !acc)
      r);
  let rows = Array.of_list !acc in
  Array.sort compare_row rows;
  { rr_kind = kind; rr_name = name; rr_arity = Relation.arity r; rr_rows = rows }

let edb_images sym_to_dict db =
  (* [Database.relations] is already name-sorted. *)
  List.map
    (fun (name, r) -> rows_of_relation sym_to_dict Edb name r)
    (Database.relations db)

let database_digest db =
  let names, sym_to_dict = dictionary_of db in
  edb_digest_of ~names ~edb:(edb_images sym_to_dict db)

let code_of_variant = function Plan.Full -> 0 | Plan.Delta j -> j + 1

let variant_of_code = function 0 -> Plan.Full | n -> Plan.Delta (n - 1)

let canonical_overrides overrides =
  List.filter_map
    (fun (rule, variant, pairs) ->
      match List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs with
      | [] -> None
      | pairs -> Some (Pretty.rule_to_string rule, code_of_variant variant, pairs))
    overrides
  |> List.sort (fun (r1, v1, _) (r2, v2, _) ->
         let c = String.compare r1 r2 in
         if c <> 0 then c else Int.compare v1 v2)

(* Flatten the per-relation row arrays into the image's single word array,
   recording each relation's span. *)
let flatten rels =
  let total =
    List.fold_left
      (fun acc rr -> acc + (rr.rr_arity * Array.length rr.rr_rows))
      0 rels
  in
  let data = Array.make total 0 in
  let off = ref 0 in
  let images =
    List.map
      (fun rr ->
        let word_off = !off in
        Array.iter
          (fun row ->
            Array.iter
              (fun w ->
                data.(!off) <- w;
                incr off)
              row)
          rr.rr_rows;
        {
          kind = rr.rr_kind;
          name = rr.rr_name;
          arity = rr.rr_arity;
          row_count = Array.length rr.rr_rows;
          word_off;
        })
      rels
  in
  (images, data)

let capture ?(unknown = []) ?(overrides = []) ~program ~semantics ~db idb =
  let names, sym_to_dict = dictionary_of db in
  let sorted group =
    List.sort (fun (a, _) (b, _) -> String.compare a b) group
  in
  match
    let edb = edb_images sym_to_dict db in
    let idb =
      List.map
        (fun (name, r) -> rows_of_relation sym_to_dict Idb name r)
        (sorted idb)
    in
    let unknown =
      List.map
        (fun (name, r) -> rows_of_relation sym_to_dict Unknown name r)
        (sorted unknown)
    in
    let relations, words = flatten (edb @ idb @ unknown) in
    {
      symbols = names;
      relations;
      words;
      program_md5 = program_digest program;
      semantics;
      edb_digest = edb_digest_of ~names ~edb;
      overrides = canonical_overrides overrides;
    }
  with
  | image -> Ok image
  | exception Out_of_universe name ->
    Error
      (Io
         (Printf.sprintf
            "cannot snapshot: relation %s holds a constant outside the \
             database universe"
            name))

(* --- encode ------------------------------------------------------------- *)

let encode_symbols image =
  let b = Buffer.create 1024 in
  Codec.add_u32 b (Array.length image.symbols);
  Array.iter (Codec.add_str b) image.symbols;
  Buffer.contents b

let encode_relations image =
  let b = Buffer.create 256 in
  Codec.add_u32 b (List.length image.relations);
  List.iter
    (fun ri ->
      Codec.add_u8 b (kind_code ri.kind);
      Codec.add_str b ri.name;
      Codec.add_u32 b ri.arity;
      Codec.add_u32 b ri.row_count;
      Codec.add_u64 b ri.word_off)
    image.relations;
  Buffer.contents b

let encode_tuples image =
  let words = Array.length image.words in
  let b = Buffer.create (max 64 (8 + (4 * words))) in
  Codec.add_u64 b words;
  Array.iter (Codec.add_u32 b) image.words;
  Buffer.contents b

let encode_program image =
  if String.length image.program_md5 <> 16 then
    invalid_arg "Snapshot.encode: program_md5 must be 16 bytes";
  if String.length image.edb_digest <> 16 then
    invalid_arg "Snapshot.encode: edb_digest must be 16 bytes";
  let b = Buffer.create 64 in
  Buffer.add_string b image.program_md5;
  Codec.add_str b image.semantics;
  Buffer.add_string b image.edb_digest;
  Buffer.contents b

let encode_overrides image =
  let b = Buffer.create 256 in
  Codec.add_u32 b (List.length image.overrides);
  List.iter
    (fun (rule, variant, pairs) ->
      Codec.add_str b rule;
      Codec.add_u32 b variant;
      Codec.add_u32 b (List.length pairs);
      List.iter
        (fun (occ, eff) ->
          Codec.add_u32 b occ;
          Codec.add_u32 b eff)
        pairs)
    image.overrides;
  Buffer.contents b

let encode image =
  let sections =
    [
      (1, encode_symbols image);
      (2, encode_relations image);
      (3, encode_tuples image);
      (4, encode_program image);
    ]
    @ (if image.overrides = [] then [] else [ (5, encode_overrides image) ])
  in
  let flags = if image.overrides = [] then 0 else 1 in
  let header_len = 20 + (24 * List.length sections) + 4 in
  let hb = Buffer.create header_len in
  Buffer.add_string hb magic;
  Codec.add_u32 hb format_version;
  Codec.add_u32 hb flags;
  Codec.add_u32 hb (List.length sections);
  let off = ref header_len in
  List.iter
    (fun (id, body) ->
      Codec.add_u32 hb id;
      Codec.add_u64 hb !off;
      Codec.add_u64 hb (String.length body);
      Codec.add_u32 hb (Codec.crc32 body ~pos:0 ~len:(String.length body));
      off := !off + String.length body)
    sections;
  let head = Buffer.contents hb in
  let out = Buffer.create !off in
  Buffer.add_string out head;
  Codec.add_u32 out (Codec.crc32 head ~pos:0 ~len:(String.length head));
  List.iter (fun (_, body) -> Buffer.add_string out body) sections;
  Buffer.contents out

(* --- decode ------------------------------------------------------------- *)

exception Fail of error

let corrupt section reason = raise (Fail (Corrupt { section; reason }))

(* Runs a section parser with [Codec.Short] converted into a located
   [Corrupt] — the only exceptions a parser may raise. *)
let in_section name f =
  try f () with Codec.Short what -> corrupt name ("truncated: " ^ what)

let parse_symbols r =
  in_section "symbols" @@ fun () ->
  let count = Codec.u32 r in
  (* Each symbol needs at least its 4-byte length field, so a forged count
     cannot out-allocate the section. *)
  if count > Codec.remaining r / 4 then
    corrupt "symbols" "symbol count exceeds section size";
  (* Explicit loops throughout the parsers: [Array.init]/[List.init] do not
     specify evaluation order, and these reads advance a cursor. *)
  let names = Array.make count "" in
  for i = 0 to count - 1 do
    names.(i) <- Codec.str r
  done;
  for i = 1 to count - 1 do
    if String.compare names.(i - 1) names.(i) >= 0 then
      corrupt "symbols" "dictionary not strictly name-sorted"
  done;
  if not (Codec.at_end r) then corrupt "symbols" "trailing bytes";
  names

type dir_entry = {
  d_kind : kind;
  d_name : string;
  d_arity : int;
  d_rows : int;
}

let parse_relations r =
  in_section "relations" @@ fun () ->
  let count = Codec.u32 r in
  if count > Codec.remaining r / 21 then
    corrupt "relations" "relation count exceeds section size";
  let words = ref 0 in
  let entries =
    Array.make count { d_kind = Edb; d_name = ""; d_arity = 0; d_rows = 0 }
  in
  for i = 0 to count - 1 do
    let kind =
      match kind_of_code (Codec.u8 r) with
      | Some k -> k
      | None -> corrupt "relations" "unknown relation kind"
    in
    let name = Codec.str r in
    let arity = Codec.u32 r in
    let rows = Codec.u32 r in
    let word_off = Codec.u64 r in
    if word_off <> !words then corrupt "relations" "tuple spans not contiguous";
    if arity > 0 && rows > (max_int - !words) / arity then
      corrupt "relations" "tuple word count overflows";
    words := !words + (arity * rows);
    entries.(i) <- { d_kind = kind; d_name = name; d_arity = arity; d_rows = rows }
  done;
  for i = 1 to count - 1 do
    let a = entries.(i - 1) and b = entries.(i) in
    let c = Int.compare (kind_code a.d_kind) (kind_code b.d_kind) in
    let c = if c <> 0 then c else String.compare a.d_name b.d_name in
    if c >= 0 then corrupt "relations" "directory not sorted by (kind, name)"
  done;
  if not (Codec.at_end r) then corrupt "relations" "trailing bytes";
  (entries, !words)

(* The tuples section decodes to one flat word array — the hot loop of a
   restore, so no per-row allocation; sortedness is validated in place. *)
let parse_tuples r ~entries ~dir_words ~nsyms =
  in_section "tuples" @@ fun () ->
  let words = Codec.u64 r in
  if words <> dir_words then
    corrupt "tuples" "word count disagrees with the relation directory";
  if Codec.remaining r <> 4 * words then
    corrupt "tuples" "section size disagrees with word count";
  let data = Array.make words 0 in
  for i = 0 to words - 1 do
    let w = Codec.u32 r in
    if w >= nsyms then corrupt "tuples" "dictionary id out of range";
    data.(i) <- w
  done;
  let off = ref 0 in
  Array.iter
    (fun e ->
      let base = !off in
      for i = 1 to e.d_rows - 1 do
        let a = base + ((i - 1) * e.d_arity)
        and b = base + (i * e.d_arity) in
        let rec cmp j =
          if j = e.d_arity then 0
          else
            let c = Int.compare data.(a + j) data.(b + j) in
            if c <> 0 then c else cmp (j + 1)
        in
        if cmp 0 >= 0 then corrupt "tuples" "rows not strictly sorted"
      done;
      off := base + (e.d_rows * e.d_arity))
    entries;
  data

let parse_program r =
  in_section "program" @@ fun () ->
  let program_md5 = Codec.take r 16 "program digest" in
  let semantics = Codec.str r in
  let edb_digest = Codec.take r 16 "edb digest" in
  if not (Codec.at_end r) then corrupt "program" "trailing bytes";
  (program_md5, semantics, edb_digest)

let parse_overrides r =
  in_section "overrides" @@ fun () ->
  let count = Codec.u32 r in
  if count = 0 then
    (* Canonical encoding omits the section when there is nothing in it. *)
    corrupt "overrides" "empty overrides section must be omitted";
  if count > Codec.remaining r / 12 then
    corrupt "overrides" "plan count exceeds section size";
  let entries = Array.make count ("", 0, []) in
  for i = 0 to count - 1 do
    let rule = Codec.str r in
    let variant = Codec.u32 r in
    let npairs = Codec.u32 r in
    if npairs > Codec.remaining r / 8 then
      corrupt "overrides" "pair count exceeds section size";
    if npairs = 0 then corrupt "overrides" "plan with no override pairs";
    let pairs = ref [] in
    for _ = 1 to npairs do
      let occ = Codec.u32 r in
      let eff = Codec.u32 r in
      pairs := (occ, eff) :: !pairs
    done;
    let pairs = List.rev !pairs in
    let rec sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a >= b then
          corrupt "overrides" "pairs not strictly occurrence-sorted";
        sorted rest
      | _ -> ()
    in
    sorted pairs;
    entries.(i) <- (rule, variant, pairs)
  done;
  for i = 1 to count - 1 do
    let r1, v1, _ = entries.(i - 1) and r2, v2, _ = entries.(i) in
    let c = String.compare r1 r2 in
    let c = if c <> 0 then c else Int.compare v1 v2 in
    if c >= 0 then corrupt "overrides" "plans not sorted by (rule, variant)"
  done;
  if not (Codec.at_end r) then corrupt "overrides" "trailing bytes";
  Array.to_list entries

let decode buf =
  try
    let dim = Bigarray.Array1.dim buf in
    let r =
      in_section "header" @@ fun () -> Codec.reader buf ~pos:0 ~len:dim
    in
    in_section "header" (fun () ->
        if Codec.take r 8 "magic" <> magic then corrupt "header" "bad magic");
    let version = in_section "header" (fun () -> Codec.u32 r) in
    if version <> format_version then
      raise (Fail (Version_skew { found = version; supported = format_version }));
    let flags, count =
      in_section "header" @@ fun () ->
      let flags = Codec.u32 r in
      if flags land lnot 1 <> 0 then corrupt "header" "unknown flag bits";
      (flags, Codec.u32 r)
    in
    let expected_ids = [ 1; 2; 3; 4 ] @ if flags land 1 = 1 then [ 5 ] else [] in
    if count <> List.length expected_ids then
      corrupt "header" "wrong section count";
    let table =
      in_section "header" @@ fun () ->
      List.rev
        (List.fold_left
           (fun acc expected_id ->
             let id = Codec.u32 r in
             if id <> expected_id then corrupt "header" "unexpected section id";
             let off = Codec.u64 r in
             let len = Codec.u64 r in
             let crc = Codec.u32 r in
             (id, off, len, crc) :: acc)
           [] expected_ids)
    in
    let header_len = 20 + (24 * count) + 4 in
    let stored_hcrc = in_section "header" (fun () -> Codec.u32 r) in
    if Codec.crc32_big buf ~pos:0 ~len:(header_len - 4) <> stored_hcrc then
      corrupt "header" "header checksum mismatch";
    (* Layout: contiguous sections starting right after the header,
       covering the file exactly. *)
    let next = ref header_len in
    List.iter
      (fun (id, off, len, crc) ->
        let name = section_name id in
        if off <> !next then corrupt name "not contiguous with previous section";
        if off + len > dim then corrupt name "truncated";
        if Codec.crc32_big buf ~pos:off ~len <> crc then
          corrupt name "checksum mismatch";
        next := off + len)
      table;
    if !next <> dim then corrupt "trailer" "trailing bytes after last section";
    let reader_of id =
      let _, off, len, _ = List.find (fun (i, _, _, _) -> i = id) table in
      Codec.reader buf ~pos:off ~len
    in
    let symbols = parse_symbols (reader_of 1) in
    let entries, dir_words = parse_relations (reader_of 2) in
    let words =
      parse_tuples (reader_of 3) ~entries ~dir_words
        ~nsyms:(Array.length symbols)
    in
    let relations, _ =
      Array.fold_left
        (fun (acc, off) e ->
          ( {
              kind = e.d_kind;
              name = e.d_name;
              arity = e.d_arity;
              row_count = e.d_rows;
              word_off = off;
            }
            :: acc,
            off + (e.d_arity * e.d_rows) ))
        ([], 0) entries
    in
    let program_md5, semantics, edb_digest = parse_program (reader_of 4) in
    let overrides =
      if flags land 1 = 1 then parse_overrides (reader_of 5) else []
    in
    Ok
      {
        symbols;
        relations = List.rev relations;
        words;
        program_md5;
        semantics;
        edb_digest;
        overrides;
      }
  with Fail e -> Error e

let decode_string s = decode (Codec.of_string s)

(* --- files -------------------------------------------------------------- *)

let write_file path image =
  let data = encode image in
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc data);
    Sys.rename tmp path
  with
  | () -> Ok (String.length data)
  | exception Sys_error m -> Error (Io m)
  | exception Unix.Unix_error (e, _, p) ->
    Error (Io (Printf.sprintf "%s: %s" p (Unix.error_message e)))

let read_file path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let len = (Unix.fstat fd).Unix.st_size in
        try
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |])
        with _ ->
          (* Empty or unmappable (special) file: plain sequential read. *)
          let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout len in
          let chunk = Bytes.create 65536 in
          let pos = ref 0 in
          let rec loop () =
            let n = Unix.read fd chunk 0 (Bytes.length chunk) in
            if n > 0 then begin
              for i = 0 to n - 1 do
                Bigarray.Array1.set b (!pos + i) (Bytes.get chunk i)
              done;
              pos := !pos + n;
              loop ()
            end
          in
          loop ();
          if !pos <> len then raise (Fail (Io (path ^ ": short read")));
          b)
  with
  | buf -> decode buf
  | exception Fail e -> Error e
  | exception Unix.Unix_error (e, _, _) ->
    Error (Io (Printf.sprintf "%s: %s" path (Unix.error_message e)))
  | exception Sys_error m -> Error (Io m)

(* --- restore ------------------------------------------------------------ *)

type restored = {
  r_db : Database.t;
  r_idb : (string * Relation.t) list;
  r_unknown : (string * Relation.t) list;
  r_seeds : (Datalog.Ast.rule * Plan.variant * (int * int) list) list;
}

let restore ?storage image =
  (* Seeds first: override rule text is the only thing that can still be
     rejected, and failing before interning keeps the global tables
     untouched on any [Error]. *)
  let seeds =
    List.fold_left
      (fun acc (rule_text, vcode, pairs) ->
        match acc with
        | Error _ -> acc
        | Ok seeds -> (
          match Parser.parse_rule rule_text with
          | Ok rule -> Ok ((rule, variant_of_code vcode, pairs) :: seeds)
          | Error e ->
            Error
              (Corrupt
                 { section = "overrides"; reason = "unparseable rule: " ^ e })))
      (Ok []) image.overrides
  in
  match seeds with
  | Error e -> Error e
  | Ok seeds ->
    let syms = Array.map Symbol.intern image.symbols in
    let words = image.words in
    let relation_of ri =
      if ri.arity = 0 then
        (* At most one row (the empty tuple, validated by decode). *)
        Relation.of_array ?storage 0
          (Array.make ri.row_count Tuple.empty)
      else begin
        (* Translate the span's dictionary ids to symbols in one flat
           sweep; [of_flat_rows] interns the rows in place from there —
           no per-row boxing anywhere on this path. *)
        let wlen = ri.row_count * ri.arity in
        let flat =
          Array.init wlen (fun i -> syms.(words.(ri.word_off + i)))
        in
        Relation.of_flat_rows ?storage ri.arity flat
      end
    in
    let db, idb, unknown =
      List.fold_left
        (fun (db, idb, unknown) ri ->
          match ri.kind with
          | Edb -> (Database.set_relation ri.name (relation_of ri) db, idb, unknown)
          | Idb -> (db, (ri.name, relation_of ri) :: idb, unknown)
          | Unknown -> (db, idb, (ri.name, relation_of ri) :: unknown))
        (Database.create ~universe:(Array.to_list syms), [], [])
        image.relations
    in
    Ok
      {
        r_db = db;
        r_idb = List.rev idb;
        r_unknown = List.rev unknown;
        r_seeds = List.rev seeds;
      }

let check_program image ~program ~semantics =
  if image.semantics <> semantics then
    Error
      (Semantics_mismatch { snapshot = image.semantics; loaded = semantics })
  else
    let loaded = program_digest program in
    if image.program_md5 <> loaded then
      Error
        (Program_mismatch
           {
             snapshot = digest_hex image.program_md5;
             loaded = digest_hex loaded;
           })
    else Ok ()
