(** Versioned binary snapshots of a materialized model.

    A snapshot persists everything needed to warm-restart evaluation
    without re-saturating: the symbol dictionary, every EDB/IDB relation as
    packed rows of dictionary ids, the program and EDB fingerprints that
    gate restoring into the wrong process, and (optionally) the adaptive
    planner's learned cardinality overrides.

    {2 Layout (format version 1)}

    {v
    offset 0   magic "NEGDLSNP"                      8 bytes
               format version                        u32 le
               flags (bit 0: overrides present)      u32
               section count                         u32
               section table: id, offset, length,    (u32, u64, u64, u32)
                 crc32 per section                     x count
               header crc32 (all bytes above)        u32
    sections, contiguous, in table order:
      1 symbols    u32 count; (u32 len, bytes) x count — the universe,
                   name-sorted strictly ascending
      2 relations  u32 count; per relation: u8 kind (0 edb / 1 idb /
                   2 unknown), name, u32 arity, u32 rows, u64 word
                   offset into section 3 — sorted by (kind, name)
      3 tuples     u64 word count; u32 dictionary ids, each relation's
                   rows sorted lexicographically
      4 program    16-byte MD5 of the program text, semantics string,
                   16-byte EDB digest
      5 overrides  u32 count; per plan: rule text, u32 variant (0 full,
                   1+j delta j), u32 pairs; (u32 occurrence index,
                   u32 effective cardinality) x pairs
    v}

    Tuples are encoded as {e dictionary} ids (positions in the name-sorted
    symbol section), never process-local intern ids, and every variable
    part is sorted — so {!encode} is a pure function of the model:
    snapshotting a restored model reproduces the file byte for byte,
    whatever the intern order or storage backend of the process.

    {2 Fail-closed reading}

    {!decode} (and {!read_file}) validates structure, covers every byte
    with exactly one CRC, and touches no global state: a truncated,
    bit-flipped, version-skewed or otherwise damaged snapshot yields
    [Error] naming the failing section, never an exception, and leaves
    {!Relalg.Store}/{!Relalg.Symbol} exactly as they were.  Symbols are
    interned only by {!restore}, after the caller has also checked
    fingerprints ({!check_program}). *)

type error =
  | Io of string  (** The file could not be read or written. *)
  | Corrupt of { section : string; reason : string }
      (** Structural damage, located to a section ("header", "symbols",
          "relations", "tuples", "program", "overrides", "trailer"). *)
  | Version_skew of { found : int; supported : int }
      (** The snapshot's format version is not the one this build reads. *)
  | Program_mismatch of { snapshot : string; loaded : string }
      (** Program fingerprints (hex) differ — the snapshot holds some other
          program's model. *)
  | Semantics_mismatch of { snapshot : string; loaded : string }
  | Database_mismatch
      (** The snapshot's EDB digest does not match the supplied database. *)

val error_to_string : error -> string
(** One actionable line, e.g.
    ["snapshot: corrupt tuples section (checksum mismatch)"]. *)

val format_version : int

(** {1 The decoded form} *)

type kind =
  | Edb
  | Idb
  | Unknown  (** Three-valued semantics: facts with unknown truth value. *)

type relation_image = {
  kind : kind;
  name : string;
  arity : int;
  row_count : int;
  word_off : int;
      (** The relation's rows are the [row_count * arity] dictionary ids at
          [words.(word_off) ..] of the enclosing image, row-major, rows
          sorted lexicographically. *)
}

type image = {
  symbols : string array;  (** The universe, name-sorted. *)
  relations : relation_image list;  (** Sorted by (kind, name). *)
  words : int array;
      (** The tuples section as one flat word array — all relations'
          rows, concatenated in table order.  Keeping the decoded form
          flat (no per-row boxing) is what makes restore an array sweep. *)
  program_md5 : string;  (** 16 raw bytes. *)
  semantics : string;  (** E.g. ["stratified"], ["wellfounded"]. *)
  edb_digest : string;  (** 16 raw bytes, see {!database_digest}. *)
  overrides : (string * int * (int * int) list) list;
      (** Adaptive-planner seeds: rule text, encoded variant, (occurrence,
          effective cardinality) pairs. *)
}

(** {1 Fingerprints} *)

val program_digest : Datalog.Ast.program -> string
(** 16-byte MD5 of the canonical program text. *)

val database_digest : Relalg.Database.t -> string
(** 16-byte MD5 of the canonical encoding of the universe and EDB
    relations — [capture] stores it and the [--snapshot] fast paths
    compare it against the database on disk to detect a stale snapshot. *)

val digest_hex : string -> string

(** {1 Codec} *)

val encode : image -> string
(** Canonical bytes: equal images encode identically. *)

val decode : Codec.bigstring -> (image, error) result

val decode_string : string -> (image, error) result

val write_file : string -> image -> (int, error) result
(** Writes atomically (temp file + rename); returns the bytes written. *)

val read_file : string -> (image, error) result
(** Maps the file ([Unix.map_file], falling back to a plain read) and
    decodes. *)

(** {1 Model capture and restore} *)

val capture :
  ?unknown:(string * Relalg.Relation.t) list ->
  ?overrides:(Datalog.Ast.rule * Planlib.Plan.variant * (int * int) list) list ->
  program:Datalog.Ast.program ->
  semantics:string ->
  db:Relalg.Database.t ->
  (string * Relalg.Relation.t) list ->
  (image, error) result
(** [capture ~program ~semantics ~db idb] snapshots a materialized model.
    The dictionary is the database universe; a tuple mentioning a constant
    outside it yields [Error] (no such model is produced by evaluation).
    Hashed relations stream straight out of the packed {!Relalg.Store}
    arrays. *)

type restored = {
  r_db : Relalg.Database.t;
  r_idb : (string * Relalg.Relation.t) list;  (** Sorted by name. *)
  r_unknown : (string * Relalg.Relation.t) list;
  r_seeds : (Datalog.Ast.rule * Planlib.Plan.variant * (int * int) list) list;
      (** Feed to {!Planlib.Cache.seed_overrides}. *)
}

val restore :
  ?storage:Relalg.Relation.storage -> image -> (restored, error) result
(** Interns the dictionary and rebuilds relations with bulk constructors.
    The only failure on an image that passed {!decode} is an unparseable
    override rule (reported as [Corrupt] of the overrides section). *)

val check_program :
  image ->
  program:Datalog.Ast.program ->
  semantics:string ->
  (unit, error) result
(** Fails closed when the snapshot was taken for a different program or
    semantics. *)
