(** Little-endian binary primitives for the snapshot format.

    The writer side appends into a [Buffer.t]; the reader side walks a
    [bigstring] (so a snapshot file can be [Unix.map_file]d and decoded
    without copying) through a bounds-checked cursor.  Every read is
    guarded: running off the end of the window raises {!Short}, which the
    snapshot decoder catches at the section boundary and converts into a
    typed [Corrupt] error — no read path can index out of range or spin on
    a malformed length field. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val of_string : string -> bigstring

(** {1 Checksum} *)

val crc32 : string -> pos:int -> len:int -> int
(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) of a substring, as a
    non-negative int below [2{^32}].  Every header and section byte of a
    snapshot is covered by exactly one CRC, so any single corrupted byte is
    detected. *)

val crc32_big : bigstring -> pos:int -> len:int -> int
(** Same checksum over a [bigstring] window. *)

(** {1 Writing} *)

val add_u8 : Buffer.t -> int -> unit

val add_u32 : Buffer.t -> int -> unit
(** @raise Invalid_argument if the value does not fit 32 unsigned bits. *)

val add_u64 : Buffer.t -> int -> unit
(** @raise Invalid_argument on negative values. *)

val add_str : Buffer.t -> string -> unit
(** u32 byte length followed by the bytes. *)

val patch_u32 : Bytes.t -> int -> int -> unit
(** [patch_u32 b pos v] overwrites 4 bytes in place — used to stamp
    checksums into an already-serialised header. *)

(** {1 Reading} *)

exception Short of string
(** Raised by the cursor on any out-of-window read; the payload says what
    was being read.  Never escapes the snapshot decoder. *)

type reader

val reader : bigstring -> pos:int -> len:int -> reader
(** A cursor over the window [pos, pos + len); reads past the window raise
    {!Short}. *)

val u8 : reader -> int

val u32 : reader -> int

val u64 : reader -> int
(** @raise Short also when the stored value exceeds [max_int] (impossible
    in a well-formed snapshot: all u64 fields are file offsets). *)

val str : reader -> string
(** Reads a u32 length then that many bytes. *)

val take : reader -> int -> string -> string
(** [take r n what] reads exactly [n] raw bytes ([what] names them in the
    {!Short} payload) — used for the fixed-width digest fields. *)

val remaining : reader -> int
(** Bytes left in the window — decoders check element counts against this
    before allocating, so a forged count cannot force a huge allocation. *)

val at_end : reader -> bool
