type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let of_string s =
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout
      (String.length s)
  in
  String.iteri (fun i c -> Bigarray.Array1.unsafe_set b i c) s;
  b

(* --- CRC-32 ------------------------------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_run get ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (get i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s ~pos ~len = crc_run (String.unsafe_get s) ~pos ~len

let crc32_big b ~pos ~len = crc_run (Bigarray.Array1.unsafe_get b) ~pos ~len

(* --- writing ------------------------------------------------------------ *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.add_u32";
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let add_u64 b v =
  if v < 0 then invalid_arg "Codec.add_u64";
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let patch_u32 bytes pos v =
  for i = 0 to 3 do
    Bytes.set bytes (pos + i) (Char.chr ((v lsr (8 * i)) land 0xff))
  done

(* --- reading ------------------------------------------------------------ *)

exception Short of string

type reader = {
  buf : bigstring;
  stop : int;  (* exclusive window end *)
  mutable cur : int;
}

let reader buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim buf then
    raise (Short "window outside buffer");
  { buf; stop = pos + len; cur = pos }

let need r n what = if r.stop - r.cur < n then raise (Short what)

let u8 r =
  need r 1 "u8";
  let v = Char.code (Bigarray.Array1.unsafe_get r.buf r.cur) in
  r.cur <- r.cur + 1;
  v

let u32 r =
  need r 4 "u32";
  let byte i = Char.code (Bigarray.Array1.unsafe_get r.buf (r.cur + i)) in
  let v = byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24) in
  r.cur <- r.cur + 4;
  v

let u64 r =
  need r 8 "u64";
  let byte i = Char.code (Bigarray.Array1.unsafe_get r.buf (r.cur + i)) in
  (* An OCaml int holds 63 bits: reject anything with the top two bytes
     beyond bit 62 set — no legitimate field (they are all file offsets or
     counts) can be that large. *)
  if byte 7 lsr 6 <> 0 then raise (Short "u64 out of range");
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor byte i
  done;
  r.cur <- r.cur + 8;
  !v

let take r n what =
  need r n what;
  let s = String.init n (fun i -> Bigarray.Array1.unsafe_get r.buf (r.cur + i)) in
  r.cur <- r.cur + n;
  s

let str r =
  let n = u32 r in
  take r n "string body"

let remaining r = r.stop - r.cur

let at_end r = r.cur = r.stop
