(** Pretty-printing of programs in the concrete syntax.

    Output is re-parseable — [Parser.parse_program_exn
    (Pretty.program_to_string p)] yields a program equal to [p] — provided
    the program follows the lexical conventions (variable names start with
    an uppercase letter, constants and predicates with a lowercase letter or
    digit).  Programs built with [Dsl] or by the reduction generators always
    do. *)

val pp_term : Format.formatter -> Ast.term -> unit

val pp_atom : Format.formatter -> Ast.atom -> unit

val pp_literal : Format.formatter -> Ast.literal -> unit

val pp_rule : Format.formatter -> Ast.rule -> unit

val pp_limit : Format.formatter -> Ast.limit -> unit
(** A limit declaration, e.g. [dist min 1.]. *)

val pp_program : Format.formatter -> Ast.program -> unit

val rule_to_string : Ast.rule -> string

val program_to_string : Ast.program -> string
