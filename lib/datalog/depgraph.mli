(** The predicate dependency graph of a program.

    There is an edge P -> Q whenever Q occurs in the body of a rule whose
    head is P; the edge is {e negative} when some such occurrence is under
    negation.  Stratification (Chandra-Harel, cited in the paper's
    introduction) is a property of this graph: a program is stratifiable
    iff no cycle goes through a negative edge. *)

type t

val build : Ast.program -> t

val predicates : t -> string list
(** All predicates of the program, sorted. *)

val depends_on : t -> string -> string list
(** [depends_on g p]: the predicates occurring in bodies of rules with head
    [p]. *)

val negatively_depends_on : t -> string -> string list

val graph : t -> Graphlib.Digraph.t * string array
(** The underlying digraph and the vertex -> predicate name table. *)

val negative_edges : t -> (string * string) list

val aggregate_edges : t -> (string * string * Ast.rule) list
(** [(h, q, r)] when rule [r] (head [h]) makes a {e malign} — non-monotone —
    use of the bound of limit predicate [q]: an exact-value test, the wrong
    side of a comparison, a join on the bound, a use under negation, or a
    flow into a non-limit or kind-mismatched position.  Stratification
    treats these like negative edges ([h] strictly above [q]); one inside a
    recursive component makes the program not limit-stratifiable (Kaminski
    et al.).  Empty for programs without limit declarations. *)

val recursive_predicates : t -> string list
(** Predicates lying on a directed cycle (including self-loops). *)

val has_recursion_through_negation : t -> bool
(** True iff some cycle contains a negative edge — i.e. the program is not
    stratifiable. *)
