type term =
  | Var of string
  | Const of Relalg.Symbol.t

type atom = {
  pred : string;
  args : term list;
}

type literal =
  | Pos of atom
  | Neg of atom
  | Eq of term * term
  | Neq of term * term
  | Leq of term * term
  | Geq of term * term
  | Plus of term * term * term

type rule = {
  head : atom;
  body : literal list;
}

type limit_kind = Min | Max

type limit = {
  limit_pred : string;
  kind : limit_kind;
  column : int;
}

type program = {
  rules : rule list;
  limits : limit list;
}

let program ?(limits = []) rules = { rules; limits }

let rule head body = { head; body }

let atom pred args = { pred; args }

let var x = Var x

let const name = Const (Relalg.Symbol.intern name)

let limit_kind_to_string = function Min -> "min" | Max -> "max"

let limit_of p name = List.find_opt (fun l -> l.limit_pred = name) p.limits

let is_limit p name = limit_of p name <> None

let atoms_of_literal = function
  | Pos a | Neg a -> [ a ]
  | Eq _ | Neq _ | Leq _ | Geq _ | Plus _ -> []

let idb_predicates p =
  List.map (fun r -> r.head.pred) p.rules |> List.sort_uniq String.compare

let body_atoms rule = List.concat_map atoms_of_literal rule.body

let all_atoms p =
  List.concat_map (fun r -> r.head :: body_atoms r) p.rules

let predicates p =
  List.map (fun a -> a.pred) (all_atoms p) |> List.sort_uniq String.compare

let edb_predicates p =
  let idb = idb_predicates p in
  List.filter (fun q -> not (List.mem q idb)) (predicates p)

let is_idb p name = List.mem name (idb_predicates p)

let inferred_schema p =
  let rec collect schema = function
    | [] -> Ok schema
    | a :: rest -> (
      let arity = List.length a.args in
      match Relalg.Schema.arity a.pred schema with
      | Some k when k <> arity ->
        Error
          (Printf.sprintf "predicate %s used with arities %d and %d" a.pred k
             arity)
      | _ -> collect (Relalg.Schema.add a.pred arity schema) rest)
  in
  collect Relalg.Schema.empty (all_atoms p)

let idb_schema p =
  match inferred_schema p with
  | Error _ as e -> e
  | Ok schema ->
    let idb = idb_predicates p in
    Ok
      (List.fold_left
         (fun acc name ->
           Relalg.Schema.add name (Relalg.Schema.arity_exn name schema) acc)
         Relalg.Schema.empty idb)

let term_variables = function
  | Var x -> [ x ]
  | Const _ -> []

let literal_terms = function
  | Pos a | Neg a -> a.args
  | Eq (t1, t2) | Neq (t1, t2) | Leq (t1, t2) | Geq (t1, t2) -> [ t1; t2 ]
  | Plus (t1, t2, t3) -> [ t1; t2; t3 ]

let dedup_keep_order xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let rule_variables r =
  (r.head.args @ List.concat_map literal_terms r.body)
  |> List.concat_map term_variables
  |> dedup_keep_order

let head_only_variables r =
  let body_vars =
    List.concat_map literal_terms r.body |> List.concat_map term_variables
  in
  List.concat_map term_variables r.head.args
  |> dedup_keep_order
  |> List.filter (fun x -> not (List.mem x body_vars))

let positive_body_variables r =
  List.concat_map
    (function
      | Pos a -> List.concat_map term_variables a.args
      (* The result of an addition is as good as bound: the executor
         computes it from its (bound) operands. *)
      | Plus (_, _, t) -> term_variables t
      | Neg _ | Eq _ | Neq _ | Leq _ | Geq _ -> [])
    r.body
  |> dedup_keep_order

let constants p =
  List.concat_map
    (fun r -> r.head.args @ List.concat_map literal_terms r.body)
    p.rules
  |> List.filter_map (function Const c -> Some c | Var _ -> None)
  |> List.sort_uniq Relalg.Symbol.compare

let is_positive p =
  List.for_all
    (fun r ->
      List.for_all
        (function
          | Pos _ | Eq _ -> true
          | Neg _ | Neq _ | Leq _ | Geq _ | Plus _ -> false)
        r.body)
    p.rules
  && p.limits = []

let is_range_restricted r =
  let bound = positive_body_variables r in
  List.for_all (fun x -> List.mem x bound) (rule_variables r)

let rename_atom ~old_name ~new_name a =
  if String.equal a.pred old_name then { a with pred = new_name } else a

let rename_literal ~old_name ~new_name = function
  | Pos a -> Pos (rename_atom ~old_name ~new_name a)
  | Neg a -> Neg (rename_atom ~old_name ~new_name a)
  | (Eq _ | Neq _ | Leq _ | Geq _ | Plus _) as l -> l

let rename_predicate ~old_name ~new_name p =
  {
    rules =
      List.map
        (fun r ->
          {
            head = rename_atom ~old_name ~new_name r.head;
            body = List.map (rename_literal ~old_name ~new_name) r.body;
          })
        p.rules;
    limits =
      List.map
        (fun l ->
          if String.equal l.limit_pred old_name then
            { l with limit_pred = new_name }
          else l)
        p.limits;
  }

let equal_term t1 t2 =
  match (t1, t2) with
  | Var x, Var y -> String.equal x y
  | Const a, Const b -> Relalg.Symbol.equal a b
  | Var _, Const _ | Const _, Var _ -> false

let compare_rule (r1 : rule) (r2 : rule) = compare r1 r2

let union p1 p2 =
  let all = p1.rules @ p2.rules in
  let seen = Hashtbl.create 16 in
  let limits =
    p1.limits
    @ List.filter
        (fun l ->
          not (List.exists (fun l' -> l'.limit_pred = l.limit_pred) p1.limits))
        p2.limits
  in
  {
    rules =
      List.filter
        (fun r ->
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.add seen r ();
            true
          end)
        all;
    limits;
  }
