type error =
  | Inconsistent_arity of { pred : string; arity1 : int; arity2 : int }
  | Empty_program
  | Limit_column_out_of_range of { pred : string; column : int; arity : int }
  | Duplicate_limit of { pred : string }
  | Limit_on_edb of { pred : string }

type info = {
  idb : string list;
  edb : string list;
  rule_count : int;
  uses_negation : bool;
  uses_inequality : bool;
  positive : bool;
  range_restricted : bool;
  unrestricted_rules : Ast.rule list;
  limit_count : int;
}

let error_to_string = function
  | Inconsistent_arity { pred; arity1; arity2 } ->
    Printf.sprintf "predicate %s used with arities %d and %d" pred arity1
      arity2
  | Empty_program -> "program has no rules"
  | Limit_column_out_of_range { pred; column; arity } ->
    Printf.sprintf
      "limit declaration for %s names column %d, but %s has arity %d \
       (columns are 1-based)"
      pred column pred arity
  | Duplicate_limit { pred } ->
    Printf.sprintf "predicate %s has more than one limit declaration" pred
  | Limit_on_edb { pred } ->
    Printf.sprintf
      "limit declaration for %s, which no rule defines: limit predicates \
       must be IDB"
      pred

let arity_errors (p : Ast.program) =
  let table : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let errors = ref [] in
  let see (a : Ast.atom) =
    let arity = List.length a.args in
    match Hashtbl.find_opt table a.pred with
    | None -> Hashtbl.add table a.pred arity
    | Some k when k <> arity ->
      let clash = Inconsistent_arity { pred = a.pred; arity1 = k; arity2 = arity } in
      if not (List.mem clash !errors) then errors := clash :: !errors
    | Some _ -> ()
  in
  List.iter
    (fun (r : Ast.rule) ->
      see r.head;
      List.iter
        (fun l -> List.iter see (Ast.atoms_of_literal l))
        r.body)
    p.rules;
  List.rev !errors

(* Limit declarations must name an IDB predicate and a column inside its
   arity; two declarations for one predicate would leave the tightening
   order ambiguous. *)
let limit_errors (p : Ast.program) =
  let idb = Ast.idb_predicates p in
  let arity_of name =
    List.find_map
      (fun (r : Ast.rule) ->
        let of_atom (a : Ast.atom) =
          if a.pred = name then Some (List.length a.args) else None
        in
        match of_atom r.head with
        | Some k -> Some k
        | None ->
          List.find_map
            (fun l -> List.find_map of_atom (Ast.atoms_of_literal l))
            r.body)
      p.rules
  in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  List.concat_map
    (fun (l : Ast.limit) ->
      let dup =
        if Hashtbl.mem seen l.limit_pred then
          [ Duplicate_limit { pred = l.limit_pred } ]
        else begin
          Hashtbl.add seen l.limit_pred ();
          []
        end
      in
      let placement =
        if not (List.mem l.limit_pred idb) then
          [ Limit_on_edb { pred = l.limit_pred } ]
        else
          match arity_of l.limit_pred with
          | Some arity when l.column < 0 || l.column >= arity ->
            [ Limit_column_out_of_range
                { pred = l.limit_pred; column = l.column + 1; arity };
            ]
          | _ -> []
      in
      dup @ placement)
    p.limits

let uses_negation (p : Ast.program) =
  List.exists
    (fun (r : Ast.rule) ->
      List.exists (function Ast.Neg _ -> true | _ -> false) r.body)
    p.rules

let uses_inequality (p : Ast.program) =
  List.exists
    (fun (r : Ast.rule) ->
      List.exists (function Ast.Neq _ -> true | _ -> false) r.body)
    p.rules

let validate p =
  let errors = arity_errors p @ limit_errors p in
  let errors = if p.Ast.rules = [] then Empty_program :: errors else errors in
  match errors with
  | _ :: _ -> Error errors
  | [] ->
    let unrestricted =
      List.filter (fun r -> not (Ast.is_range_restricted r)) p.Ast.rules
    in
    Ok
      {
        idb = Ast.idb_predicates p;
        edb = Ast.edb_predicates p;
        rule_count = List.length p.Ast.rules;
        uses_negation = uses_negation p;
        uses_inequality = uses_inequality p;
        positive = Ast.is_positive p;
        range_restricted = unrestricted = [];
        unrestricted_rules = unrestricted;
        limit_count = List.length p.Ast.limits;
      }

let validate_exn p =
  match validate p with
  | Ok info -> info
  | Error errors ->
    invalid_arg
      ("Check.validate: "
      ^ String.concat "; " (List.map error_to_string errors))

let describe p =
  match validate p with
  | Error errors ->
    "invalid program: "
    ^ String.concat "; " (List.map error_to_string errors)
  | Ok info ->
    Printf.sprintf
      "%d rule(s); IDB: %s; EDB: %s; %s%s%s"
      info.rule_count
      (String.concat ", " info.idb)
      (match info.edb with [] -> "(none)" | l -> String.concat ", " l)
      (if info.positive then "positive DATALOG" else "DATALOG with negation")
      (if info.uses_inequality then ", uses inequality" else "")
      ((if info.limit_count > 0 then
          Printf.sprintf ", %d limit predicate(s)" info.limit_count
        else "")
      ^
      if info.range_restricted then ""
      else ", has universe-ranging variables")
