(** Abstract syntax of DATALOG-not programs (Section 2 of the paper).

    A program is a finite set of rules [h <- t1, ..., tn] where the head [h]
    is an atom over a relational symbol and the body literals are atoms,
    negated atoms, equalities, inequalities, order comparisons or additions
    between terms.  Relational symbols that never occur in a head are the
    {e database} (EDB) relations; the others are the {e nondatabase} (IDB)
    relations defined by the program.

    A program may additionally declare {e limit predicates} ([p min k] /
    [p max k], after Kaminski et al., "Stratified Negation in Limit Datalog
    Programs"): relation [p] then keeps, per valuation of its non-[k]
    columns, only the tuple whose [k]-th column is minimal (resp. maximal)
    under {!Relalg.Symbol.compare_value}. *)

type term =
  | Var of string
  | Const of Relalg.Symbol.t

type atom = {
  pred : string;
  args : term list;
}

type literal =
  | Pos of atom  (** [q(t, ...)] *)
  | Neg of atom  (** [not q(t, ...)] *)
  | Eq of term * term  (** [t1 = t2] *)
  | Neq of term * term  (** [t1 != t2] *)
  | Leq of term * term  (** [t1 <= t2], the value order of {!Relalg.Symbol.compare_value} *)
  | Geq of term * term  (** [t1 >= t2] *)
  | Plus of term * term * term  (** [t3 = t1 + t2], integer addition *)

type rule = {
  head : atom;
  body : literal list;
}

type limit_kind = Min | Max

type limit = {
  limit_pred : string;
  kind : limit_kind;
  column : int;  (** 0-based limit column. *)
}

type program = {
  rules : rule list;
  limits : limit list;
}

val program : ?limits:limit list -> rule list -> program

val rule : atom -> literal list -> rule

val atom : string -> term list -> atom

val var : string -> term

val const : string -> term
(** Interns the constant name. *)

val limit_kind_to_string : limit_kind -> string

val limit_of : program -> string -> limit option
(** The limit declaration for a predicate, if any. *)

val is_limit : program -> string -> bool

(** {1 Structure queries} *)

val atoms_of_literal : literal -> atom list
(** The atom under a [Pos] or [Neg]; empty for comparisons and additions. *)

val literal_terms : literal -> term list
(** Every term of the literal, in syntactic order. *)

val idb_predicates : program -> string list
(** Head predicates, sorted, without duplicates. *)

val edb_predicates : program -> string list
(** Predicates occurring only in bodies. *)

val predicates : program -> string list

val is_idb : program -> string -> bool

val inferred_schema : program -> (Relalg.Schema.t, string) result
(** Predicate arities inferred from all occurrences; [Error msg] when some
    predicate is used with two different arities. *)

val idb_schema : program -> (Relalg.Schema.t, string) result
(** Schema restricted to IDB predicates. *)

val rule_variables : rule -> string list
(** All variables of the rule, without duplicates, in first-occurrence order
    (head first, then body left to right). *)

val head_only_variables : rule -> string list
(** Variables occurring in the head but in no body literal at all. *)

val positive_body_variables : rule -> string list
(** Variables bound by some positive body atom or computed by an addition
    ([Plus] results). *)

val constants : program -> Relalg.Symbol.t list
(** All constants appearing in the program, sorted, without duplicates. *)

val is_positive : program -> bool
(** No negated atoms, no inequalities, no order comparisons or additions, and
    no limit declarations — a DATALOG program in the paper's sense. *)

val is_range_restricted : rule -> bool
(** Every variable of the rule occurs in some positive body atom (or is an
    addition result).  The paper's semantics does {e not} require this
    (unrestricted variables range over the universe); the predicate is
    informational. *)

val rename_predicate : old_name:string -> new_name:string -> program -> program
(** Renames every occurrence of a predicate, including its limit
    declaration. *)

val equal_term : term -> term -> bool

val compare_rule : rule -> rule -> int

val union : program -> program -> program
(** Concatenates rule lists, dropping exact duplicate rules; limit
    declarations of the left program win on clashes. *)
