(** Lexical analysis for the concrete DATALOG-not syntax.

    Conventions (standard Datalog, isomorphic to the paper's notation):
    identifiers starting with an uppercase letter are variables; identifiers
    starting with a lowercase letter and integer literals are predicate
    names and constants; [%] starts a comment running to end of line. *)

type token =
  | IDENT of string  (** predicate name or constant *)
  | VARIABLE of string
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE  (** [:-] *)
  | BANG  (** [!], negation *)
  | NOT_KW  (** the keyword [not], also negation *)
  | EQUAL  (** [=] *)
  | NOT_EQUAL  (** [!=] or [<>] *)
  | LE  (** [<=] *)
  | GE  (** [>=] *)
  | PLUS  (** [+] *)
  | EOF

type position = { line : int; column : int }

val token_to_string : token -> string

val tokenize : string -> ((token * position) list, string) result
(** [Error msg] carries a line/column description of the offending
    character. *)
