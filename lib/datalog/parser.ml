type stream = {
  mutable tokens : (Lexer.token * Lexer.position) list;
}

exception Syntax_error of string

let fail_at pos msg =
  raise
    (Syntax_error
       (Printf.sprintf "line %d, column %d: %s" pos.Lexer.line pos.Lexer.column
          msg))

let peek s =
  match s.tokens with
  | [] -> (Lexer.EOF, { Lexer.line = 0; column = 0 })
  | t :: _ -> t

let advance s =
  match s.tokens with
  | [] -> ()
  | _ :: rest -> s.tokens <- rest

let expect s tok =
  let actual, pos = peek s in
  if actual = tok then advance s
  else
    fail_at pos
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string actual))

let parse_term s =
  match peek s with
  | Lexer.VARIABLE x, _ ->
    advance s;
    Ast.Var x
  | Lexer.IDENT c, _ ->
    advance s;
    Ast.const c
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a term but found %s" (Lexer.token_to_string tok))

let parse_term_list s =
  let rec more acc =
    match peek s with
    | Lexer.COMMA, _ ->
      advance s;
      more (parse_term s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_term s ]

let parse_atom_named s name =
  match peek s with
  | Lexer.LPAREN, _ ->
    advance s;
    let args = parse_term_list s in
    expect s Lexer.RPAREN;
    Ast.atom name args
  | _ -> Ast.atom name []

let parse_atom s =
  match peek s with
  | Lexer.IDENT name, _ ->
    advance s;
    parse_atom_named s name
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a predicate but found %s"
         (Lexer.token_to_string tok))

(* The right-hand side of an equality: either a plain term ([X = t]) or an
   addition ([Z = X + Y], which binds the left-hand side to the sum). *)
let parse_eq_rhs s lhs =
  let t2 = parse_term s in
  match peek s with
  | Lexer.PLUS, _ ->
    advance s;
    let t3 = parse_term s in
    Ast.Plus (t2, t3, lhs)
  | _ -> Ast.Eq (lhs, t2)

let parse_comparison s t1 =
  match peek s with
  | Lexer.EQUAL, _ ->
    advance s;
    Some (parse_eq_rhs s t1)
  | Lexer.NOT_EQUAL, _ ->
    advance s;
    Some (Ast.Neq (t1, parse_term s))
  | Lexer.LE, _ ->
    advance s;
    Some (Ast.Leq (t1, parse_term s))
  | Lexer.GE, _ ->
    advance s;
    Some (Ast.Geq (t1, parse_term s))
  | _ -> None

let parse_literal s =
  match peek s with
  | (Lexer.BANG | Lexer.NOT_KW), _ ->
    advance s;
    Ast.Neg (parse_atom s)
  | Lexer.VARIABLE _, _ -> (
    let t1 = parse_term s in
    match parse_comparison s t1 with
    | Some l -> l
    | None ->
      let tok, pos = peek s in
      fail_at pos
        (Printf.sprintf
           "expected '=', '!=', '<=' or '>=' after a variable, found %s"
           (Lexer.token_to_string tok)))
  | Lexer.IDENT name, _ -> (
    advance s;
    (* Could be an atom, or a constant on the left of a comparison. *)
    match parse_comparison s (Ast.const name) with
    | Some l -> l
    | None -> Ast.Pos (parse_atom_named s name))
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected a body literal but found %s"
         (Lexer.token_to_string tok))

let parse_body s =
  let rec more acc =
    match peek s with
    | Lexer.COMMA, _ ->
      advance s;
      more (parse_literal s :: acc)
    | _ -> List.rev acc
  in
  more [ parse_literal s ]

type item =
  | Rule_item of Ast.rule
  | Limit_item of Ast.limit

let is_all_digits w =
  w <> "" && String.for_all (fun c -> c >= '0' && c <= '9') w

(* A limit declaration is [p min k.] / [p max k.] — three identifiers and a
   period.  It is only recognised when the head was a bare identifier (no
   argument list), so no previously-valid program changes meaning. *)
let parse_limit_decl s pred kind =
  advance s;
  let column =
    match peek s with
    | Lexer.IDENT w, _ when is_all_digits w ->
      (* The surface syntax is 1-based ("dist min 2." bounds the second
         column); the AST stores the 0-based index. *)
      let n = int_of_string w in
      if n = 0 then
        (let _, pos = peek s in
         fail_at pos
           (Printf.sprintf
              "column numbers in '%s %s' declarations start at 1" pred
              (Ast.limit_kind_to_string kind)))
      else begin
        advance s;
        n - 1
      end
    | tok, pos ->
      fail_at pos
        (Printf.sprintf
           "expected a column number after '%s %s', found %s" pred
           (Ast.limit_kind_to_string kind)
           (Lexer.token_to_string tok))
  in
  expect s Lexer.PERIOD;
  Limit_item { Ast.limit_pred = pred; kind; column }

let parse_one_item s =
  let head = parse_atom s in
  match peek s with
  | Lexer.PERIOD, _ ->
    advance s;
    Rule_item (Ast.rule head [])
  | Lexer.IDENT "min", _ when head.Ast.args = [] ->
    parse_limit_decl s head.Ast.pred Ast.Min
  | Lexer.IDENT "max", _ when head.Ast.args = [] ->
    parse_limit_decl s head.Ast.pred Ast.Max
  | Lexer.TURNSTILE, _ ->
    advance s;
    (* An empty body before the period is allowed: "p(X) :- ." *)
    let body =
      match peek s with
      | Lexer.PERIOD, _ -> []
      | _ -> parse_body s
    in
    expect s Lexer.PERIOD;
    Rule_item (Ast.rule head body)
  | tok, pos ->
    fail_at pos
      (Printf.sprintf "expected ':-' or '.' after the head, found %s"
         (Lexer.token_to_string tok))

let parse_items text =
  match Lexer.tokenize text with
  | Error msg -> Error msg
  | Ok tokens -> (
    let s = { tokens } in
    try
      let rec items acc =
        match peek s with
        | Lexer.EOF, _ -> List.rev acc
        | _ -> items (parse_one_item s :: acc)
      in
      Ok (items [])
    with Syntax_error msg -> Error msg)

let split_items items =
  let rules =
    List.filter_map (function Rule_item r -> Some r | Limit_item _ -> None)
      items
  in
  let limits =
    List.filter_map (function Limit_item l -> Some l | Rule_item _ -> None)
      items
  in
  (rules, limits)

let parse_all text =
  match parse_items text with
  | Error _ as e -> e
  | Ok items -> Ok (fst (split_items items))

let parse_program text =
  match parse_items text with
  | Error _ as e -> e
  | Ok items ->
    let rules, limits = split_items items in
    Ok (Ast.program ~limits rules)

let parse_program_exn text =
  match parse_program text with
  | Ok p -> p
  | Error msg -> failwith ("Parser.parse_program: " ^ msg)

let parse_rule text =
  match parse_all text with
  | Error _ as e -> e
  | Ok [ r ] -> Ok r
  | Ok rules ->
    Error (Printf.sprintf "expected exactly one rule, found %d" (List.length rules))

let parse_rule_exn text =
  match parse_rule text with
  | Ok r -> r
  | Error msg -> failwith ("Parser.parse_rule: " ^ msg)
