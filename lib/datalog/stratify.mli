(** Stratification of DATALOG-not programs.

    A stratified program splits its IDB predicates into layers so that a
    predicate may depend positively on its own or lower layers but
    negatively only on strictly lower layers (Chandra-Harel / Apt-Blair-
    Walker, discussed in the paper's introduction and Section 4).  Not all
    programs are stratifiable — the toggle rule T(z) <- not Q(u), not T(w)
    is the paper's central counterexample — which is precisely the gap
    Inflationary DATALOG fills. *)

type stratification = {
  strata : string list list;
      (** IDB predicates, layer by layer, lowest first.  EDB predicates are
          not listed (they live below stratum 0). *)
  stratum_of : string -> int option;
      (** Stratum index of an IDB predicate; [None] for EDB / unknown. *)
}

type result =
  | Stratified of stratification
  | Not_stratifiable of { offending : string * string }
      (** A negative dependency inside a strongly connected component:
          [fst] negatively uses [snd] which (transitively) uses [fst]. *)
  | Not_limit_stratifiable of { pred : string; rule : Ast.rule }
      (** The limit-stratification side condition (Kaminski et al.) fails:
          [rule] makes a non-monotone use of the bound of limit predicate
          [pred] inside the recursive component that computes it — see
          {!Depgraph.aggregate_edges}. *)

val stratify : Ast.program -> result

val limit_error_to_string : pred:string -> rule:Ast.rule -> string
(** The canonical rendering of a {!Not_limit_stratifiable} failure, naming
    the offending rule. *)

val is_stratified : Ast.program -> bool

val rules_of_stratum : Ast.program -> stratification -> int -> Ast.rule list
(** The rules whose head lies in the given stratum. *)
