type stratification = {
  strata : string list list;
  stratum_of : string -> int option;
}

type result =
  | Stratified of stratification
  | Not_stratifiable of { offending : string * string }
  | Not_limit_stratifiable of { pred : string; rule : Ast.rule }

let stratify (p : Ast.program) =
  let dep = Depgraph.build p in
  let digraph, names = Depgraph.graph dep in
  let { Graphlib.Scc.count; component } = Graphlib.Scc.compute digraph in
  let index_of name =
    let found = ref (-1) in
    Array.iteri (fun i n -> if String.equal n name then found := i) names;
    !found
  in
  (* A negative edge inside a strongly connected component defeats
     stratification. *)
  let bad =
    List.find_opt
      (fun (u, v) -> component.(index_of u) = component.(index_of v))
      (Depgraph.negative_edges dep)
  in
  (* The limit-stratification side condition: a malign (non-monotone) use
     of a limit predicate's bound inside the component computing that bound
     defeats stratification just like negation would — the offending rule
     is reported by name. *)
  let bad_agg =
    List.find_opt
      (fun (u, v, _r) -> component.(index_of u) = component.(index_of v))
      (Depgraph.aggregate_edges dep)
  in
  match (bad, bad_agg) with
  | Some offending, _ -> Not_stratifiable { offending }
  | None, Some (_, pred, rule) -> Not_limit_stratifiable { pred; rule }
  | None, None ->
    let idb = Ast.idb_predicates p in
    let is_idb name = List.mem name idb in
    (* Component-level edges with polarity; stratum of a component is the
       max over its out-edges of the target stratum (+1 when negative or
       aggregate-negative).  EDB-only components sit at stratum 0 and IDB
       components start at 0 as well. *)
    let strict_pairs =
      List.map
        (fun (u, v) -> (component.(index_of u), component.(index_of v)))
        (Depgraph.negative_edges dep)
      @ List.map
          (fun (u, v, _) -> (component.(index_of u), component.(index_of v)))
          (Depgraph.aggregate_edges dep)
    in
    let comp_edges =
      List.filter_map
        (fun (u, v) ->
          let cu = component.(u) and cv = component.(v) in
          if cu = cv then None
          else Some (cu, cv, List.mem (cu, cv) strict_pairs))
        (Graphlib.Digraph.edges digraph)
    in
    let stratum = Array.make count 0 in
    (* Tarjan's component numbering is reverse topological: component 0 has
       no out-edges to later components... more precisely, for an edge
       cu -> cv between distinct components, cv < cu.  Processing components
       in increasing order therefore sees dependencies first. *)
    for c = 0 to count - 1 do
      let s =
        List.fold_left
          (fun acc (cu, cv, strict) ->
            if cu = c then max acc (stratum.(cv) + if strict then 1 else 0)
            else acc)
          0 comp_edges
      in
      stratum.(c) <- s
    done;
    let stratum_of name =
      if is_idb name then
        let i = index_of name in
        if i >= 0 then Some stratum.(component.(i)) else None
      else None
    in
    let max_stratum =
      List.fold_left
        (fun acc name ->
          match stratum_of name with
          | Some s -> max acc s
          | None -> acc)
        0 idb
    in
    let strata =
      List.init (max_stratum + 1) (fun s ->
          List.filter (fun name -> stratum_of name = Some s) idb)
    in
    Stratified { strata; stratum_of }

let limit_error_to_string ~pred ~(rule : Ast.rule) =
  Printf.sprintf
    "not limit-stratifiable: rule \"%s\" uses the bound of limit predicate \
     %s non-monotonically inside the recursive component that computes it"
    (Pretty.rule_to_string rule) pred

let is_stratified p =
  match stratify p with
  | Stratified _ -> true
  | Not_stratifiable _ | Not_limit_stratifiable _ -> false

let rules_of_stratum (p : Ast.program) strat s =
  List.filter
    (fun (r : Ast.rule) -> strat.stratum_of r.head.pred = Some s)
    p.Ast.rules
