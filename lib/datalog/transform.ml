module SSet = Set.Make (String)

let dedup_literals (r : Ast.rule) =
  let body =
    List.fold_left
      (fun acc l -> if List.mem l acc then acc else l :: acc)
      [] r.Ast.body
  in
  { r with Ast.body = List.rev body }

let simplify_comparisons (r : Ast.rule) =
  let rec walk acc = function
    | [] -> Some (List.rev acc)
    | l :: rest -> (
      match l with
      | Ast.Eq (t1, t2) when Ast.equal_term t1 t2 -> walk acc rest
      | Ast.Neq (t1, t2) when Ast.equal_term t1 t2 -> None
      | Ast.Eq (Ast.Const c1, Ast.Const c2) ->
        if Relalg.Symbol.equal c1 c2 then walk acc rest else None
      | Ast.Neq (Ast.Const c1, Ast.Const c2) ->
        if Relalg.Symbol.equal c1 c2 then None else walk acc rest
      | _ -> walk (l :: acc) rest)
  in
  match walk [] r.Ast.body with
  | None -> None
  | Some body -> Some { r with Ast.body }

let dedup_rules (p : Ast.program) =
  let rules =
    List.fold_left
      (fun acc r -> if List.mem r acc then acc else r :: acc)
      [] p.Ast.rules
  in
  Ast.program ~limits:p.Ast.limits (List.rev rules)

let drop_underivable (p : Ast.program) =
  let idb0 = SSet.of_list (Ast.idb_predicates p) in
  (* Least set of derivable IDB predicates: p is derivable when some rule
     with head p has all its positive IDB subgoals derivable. *)
  let rec grow derivable =
    let bigger =
      List.fold_left
        (fun acc (r : Ast.rule) ->
          let ok =
            List.for_all
              (fun l ->
                match l with
                | Ast.Pos a ->
                  (not (SSet.mem a.Ast.pred idb0))
                  || SSet.mem a.Ast.pred derivable
                | Ast.Neg _ | Ast.Eq _ | Ast.Neq _ | Ast.Leq _ | Ast.Geq _
                | Ast.Plus _ ->
                  true)
              r.Ast.body
          in
          if ok then SSet.add r.Ast.head.Ast.pred acc else acc)
        derivable p.Ast.rules
    in
    if SSet.equal bigger derivable then derivable else grow bigger
  in
  let derivable = grow SSet.empty in
  let underivable pred = SSet.mem pred idb0 && not (SSet.mem pred derivable) in
  let rules =
    List.filter_map
      (fun (r : Ast.rule) ->
        if underivable r.Ast.head.Ast.pred then None
        else if
          List.exists
            (function Ast.Pos a -> underivable a.Ast.pred | _ -> false)
            r.Ast.body
        then None
        else
          (* A negated underivable atom is vacuously true in every
             semantics (the predicate stays empty everywhere). *)
          Some
            {
              r with
              Ast.body =
                List.filter
                  (function
                    | Ast.Neg a -> not (underivable a.Ast.pred)
                    | Ast.Pos _ | Ast.Eq _ | Ast.Neq _ | Ast.Leq _
                    | Ast.Geq _ | Ast.Plus _ ->
                      true)
                  r.Ast.body;
            })
      p.Ast.rules
  in
  Ast.program ~limits:p.Ast.limits rules

let one_pass ~aggressive p =
  let rules =
    List.filter_map
      (fun r -> Option.map dedup_literals (simplify_comparisons r))
      p.Ast.rules
  in
  let p' = dedup_rules (Ast.program ~limits:p.Ast.limits rules) in
  if aggressive then drop_underivable p' else p'

let simplify ?(aggressive = false) p =
  let rec fix p =
    let p' = one_pass ~aggressive p in
    if p' = p then p else fix p'
  in
  fix p

(* Connected components of the body's variable-sharing graph.  Two
   literals are connected when they share a variable; a component is
   "detached" when none of its variables occurs in the head. *)
let literal_vars l =
  List.concat_map
    (function Ast.Var x -> [ x ] | Ast.Const _ -> [])
    (Ast.literal_terms l)

let body_components (r : Ast.rule) =
  let lits = Array.of_list r.Ast.body in
  let n = Array.length lits in
  let vars = Array.map (fun l -> SSet.of_list (literal_vars l)) lits in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (SSet.is_empty (SSet.inter vars.(i) vars.(j))) then union i j
    done
  done;
  let components = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let root = find i in
    Hashtbl.replace components root
      (i :: Option.value ~default:[] (Hashtbl.find_opt components root))
  done;
  Hashtbl.fold
    (fun _ indices acc -> List.rev indices :: acc)
    components []
  |> List.sort compare
  |> List.map (fun indices -> List.map (fun i -> lits.(i)) indices)

let split_independent ?(prefix = "guard") (p : Ast.program) =
  let used = ref (Ast.predicates p) in
  let fresh () =
    let rec next i =
      let candidate = Printf.sprintf "%s%d" prefix i in
      if List.mem candidate !used then next (i + 1)
      else begin
        used := candidate :: !used;
        candidate
      end
    in
    next 1
  in
  let guards = ref [] in
  let head_vars (r : Ast.rule) =
    SSet.of_list
      (List.concat_map
         (function Ast.Var x -> [ x ] | Ast.Const _ -> [])
         r.Ast.head.Ast.args)
  in
  let rewrite (r : Ast.rule) =
    let hv = head_vars r in
    let components = body_components r in
    if List.length components <= 1 then r
    else begin
      let body =
        List.concat_map
          (fun component ->
            let cv =
              List.fold_left
                (fun acc l -> SSet.union acc (SSet.of_list (literal_vars l)))
                SSet.empty component
            in
            let detached =
              SSet.is_empty (SSet.inter cv hv) && not (SSet.is_empty cv)
            in
            if detached then begin
              let name = fresh () in
              guards := Ast.rule (Ast.atom name []) component :: !guards;
              [ Ast.Pos (Ast.atom name []) ]
            end
            else component)
          components
      in
      { r with Ast.body }
    end
  in
  let rules = List.map rewrite p.Ast.rules in
  Ast.program ~limits:p.Ast.limits (rules @ List.rev !guards)

let count_literals (p : Ast.program) =
  List.fold_left (fun n (r : Ast.rule) -> n + List.length r.Ast.body) 0 p.Ast.rules

let statistics before after =
  Printf.sprintf "rules %d -> %d, body literals %d -> %d"
    (List.length before.Ast.rules)
    (List.length after.Ast.rules)
    (count_literals before) (count_literals after)
