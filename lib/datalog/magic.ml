module SSet = Set.Make (String)

type rewritten = {
  program : Ast.program;
  answer_pred : string;
  seed_pred : string;
  adornment : string;
}

let bound_constants (a : Ast.atom) =
  List.filter_map
    (function Ast.Const c -> Some c | Ast.Var _ -> None)
    a.Ast.args

(* Adornment of an atom given the currently bound variables: constants and
   bound variables are 'b', the rest 'f'. *)
let adorn bound (a : Ast.atom) =
  String.init (List.length a.Ast.args) (fun i ->
      match List.nth a.Ast.args i with
      | Ast.Const _ -> 'b'
      | Ast.Var x -> if SSet.mem x bound then 'b' else 'f')

let adornment ~bound (a : Ast.atom) = adorn (SSet.of_list bound) a

let bound_args adornment args =
  List.filteri (fun i _ -> adornment.[i] = 'b') args

let term_vars = function
  | Ast.Var x -> [ x ]
  | Ast.Const _ -> []

let atom_vars (a : Ast.atom) = List.concat_map term_vars a.Ast.args

let rewrite (p : Ast.program) ~(query : Ast.atom) =
  let idb = Ast.idb_predicates p in
  if not (Ast.is_positive p) then
    Error "magic sets: the program must be positive (no negation, no !=)"
  else if not (List.mem query.Ast.pred idb) then
    Error
      (Printf.sprintf "magic sets: %s is not an IDB predicate" query.Ast.pred)
  else
    match Ast.inferred_schema p with
    | Error msg -> Error ("magic sets: " ^ msg)
    | Ok schema
      when Relalg.Schema.arity_exn query.Ast.pred schema
           <> List.length query.Ast.args ->
      Error
        (Printf.sprintf "magic sets: %s expects %d arguments, query has %d"
           query.Ast.pred
           (Relalg.Schema.arity_exn query.Ast.pred schema)
           (List.length query.Ast.args))
    | Ok _ ->
      (* Name mangling, kept collision-free against existing predicates. *)
      let all_preds = Ast.predicates p in
      let mangle base =
        let rec free candidate =
          if List.mem candidate all_preds then free (candidate ^ "_m")
          else candidate
        in
        free base
      in
      let adorned_name pred sigma = mangle (pred ^ "_" ^ sigma) in
      let magic_name pred sigma = mangle ("magic_" ^ pred ^ "_" ^ sigma) in
      let rewritten_rules = ref [] in
      let emitted = Hashtbl.create 8 in
      (* Worklist of (idb predicate, adornment) pairs to process. *)
      let pending = Queue.create () in
      let require pred sigma =
        if not (Hashtbl.mem emitted (pred, sigma)) then begin
          Hashtbl.add emitted (pred, sigma) ();
          Queue.add (pred, sigma) pending
        end
      in
      let query_sigma = adorn SSet.empty query in
      require query.Ast.pred query_sigma;
      while not (Queue.is_empty pending) do
        let pred, sigma = Queue.pop pending in
        let rules =
          List.filter (fun (r : Ast.rule) -> r.Ast.head.Ast.pred = pred) p.Ast.rules
        in
        List.iter
          (fun (r : Ast.rule) ->
            (* Bound head variables seed the sideways information passing. *)
            let head_bound =
              List.mapi (fun i t -> (i, t)) r.Ast.head.Ast.args
              |> List.concat_map (fun (i, t) ->
                     if sigma.[i] = 'b' then term_vars t else [])
            in
            let magic_guard =
              Ast.Pos
                (Ast.atom (magic_name pred sigma)
                   (bound_args sigma r.Ast.head.Ast.args))
            in
            (* Walk the body left to right, adorning IDB atoms, emitting
               magic rules, and accumulating bound variables. *)
            let bound = ref (SSet.of_list head_bound) in
            let prefix = ref [ magic_guard ] in
            let new_body =
              List.map
                (fun lit ->
                  match lit with
                  | Ast.Pos a when List.mem a.Ast.pred idb ->
                    let tau = adorn !bound a in
                    require a.Ast.pred tau;
                    (* Magic rule: the bindings flowing into this subgoal. *)
                    let magic_head =
                      Ast.atom (magic_name a.Ast.pred tau)
                        (bound_args tau a.Ast.args)
                    in
                    rewritten_rules :=
                      Ast.rule magic_head (List.rev !prefix)
                      :: !rewritten_rules;
                    let adorned =
                      Ast.Pos (Ast.atom (adorned_name a.Ast.pred tau) a.Ast.args)
                    in
                    bound := SSet.union !bound (SSet.of_list (atom_vars a));
                    prefix := adorned :: !prefix;
                    adorned
                  | Ast.Pos a ->
                    bound := SSet.union !bound (SSet.of_list (atom_vars a));
                    prefix := lit :: !prefix;
                    lit
                  | Ast.Eq (t1, t2) ->
                    (* An equality binds the other side once one side is
                       bound. *)
                    let vs1 = term_vars t1 and vs2 = term_vars t2 in
                    let side_bound ts =
                      ts = [] || List.for_all (fun v -> SSet.mem v !bound) ts
                    in
                    if side_bound vs1 || side_bound vs2 then
                      bound := SSet.union !bound (SSet.of_list (vs1 @ vs2));
                    prefix := lit :: !prefix;
                    lit
                  | Ast.Neg _ | Ast.Neq _ | Ast.Leq _ | Ast.Geq _
                  | Ast.Plus _ ->
                    (* Unreachable: positivity was checked (and positive
                       programs have no order comparisons or additions). *)
                    assert false)
                r.Ast.body
            in
            let head' = Ast.atom (adorned_name pred sigma) r.Ast.head.Ast.args in
            rewritten_rules :=
              Ast.rule head' (magic_guard :: new_body) :: !rewritten_rules)
          rules
      done;
      (* Seed: the query's own bindings. *)
      let seed_pred = magic_name query.Ast.pred query_sigma in
      let seed =
        Ast.rule
          (Ast.atom seed_pred
             (List.map
                (fun c -> Ast.Const c)
                (bound_constants query)))
          []
      in
      Ok
        {
          program = Ast.program (seed :: List.rev !rewritten_rules);
          answer_pred = adorned_name query.Ast.pred query_sigma;
          seed_pred;
          adornment = query_sigma;
        }

let rewrite_exn p ~query =
  match rewrite p ~query with
  | Ok r -> r
  | Error msg -> invalid_arg ("Magic.rewrite: " ^ msg)
