type token =
  | IDENT of string
  | VARIABLE of string
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | TURNSTILE
  | BANG
  | NOT_KW
  | EQUAL
  | NOT_EQUAL
  | LE
  | GE
  | PLUS
  | EOF

type position = { line : int; column : int }

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | VARIABLE s -> Printf.sprintf "variable %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | PERIOD -> "'.'"
  | TURNSTILE -> "':-'"
  | BANG -> "'!'"
  | NOT_KW -> "'not'"
  | EQUAL -> "'='"
  | NOT_EQUAL -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | EOF -> "end of input"

let is_lower c = c >= 'a' && c <= 'z'

let is_upper c = c >= 'A' && c <= 'Z'

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let column = ref 1 in
  let i = ref 0 in
  let error = ref None in
  let emit tok = tokens := (tok, { line = !line; column = !column }) :: !tokens in
  let advance () =
    if !i < n && text.[!i] = '\n' then begin
      incr line;
      column := 0
    end;
    incr i;
    incr column
  in
  while !error = None && !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' then
      while !i < n && text.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then begin
      emit LPAREN;
      advance ()
    end
    else if c = ')' then begin
      emit RPAREN;
      advance ()
    end
    else if c = ',' then begin
      emit COMMA;
      advance ()
    end
    else if c = '.' then begin
      emit PERIOD;
      advance ()
    end
    else if c = '=' then begin
      emit EQUAL;
      advance ()
    end
    else if c = '!' then begin
      if !i + 1 < n && text.[!i + 1] = '=' then begin
        emit NOT_EQUAL;
        advance ();
        advance ()
      end
      else begin
        emit BANG;
        advance ()
      end
    end
    else if c = '<' then begin
      if !i + 1 < n && text.[!i + 1] = '>' then begin
        emit NOT_EQUAL;
        advance ();
        advance ()
      end
      else if !i + 1 < n && text.[!i + 1] = '=' then begin
        emit LE;
        advance ();
        advance ()
      end
      else
        error :=
          Some (Printf.sprintf "line %d, column %d: lone '<'" !line !column)
    end
    else if c = '>' then begin
      if !i + 1 < n && text.[!i + 1] = '=' then begin
        emit GE;
        advance ();
        advance ()
      end
      else
        error :=
          Some (Printf.sprintf "line %d, column %d: lone '>'" !line !column)
    end
    else if c = '+' then begin
      emit PLUS;
      advance ()
    end
    else if c = ':' then begin
      if !i + 1 < n && text.[!i + 1] = '-' then begin
        emit TURNSTILE;
        advance ();
        advance ()
      end
      else
        error :=
          Some (Printf.sprintf "line %d, column %d: lone ':'" !line !column)
    end
    else if c = '\\' then begin
      (* Prolog-style \+ negation, accepted as a courtesy. *)
      if !i + 1 < n && text.[!i + 1] = '+' then begin
        emit BANG;
        advance ();
        advance ()
      end
      else
        error :=
          Some (Printf.sprintf "line %d, column %d: lone '\\'" !line !column)
    end
    else if is_lower c || is_digit c || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        advance ()
      done;
      let word = String.sub text start (!i - start) in
      if word = "not" then emit NOT_KW else emit (IDENT word)
    end
    else if is_upper c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        advance ()
      done;
      emit (VARIABLE (String.sub text start (!i - start)))
    end
    else
      error :=
        Some
          (Printf.sprintf "line %d, column %d: unexpected character %C" !line
             !column c)
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    emit EOF;
    Ok (List.rev !tokens)
