module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  names : string array;
  index : int SMap.t;
  digraph : Graphlib.Digraph.t;
  neg_edges : (int * int) list;
  agg_edges : (int * int * Ast.rule) list;
}

(* --- monotone-use analysis for limit predicates -------------------------

   A variable standing at the limit column of a positive body atom over a
   limit predicate is {e tainted}: its value is a current bound, which later
   tightening may replace.  A use of a tainted variable is {e benign} when
   the rule's output can only be refined, never retracted, as the bound
   tightens — then the rule may share a stratum (and a fixpoint) with the
   limit predicate.  Benign uses: the single generating occurrence itself,
   operands and results of additions (taint propagates through [Plus]), the
   lower side of [<=] for min-taint (dually [>=] for max), and flowing into
   a head limit column of the same kind.  Every other use — equality or
   disequality tests, the wrong side of a comparison, a join on the exact
   bound value, occurrences under negation, or flowing into a non-limit
   position — is {e malign}: the rule then reads something that tightening
   can falsify, so it must sit strictly above the limit predicate (the
   stratification side condition of Kaminski et al., "Stratified Negation
   in Limit Datalog Programs").  A malign use of limit predicate [q] in a
   rule with head [h] becomes an {e aggregate edge} [h -> q] that
   stratification treats like a negative edge. *)

type taint = {
  t_kind : Ast.limit_kind;
  sources : SSet.t;  (* the limit predicates the value flows from *)
}

let rule_malign_sources (p : Ast.program) (r : Ast.rule) =
  let limit_of name = Ast.limit_of p name in
  let malign = ref SSet.empty in
  let condemn sources = malign := SSet.union sources !malign in
  (* Taints, to a fixpoint through Plus chains. *)
  let taints : (string, taint) Hashtbl.t = Hashtbl.create 8 in
  let taint_of = function
    | Ast.Var x -> Hashtbl.find_opt taints x
    | Ast.Const _ -> None
  in
  let add_taint x (t : taint) =
    match Hashtbl.find_opt taints x with
    | None ->
      Hashtbl.replace taints x t;
      true
    | Some old ->
      if old.t_kind <> t.t_kind then condemn (SSet.union old.sources t.sources);
      let sources = SSet.union old.sources t.sources in
      if SSet.equal sources old.sources then false
      else begin
        Hashtbl.replace taints x { old with sources };
        true
      end
  in
  List.iter
    (function
      | Ast.Pos a -> (
        match limit_of a.Ast.pred with
        | Some l -> (
          match List.nth_opt a.Ast.args l.Ast.column with
          | Some (Ast.Var x) ->
            ignore
              (add_taint x
                 { t_kind = l.Ast.kind; sources = SSet.singleton a.Ast.pred })
          | Some (Ast.Const _) ->
            (* An exact-value test on the bound: falsified as soon as the
               bound moves. *)
            condemn (SSet.singleton a.Ast.pred)
          | None -> ())
        | None -> ())
      | _ -> ())
    r.Ast.body;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | Ast.Plus (t1, t2, t3) -> (
          let operand_taints = List.filter_map taint_of [ t1; t2 ] in
          match operand_taints with
          | [] -> ()
          | t :: rest ->
            List.iter
              (fun t' ->
                if t'.t_kind <> t.t_kind then
                  condemn (SSet.union t.sources t'.sources))
              rest;
            let sources =
              List.fold_left
                (fun acc t' -> SSet.union acc t'.sources)
                SSet.empty operand_taints
            in
            (match t3 with
            | Ast.Var x ->
              if add_taint x { t_kind = t.t_kind; sources } then
                changed := true
            | Ast.Const _ -> ()))
        | _ -> ())
      r.Ast.body
  done;
  (* Occurrence check.  Generating occurrences (limit column of a positive
     body atom, same kind) are benign only once: a second one joins two
     bounds on their exact value. *)
  let generating = Hashtbl.create 8 in
  let check_atom ~negated (a : Ast.atom) =
    List.iteri
      (fun i t ->
        match taint_of t with
        | None -> ()
        | Some taint -> (
          let ok_limit_col =
            match limit_of a.Ast.pred with
            | Some l -> l.Ast.column = i && l.Ast.kind = taint.t_kind
            | None -> false
          in
          match t with
          | Ast.Var x when ok_limit_col && not negated ->
            let seen =
              Option.value ~default:0 (Hashtbl.find_opt generating x)
            in
            Hashtbl.replace generating x (seen + 1);
            if seen > 0 then condemn taint.sources
          | _ -> condemn taint.sources))
      a.Ast.args
  in
  List.iter
    (function
      | Ast.Pos a -> check_atom ~negated:false a
      | Ast.Neg a -> check_atom ~negated:true a
      | Ast.Eq (t1, t2) | Ast.Neq (t1, t2) ->
        List.iter
          (fun t ->
            match taint_of t with
            | Some taint -> condemn taint.sources
            | None -> ())
          [ t1; t2 ]
      | Ast.Leq (lo, hi) | Ast.Geq (hi, lo) ->
        (* In [lo <= hi], min-taint on [lo] and max-taint on [hi] are
           monotone (the test only becomes truer as bounds tighten); the
           converse directions can flip it back to false. *)
        (match taint_of lo with
        | Some { t_kind = Ast.Max; sources } -> condemn sources
        | _ -> ());
        (match taint_of hi with
        | Some { t_kind = Ast.Min; sources } -> condemn sources
        | _ -> ())
      | Ast.Plus _ -> ())
    r.Ast.body;
  (* The head: a tainted value may only flow into a limit column of the
     same kind. *)
  List.iteri
    (fun i t ->
      match taint_of t with
      | None -> ()
      | Some taint ->
        let ok =
          match limit_of r.Ast.head.Ast.pred with
          | Some l -> l.Ast.column = i && l.Ast.kind = taint.t_kind
          | None -> false
        in
        if not ok then condemn taint.sources)
    r.Ast.head.Ast.args;
  !malign

let build (p : Ast.program) =
  let names = Array.of_list (Ast.predicates p) in
  let index =
    Array.to_list names
    |> List.mapi (fun i n -> (n, i))
    |> List.to_seq |> SMap.of_seq
  in
  let edges = ref [] in
  let neg_edges = ref [] in
  let agg_edges = ref [] in
  List.iter
    (fun (r : Ast.rule) ->
      let hd = SMap.find r.head.pred index in
      List.iter
        (fun l ->
          match l with
          | Ast.Pos a ->
            edges := (hd, SMap.find a.pred index) :: !edges
          | Ast.Neg a ->
            let e = (hd, SMap.find a.pred index) in
            edges := e :: !edges;
            neg_edges := e :: !neg_edges
          | Ast.Eq _ | Ast.Neq _ | Ast.Leq _ | Ast.Geq _ | Ast.Plus _ -> ())
        r.body;
      if p.limits <> [] then
        SSet.iter
          (fun q ->
            match SMap.find_opt q index with
            | Some qi -> agg_edges := (hd, qi, r) :: !agg_edges
            | None -> ())
          (rule_malign_sources p r))
    p.rules;
  let digraph = Graphlib.Digraph.make (Array.length names) !edges in
  let neg_edges = List.sort_uniq compare !neg_edges in
  { names; index; digraph; neg_edges; agg_edges = List.rev !agg_edges }

let predicates g = Array.to_list g.names

let depends_on g p =
  match SMap.find_opt p g.index with
  | None -> []
  | Some i -> List.map (fun j -> g.names.(j)) (Graphlib.Digraph.succ g.digraph i)

let negatively_depends_on g p =
  match SMap.find_opt p g.index with
  | None -> []
  | Some i ->
    List.filter_map
      (fun (u, v) -> if u = i then Some g.names.(v) else None)
      g.neg_edges
    |> List.sort_uniq String.compare

let graph g = (g.digraph, Array.copy g.names)

let negative_edges g =
  List.map (fun (u, v) -> (g.names.(u), g.names.(v))) g.neg_edges

let aggregate_edges g =
  List.map (fun (u, v, r) -> (g.names.(u), g.names.(v), r)) g.agg_edges

let recursive_predicates g =
  let { Graphlib.Scc.component; _ } = Graphlib.Scc.compute g.digraph in
  let size = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace size c (1 + Option.value ~default:0 (Hashtbl.find_opt size c)))
    component;
  Array.to_list g.names
  |> List.filteri (fun i _ ->
         Hashtbl.find size component.(i) > 1
         || Graphlib.Digraph.has_edge g.digraph i i)

let has_recursion_through_negation g =
  let { Graphlib.Scc.component; _ } = Graphlib.Scc.compute g.digraph in
  List.exists (fun (u, v) -> component.(u) = component.(v)) g.neg_edges
