(** The magic-sets transformation (goal-directed evaluation for positive
    programs).

    Bottom-up evaluation computes whole relations; a query such as
    "tc(a, Y)?" needs only the part reachable from [a].  Magic sets rewrite
    the program so that bottom-up evaluation of the rewritten program
    explores exactly the query-relevant facts: predicates are {e adorned}
    with binding patterns ([b]ound / [f]ree per argument), every adorned
    rule is guarded by a {e magic} predicate holding the bindings the query
    actually asks for, and auxiliary magic rules push bindings sideways
    through rule bodies (left-to-right sideways information passing).

    Restricted to positive programs — the interaction of magic sets with
    negation is a research area of its own and out of scope for this
    reproduction. *)

type rewritten = {
  program : Ast.program;
      (** The rewritten program, including the magic seed fact. *)
  answer_pred : string;
      (** The adorned predicate holding the query's answers. *)
  seed_pred : string;  (** The magic predicate seeded by the query. *)
  adornment : string;  (** The query's binding pattern, e.g. ["bf"]. *)
}

val rewrite : Ast.program -> query:Ast.atom -> (rewritten, string) result
(** [rewrite p ~query] adorns and guards [p] for the given query atom
    (constants = bound, variables = free).  Fails when [p] uses negation or
    inequality, when the query predicate is not an IDB predicate of [p], or
    on arity mismatch. *)

val rewrite_exn : Ast.program -> query:Ast.atom -> rewritten

val bound_constants : Ast.atom -> Relalg.Symbol.t list
(** The query's constants, in positional order. *)

val adornment : bound:string list -> Ast.atom -> string
(** The atom's binding pattern given the variables currently bound:
    constants and bound variables are ['b'], the rest ['f'] — the same
    analysis the rewrite uses for sideways information passing, exported
    so the adaptive planner can order probes by how much of an atom the
    bindings flowing into it already pin down. *)
