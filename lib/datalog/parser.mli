(** Recursive-descent parser for DATALOG-not programs.

    Grammar:
    {v
    program  ::= (rule | limit)*
    rule     ::= atom ( ":-" literal ("," literal)* )? "."
    limit    ::= ident ("min" | "max") number "."
    literal  ::= ("!" | "not") atom
               | atom
               | term ("=" | "!=" | "<=" | ">=") term
               | term "=" term "+" term
    atom     ::= ident ( "(" term ("," term)* ")" )?
    term     ::= VARIABLE | ident
    v}

    Example — the paper's program pi_1, [T(x) <- E(y,x), not T(y)]:
    {v t(X) :- e(Y, X), !t(Y). v}

    A limit declaration [dist min 1.] makes [dist] a min-limit predicate on
    its (0-based) column 1.  Syntax errors are reported with the line,
    column and offending token. *)

val parse_program : string -> (Ast.program, string) result

val parse_program_exn : string -> Ast.program
(** @raise Failure with the parse error message. *)

val parse_rule : string -> (Ast.rule, string) result
(** Parses exactly one rule. *)

val parse_rule_exn : string -> Ast.rule
