(** Static well-formedness checks and program statistics.

    Hard errors are conditions under which evaluation is meaningless
    (inconsistent arities).  Everything else the paper's semantics tolerates
    — in particular rules that are not range-restricted, whose free
    variables range over the whole universe — and is reported as
    informational {!info} rather than an error. *)

type error =
  | Inconsistent_arity of { pred : string; arity1 : int; arity2 : int }
  | Empty_program
  | Limit_column_out_of_range of { pred : string; column : int; arity : int }
      (** A limit declaration names a column outside the predicate's
          arity.  [column] is 1-based, as written in the source. *)
  | Duplicate_limit of { pred : string }
  | Limit_on_edb of { pred : string }
      (** Limit declarations only make sense for derived (IDB)
          predicates: EDB facts are given, not tightened. *)

type info = {
  idb : string list;
  edb : string list;
  rule_count : int;
  uses_negation : bool;
  uses_inequality : bool;
  positive : bool;  (** A DATALOG program in the paper's sense. *)
  range_restricted : bool;  (** Every rule is range-restricted. *)
  unrestricted_rules : Ast.rule list;
      (** Rules with variables not bound by a positive body atom. *)
  limit_count : int;  (** Number of limit declarations. *)
}

val error_to_string : error -> string

val validate : Ast.program -> (info, error list) result

val validate_exn : Ast.program -> info
(** @raise Invalid_argument listing the errors. *)

val describe : Ast.program -> string
(** A short human-readable summary (used by the CLI). *)
