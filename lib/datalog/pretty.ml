let pp_term ppf = function
  | Ast.Var x -> Format.pp_print_string ppf x
  | Ast.Const c -> Format.pp_print_string ppf (Relalg.Symbol.name c)

let pp_args ppf args =
  match args with
  | [] -> ()
  | _ ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_term)
      args

let pp_atom ppf (a : Ast.atom) =
  Format.fprintf ppf "%s%a" a.pred pp_args a.args

let pp_literal ppf = function
  | Ast.Pos a -> pp_atom ppf a
  | Ast.Neg a -> Format.fprintf ppf "!%a" pp_atom a
  | Ast.Eq (t1, t2) -> Format.fprintf ppf "%a = %a" pp_term t1 pp_term t2
  | Ast.Neq (t1, t2) -> Format.fprintf ppf "%a != %a" pp_term t1 pp_term t2
  | Ast.Leq (t1, t2) -> Format.fprintf ppf "%a <= %a" pp_term t1 pp_term t2
  | Ast.Geq (t1, t2) -> Format.fprintf ppf "%a >= %a" pp_term t1 pp_term t2
  | Ast.Plus (t1, t2, t3) ->
    Format.fprintf ppf "%a = %a + %a" pp_term t3 pp_term t1 pp_term t2

let pp_rule ppf (r : Ast.rule) =
  match r.body with
  | [] -> Format.fprintf ppf "%a." pp_atom r.head
  | body ->
    Format.fprintf ppf "%a :- %a." pp_atom r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_literal)
      body

let pp_limit ppf (l : Ast.limit) =
  (* The AST column is 0-based; the concrete syntax is 1-based. *)
  Format.fprintf ppf "%s %s %d." l.limit_pred
    (Ast.limit_kind_to_string l.kind)
    (l.column + 1)

let pp_program ppf (p : Ast.program) =
  match p.limits with
  | [] ->
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
      p.rules
  | limits ->
    Format.fprintf ppf "@[<v>%a@,%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_limit)
      limits
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
      p.rules

let rule_to_string r = Format.asprintf "%a" pp_rule r

let program_to_string p = Format.asprintf "%a" pp_program p
