(** Well-founded semantics via the alternating fixpoint (Van Gelder).

    An extension beyond the paper's proposals, included for comparison: the
    well-founded model is the third major deterministic semantics for
    negation discussed in the literature the paper engages (negation as
    failure, stratification, fixpoints).  It is three-valued: each IDB fact
    is true, false or unknown.  On stratifiable programs it is total and
    agrees with the stratified semantics; on the toggle rule it leaves
    everything unknown, while inflationary semantics makes everything true —
    a contrast the experiment harness surfaces.

    The alternating fixpoint computes A(S) = the least fixpoint of the
    program with all negated IDB literals frozen to the valuation S, then
    iterates U := A(O), O := A(U) from U = empty; U climbs, O descends, and
    the limits are the true and the possible facts respectively. *)

type model = {
  true_facts : Idb.t;   (** Facts true in the well-founded model. *)
  possible : Idb.t;     (** Facts true or unknown (the final overestimate). *)
}

val unknown : model -> Idb.t
(** [possible] minus [true_facts]. *)

val is_total : model -> bool
(** No unknown facts. *)

val eval :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  model

val reduct_fixpoint :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t ->
  Idb.t
(** One application of the operator A: the least fixpoint with negated IDB
    atoms read from the given fixed valuation.  Exposed for tests (A is
    anti-monotone, so A o A is monotone — properties the suite checks). *)
