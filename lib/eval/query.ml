module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

let matches_query (query : Datalog.Ast.atom) tuple =
  List.for_all2
    (fun term value ->
      match term with
      | Datalog.Ast.Const c -> Relalg.Symbol.equal c value
      | Datalog.Ast.Var _ -> true)
    query.Datalog.Ast.args (Tuple.to_list tuple)

let answer ?engine ?indexing ?stats p db ~query =
  match Datalog.Magic.rewrite p ~query with
  | Error _ as e -> e
  | Ok rewritten ->
    let result =
      Naive.least_fixpoint ?engine ?indexing ?stats
        rewritten.Datalog.Magic.program db
    in
    let full =
      if Idb.mem result rewritten.Datalog.Magic.answer_pred then
        Idb.get result rewritten.Datalog.Magic.answer_pred
      else Relation.empty (List.length query.Datalog.Ast.args)
    in
    (* The adorned predicate may also hold answers for other bindings that
       arose recursively; keep only the query's own. *)
    Ok (Relation.filter (matches_query query) full)

let answer_exn ?engine ?indexing ?stats p db ~query =
  match answer ?engine ?indexing ?stats p db ~query with
  | Ok r -> r
  | Error msg -> invalid_arg ("Query.answer: " ^ msg)

let holds p db ~query =
  if List.exists
       (function Datalog.Ast.Var _ -> true | Datalog.Ast.Const _ -> false)
       query.Datalog.Ast.args
  then Error "Query.holds: the query atom must be ground"
  else
    match answer p db ~query with
    | Error _ as e -> e
    | Ok r -> Ok (not (Relation.is_empty r))
