module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

(* Does [tuple] match the query atom?  Constants must coincide and a
   repeated variable must bind consistently — the query s(X, X) selects the
   diagonal, not the whole relation.  Arity-guarded: a length disagreement
   is [false], never a bare [Invalid_argument] out of [List.for_all2]
   (callers reject mismatched arities up front with a proper [Error]). *)
let matches_query (query : Datalog.Ast.atom) tuple =
  Tuple.arity tuple = List.length query.Datalog.Ast.args
  &&
  let rec go env i = function
    | [] -> true
    | Datalog.Ast.Const c :: rest ->
      Relalg.Symbol.equal c (Tuple.get tuple i) && go env (i + 1) rest
    | Datalog.Ast.Var v :: rest -> (
      let value = Tuple.get tuple i in
      match List.assoc_opt v env with
      | Some bound -> Relalg.Symbol.equal bound value && go env (i + 1) rest
      | None -> go ((v, value) :: env) (i + 1) rest)
  in
  go [] 0 query.Datalog.Ast.args

let select rel ~query =
  let want = List.length query.Datalog.Ast.args in
  let got = Relation.arity rel in
  if want <> got then
    Error
      (Printf.sprintf
         "query atom %s/%d does not match the stored relation %s/%d"
         query.Datalog.Ast.pred want query.Datalog.Ast.pred got)
  else Ok (Relation.filter (matches_query query) rel)

let answer ?engine ?indexing ?stats p db ~query =
  match Datalog.Magic.rewrite p ~query with
  | Error _ as e -> e
  | Ok rewritten ->
    let result =
      Naive.least_fixpoint ?engine ?indexing ?stats
        rewritten.Datalog.Magic.program db
    in
    let full =
      if Idb.mem result rewritten.Datalog.Magic.answer_pred then
        Idb.get result rewritten.Datalog.Magic.answer_pred
      else Relation.empty (List.length query.Datalog.Ast.args)
    in
    (* The adorned predicate may also hold answers for other bindings that
       arose recursively; keep only the query's own.  [select] re-checks
       the arity against the materialised answer relation, so a malformed
       query surfaces as [Error] instead of a [List.for_all2] crash. *)
    select full ~query

let answer_exn ?engine ?indexing ?stats p db ~query =
  match answer ?engine ?indexing ?stats p db ~query with
  | Ok r -> r
  | Error msg -> invalid_arg ("Query.answer: " ^ msg)

let holds p db ~query =
  if List.exists
       (function Datalog.Ast.Var _ -> true | Datalog.Ast.Const _ -> false)
       query.Datalog.Ast.args
  then Error "Query.holds: the query atom must be ground"
  else
    match answer p db ~query with
    | Error _ as e -> e
    | Ok r -> Ok (not (Relation.is_empty r))
