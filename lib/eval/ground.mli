(** Grounding: instantiating a program over a database's universe.

    A ground instance of a rule fixes all its variables to universe
    constants; EDB literals and (in)equalities are then decided immediately
    and only the IDB atoms remain.  The result is a propositional program:
    exactly the object the NEXP-hardness argument of Theorem 4 manipulates
    (data complexity vs expression complexity), and the input to the
    SAT-based fixpoint searcher of [Fixpointlib].

    Only atoms that occur as the head of some ground instance can be true
    in a fixpoint (Theta must re-derive every tuple of S); body atoms
    outside that set are simplified away — a positive occurrence kills its
    instance, a negative occurrence is vacuously true. *)

type gatom = {
  pred : string;
  tuple : Relalg.Tuple.t;
}

val compare_gatom : gatom -> gatom -> int

val gatom_to_string : gatom -> string

type grule = {
  head : gatom;
  pos : gatom list;  (** Positive IDB subgoals (deduplicated). *)
  neg : gatom list;  (** Negated IDB subgoals (deduplicated). *)
}

type t

val ground :
  ?keep:string list ->
  ?planner:Planlib.Plan.planner ->
  ?cache:Planlib.Cache.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  t
(** @raise Invalid_argument on inconsistent arities.

    Instantiation runs on the shared plan layer: each rule's decidable
    (non-IDB) literals form one conjunctive pseudo-rule projecting all rule
    variables, compiled by {!Planlib.Plan.compile} under [planner] and
    executed over the database; there is no separate grounding compiler.
    [cache], when given, retains the instantiation plans (keyed on the
    pseudo-rules) — the CLI's [--explain] on [fixpoints] reads them back.

    [keep] lists EDB predicates whose (positive) occurrences should stay
    {e symbolic} in the instances instead of being evaluated away: an
    instance whose kept atom is absent from the database is still dropped,
    but present ones are recorded in the instance's positive subgoals.
    This is what incremental maintenance ([Dred]) uses to know which
    derivations depended on which base facts.  With a non-empty [keep],
    {!apply} expects the valuation to also assign the kept predicates. *)

val atoms : t -> gatom list
(** The derivable atoms (possible heads), sorted. *)

val rules : t -> grule list

val instances_for : t -> gatom -> grule list
(** The ground instances whose head is the given atom. *)

val atom_count : t -> int

val rule_count : t -> int

val apply : t -> Idb.t -> Idb.t
(** The immediate consequence operator computed on the ground program: an
    instance fires when all its positive subgoals are in the valuation and
    none of its negated ones are.  Agrees with [Theta.apply] on every
    valuation contained in {!atoms} — which covers all fixpoints and all
    inflationary stages — a property the test suite checks. *)

val to_idb : t -> gatom list -> Idb.t
(** Builds a valuation from a set of ground atoms (schema taken from the
    grounding). *)

val pp : Format.formatter -> t -> unit
