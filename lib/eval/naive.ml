let check_positive p =
  if not (Datalog.Ast.is_positive p) then
    invalid_arg
      "Naive.least_fixpoint: the program uses negation or inequality; use \
       the inflationary, stratified or well-founded semantics instead"

let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Naive: " ^ msg)

let least_fixpoint_trace ?engine ?planner ?cache ?indexing ?storage ?stats
    ?pool ?grain p db =
  check_positive p;
  let schema = idb_schema_exn p in
  Saturate.run ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
    ?grain ~label:"least-fixpoint" ~rules:p.Datalog.Ast.rules ~schema
    ~universe:(Relalg.Database.universe db)
    ~base:(Engine.database_source db) ~neg:`Current ~init:(Idb.empty schema)
    ()

let least_fixpoint ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
    ?grain p db =
  (least_fixpoint_trace ?engine ?planner ?cache ?indexing ?storage ?stats
     ?pool ?grain p db)
    .result
