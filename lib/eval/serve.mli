(** A long-lived incremental materialization server.

    [create] materialises the stratified model of a program once with the
    compiled-plan layer; afterwards the state accepts update batches —
    applied with delta-driven DRed ({!Dred.apply}), never by
    re-saturation — and answers queries against the current snapshot.

    {b Reader/writer protocol.}  The database, the materialised model and
    the packed tuple store all publish immutable snapshots: an update
    installs new [db]/[idb] values and bumps the version, it never mutates
    what a concurrent reader holds.  Queries therefore run lock-free on
    whatever snapshot they pinned — {!query_all} fans one batch's cache
    misses across the domain pool while the (single) writer prepares the
    next batch.

    {b Query cache.}  Results are cached per canonical query atom, tagged
    with the version they were computed at; any applied update bumps the
    version, so stale entries miss and are lazily overwritten.

    The line protocol ({!handle_line}) is what [negdl serve] speaks over
    stdin or a Unix socket: [insert <facts>], [delete <facts>],
    [query <atom>[; <atom>]...], [stats], [snapshot <file>],
    [restore <file>], [quit] ([shutdown] additionally stops a socket
    server).  Errors are replies, not crashes — the server keeps serving
    after a failed command. *)

type t

type update_report = {
  inserted : int;  (** EDB facts added (absent before the batch). *)
  deleted : int;  (** EDB facts removed and not re-added. *)
  overdeleted : int;  (** {!Dred.delta.overdeleted} for the batch. *)
  rederived : int;  (** {!Dred.delta.rederived} for the batch. *)
}

type counters = {
  batches : int;
  inserted : int;
  deleted : int;
  overdeleted : int;
  rederived : int;
  queries : int;
  cache_hits : int;
  cache_misses : int;
}
(** Cumulative since {!create}. *)

val create :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?stats:Stats.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  (t, string) result
(** Materialises once (stratum by stratum) and returns the serving state;
    [Error] if the program is not stratifiable.  One plan cache is created
    here and shared by the initial materialisation and every later batch,
    so each (rule, variant) pair compiles once for the server's lifetime. *)

val create_restored :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?stats:Stats.t ->
  Datalog.Ast.program ->
  Snapshotlib.Snapshot.image ->
  (t, string) result
(** Warm restart: the serving state rebuilt from a decoded snapshot
    instead of saturating — milliseconds instead of a full fixpoint.
    Fails closed when the snapshot was taken for a different program or
    semantics, holds a three-valued model, or the program is not
    stratifiable.  Adaptive-planner overrides persisted in the snapshot
    seed the fresh plan cache. *)

val database : t -> Relalg.Database.t
(** The current EDB snapshot (immutable). *)

val snapshot : t -> Idb.t
(** The current materialised model (immutable) — pin it before reading
    concurrently with updates. *)

val version : t -> int

val counters : t -> counters

val stats : t -> Stats.t
(** The evaluation counters accumulated across the initial
    materialisation and all batches (the ["dred ..."] extra counters are
    the delta-scoped work proof). *)

val update :
  t ->
  additions:(string * Relalg.Tuple.t) list ->
  removals:(string * Relalg.Tuple.t) list ->
  (update_report, string) result
(** Applies one batch incrementally and installs the new snapshot.
    Validation failures (IDB predicate, arity mismatch, absent removal,
    unknown constant) return [Error] and leave the state unchanged. *)

val insert :
  t -> (string * Relalg.Tuple.t) list -> (update_report, string) result

val delete :
  t -> (string * Relalg.Tuple.t) list -> (update_report, string) result

val query : t -> Datalog.Ast.atom -> (Relalg.Relation.t, string) result
(** Answers against the current snapshot ({!Query.select} on the
    materialised relation — IDB predicates from the model, EDB from the
    database), through the version-tagged result cache. *)

val query_all :
  t -> Datalog.Ast.atom list -> (Relalg.Relation.t, string) result list
(** One batch: cache hits are served directly, the distinct misses are
    evaluated concurrently on the domain pool against one pinned snapshot,
    then cached.  Results are in argument order. *)

val snapshot_to : t -> string -> (int, string) result
(** [snapshot_to t file] checkpoints the current model (and the plan
    cache's learned overrides) to [file], atomically; returns the bytes
    written.  The writer works against the pinned immutable snapshot, so
    checkpointing never blocks the update loop. *)

val restore_from : t -> string -> (unit, string) result
(** [restore_from t file] replaces the database and materialised model
    with the snapshot's, resets the version to 0 and clears the query
    cache.  Fails closed — corrupt file, wrong program, wrong semantics or
    a three-valued model leave the state unchanged. *)

type response = Reply of string list | Quit | Shutdown

val handle_line : t -> string -> response
(** One protocol line.  Empty lines and [%] comments yield
    [Reply []]; unknown commands and failed updates yield
    [Reply ["error: ..."]] (the session continues). *)

val handle_batch : t -> string list -> response list
(** A block of protocol lines, with write coalescing: a maximal run of
    consecutive [insert] (resp. [delete]) lines whose facts all parse is
    applied as {e one} DRed update — one overdeletion/rederivation pass
    for the whole run.  The run's first line answers with the combined
    report in {!handle_line}'s format, the later lines answer
    ["ok coalesced"] (["error: coalesced"] when the merged update fails);
    every other line behaves exactly as under {!handle_line}, and a run
    of one is byte-identical to it.  Processing stops at the first [quit]
    or [shutdown], whose response is the last element. *)

val stats_lines : t -> string list
(** The [stats] command's report: fact counts, cumulative update/query
    counters, plan-cache behaviour and the delta-scoped work counters. *)
