module Ast = Datalog.Ast
module Schema = Relalg.Schema
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Database = Relalg.Database
module Plan = Planlib.Plan
module SSet = Set.Make (String)
module SMap = Map.Make (String)

module FactSet = Set.Make (struct
  type t = string * Tuple.t

  let compare (p1, t1) (p2, t2) =
    match String.compare p1 p2 with 0 -> Tuple.compare t1 t2 | c -> c
end)

type delta = {
  new_db : Database.t;
  new_idb : Idb.t;
  overdeleted : int;
  rederived : int;
}

(* The evaluation knobs threaded through every rule application.  Plans
   are fetched from one shared cache, so across update batches each
   (rule, variant) pair compiles once and the delta work is pure plan
   execution. *)
type opts = {
  planner : Engine.planner option;
  cache : Planlib.Cache.t;
  indexing : Engine.indexing;
  storage : Relation.storage option;
  stats : Stats.t option;
}

let eval_rule opts ~variant ~universe ~resolver rule =
  Engine.eval_rule ?planner:opts.planner ~cache:opts.cache ~variant
    ~indexing:opts.indexing ?storage:opts.storage ?stats:opts.stats ~universe
    ~resolver rule

(* The delta-scoped work counters ride on [Stats.extra]: the bench's
   no-full-re-ground check asserts that per batch only these grow (plus
   the semi-naive continuation), never a full application per rule. *)
let bump opts name =
  match opts.stats with
  | Some s -> Stats.bump_extra s name 1
  | None -> ()

let indexed_body (rule : Ast.rule) = List.mapi (fun i l -> (i, l)) rule.body

(* [Neg a] at position [j] turned positive, so the literal can read an
   add/delete delta of [a.pred]: a fact {e appearing} in a negated
   predicate can only kill derivations, a fact {e leaving} it can only
   enable them — either way the affected bindings are exactly the joins
   through the flipped literal. *)
let flip_at (rule : Ast.rule) j a =
  {
    rule with
    body = List.mapi (fun i l -> if i = j then Ast.Pos a else l) rule.body;
  }

(* [head :- head, body]: the prepended head literal, resolved to the
   overdeleted facts and compiled as the [Delta 0] variant, restricts
   re-derivation to candidates that were actually deleted — and hands the
   planner a driving input the size of the deletion, not the relation. *)
let putback_rule (rule : Ast.rule) =
  { rule with body = Ast.Pos rule.head :: rule.body }

let add_heads idb pred rel =
  if Relation.is_empty rel then idb
  else if Idb.mem idb pred then
    Idb.set idb pred (Relation.union (Idb.get idb pred) rel)
  else Idb.set idb pred rel

(* Occurrence [j] reads the triggering delta; other evolving occurrences
   read [evolving]; lower strata and the EDB read [base]. *)
let trigger_resolver ~schema ~evolving ~base ~j ~delta_rel
    (occ : Engine.occurrence) =
  if occ.Engine.index = j then { Engine.find = (fun _ _ -> delta_rel) }
  else if Schema.mem occ.Engine.pred schema then
    { Engine.find = (fun p _ -> Idb.get evolving p) }
  else base

(* Seed triggers for one stratum: for each rule and each body literal over
   a changed lower-level predicate (EDB or lower stratum), evaluate a
   delta-specialized variant of the rule reading the change at that
   literal and [evolving] elsewhere.  In the deletion direction positive
   literals read deleted facts and negated literals read {e added} facts;
   the insertion direction is the mirror image ([pos_delta]/[neg_delta]
   encode the direction).  Grounding work is proportional to the changed
   facts — rules over unchanged predicates never run. *)
let eval_seed_triggers opts ~rules ~schema ~evolving ~base ~universe
    ~pos_delta ~neg_delta =
  List.fold_left
    (fun acc (rule : Ast.rule) ->
      List.fold_left
        (fun acc (j, lit) ->
          let fire acc rule' delta_rel =
            if Relation.is_empty delta_rel then acc
            else begin
              bump opts "dred delta applications";
              let resolver =
                trigger_resolver ~schema ~evolving ~base ~j ~delta_rel
              in
              add_heads acc rule.Ast.head.Ast.pred
                (eval_rule opts ~variant:(Plan.Delta j) ~universe ~resolver
                   rule')
            end
          in
          match lit with
          | Ast.Pos a when not (Schema.mem a.Ast.pred schema) -> (
            match pos_delta a.Ast.pred with
            | Some rel -> fire acc rule rel
            | None -> acc)
          | Ast.Neg a -> (
            match neg_delta a.Ast.pred with
            | Some rel -> fire acc (flip_at rule j a) rel
            | None -> acc)
          | _ -> acc)
        acc (indexed_body rule))
    (Idb.empty schema) rules

(* One within-stratum delta application where evolving positive literals
   read [frontier] at the delta position and [evolving] elsewhere — the
   overdeletion chase runs this against the *old* valuation. *)
let stratum_delta_application opts ~rules ~schema ~evolving ~base ~universe
    ~frontier =
  List.fold_left
    (fun acc (rule : Ast.rule) ->
      List.fold_left
        (fun acc j ->
          bump opts "dred delta applications";
          let resolver (occ : Engine.occurrence) =
            if occ.Engine.index = j then
              { Engine.find = (fun p _ -> Idb.get frontier p) }
            else if Schema.mem occ.Engine.pred schema then
              { Engine.find = (fun p _ -> Idb.get evolving p) }
            else base
          in
          add_heads acc rule.Ast.head.Ast.pred
            (eval_rule opts ~variant:(Plan.Delta j) ~universe ~resolver rule))
        acc
        (Saturate.delta_positions ~schema rule))
    (Idb.empty schema) rules

(* A rule whose variables are not all bound by positive body atoms
   enumerates the unbound ones over the universe (the paper's
   non-range-restricted semantics).  Such a rule can derive new facts from
   a universe that merely {e grew} — no fact delta fires any trigger — so
   insertions that introduce new constants re-apply exactly these rules in
   full. *)
let rule_enumerates (rule : Ast.rule) =
  let bound = Ast.positive_body_variables rule in
  List.exists (fun v -> not (List.mem v bound)) (Ast.rule_variables rule)

let fact_arity ~who ~db ~schema (pred, tuple) =
  let expected =
    match Database.relation pred db with
    | Some r -> Some (Relation.arity r)
    | None -> ( match schema with Some s -> Schema.arity pred s | None -> None)
  in
  match expected with
  | Some k when k <> Tuple.arity tuple ->
    invalid_arg
      (Printf.sprintf
         "%s: arity mismatch: %s%s has %d component(s) but %s has arity %d"
         who pred (Tuple.to_string tuple) (Tuple.arity tuple) pred k)
  | _ -> ()

let uniq_facts facts = FactSet.elements (FactSet.of_list facts)

let group_facts ?storage facts =
  List.fold_left
    (fun acc (pred, tuple) ->
      let tuples =
        match SMap.find_opt pred acc with Some ts -> ts | None -> []
      in
      SMap.add pred (tuple :: tuples) acc)
    SMap.empty facts
  |> SMap.map (fun tuples ->
         Relation.of_list ?storage (Tuple.arity (List.hd tuples)) tuples)

(* Extends a per-predicate delta map with a stratum's final differences,
   so higher strata can trigger on them. *)
let extend_deltas m idb =
  List.fold_left
    (fun m (pred, rel) ->
      if Relation.is_empty rel then m
      else
        SMap.add pred
          (match SMap.find_opt pred m with
          | Some r0 -> Relation.union r0 rel
          | None -> rel)
          m)
    m (Idb.bindings idb)

let apply ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain
    ?(who = "Dred.apply") p db ~current ~additions ~removals () =
  (* --- validation (string sets, not List.mem: O(batch log program)) --- *)
  let idb_preds = SSet.of_list (Ast.idb_predicates p) in
  let schema =
    match Ast.inferred_schema p with Ok s -> Some s | Error _ -> None
  in
  let check_pred (pred, _) =
    if SSet.mem pred idb_preds then
      invalid_arg (Printf.sprintf "%s: %s is an IDB predicate" who pred)
  in
  List.iter
    (fun fact ->
      check_pred fact;
      fact_arity ~who ~db ~schema fact)
    additions;
  List.iter
    (fun ((pred, tuple) as fact) ->
      check_pred fact;
      fact_arity ~who ~db ~schema fact;
      if not (Database.mem_fact pred tuple db) then
        invalid_arg
          (Printf.sprintf "%s: %s%s is not in the database" who pred
             (Tuple.to_string tuple)))
    removals;
  let strat =
    match Datalog.Stratify.stratify p with
    | Datalog.Stratify.Stratified s -> s
    | Datalog.Stratify.Not_stratifiable { offending = a, b } ->
      invalid_arg
        (Printf.sprintf
           "%s: the program must be stratifiable (%s depends negatively on \
            %s inside a recursive component)"
           who a b)
    | Datalog.Stratify.Not_limit_stratifiable { pred; rule } ->
      invalid_arg
        (Printf.sprintf "%s: %s" who
           (Datalog.Stratify.limit_error_to_string ~pred ~rule))
  in
  (* Limit semantics in the maintenance loop: every plan compiled through
     [eval_rule] below is limit-{e free} (the cache keys them apart from the
     evaluator's tightened plans) — overdeletion re-derives the *old*
     candidates, which by construction never strictly improve the current
     bound, so a tightening plan would kill exactly the rows the phase
     exists to find.  The dominant-tuple invariant is instead restored at
     the set level: both semi-naive continuations seed through
     {!Idb.tighten_union}, and deleted bounds are re-derived per group (see
     the putback phase). *)
  let limits =
    List.map
      (fun (l : Ast.limit) -> (l.Ast.limit_pred, (l.Ast.kind, l.Ast.column)))
      p.Ast.limits
  in
  let limit_of pred = List.assoc_opt pred limits in
  let removals = uniq_facts removals in
  let removed = FactSet.of_list removals in
  (* An addition already present is a no-op — unless the same batch also
     removes the fact, in which case it must survive the round trip. *)
  let additions =
    uniq_facts additions
    |> List.filter (fun ((pred, tuple) as f) ->
           (not (Database.mem_fact pred tuple db)) || FactSet.mem f removed)
  in
  (* --- the new database ------------------------------------------------ *)
  let new_db =
    List.fold_left
      (fun d (pred, tuple) ->
        let r = Database.relation_or_empty ~arity:(Tuple.arity tuple) pred d in
        Database.set_relation pred (Relation.remove tuple r) d)
      db removals
  in
  let new_db =
    List.fold_left
      (fun d (pred, tuple) ->
        Database.add_fact pred tuple (Database.add_universe (Tuple.to_list tuple) d))
      new_db additions
  in
  let old_u = Database.universe db in
  let new_u = Database.universe new_db in
  let universe_grew = List.length new_u > List.length old_u in
  let cache = match cache with Some c -> c | None -> Planlib.Cache.create () in
  let opts =
    { planner; cache; indexing = Option.value indexing ~default:`Cached;
      storage; stats }
  in
  let full_schema = Idb.schema current in
  (* --- stratum-by-stratum maintenance --------------------------------- *)
  (* [del]/[add] carry the per-predicate deltas visible below the stratum
     at hand: the EDB changes, extended with each completed stratum's own
     differences.  [acc_old]/[acc_new] accumulate the lower strata's old
     and new valuations for the frozen [base] sources. *)
  let nstrata = List.length strat.Datalog.Stratify.strata in
  let rec walk s acc_old acc_new del add over reder =
    if s = nstrata then (acc_new, over, reder)
    else begin
      let rules = Datalog.Stratify.rules_of_stratum p strat s in
      let preds = List.nth strat.Datalog.Stratify.strata s in
      let schema_s =
        List.fold_left
          (fun acc name -> Schema.add name (Schema.arity_exn name full_schema) acc)
          Schema.empty preds
      in
      let old_s =
        List.fold_left
          (fun acc name -> Idb.set acc name (Idb.get current name))
          (Idb.empty schema_s) preds
      in
      let old_base = Engine.layered db acc_old in
      let new_base = Engine.layered new_db acc_new in
      let lookup m pred = SMap.find_opt pred m in
      (* Phase 1 — overdeletion, in the old state over the old universe:
         seed from the lower-level deltas, then chase through positive
         evolving literals.  Candidates are capped to facts actually
         materialised. *)
      let seed =
        eval_seed_triggers opts ~rules ~schema:schema_s ~evolving:old_s
          ~base:old_base ~universe:old_u ~pos_delta:(lookup del)
          ~neg_delta:(lookup add)
      in
      let rec overdelete deleted frontier =
        if Idb.is_empty frontier then deleted
        else
          let derived =
            stratum_delta_application opts ~rules ~schema:schema_s
              ~evolving:old_s ~base:old_base ~universe:old_u ~frontier
          in
          let fresh = Idb.diff (Idb.inter derived old_s) deleted in
          overdelete (Idb.union deleted fresh) fresh
      in
      let d0 = Idb.inter seed old_s in
      let deleted = overdelete d0 d0 in
      let over_s = Idb.total_cardinal deleted in
      let survivors = Idb.diff old_s deleted in
      (* Phase 2 — put back and re-derive, in the new state: for each rule
         whose head predicate lost facts, join the deleted facts against
         the survivors (the prepended-head [Delta 0] variant), then
         continue semi-naive from what came back. *)
      let after_del, red_s =
        if Idb.is_empty deleted then (old_s, 0)
        else begin
          let putback =
            List.fold_left
              (fun acc (rule : Ast.rule) ->
                let pred = rule.Ast.head.Ast.pred in
                let drel = Idb.get deleted pred in
                if Relation.is_empty drel then acc
                else
                  match limit_of pred with
                  | Some (_, col)
                    when col < Relation.arity drel
                         && col < List.length rule.Ast.head.Ast.args ->
                    (* A deleted {e bound} need not come back verbatim: the
                       group's new bound is whatever the surviving supports
                       still derive (possibly a worse value, possibly
                       nothing).  Restrict the rule to the overdeleted
                       groups and derive candidates from the survivors; the
                       tighten-union below keeps the best one per group. *)
                    bump opts "dred putback applications";
                    let arity = Relation.arity drel in
                    let gcols =
                      List.filter (fun j -> j <> col) (List.init arity Fun.id)
                    in
                    let groups = Relation.project gcols drel in
                    let group_args =
                      List.filteri
                        (fun j _ -> j <> col)
                        rule.Ast.head.Ast.args
                    in
                    let aux =
                      {
                        rule with
                        Ast.body =
                          Ast.Pos (Ast.atom (pred ^ "#groups") group_args)
                          :: rule.Ast.body;
                      }
                    in
                    let resolver (occ : Engine.occurrence) =
                      if occ.Engine.index = 0 then
                        { Engine.find = (fun _ _ -> groups) }
                      else if Schema.mem occ.Engine.pred schema_s then
                        { Engine.find = (fun q _ -> Idb.get survivors q) }
                      else new_base
                    in
                    add_heads acc pred
                      (eval_rule opts ~variant:(Plan.Delta 0) ~universe:new_u
                         ~resolver aux)
                  | _ ->
                    bump opts "dred putback applications";
                    let resolver (occ : Engine.occurrence) =
                      if occ.Engine.index = 0 then
                        { Engine.find = (fun _ _ -> drel) }
                      else if Schema.mem occ.Engine.pred schema_s then
                        { Engine.find = (fun q _ -> Idb.get survivors q) }
                      else new_base
                    in
                    add_heads acc pred
                      (eval_rule opts ~variant:(Plan.Delta 0) ~universe:new_u
                         ~resolver (putback_rule rule)))
              (Idb.empty schema_s) rules
          in
          if Idb.is_empty putback then (survivors, 0)
          else
            let init, fresh = Idb.tighten_union ~limits survivors putback in
            if Idb.is_empty fresh then
              ( init,
                Idb.total_cardinal init - Idb.total_cardinal survivors )
            else
              let trace =
                Saturate.run_delta ?engine ?planner:opts.planner
                  ~cache:opts.cache ~limits ~indexing:opts.indexing
                  ?storage:opts.storage ?stats:opts.stats ?pool ?grain ~rules
                  ~schema:schema_s ~universe:new_u ~base:new_base
                  ~neg:`Current ~init ~delta:fresh ()
              in
              ( trace.Saturate.result,
                Idb.total_cardinal trace.Saturate.result
                - Idb.total_cardinal survivors )
        end
      in
      (* Phase 3 — insertion, in the new state: trigger on added lower
         facts (and removed facts under negation), then continue
         semi-naive from the genuinely fresh seeds.  A grown universe
         additionally re-applies the enumerating rules in full — the only
         rules that can derive from new constants alone. *)
      let seed =
        eval_seed_triggers opts ~rules ~schema:schema_s ~evolving:after_del
          ~base:new_base ~universe:new_u ~pos_delta:(lookup add)
          ~neg_delta:(lookup del)
      in
      let seed =
        if not universe_grew then seed
        else
          List.fold_left
            (fun acc (rule : Ast.rule) ->
              if not (rule_enumerates rule) then acc
              else begin
                bump opts "dred full applications";
                let resolver (occ : Engine.occurrence) =
                  if Schema.mem occ.Engine.pred schema_s then
                    { Engine.find = (fun q _ -> Idb.get after_del q) }
                  else new_base
                in
                add_heads acc rule.Ast.head.Ast.pred
                  (eval_rule opts ~variant:Plan.Full ~universe:new_u
                     ~resolver rule)
              end)
            seed rules
      in
      let init3, fresh = Idb.tighten_union ~limits after_del seed in
      let new_s, grow_s =
        if Idb.is_empty fresh then (after_del, 0)
        else
          let trace =
            Saturate.run_delta ?engine ?planner:opts.planner ~cache:opts.cache
              ~limits ~indexing:opts.indexing ?storage:opts.storage
              ?stats:opts.stats ?pool ?grain ~rules ~schema:schema_s
              ~universe:new_u ~base:new_base ~neg:`Current ~init:init3
              ~delta:fresh ()
          in
          ( trace.Saturate.result,
            Idb.total_cardinal trace.Saturate.result
            - Idb.total_cardinal after_del )
      in
      let acc_old =
        List.fold_left
          (fun acc name -> Idb.set acc name (Idb.get old_s name))
          acc_old preds
      in
      let acc_new =
        List.fold_left
          (fun acc name -> Idb.set acc name (Idb.get new_s name))
          acc_new preds
      in
      let del = extend_deltas del (Idb.diff old_s new_s) in
      let add = extend_deltas add (Idb.diff new_s old_s) in
      walk (s + 1) acc_old acc_new del add (over + over_s)
        (reder + red_s + grow_s)
    end
  in
  let del0 = group_facts ?storage removals in
  let add0 = group_facts ?storage additions in
  let acc0 = Idb.empty Schema.empty in
  let final, overdeleted, rederived = walk 0 acc0 acc0 del0 add0 0 0 in
  let new_idb =
    List.fold_left
      (fun acc (pred, rel) -> Idb.set acc pred rel)
      (Idb.empty full_schema) (Idb.bindings final)
  in
  { new_db; new_idb; overdeleted; rederived }

let delete_facts p db ~current ~removals =
  apply ~who:"Dred.delete_facts" p db ~current ~additions:[] ~removals ()

let insert_facts p db ~current ~additions =
  apply ~who:"Dred.insert_facts" p db ~current ~additions ~removals:[] ()
