(** Inflationary DATALOG — the semantics the paper proposes (Section 4).

    The inflationary semantics of a program pi on a database D iterates
    Theta-hat(S) = S union Theta(S) from the empty valuation; the sequence
    is increasing, reaches its limit Theta-infinity within |A|{^ k} stages,
    and is therefore computable in polynomial time in the size of D.  It is
    total on {e all} DATALOG-not programs, and on positive programs it
    coincides with the least-fixpoint semantics. *)

val eval :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t
(** Theta-infinity for all IDB predicates.  Default engine: [`Seminaive]
    (see {!Saturate} for why the differential cut remains sound under
    negation, and for the [`Parallel] fan-out; [pool] and [grain] only
    matter there). *)

val eval_trace :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Saturate.trace
(** Keeps the per-stage deltas; the stage at which a tuple enters is the
    key to the distance-query argument of Proposition 2. *)

val carrier :
  ?engine:Saturate.engine ->
  Datalog.Ast.program ->
  carrier:string ->
  Relalg.Database.t ->
  Relalg.Relation.t
(** The relation computed for the distinguished carrier (goal) predicate.
    @raise Invalid_argument if [carrier] is not an IDB predicate. *)
