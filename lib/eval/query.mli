(** Goal-directed query answering via magic sets.

    [answer p db query] computes exactly the tuples of the query predicate
    matching the query's constants, by rewriting the program with
    [Datalog.Magic] and running the semi-naive least-fixpoint evaluation on
    the rewritten program — touching only the query-relevant part of the
    database.  Equivalent to (but usually much cheaper than) evaluating the
    whole program and selecting. *)

val select :
  Relalg.Relation.t ->
  query:Datalog.Ast.atom ->
  (Relalg.Relation.t, string) result
(** [select rel ~query] keeps the tuples of [rel] matching the query atom:
    constants must coincide positionally and repeated variables must bind
    consistently ([s(X, X)] selects the diagonal).  [Error] when the query
    atom's arity disagrees with the relation's — never a bare
    [Invalid_argument].  This is the snapshot-side filter the serve layer
    runs against an already-materialised model; {!answer} applies it to the
    magic-sets answer relation. *)

val answer :
  ?engine:Saturate.engine ->
  ?indexing:Engine.indexing ->
  ?stats:Stats.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  query:Datalog.Ast.atom ->
  (Relalg.Relation.t, string) result
(** Full tuples of the query predicate (all positions, bound ones
    included), restricted to the query's constants.  Errors on non-positive
    programs and malformed queries (see [Datalog.Magic.rewrite]). *)

val answer_exn :
  ?engine:Saturate.engine ->
  ?indexing:Engine.indexing ->
  ?stats:Stats.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  query:Datalog.Ast.atom ->
  Relalg.Relation.t

val holds :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  query:Datalog.Ast.atom ->
  (bool, string) result
(** For a fully ground query atom: is it in the least fixpoint? *)
