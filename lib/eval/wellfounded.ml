type model = {
  true_facts : Idb.t;
  possible : Idb.t;
}

let unknown m = Idb.diff m.possible m.true_facts

let is_total m = Idb.is_empty (unknown m)

let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Wellfounded: " ^ msg)

let reduct_fixpoint ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
    ?grain p db s =
  let schema = idb_schema_exn p in
  let fixed = { Engine.find = (fun pred _arity -> Idb.get s pred) } in
  let trace =
    Saturate.run ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
      ?grain ~rules:p.Datalog.Ast.rules ~schema
      ~universe:(Relalg.Database.universe db)
      ~base:(Engine.database_source db) ~neg:(`Fixed fixed)
      ~init:(Idb.empty schema) ()
  in
  trace.Saturate.result

let eval ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain p db
    =
  Stats.timed stats "well-founded" @@ fun () ->
  (* One cache across every application of A: the alternating fixpoint
     re-saturates the same rules many times, and the plans carry over. *)
  let cache =
    match cache with Some c -> c | None -> Planlib.Cache.create ()
  in
  let a =
    reduct_fixpoint ?engine ?planner ~cache ?indexing ?storage ?stats ?pool
      ?grain p db
  in
  let rec alternate under over =
    let under' = a over in
    let over' = a under' in
    if Idb.equal under under' && Idb.equal over over' then
      { true_facts = under'; possible = over' }
    else alternate under' over'
  in
  let schema = idb_schema_exn p in
  let empty = Idb.empty schema in
  let over0 = a empty in
  alternate empty over0
