type t = {
  mutable iterations : int;
  mutable rule_applications : int;
  mutable tuples_derived : int;
  mutable tuples_allocated : int;
  mutable bulk_builds : int;
  mutable index_hits : int;
  mutable index_builds : int;
  mutable full_scans : int;
  mutable bucket_probes : int;
  mutable stages : (string * float) list;
  mutable wall : float;
  mutable extra : (string * int) list;
}

let create () =
  {
    iterations = 0;
    rule_applications = 0;
    tuples_derived = 0;
    tuples_allocated = 0;
    bulk_builds = 0;
    index_hits = 0;
    index_builds = 0;
    full_scans = 0;
    bucket_probes = 0;
    stages = [];
    wall = 0.0;
    extra = [];
  }

let merge_into dst ~src =
  dst.iterations <- dst.iterations + src.iterations;
  dst.rule_applications <- dst.rule_applications + src.rule_applications;
  dst.tuples_derived <- dst.tuples_derived + src.tuples_derived;
  dst.tuples_allocated <- dst.tuples_allocated + src.tuples_allocated;
  dst.bulk_builds <- dst.bulk_builds + src.bulk_builds;
  dst.index_hits <- dst.index_hits + src.index_hits;
  dst.index_builds <- dst.index_builds + src.index_builds;
  dst.full_scans <- dst.full_scans + src.full_scans;
  dst.bucket_probes <- dst.bucket_probes + src.bucket_probes;
  dst.stages <- src.stages @ dst.stages;
  dst.wall <- dst.wall +. src.wall;
  dst.extra <- src.extra @ dst.extra

let record_stage t name dt =
  t.stages <- (name, dt) :: t.stages;
  t.wall <- t.wall +. dt

let timed stats name f =
  match stats with
  | None -> f ()
  | Some t ->
    let start = Unix.gettimeofday () in
    let result = f () in
    record_stage t name (Unix.gettimeofday () -. start);
    result

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "iterations:        %d@," t.iterations;
  Format.fprintf ppf "rule applications: %d@," t.rule_applications;
  Format.fprintf ppf "tuples derived:    %d@," t.tuples_derived;
  Format.fprintf ppf "tuples allocated:  %d@," t.tuples_allocated;
  Format.fprintf ppf "bulk builds:       %d@," t.bulk_builds;
  Format.fprintf ppf "index hits:        %d@," t.index_hits;
  Format.fprintf ppf "index builds:      %d@," t.index_builds;
  Format.fprintf ppf "full scans:        %d@," t.full_scans;
  Format.fprintf ppf "bucket probes:     %d@," t.bucket_probes;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-18s %d@," (name ^ ":") v)
    (List.rev t.extra);
  List.iter
    (fun (name, dt) -> Format.fprintf ppf "stage %-12s %.6fs@," name dt)
    (List.rev t.stages);
  Format.fprintf ppf "wall time:         %.6fs@]" t.wall
