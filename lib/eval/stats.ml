module Plan = Planlib.Plan

type t = {
  mutable iterations : int;
  mutable rule_applications : int;
  mutable tuples_derived : int;
  mutable tuples_allocated : int;
  mutable bulk_builds : int;
  plan : Plan.counters;
  mutable morsels : int;
  mutable steals : int;
  mutable max_shard_skew : int;
  mutable merge_ns : int;
  mutable stripe_locks : int;
  mutable intern_hits : int;
  mutable intern_misses : int;
  mutable partition_skew : int;
  mutable stages : (string * float) list;
  mutable wall : float;
  mutable extra : (string * int) list;
}

let create () =
  {
    iterations = 0;
    rule_applications = 0;
    tuples_derived = 0;
    tuples_allocated = 0;
    bulk_builds = 0;
    plan = Plan.counters ();
    morsels = 0;
    steals = 0;
    max_shard_skew = 0;
    merge_ns = 0;
    stripe_locks = 0;
    intern_hits = 0;
    intern_misses = 0;
    partition_skew = 0;
    stages = [];
    wall = 0.0;
    extra = [];
  }

let merge_into dst ~src =
  dst.iterations <- dst.iterations + src.iterations;
  dst.rule_applications <- dst.rule_applications + src.rule_applications;
  dst.tuples_derived <- dst.tuples_derived + src.tuples_derived;
  dst.tuples_allocated <- dst.tuples_allocated + src.tuples_allocated;
  dst.bulk_builds <- dst.bulk_builds + src.bulk_builds;
  Plan.merge_counters dst.plan ~src:src.plan;
  dst.morsels <- dst.morsels + src.morsels;
  dst.steals <- dst.steals + src.steals;
  dst.max_shard_skew <- max dst.max_shard_skew src.max_shard_skew;
  dst.merge_ns <- dst.merge_ns + src.merge_ns;
  (* The contention block is harvested from process-cumulative counters at
     print sites, not accumulated per task — max keeps a merge of a
     harvested record with un-harvested shards from double-counting. *)
  dst.stripe_locks <- max dst.stripe_locks src.stripe_locks;
  dst.intern_hits <- max dst.intern_hits src.intern_hits;
  dst.intern_misses <- max dst.intern_misses src.intern_misses;
  dst.partition_skew <- max dst.partition_skew src.partition_skew;
  dst.stages <- src.stages @ dst.stages;
  dst.wall <- dst.wall +. src.wall;
  dst.extra <- src.extra @ dst.extra

(* [pp] renders [List.rev extra], so prepending a fresh counter keeps the
   report in first-use order. *)
let bump_extra t name n =
  if List.mem_assoc name t.extra then
    t.extra <-
      List.map
        (fun (k, v) -> if String.equal k name then (k, v + n) else (k, v))
        t.extra
  else t.extra <- (name, n) :: t.extra

(* The store's contention counters are process-cumulative; copying them
   wholesale into the record at print time keeps the hot intern path free
   of any per-run baseline bookkeeping.  One-shot CLI runs dominate their
   process, so the totals effectively are the run's; the serve loop
   reports cumulative counters, consistent with its other totals. *)
let harvest_contention t =
  let c = Relalg.Store.contention () in
  t.stripe_locks <- c.Relalg.Store.stripe_locks;
  t.intern_hits <- c.Relalg.Store.cache_hits;
  t.intern_misses <- c.Relalg.Store.cache_misses;
  t.partition_skew <- c.Relalg.Store.partition_skew

let record_stage t name dt =
  t.stages <- (name, dt) :: t.stages;
  t.wall <- t.wall +. dt

let timed stats name f =
  match stats with
  | None -> f ()
  | Some t ->
    let start = Unix.gettimeofday () in
    let result = f () in
    record_stage t name (Unix.gettimeofday () -. start);
    result

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "iterations:        %d@," t.iterations;
  Format.fprintf ppf "rule applications: %d@," t.rule_applications;
  Format.fprintf ppf "tuples derived:    %d@," t.tuples_derived;
  Format.fprintf ppf "tuples allocated:  %d@," t.tuples_allocated;
  Format.fprintf ppf "bulk builds:       %d@," t.bulk_builds;
  Format.fprintf ppf "plan compiles:     %d@," t.plan.Plan.plan_compiles;
  Format.fprintf ppf "plan cache hits:   %d@," t.plan.Plan.plan_cache_hits;
  Format.fprintf ppf "plan replans:      %d@," t.plan.Plan.plan_replans;
  Format.fprintf ppf "index hits:        %d@," t.plan.Plan.index_hits;
  Format.fprintf ppf "index builds:      %d@," t.plan.Plan.index_builds;
  Format.fprintf ppf "full scans:        %d@," t.plan.Plan.full_scans;
  Format.fprintf ppf "bucket probes:     %d@," t.plan.Plan.bucket_probes;
  Format.fprintf ppf "enumerations:      %d@," t.plan.Plan.enumerations;
  Format.fprintf ppf "morsels executed:  %d@," t.morsels;
  Format.fprintf ppf "morsel steals:     %d@," t.steals;
  Format.fprintf ppf "max shard skew:    %d@," t.max_shard_skew;
  (* The store-contention block appears only when something was measured:
     hashed-backend runs show it, tree-backend runs keep the seed block. *)
  if
    t.stripe_locks + t.intern_hits + t.intern_misses + t.partition_skew
    + t.merge_ns
    > 0
  then begin
    Format.fprintf ppf "stripe locks:      %d@," t.stripe_locks;
    Format.fprintf ppf "intern cache hits: %d@," t.intern_hits;
    Format.fprintf ppf "intern cache miss: %d@," t.intern_misses;
    Format.fprintf ppf "partition skew:    %d@," t.partition_skew;
    Format.fprintf ppf "parallel merge ns: %d@," t.merge_ns
  end;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-18s %d@," (name ^ ":") v)
    (List.rev t.extra);
  List.iter
    (fun (name, dt) -> Format.fprintf ppf "stage %-12s %.6fs@," name dt)
    (List.rev t.stages);
  Format.fprintf ppf "wall time:         %.6fs@]" t.wall
