(** Valuations of the nondatabase (IDB) relations.

    A value of this type is the sequence S = (S1, ..., Sm) of Section 2: one
    relation per IDB predicate of a program, with arities fixed by a schema.
    The immediate consequence operator maps these to these; fixpoints,
    inflationary stages and stratified layers are all computed over this
    type. *)

type t

val empty : Relalg.Schema.t -> t
(** All relations empty, one per schema predicate. *)

val of_program : Datalog.Ast.program -> t
(** Empty valuation for the program's inferred IDB schema.
    @raise Invalid_argument if the program uses a predicate with two
    arities. *)

val schema : t -> Relalg.Schema.t

val get : t -> string -> Relalg.Relation.t
(** @raise Not_found for a predicate outside the schema. *)

val mem : t -> string -> bool

val set : t -> string -> Relalg.Relation.t -> t
(** @raise Invalid_argument on an arity mismatch with the schema; a new
    predicate is admitted and added to the schema. *)

val add_fact : t -> string -> Relalg.Tuple.t -> t

val bindings : t -> (string * Relalg.Relation.t) list
(** Sorted by predicate name. *)

val union : t -> t -> t
(** Pointwise union (schemas must agree on shared predicates). *)

val tighten_union :
  limits:(string * (Datalog.Ast.limit_kind * int)) list -> t -> t -> t * t
(** [tighten_union ~limits current candidates] is the limit-aware
    counterpart of [diff]-then-[union]: for a relation declared
    [(kind, column)] in [limits], a candidate tuple lands only when it
    strictly improves its group's bound, replacing the dominated tuple
    ({!Relalg.Relation.tighten}); any other relation takes all fresh
    tuples.  Returns [(next, delta)], where [delta] holds exactly the
    newly-dominant (or fresh) tuples — the changed-group delta that seeds
    the next semi-naive stage.  With no limits it computes exactly
    [union current (diff candidates current)]. *)

val diff : t -> t -> t
(** Pointwise difference. *)

val inter : t -> t -> t

val equal : t -> t -> bool

val fingerprint : t -> int
(** A canonical hash of the valuation's contents: valuations that {!equal}
    identifies fingerprint identically (empty and missing relations are
    indistinguishable).  Used by {!Theta.iterate}'s orbit table — a
    fingerprint match is a {e candidate} repeat and must be confirmed with
    {!equal}. *)

val subset : t -> t -> bool
(** Pointwise inclusion: [subset s s'] iff every relation of [s] is included
    in the corresponding relation of [s'] (missing predicates in [s'] count
    as empty). *)

val is_empty : t -> bool
(** Every relation empty. *)

val total_cardinal : t -> int
(** Total number of tuples across all relations. *)

val restrict : string list -> t -> t

val to_database : t -> Relalg.Database.t -> Relalg.Database.t
(** Adds the IDB relations to a database (used to expose results). *)

val pp : Format.formatter -> t -> unit
