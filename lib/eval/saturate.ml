module Schema = Relalg.Schema
module Relation = Relalg.Relation
module Plan = Planlib.Plan

type engine = [ `Naive | `Seminaive | `Parallel ]

type trace = {
  result : Idb.t;
  deltas : Idb.t list;
}

let stages t = List.length t.deltas

let stage_of t pred tuple =
  let rec find n = function
    | [] -> None
    | d :: rest ->
      if Idb.mem d pred && Relalg.Relation.mem tuple (Idb.get d pred) then
        Some n
      else find (n + 1) rest
  in
  find 1 t.deltas

let make_resolver ~schema ~base ~neg ~current ~delta_occ ~delta
    (occ : Engine.occurrence) =
  if Schema.mem occ.pred schema then
    match occ.polarity with
    | `Neg -> (
      match neg with
      | `Current -> { Engine.find = (fun p _a -> Idb.get current p) }
      | `Fixed src -> src)
    | `Pos -> (
      match delta_occ with
      | Some j when occ.index = j ->
        { Engine.find = (fun p _a -> Idb.get delta p) }
      | _ -> { Engine.find = (fun p _a -> Idb.get current p) })
  else base

(* Positive body occurrences of evolving predicates, as literal indices. *)
let delta_positions ~schema (rule : Datalog.Ast.rule) =
  List.mapi (fun i l -> (i, l)) rule.body
  |> List.filter_map (fun (i, l) ->
         match l with
         | Datalog.Ast.Pos a when Schema.mem a.pred schema -> Some i
         | _ -> None)

(* One rule application, packaged so an iteration's applications can run
   in order, fanned whole across the domain pool, or individually sharded
   over it.  Each task carries its own statistics shard; shards are merged
   at the iteration barrier, which keeps the counters exact without
   cross-domain contention.  Plans are fetched (and, on a miss, compiled)
   here — in the coordinator, before any fan-out — because the plan cache
   is not synchronised; the tasks then only execute. *)
type task = {
  shard : Stats.t option;
  head : string;
  plan : Plan.t;
  resolver : Engine.resolver;
}

let rule_tasks ~planner ~cache ~limits ~stats ~universe spec =
  let universe_size = List.length universe in
  List.map
    (fun ((rule : Datalog.Ast.rule), variant, resolver) ->
      let shard = Option.map (fun _ -> Stats.create ()) stats in
      let plan =
        Engine.plan_rule ?planner ~cache ~variant ~limits ?stats:shard
          ~universe_size ~resolver rule
      in
      { shard; head = rule.head.pred; plan; resolver })
    spec

(* Runs one iteration's tasks and merges the per-task IDB fragments (and
   statistics shards).  Rules within one Theta application are independent —
   they all read the same immutable [current]/[delta] valuations — so the
   fan-out is sound.

   Under [parallel], the axis of parallelism is picked per stage: when the
   stage has at least as many runnable applications as pool participants,
   whole tasks fan across the pool (each saturates one domain); when it has
   fewer — the single-heavy-recursive-rule regime, where rule fan-out
   degenerates to sequential execution — each task instead runs morsel-
   sharded {e within} the pool ({!Engine.run_plan_sharded}), unless the
   grain is [`Rules] (the pre-morsel baseline). *)
let run_tasks ~parallel ~pool ~grain ~indexing ~storage ~stats ~schema
    ~universe tasks =
  let seq t =
    Engine.run_plan ~indexing ?storage ?stats:t.shard ~universe
      ~resolver:t.resolver t.plan
  in
  let sharded t =
    Engine.run_plan_sharded ~indexing ?storage ?stats:t.shard ~pool ~grain
      ~universe ~resolver:t.resolver t.plan
  in
  let results =
    match tasks with
    | [] -> []
    | _ when not parallel -> List.map seq tasks
    | _ ->
      let participants = Negdl_util.Domain_pool.size pool + 1 in
      (* [max participants 2]: on a pool of size 0 a lone task still takes
         the sharded path (which then runs inline), so par=1 measures the
         sharding tax honestly instead of silently reverting. *)
      if grain <> `Rules && List.length tasks < max participants 2 then
        List.map sharded tasks
      else (
        match tasks with
        | [ t ] -> [ seq t ]
        | _ ->
          Negdl_util.Domain_pool.run pool
            (List.map (fun t () -> seq t) tasks))
  in
  (match stats with
  | Some s ->
    List.iter
      (fun t -> Option.iter (fun sh -> Stats.merge_into s ~src:sh) t.shard)
      tasks
  | None -> ());
  List.fold_left2
    (fun acc t derived ->
      let old =
        if Idb.mem acc t.head then Idb.get acc t.head
        else Relation.empty (Relation.arity derived)
      in
      Idb.set acc t.head (Relation.union old derived))
    (Idb.empty schema) tasks results

let full_application ~parallel ~pool ~grain ~planner ~cache ~limits
    ~indexing ~storage ~stats ~rules ~schema ~universe ~base ~neg ~current =
  let resolver =
    make_resolver ~schema ~base ~neg ~current ~delta_occ:None ~delta:current
  in
  run_tasks ~parallel ~pool ~grain ~indexing ~storage ~stats ~schema
    ~universe
    (rule_tasks ~planner ~cache ~limits ~stats ~universe
       (List.map (fun r -> (r, Plan.Full, resolver)) rules))

let delta_application ~parallel ~pool ~grain ~planner ~cache ~limits
    ~indexing ~storage ~stats ~rules ~schema ~universe ~base ~neg ~current
    ~delta =
  let spec =
    List.concat_map
      (fun rule ->
        List.map
          (fun j ->
            ( rule,
              Plan.Delta j,
              make_resolver ~schema ~base ~neg ~current ~delta_occ:(Some j)
                ~delta ))
          (delta_positions ~schema rule))
      rules
  in
  run_tasks ~parallel ~pool ~grain ~indexing ~storage ~stats ~schema
    ~universe
    (rule_tasks ~planner ~cache ~limits ~stats ~universe spec)

(* The semi-naive delta chase shared by [run] (after its full stage 1) and
   [run_delta] (seeded directly): iterate delta applications until no fresh
   tuple appears.  [init] must already contain [delta]. *)
let seminaive_chase ~parallel ~pool ~grain ~planner ~cache ~limits ~indexing
    ~storage ~stats ~rules ~schema ~universe ~base ~neg ~bump_iteration ~init
    ~delta =
  let rec loop current delta rev_deltas =
    bump_iteration ();
    let derived =
      delta_application ~parallel ~pool ~grain ~planner ~cache ~limits
        ~indexing ~storage ~stats ~rules ~schema ~universe ~base ~neg
        ~current ~delta
    in
    (* The limit-aware union: candidates for a declared limit relation
       land only when they improve their group's bound, and [fresh] is the
       changed-group delta.  Without limits this is diff-then-union. *)
    let next, fresh = Idb.tighten_union ~limits current derived in
    if Idb.is_empty fresh then
      { result = current; deltas = List.rev rev_deltas }
    else loop next fresh (fresh :: rev_deltas)
  in
  loop init delta []

let apply_once ?(parallel = false) ?pool ?grain ?planner ?cache
    ?(limits = []) ?(indexing = `Cached) ?storage ?stats ~rules ~schema
    ~universe ~base ~neg ~current () =
  let pool =
    match pool with Some p -> p | None -> Negdl_util.Domain_pool.default ()
  in
  let grain =
    match grain with Some g -> g | None -> Engine.default_grain ()
  in
  let cache =
    match cache with Some c -> c | None -> Planlib.Cache.create ()
  in
  full_application ~parallel ~pool ~grain ~planner ~cache ~limits ~indexing
    ~storage ~stats ~rules ~schema ~universe ~base ~neg ~current

let run ?(engine = `Seminaive) ?planner ?cache ?(limits = [])
    ?(indexing = `Cached) ?storage ?stats ?pool ?grain ?label ~rules ~schema
    ~universe ~base ~neg ~init () =
  (match label with
  | Some l -> Stats.timed stats l
  | None -> fun f -> f ())
  @@ fun () ->
  (* One cache per saturation when the caller doesn't share a longer-lived
     one: plans are then still reused across all iterations of this run. *)
  let cache =
    match cache with Some c -> c | None -> Planlib.Cache.create ()
  in
  let pool =
    match pool with Some p -> p | None -> Negdl_util.Domain_pool.default ()
  in
  let grain =
    match grain with Some g -> g | None -> Engine.default_grain ()
  in
  let bump_iteration () =
    match stats with
    | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
    | None -> ()
  in
  match engine with
  | `Naive ->
    let rec loop current rev_deltas =
      bump_iteration ();
      let derived =
        full_application ~parallel:false ~pool ~grain ~planner ~cache
          ~limits ~indexing ~storage ~stats ~rules ~schema ~universe ~base
          ~neg ~current
      in
      let next, delta = Idb.tighten_union ~limits current derived in
      if Idb.is_empty delta then
        { result = current; deltas = List.rev rev_deltas }
      else loop next (delta :: rev_deltas)
    in
    loop init []
  | (`Seminaive | `Parallel) as e ->
    (* Stage 1 applies every rule in full; later stages only chase the
       previous stage's delta through positive evolving literals.  Under
       [`Parallel] each stage's applications either fan whole across the
       domain pool or — when the stage has fewer runnable applications
       than participants — run morsel-sharded within it (see
       {!run_tasks}); both merge at the stage barrier. *)
    let parallel = e = `Parallel in
    bump_iteration ();
    let derived =
      full_application ~parallel ~pool ~grain ~planner ~cache ~limits
        ~indexing ~storage ~stats ~rules ~schema ~universe ~base ~neg
        ~current:init
    in
    let init1, delta1 = Idb.tighten_union ~limits init derived in
    if Idb.is_empty delta1 then { result = init; deltas = [] }
    else
      let t =
        seminaive_chase ~parallel ~pool ~grain ~planner ~cache ~limits
          ~indexing ~storage ~stats ~rules ~schema ~universe ~base ~neg
          ~bump_iteration ~init:init1 ~delta:delta1
      in
      { t with deltas = delta1 :: t.deltas }

let run_delta ?(engine = `Seminaive) ?planner ?cache ?(limits = [])
    ?(indexing = `Cached) ?storage ?stats ?pool ?grain ?label ~rules ~schema
    ~universe ~base ~neg ~init ~delta () =
  (match label with
  | Some l -> Stats.timed stats l
  | None -> fun f -> f ())
  @@ fun () ->
  if Idb.is_empty delta then { result = init; deltas = [] }
  else begin
    let cache =
      match cache with Some c -> c | None -> Planlib.Cache.create ()
    in
    let pool =
      match pool with Some p -> p | None -> Negdl_util.Domain_pool.default ()
    in
    let grain =
      match grain with Some g -> g | None -> Engine.default_grain ()
    in
    let bump_iteration () =
      match stats with
      | Some s -> s.Stats.iterations <- s.Stats.iterations + 1
      | None -> ()
    in
    (* The delta chase is the whole run: no full stage 1.  [`Naive] has no
       delta-specialized form, so it rides the semi-naive chase too — the
       computed limit is the same. *)
    let parallel = engine = `Parallel in
    seminaive_chase ~parallel ~pool ~grain ~planner ~cache ~limits ~indexing
      ~storage ~stats ~rules ~schema ~universe ~base ~neg ~bump_iteration
      ~init ~delta
  end
