let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Inflationary: " ^ msg)

let eval_trace ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
    ?grain p db =
  let schema = idb_schema_exn p in
  Saturate.run ?engine ?planner ?cache ?indexing ?storage ?stats ?pool
    ?grain ~label:"inflationary" ~rules:p.Datalog.Ast.rules ~schema
    ~universe:(Relalg.Database.universe db)
    ~base:(Engine.database_source db) ~neg:`Current ~init:(Idb.empty schema)
    ()

let eval ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain p db
    =
  (eval_trace ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain
     p db)
    .result

let carrier ?engine p ~carrier db =
  let result = eval ?engine p db in
  if not (Idb.mem result carrier) then
    invalid_arg
      (Printf.sprintf "Inflationary.carrier: %s is not an IDB predicate"
         carrier)
  else Idb.get result carrier
