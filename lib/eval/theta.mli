(** The immediate consequence operator Theta of Section 2.

    For a program pi with IDB relations S = (S1, ..., Sm) and a database D,
    [apply pi db s] is Theta(S): the relations obtained by applying every
    rule of pi once, reading both EDB and IDB relations at their current
    values.  Note that Theta is applied "from scratch": the result contains
    exactly the derivable tuples, {e not} unioned with the input — a
    sequence S is a fixpoint of (pi, D) precisely when [apply pi db s]
    equals [s]. *)

val apply :
  ?parallel:bool ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t ->
  Idb.t
(** One application of Theta.  With [~parallel:true] the application runs
    across [pool] (default {!Negdl_util.Domain_pool.default}) exactly like
    one [`Parallel] saturation stage: whole-rule fan-out when there are at
    least as many rules as pool participants, morsel-sharded plan
    execution within each rule otherwise ([grain], default
    {!Engine.default_grain}, sizes the morsels; [`Rules] forces fan-out).
    The result is identical either way.
    @raise Invalid_argument if the program has inconsistent arities. *)

val is_fixpoint : Datalog.Ast.program -> Relalg.Database.t -> Idb.t -> bool
(** [is_fixpoint pi db s] iff Theta(s) = s. *)

val inflate : Datalog.Ast.program -> Relalg.Database.t -> Idb.t -> Idb.t
(** The inflationary operator Theta-hat: [s] union [apply pi db s]
    (Gurevich-Shelah, Section 4). *)

type iteration_outcome =
  | Reached_fixpoint of { fixpoint : Idb.t; steps : int }
      (** Theta{^ steps}(start) is a fixpoint (and the first repeat). *)
  | Entered_cycle of { entry : int; period : int; states : Idb.t list }
      (** The orbit becomes periodic without a fixpoint:
          Theta{^ entry+period} = Theta{^ entry} with [period >= 2];
          [states] lists the cycle's valuations. *)
  | Gave_up of { steps : int }
      (** [max_steps] exceeded without a repeat. *)

val iterate :
  ?max_steps:int ->
  ?parallel:bool ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?planner:Engine.planner ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t ->
  iteration_outcome
(** Iterates the {e plain} (non-inflationary) operator from the given
    valuation and detects repetition — the naive "negation by fixpoint"
    attempt.  On the paper's pi_1 it converges on paths but oscillates with
    period 2 on even and odd cycles alike; the toggle rule oscillates on
    every non-empty database.  Default [max_steps] is 10000.  Repetition
    is detected through a fingerprint hashtable ({!Idb.fingerprint}, with
    collisions verified by {!Idb.equal}), so long-period orbits cost one
    lookup per step rather than a scan of the whole history; rule plans
    are compiled once and shared across the orbit. *)
