(** Incremental view maintenance (DRed, delete-and-rederive) — delta-driven,
    over the compiled-plan layer, for stratified programs.

    Given a stratified program, a database, its materialised model and an
    update batch (EDB facts to add and/or remove), maintenance avoids
    recomputing from scratch.  Strata are processed lowest first; within a
    stratum the per-predicate deltas of the levels below (the EDB changes,
    extended with each completed stratum's own differences) drive three
    phases:

    + {e over-delete}: delta-specialized rule variants seeded from the
      deleted lower facts (and from {e added} facts read through flipped
      negated literals — an addition kills derivations only through
      negation) transitively remove every materialised fact with an
      affected derivation, chasing within the stratum against the old
      valuation;
    + {e re-derive}: each rule is augmented with its own head as a
      prepended positive literal resolved to the overdeleted facts
      ([Delta 0]), so surviving alternative derivations put facts back with
      work driven by the deletion, not the relation; semi-naive evaluation
      ({!Saturate.run_delta}) continues from what came back;
    + {e insert}: the mirror-image triggers seed from the added facts
      (and from removed facts under negation) and semi-naive continues from
      the genuinely fresh derivations.  Additions that grow the universe
      additionally re-apply the non-range-restricted (enumerating) rules in
      full — the only rules that can derive from new constants alone.

    No grounding and no full per-rule application happens on the usual
    path: work per batch is proportional to the delta (the
    ["dred ..."] counters in {!Stats.field-extra} prove it).  The result
    equals recomputation on the new database — the test suite checks this
    against from-scratch saturation on random instances, update sequences
    and both storage backends. *)

type delta = {
  new_db : Relalg.Database.t;
  new_idb : Idb.t;
  overdeleted : int;  (** Facts removed by over-deletion. *)
  rederived : int;
      (** Facts added back or newly derived (re-derivation and insertion
          phases together). *)
}

val apply :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?who:string ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  current:Idb.t ->
  additions:(string * Relalg.Tuple.t) list ->
  removals:(string * Relalg.Tuple.t) list ->
  unit ->
  delta
(** [apply p db ~current ~additions ~removals ()] maintains [current] —
    which must be the stratified model of [p] on [db] — under one update
    batch.  Removals are applied before additions; a fact both removed and
    re-added survives.  Duplicate facts in a batch are collapsed; an
    addition already present is a no-op.  [cache], when given, shares
    compiled plans across batches (a long-lived server passes one);
    [engine]/[pool]/[grain] select the engine for the semi-naive
    continuations.  [who] prefixes error messages (defaults to
    ["Dred.apply"]).
    @raise Invalid_argument if the program is not stratifiable, or a fact
    names an IDB predicate, disagrees with the known arity, or (for a
    removal) is absent from the database. *)

val delete_facts :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  current:Idb.t ->
  removals:(string * Relalg.Tuple.t) list ->
  delta
(** [apply] with no additions (errors prefixed ["Dred.delete_facts"]). *)

val insert_facts :
  Datalog.Ast.program ->
  Relalg.Database.t ->
  current:Idb.t ->
  additions:(string * Relalg.Tuple.t) list ->
  delta
(** [apply] with no removals (errors prefixed ["Dred.insert_facts"]).
    Constants new to the universe are admitted. *)
