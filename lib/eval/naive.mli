(** Standard least-fixpoint semantics for positive DATALOG programs.

    For a program without negation or inequality the operator Theta is
    monotone, so a least fixpoint exists (Tarski) and is reached by
    iterating Theta from the empty valuation (Section 2).  This module is
    the textbook bottom-up evaluation; the inflationary semantics of
    Section 4 coincides with it on positive programs, which the test suite
    checks extensively. *)

val least_fixpoint :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t
(** @raise Invalid_argument if the program uses negation or inequality, or
    has inconsistent arities.  Default engine: [`Seminaive]; [pool] and
    [grain] only matter under [`Parallel]. *)

val least_fixpoint_trace :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Saturate.trace
(** Same, keeping the per-stage deltas. *)
