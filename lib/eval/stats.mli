(** Evaluation statistics.

    A mutable record threaded (optionally) through the engine and every
    semantics: one value accumulates counters across a whole evaluation —
    fixpoint iterations, rule applications, tuples derived, plan-cache and
    join-index behaviour, and wall-clock time per named stage.  Parallel
    rule applications accumulate into per-task records that are merged at
    the iteration barrier, so counters stay exact under the [`Parallel]
    engine. *)

type t = {
  mutable iterations : int;
      (** Fixpoint stages executed (across all strata / alternations). *)
  mutable rule_applications : int;
      (** Plan executions (a semi-naive stage counts one per
          (rule, delta-position) pair). *)
  mutable tuples_derived : int;
      (** Head tuples emitted by rule applications, before dedup against
          the accumulated valuation. *)
  mutable tuples_allocated : int;
      (** Head tuples that were genuinely fresh in their rule's bulk
          accumulator — [tuples_derived] minus within-rule duplicates. *)
  mutable bulk_builds : int;
      (** Bulk finalisations of a streaming accumulator into a relation
          (one per rule application). *)
  plan : Planlib.Plan.counters;
      (** The plan layer's counter block: plan compiles and cache hits,
          index hits/builds, full scans, bucket probes and universe
          enumerations — see {!Planlib.Plan.counters}. *)
  mutable morsels : int;
      (** Morsels executed by sharded (intra-rule parallel) plan runs —
          0 whenever evaluation never took the sharded path. *)
  mutable steals : int;
      (** Steal-half operations between shard participants (0 with a
          single participant: nobody to steal from). *)
  mutable max_shard_skew : int;
      (** Worst per-barrier imbalance seen: max - min morsels executed
          across the participants of one sharded run (0 with a single
          participant).  Merged with [max], not [+]. *)
  mutable merge_ns : int;
      (** Nanoseconds spent in sharded barrier merges (per-shard
          accumulator concatenation + the final relation build), summed
          over every sharded rule application. *)
  mutable stripe_locks : int;
      (** Store stripe-lock acquisitions, harvested process-cumulative
          from {!Relalg.Store.contention} by {!harvest_contention}. *)
  mutable intern_hits : int;
      (** Per-domain intern-cache hits (all domains), harvested. *)
  mutable intern_misses : int;
      (** Per-domain intern-cache misses (all domains), harvested. *)
  mutable partition_skew : int;
      (** Max minus min store stripe cardinality, harvested (0 when the
          store runs a single stripe). *)
  mutable stages : (string * float) list;
      (** Wall time per named stage, most recent first. *)
  mutable wall : float;  (** Total wall-clock seconds recorded. *)
  mutable extra : (string * int) list;
      (** Free-form named counters appended to the report — the CLI puts
          the SAT search-layer counters ({!Satlib.Sat_stats.snapshot})
          here.  Empty by default, so the core counter block is stable. *)
}

val create : unit -> t
(** All counters zero. *)

val merge_into : t -> src:t -> unit
(** Adds [src]'s counters into the first argument (used at parallel
    barriers). *)

val bump_extra : t -> string -> int -> unit
(** [bump_extra s name n] adds [n] to the free-form counter [name] in
    {!field-extra}, creating it at [n] on first use (insertion order is
    preserved in the report).  The incremental-maintenance layer counts
    its delta-scoped work here — the proof that no full re-ground happens
    per update batch — without disturbing the stable core block. *)

val harvest_contention : t -> unit
(** Copies the packed store's process-cumulative contention counters
    (stripe locks, per-domain intern-cache hits/misses, partition skew)
    into the record.  Called once at report sites; {!pp} prints the
    contention block only when something non-zero was harvested (or
    {!field-merge_ns} accumulated), so tree-backend runs keep the seed
    report shape. *)

val record_stage : t -> string -> float -> unit
(** [record_stage s name dt] logs [dt] seconds against [name] and adds it
    to {!field-wall}. *)

val timed : t option -> string -> (unit -> 'a) -> 'a
(** [timed (Some s) name f] runs [f], recording its wall time as a stage;
    [timed None name f] is just [f ()]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering (the CLI's [--stats] output). *)
