module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Database = Relalg.Database
module Plan = Planlib.Plan
module Snapfile = Snapshotlib.Snapshot

(* The semantics tag stored in (and demanded of) snapshot files: the serve
   layer materialises the stratified model only. *)
let semantics = "stratified"

type update_report = {
  inserted : int;
  deleted : int;
  overdeleted : int;
  rederived : int;
}

type counters = {
  batches : int;
  inserted : int;
  deleted : int;
  overdeleted : int;
  rederived : int;
  queries : int;
  cache_hits : int;
  cache_misses : int;
}

type t = {
  program : Ast.program;
  engine : Saturate.engine option;
  planner : Engine.planner option;
  indexing : Engine.indexing option;
  storage : Relation.storage option;
  pool : Negdl_util.Domain_pool.t option;
  grain : Engine.grain option;
  stats : Stats.t;
  cache : Planlib.Cache.t;  (** Compiled plans shared across all batches. *)
  mutable db : Database.t;
  mutable idb : Idb.t;
  mutable version : int;
      (** Bumped on every applied update; query-cache entries are valid
          only for the version they were computed at. *)
  query_cache : (string, int * Relation.t) Hashtbl.t;
  mutable c : counters;
}

let zero_counters =
  {
    batches = 0;
    inserted = 0;
    deleted = 0;
    overdeleted = 0;
    rederived = 0;
    queries = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let create ?engine ?planner ?indexing ?storage ?pool ?grain ?stats program db
    =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let cache = Planlib.Cache.create () in
  match
    Stratified.eval ?engine ?planner ~cache ?indexing ?storage ~stats ?pool
      ?grain program db
  with
  | Error e -> Error (Stratified.error_to_string e)
  | Ok idb ->
    Ok
      {
        program;
        engine;
        planner;
        indexing;
        storage;
        pool;
        grain;
        stats;
        cache;
        db;
        idb;
        version = 0;
        query_cache = Hashtbl.create 64;
        c = zero_counters;
      }

let database t = t.db
let snapshot t = t.idb
let version t = t.version
let counters t = t.c
let stats t = t.stats

(* --- snapshots ---------------------------------------------------------- *)

let snapshot_to t path =
  (* Pin the published immutable pair once: the writer streams from it
     while the update loop keeps installing new versions. *)
  let db = t.db and idb = t.idb in
  match
    Snapfile.capture
      ~overrides:(Planlib.Cache.export_overrides t.cache)
      ~program:t.program ~semantics ~db (Idb.bindings idb)
  with
  | Error e -> Error (Snapfile.error_to_string e)
  | Ok image -> (
    match Snapfile.write_file path image with
    | Error e -> Error (Snapfile.error_to_string e)
    | Ok bytes -> Ok bytes)

(* Model reconstruction shared by [restore_from] and [create_restored]:
   fails closed (program/semantics fingerprints, two-valuedness, schema
   arities) before anything is installed. *)
let model_of_image ?storage program image =
  match Snapfile.check_program image ~program ~semantics with
  | Error e -> Error (Snapfile.error_to_string e)
  | Ok () -> (
    match Snapfile.restore ?storage image with
    | Error e -> Error (Snapfile.error_to_string e)
    | Ok r ->
      if r.Snapfile.r_unknown <> [] then
        Error "snapshot holds a three-valued model; serve is two-valued"
      else (
        match
          List.fold_left
            (fun idb (name, rel) -> Idb.set idb name rel)
            (Idb.of_program program) r.Snapfile.r_idb
        with
        | exception Invalid_argument m -> Error ("snapshot: " ^ m)
        | idb -> Ok (r.Snapfile.r_db, idb, r.Snapfile.r_seeds)))

let restore_from t path =
  match Snapfile.read_file path with
  | Error e -> Error (Snapfile.error_to_string e)
  | Ok image -> (
    match model_of_image ?storage:t.storage t.program image with
    | Error e -> Error e
    | Ok (db, idb, seeds) ->
      t.db <- db;
      t.idb <- idb;
      (* Reset to version 0 with the result cache emptied: entries tagged
         with pre-restore versions must not collide with the restarted
         version counter. *)
      Hashtbl.reset t.query_cache;
      t.version <- 0;
      Planlib.Cache.seed_overrides t.cache seeds;
      Ok ())

let create_restored ?engine ?planner ?indexing ?storage ?pool ?grain ?stats
    program image =
  match Datalog.Stratify.stratify program with
  | Datalog.Stratify.Not_stratifiable { offending = p, q } ->
    Error
      (Printf.sprintf "program not stratifiable: %s depends negatively on %s"
         p q)
  | Datalog.Stratify.Not_limit_stratifiable { pred; rule } ->
    Error (Datalog.Stratify.limit_error_to_string ~pred ~rule)
  | Datalog.Stratify.Stratified _ -> (
    match model_of_image ?storage program image with
    | Error e -> Error e
    | Ok (db, idb, seeds) ->
      let stats = match stats with Some s -> s | None -> Stats.create () in
      let cache = Planlib.Cache.create () in
      Planlib.Cache.seed_overrides cache seeds;
      Ok
        {
          program;
          engine;
          planner;
          indexing;
          storage;
          pool;
          grain;
          stats;
          cache;
          db;
          idb;
          version = 0;
          query_cache = Hashtbl.create 64;
          c = zero_counters;
        })

(* --- updates ------------------------------------------------------------ *)

let update t ~additions ~removals =
  match
    Dred.apply ?engine:t.engine ?planner:t.planner ~cache:t.cache
      ?indexing:t.indexing ?storage:t.storage ~stats:t.stats ?pool:t.pool
      ?grain:t.grain ~who:"update" t.program t.db ~current:t.idb ~additions
      ~removals ()
  with
  | exception Invalid_argument msg -> Error msg
  | delta ->
    let inserted =
      List.length
        (List.filter
           (fun (pred, tuple) ->
             Database.mem_fact pred tuple delta.Dred.new_db
             && not (Database.mem_fact pred tuple t.db))
           additions)
    in
    let deleted =
      List.length
        (List.filter
           (fun (pred, tuple) ->
             not (Database.mem_fact pred tuple delta.Dred.new_db))
           removals)
    in
    t.db <- delta.Dred.new_db;
    t.idb <- delta.Dred.new_idb;
    (* Readers race only against this bump: the published [db]/[idb]
       values are immutable, so a query computed against the previous
       snapshot is simply served from (or cached for) the old version. *)
    t.version <- t.version + 1;
    t.c <-
      {
        t.c with
        batches = t.c.batches + 1;
        inserted = t.c.inserted + inserted;
        deleted = t.c.deleted + deleted;
        overdeleted = t.c.overdeleted + delta.Dred.overdeleted;
        rederived = t.c.rederived + delta.Dred.rederived;
      };
    Ok
      {
        inserted;
        deleted;
        overdeleted = delta.Dred.overdeleted;
        rederived = delta.Dred.rederived;
      }

let insert t additions = update t ~additions ~removals:[]
let delete t removals = update t ~additions:[] ~removals

(* --- queries ------------------------------------------------------------ *)

let canonical atom = Format.asprintf "%a" Datalog.Pretty.pp_atom atom

(* Pure snapshot read: IDB predicates from the materialised model, EDB
   from the database.  Safe to run on any domain — both structures are
   immutable values. *)
let eval_query ~db ~idb (atom : Ast.atom) =
  let rel =
    if Idb.mem idb atom.Ast.pred then Some (Idb.get idb atom.Ast.pred)
    else Database.relation atom.Ast.pred db
  in
  match rel with
  | None -> Error (Printf.sprintf "unknown predicate %s" atom.Ast.pred)
  | Some rel -> Query.select rel ~query:atom

let bump_queries t n = t.c <- { t.c with queries = t.c.queries + n }
let bump_hits t = t.c <- { t.c with cache_hits = t.c.cache_hits + 1 }
let bump_misses t = t.c <- { t.c with cache_misses = t.c.cache_misses + 1 }

let cached t key =
  match Hashtbl.find_opt t.query_cache key with
  | Some (v, rel) when v = t.version -> Some rel
  | _ -> None

let query t atom =
  bump_queries t 1;
  let key = canonical atom in
  match cached t key with
  | Some rel ->
    bump_hits t;
    Ok rel
  | None -> (
    bump_misses t;
    match eval_query ~db:t.db ~idb:t.idb atom with
    | Ok rel ->
      Hashtbl.replace t.query_cache key (t.version, rel);
      Ok rel
    | Error _ as e -> e)

let query_all t atoms =
  match atoms with
  | [] -> []
  | [ atom ] -> [ query t atom ]
  | _ ->
    bump_queries t (List.length atoms);
    (* Pin the snapshot once: every query of the batch reads the same
       immutable db/idb pair, fanned across the domain pool. *)
    let db = t.db and idb = t.idb and v = t.version in
    let keyed = List.map (fun a -> (a, canonical a)) atoms in
    let misses =
      List.fold_left
        (fun acc (a, k) ->
          if cached t k <> None || List.mem_assoc k acc then acc
          else (k, a) :: acc)
        [] keyed
      |> List.rev
    in
    List.iter (fun _ -> bump_misses t) misses;
    let pool =
      match t.pool with
      | Some p -> p
      | None -> Negdl_util.Domain_pool.default ()
    in
    let computed =
      Negdl_util.Domain_pool.run pool
        (List.map (fun (_, a) () -> eval_query ~db ~idb a) misses)
    in
    List.iter2
      (fun (k, _) result ->
        match result with
        | Ok rel -> Hashtbl.replace t.query_cache k (v, rel)
        | Error _ -> ())
      misses computed;
    List.map
      (fun (a, k) ->
        match cached t k with
        | Some rel ->
          bump_hits t;
          Ok rel
        | None -> eval_query ~db ~idb a)
      keyed

(* --- the line protocol -------------------------------------------------- *)

type response = Reply of string list | Quit | Shutdown

let split_command line =
  match String.index_opt line ' ' with
  | None -> (String.lowercase_ascii line, "")
  | Some i ->
    ( String.lowercase_ascii (String.sub line 0 i),
      String.trim (String.sub line i (String.length line - i)) )

(* Facts arrive in the textual fact format ([e(a, b). e(b, c).]); new
   constants enter the universe with their facts.  A bare [#universe]
   declaration is rejected: the incremental layer tracks universe growth
   through the facts of a batch. *)
let parse_facts rest =
  if String.trim rest = "" then Error "no facts given"
  else
    match Database.parse rest with
    | Error e -> Error e
    | Ok batch ->
      let facts =
        List.concat_map
          (fun (pred, rel) ->
            List.rev
              (Relation.fold (fun tuple acc -> (pred, tuple) :: acc) rel []))
          (Database.relations batch)
      in
      let in_facts sym =
        List.exists (fun (_, tuple) -> List.mem sym (Tuple.to_list tuple)) facts
      in
      if List.for_all in_facts (Database.universe batch) then Ok facts
      else
        Error
          "#universe is not supported over the protocol; new constants \
           enter with their facts"

let parse_goal s =
  let s = String.trim s in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '.' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  if String.trim s = "" then Error "empty query"
  else
    match Parser.parse_rule (String.trim s ^ ".") with
    | Ok { Ast.head; body = [] } -> Ok head
    | Ok _ -> Error "a query is a single atom, e.g. s(v0, Y)"
    | Error e -> Error e

let extra_counter t name =
  match List.assoc_opt name t.stats.Stats.extra with Some n -> n | None -> 0

let stats_lines t =
  let edb =
    List.fold_left
      (fun acc (_, rel) -> acc + Relation.cardinal rel)
      0
      (Database.relations t.db)
  in
  [
    Printf.sprintf "facts: edb=%d idb=%d universe=%d version=%d" edb
      (Idb.total_cardinal t.idb)
      (Database.universe_size t.db)
      t.version;
    Printf.sprintf
      "updates: batches=%d inserted=%d deleted=%d overdeleted=%d \
       rederived=%d"
      t.c.batches t.c.inserted t.c.deleted t.c.overdeleted t.c.rederived;
    Printf.sprintf "queries: served=%d cache_hits=%d cache_misses=%d"
      t.c.queries t.c.cache_hits t.c.cache_misses;
    Printf.sprintf "plans: cached=%d compiles=%d cache_hits=%d replans=%d"
      (Planlib.Cache.cardinal t.cache)
      t.stats.Stats.plan.Plan.plan_compiles
      t.stats.Stats.plan.Plan.plan_cache_hits
      t.stats.Stats.plan.Plan.plan_replans;
    Printf.sprintf
      "work: rule_applications=%d delta_applications=%d \
       putback_applications=%d full_applications=%d"
      t.stats.Stats.rule_applications
      (extra_counter t "dred delta applications")
      (extra_counter t "dred putback applications")
      (extra_counter t "dred full applications");
  ]
  @
  (* Store contention, cumulative like every other counter here; omitted
     entirely (tree backend, untouched store) rather than printed as
     zeros. *)
  let c = Relalg.Store.contention () in
  if
    c.Relalg.Store.stripe_locks + c.Relalg.Store.cache_hits
    + c.Relalg.Store.cache_misses + c.Relalg.Store.partition_skew
    = 0
  then []
  else
    [
      Printf.sprintf
        "contention: stripe_locks=%d cache_hits=%d cache_misses=%d \
         partition_skew=%d"
        c.Relalg.Store.stripe_locks c.Relalg.Store.cache_hits
        c.Relalg.Store.cache_misses c.Relalg.Store.partition_skew;
    ]

let handle_line t line =
  let line = String.trim line in
  if line = "" || line.[0] = '%' then Reply []
  else
    let cmd, rest = split_command line in
    match cmd with
    | "quit" -> Quit
    | "shutdown" -> Shutdown
    | "stats" -> Reply (stats_lines t)
    | "insert" | "delete" -> (
      match parse_facts rest with
      | Error e -> Reply [ "error: " ^ e ]
      | Ok facts -> (
        let result =
          if cmd = "insert" then insert t facts else delete t facts
        in
        match result with
        | Error e -> Reply [ "error: " ^ e ]
        | Ok r ->
          Reply
            [
              (if cmd = "insert" then
                 Printf.sprintf "ok inserted=%d overdeleted=%d derived=%d"
                   r.inserted r.overdeleted r.rederived
               else
                 Printf.sprintf "ok deleted=%d overdeleted=%d rederived=%d"
                   r.deleted r.overdeleted r.rederived);
            ]))
    | "query" ->
      (* Multiple atoms separated by ';' are answered as one batch —
         cache misses fan concurrently over the pool against one pinned
         snapshot. *)
      let goals = List.map parse_goal (String.split_on_char ';' rest) in
      let atoms =
        List.filter_map (function Ok a -> Some a | Error _ -> None) goals
      in
      let results = ref (query_all t atoms) in
      let next () =
        match !results with
        | r :: rest ->
          results := rest;
          r
        | [] -> assert false
      in
      Reply
        (List.map
           (function
             | Error e -> "error: " ^ e
             | Ok _ -> (
               match next () with
               | Ok rel ->
                 Format.asprintf "%a %% %d answer(s)" Relation.pp rel
                   (Relation.cardinal rel)
               | Error e -> "error: " ^ e))
           goals)
    | "snapshot" -> (
      if rest = "" then Reply [ "error: usage: snapshot <file>" ]
      else
        match snapshot_to t rest with
        | Ok bytes -> Reply [ Printf.sprintf "ok bytes=%d" bytes ]
        | Error e -> Reply [ "error: " ^ e ])
    | "restore" -> (
      if rest = "" then Reply [ "error: usage: restore <file>" ]
      else
        match restore_from t rest with
        | Ok () -> Reply [ "ok version=0" ]
        | Error e -> Reply [ "error: " ^ e ])
    | _ ->
      Reply
        [
          Printf.sprintf
            "error: unknown command '%s' (insert, delete, query, stats, \
             snapshot, restore, quit, shutdown)"
            cmd;
        ]

(* --- write batching ------------------------------------------------------ *)

(* Classify a line as a write command with parsed facts, without applying
   it.  Anything else — including a write line whose facts fail to parse —
   goes through [handle_line] one at a time. *)
let classify_write line =
  let line = String.trim line in
  if line = "" || line.[0] = '%' then None
  else
    let cmd, rest = split_command line in
    match cmd with
    | "insert" | "delete" -> (
      match parse_facts rest with
      | Ok facts -> Some (cmd, facts)
      | Error _ -> None)
    | _ -> None

let write_reply ~cmd (r : update_report) =
  if cmd = "insert" then
    Printf.sprintf "ok inserted=%d overdeleted=%d derived=%d" r.inserted
      r.overdeleted r.rederived
  else
    Printf.sprintf "ok deleted=%d overdeleted=%d rederived=%d" r.deleted
      r.overdeleted r.rederived

let handle_batch t lines =
  (* A maximal run of consecutive same-command write lines coalesces into
     one DRed update: one overdeletion/rederivation pass for the whole run
     instead of one per line.  The run's first line answers with the
     combined report (the exact format [handle_line] gives a single line —
     a run of one is byte-identical), the remaining lines acknowledge
     their fate; any other line flushes the run and is handled alone. *)
  let flush run acc =
    match run with
    | None -> acc
    | Some (cmd, rev_fact_lists) ->
      let k = List.length rev_fact_lists in
      let facts = List.concat (List.rev rev_fact_lists) in
      let first, later =
        match if cmd = "insert" then insert t facts else delete t facts with
        | Ok r -> (Reply [ write_reply ~cmd r ], Reply [ "ok coalesced" ])
        | Error e -> (Reply [ "error: " ^ e ], Reply [ "error: coalesced" ])
      in
      let rec push n acc = if n = 0 then acc else push (n - 1) (later :: acc) in
      push (k - 1) (first :: acc)
  in
  let rec go run acc = function
    | [] -> List.rev (flush run acc)
    | line :: rest -> (
      match classify_write line with
      | Some (cmd, facts) -> (
        match run with
        | Some (c, fls) when c = cmd -> go (Some (c, facts :: fls)) acc rest
        | _ -> go (Some (cmd, [ facts ])) (flush run acc) rest)
      | None -> (
        let acc = flush run acc in
        match handle_line t line with
        | Reply _ as r -> go None (r :: acc) rest
        | (Quit | Shutdown) as r -> List.rev (r :: acc)))
  in
  go None [] lines
