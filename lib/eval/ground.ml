module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Relation = Relalg.Relation

type gatom = {
  pred : string;
  tuple : Tuple.t;
}

let compare_gatom a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Tuple.compare a.tuple b.tuple

let gatom_to_string a = Printf.sprintf "%s%s" a.pred (Tuple.to_string a.tuple)

type grule = {
  head : gatom;
  pos : gatom list;
  neg : gatom list;
}

module GMap = Map.Make (struct
  type t = gatom

  let compare = compare_gatom
end)

type t = {
  schema : Relalg.Schema.t;  (* IDB schema *)
  atoms : gatom list;
  rules : grule list;
  by_head : grule list GMap.t;
}

(* A half-instantiated rule: variables are bound one at a time, in an order
   that follows the body so positive EDB literals prune early. *)

let variable_order (r : Datalog.Ast.rule) =
  let vars = ref [] in
  let see = function
    | Datalog.Ast.Var x -> if not (List.mem x !vars) then vars := x :: !vars
    | Datalog.Ast.Const _ -> ()
  in
  let see_lit = function
    | Datalog.Ast.Pos a | Datalog.Ast.Neg a -> List.iter see a.args
    | Datalog.Ast.Eq (t1, t2) | Datalog.Ast.Neq (t1, t2) ->
      see t1;
      see t2
  in
  (* Positive EDB-ish atoms first (any positive atom, in fact), then the
     rest of the body, then the head. *)
  List.iter
    (function Datalog.Ast.Pos _ as l -> see_lit l | _ -> ())
    r.body;
  List.iter
    (function Datalog.Ast.Pos _ -> () | l -> see_lit l)
    r.body;
  List.iter see r.head.args;
  List.rev !vars

let ground ?(keep = []) (p : Datalog.Ast.program) db =
  let schema =
    match Datalog.Ast.idb_schema p with
    | Ok s -> s
    | Error msg -> invalid_arg ("Ground.ground: " ^ msg)
  in
  let idb_pred name = Relalg.Schema.mem name schema in
  let kept name = List.mem name keep && not (idb_pred name) in
  let universe = Array.of_list (Relalg.Database.universe db) in
  let raw_rules = ref [] in
  (* Each rule is compiled once: every decidable (non-IDB) literal becomes a
     closure over a variable-indexed environment array, pre-resolved to its
     database relation and scheduled at the binding level of its last
     variable.  The enumeration then pays one membership probe per literal
     per candidate — no per-candidate hashtable traffic, relation lookups or
     list allocation. *)
  let instantiate (r : Datalog.Ast.rule) =
    let order = Array.of_list (variable_order r) in
    let nvars = Array.length order in
    let var_index x =
      let rec find i = if order.(i) = x then i else find (i + 1) in
      find 0
    in
    let env = Array.make (max nvars 1) (Symbol.unsafe_of_id 0) in
    let compile_term = function
      | Datalog.Ast.Const c -> `Cst c
      | Datalog.Ast.Var x -> `Idx (var_index x)
    in
    let term_level = function `Cst _ -> -1 | `Idx i -> i in
    let value = function `Cst c -> c | `Idx i -> env.(i) in
    let atom_spec (a : Datalog.Ast.atom) =
      Array.of_list (List.map compile_term a.args)
    in
    let spec_level spec =
      Array.fold_left (fun acc t -> max acc (term_level t)) (-1) spec
    in
    (* checks: (level, closure) for decided literals; sym_pos/sym_neg: the
       atoms that stay symbolic in the instance (IDB, plus kept EDB
       positives, which are both checked and recorded). *)
    let checks = ref [] in
    let sym_pos = ref [] in
    let sym_neg = ref [] in
    let add_check level f = checks := (level, f) :: !checks in
    List.iter
      (fun (l : Datalog.Ast.literal) ->
        match l with
        | Datalog.Ast.Eq (t1, t2) ->
          let c1 = compile_term t1 and c2 = compile_term t2 in
          add_check
            (max (term_level c1) (term_level c2))
            (fun () -> Symbol.equal (value c1) (value c2))
        | Datalog.Ast.Neq (t1, t2) ->
          let c1 = compile_term t1 and c2 = compile_term t2 in
          add_check
            (max (term_level c1) (term_level c2))
            (fun () -> not (Symbol.equal (value c1) (value c2)))
        | Datalog.Ast.Pos a when idb_pred a.pred ->
          sym_pos := (a.pred, atom_spec a) :: !sym_pos
        | Datalog.Ast.Neg a when idb_pred a.pred ->
          sym_neg := (a.pred, atom_spec a) :: !sym_neg
        | Datalog.Ast.Pos a | Datalog.Ast.Neg a ->
          let spec = atom_spec a in
          let arity = Array.length spec in
          let rel = Relalg.Database.relation_or_empty ~arity a.pred db in
          let scratch = Array.make arity (Symbol.unsafe_of_id 0) in
          let probe () =
            for j = 0 to arity - 1 do
              scratch.(j) <- value spec.(j)
            done;
            (* The scratch tuple is only probed, never retained. *)
            Relation.mem (Tuple.unsafe_make scratch) rel
          in
          let level = spec_level spec in
          (match l with
          | Datalog.Ast.Pos _ ->
            add_check level probe;
            if kept a.pred then sym_pos := (a.pred, spec) :: !sym_pos
          | _ -> add_check level (fun () -> not (probe ()))))
      r.body;
    let checks_at = Array.make (max nvars 1) [] in
    let ground_checks = ref [] in
    List.iter
      (fun (level, f) ->
        if level < 0 then ground_checks := f :: !ground_checks
        else checks_at.(level) <- f :: checks_at.(level))
      !checks;
    let head_spec = (r.head.pred, atom_spec r.head) in
    let sym_pos = List.rev !sym_pos and sym_neg = List.rev !sym_neg in
    let mk_gatom (pred, spec) =
      { pred; tuple = Tuple.unsafe_make (Array.map value spec) }
    in
    let finish () =
      let dedup l = List.sort_uniq compare_gatom l in
      raw_rules :=
        {
          head = mk_gatom head_spec;
          pos = dedup (List.map mk_gatom sym_pos);
          neg = dedup (List.map mk_gatom sym_neg);
        }
        :: !raw_rules
    in
    let rec assign i =
      if i = nvars then finish ()
      else
        Array.iter
          (fun v ->
            env.(i) <- v;
            (* Prune: every literal decided by this binding must hold. *)
            if List.for_all (fun f -> f ()) checks_at.(i) then assign (i + 1))
          universe
    in
    if List.for_all (fun f -> f ()) !ground_checks then assign 0
  in
  List.iter instantiate p.rules;
  let rules = List.rev !raw_rules in
  (* Derivable atoms: heads of instances.  Simplify bodies against that
     set, dropping instances with an underivable positive subgoal and
     erasing vacuously-true negative subgoals; iterate to a fixed point
     since removing instances can shrink the derivable set. *)
  let rec simplify rules =
    let heads =
      List.fold_left (fun acc gr -> GMap.add gr.head () acc) GMap.empty rules
    in
    (* Kept EDB atoms were membership-checked at instantiation time, so
       they count as derivable here. *)
    let derivable a = GMap.mem a heads || kept a.pred in
    let changed = ref false in
    let rules' =
      List.filter_map
        (fun gr ->
          if List.for_all derivable gr.pos then begin
            let neg' = List.filter derivable gr.neg in
            if List.length neg' <> List.length gr.neg then changed := true;
            Some { gr with neg = neg' }
          end
          else begin
            changed := true;
            None
          end)
        rules
    in
    if !changed then simplify rules' else rules'
  in
  let rules = simplify rules in
  let by_head =
    List.fold_left
      (fun acc gr ->
        let existing = Option.value ~default:[] (GMap.find_opt gr.head acc) in
        GMap.add gr.head (gr :: existing) acc)
      GMap.empty rules
  in
  let atoms = List.map fst (GMap.bindings by_head) in
  { schema; atoms; rules; by_head }

let atoms g = g.atoms

let rules g = g.rules

let instances_for g a =
  Option.value ~default:[] (GMap.find_opt a g.by_head)

let atom_count g = List.length g.atoms

let rule_count g = List.length g.rules

let to_idb g facts =
  List.fold_left (fun idb a -> Idb.add_fact idb a.pred a.tuple) (Idb.empty g.schema)
    facts

let holds idb a =
  Idb.mem idb a.pred && Relation.mem a.tuple (Idb.get idb a.pred)

let apply g idb =
  List.fold_left
    (fun acc gr ->
      let fires =
        List.for_all (holds idb) gr.pos
        && not (List.exists (holds idb) gr.neg)
      in
      if fires then Idb.add_fact acc gr.head.pred gr.head.tuple else acc)
    (Idb.empty g.schema) g.rules

let pp ppf g =
  let pp_grule ppf gr =
    let lits =
      List.map gatom_to_string gr.pos
      @ List.map (fun a -> "!" ^ gatom_to_string a) gr.neg
    in
    match lits with
    | [] -> Format.fprintf ppf "%s." (gatom_to_string gr.head)
    | _ ->
      Format.fprintf ppf "%s :- %s." (gatom_to_string gr.head)
        (String.concat ", " lits)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_grule)
    g.rules
