module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Relation = Relalg.Relation

type gatom = {
  pred : string;
  tuple : Tuple.t;
}

let compare_gatom a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Tuple.compare a.tuple b.tuple

let gatom_to_string a = Printf.sprintf "%s%s" a.pred (Tuple.to_string a.tuple)

type grule = {
  head : gatom;
  pos : gatom list;
  neg : gatom list;
}

module GMap = Map.Make (struct
  type t = gatom

  let compare = compare_gatom
end)

type t = {
  schema : Relalg.Schema.t;  (* IDB schema *)
  atoms : gatom list;
  rules : grule list;
  by_head : grule list GMap.t;
}

(* The name under which a rule's instantiation pseudo-rule is planned; no
   parseable program can use it (predicates start with a lowercase letter
   or digit), so grounding plans never collide with evaluation plans in a
   shared cache. *)
let instances_pred = "$instances"

let ground ?(keep = []) ?planner ?cache (p : Datalog.Ast.program) db =
  let schema =
    match Datalog.Ast.idb_schema p with
    | Ok s -> s
    | Error msg -> invalid_arg ("Ground.ground: " ^ msg)
  in
  let idb_pred name = Relalg.Schema.mem name schema in
  let kept name = List.mem name keep && not (idb_pred name) in
  let universe = Relalg.Database.universe db in
  let universe_size = List.length universe in
  let base = Engine.database_source db in
  let resolver = Engine.uniform base in
  let raw_rules = ref [] in
  (* Grounding a rule is itself a conjunctive query — over the decidable
     (non-IDB) literals only, with {e every} rule variable projected out.
     Each rule therefore compiles to one pseudo-rule
     [$instances(X1, ..., Xn) :- decidable body] planned and executed by
     the shared plan layer: index probes over the database relations bind
     what they can, negated EDB literals and (in)equalities filter, and
     the compiler's head enumeration covers the variables no positive
     literal restricts.  The IDB atoms (plus kept EDB positives) stay
     symbolic and are materialised per emitted binding. *)
  let instantiate (r : Datalog.Ast.rule) =
    let vars = Datalog.Ast.rule_variables r in
    let slot_of =
      let index = Hashtbl.create 8 in
      List.iteri (fun i x -> Hashtbl.add index x i) vars;
      fun x -> Hashtbl.find index x
    in
    let spec_term = function
      | Datalog.Ast.Const c -> `Cst c
      | Datalog.Ast.Var x -> `Idx (slot_of x)
    in
    let atom_spec (a : Datalog.Ast.atom) =
      Array.of_list (List.map spec_term a.args)
    in
    let decidable = ref [] in
    let sym_pos = ref [] in
    let sym_neg = ref [] in
    List.iter
      (fun (l : Datalog.Ast.literal) ->
        match l with
        | Datalog.Ast.Eq _ | Datalog.Ast.Neq _ | Datalog.Ast.Leq _
        | Datalog.Ast.Geq _ | Datalog.Ast.Plus _ ->
          decidable := l :: !decidable
        | Datalog.Ast.Pos a when idb_pred a.pred ->
          sym_pos := (a.pred, atom_spec a) :: !sym_pos
        | Datalog.Ast.Neg a when idb_pred a.pred ->
          sym_neg := (a.pred, atom_spec a) :: !sym_neg
        | Datalog.Ast.Pos a ->
          (* Kept EDB positives are both checked and recorded. *)
          decidable := l :: !decidable;
          if kept a.pred then sym_pos := (a.pred, atom_spec a) :: !sym_pos
        | Datalog.Ast.Neg _ -> decidable := l :: !decidable)
      r.body;
    let pseudo =
      Datalog.Ast.rule
        (Datalog.Ast.atom instances_pred
           (List.map (fun x -> Datalog.Ast.Var x) vars))
        (List.rev !decidable)
    in
    let label =
      Printf.sprintf "ground %s" (Datalog.Pretty.rule_to_string r)
    in
    let sizes (occ : Planlib.Plan.occurrence) arity =
      Relation.cardinal ((resolver occ).Engine.find occ.pred arity)
    in
    let plan =
      match cache with
      | Some cache ->
        Planlib.Cache.find ?planner ~label cache ~sizes ~universe_size pseudo
      | None ->
        Planlib.Plan.compile ?planner ~label ~sizes ~universe_size pseudo
    in
    let head_spec = (r.head.pred, atom_spec r.head) in
    let sym_pos = List.rev !sym_pos and sym_neg = List.rev !sym_neg in
    Planlib.Plan.run ~resolver ~universe plan ~on_row:(fun env ->
        let value = function `Cst c -> c | `Idx i -> env.(i) in
        let mk_gatom (pred, spec) =
          { pred; tuple = Tuple.unsafe_make (Array.map value spec) }
        in
        let dedup l = List.sort_uniq compare_gatom l in
        raw_rules :=
          {
            head = mk_gatom head_spec;
            pos = dedup (List.map mk_gatom sym_pos);
            neg = dedup (List.map mk_gatom sym_neg);
          }
          :: !raw_rules)
  in
  List.iter instantiate p.rules;
  let rules = List.rev !raw_rules in
  (* Derivable atoms: heads of instances.  Simplify bodies against that
     set, dropping instances with an underivable positive subgoal and
     erasing vacuously-true negative subgoals; iterate to a fixed point
     since removing instances can shrink the derivable set. *)
  let rec simplify rules =
    let heads =
      List.fold_left (fun acc gr -> GMap.add gr.head () acc) GMap.empty rules
    in
    (* Kept EDB atoms were membership-checked at instantiation time, so
       they count as derivable here. *)
    let derivable a = GMap.mem a heads || kept a.pred in
    let changed = ref false in
    let rules' =
      List.filter_map
        (fun gr ->
          if List.for_all derivable gr.pos then begin
            let neg' = List.filter derivable gr.neg in
            if List.length neg' <> List.length gr.neg then changed := true;
            Some { gr with neg = neg' }
          end
          else begin
            changed := true;
            None
          end)
        rules
    in
    if !changed then simplify rules' else rules'
  in
  let rules = simplify rules in
  let by_head =
    List.fold_left
      (fun acc gr ->
        let existing = Option.value ~default:[] (GMap.find_opt gr.head acc) in
        GMap.add gr.head (gr :: existing) acc)
      GMap.empty rules
  in
  let atoms = List.map fst (GMap.bindings by_head) in
  { schema; atoms; rules; by_head }

let atoms g = g.atoms

let rules g = g.rules

let instances_for g a =
  Option.value ~default:[] (GMap.find_opt a g.by_head)

let atom_count g = List.length g.atoms

let rule_count g = List.length g.rules

let to_idb g facts =
  List.fold_left (fun idb a -> Idb.add_fact idb a.pred a.tuple) (Idb.empty g.schema)
    facts

let holds idb a =
  Idb.mem idb a.pred && Relation.mem a.tuple (Idb.get idb a.pred)

let apply g idb =
  List.fold_left
    (fun acc gr ->
      let fires =
        List.for_all (holds idb) gr.pos
        && not (List.exists (holds idb) gr.neg)
      in
      if fires then Idb.add_fact acc gr.head.pred gr.head.tuple else acc)
    (Idb.empty g.schema) g.rules

let pp ppf g =
  let pp_grule ppf gr =
    let lits =
      List.map gatom_to_string gr.pos
      @ List.map (fun a -> "!" ^ gatom_to_string a) gr.neg
    in
    match lits with
    | [] -> Format.fprintf ppf "%s." (gatom_to_string gr.head)
    | _ ->
      Format.fprintf ppf "%s :- %s." (gatom_to_string gr.head)
        (String.concat ", " lits)
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_grule)
    g.rules
