module Schema = Relalg.Schema

type error =
  | Not_stratifiable of { offending : string * string }
  | Not_limit_stratifiable of { pred : string; rule : Datalog.Ast.rule }

let error_to_string = function
  | Not_stratifiable { offending = p, q } ->
    Printf.sprintf
      "not stratifiable: %s depends negatively on %s inside a recursive \
       component"
      p q
  | Not_limit_stratifiable { pred; rule } ->
    Datalog.Stratify.limit_error_to_string ~pred ~rule

let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Stratified: " ^ msg)

let eval ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain p db
    =
  match Datalog.Stratify.stratify p with
  | Datalog.Stratify.Not_stratifiable { offending } ->
    Error (Not_stratifiable { offending })
  | Datalog.Stratify.Not_limit_stratifiable { pred; rule } ->
    Error (Not_limit_stratifiable { pred; rule })
  | Datalog.Stratify.Stratified strat ->
    let full_schema = idb_schema_exn p in
    (* One structurally-keyed cache across all strata: plans for a rule are
       compiled once even though each stratum passes its own rule list. *)
    let cache =
      match cache with Some c -> c | None -> Planlib.Cache.create ()
    in
    let universe = Relalg.Database.universe db in
    let limits =
      List.map
        (fun (l : Datalog.Ast.limit) -> (l.limit_pred, (l.kind, l.column)))
        p.Datalog.Ast.limits
    in
    let stratum_count = List.length strat.strata in
    let rec layer s accumulated =
      if s = stratum_count then accumulated
      else begin
        let rules = Datalog.Stratify.rules_of_stratum p strat s in
        let preds = List.nth strat.strata s in
        let schema =
          List.fold_left
            (fun acc name ->
              Schema.add name (Schema.arity_exn name full_schema) acc)
            Schema.empty preds
        in
        (* Lower strata are frozen into the base source. *)
        let base = Engine.layered db accumulated in
        let trace =
          Saturate.run ?engine ?planner ~cache ~limits ?indexing ?storage
            ?stats ?pool ?grain ~label:(Printf.sprintf "stratum %d" s)
            ~rules ~schema ~universe ~base ~neg:`Current
            ~init:(Idb.empty schema) ()
        in
        let accumulated =
          List.fold_left
            (fun acc name -> Idb.set acc name (Idb.get trace.result name))
            accumulated preds
        in
        layer (s + 1) accumulated
      end
    in
    Ok (layer 0 (Idb.empty full_schema))

let eval_exn ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain
    p db =
  match
    eval ?engine ?planner ?cache ?indexing ?storage ?stats ?pool ?grain p db
  with
  | Ok idb -> idb
  | Error e -> invalid_arg ("Stratified.eval: " ^ error_to_string e)
