(** Inflationary iteration to a fixed point — the shared machinery.

    Computes the limit of S{_0} = init, S{_{n+1}} = S{_n} union Theta(S{_n})
    for the given rules, where only the predicates of [schema] evolve;
    everything else reads from [base].  Because the sequence is increasing
    and bounded by |A|{^ k} per k-ary predicate, the iteration terminates in
    polynomially many stages (Section 4).

    Three engines compute the same limit:
    - [`Naive] re-derives everything each stage;
    - [`Seminaive] only explores derivations that touch a tuple added in
      the previous stage.  With negation this differential cut is still
      sound {e for inflationary iteration}: negated literals only lose
      truth as S grows, so a body newly satisfiable at stage n+1 must bind
      some positive evolving literal to a stage-n tuple;
    - [`Parallel] is semi-naive with each stage parallelised across OCaml 5
      domains (a shared {!Negdl_util.Domain_pool}) along whichever axis has
      the work: stages with at least as many runnable rule applications as
      pool participants fan whole applications out (one per domain), while
      stages with fewer — one heavy recursive rule is the common case —
      shard each application's driving input into morsels instead
      ({!Engine.run_plan_sharded}, unless the grain is [`Rules]).  Both
      merge deterministically at the stage barrier, so the computed limit
      is identical.

    The [neg] parameter selects where {e negated} occurrences of evolving
    predicates read: the current valuation (inflationary semantics) or a
    fixed valuation (the reduct step of the well-founded alternating
    fixpoint). *)

type engine = [ `Naive | `Seminaive | `Parallel ]

type trace = {
  result : Idb.t;
  deltas : Idb.t list;
      (** [deltas] has one entry per stage, stage 1 first: the tuples that
          entered at that stage.  Their union is [result] minus the initial
          valuation. *)
}

val stages : trace -> int

val stage_of : trace -> string -> Relalg.Tuple.t -> int option
(** 1-based stage at which a tuple entered, [None] if it never did. *)

val delta_positions :
  schema:Relalg.Schema.t -> Datalog.Ast.rule -> int list
(** Body positions of positive occurrences of evolving predicates — the
    delta-specialized plan variants semi-naive evaluation compiles (one
    per position); [negdl explain] uses this to show them. *)

val run :
  ?engine:engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?label:string ->
  rules:Datalog.Ast.rule list ->
  schema:Relalg.Schema.t ->
  universe:Relalg.Symbol.t list ->
  base:Engine.source ->
  neg:[ `Current | `Fixed of Engine.source ] ->
  init:Idb.t ->
  unit ->
  trace
(** Default engine: [`Seminaive]; default indexing: [`Cached]; default
    storage: {!Relalg.Relation.default_storage} (the derived relations are
    built in that backend); default planner:
    {!Planlib.Plan.default_planner}.  Each rule is compiled once per
    variant — the full application and one delta-specialized variant per
    positive evolving body position — into a {!Planlib.Plan.t} and reused
    across iterations; [cache], when given, additionally shares plans
    across saturations (the well-founded alternating fixpoint and the
    stratified layers pass one).  Plans are fetched in the coordinator
    before any parallel fan-out.  [pool] (default
    {!Negdl_util.Domain_pool.default}) and [grain] (default
    {!Engine.default_grain}) only matter under [`Parallel]: they pick the
    domains and the morsel size for intra-rule sharding.  [stats], when
    given, accumulates iteration/rule/index counters; if [label] is also
    given, the run's wall time is recorded as a stage under that name (the
    stratified evaluator labels each stratum, the inflationary evaluator
    the whole saturation).  [limits] — the program's limit declarations —
    switches every stage's union to {!Idb.tighten_union}: candidates for a
    declared limit relation land only when they strictly improve their
    group's bound, the stage delta is the changed-group delta, and plans
    for limit-head rules close with the aggregation steps. *)

val apply_once :
  ?parallel:bool ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  rules:Datalog.Ast.rule list ->
  schema:Relalg.Schema.t ->
  universe:Relalg.Symbol.t list ->
  base:Engine.source ->
  neg:[ `Current | `Fixed of Engine.source ] ->
  current:Idb.t ->
  unit ->
  Idb.t
(** A single full Theta application (no iteration): every rule applied once
    against [current], with evolving predicates resolved there and
    everything else in [base] — the building block {!Theta.apply} uses for
    its [~parallel] mode.  Under [parallel] the stage parallelises exactly
    like one {!run} stage (rule fan-out or intra-rule sharding). *)

val run_delta :
  ?engine:engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  ?label:string ->
  rules:Datalog.Ast.rule list ->
  schema:Relalg.Schema.t ->
  universe:Relalg.Symbol.t list ->
  base:Engine.source ->
  neg:[ `Current | `Fixed of Engine.source ] ->
  init:Idb.t ->
  delta:Idb.t ->
  unit ->
  trace
(** Semi-naive continuation seeded from a known delta: starts the delta
    chase at ([init], [delta]) — [init] must already contain [delta] —
    with {e no} full stage-1 application of the rules.  This is the
    incremental-maintenance entry point: after an update batch the caller
    knows exactly which tuples are new, so grounding work is proportional
    to the delta, not to the whole program ({!Dred}).  Sound whenever
    every derivation of a missing fact binds at least one positive
    evolving literal to a tuple outside [init] minus [delta] — in
    particular for continuing any inflationary iteration from a subset of
    its limit that contains all its non-delta consequences.  [`Naive]
    falls back to the same delta chase (there is no naive specialisation);
    an empty [delta] returns [init] unchanged without touching the pool or
    cache. *)
