type model = {
  true_facts : Idb.t;
  possible : Idb.t;
}

let unknown m = Idb.diff m.possible m.true_facts

let is_total m = Idb.is_empty (unknown m)

let holds idb (a : Ground.gatom) =
  Idb.mem idb a.Ground.pred
  && Relalg.Relation.mem a.Ground.tuple (Idb.get idb a.Ground.pred)

let eval_ground g =
  let schema = Idb.schema (Ground.to_idb g []) in
  let all = Ground.to_idb g (Ground.atoms g) in
  let step (t, p) =
    List.fold_left
      (fun (t', p') (gr : Ground.grule) ->
        let head = gr.Ground.head in
        let surely =
          List.for_all (holds t) gr.Ground.pos
          && not (List.exists (holds p) gr.Ground.neg)
        in
        let possibly =
          List.for_all (holds p) gr.Ground.pos
          && not (List.exists (holds t) gr.Ground.neg)
        in
        ( (if surely then Idb.add_fact t' head.Ground.pred head.Ground.tuple
           else t'),
          if possibly then Idb.add_fact p' head.Ground.pred head.Ground.tuple
          else p' ))
      (Idb.empty schema, Idb.empty schema)
      (Ground.rules g)
  in
  (* Knowledge-order iteration from (empty, everything): T climbs, P
     descends; both are bounded, so this terminates. *)
  let rec iterate t p =
    let t', p' = step (t, p) in
    if Idb.equal t t' && Idb.equal p p' then { true_facts = t; possible = p }
    else iterate t' p'
  in
  iterate (Idb.empty schema) all

let eval ?planner ?cache p db = eval_ground (Ground.ground ?planner ?cache p db)
