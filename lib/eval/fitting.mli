(** Kripke-Kleene (Fitting) semantics: the three-valued least fixpoint.

    The third classical deterministic semantics for negation, rounding out
    the comparison set (fixpoint / inflationary / stratified /
    well-founded).  The Fitting operator acts on partial interpretations
    (T, P) — facts known true, facts possibly true — by one simultaneous
    three-valued consequence step:

    - a head becomes {e true} when some instance has all positive subgoals
      in T and no negated subgoal in P;
    - a head stays {e possible} when some instance has all positive
      subgoals in P and no negated subgoal in T.

    Iterated from the least-informative interpretation (T = empty,
    P = every derivable atom), the operator is monotone in the knowledge
    order, so it reaches a least fixpoint: the Kripke-Kleene model.

    It is always {e at most} as decided as the well-founded model (KK-true
    is contained in WF-true and KK-false in WF-false); the canonical
    separation is the positive loop [p :- p], which Kripke-Kleene leaves
    unknown but the well-founded semantics makes false.  The test suite
    checks both facts. *)

type model = {
  true_facts : Idb.t;
  possible : Idb.t;  (** True or unknown. *)
}

val unknown : model -> Idb.t

val is_total : model -> bool

val eval :
  ?planner:Planlib.Plan.planner ->
  ?cache:Planlib.Cache.t ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  model
(** [planner] and [cache] control (and retain) the grounding's
    instantiation plans — see {!Ground.ground}. *)

val eval_ground : Ground.t -> model
(** Same, on an existing grounding. *)
