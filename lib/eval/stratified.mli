(** Stratified semantics (Chandra-Harel; Apt-Blair-Walker).

    Each stratum is evaluated to its least fixpoint in order, with negation
    allowed only on already-finished lower strata (and EDB relations).
    Defined only for stratifiable programs — the paper's Section 4 uses the
    6-rule distance program to show that, where both are defined, stratified
    and inflationary semantics genuinely differ. *)

type error =
  | Not_stratifiable of { offending : string * string }
  | Not_limit_stratifiable of { pred : string; rule : Datalog.Ast.rule }
      (** The limit-stratification side condition fails; see
          {!Datalog.Stratify.result}. *)

val error_to_string : error -> string

val eval :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  (Idb.t, error) result
(** [stats], when given, records one wall-time stage per stratum.  [pool]
    and [grain] are passed through to {!Saturate.run} and only matter under
    [`Parallel]. *)

val eval_exn :
  ?engine:Saturate.engine ->
  ?planner:Engine.planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  ?pool:Negdl_util.Domain_pool.t ->
  ?grain:Engine.grain ->
  Datalog.Ast.program ->
  Relalg.Database.t ->
  Idb.t
(** @raise Invalid_argument when the program is not stratifiable. *)
