module SMap = Map.Make (String)
module Relation = Relalg.Relation
module Schema = Relalg.Schema

type t = {
  schema : Schema.t;
  relations : Relation.t SMap.t;
}

let empty schema =
  let relations =
    List.fold_left
      (fun acc (name, arity) -> SMap.add name (Relation.empty arity) acc)
      SMap.empty (Schema.to_list schema)
  in
  { schema; relations }

let of_program p =
  match Datalog.Ast.idb_schema p with
  | Ok schema -> empty schema
  | Error msg -> invalid_arg ("Idb.of_program: " ^ msg)

let schema t = t.schema

let get t name =
  match SMap.find_opt name t.relations with
  | Some r -> r
  | None -> raise Not_found

let mem t name = SMap.mem name t.relations

let set t name r =
  (match Schema.arity name t.schema with
  | Some k when k <> Relation.arity r ->
    invalid_arg
      (Printf.sprintf "Idb.set: %s has arity %d, relation has arity %d" name k
         (Relation.arity r))
  | _ -> ());
  {
    schema = Schema.add name (Relation.arity r) t.schema;
    relations = SMap.add name r t.relations;
  }

let add_fact t name tuple =
  let current =
    match SMap.find_opt name t.relations with
    | Some r -> r
    | None -> Relation.empty (Relalg.Tuple.arity tuple)
  in
  set t name (Relation.add tuple current)

let bindings t = SMap.bindings t.relations

let merge_with op t1 t2 =
  let relations =
    SMap.union (fun _name r1 r2 -> Some (op r1 r2)) t1.relations t2.relations
  in
  { schema = Schema.union t1.schema t2.schema; relations }

let union = merge_with Relation.union

(* Limit-aware union: candidate tuples for a declared limit relation only
   land when they strictly improve their group's bound (replacing it), and
   the returned delta holds exactly the newly-dominant tuples — the
   changed-group delta that keeps semi-naive semi-naive.  Non-limit
   relations degrade to plain diff-then-union, so a program without limit
   declarations computes exactly what [diff]/[union] did. *)
let tighten_union ~limits current candidates =
  let rel_kind = function Datalog.Ast.Min -> `Min | Datalog.Ast.Max -> `Max in
  SMap.fold
    (fun name cand (next, delta) ->
      let cur =
        match SMap.find_opt name next.relations with
        | Some r -> r
        | None -> Relation.empty (Relation.arity cand)
      in
      match List.assoc_opt name limits with
      | Some (kind, col) ->
        let result, changed =
          Relation.tighten ~kind:(rel_kind kind) ~col cur cand
        in
        (set next name result, set delta name changed)
      | None ->
        let fresh = Relation.diff cand cur in
        (set next name (Relation.union cur fresh), set delta name fresh))
    candidates.relations
    (current, empty current.schema)

let diff t1 t2 =
  let relations =
    SMap.mapi
      (fun name r1 ->
        match SMap.find_opt name t2.relations with
        | Some r2 -> Relation.diff r1 r2
        | None -> r1)
      t1.relations
  in
  { t1 with relations }

let inter t1 t2 =
  let relations =
    SMap.mapi
      (fun name r1 ->
        match SMap.find_opt name t2.relations with
        | Some r2 -> Relation.inter r1 r2
        | None -> Relation.empty (Relation.arity r1))
      t1.relations
  in
  { t1 with relations }

let equal t1 t2 =
  let covered t t' =
    SMap.for_all
      (fun name r ->
        match SMap.find_opt name t'.relations with
        | Some r' -> Relation.equal r r'
        | None -> Relation.is_empty r)
      t.relations
  in
  covered t1 t2 && covered t2 t1

let fingerprint t =
  (* Canonical: empty relations are skipped, so valuations that [equal]
     identifies (missing = empty) fingerprint identically; the per-relation
     sum is iteration-order independent and the outer fold runs over the
     name-sorted map, so the combination is deterministic. *)
  SMap.fold
    (fun name r acc ->
      if Relation.is_empty r then acc
      else
        let h =
          Relation.fold (fun tu h -> h + Relalg.Tuple.hash tu) r 0
        in
        Hashtbl.hash (acc, name, h land max_int))
    t.relations 0

let subset t1 t2 =
  SMap.for_all
    (fun name r ->
      match SMap.find_opt name t2.relations with
      | Some r' -> Relation.subset r r'
      | None -> Relation.is_empty r)
    t1.relations

let is_empty t = SMap.for_all (fun _ r -> Relation.is_empty r) t.relations

let total_cardinal t =
  SMap.fold (fun _ r acc -> acc + Relation.cardinal r) t.relations 0

let restrict names t =
  let relations = SMap.filter (fun n _ -> List.mem n names) t.relations in
  let schema =
    List.fold_left
      (fun acc (n, r) -> Schema.add n (Relation.arity r) acc)
      Schema.empty (SMap.bindings relations)
  in
  { schema; relations }

let to_database t db =
  SMap.fold (fun name r db -> Relalg.Database.set_relation name r db)
    t.relations db

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (n, r) ->
         Format.fprintf ppf "%s = %a" n Relation.pp r))
    (bindings t)
