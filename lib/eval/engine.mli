(** The rule-evaluation engine — a consumer of {!Planlib} plans.

    Implements the paper's reading of a rule: all variables range over the
    universe of the database, with the variables that occur only in the body
    existentially quantified and the head collecting every witnessing
    binding.  Range restriction is {e not} assumed — variables not bound by
    any positive body literal are enumerated over the whole universe, which
    is what gives the toggle rule [t(Z) :- !q(U), !t(W)] its meaning.

    Since the plan layer was introduced the engine no longer plans joins
    itself: each rule is compiled (once, under the [`Static] planner) into
    a {!Planlib.Plan.t} and the hot loop executes plans.  The engine is
    parameterised by where each atom occurrence reads its relation, which
    lets every semantics in this library (simultaneous Theta, semi-naive
    deltas, stratified layers, the alternating fixpoint of the well-founded
    semantics) reuse one implementation. *)

type source = Planlib.Plan.source = {
  find : string -> int -> Relalg.Relation.t;
      (** [find pred arity]: current value of [pred]. *)
}

type occurrence = Planlib.Plan.occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;  (** Position of the literal in the rule body. *)
  pred : string;
}

type resolver = occurrence -> source
(** Decides, per atom occurrence, which source to read. *)

type indexing = Planlib.Plan.indexing
(** How joins locate matching tuples:
    - [`Cached] (default): through the relation's own memoized column
      indexes ({!Relalg.Relation.matching}) — built once per relation value
      and maintained incrementally as deltas are unioned in, so the hot
      fixpoint loop stops paying a per-call re-indexing tax;
    - [`Percall]: throwaway hash indexes rebuilt on every rule application
      (the pre-cache behaviour, kept as a benchmark baseline);
    - [`Scan]: no indexes at all, full scans (ablation). *)

type planner = Planlib.Plan.planner
(** Join-order planning policy — see {!Planlib.Plan.planner}.  The default
    is {!Planlib.Plan.default_planner}. *)

type grain = [ `Auto | `Fixed of int | `Rules ]
(** How the [`Parallel] engine splits work {e within} a rule when a stage
    has fewer runnable rule applications than domains:
    - [`Auto] (default): shard each plan's driving input into morsels of
      {!Planlib.Plan.auto_grain} tuples;
    - [`Fixed n]: morsels of exactly [n] driving tuples;
    - [`Rules]: never shard — whole-rule fan-out only (the pre-morsel
      behaviour, kept as the bench baseline). *)

val grain_of_string : string -> (grain, string) result
(** Accepts ["auto"], ["rules"], or a positive integer. *)

val grain_to_string : grain -> string

val pp_grain : Format.formatter -> grain -> unit

val set_default_grain : grain -> unit
(** Sets the grain used when no explicit [?grain] reaches the evaluator —
    the CLI's [--parallel-grain], like
    {!Planlib.Plan.set_default_planner}. *)

val default_grain : unit -> grain

val plan_rule :
  ?planner:planner ->
  ?cache:Planlib.Cache.t ->
  ?variant:Planlib.Plan.variant ->
  ?label:string ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  ?stats:Stats.t ->
  universe_size:int ->
  resolver:resolver ->
  Datalog.Ast.rule ->
  Planlib.Plan.t
(** The rule's plan, fetched from [cache] when given (compiled otherwise),
    with cardinalities for the cost model read through [resolver].  Fetch
    plans {e before} fanning applications across domains — the cache is not
    synchronised (see {!Saturate}).  [limits] (the program's limit
    declarations) makes plans for limit-head rules close with the
    aggregation steps — see {!Planlib.Plan.compile}. *)

val run_plan :
  ?indexing:indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  universe:Relalg.Symbol.t list ->
  resolver:resolver ->
  Planlib.Plan.t ->
  Relalg.Relation.t
(** Executes a plan: head tuples stream into a bulk accumulator
    ({!Relalg.Relation.builder}); the derived relation is built once, in
    the backend named by [storage] (default:
    {!Relalg.Relation.default_storage}).  [stats], when given, accumulates
    rule-application, derivation, accumulator and plan counters. *)

val run_plan_sharded :
  ?indexing:indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  pool:Negdl_util.Domain_pool.t ->
  grain:grain ->
  universe:Relalg.Symbol.t list ->
  resolver:resolver ->
  Planlib.Plan.t ->
  Relalg.Relation.t
(** Morsel-driven {!run_plan}: the plan's driving input is sharded over
    [pool] ({!Planlib.Plan.run_sharded}), each participant streams head
    tuples into its own accumulator, and the accumulators are merged in
    participant order ({!Relalg.Relation.builder_merge}) at the barrier —
    so the derived relation equals {!run_plan}'s whatever the steal
    schedule.  [stats] additionally collects the morsel / steal /
    shard-skew scheduling counters; per-shard plan counters are merged
    exactly at the barrier.  [grain] must be [`Auto] or [`Fixed]
    (@raise Invalid_argument on [`Rules] — that selects whole-rule
    fan-out, which is {!Saturate}'s job, not this function's). *)

val eval_rule :
  ?planner:planner ->
  ?cache:Planlib.Cache.t ->
  ?variant:Planlib.Plan.variant ->
  ?indexing:indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  universe:Relalg.Symbol.t list ->
  resolver:resolver ->
  Datalog.Ast.rule ->
  Relalg.Relation.t
(** {!plan_rule} followed by {!run_plan}: all head tuples derivable by the
    rule under the given sources. *)

val eval_rules :
  ?planner:planner ->
  ?cache:Planlib.Cache.t ->
  ?indexing:indexing ->
  ?storage:Relalg.Relation.storage ->
  ?stats:Stats.t ->
  universe:Relalg.Symbol.t list ->
  resolver:resolver ->
  schema:Relalg.Schema.t ->
  Datalog.Ast.rule list ->
  Idb.t
(** Union of {!eval_rule} over the rules, grouped by head predicate; the
    schema fixes the set and arities of the result's predicates. *)

val uniform : source -> resolver
(** Every occurrence reads the same source. *)

val database_source : Relalg.Database.t -> source
(** Missing relations read as empty. *)

val layered : Relalg.Database.t -> Idb.t -> source
(** IDB predicates read from the valuation, everything else from the
    database. *)
