let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Theta: " ^ msg)

let apply ?indexing ?storage ?stats p db s =
  let schema = idb_schema_exn p in
  let resolver = Engine.uniform (Engine.layered db s) in
  Engine.eval_rules ?indexing ?storage ?stats
    ~universe:(Relalg.Database.universe db) ~resolver ~schema
    p.Datalog.Ast.rules

let is_fixpoint p db s = Idb.equal (apply p db s) s

let inflate p db s = Idb.union s (apply p db s)

type iteration_outcome =
  | Reached_fixpoint of { fixpoint : Idb.t; steps : int }
  | Entered_cycle of { entry : int; period : int; states : Idb.t list }
  | Gave_up of { steps : int }

let iterate ?(max_steps = 10000) p db start =
  (* The orbit of a deterministic map on a finite space is a rho: store the
     states seen with their step index and stop at the first repeat. *)
  let rec loop seen current step =
    if step > max_steps then Gave_up { steps = step - 1 }
    else
      let next = apply p db current in
      if Idb.equal next current then
        Reached_fixpoint { fixpoint = current; steps = step - 1 }
      else
        match
          List.find_opt (fun (_, s) -> Idb.equal s next) seen
        with
        | Some (entry, _) ->
          let period = step - entry in
          let states =
            seen
            |> List.filter (fun (i, _) -> i >= entry)
            |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
            |> List.map snd
          in
          Entered_cycle { entry; period; states }
        | None -> loop ((step, next) :: seen) next (step + 1)
  in
  loop [ (0, start) ] start 1
