let idb_schema_exn p =
  match Datalog.Ast.idb_schema p with
  | Ok s -> s
  | Error msg -> invalid_arg ("Theta: " ^ msg)

let apply ?(parallel = false) ?pool ?grain ?planner ?cache ?indexing ?storage
    ?stats p db s =
  let schema = idb_schema_exn p in
  if parallel then
    (* Same semantics as the sequential path below — evolving predicates
       read [s], everything else the database — expressed through
       {!Saturate.apply_once} so the stage can fan across rules or shard
       within them.  Union with the empty valuation first so a caller
       valuation missing some IDB predicate still resolves (the layered
       source's database fallback, made explicit). *)
    let s = Idb.union (Idb.empty schema) s in
    Saturate.apply_once ~parallel:true ?pool ?grain ?planner ?cache ?indexing
      ?storage ?stats ~rules:p.Datalog.Ast.rules ~schema
      ~universe:(Relalg.Database.universe db)
      ~base:(Engine.database_source db) ~neg:`Current ~current:s ()
  else
    let resolver = Engine.uniform (Engine.layered db s) in
    Engine.eval_rules ?planner ?cache ?indexing ?storage ?stats
      ~universe:(Relalg.Database.universe db) ~resolver ~schema
      p.Datalog.Ast.rules

let is_fixpoint p db s = Idb.equal (apply p db s) s

let inflate p db s = Idb.union s (apply p db s)

type iteration_outcome =
  | Reached_fixpoint of { fixpoint : Idb.t; steps : int }
  | Entered_cycle of { entry : int; period : int; states : Idb.t list }
  | Gave_up of { steps : int }

let iterate ?(max_steps = 10000) ?parallel ?pool ?grain ?planner p db start =
  (* The orbit of a deterministic map on a finite space is a rho: store the
     states seen with their step index and stop at the first repeat.  The
     repeat test hashes each state's canonical fingerprint into buckets of
     (step, state) pairs, so a step costs one fingerprint plus [Idb.equal]
     against fingerprint collisions only — not an [Idb.equal] scan over the
     whole history, which made long orbits quadratic in both steps and
     state size.  Rule plans are shared across the whole orbit through one
     cache. *)
  let cache = Planlib.Cache.create () in
  let seen : (int, (int * Idb.t) list) Hashtbl.t = Hashtbl.create 97 in
  let remember step s =
    let fp = Idb.fingerprint s in
    Hashtbl.replace seen fp
      ((step, s) :: Option.value ~default:[] (Hashtbl.find_opt seen fp))
  in
  let find_seen s =
    match Hashtbl.find_opt seen (Idb.fingerprint s) with
    | None -> None
    | Some bucket -> List.find_opt (fun (_, s') -> Idb.equal s' s) bucket
  in
  remember 0 start;
  (* [history] keeps the orbit newest-first for cycle reconstruction. *)
  let rec loop history current step =
    if step > max_steps then Gave_up { steps = step - 1 }
    else
      let next = apply ?parallel ?pool ?grain ?planner ~cache p db current in
      if Idb.equal next current then
        Reached_fixpoint { fixpoint = current; steps = step - 1 }
      else
        match find_seen next with
        | Some (entry, _) ->
          let period = step - entry in
          let states =
            history
            |> List.filter (fun (i, _) -> i >= entry)
            |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
            |> List.map snd
          in
          Entered_cycle { entry; period; states }
        | None ->
          remember step next;
          loop ((step, next) :: history) next (step + 1)
  in
  loop [ (0, start) ] start 1
