module Relation = Relalg.Relation
module Plan = Planlib.Plan
module Plan_cache = Planlib.Cache

type source = Plan.source = { find : string -> int -> Relation.t }

type occurrence = Plan.occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;
  pred : string;
}

type resolver = occurrence -> source

type indexing = Plan.indexing

type planner = Plan.planner

type grain = [ `Auto | `Fixed of int | `Rules ]

let grain_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok `Auto
  | "rules" -> Ok `Rules
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (`Fixed n)
    | _ ->
      Error
        (Printf.sprintf
           "unknown grain %S (auto, rules, or a positive tuple count)" s))

let grain_to_string = function
  | `Auto -> "auto"
  | `Rules -> "rules"
  | `Fixed n -> string_of_int n

let pp_grain ppf g = Format.pp_print_string ppf (grain_to_string g)

(* The global default, ablatable like {!Planlib.Plan.set_default_planner};
   the CLI's [--parallel-grain] sets it. *)
let default_grain_cell : grain Atomic.t = Atomic.make `Auto

let set_default_grain g = Atomic.set default_grain_cell g

let default_grain () = Atomic.get default_grain_cell

(* Cardinalities for the cost model, read through the same resolver the
   plan will execute with — so a delta-variant plan sees the delta's
   (small) size at the redirected occurrence. *)
let resolver_sizes (resolver : resolver) occ arity =
  Relation.cardinal ((resolver occ).find occ.pred arity)

let plan_rule ?planner ?cache ?variant ?label ?(limits = []) ?stats
    ~universe_size ~resolver rule =
  let counters = Option.map (fun (s : Stats.t) -> s.Stats.plan) stats in
  let sizes occ arity = resolver_sizes resolver occ arity in
  match cache with
  | Some cache ->
    Plan_cache.find ?counters ?planner ?variant ?label ~limits cache ~sizes
      ~universe_size rule
  | None ->
    (match counters with
    | Some c -> c.Plan.plan_compiles <- c.Plan.plan_compiles + 1
    | None -> ());
    Plan.compile ?planner ?variant ?label ~limits ~sizes ~universe_size rule

let run_plan ?(indexing = `Cached) ?storage ?stats ~universe ~resolver plan =
  let counters = Option.map (fun (s : Stats.t) -> s.Stats.plan) stats in
  let arity = Array.length plan.Plan.head_args in
  (* Head tuples stream into a bulk accumulator; the relation (and its lazy
     indexes) is built once at the end instead of re-derived per [add]. *)
  let acc = Relation.builder ?storage arity in
  let emitted = ref 0 in
  let allocated = ref 0 in
  Plan.run ~indexing ?counters ~resolver ~universe plan ~on_row:(fun env ->
      incr emitted;
      if Relation.builder_add acc (Plan.head_tuple plan env) then
        incr allocated);
  (match stats with
  | Some s ->
    s.Stats.rule_applications <- s.Stats.rule_applications + 1;
    s.Stats.tuples_derived <- s.Stats.tuples_derived + !emitted;
    s.Stats.tuples_allocated <- s.Stats.tuples_allocated + !allocated;
    s.Stats.bulk_builds <- s.Stats.bulk_builds + 1
  | None -> ());
  Relation.build acc

(* Morsel-driven variant of {!run_plan}: the plan's driving input is
   sharded over [pool] and each participant streams rows into its own
   accumulator (and plan-counter shard), so the hot loop stays lock-free;
   the builders are merged in participant order at the barrier, which
   makes the result deterministic whatever the steal schedule did. *)
let run_plan_sharded ?(indexing = `Cached) ?storage ?stats ~pool ~grain
    ~universe ~resolver plan =
  let grain =
    match grain with
    | `Auto -> None
    | `Fixed n -> Some (max 1 n)
    | `Rules ->
      invalid_arg "Engine.run_plan_sharded: `Rules selects rule fan-out"
  in
  let arity = Array.length plan.Plan.head_args in
  let workers = Negdl_util.Domain_pool.size pool + 1 in
  let builders = Array.init workers (fun _ -> Relation.builder ?storage arity) in
  let emitted = Array.make workers 0 in
  let shards =
    Array.init workers (fun _ -> Option.map (fun _ -> Plan.counters ()) stats)
  in
  let report =
    Plan.run_sharded ~indexing
      ~counters:(fun p -> shards.(p))
      ~pool ?grain ~resolver ~universe plan
      ~on_row:(fun p env ->
        emitted.(p) <- emitted.(p) + 1;
        ignore (Relation.builder_add builders.(p) (Plan.head_tuple plan env)))
  in
  (* Deterministic merge: participant order, never steal order.  On the
     hashed backend the merge is a partition-wise id-run concatenation and
     dedup is deferred to [build], so the whole barrier is timed as one
     "merge" cost. *)
  let merge_t0 = Unix.gettimeofday () in
  let merged = ref builders.(0) in
  for p = 1 to workers - 1 do
    merged := Relation.builder_merge !merged builders.(p)
  done;
  let built = Relation.build !merged in
  let merge_ns =
    int_of_float ((Unix.gettimeofday () -. merge_t0) *. 1e9)
  in
  (match stats with
  | Some s ->
    s.Stats.rule_applications <- s.Stats.rule_applications + 1;
    s.Stats.tuples_derived <-
      s.Stats.tuples_derived + Array.fold_left ( + ) 0 emitted;
    (* Fresh tuples after the barrier build — cross-shard duplicates
       collapse in [build], exactly as within-run duplicates do
       sequentially. *)
    s.Stats.tuples_allocated <-
      s.Stats.tuples_allocated + Relation.cardinal built;
    s.Stats.bulk_builds <- s.Stats.bulk_builds + 1;
    s.Stats.merge_ns <- s.Stats.merge_ns + merge_ns;
    Array.iter
      (function
        | Some c -> Plan.merge_counters s.Stats.plan ~src:c
        | None -> ())
      shards;
    s.Stats.morsels <- s.Stats.morsels + report.Plan.sh_morsels;
    s.Stats.steals <- s.Stats.steals + report.Plan.sh_steals;
    let participants = Array.length report.Plan.sh_executed in
    if participants > 1 then begin
      let mx = ref report.Plan.sh_executed.(0) in
      let mn = ref report.Plan.sh_executed.(0) in
      Array.iter
        (fun n ->
          if n > !mx then mx := n;
          if n < !mn then mn := n)
        report.Plan.sh_executed;
      s.Stats.max_shard_skew <- max s.Stats.max_shard_skew (!mx - !mn)
    end
  | None -> ());
  built

let eval_rule ?planner ?cache ?variant ?indexing ?storage ?stats ~universe
    ~resolver rule =
  let plan =
    plan_rule ?planner ?cache ?variant ?stats
      ~universe_size:(List.length universe) ~resolver rule
  in
  run_plan ?indexing ?storage ?stats ~universe ~resolver plan

let eval_rules ?planner ?cache ?indexing ?storage ?stats ~universe ~resolver
    ~schema rules =
  List.fold_left
    (fun acc rule ->
      let derived =
        eval_rule ?planner ?cache ?indexing ?storage ?stats ~universe
          ~resolver rule
      in
      let name = rule.Datalog.Ast.head.pred in
      let current =
        if Idb.mem acc name then Idb.get acc name
        else Relation.empty (Relation.arity derived)
      in
      Idb.set acc name (Relation.union current derived))
    (Idb.empty schema) rules

let uniform source _occ = source

let database_source db =
  {
    find =
      (fun pred arity -> Relalg.Database.relation_or_empty ~arity pred db);
  }

let layered db idb =
  {
    find =
      (fun pred arity ->
        if Idb.mem idb pred then Idb.get idb pred
        else Relalg.Database.relation_or_empty ~arity pred db);
  }
