module Relation = Relalg.Relation
module Plan = Planlib.Plan
module Plan_cache = Planlib.Cache

type source = Plan.source = { find : string -> int -> Relation.t }

type occurrence = Plan.occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;
  pred : string;
}

type resolver = occurrence -> source

type indexing = Plan.indexing

type planner = Plan.planner

(* Cardinalities for the cost model, read through the same resolver the
   plan will execute with — so a delta-variant plan sees the delta's
   (small) size at the redirected occurrence. *)
let resolver_sizes (resolver : resolver) occ arity =
  Relation.cardinal ((resolver occ).find occ.pred arity)

let plan_rule ?planner ?cache ?variant ?label ?stats ~universe_size ~resolver
    rule =
  let counters = Option.map (fun (s : Stats.t) -> s.Stats.plan) stats in
  let sizes occ arity = resolver_sizes resolver occ arity in
  match cache with
  | Some cache ->
    Plan_cache.find ?counters ?planner ?variant ?label cache ~sizes
      ~universe_size rule
  | None ->
    (match counters with
    | Some c -> c.Plan.plan_compiles <- c.Plan.plan_compiles + 1
    | None -> ());
    Plan.compile ?planner ?variant ?label ~sizes ~universe_size rule

let run_plan ?(indexing = `Cached) ?storage ?stats ~universe ~resolver plan =
  let counters = Option.map (fun (s : Stats.t) -> s.Stats.plan) stats in
  let arity = Array.length plan.Plan.head_args in
  (* Head tuples stream into a bulk accumulator; the relation (and its lazy
     indexes) is built once at the end instead of re-derived per [add]. *)
  let acc = Relation.builder ?storage arity in
  let emitted = ref 0 in
  let allocated = ref 0 in
  Plan.run ~indexing ?counters ~resolver ~universe plan ~on_row:(fun env ->
      incr emitted;
      if Relation.builder_add acc (Plan.head_tuple plan env) then
        incr allocated);
  (match stats with
  | Some s ->
    s.Stats.rule_applications <- s.Stats.rule_applications + 1;
    s.Stats.tuples_derived <- s.Stats.tuples_derived + !emitted;
    s.Stats.tuples_allocated <- s.Stats.tuples_allocated + !allocated;
    s.Stats.bulk_builds <- s.Stats.bulk_builds + 1
  | None -> ());
  Relation.build acc

let eval_rule ?planner ?cache ?variant ?indexing ?storage ?stats ~universe
    ~resolver rule =
  let plan =
    plan_rule ?planner ?cache ?variant ?stats
      ~universe_size:(List.length universe) ~resolver rule
  in
  run_plan ?indexing ?storage ?stats ~universe ~resolver plan

let eval_rules ?planner ?cache ?indexing ?storage ?stats ~universe ~resolver
    ~schema rules =
  List.fold_left
    (fun acc rule ->
      let derived =
        eval_rule ?planner ?cache ?indexing ?storage ?stats ~universe
          ~resolver rule
      in
      let name = rule.Datalog.Ast.head.pred in
      let current =
        if Idb.mem acc name then Idb.get acc name
        else Relation.empty (Relation.arity derived)
      in
      Idb.set acc name (Relation.union current derived))
    (Idb.empty schema) rules

let uniform source _occ = source

let database_source db =
  {
    find =
      (fun pred arity -> Relalg.Database.relation_or_empty ~arity pred db);
  }

let layered db idb =
  {
    find =
      (fun pred arity ->
        if Idb.mem idb pred then Idb.get idb pred
        else Relalg.Database.relation_or_empty ~arity pred db);
  }
