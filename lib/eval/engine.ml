module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol

type source = { find : string -> int -> Relation.t }

type occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;
  pred : string;
}

type resolver = occurrence -> source

type indexing = [ `Cached | `Percall | `Scan ]

(* --- compiled form ------------------------------------------------------ *)

type iterm =
  | IVar of int
  | IConst of Symbol.t

type ilit =
  | LPos of int * string * iterm array  (* occurrence index, pred, args *)
  | LNeg of int * string * iterm array
  | LEq of iterm * iterm
  | LNeq of iterm * iterm

type compiled = {
  nvars : int;
  head_pred : string;
  head_args : iterm array;
  body : ilit list;
}

let compile (r : Datalog.Ast.rule) =
  let vars = Datalog.Ast.rule_variables r in
  let index = Hashtbl.create 8 in
  List.iteri (fun i x -> Hashtbl.add index x i) vars;
  let iterm = function
    | Datalog.Ast.Var x -> IVar (Hashtbl.find index x)
    | Datalog.Ast.Const c -> IConst c
  in
  let iterms args = Array.of_list (List.map iterm args) in
  let body =
    List.mapi
      (fun i l ->
        match l with
        | Datalog.Ast.Pos a -> LPos (i, a.pred, iterms a.args)
        | Datalog.Ast.Neg a -> LNeg (i, a.pred, iterms a.args)
        | Datalog.Ast.Eq (t1, t2) -> LEq (iterm t1, iterm t2)
        | Datalog.Ast.Neq (t1, t2) -> LNeq (iterm t1, iterm t2))
      r.body
  in
  {
    nvars = List.length vars;
    head_pred = r.head.pred;
    head_args = iterms r.head.args;
    body;
  }

(* --- evaluation --------------------------------------------------------- *)

let term_value env = function
  | IConst c -> Some c
  | IVar i -> env.(i)

let fully_bound env args =
  Array.for_all (fun t -> term_value env t <> None) args

let lit_fully_bound env = function
  | LPos (_, _, args) | LNeg (_, _, args) -> fully_bound env args
  | LEq (t1, t2) | LNeq (t1, t2) ->
    term_value env t1 <> None && term_value env t2 <> None

let bound_tuple env args =
  Tuple.make
    (Array.map
       (fun t ->
         match term_value env t with
         | Some c -> c
         | None -> assert false)
       args)

let relation_of resolver polarity index pred arity =
  (resolver { polarity; index; pred }).find pred arity

let eval_bound_lit resolver env = function
  | LPos (i, pred, args) ->
    let r = relation_of resolver `Pos i pred (Array.length args) in
    Relation.mem (bound_tuple env args) r
  | LNeg (i, pred, args) ->
    let r = relation_of resolver `Neg i pred (Array.length args) in
    not (Relation.mem (bound_tuple env args) r)
  | LEq (t1, t2) ->
    Symbol.equal (Option.get (term_value env t1)) (Option.get (term_value env t2))
  | LNeq (t1, t2) ->
    not
      (Symbol.equal (Option.get (term_value env t1))
         (Option.get (term_value env t2)))

(* Bind the unbound variables of [args] to the components of [t]; returns
   the variable indices that were freshly bound (for undoing).  Repeated
   unbound variables are handled: the first occurrence binds, later ones
   must agree (checked). *)
let bind_tuple env args t =
  let arity = Array.length args in
  let bound = ref [] in
  let ok = ref true in
  (try
     for pos = 0 to arity - 1 do
       match args.(pos) with
       | IConst c ->
         if not (Symbol.equal (Tuple.get t pos) c) then begin
           ok := false;
           raise Exit
         end
       | IVar i -> (
         match env.(i) with
         | Some c ->
           if not (Symbol.equal (Tuple.get t pos) c) then begin
             ok := false;
             raise Exit
           end
         | None ->
           env.(i) <- Some (Tuple.get t pos);
           bound := i :: !bound)
     done
   with Exit -> ());
  if !ok then Some !bound
  else begin
    List.iter (fun i -> env.(i) <- None) !bound;
    None
  end

let undo env bound = List.iter (fun i -> env.(i) <- None) bound

let first_unbound_var env lits =
  let found = ref None in
  let see = function
    | IVar i when env.(i) = None && !found = None -> found := Some i
    | _ -> ()
  in
  List.iter
    (function
      | LPos (_, _, args) | LNeg (_, _, args) -> Array.iter see args
      | LEq (t1, t2) | LNeq (t1, t2) ->
        see t1;
        see t2)
    lits;
  !found

(* Access structure for one positive occurrence.  [`Cached] reads the
   relation's own memoized column indexes — persistent across rule
   applications and fixpoint iterations, and maintained incrementally as
   deltas are unioned in by {!Saturate}.  [`Percall] rebuilds throwaway
   hash indexes for this call (the seed's behaviour, kept as a benchmark
   baseline), and [`Scan] always scans. *)
type occurrence_access = {
  occ_relation : Relation.t;
  occ_cardinal : int;
      (* Cardinality, computed once per call: the join-order tie-break
         consults it at every solve step and [Set.cardinal] is O(n). *)
  occ_indexes : (Symbol.t, Tuple.t list) Hashtbl.t option array;
      (* Per-call indexes, [`Percall] only: occ_indexes.(pos) maps the
         value at position pos to tuples; built on first use. *)
}

let access_of_relation r arity =
  {
    occ_relation = r;
    occ_cardinal = Relation.cardinal r;
    occ_indexes = Array.make arity None;
  }

let position_index access pos =
  match access.occ_indexes.(pos) with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 64 in
    Relation.iter
      (fun t ->
        let key = Tuple.get t pos in
        Hashtbl.replace table key
          (t :: Option.value ~default:[] (Hashtbl.find_opt table key)))
      access.occ_relation;
    access.occ_indexes.(pos) <- Some table;
    table

(* Streams the candidate tuples matching the bound positions of [args] to
   [f], via an index on the first bound position when one exists.  Index
   buckets are iterated in place — no intermediate candidate list is
   materialised on any path. *)
let iter_candidates ~indexing ~stats env args access f =
  let arity = Array.length args in
  let rec first_bound pos =
    if pos = arity then None
    else
      match term_value env args.(pos) with
      | Some c -> Some (pos, c)
      | None -> first_bound (pos + 1)
  in
  let scan () =
    (match stats with
    | Some s -> s.Stats.full_scans <- s.Stats.full_scans + 1
    | None -> ());
    Relation.iter f access.occ_relation
  in
  let stream_bucket bucket =
    (match stats with
    | Some s ->
      s.Stats.bucket_probes <- s.Stats.bucket_probes + List.length bucket
    | None -> ());
    List.iter f bucket
  in
  match indexing with
  | `Scan -> scan ()
  | `Cached -> (
    match first_bound 0 with
    | None -> scan ()
    | Some (pos, c) ->
      (match stats with
      | Some s ->
        if Relation.has_index access.occ_relation pos then
          s.Stats.index_hits <- s.Stats.index_hits + 1
        else s.Stats.index_builds <- s.Stats.index_builds + 1
      | None -> ());
      stream_bucket (Relation.matching pos c access.occ_relation))
  | `Percall -> (
    match first_bound 0 with
    | None -> scan ()
    | Some (pos, c) ->
      (match stats with
      | Some s ->
        if access.occ_indexes.(pos) <> None then
          s.Stats.index_hits <- s.Stats.index_hits + 1
        else s.Stats.index_builds <- s.Stats.index_builds + 1
      | None -> ());
      stream_bucket
        (Option.value ~default:[]
           (Hashtbl.find_opt (position_index access pos) c)))

let count_bound env args =
  Array.fold_left
    (fun n t -> if term_value env t <> None then n + 1 else n)
    0 args

let eval_rule ?(indexing = `Cached) ?storage ?stats ~universe ~resolver rule =
  let c = compile rule in
  let env = Array.make c.nvars None in
  let arity = Array.length c.head_args in
  (* Head tuples stream into a bulk accumulator; the relation (and its lazy
     indexes) is built once at the end instead of re-derived per [add]. *)
  let acc = Relation.builder ?storage arity in
  let emitted = ref 0 in
  let allocated = ref 0 in
  (* Fetch each positive occurrence's relation once per call (resolvers are
     pure within a call). *)
  let accesses = Hashtbl.create 8 in
  let access_for i pred args =
    match Hashtbl.find_opt accesses i with
    | Some a -> a
    | None ->
      let r = relation_of resolver `Pos i pred (Array.length args) in
      let a = access_of_relation r (Array.length args) in
      Hashtbl.add accesses i a;
      a
  in
  (* Emit the head tuple(s) for the current binding, enumerating any
     head variables that remained unbound. *)
  let rec emit () =
    let unbound =
      Array.to_list c.head_args
      |> List.find_map (function
           | IVar i when env.(i) = None -> Some i
           | _ -> None)
    in
    match unbound with
    | None ->
      incr emitted;
      if Relation.builder_add acc (bound_tuple env c.head_args) then
        incr allocated
    | Some i ->
      List.iter
        (fun v ->
          env.(i) <- Some v;
          emit ();
          env.(i) <- None)
        universe
  in
  let rec solve remaining =
    (* 1. Evaluate any fully bound literal immediately. *)
    let bound_lit, rest =
      List.partition (lit_fully_bound env) remaining
    in
    match bound_lit with
    | l :: _ ->
      if eval_bound_lit resolver env l then
        solve (List.filter (fun l' -> l' != l) remaining)
      else ()
    | [] -> (
      match rest with
      | [] -> emit ()
      | _ -> (
        (* 2. Propagate a half-bound equality deterministically. *)
        let eq_prop =
          List.find_map
            (fun l ->
              match l with
              | LEq (t1, t2) -> (
                match (term_value env t1, term_value env t2, t1, t2) with
                | Some c, None, _, IVar i | None, Some c, IVar i, _ ->
                  Some (l, i, c)
                | _ -> None)
              | _ -> None)
            rest
        in
        match eq_prop with
        | Some (l, i, c) ->
          env.(i) <- Some c;
          solve (List.filter (fun l' -> l' != l) remaining);
          env.(i) <- None
        | None -> (
          (* 3. Join through the positive literal with the most bound
             arguments, breaking ties towards the smallest relation: fewer
             tuples to scan when nothing is bound, fewer candidates per
             probe otherwise.  In a semi-naive iteration this makes the
             small delta the scanned side and the large stable relations
             the probed (indexed) side. *)
          let pos_lit =
            List.fold_left
              (fun best l ->
                match l with
                | LPos (i, pred, args) -> (
                  let score = count_bound env args in
                  let card () = (access_for i pred args).occ_cardinal in
                  match best with
                  | Some (_, _, _, _, best_score, _) when best_score > score
                    ->
                    best
                  | Some (_, _, _, _, best_score, best_card)
                    when best_score = score && best_card <= card () ->
                    best
                  | _ -> Some (l, i, pred, args, score, card ()))
                | _ -> best)
              None rest
          in
          match pos_lit with
          | Some (l, i, pred, args, _score, _card) ->
            let access = access_for i pred args in
            let rest' = List.filter (fun l' -> l' != l) remaining in
            iter_candidates ~indexing ~stats env args access (fun t ->
                match bind_tuple env args t with
                | Some bound ->
                  solve rest';
                  undo env bound
                | None -> ())
          | None -> (
            (* 4. Only negations / comparisons with unbound variables are
               left: enumerate the universe for one of their variables. *)
            match first_unbound_var env rest with
            | Some i ->
              List.iter
                (fun v ->
                  env.(i) <- Some v;
                  solve remaining;
                  env.(i) <- None)
                universe
            | None -> assert false))))
  in
  solve c.body;
  (match stats with
  | Some s ->
    s.Stats.rule_applications <- s.Stats.rule_applications + 1;
    s.Stats.tuples_derived <- s.Stats.tuples_derived + !emitted;
    s.Stats.tuples_allocated <- s.Stats.tuples_allocated + !allocated;
    s.Stats.bulk_builds <- s.Stats.bulk_builds + 1
  | None -> ());
  Relation.build acc

let eval_rules ?indexing ?storage ?stats ~universe ~resolver ~schema rules =
  List.fold_left
    (fun acc rule ->
      let derived = eval_rule ?indexing ?storage ?stats ~universe ~resolver rule in
      let name = rule.Datalog.Ast.head.pred in
      let current =
        if Idb.mem acc name then Idb.get acc name
        else Relation.empty (Relation.arity derived)
      in
      Idb.set acc name (Relation.union current derived))
    (Idb.empty schema) rules

let uniform source _occ = source

let database_source db =
  {
    find =
      (fun pred arity -> Relalg.Database.relation_or_empty ~arity pred db);
  }

let layered db idb =
  {
    find =
      (fun pred arity ->
        if Idb.mem idb pred then Idb.get idb pred
        else Relalg.Database.relation_or_empty ~arity pred db);
  }
