(** Compile-once physical plans for rule evaluation, with a feedback loop.

    Every Theta-based semantics in this library ultimately does the same
    thing: apply each rule of the program to the current valuation, over and
    over, until a fixpoint.  This module compiles a rule {e once} into a
    static physical plan — a linear operator pipeline over slot-allocated
    variable registers — that the hot loop then merely executes:

    - {e slots}: the rule's variables, numbered in first-occurrence order;
      the execution environment is a plain [Symbol.t array] (no [Option]
      boxing, no undo lists — a slot written at step [k] is only read by
      later steps, which run only after a successful match);
    - {e steps}: [Index_probe] (join through a column index),
      [Scan] (filtered full scan), [Const_filter] / [Neg_check]
      (membership of a fully bound atom), [Exists] / [Neg_exists]
      (first-witness existence checks for atoms whose only unbound
      variables are dead — see below), [Compare], [Assign] (equality
      propagation) and [Enumerate] (universe enumeration for variables no
      positive literal binds — the paper's semantics is not
      range-restricted); the final projection emits the head tuple;
    - {e cost-based ordering}: positive atoms are joined smallest
      estimated-match-count first, where the estimate is
      [card / universe^bound_positions] with cardinalities read through
      [sizes] at compile time.

    {b Existence short-circuits.} A body atom whose unbound variables are
    all {e dead} — absent from the head and from every other remaining
    literal — only asks a yes/no question.  A positive such atom becomes
    [Exists] (stop at the first witness matching the bound prefix); a
    negated one becomes [Neg_exists] (succeed unless the relation covers
    all [u^free] instantiations of the free columns, counted with early
    exit), replacing the enumerate-then-check cascade that cost [u]
    iterations per free variable.

    {b Feedback.} Plans are immutable apart from a per-plan {!feedback}
    record of observed cardinalities: per-step rows produced, emitted
    rows, the driving step's input size, and a window of recent
    driving-input ("delta") sizes.  Per-run counts accumulate in the
    {!prepared} execution context — one per domain — and are folded into
    the plan's record once per run, at the fixpoint-stage barrier on the
    sharded path, so the record is never written from two domains.  The
    [`Adaptive] planner ({!Cache}) closes the loop: when observed
    selectivities diverge from the estimates past {!drift_factor}, the
    next cache lookup recompiles with the observed effective cardinality
    substituted for the estimate ({!replan_hint}).  Where each atom
    occurrence reads its relation is decided at {e run} time by a
    resolver, which is what lets one plan serve both the full and the
    delta-specialized applications of semi-naive evaluation. *)

type source = { find : string -> int -> Relalg.Relation.t }

type occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;  (** Position of the literal in the rule body. *)
  pred : string;
}

type resolver = occurrence -> source
(** Decides, per atom occurrence, which source to read. *)

type indexing = [ `Cached | `Percall | `Scan ]
(** How [Index_probe] steps locate matching tuples — see {!Evallib.Engine}:
    memoized relation-owned indexes, throwaway per-execution hash tables,
    or plain scans (the pattern re-checks the probed column, so the
    fallback needs no replanning). *)

type planner = [ `Static | `Greedy | `Scan | `Adaptive ]
(** - [`Static] (default): compile once per (rule, variant), cache, and
      only recompile when relation sizes drift past the {!Cache} threshold;
    - [`Greedy]: recompile on every rule application with fresh sizes —
      the pre-plan-layer behaviour, kept as the ablation baseline;
    - [`Scan]: no planning at all — textual literal order, no index
      probes (plans are size-independent and cached);
    - [`Adaptive]: like [`Static], plus the feedback loop — observed
      per-step cardinalities trigger bounded replans with observed stats
      substituted for estimates, small relations are scanned rather than
      probed, and near-tie join orders are broken by the magic-sets
      adornment (sideways information passing). *)

val planner_of_string : string -> (planner, string) result
val planner_to_string : planner -> string
val pp_planner : Format.formatter -> planner -> unit

val set_default_planner : planner -> unit
(** Sets the planner used when no explicit [?planner] is given (the bench
    ablates through this, like {!Relalg.Relation.set_default_storage}). *)

val default_planner : unit -> planner

val set_drift_factor : int -> unit
(** Sets the drift factor (default 4, clamped to >= 1) shared by the
    cache's input-size drift check and the adaptive planner's
    observed-selectivity check — the CLI's [--plan-drift].  A quantity has
    drifted when it exceeds [factor * reference + drift_slack] in either
    direction. *)

val drift_factor : unit -> int

val drift_slack : int
(** Additive slack under which drift is never declared — early fixpoint
    stages grow relations from empty, and a 4x change of almost nothing
    is noise. *)

type variant =
  | Full  (** Every occurrence reads the current valuation. *)
  | Delta of int
      (** Semi-naive: the positive occurrence at this body position is
          seeded from the previous stage's delta. *)

val variant_to_string : variant -> string

type term =
  | Const of Relalg.Symbol.t
  | Slot of int

type pat =
  | Check_const of Relalg.Symbol.t
  | Check_slot of int
  | Bind of int

type access = {
  occ : int;  (** Occurrence index (body position). *)
  pred : string;
  arity : int;
}

type op =
  | Index_probe of { access : access; col : int; key : term; pat : pat array }
  | Scan of { access : access; pat : pat array }
  | Const_filter of { access : access; args : term array }
  | Neg_check of { access : access; args : term array }
  | Exists of { access : access; pat : pat array }
      (** First-witness membership of a partially bound positive atom
          whose unbound columns are dead: succeeds iff any tuple matches
          the bound prefix, stopping at the first. *)
  | Neg_exists of { access : access; pat : pat array; free : int }
      (** Negated atom with [free] distinct dead columns: succeeds iff
          some instantiation of them is {e absent}, i.e. the bound prefix
          matches fewer than [universe^free] tuples (early exit once the
          bound is reached). *)
  | Compare of { negated : bool; left : term; right : term }
  | Assign of { slot : int; value : term }
  | Enumerate of { slot : int }
  | Le_check of { left : term; right : term }
      (** Value-order comparison ({!Relalg.Symbol.compare_value}): passes
          iff [left <= right].  A [>=] literal compiles to this op with
          the operands swapped. *)
  | Plus_bind of { a : term; b : term; slot : int }
      (** [slot := a + b] when both operands read as integers; a
          non-numeric operand fails the row. *)
  | Plus_check of { a : term; b : term; result : term }
      (** Fully bound addition: passes iff [result = a + b] numerically. *)
  | Aggregate_probe of {
      access : access;
      kind : Datalog.Ast.limit_kind;
      col : int;
      group : term array;
      bound : term;
    }
      (** Closing step of a limit-head rule: reads the head relation's
          current bound for the candidate row's group — one probe through
          the memoized column index, since the limit invariant keeps at
          most one tuple per group — and kills the row unless the
          candidate strictly improves it.  [access.occ] is the
          distinguished occurrence [-1], which every resolver maps to the
          current valuation (never a delta). *)
  | Tighten_emit of {
      pred : string;
      kind : Datalog.Ast.limit_kind;
      col : int;
      group : term array;
      bound : term;
    }
      (** Per-application dominance filter after {!Aggregate_probe}: keeps
          only rows improving on the best candidate this execution context
          has already emitted for the group.  Cross-context and cross-rule
          candidates are resolved by the tighten-union at the fixpoint
          layer, which is what keeps sharded emission order irrelevant. *)

type step = {
  op : op;
  est : float;  (** Estimated rows surviving this step. *)
}

type feedback = {
  mutable fb_runs : int;  (** Completed runs folded into this record. *)
  fb_rows : int array;
      (** Per step, rows that survived it, summed across runs — the
          observed counterpart of [step.est] is [fb_rows.(i) / fb_runs]. *)
  mutable fb_emitted : int;  (** Rows emitted to [on_row], across runs. *)
  mutable fb_driving : int;
      (** Driving-step input rows, summed across runs — what
          {!run_sharded} partitions, cached here so only a plan's first
          sharded run pays the counting pass. *)
  mutable fb_deltas : int list;
      (** Recent per-run driving-input sizes, newest first (window of 8) —
          for a [Delta] variant, the observed delta-size trajectory. *)
}
(** Observed cardinalities, harvested from per-context counters once per
    run (the stage barrier on the sharded path).  Reset by recompilation —
    a fresh plan starts observing from scratch. *)

type t = {
  rule : Datalog.Ast.rule;
  label : string;  (** The rule in concrete syntax (or a caller label). *)
  planner : planner;
  variant : variant;
  nslots : int;
  slot_names : string array;
  steps : step array;
  head_pred : string;
  head_args : term array;
  est_out : float;  (** Estimated emitted rows. *)
  sizes_at_plan : (occurrence * int * int) list;
      (** (occurrence, arity, cardinality) snapshot the cost model saw —
          {!Cache} compares against it to decide when to replan.  For an
          overridden occurrence this records the override. *)
  universe_at_plan : int;  (** Universe size the cost model saw. *)
  overrides : (int * int) list;
      (** [(occurrence index, observed effective cardinality)] pairs a
          feedback replan substituted for the resolver's sizes — skipped
          by the cache's input-size drift check. *)
  generation : int;
      (** Consecutive feedback replans behind this plan; {!Cache} bounds
          it and falls back to a plain recompile at the cap. *)
  fb : feedback;
}

type counters = {
  mutable plan_compiles : int;
  mutable plan_cache_hits : int;
  mutable plan_replans : int;
      (** Feedback-driven recompilations (adaptive planner only) —
          bounded per plan by the {!Cache} generation cap. *)
  mutable index_hits : int;
  mutable index_builds : int;
  mutable full_scans : int;
  mutable bucket_probes : int;
  mutable enumerations : int;
}
(** The plan/probe counter block {!Evallib.Stats} embeds. *)

val counters : unit -> counters
val merge_counters : counters -> src:counters -> unit

val compile :
  ?planner:planner ->
  ?variant:variant ->
  ?label:string ->
  ?overrides:(int * int) list ->
  ?generation:int ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  sizes:(occurrence -> int -> int) ->
  universe_size:int ->
  Datalog.Ast.rule ->
  t
(** [sizes occ arity] is the current cardinality of the relation the
    occurrence reads (under the resolver the plan will later run with);
    the [variant] only documents which occurrence the resolver seeds from
    the delta — the delta's small cardinality reaches the join order
    through [sizes].  [overrides] shadows [sizes] for the given positive
    occurrences with observed effective cardinalities (a feedback
    replan); [generation] counts the consecutive feedback replans that
    produced this plan.  When [limits] declares the head predicate a
    limit predicate, the plan closes with {!Aggregate_probe} and
    {!Tighten_emit} steps for its (kind, column) — callers evaluating a
    limit program under the tighten-union fixpoint must pass the
    program's limits; callers that want raw candidate derivation (DRed
    overdeletion) must not. *)

val replan_hint : t -> (int * int) option
(** [Some (occ, eff)] when the feedback record shows a join step's
    observed output diverging from its estimate past {!drift_factor} (+
    {!drift_slack}), for the worst such step whose occurrence is not
    already overridden: recompiling with [eff] substituted at [occ] would
    align the cost model with observation.  [None] before the first run,
    while observation matches, or when every diverging occurrence is
    already overridden.  Selectivity divergence is deliberately the
    trigger — input-{e size} drift is already caught by {!Cache} against
    [sizes_at_plan]; what only observation reveals is the right sizes
    flowing through the wrong access path or join order. *)

val run :
  ?indexing:indexing ->
  ?counters:counters ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  on_row:(Relalg.Symbol.t array -> unit) ->
  unit
(** Executes the plan: [on_row] is called once per complete binding with
    the slot environment (valid only for the duration of the call — copy
    what you keep, or use {!head_tuple}).  Matching is return-value based
    (no exceptions on the hot path) and allocation-free apart from index
    construction and the caller's [on_row].  Completes by folding the
    run's observed cardinalities into the plan's feedback record. *)

(** {2 Sharded (morsel-driven) execution}

    Every plan has a {e driving} step — its first [Scan], [Index_probe] or
    [Enumerate] — whose input rows (relation scan positions, index-bucket
    positions, or universe positions) are the only unbounded iteration
    before the first binding.  Sharded execution partitions those rows
    into fixed-size morsels and fans them over a {!Negdl_util.Domain_pool}
    with work stealing, executing the same compiled plan in every shard
    over a per-shard context.  Row positions are stable per relation value,
    so the set of emitted rows is independent of the schedule; merge
    per-shard accumulators in participant order for full determinism. *)

type prepared
(** A per-domain execution context: resolved sources, slot registers,
    scratch probe tuples, per-call index tables, the driving-step index,
    and the context's share of the run's observed row counts.  Cheap
    relative to execution; one per (plan, run, domain). *)

val prepare :
  ?indexing:indexing ->
  ?counters:counters ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  prepared
(** Resolves the plan's sources and allocates the per-run state {!run}
    otherwise builds internally.  Does not count as an execution (the
    feedback record is untouched until a run completes). *)

val driving_rows : prepared -> int
(** How many input rows the driving step would iterate: the driven
    relation's cardinality for scans, the probed bucket's length for index
    probes (under [`Scan] indexing, the cardinality — the fallback scans),
    the universe size for enumerations, and 1 for plans with no driving
    step (fully constant-decided).  Evaluates the constant prefix before
    the driving step — so a probe key bound by an earlier [Assign]
    resolves, and a failed prefix filter reports 0 — without bumping any
    row or probe counters.  {!run_sharded} calls this only on a plan's
    first run; afterwards the feedback record's observed driving-input
    average replaces the count. *)

val auto_grain : rows:int -> workers:int -> int
(** The default morsel size: [rows / (8 * workers)], floored at 16 — about
    eight morsels per participant so stealing can rebalance uneven shards,
    but never so fine that scheduling dominates tiny inputs.  With a
    single worker the whole input is one morsel: there is nobody to steal
    a share, so splitting would only pay per-morsel overhead. *)

type shard_report = {
  sh_morsels : int;  (** Morsels executed ([ceil (rows / grain)]). *)
  sh_steals : int;  (** Steal-half operations between participants. *)
  sh_executed : int array;
      (** Morsels per participant; max - min is the shard skew. *)
}

val run_sharded :
  ?indexing:indexing ->
  ?counters:(int -> counters option) ->
  pool:Negdl_util.Domain_pool.t ->
  ?grain:int ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  on_row:(int -> Relalg.Symbol.t array -> unit) ->
  shard_report
(** Executes the plan with its driving step sharded into morsels of
    [grain] rows (default {!auto_grain}) over [pool].  [on_row p env] and
    [counters p] are keyed by participant — [on_row] must be thread-safe
    across {e distinct} participants but is never called concurrently for
    one participant, so per-participant accumulators need no locking.
    Participant indices are dense in [0, pool size + 1).  With one morsel
    (or a pool of size 0 and a single participant) everything runs inline
    on the calling domain and emits exactly what {!run} would (the only
    counter drift: the row-counting pass may warm a cached index, turning
    {!run}'s one index build into a hit).  The emitted row {e set} is
    schedule-independent; per-participant attribution is not (merge in
    participant order for determinism).

    The driving input is counted ({!driving_rows}) only on the plan's
    first run; subsequent runs size morsels from the feedback record's
    observed average, with the last morsel open-ended so underestimates
    cannot drop rows (overestimated trailing morsels just find an empty
    slice).  Each run ends at a barrier that folds the participants'
    observed counts into the plan's feedback record in participant
    order. *)

val head_tuple : t -> Relalg.Symbol.t array -> Relalg.Tuple.t
(** The head tuple under the given environment (freshly allocated). *)

val pp : Format.formatter -> t -> unit
(** Renders the plan with estimated and (when the plan has run) observed
    per-step cardinalities — the [negdl explain] output. *)

val pp_feedback : Format.formatter -> t -> unit
(** The [explain --feedback] view: per step, estimate vs observed per-run
    average with drift markers, then the replan state — substituted
    overrides, generation, and what {!replan_hint} would do next. *)

val to_string : t -> string
