(** Compile-once physical plans for rule evaluation.

    Every Theta-based semantics in this library ultimately does the same
    thing: apply each rule of the program to the current valuation, over and
    over, until a fixpoint.  This module compiles a rule {e once} into a
    static physical plan — a linear operator pipeline over slot-allocated
    variable registers — that the hot loop then merely executes:

    - {e slots}: the rule's variables, numbered in first-occurrence order;
      the execution environment is a plain [Symbol.t array] (no [Option]
      boxing, no undo lists — a slot written at step [k] is only read by
      later steps, which run only after a successful match);
    - {e steps}: [Index_probe] (join through a column index),
      [Scan] (filtered full scan), [Const_filter] / [Neg_check]
      (membership of a fully bound atom), [Compare], [Assign]
      (equality propagation) and [Enumerate] (universe enumeration for
      variables no positive literal binds — the paper's semantics is not
      range-restricted); the final projection emits the head tuple;
    - {e cost-based ordering}: positive atoms are joined smallest
      estimated-match-count first, where the estimate is
      [card / universe^bound_positions] with cardinalities read through
      [sizes] at compile time.

    Plans are pure data apart from per-step [actual] row counters (benign
    races under the parallel engine) — per-execution state (environment,
    scratch probe tuples, per-call index tables) lives in {!run}, so one
    compiled plan is shareable across iterations, alternating-fixpoint
    passes and domains.  Where each atom occurrence reads its relation is
    decided at {e run} time by a resolver, which is what lets one plan
    serve both the full and the delta-specialized applications of
    semi-naive evaluation. *)

type source = { find : string -> int -> Relalg.Relation.t }

type occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;  (** Position of the literal in the rule body. *)
  pred : string;
}

type resolver = occurrence -> source
(** Decides, per atom occurrence, which source to read. *)

type indexing = [ `Cached | `Percall | `Scan ]
(** How [Index_probe] steps locate matching tuples — see {!Evallib.Engine}:
    memoized relation-owned indexes, throwaway per-execution hash tables,
    or plain scans (the pattern re-checks the probed column, so the
    fallback needs no replanning). *)

type planner = [ `Static | `Greedy | `Scan ]
(** - [`Static] (default): compile once per (rule, variant), cache, and
      only recompile when relation sizes drift past the {!Cache} threshold;
    - [`Greedy]: recompile on every rule application with fresh sizes —
      the pre-plan-layer behaviour, kept as the ablation baseline;
    - [`Scan]: no planning at all — textual literal order, no index
      probes (plans are size-independent and cached). *)

val planner_of_string : string -> (planner, string) result
val planner_to_string : planner -> string
val pp_planner : Format.formatter -> planner -> unit

val set_default_planner : planner -> unit
(** Sets the planner used when no explicit [?planner] is given (the bench
    ablates through this, like {!Relalg.Relation.set_default_storage}). *)

val default_planner : unit -> planner

type variant =
  | Full  (** Every occurrence reads the current valuation. *)
  | Delta of int
      (** Semi-naive: the positive occurrence at this body position is
          seeded from the previous stage's delta. *)

val variant_to_string : variant -> string

type term =
  | Const of Relalg.Symbol.t
  | Slot of int

type pat =
  | Check_const of Relalg.Symbol.t
  | Check_slot of int
  | Bind of int

type access = {
  occ : int;  (** Occurrence index (body position). *)
  pred : string;
  arity : int;
}

type op =
  | Index_probe of { access : access; col : int; key : term; pat : pat array }
  | Scan of { access : access; pat : pat array }
  | Const_filter of { access : access; args : term array }
  | Neg_check of { access : access; args : term array }
  | Compare of { negated : bool; left : term; right : term }
  | Assign of { slot : int; value : term }
  | Enumerate of { slot : int }

type step = {
  op : op;
  est : float;  (** Estimated rows surviving this step. *)
  mutable actual : int;  (** Rows that actually survived, across runs. *)
}

type t = {
  rule : Datalog.Ast.rule;
  label : string;  (** The rule in concrete syntax (or a caller label). *)
  planner : planner;
  variant : variant;
  nslots : int;
  slot_names : string array;
  steps : step array;
  head_pred : string;
  head_args : term array;
  est_out : float;  (** Estimated emitted rows. *)
  sizes_at_plan : (occurrence * int * int) list;
      (** (occurrence, arity, cardinality) snapshot the cost model saw —
          {!Cache} compares against it to decide when to replan. *)
  mutable runs : int;  (** Executions (pp prints actuals only when > 0). *)
}

type counters = {
  mutable plan_compiles : int;
  mutable plan_cache_hits : int;
  mutable index_hits : int;
  mutable index_builds : int;
  mutable full_scans : int;
  mutable bucket_probes : int;
  mutable enumerations : int;
}
(** The plan/probe counter block {!Evallib.Stats} embeds. *)

val counters : unit -> counters
val merge_counters : counters -> src:counters -> unit

val compile :
  ?planner:planner ->
  ?variant:variant ->
  ?label:string ->
  sizes:(occurrence -> int -> int) ->
  universe_size:int ->
  Datalog.Ast.rule ->
  t
(** [sizes occ arity] is the current cardinality of the relation the
    occurrence reads (under the resolver the plan will later run with);
    the [variant] only documents which occurrence the resolver seeds from
    the delta — the delta's small cardinality reaches the join order
    through [sizes]. *)

val run :
  ?indexing:indexing ->
  ?counters:counters ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  on_row:(Relalg.Symbol.t array -> unit) ->
  unit
(** Executes the plan: [on_row] is called once per complete binding with
    the slot environment (valid only for the duration of the call — copy
    what you keep, or use {!head_tuple}).  Matching is return-value based
    (no exceptions on the hot path) and allocation-free apart from index
    construction and the caller's [on_row]. *)

(** {2 Sharded (morsel-driven) execution}

    Every plan has a {e driving} step — its first [Scan], [Index_probe] or
    [Enumerate] — whose input rows (relation scan positions, index-bucket
    positions, or universe positions) are the only unbounded iteration
    before the first binding.  Sharded execution partitions those rows
    into fixed-size morsels and fans them over a {!Negdl_util.Domain_pool}
    with work stealing, executing the same compiled plan in every shard
    over a per-shard context.  Row positions are stable per relation value,
    so the set of emitted rows is independent of the schedule; merge
    per-shard accumulators in participant order for full determinism. *)

type prepared
(** A per-domain execution context: resolved sources, slot registers,
    scratch probe tuples, per-call index tables, and the driving-step
    index.  Cheap relative to execution; one per (plan, run, domain). *)

val prepare :
  ?indexing:indexing ->
  ?counters:counters ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  prepared
(** Resolves the plan's sources and allocates the per-run state {!run}
    otherwise builds internally.  Does not count as an execution ([runs]
    is untouched). *)

val driving_rows : prepared -> int
(** How many input rows the driving step would iterate: the driven
    relation's cardinality for scans, the probed bucket's length for index
    probes (under [`Scan] indexing, the cardinality — the fallback scans),
    the universe size for enumerations, and 1 for plans with no driving
    step (fully constant-decided).  Evaluates the constant prefix before
    the driving step — so a probe key bound by an earlier [Assign]
    resolves, and a failed prefix filter reports 0 — without bumping any
    [actual] or probe counters. *)

val auto_grain : rows:int -> workers:int -> int
(** The default morsel size: [rows / (8 * workers)], floored at 16 — about
    eight morsels per participant so stealing can rebalance uneven shards,
    but never so fine that scheduling dominates tiny inputs.  With a
    single worker the whole input is one morsel: there is nobody to steal
    a share, so splitting would only pay per-morsel overhead. *)

type shard_report = {
  sh_morsels : int;  (** Morsels executed ([ceil (rows / grain)]). *)
  sh_steals : int;  (** Steal-half operations between participants. *)
  sh_executed : int array;
      (** Morsels per participant; max - min is the shard skew. *)
}

val run_sharded :
  ?indexing:indexing ->
  ?counters:(int -> counters option) ->
  pool:Negdl_util.Domain_pool.t ->
  ?grain:int ->
  resolver:resolver ->
  universe:Relalg.Symbol.t list ->
  t ->
  on_row:(int -> Relalg.Symbol.t array -> unit) ->
  shard_report
(** Executes the plan with its driving step sharded into morsels of
    [grain] rows (default {!auto_grain}) over [pool].  [on_row p env] and
    [counters p] are keyed by participant — [on_row] must be thread-safe
    across {e distinct} participants but is never called concurrently for
    one participant, so per-participant accumulators need no locking.
    Participant indices are dense in [0, pool size + 1).  With one morsel
    (or a pool of size 0 and a single participant) everything runs inline
    on the calling domain and emits exactly what {!run} would (the only
    counter drift: the row-counting pass may warm a cached index, turning
    {!run}'s one index build into a hit).  The emitted row {e set} is
    schedule-independent; per-participant attribution is not (merge in
    participant order for determinism). *)

val head_tuple : t -> Relalg.Symbol.t array -> Relalg.Tuple.t
(** The head tuple under the given environment (freshly allocated). *)

val pp : Format.formatter -> t -> unit
(** Renders the plan with estimated and (when the plan has run) actual
    per-step cardinalities — the [negdl explain] output. *)

val to_string : t -> string
