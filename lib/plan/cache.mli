(** The plan cache: one compiled plan per (rule, variant).

    Keys are {e structural} — {!Datalog.Ast.compare_rule} on the rule plus
    the variant — so one cache can safely serve many rule lists over the
    same program (stratified layers, the well-founded alternating fixpoint's
    repeated saturations, Theta orbits) without identifier bookkeeping.

    Caching policy by planner:
    - [`Static]: hit unless some relation cardinality the plan's cost model
      saw has drifted by more than {!Plan.drift_factor} (+ slack) —
      estimates refresh as the fixpoint grows relations, without paying a
      replan per application;
    - [`Scan]: plans are size-independent, always hit;
    - [`Greedy]: never cached — recompiled per application (the ablation
      baseline the bench measures static against);
    - [`Adaptive]: the [`Static] policy plus the feedback loop.  Each
      lookup first consults {!Plan.replan_hint}: if the cached plan's
      observed per-step cardinalities diverge from its estimates past the
      drift factor, the plan is recompiled with the observed effective
      cardinality substituted at the diverging occurrence (counted as a
      {e plan replan}, not a compile) — at most [max_generation] (2)
      consecutive times, after which adaptation restarts from a plain
      recompile.  When observation instead {e agrees} with the estimates,
      that agreement supersedes the static input-size check: the plan is
      kept however far the resolver's cardinalities have moved, because
      per-step feedback already covers what size drift only predicts.
      Only a plan with no feedback yet (fetched but never run) falls back
      to the [`Static] drift check, skipping occurrences an override
      covers (their recorded size is the observed value, which the
      resolver's raw cardinality legitimately disagrees with).  Because
      plans are fetched at stage barriers (see
      {!Evallib.Saturate}), replan decisions happen between fixpoint
      stages, never mid-run.

    A cache is {e not} synchronised: fetch the plans you need before fanning
    rule applications across domains (see {!Evallib.Saturate}). *)

type t

val create : unit -> t

val find :
  ?counters:Plan.counters ->
  ?planner:Plan.planner ->
  ?variant:Plan.variant ->
  ?label:string ->
  ?limits:(string * (Datalog.Ast.limit_kind * int)) list ->
  t ->
  sizes:(Plan.occurrence -> int -> int) ->
  universe_size:int ->
  Datalog.Ast.rule ->
  Plan.t
(** The cached plan, recompiled (and re-cached) as the policy above
    dictates.  [counters], when given, accumulates compiles and hits.
    [limits] is forwarded to {!Plan.compile}; the head predicate's limit
    (when any) is part of the cache key, so plans with and without
    tightening steps for the same rule coexist. *)

val cardinal : t -> int
(** Distinct (rule, variant) entries currently resident — what a
    long-lived server reports as its compiled-plan footprint. *)

val export_overrides :
  t -> (Datalog.Ast.rule * Plan.variant * (int * int) list) list
(** Every cached plan carrying a non-empty feedback-override set, as
    [(rule, variant, overrides)] triples — what the snapshot writer
    persists so a restored process inherits the adaptive planner's learned
    effective cardinalities.  Unordered; the snapshot encoder sorts. *)

val seed_overrides :
  t -> (Datalog.Ast.rule * Plan.variant * (int * int) list) list -> unit
(** Stashes imported override sets.  Each is consumed by the first fresh
    [`Adaptive] compile of its (rule, variant) key, which then starts at
    generation 1 with the overrides applied — so one stale import costs at
    most one replan before normal adaptation takes over.  Empty override
    lists are ignored; keys already pending are replaced. *)

val plans : t -> Plan.t list
(** Every cached plan, in no particular order. *)

val program_plans : t -> Datalog.Ast.program -> Plan.t list
(** The cached plans arranged for display: for each rule of the program in
    order, its plans ([Full] first, then [Delta] variants by position),
    followed by plans for rules outside the program (e.g. the grounding's
    instantiation plans), sorted by label. *)
