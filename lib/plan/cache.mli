(** The plan cache: one compiled plan per (rule, variant).

    Keys are {e structural} — {!Datalog.Ast.compare_rule} on the rule plus
    the variant — so one cache can safely serve many rule lists over the
    same program (stratified layers, the well-founded alternating fixpoint's
    repeated saturations, Theta orbits) without identifier bookkeeping.

    Caching policy by planner:
    - [`Static]: hit unless some relation cardinality the plan's cost model
      saw has drifted by more than 4x (+16 slack) — estimates refresh as the
      fixpoint grows relations, without paying a replan per application;
    - [`Scan]: plans are size-independent, always hit;
    - [`Greedy]: never cached — recompiled per application (the ablation
      baseline the bench measures static against).

    A cache is {e not} synchronised: fetch the plans you need before fanning
    rule applications across domains (see {!Evallib.Saturate}). *)

type t

val create : unit -> t

val find :
  ?counters:Plan.counters ->
  ?planner:Plan.planner ->
  ?variant:Plan.variant ->
  ?label:string ->
  t ->
  sizes:(Plan.occurrence -> int -> int) ->
  universe_size:int ->
  Datalog.Ast.rule ->
  Plan.t
(** The cached plan, recompiled (and re-cached) as the policy above
    dictates.  [counters], when given, accumulates compiles and hits. *)

val cardinal : t -> int
(** Distinct (rule, variant) entries currently resident — what a
    long-lived server reports as its compiled-plan footprint. *)

val plans : t -> Plan.t list
(** Every cached plan, in no particular order. *)

val program_plans : t -> Datalog.Ast.program -> Plan.t list
(** The cached plans arranged for display: for each rule of the program in
    order, its plans ([Full] first, then [Delta] variants by position),
    followed by plans for rules outside the program (e.g. the grounding's
    instantiation plans), sorted by label. *)
