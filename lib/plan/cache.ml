module Ast = Datalog.Ast

type key = {
  krule : Ast.rule;
  kvariant : Plan.variant;
}

module H = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.kvariant = b.kvariant && Ast.compare_rule a.krule b.krule = 0

  let hash k = Hashtbl.hash (k.krule, k.kvariant)
end)

type t = { table : Plan.t H.t }

let create () = { table = H.create 32 }

(* Replan when any cardinality the cost model saw has drifted past this
   factor — early fixpoint stages grow relations from empty, so the first
   plans are made against unrepresentative sizes. *)
let drift_factor = 4

let drift_slack = 16

let drifted (plan : Plan.t) ~sizes =
  List.exists
    (fun ((occ : Plan.occurrence), arity, n0) ->
      let n = sizes occ arity in
      n > (drift_factor * n0) + drift_slack
      || n0 > (drift_factor * n) + drift_slack)
    plan.Plan.sizes_at_plan

let bump_compile = function
  | Some (c : Plan.counters) -> c.plan_compiles <- c.plan_compiles + 1
  | None -> ()

let bump_hit = function
  | Some (c : Plan.counters) -> c.plan_cache_hits <- c.plan_cache_hits + 1
  | None -> ()

let find ?counters ?planner ?(variant = Plan.Full) ?label cache ~sizes
    ~universe_size rule =
  let planner =
    match planner with Some p -> p | None -> Plan.default_planner ()
  in
  let compile () =
    bump_compile counters;
    Plan.compile ~planner ~variant ?label ~sizes ~universe_size rule
  in
  match planner with
  | `Greedy ->
    (* The ablation baseline replans on every application and never reads
       the cache. *)
    compile ()
  | `Static | `Scan -> (
    let key = { krule = rule; kvariant = variant } in
    match H.find_opt cache.table key with
    | Some plan
      when plan.Plan.planner = planner
           && (planner = `Scan || not (drifted plan ~sizes)) ->
      bump_hit counters;
      plan
    | _ ->
      let plan = compile () in
      H.replace cache.table key plan;
      plan)

let cardinal cache = H.length cache.table

let plans cache = H.fold (fun _ plan acc -> plan :: acc) cache.table []

let program_plans cache (p : Ast.program) =
  let all = plans cache in
  let variant_rank = function Plan.Full -> -1 | Plan.Delta j -> j in
  let for_rule r =
    List.filter (fun (pl : Plan.t) -> Ast.compare_rule pl.Plan.rule r = 0) all
    |> List.sort (fun (a : Plan.t) (b : Plan.t) ->
           Int.compare (variant_rank a.Plan.variant)
             (variant_rank b.Plan.variant))
  in
  let matched = List.concat_map for_rule p.rules in
  let rest =
    List.filter
      (fun (pl : Plan.t) ->
        not
          (List.exists (fun r -> Ast.compare_rule pl.Plan.rule r = 0) p.rules))
      all
    |> List.sort (fun (a : Plan.t) (b : Plan.t) ->
           String.compare a.Plan.label b.Plan.label)
  in
  matched @ rest
