module Ast = Datalog.Ast

type key = {
  krule : Ast.rule;
  kvariant : Plan.variant;
  klimit : (Ast.limit_kind * int) option;
      (* The head limit the plan was compiled under, when any: the same
         (rule, variant) is compiled both with tightening steps (normal
         evaluation) and without (DRed overdeletion derives the {e old}
         candidates, which never improve the current bound), and the two
         must not collide. *)
}

module H = Hashtbl.Make (struct
  type t = key

  let equal a b =
    a.kvariant = b.kvariant && a.klimit = b.klimit
    && Ast.compare_rule a.krule b.krule = 0

  let hash k = Hashtbl.hash (k.krule, k.kvariant, k.klimit)
end)

type t = {
  table : Plan.t H.t;
  pending : (int * int) list H.t;
      (* Overrides imported from a snapshot, keyed like [table], consumed
         (and removed) by the first fresh [`Adaptive] compile of that key —
         the restored server starts from the previous run's learned
         selectivities instead of re-learning them. *)
}

let create () = { table = H.create 32; pending = H.create 8 }

(* Consecutive feedback replans a plan may accumulate before the cache
   falls back to a plain recompile (which clears the overrides and resets
   the generation): each lookup performs at most one compilation, so a
   persistently mispredicting rule costs one recompile per stage at worst
   — the greedy planner's steady state — instead of diverging. *)
let max_generation = 2

(* Replan when any cardinality the cost model saw has drifted past the
   shared factor — early fixpoint stages grow relations from empty, so the
   first plans are made against unrepresentative sizes.  Occurrences a
   feedback replan overrode are skipped: their recorded size is the
   observed effective cardinality, which the resolver's raw size is
   expected to disagree with. *)
let drifted (plan : Plan.t) ~sizes =
  let f = Plan.drift_factor () in
  List.exists
    (fun ((occ : Plan.occurrence), arity, n0) ->
      (not (List.mem_assoc occ.Plan.index plan.Plan.overrides))
      &&
      let n = sizes occ arity in
      n > (f * n0) + Plan.drift_slack || n0 > (f * n) + Plan.drift_slack)
    plan.Plan.sizes_at_plan

let bump_compile = function
  | Some (c : Plan.counters) -> c.plan_compiles <- c.plan_compiles + 1
  | None -> ()

let bump_hit = function
  | Some (c : Plan.counters) -> c.plan_cache_hits <- c.plan_cache_hits + 1
  | None -> ()

let bump_replan = function
  | Some (c : Plan.counters) -> c.plan_replans <- c.plan_replans + 1
  | None -> ()

let find ?counters ?planner ?(variant = Plan.Full) ?label ?(limits = [])
    cache ~sizes ~universe_size rule =
  let planner =
    match planner with Some p -> p | None -> Plan.default_planner ()
  in
  let klimit = List.assoc_opt rule.Ast.head.pred limits in
  let compile () =
    bump_compile counters;
    Plan.compile ~planner ~variant ?label ~limits ~sizes ~universe_size rule
  in
  match planner with
  | `Greedy ->
    (* The ablation baseline replans on every application and never reads
       the cache. *)
    compile ()
  | `Static | `Scan -> (
    let key = { krule = rule; kvariant = variant; klimit } in
    match H.find_opt cache.table key with
    | Some plan
      when plan.Plan.planner = planner
           && (planner = `Scan || not (drifted plan ~sizes)) ->
      bump_hit counters;
      plan
    | _ ->
      let plan = compile () in
      H.replace cache.table key plan;
      plan)
  | `Adaptive -> (
    let key = { krule = rule; kvariant = variant; klimit } in
    let replace plan =
      H.replace cache.table key plan;
      plan
    in
    match H.find_opt cache.table key with
    | Some plan when plan.Plan.planner = `Adaptive -> (
      (* Feedback first: observed-selectivity divergence wins over the
         input-size check, because it carries the override that stops the
         same misprediction from recurring. *)
      match Plan.replan_hint plan with
      | Some (occ, eff) when plan.Plan.generation < max_generation ->
        bump_replan counters;
        let overrides =
          (occ, eff) :: List.remove_assoc occ plan.Plan.overrides
        in
        replace
          (Plan.compile ~planner ~variant ?label ~overrides ~limits
             ~generation:(plan.Plan.generation + 1)
             ~sizes ~universe_size rule)
      | Some _ ->
        (* Generation cap: restart adaptation from a plain compile. *)
        replace (compile ())
      | None ->
        (* No divergence.  If the plan has actually run, observation
           agreeing with the estimates supersedes the input-size proxy:
           per-step feedback already covers what size drift only
           predicts (a step whose input blew up shows up as observed
           rows past the factor).  Only a plan with no feedback yet
           falls back to the static drift check. *)
        if plan.Plan.fb.Plan.fb_runs = 0 && drifted plan ~sizes then
          replace (compile ())
        else begin
          bump_hit counters;
          plan
        end)
    | _ -> (
      (* Fresh compile.  A pending imported override set (seeded from a
         snapshot) starts the plan at generation 1 with the previous run's
         learned effective cardinalities already applied; it is consumed
         whether or not it helps, so a stale import costs one replan at
         most. *)
      match H.find_opt cache.pending { key with klimit = None } with
      | Some overrides ->
        H.remove cache.pending { key with klimit = None };
        bump_compile counters;
        replace
          (Plan.compile ~planner ~variant ?label ~overrides ~limits
             ~generation:1 ~sizes ~universe_size rule)
      | None -> replace (compile ())))

let cardinal cache = H.length cache.table

let export_overrides cache =
  H.fold
    (fun key (plan : Plan.t) acc ->
      match plan.Plan.overrides with
      | [] -> acc
      | overrides -> (key.krule, key.kvariant, overrides) :: acc)
    cache.table []

let seed_overrides cache seeds =
  List.iter
    (fun (rule, variant, overrides) ->
      if overrides <> [] then
        H.replace cache.pending
          (* Pending imports are keyed limit-blind: the snapshot format
             predates limits and overrides only concern join occurrences,
             which the tightening steps never are. *)
          { krule = rule; kvariant = variant; klimit = None }
          overrides)
    seeds

let plans cache = H.fold (fun _ plan acc -> plan :: acc) cache.table []

let program_plans cache (p : Ast.program) =
  let all = plans cache in
  let variant_rank = function Plan.Full -> -1 | Plan.Delta j -> j in
  let for_rule r =
    List.filter (fun (pl : Plan.t) -> Ast.compare_rule pl.Plan.rule r = 0) all
    |> List.sort (fun (a : Plan.t) (b : Plan.t) ->
           Int.compare (variant_rank a.Plan.variant)
             (variant_rank b.Plan.variant))
  in
  let matched = List.concat_map for_rule p.rules in
  let rest =
    List.filter
      (fun (pl : Plan.t) ->
        not
          (List.exists (fun r -> Ast.compare_rule pl.Plan.rule r = 0) p.rules))
      all
    |> List.sort (fun (a : Plan.t) (b : Plan.t) ->
           String.compare a.Plan.label b.Plan.label)
  in
  matched @ rest
