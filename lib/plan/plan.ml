module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Ast = Datalog.Ast
module Magic = Datalog.Magic

(* Every pool worker primes its domain-local store intern cache at spawn:
   sharded executions then never pay cache initialisation (or its registry
   lock) inside a morsel.  Registered here because [Domain_pool] cannot
   depend on [relalg]. *)
let () = Negdl_util.Domain_pool.set_worker_init Relalg.Store.prime_local_cache

type source = { find : string -> int -> Relation.t }

type occurrence = {
  polarity : [ `Pos | `Neg ];
  index : int;
  pred : string;
}

type resolver = occurrence -> source

type indexing = [ `Cached | `Percall | `Scan ]

type planner = [ `Static | `Greedy | `Scan | `Adaptive ]

let planner_of_string = function
  | "static" -> Ok `Static
  | "greedy" -> Ok `Greedy
  | "scan" -> Ok `Scan
  | "adaptive" -> Ok `Adaptive
  | s ->
    Error (Printf.sprintf "unknown planner %S (static|greedy|scan|adaptive)" s)

let planner_to_string = function
  | `Static -> "static"
  | `Greedy -> "greedy"
  | `Scan -> "scan"
  | `Adaptive -> "adaptive"

let pp_planner ppf p = Format.pp_print_string ppf (planner_to_string p)

(* The global default, ablatable like {!Relation.set_default_storage}. *)
let default = Atomic.make `Static

let set_default_planner p = Atomic.set default p

let default_planner () = Atomic.get default

(* Replan when an observed quantity has drifted past this factor from the
   one the cost model saw — early fixpoint stages grow relations from
   empty, so the first plans are made against unrepresentative sizes.
   Shared by the cache's input-size drift check and the adaptive planner's
   observed-selectivity check; the CLI's [--plan-drift] sets it. *)
let drift_cell = Atomic.make 4

let set_drift_factor f = Atomic.set drift_cell (max 1 f)

let drift_factor () = Atomic.get drift_cell

let drift_slack = 16

type variant = Full | Delta of int

let variant_to_string = function
  | Full -> "full"
  | Delta j -> Printf.sprintf "delta@%d" j

(* --- plan representation ------------------------------------------------ *)

type term =
  | Const of Symbol.t
  | Slot of int

type pat =
  | Check_const of Symbol.t
  | Check_slot of int
  | Bind of int

type access = {
  occ : int;
  pred : string;
  arity : int;
}

type op =
  | Index_probe of { access : access; col : int; key : term; pat : pat array }
  | Scan of { access : access; pat : pat array }
  | Const_filter of { access : access; args : term array }
  | Neg_check of { access : access; args : term array }
  | Exists of { access : access; pat : pat array }
  | Neg_exists of { access : access; pat : pat array; free : int }
  | Compare of { negated : bool; left : term; right : term }
  | Assign of { slot : int; value : term }
  | Enumerate of { slot : int }
  | Le_check of { left : term; right : term }
      (* Value order ({!Symbol.compare_value}): passes iff left <= right.
         [>=] compiles to this op with the operands swapped. *)
  | Plus_bind of { a : term; b : term; slot : int }
      (* slot := a + b when both operands read as integers; a non-numeric
         operand fails the row (additions range over the numeric sort). *)
  | Plus_check of { a : term; b : term; result : term }
  | Aggregate_probe of {
      access : access;
      kind : Ast.limit_kind;
      col : int;
      group : term array;
      bound : term;
    }
      (* Reads the head relation's current bound for the candidate row's
         group (O(1) through the memoized column index) and kills the row
         unless the candidate strictly improves it.  [access.occ] is the
         distinguished occurrence [-1]: every resolver maps it to the
         current valuation, never a delta. *)
  | Tighten_emit of {
      pred : string;
      kind : Ast.limit_kind;
      col : int;
      group : term array;
      bound : term;
    }
      (* Per-application dominance filter: keeps only rows that improve on
         the best candidate this execution context has already emitted for
         the group, so one application emits at most one surviving
         candidate per group per improvement chain.  Cross-context (and
         cross-rule) candidates are resolved by the tighten-union at the
         fixpoint layer, which is what makes sharded emission order
         irrelevant to the result. *)

type step = {
  op : op;
  est : float;
}

(* Per-plan observed cardinalities, harvested from per-context counters at
   the end of every run (the fixpoint-stage barrier on the sharded path) —
   never written from inside the row loop of more than one domain. *)
type feedback = {
  mutable fb_runs : int;
  fb_rows : int array;
  mutable fb_emitted : int;
  mutable fb_driving : int;
  mutable fb_deltas : int list;
}

let deltas_kept = 8

type t = {
  rule : Ast.rule;
  label : string;
  planner : planner;
  variant : variant;
  nslots : int;
  slot_names : string array;
  steps : step array;
  head_pred : string;
  head_args : term array;
  est_out : float;
  sizes_at_plan : (occurrence * int * int) list;
  universe_at_plan : int;
  overrides : (int * int) list;
  generation : int;
  fb : feedback;
}

type counters = {
  mutable plan_compiles : int;
  mutable plan_cache_hits : int;
  mutable plan_replans : int;
  mutable index_hits : int;
  mutable index_builds : int;
  mutable full_scans : int;
  mutable bucket_probes : int;
  mutable enumerations : int;
}

let counters () =
  {
    plan_compiles = 0;
    plan_cache_hits = 0;
    plan_replans = 0;
    index_hits = 0;
    index_builds = 0;
    full_scans = 0;
    bucket_probes = 0;
    enumerations = 0;
  }

let merge_counters dst ~src =
  dst.plan_compiles <- dst.plan_compiles + src.plan_compiles;
  dst.plan_cache_hits <- dst.plan_cache_hits + src.plan_cache_hits;
  dst.plan_replans <- dst.plan_replans + src.plan_replans;
  dst.index_hits <- dst.index_hits + src.index_hits;
  dst.index_builds <- dst.index_builds + src.index_builds;
  dst.full_scans <- dst.full_scans + src.full_scans;
  dst.bucket_probes <- dst.bucket_probes + src.bucket_probes;
  dst.enumerations <- dst.enumerations + src.enumerations

(* --- compilation -------------------------------------------------------- *)

(* Body literal, slot-resolved, paired with its occurrence index. *)
type blit =
  | BAtom of {
      polarity : [ `Pos | `Neg ];
      occ : int;
      pred : string;
      args : term array;
    }
  | BCmp of { negated : bool; left : term; right : term }
  | BLe of { left : term; right : term }
  | BPlus of { a : term; b : term; res : term }

let dummy = Symbol.unsafe_of_id 0

(* Below this cardinality the adaptive planner scans instead of probing:
   walking a handful of tuples is cheaper than the hash lookup plus bucket
   indirection, and iteration-heavy fixpoints live in this regime.  A
   mispredicted cutoff is exactly what the feedback loop repairs — the
   override substitutes the observed effective cardinality and the replan
   flips the access path. *)
let probe_cutoff = 256

let compile ?planner ?(variant = Full) ?label ?(overrides = [])
    ?(generation = 0) ?(limits = []) ~sizes ~universe_size (r : Ast.rule) =
  let planner =
    match planner with Some p -> p | None -> default_planner ()
  in
  let label =
    match label with Some l -> l | None -> Datalog.Pretty.rule_to_string r
  in
  (* Observed effective cardinalities (from a feedback replan) shadow the
     resolver's sizes for the positive occurrences they cover; everything
     downstream — join order, probe-vs-scan choice, estimates — then reads
     the observed value.  [sizes_at_plan] records the shadowed value too,
     so the cache's input-size drift check must skip overridden
     occurrences (see {!Cache}). *)
  let sizes occ arity =
    match List.assoc_opt occ.index overrides with
    | Some eff when occ.polarity = `Pos -> eff
    | _ -> sizes occ arity
  in
  let vars = Ast.rule_variables r in
  let nslots = List.length vars in
  let slot_names = Array.of_list vars in
  let slot_of =
    let index = Hashtbl.create 8 in
    List.iteri (fun i x -> Hashtbl.add index x i) vars;
    fun x -> Hashtbl.find index x
  in
  let term_of = function
    | Ast.Var x -> Slot (slot_of x)
    | Ast.Const c -> Const c
  in
  let blits =
    List.mapi
      (fun i (l : Ast.literal) ->
        match l with
        | Ast.Pos a ->
          BAtom
            {
              polarity = `Pos;
              occ = i;
              pred = a.pred;
              args = Array.of_list (List.map term_of a.args);
            }
        | Ast.Neg a ->
          BAtom
            {
              polarity = `Neg;
              occ = i;
              pred = a.pred;
              args = Array.of_list (List.map term_of a.args);
            }
        | Ast.Eq (t1, t2) ->
          BCmp { negated = false; left = term_of t1; right = term_of t2 }
        | Ast.Neq (t1, t2) ->
          BCmp { negated = true; left = term_of t1; right = term_of t2 }
        | Ast.Leq (t1, t2) -> BLe { left = term_of t1; right = term_of t2 }
        | Ast.Geq (t1, t2) -> BLe { left = term_of t2; right = term_of t1 }
        | Ast.Plus (t1, t2, t3) ->
          BPlus { a = term_of t1; b = term_of t2; res = term_of t3 })
      r.body
  in
  (* The delta variant is the same rule with one positive occurrence
     redirected at the delta by the resolver; the occurrence's (small)
     cardinality reaches the cost model through [sizes], so compilation
     itself is variant-blind beyond the sizes it reads. *)
  let bound = Array.make (max nslots 1) false in
  let is_bound = function Const _ -> true | Slot s -> bound.(s) in
  let all_bound args = Array.for_all is_bound args in
  let u = float_of_int (max universe_size 1) in
  let sizes_seen = Hashtbl.create 8 in
  let size polarity occ pred arity =
    let o = { polarity; index = occ; pred } in
    let n = sizes o arity in
    if polarity = `Pos && not (Hashtbl.mem sizes_seen occ) then
      Hashtbl.add sizes_seen occ (o, arity, n);
    n
  in
  let membership_prob card arity =
    if arity = 0 then if card > 0 then 1.0 else 0.0
    else Float.min 1.0 (float_of_int card /. (u ** float_of_int arity))
  in
  let head_slot = Array.make (max nslots 1) false in
  List.iter
    (function Ast.Var x -> head_slot.(slot_of x) <- true | Ast.Const _ -> ())
    r.head.args;
  let rows = ref 1.0 in
  let steps = ref [] in
  let push op est = steps := { op; est } :: !steps in
  let mark_bound s = bound.(s) <- true in
  (* Pattern for an atom access: constants and already-bound slots are
     checked, fresh slots bind (first occurrence binds, repeats check). *)
  let pattern args =
    Array.map
      (fun t ->
        match t with
        | Const c -> Check_const c
        | Slot s ->
          if bound.(s) then Check_slot s
          else begin
            mark_bound s;
            Bind s
          end)
      args
  in
  let check_positions args =
    Array.fold_left
      (fun n t -> if is_bound t then n + 1 else n)
      0 args
  in
  let emit_filter polarity occ pred args =
    let arity = Array.length args in
    let card = size polarity occ pred arity in
    let p = membership_prob card arity in
    let access = { occ; pred; arity } in
    (match polarity with
    | `Pos ->
      rows := !rows *. p;
      push (Const_filter { access; args }) !rows
    | `Neg ->
      rows := !rows *. (1.0 -. p);
      push (Neg_check { access; args }) !rows)
  in
  let emit_compare negated left right =
    rows := !rows *. (if negated then (u -. 1.0) /. u else 1.0 /. u);
    push (Compare { negated; left; right }) !rows
  in
  let emit_enumerate s =
    mark_bound s;
    rows := !rows *. u;
    push (Enumerate { slot = s }) !rows
  in
  (* Order checks halve the stream on average; an addition either binds
     its result (no filtering) or checks one value in [u]. *)
  let emit_le left right =
    rows := !rows *. 0.5;
    push (Le_check { left; right }) !rows
  in
  let emit_plus a b res =
    match res with
    | Slot s when not bound.(s) ->
      mark_bound s;
      push (Plus_bind { a; b; slot = s }) !rows
    | _ ->
      rows := !rows *. (1.0 /. u);
      push (Plus_check { a; b; result = res }) !rows
  in
  (* Existence pattern: constants and bound slots check, dead slots bind on
     first occurrence (repeats check) but are {e not} marked bound — the
     binding is a throwaway wildcard nothing downstream reads.  [free] is
     the count of distinct dead slots. *)
  let exists_pattern args =
    let seen = Hashtbl.create 4 in
    let free = ref 0 in
    let pat =
      Array.map
        (fun t ->
          match t with
          | Const c -> Check_const c
          | Slot s ->
            if bound.(s) || Hashtbl.mem seen s then Check_slot s
            else begin
              Hashtbl.add seen s ();
              incr free;
              Bind s
            end)
        args
    in
    (pat, !free)
  in
  let emit_exists polarity occ pred args =
    let arity = Array.length args in
    let card = size polarity occ pred arity in
    let checks = check_positions args in
    let access = { occ; pred; arity } in
    let pat, free = exists_pattern args in
    match polarity with
    | `Pos ->
      (* Succeeds iff some witness matches the bound prefix: at most one
         row survives per input row. *)
      let p =
        Float.min 1.0 (float_of_int card /. (u ** float_of_int checks))
      in
      rows := !rows *. p;
      push (Exists { access; pat }) !rows
    | `Neg ->
      (* Succeeds unless every instantiation of the free columns is
         present — fail only when the relation covers all [u^free] of
         them. *)
      let p_inst = membership_prob card (checks + free) in
      let all_present = p_inst ** (u ** float_of_int free) in
      rows := !rows *. (1.0 -. all_present);
      push (Neg_exists { access; pat; free }) !rows
  in
  let emit_join occ pred args =
    let arity = Array.length args in
    let card = size `Pos occ pred arity in
    let checks = check_positions args in
    let access = { occ; pred; arity } in
    (* Probe through the first bound column when one exists (and the
       planner is allowed to plan indexes); otherwise scan.  The adaptive
       planner prefers a constant key (sideways-passed head bindings make
       these common under magic-style workloads) and falls back to a scan
       below [probe_cutoff], trusting the feedback loop to flip the
       decision if observation disagrees. *)
    let col = ref (-1) in
    Array.iteri
      (fun i t -> if !col < 0 && is_bound t then col := i)
      args;
    if planner = `Adaptive then begin
      let const_col = ref (-1) in
      Array.iteri
        (fun i t ->
          if !const_col < 0 && (match t with Const _ -> true | Slot _ -> false)
          then const_col := i)
        args;
      if !const_col >= 0 then col := !const_col
    end;
    let est =
      !rows *. float_of_int card /. (u ** float_of_int checks)
    in
    rows := est;
    let use_probe =
      !col >= 0
      &&
      match planner with
      | `Scan -> false
      | `Adaptive -> card > probe_cutoff
      | `Static | `Greedy -> true
    in
    if use_probe then
      let key = args.(!col) in
      (* [pattern] binds the fresh slots; the probed column stays a check
         in the pattern so the [`Scan] indexing fallback needs no special
         case. *)
      push (Index_probe { access; col = !col; key; pat = pattern args }) est
    else push (Scan { access; pat = pattern args }) est
  in
  (* Cost-based ordering (Static / Greedy / Adaptive): repeatedly
     1. emit every decided literal (comparisons, then half-bound equality
        propagation, then membership filters), turning atoms whose only
        unbound variables are {e dead} (head-absent and unread by any
        other pending literal) into first-witness existence checks;
     2. join through the positive atom with the fewest estimated matches
        (the adaptive planner breaks near-ties by the magic-sets
        adornment — most bound positions first);
     3. with only under-bound negations / comparisons left, enumerate the
        universe for their first unbound variable. *)
  let pending = ref blits in
  let remove l = pending := List.filter (fun l' -> l' != l) !pending in
  let occurs_elsewhere self s =
    List.exists
      (fun l' ->
        l' != self
        &&
        match l' with
        | BAtom { args; _ } ->
          Array.exists
            (function Slot s' -> s' = s | Const _ -> false)
            args
        | BCmp { left; right; _ } | BLe { left; right } ->
          (match left with Slot s' -> s' = s | Const _ -> false)
          || (match right with Slot s' -> s' = s | Const _ -> false)
        | BPlus { a; b; res } ->
          List.exists
            (function Slot s' -> s' = s | Const _ -> false)
            [ a; b; res ])
      !pending
  in
  (* An atom is an existence check when every argument is a constant, a
     bound slot, or a dead slot — and at least one is dead (all-bound
     atoms are membership filters, found by the decided pass first). *)
  let existence_candidate l =
    match l with
    | BAtom { args; _ } ->
      (not (all_bound args))
      && Array.for_all
           (fun t ->
             match t with
             | Const _ -> true
             | Slot s ->
               bound.(s)
               || ((not head_slot.(s)) && not (occurs_elsewhere l s)))
           args
    | BCmp _ | BLe _ | BPlus _ -> false
  in
  let rec settle () =
    let decided =
      List.find_opt
        (function
          | BCmp { left; right; _ } | BLe { left; right } ->
            is_bound left && is_bound right
          | BPlus { a; b; _ } ->
            (* Decided as soon as the operands are bound: the result either
               checks (bound) or binds (fresh) — both are constant work. *)
            is_bound a && is_bound b
          | BAtom { args; _ } -> all_bound args)
        !pending
    in
    match decided with
    | Some (BCmp { negated; left; right } as l) ->
      remove l;
      emit_compare negated left right;
      settle ()
    | Some (BLe { left; right } as l) ->
      remove l;
      emit_le left right;
      settle ()
    | Some (BPlus { a; b; res } as l) ->
      remove l;
      emit_plus a b res;
      settle ()
    | Some (BAtom { polarity; occ; pred; args } as l) ->
      remove l;
      emit_filter polarity occ pred args;
      settle ()
    | None -> (
      let half_eq =
        List.find_map
          (fun l ->
            match l with
            | BCmp { negated = false; left; right } -> (
              match (is_bound left, is_bound right, left, right) with
              | true, false, _, Slot s -> Some (l, s, left)
              | false, true, Slot s, _ -> Some (l, s, right)
              | _ -> None)
            | _ -> None)
          !pending
      in
      match half_eq with
      | Some (l, s, v) ->
        remove l;
        mark_bound s;
        push (Assign { slot = s; value = v }) !rows;
        settle ()
      | None -> (
        match List.find_opt existence_candidate !pending with
        | Some (BAtom { polarity; occ; pred; args } as l) ->
          remove l;
          emit_exists polarity occ pred args;
          settle ()
        | Some (BCmp _ | BLe _ | BPlus _) -> assert false
        | None -> ()))
  in
  let bound_var_names () =
    List.filteri (fun i _ -> bound.(i)) vars
  in
  let adorned_bound_count occ =
    match List.nth_opt r.body occ with
    | Some (Ast.Pos a) | Some (Ast.Neg a) ->
      let sigma = Magic.adornment ~bound:(bound_var_names ()) a in
      String.fold_left (fun n ch -> if ch = 'b' then n + 1 else n) 0 sigma
    | _ -> 0
  in
  let best_join () =
    List.fold_left
      (fun best l ->
        match l with
        | BAtom { polarity = `Pos; occ; pred; args } ->
          let arity = Array.length args in
          let card = size `Pos occ pred arity in
          let est =
            float_of_int card /. (u ** float_of_int (check_positions args))
          in
          (match best with
          | Some (_, best_est, best_bc) ->
            if est < best_est then Some (l, est, adorned_bound_count occ)
            else if
              (* Near-tie: sideways information passing — prefer the atom
                 the current bindings adorn most ('b'-count under the
                 magic-sets analysis).  Adaptive only, so the static plans
                 the cram tests pin are byte-identical. *)
              planner = `Adaptive
              && est = best_est
              && adorned_bound_count occ > best_bc
            then Some (l, est, adorned_bound_count occ)
            else best
          | None -> Some (l, est, adorned_bound_count occ))
        | _ -> best)
      None !pending
  in
  let first_unbound () =
    let found = ref None in
    let see = function
      | Slot s when (not bound.(s)) && !found = None -> found := Some s
      | _ -> ()
    in
    List.iter
      (function
        | BAtom { args; _ } -> Array.iter see args
        | BCmp { left; right; _ } | BLe { left; right } ->
          see left;
          see right
        | BPlus { a; b; res } ->
          (* Operands first: enumerating them lets the addition compute its
             result instead of guessing it. *)
          see a;
          see b;
          see res)
      !pending;
    !found
  in
  let rec solve () =
    settle ();
    if !pending <> [] then begin
      (match best_join () with
      | Some ((BAtom { occ; pred; args; _ } as l), _, _) ->
        remove l;
        emit_join occ pred args
      | Some _ -> assert false
      | None -> (
        match first_unbound () with
        | Some s -> emit_enumerate s
        | None -> assert false));
      solve ()
    end
  in
  let textual () =
    (* [`Scan] planner: textual order, no probes, no reordering, no
       existence short-circuits — the pre-planning ablation baseline. *)
    List.iter
      (fun l ->
        match l with
        | BCmp { negated = false; left; right } -> (
          match (is_bound left, is_bound right, left, right) with
          | true, true, _, _ -> emit_compare false left right
          | true, false, _, Slot s ->
            mark_bound s;
            push (Assign { slot = s; value = left }) !rows
          | false, true, Slot s, _ ->
            mark_bound s;
            push (Assign { slot = s; value = right }) !rows
          | false, false, Slot s, _ ->
            emit_enumerate s;
            if is_bound right then emit_compare false left right
            else begin
              (match right with
              | Slot s' ->
                mark_bound s';
                push (Assign { slot = s'; value = left }) !rows
              | Const _ -> assert false)
            end
          | _ -> assert false)
        | BCmp { negated = true; left; right } ->
          (match left with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          (match right with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          emit_compare true left right
        | BLe { left; right } ->
          (match left with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          (match right with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          emit_le left right
        | BPlus { a; b; res } ->
          (match a with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          (match b with Slot s when not bound.(s) -> emit_enumerate s | _ -> ());
          emit_plus a b res
        | BAtom { polarity = `Pos; occ; pred; args } ->
          if all_bound args then emit_filter `Pos occ pred args
          else emit_join occ pred args
        | BAtom { polarity = `Neg; occ; pred; args } ->
          Array.iter
            (function
              | Slot s when not bound.(s) -> emit_enumerate s
              | _ -> ())
            args;
          emit_filter `Neg occ pred args)
      blits
  in
  (match planner with
  | `Scan -> textual ()
  | `Static | `Greedy | `Adaptive -> solve ());
  let head_args =
    Array.of_list (List.map term_of r.head.args)
  in
  (* Head-only variables range over the whole universe (the paper's
     semantics is not range-restricted). *)
  Array.iter
    (function
      | Slot s when not bound.(s) -> emit_enumerate s
      | _ -> ())
    head_args;
  (* A rule whose head is a declared limit predicate closes with the two
     aggregation steps: probe the current bound for the candidate's group,
     then the per-application dominance filter.  Only rows that improve the
     group's bound reach the projection — the fixpoint layer's
     tighten-union stays the source of truth, these steps just keep the
     candidate stream sparse (and visible to [explain]). *)
  (match List.assoc_opt r.head.pred limits with
  | Some ((kind : Ast.limit_kind), col)
    when col >= 0 && col < Array.length head_args ->
    let arity = Array.length head_args in
    let group =
      Array.init (arity - 1) (fun j ->
          head_args.(if j < col then j else j + 1))
    in
    let bound_t = head_args.(col) in
    rows := !rows *. 0.5;
    push
      (Aggregate_probe
         {
           access = { occ = -1; pred = r.head.pred; arity };
           kind;
           col;
           group;
           bound = bound_t;
         })
      !rows;
    rows := !rows *. 0.5;
    push
      (Tighten_emit
         { pred = r.head.pred; kind; col; group; bound = bound_t })
      !rows
  | _ -> ());
  let steps = Array.of_list (List.rev !steps) in
  {
    rule = r;
    label;
    planner;
    variant;
    nslots;
    slot_names;
    steps;
    head_pred = r.head.pred;
    head_args;
    est_out = !rows;
    sizes_at_plan =
      Hashtbl.fold (fun _ entry acc -> entry :: acc) sizes_seen []
      |> List.sort (fun ((a : occurrence), _, _) ((b : occurrence), _, _) ->
             Int.compare a.index b.index);
    universe_at_plan = universe_size;
    overrides;
    generation;
    fb =
      {
        fb_runs = 0;
        fb_rows = Array.make (max (Array.length steps) 1) 0;
        fb_emitted = 0;
        fb_driving = 0;
        fb_deltas = [];
      };
  }

(* --- the feedback loop -------------------------------------------------- *)

let pat_checks pat =
  Array.fold_left
    (fun n p -> match p with Bind _ -> n | Check_const _ | Check_slot _ -> n + 1)
    0 pat

(* Observed-selectivity divergence: compare each join step's average
   observed output rows against its estimate.  Input-size drift is the
   cache's job (it re-reads the resolver's cardinalities); what only the
   feedback record can see is a {e selectivity} misprediction — the right
   input sizes flowing through the wrong join order or access path.  The
   worst-diverging, not-yet-overridden join wins; the override is the
   effective cardinality that would have produced the observed output
   ([obs/in * u^checks] — the cost model solved for card). *)
let replan_hint plan =
  let fb = plan.fb in
  if fb.fb_runs = 0 then None
  else begin
    let f = float_of_int (drift_factor ()) in
    let slack = float_of_int drift_slack in
    let runs = float_of_int fb.fb_runs in
    let u = float_of_int (max plan.universe_at_plan 1) in
    let best = ref None in
    let input = ref 1.0 in
    Array.iteri
      (fun i st ->
        let obs = float_of_int fb.fb_rows.(i) /. runs in
        (match st.op with
        | Scan { access; pat } | Index_probe { access; pat; _ }
          when not (List.mem_assoc access.occ plan.overrides) ->
          let est = st.est in
          if obs > (f *. est) +. slack || est > (f *. obs) +. slack then begin
            let ratio =
              let r = (obs +. slack) /. (est +. slack) in
              if r < 1.0 then 1.0 /. r else r
            in
            let eff =
              (obs /. Float.max !input 1.0) *. (u ** float_of_int (pat_checks pat))
            in
            let eff = int_of_float (Float.min eff 1e15) in
            match !best with
            | Some (r0, _, _) when r0 >= ratio -> ()
            | _ -> best := Some (ratio, access.occ, max 0 eff)
          end
        | _ -> ());
        input := obs)
      plan.steps;
    Option.map (fun (_, occ, eff) -> (occ, eff)) !best
  end

(* --- execution ---------------------------------------------------------- *)

(* Pattern matching against a candidate tuple by return value: constants
   and bound slots check, fresh slots bind in place.  A partial bind left
   behind by a failed match is harmless — a slot written at step [k] is
   only read by steps after [k], which run only on a full match. *)
let match_pat env pat t =
  let n = Array.length pat in
  let rec go i =
    i = n
    || (match pat.(i) with
       | Bind s ->
         Array.unsafe_set env s (Tuple.get t i);
         true
       | Check_const c -> Symbol.equal (Tuple.get t i) c
       | Check_slot s -> Symbol.equal (Tuple.get t i) (Array.unsafe_get env s))
       && go (i + 1)
  in
  go 0

let value env = function
  | Const c -> c
  | Slot s -> Array.unsafe_get env s

(* Saturating power for the [Neg_exists] witness bound: [u^free] can
   overflow for large universes, and any saturated bound is unreachable by
   a finite relation anyway. *)
let ipow_sat base e =
  let base = max base 0 in
  let rec go acc e =
    if e = 0 then acc
    else if base > 1 && acc > max_int / base then max_int
    else go (acc * base) (e - 1)
  in
  go 1 e

(* A prepared execution context: the per-run state the old [run] built
   inline — resolved sources, slot environment, scratch probe tuples,
   per-call index tables — plus the index of the plan's {e driving} step
   (the first [Scan]/[Index_probe]/[Enumerate], whose input rows the
   sharded executor partitions into morsels).  One context belongs to one
   domain; the shared compiled plan is immutable — per-step row counts
   accumulate in the context's [p_rows] and are folded into the plan's
   feedback record at the run barrier ({!harvest}). *)
type prepared = {
  p_plan : t;
  p_indexing : indexing;
  p_counters : counters option;
  p_universe : Symbol.t list;
  p_usize : int;
  p_env : Symbol.t array;
  p_rels : Relation.t array;
  p_scratch : Symbol.t array array;
  p_percall : (Symbol.t, Tuple.t list) Hashtbl.t option array;
  p_driving : int;
  p_rows : int array;
  p_best : (Tuple.t, Symbol.t) Hashtbl.t;
      (* [Tighten_emit]'s per-context best candidate per group.  Contexts
         are per run (and per shard), so the table never outlives the
         stage whose current valuation the probes read. *)
  mutable p_emitted : int;
  mutable p_din : int;
}

let prepare ?(indexing = `Cached) ?counters ~resolver ~universe plan =
  let steps = plan.steps in
  let nsteps = Array.length steps in
  let env = Array.make (max plan.nslots 1) dummy in
  let rels = Array.make (max nsteps 1) (Relation.empty 0) in
  let scratch = Array.make (max nsteps 1) [||] in
  let percall = Array.make (max nsteps 1) None in
  Array.iteri
    (fun i st ->
      match st.op with
      | Index_probe { access; _ } | Scan { access; _ } | Exists { access; _ }
        ->
        rels.(i) <-
          (resolver { polarity = `Pos; index = access.occ; pred = access.pred })
            .find access.pred access.arity
      | Const_filter { access; _ } ->
        rels.(i) <-
          (resolver { polarity = `Pos; index = access.occ; pred = access.pred })
            .find access.pred access.arity;
        scratch.(i) <- Array.make access.arity dummy
      | Neg_check { access; _ } ->
        rels.(i) <-
          (resolver { polarity = `Neg; index = access.occ; pred = access.pred })
            .find access.pred access.arity;
        scratch.(i) <- Array.make access.arity dummy
      | Neg_exists { access; _ } ->
        rels.(i) <-
          (resolver { polarity = `Neg; index = access.occ; pred = access.pred })
            .find access.pred access.arity
      | Aggregate_probe { access; _ } ->
        (* The distinguished occurrence [-1] never matches a delta
           redirection, so every resolver maps it to the current
           valuation of the head relation. *)
        rels.(i) <-
          (resolver { polarity = `Pos; index = access.occ; pred = access.pred })
            .find access.pred access.arity
      | Compare _ | Assign _ | Enumerate _ | Le_check _ | Plus_bind _
      | Plus_check _ | Tighten_emit _ ->
        ())
    steps;
  let driving = ref (-1) in
  Array.iteri
    (fun i st ->
      if !driving < 0 then
        match st.op with
        | Scan _ | Index_probe _ | Enumerate _ -> driving := i
        | Compare _ | Assign _ | Const_filter _ | Neg_check _ | Exists _
        | Neg_exists _ | Le_check _ | Plus_bind _ | Plus_check _
        | Aggregate_probe _ | Tighten_emit _ ->
          ())
    steps;
  {
    p_plan = plan;
    p_indexing = indexing;
    p_counters = counters;
    p_universe = universe;
    p_usize = List.length universe;
    p_env = env;
    p_rels = rels;
    p_scratch = scratch;
    p_percall = percall;
    p_driving = !driving;
    p_rows = Array.make (max nsteps 1) 0;
    p_best = Hashtbl.create 16;
    p_emitted = 0;
    p_din = 0;
  }

(* Folds one or more execution contexts (participant order on the sharded
   path) into the plan's feedback record, closing one run: per-step row
   counts, emitted rows, and the driving step's input size, which also
   heads the recent-deltas window.  Called once per {!run} /
   {!run_sharded} — the stage barrier — so the plan itself is never
   written concurrently. *)
let harvest plan ctxs =
  let fb = plan.fb in
  let din = List.fold_left (fun acc c -> acc + c.p_din) 0 ctxs in
  List.iter
    (fun c ->
      Array.iteri
        (fun i n -> if n > 0 then fb.fb_rows.(i) <- fb.fb_rows.(i) + n)
        c.p_rows;
      fb.fb_emitted <- fb.fb_emitted + c.p_emitted)
    ctxs;
  fb.fb_driving <- fb.fb_driving + din;
  fb.fb_runs <- fb.fb_runs + 1;
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  fb.fb_deltas <- din :: take (deltas_kept - 1) fb.fb_deltas

let bump_scan prep =
  match prep.p_counters with
  | Some c -> c.full_scans <- c.full_scans + 1
  | None -> ()

let bump_probes prep n =
  match prep.p_counters with
  | Some c -> c.bucket_probes <- c.bucket_probes + n
  | None -> ()

let bump_index prep hit =
  match prep.p_counters with
  | Some c ->
    if hit then c.index_hits <- c.index_hits + 1
    else c.index_builds <- c.index_builds + 1
  | None -> ()

let bump_enum prep =
  match prep.p_counters with
  | Some c -> c.enumerations <- c.enumerations + 1
  | None -> ()

let probe prep i args =
  let scr = prep.p_scratch.(i) in
  let env = prep.p_env in
  for j = 0 to Array.length args - 1 do
    scr.(j) <- value env args.(j)
  done;
  (* Probed, never retained. *)
  Relation.mem (Tuple.unsafe_make scr) prep.p_rels.(i)

(* First-witness check of a positive atom: stop at the first tuple
   matching the bound prefix instead of materializing the bindings. *)
let exists_holds prep i pat =
  Relation.exists (fun t -> match_pat prep.p_env pat t) prep.p_rels.(i)

(* Negated atom whose free columns are dead: succeeds iff some
   instantiation of them is absent, i.e. the bound prefix matches fewer
   than [u^free] tuples.  [Relation.exists] short-circuits the moment the
   count saturates the bound, so densely-covered prefixes exit early. *)
let neg_exists_fails prep i pat free =
  let limit = ipow_sat prep.p_usize free in
  limit = 0
  ||
  let count = ref 0 in
  Relation.exists
    (fun t ->
      match_pat prep.p_env pat t
      && begin
           incr count;
           !count >= limit
         end)
    prep.p_rels.(i)

let agg_better (kind : Ast.limit_kind) a b =
  let c = Symbol.compare_value a b in
  match kind with Ast.Min -> c < 0 | Ast.Max -> c > 0

(* The head relation's current bound for the candidate row's group: the
   limit invariant keeps at most one tuple per group, so the lookup is one
   probe through the memoized index on the first group column (the whole
   relation holds at most one tuple when the group is empty). *)
let current_group_bound prep i col group =
  let rel = prep.p_rels.(i) in
  let env = prep.p_env in
  let n = Array.length group in
  if n = 0 then
    Option.map (fun t -> Tuple.get t col) (Relation.choose_opt rel)
  else begin
    let pos j = if j < col then j else j + 1 in
    let matches t =
      let ok = ref true in
      Array.iteri
        (fun j tm ->
          if not (Symbol.equal (Tuple.get t (pos j)) (value env tm)) then
            ok := false)
        group;
      !ok
    in
    Relation.matching (pos 0) (value env group.(0)) rel
    |> List.find_opt matches
    |> Option.map (fun t -> Tuple.get t col)
  end

let percall_table prep i col =
  match prep.p_percall.(i) with
  | Some table ->
    bump_index prep true;
    table
  | None ->
    bump_index prep false;
    let table = Hashtbl.create 64 in
    Relation.iter
      (fun t ->
        let k = Tuple.get t col in
        Hashtbl.replace table k
          (t :: Option.value ~default:[] (Hashtbl.find_opt table k)))
      prep.p_rels.(i);
    prep.p_percall.(i) <- Some table;
    table

(* Rows of the driving step's input — the quantity the sharded executor
   partitions.  Positions are stable per relation value: backend iteration
   order for scans, bucket order for probes, universe order for
   enumerations.  The constant prefix before the driving step (compares,
   assigns, membership filters, existence checks) is evaluated here so a
   probe key bound by an earlier [Assign] resolves, and so a failed prefix
   reports 0 rows; no row or probe counters are bumped (this is a counting
   pass — execution re-runs the prefix).  {!run_sharded} only pays it on a
   plan's first run: afterwards the feedback record's observed
   driving-input average sizes the morsels. *)
let driving_rows prep =
  let steps = prep.p_plan.steps in
  let env = prep.p_env in
  let d = prep.p_driving in
  if d < 0 then 1
  else begin
    let rec prefix i =
      i = d
      || (match steps.(i).op with
         | Compare { negated; left; right } ->
           Symbol.equal (value env left) (value env right) <> negated
         | Assign { slot; value = v } ->
           env.(slot) <- value env v;
           true
         | Const_filter { args; _ } -> probe prep i args
         | Neg_check { args; _ } -> not (probe prep i args)
         | Exists { pat; _ } -> exists_holds prep i pat
         | Neg_exists { pat; free; _ } ->
           not (neg_exists_fails prep i pat free)
         | Le_check { left; right } ->
           Symbol.compare_value (value env left) (value env right) <= 0
         | Plus_bind { a; b; slot } -> (
           match (Symbol.as_int (value env a), Symbol.as_int (value env b))
           with
           | Some x, Some y ->
             env.(slot) <- Symbol.of_int (x + y);
             true
           | _ -> false)
         | Plus_check { a; b; result } -> (
           match
             ( Symbol.as_int (value env a),
               Symbol.as_int (value env b),
               Symbol.as_int (value env result) )
           with
           | Some x, Some y, Some z -> z = x + y
           | _ -> false)
         (* The aggregation steps close the plan, after the driving step. *)
         | Aggregate_probe _ | Tighten_emit _ -> assert false
         | Scan _ | Index_probe _ | Enumerate _ -> assert false)
         && prefix (i + 1)
    in
    if not (prefix 0) then 0
    else
      match steps.(d).op with
      | Scan _ -> Relation.cardinal prep.p_rels.(d)
      | Enumerate _ -> prep.p_usize
      | Index_probe { col; key; _ } -> (
        match prep.p_indexing with
        | `Scan -> Relation.cardinal prep.p_rels.(d)
        | `Cached ->
          (* Also warms the relation's memoized index in the coordinator,
             so shard contexts hit it. *)
          List.length (Relation.matching col (value env key) prep.p_rels.(d))
        | `Percall ->
          (* Count matches without building this context's throwaway
             table — shard contexts each build their own. *)
          let k = value env key in
          Relation.fold
            (fun t n -> if Symbol.equal (Tuple.get t col) k then n + 1 else n)
            prep.p_rels.(d) 0)
      | Compare _ | Assign _ | Const_filter _ | Neg_check _ | Exists _
      | Neg_exists _ | Le_check _ | Plus_bind _ | Plus_check _
      | Aggregate_probe _ | Tighten_emit _ ->
        assert false
  end

(* The execution core.  [lo, hi) restricts the {e driving} step to the
   given slice of its input positions; [0, max_int) is an unrestricted
   execution (and behaves — counters included — exactly like one, since
   every position is then in range).  Steps before the driving step are
   constant-decided, so the driving step runs at most once per call and a
   single position cursor suffices.  The driving step also counts the
   input positions it visits into [p_din] — summed over a run's contexts,
   that is exactly the driving input size the next sharded run partitions
   without re-counting. *)
let exec_range prep ~lo ~hi ~on_row =
  let plan = prep.p_plan in
  let steps = plan.steps in
  let nsteps = Array.length steps in
  let rows = prep.p_rows in
  let env = prep.p_env in
  let universe = prep.p_universe in
  let d = prep.p_driving in
  let rec exec i =
    if i = nsteps then begin
      prep.p_emitted <- prep.p_emitted + 1;
      on_row env
    end
    else
      let st = Array.unsafe_get steps i in
      match st.op with
      | Compare { negated; left; right } ->
        if Symbol.equal (value env left) (value env right) <> negated then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Assign { slot; value = v } ->
        env.(slot) <- value env v;
        rows.(i) <- rows.(i) + 1;
        exec (i + 1)
      | Enumerate { slot } ->
        bump_enum prep;
        if i = d then begin
          let pos = ref 0 in
          List.iter
            (fun c ->
              let p = !pos in
              incr pos;
              if p >= lo && p < hi then begin
                prep.p_din <- prep.p_din + 1;
                env.(slot) <- c;
                rows.(i) <- rows.(i) + 1;
                exec (i + 1)
              end)
            universe
        end
        else
          List.iter
            (fun c ->
              env.(slot) <- c;
              rows.(i) <- rows.(i) + 1;
              exec (i + 1))
            universe
      | Const_filter { args; _ } ->
        if probe prep i args then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Neg_check { args; _ } ->
        if not (probe prep i args) then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Exists { pat; _ } ->
        bump_scan prep;
        if exists_holds prep i pat then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Neg_exists { pat; free; _ } ->
        bump_scan prep;
        if not (neg_exists_fails prep i pat free) then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Le_check { left; right } ->
        if Symbol.compare_value (value env left) (value env right) <= 0
        then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Plus_bind { a; b; slot } -> (
        match (Symbol.as_int (value env a), Symbol.as_int (value env b)) with
        | Some x, Some y ->
          env.(slot) <- Symbol.of_int (x + y);
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        | _ -> ())
      | Plus_check { a; b; result } -> (
        match
          ( Symbol.as_int (value env a),
            Symbol.as_int (value env b),
            Symbol.as_int (value env result) )
        with
        | Some x, Some y, Some z when z = x + y ->
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        | _ -> ())
      | Aggregate_probe { kind; col; group; bound; _ } ->
        let cand = value env bound in
        let keep =
          match current_group_bound prep i col group with
          | Some b -> agg_better kind cand b
          | None -> true
        in
        if keep then begin
          rows.(i) <- rows.(i) + 1;
          exec (i + 1)
        end
      | Tighten_emit { kind; group; bound; _ } -> (
        let cand = value env bound in
        let g = Tuple.unsafe_make (Array.map (value env) group) in
        match Hashtbl.find_opt prep.p_best g with
        | Some b when not (agg_better kind cand b) -> ()
        | _ ->
          Hashtbl.replace prep.p_best g cand;
          rows.(i) <- rows.(i) + 1;
          exec (i + 1))
      | Scan { pat; _ } ->
        bump_scan prep;
        scan_rel i pat
      | Index_probe { col; key; pat; _ } -> (
        match prep.p_indexing with
        | `Scan ->
          (* The probed column is still checked by the pattern, so the
             fallback is a plain filtered scan (sliced by scan position
             when this is the driving step). *)
          bump_scan prep;
          scan_rel i pat
        | `Cached ->
          bump_index prep (Relation.has_index prep.p_rels.(i) col);
          stream i pat (Relation.matching col (value env key) prep.p_rels.(i))
        | `Percall ->
          let table = percall_table prep i col in
          stream i pat
            (Option.value ~default:[] (Hashtbl.find_opt table (value env key))))
  and scan_rel i pat =
    if i = d then begin
      let pos = ref 0 in
      Relation.iter
        (fun t ->
          let p = !pos in
          incr pos;
          if p >= lo && p < hi then begin
            prep.p_din <- prep.p_din + 1;
            if match_pat env pat t then begin
              rows.(i) <- rows.(i) + 1;
              exec (i + 1)
            end
          end)
        prep.p_rels.(i)
    end
    else
      Relation.iter
        (fun t ->
          if match_pat env pat t then begin
            rows.(i) <- rows.(i) + 1;
            exec (i + 1)
          end)
        prep.p_rels.(i)
  and stream i pat bucket =
    if i = d then begin
      (* Slice of the bucket's positions; probe counters see only the
         slice, so shard totals add up to the unrestricted count. *)
      let pos = ref 0 in
      let visited = ref 0 in
      List.iter
        (fun t ->
          let p = !pos in
          incr pos;
          if p >= lo && p < hi then begin
            incr visited;
            if match_pat env pat t then begin
              rows.(i) <- rows.(i) + 1;
              exec (i + 1)
            end
          end)
        bucket;
      prep.p_din <- prep.p_din + !visited;
      bump_probes prep !visited
    end
    else begin
      bump_probes prep (List.length bucket);
      List.iter
        (fun t ->
          if match_pat env pat t then begin
            rows.(i) <- rows.(i) + 1;
            exec (i + 1)
          end)
        bucket
    end
  in
  exec 0

let exec prep ~on_row = exec_range prep ~lo:0 ~hi:max_int ~on_row

let run ?indexing ?counters ~resolver ~universe plan ~on_row =
  let prep = prepare ?indexing ?counters ~resolver ~universe plan in
  exec prep ~on_row;
  harvest plan [ prep ]

(* --- sharded execution -------------------------------------------------- *)

type shard_report = {
  sh_morsels : int;
  sh_steals : int;
  sh_executed : int array;
}

(* Target: ~8 morsels per participant so stealing can rebalance, floored
   at 16 driving rows per morsel so tiny inputs don't drown in scheduling
   overhead.  A lone worker gets the whole input as one morsel: with no
   one to steal, splitting only pays per-morsel setup for nothing. *)
let auto_grain ~rows ~workers =
  let w = max 1 workers in
  if w = 1 then max 16 rows else max 16 ((rows + (8 * w) - 1) / (8 * w))

let run_sharded ?(indexing = `Cached) ?(counters = fun _ -> None) ~pool ?grain
    ~resolver ~universe plan ~on_row =
  (* The counting context doubles as participant 0's execution context. *)
  let count_ctx = prepare ~indexing ~resolver ~universe plan in
  let fb = plan.fb in
  (* The driving-input count is only walked on a plan's first run; after
     that the feedback record's observed average sizes the morsels and the
     last morsel is left open-ended to absorb the estimation error. *)
  let counted = fb.fb_runs = 0 in
  let rows =
    if counted then driving_rows count_ctx
    else max 0 (fb.fb_driving / fb.fb_runs)
  in
  let workers = Negdl_util.Domain_pool.size pool + 1 in
  let g =
    match grain with
    | Some g -> max 1 g
    | None -> auto_grain ~rows ~workers
  in
  let morsels =
    if counted then (if rows = 0 then 0 else (rows + g - 1) / g)
    else max 1 ((rows + g - 1) / g)
  in
  if morsels <= 1 then begin
    (* One morsel (or a constant-decided plan, [p_driving < 0]): run
       unrestricted on the calling domain. *)
    if morsels = 1 then begin
      let c0 = { count_ctx with p_counters = counters 0 } in
      exec c0 ~on_row:(on_row 0);
      harvest plan [ c0 ]
    end
    else harvest plan [ count_ctx ];
    { sh_morsels = morsels; sh_steals = 0; sh_executed = [| morsels |] }
  end
  else begin
    let np = max 1 (min workers morsels) in
    (* Per-participant contexts, created lazily on the participant's own
       domain (slot [p] is only touched by participant [p]). *)
    let preps = Array.make np None in
    let ctx p =
      match preps.(p) with
      | Some prep -> prep
      | None ->
        let prep =
          if p = 0 then { count_ctx with p_counters = counters 0 }
          else prepare ~indexing ?counters:(counters p) ~resolver ~universe plan
        in
        preps.(p) <- Some prep;
        prep
    in
    let last = morsels - 1 in
    let hi i =
      if counted then min rows ((i + 1) * g)
      else if i = last then max_int
      else (i + 1) * g
    in
    let _, report =
      Negdl_util.Domain_pool.run_morsels pool ~morsels (fun p i ->
          exec_range (ctx p) ~lo:(i * g) ~hi:(hi i) ~on_row:(on_row p))
    in
    (* Barrier: fold the participants' counts into the feedback record in
       participant order (the counts are sums, so the order only matters
       for reproducibility of the code path, not the totals). *)
    harvest plan (List.filter_map Fun.id (Array.to_list preps));
    {
      sh_morsels = morsels;
      sh_steals = report.Negdl_util.Domain_pool.steals;
      sh_executed = report.Negdl_util.Domain_pool.executed;
    }
  end

let head_tuple plan env =
  let args = plan.head_args in
  let n = Array.length args in
  let a = Array.make n dummy in
  for i = 0 to n - 1 do
    a.(i) <- value env args.(i)
  done;
  (* Fresh array: safe to adopt without copying. *)
  Tuple.unsafe_make a

(* --- pretty-printing ---------------------------------------------------- *)

let pp_term names ppf = function
  | Const c -> Format.pp_print_string ppf (Symbol.name c)
  | Slot s -> Format.pp_print_string ppf names.(s)

let pp_args names ppf args =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (pp_term names))
    (Array.to_seq args)

let pp_pat names ppf pat =
  let term_of = function
    | Check_const c -> Const c
    | Check_slot s | Bind s -> Slot s
  in
  pp_args names ppf (Array.map term_of pat)

let pp_op names ppf = function
  | Index_probe { access; col; key; pat } ->
    Format.fprintf ppf "probe %s%a via column %d = %a" access.pred
      (pp_pat names) pat col (pp_term names) key
  | Scan { access; pat } ->
    Format.fprintf ppf "scan %s%a" access.pred (pp_pat names) pat
  | Const_filter { access; args } ->
    Format.fprintf ppf "filter %s%a" access.pred (pp_args names) args
  | Neg_check { access; args } ->
    Format.fprintf ppf "check !%s%a" access.pred (pp_args names) args
  | Exists { access; pat } ->
    Format.fprintf ppf "exists %s%a" access.pred (pp_pat names) pat
  | Neg_exists { access; pat; free } ->
    Format.fprintf ppf "exists-missing %s%a (%d free)" access.pred
      (pp_pat names) pat free
  | Compare { negated; left; right } ->
    Format.fprintf ppf "compare %a %s %a" (pp_term names) left
      (if negated then "!=" else "=")
      (pp_term names) right
  | Assign { slot; value } ->
    Format.fprintf ppf "assign %s := %a" names.(slot) (pp_term names) value
  | Enumerate { slot } ->
    Format.fprintf ppf "enumerate %s over universe" names.(slot)
  | Le_check { left; right } ->
    Format.fprintf ppf "compare %a <= %a" (pp_term names) left
      (pp_term names) right
  | Plus_bind { a; b; slot } ->
    Format.fprintf ppf "add %s := %a + %a" names.(slot) (pp_term names) a
      (pp_term names) b
  | Plus_check { a; b; result } ->
    Format.fprintf ppf "check %a = %a + %a" (pp_term names) result
      (pp_term names) a (pp_term names) b
  | Aggregate_probe { access; kind; col; group; bound } ->
    Format.fprintf ppf "aggregate-probe %s%a bound %a (%s at column %d)"
      access.pred (pp_args names) group (pp_term names) bound
      (Datalog.Ast.limit_kind_to_string kind)
      col
  | Tighten_emit { pred; kind; col; group; bound } ->
    Format.fprintf ppf "tighten-emit %s%a bound %a (%s at column %d)" pred
      (pp_args names) group (pp_term names) bound
      (Datalog.Ast.limit_kind_to_string kind)
      col

let pp_step names ppf st =
  Format.fprintf ppf "%a  [est %.1f rows]" (pp_op names) st.op st.est

let pp ppf plan =
  Format.fprintf ppf "@[<v2>%s  {%s, %s}" plan.label
    (planner_to_string plan.planner)
    (variant_to_string plan.variant);
  Array.iteri
    (fun i st ->
      Format.fprintf ppf "@,%d. %a" (i + 1) (pp_step plan.slot_names) st;
      if plan.fb.fb_runs > 0 then
        Format.fprintf ppf "  [actual %d]" plan.fb.fb_rows.(i))
    plan.steps;
  Format.fprintf ppf "@,%d. project %s%a  [est %.1f rows]"
    (Array.length plan.steps + 1)
    plan.head_pred
    (pp_args plan.slot_names)
    plan.head_args plan.est_out;
  Format.fprintf ppf "@]"

let to_string plan = Format.asprintf "%a" pp plan

(* The [explain --feedback] view: per step, the estimate the plan was
   compiled against, the observed per-run average, and a [drift] marker
   where the two diverge past the drift factor; then the replan state —
   the overrides already substituted, the generation, and what the next
   adaptive cache lookup would do. *)
let pp_feedback ppf plan =
  let fb = plan.fb in
  let runs = max fb.fb_runs 1 in
  let avg n = float_of_int n /. float_of_int runs in
  Format.fprintf ppf "@[<v2>%s  {%s, %s, generation %d}" plan.label
    (planner_to_string plan.planner)
    (variant_to_string plan.variant)
    plan.generation;
  Format.fprintf ppf "@,runs %d; driving avg %.1f; emitted avg %.1f (est %.1f)"
    fb.fb_runs (avg fb.fb_driving) (avg fb.fb_emitted) plan.est_out;
  let f = float_of_int (drift_factor ()) in
  let slack = float_of_int drift_slack in
  Array.iteri
    (fun i st ->
      let obs = avg fb.fb_rows.(i) in
      Format.fprintf ppf "@,%d. %a  [est %.1f, obs %.1f%s]" (i + 1)
        (pp_op plan.slot_names) st.op st.est obs
        (if
           fb.fb_runs > 0
           && (obs > (f *. st.est) +. slack || st.est > (f *. obs) +. slack)
         then ", drift"
         else ""))
    plan.steps;
  (match plan.overrides with
  | [] -> Format.fprintf ppf "@,overrides: none"
  | overrides ->
    Format.fprintf ppf "@,overrides:";
    List.iter
      (fun (occ, eff) ->
        Format.fprintf ppf " occurrence %d -> %d rows" occ eff)
      (List.sort (fun (a, _) (b, _) -> Int.compare a b) overrides));
  (match replan_hint plan with
  | Some (occ, eff) ->
    Format.fprintf ppf "@,replan: occurrence %d, observed effective %d rows"
      occ eff
  | None -> Format.fprintf ppf "@,replan: none");
  Format.fprintf ppf "@]"
