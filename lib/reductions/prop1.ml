module Ast = Datalog.Ast
module Fo = Folog.Fo
module Nnf = Folog.Nnf
module Ifp = Folog.Ifp

(* --- program -> operators ------------------------------------------------ *)

let fo_term rename = function
  | Ast.Var x -> Fo.Var (rename x)
  | Ast.Const c -> Fo.Const c

let fo_literal rename = function
  | Ast.Pos a -> Fo.Atom (a.Ast.pred, List.map (fo_term rename) a.Ast.args)
  | Ast.Neg a ->
    Fo.Not (Fo.Atom (a.Ast.pred, List.map (fo_term rename) a.Ast.args))
  | Ast.Eq (t1, t2) -> Fo.Equal (fo_term rename t1, fo_term rename t2)
  | Ast.Neq (t1, t2) ->
    Fo.Not (Fo.Equal (fo_term rename t1, fo_term rename t2))
  | Ast.Leq _ | Ast.Geq _ | Ast.Plus _ ->
    invalid_arg
      "Prop1: order comparisons and additions have no first-order \
       counterpart over an uninterpreted domain"

let head_var i = Printf.sprintf "V%d" (i + 1)

let operators_of_program (p : Ast.program) =
  let schema =
    match Ast.idb_schema p with
    | Ok s -> s
    | Error msg -> invalid_arg ("Prop1.operators_of_program: " ^ msg)
  in
  List.map
    (fun (pred, arity) ->
      let vars = List.init arity head_var in
      let rename x = "W_" ^ x in
      let rule_formula (r : Ast.rule) =
        if r.Ast.head.Ast.pred <> pred then None
        else begin
          let rule_vars = List.map rename (Ast.rule_variables r) in
          let unify =
            List.mapi
              (fun i t -> Fo.Equal (Fo.Var (head_var i), fo_term rename t))
              r.Ast.head.Ast.args
          in
          let body = List.map (fo_literal rename) r.Ast.body in
          Some (Fo.exists rule_vars (Fo.conj (unify @ body)))
        end
      in
      let body = Fo.disj (List.filter_map rule_formula p.Ast.rules) in
      { Ifp.pred; vars; body })
    (Relalg.Schema.to_list schema)

(* --- operators -> program ------------------------------------------------ *)

let sanitize x = String.map (fun c -> if c = '\'' then '_' else c) x

let ast_term = function
  | Fo.Var x -> Ast.Var (sanitize x)
  | Fo.Const c -> Ast.Const c

let ast_literal = function
  | Nnf.L_atom (true, p, args) -> Ast.Pos (Ast.atom p (List.map ast_term args))
  | Nnf.L_atom (false, p, args) -> Ast.Neg (Ast.atom p (List.map ast_term args))
  | Nnf.L_equal (true, t1, t2) -> Ast.Eq (ast_term t1, ast_term t2)
  | Nnf.L_equal (false, t1, t2) -> Ast.Neq (ast_term t1, ast_term t2)

let program_of_operators ops =
  let rules_of op =
    let prefix, matrix = Nnf.prenex op.Ifp.body in
    let universal =
      List.find_map
        (function Nnf.Q_forall x -> Some x | Nnf.Q_exists _ -> None)
        prefix
    in
    match universal with
    | Some x ->
      Error
        (Printf.sprintf
           "operator %s is not existential: universal quantifier on %s"
           op.Ifp.pred x)
    | None ->
      let head = Ast.atom op.Ifp.pred (List.map (fun x -> Ast.Var x) op.Ifp.vars) in
      Ok
        (List.map
           (fun conj -> Ast.rule head (List.map ast_literal conj))
           (Nnf.dnf matrix))
  in
  let rec collect acc = function
    | [] -> Ok (Ast.program (List.concat (List.rev acc)))
    | op :: rest -> (
      match rules_of op with
      | Error _ as e -> e
      | Ok rules -> collect (rules :: acc) rest)
  in
  collect [] ops

let program_of_operators_exn ops =
  match program_of_operators ops with
  | Ok p -> p
  | Error msg -> invalid_arg ("Prop1.program_of_operators: " ^ msg)

let agree p db =
  let direct = Evallib.Inflationary.eval p db in
  let ops = operators_of_program p in
  let via_ifp = Ifp.simultaneous db ops in
  List.for_all
    (fun (pred, relation) ->
      Relalg.Relation.equal relation (Evallib.Idb.get direct pred))
    via_ifp
