(** The balanced-tree storage backend (the seed representation).

    Tuples live in a [Set.Make(Tuple)] with memoized per-column indexes
    extended incrementally by [add]/[add_all]/[union].  Retained unchanged
    behind {!Storage_sig.S} as the [`Treeset] ablation baseline for
    {!Hash_store}. *)

include Storage_sig.S
