(* The packed/hashed storage backend: a relation is a Patricia set
   ({!Idset}) of interned tuple ids from the global {!Store}, plus a cached
   cardinal and the same memoized column indexes as the tree backend.

   What this buys over {!Tree_store}:
   - [mem] is one precomputed-hash probe plus an integer-set lookup — no
     O(arity) tuple comparisons down a tree path;
   - [union]/[inter]/[diff]/[equal]/[subset] merge shared Patricia
     structure, which is what the semi-naive loop does once per iteration
     on ever-larger accumulated valuations;
   - [cardinal] is O(1) (the join-order heuristic consults it constantly);
   - tuples are boxed once at intern time, so iteration returns memoized
     tuples without re-allocation. *)

module SMap = Map.Make (Symbol)

type index = Tuple.t list SMap.t

type t = {
  arity : int;
  ids : Idset.t;
  card : int;
  indexes : index option array;
      (* Same memo discipline as the tree backend: a cell is filled at most
         once per value, lazily or incrementally; never shared between
         relations with different id sets. *)
}

let kind = `Hashed

let make_t arity ids card = { arity; ids; card; indexes = Array.make arity None }

let unsafe_make = make_t

let empty k = make_t k Idset.empty 0

let arity r = r.arity

let ids r = r.ids

let is_empty r = r.card = 0

let cardinal r = r.card

let mem t r =
  match Store.find t with
  | None -> false
  | Some id -> Idset.mem id r.ids

(* --- column indexes ----------------------------------------------------- *)

let index_add pos idx t =
  SMap.update (Tuple.get t pos)
    (fun o -> Some (t :: Option.value ~default:[] o))
    idx

let has_index r pos = r.indexes.(pos) <> None

let index r pos =
  match r.indexes.(pos) with
  | Some idx -> idx
  | None ->
    let idx =
      Idset.fold
        (fun id idx -> index_add pos idx (Store.tuple id))
        r.ids SMap.empty
    in
    (* Benign race under parallel evaluation, as in the tree backend. *)
    r.indexes.(pos) <- Some idx;
    idx

let matching pos c r =
  Option.value ~default:[] (SMap.find_opt c (index r pos))

let extend_indexes parent fresh =
  Array.mapi
    (fun pos o ->
      Option.map (fun idx -> List.fold_left (index_add pos) idx fresh) o)
    parent.indexes

(* --- construction ------------------------------------------------------- *)

let add t r =
  let id = Store.intern t in
  if Idset.mem id r.ids then r
  else
    { arity = r.arity;
      ids = Idset.add id r.ids;
      card = r.card + 1;
      indexes = extend_indexes r [ t ];
    }

let remove t r =
  match Store.find t with
  | None -> r
  | Some id ->
    if Idset.mem id r.ids then make_t r.arity (Idset.remove id r.ids) (r.card - 1)
    else r

(* Bulk construction: intern everything, then build the Patricia set in one
   sorted pass — O(n log n) at worst in the sort instead of n root-path
   copies of [Idset.add].  Ids are grouped by store stripe (the id's high
   bits), each stripe's run sorted and deduplicated independently, and the
   stripe-ascending concatenation is globally sorted by construction.  When
   a stripe's ids span most of that stripe — as on a snapshot restore,
   where the loaded model *is* the bulk of what has ever been interned —
   the per-stripe pass is a dense mark-and-sweep over the stripe's local
   ids: O(stripe count) array writes instead of O(n log n) indirect
   compares, and duplicates collapse for free. *)

(* Append stripe [p]'s ids [src.(lo) .. src.(lo + n - 1)] (unsorted,
   possibly duplicated, all in stripe [p]) to [dst] at [!u], ascending and
   deduplicated.  [stripe_count] is the stripe's current tuple count.
   [dst] may alias [src] when the segment starts at or after [!u]. *)
let emit_sorted_part ~stripe_count p src lo n dst u =
  if n > 0 then
    (* The sweep touches every local id the stripe has ever interned, so
       it only pays when the run covers a decent fraction of the stripe —
       a flat constant here would make every small delta build of a warm
       store O(stripe count), which compounds across semi-naive stages. *)
    if stripe_count <= 8 * n then begin
      let seen = Bytes.make stripe_count '\000' in
      for i = lo to lo + n - 1 do
        Bytes.unsafe_set seen (Store.id_local src.(i)) '\001'
      done;
      for local = 0 to stripe_count - 1 do
        if Bytes.unsafe_get seen local <> '\000' then begin
          dst.(!u) <- Store.id_make ~part:p ~local;
          incr u
        end
      done
    end
    else begin
      let run = Array.sub src lo n in
      Array.sort Int.compare run;
      dst.(!u) <- run.(0);
      incr u;
      for i = 1 to n - 1 do
        if run.(i) <> run.(i - 1) then begin
          dst.(!u) <- run.(i);
          incr u
        end
      done
    end

let of_ids k a =
  let n = Array.length a in
  if n = 0 then empty k
  else begin
    let pc = Store.partitions () in
    let scounts = Store.part_counts () in
    let u = ref 0 in
    if pc = 1 then
      (* Single stripe: ids are dense globals; sort/sweep in place. *)
      emit_sorted_part ~stripe_count:scounts.(0) 0 a 0 n a u
    else begin
      (* Scatter into stripe-major order with a counting pass, then
         finish each stripe's run back into [a]. *)
      let counts = Array.make pc 0 in
      for i = 0 to n - 1 do
        let p = Store.id_part a.(i) in
        counts.(p) <- counts.(p) + 1
      done;
      let starts = Array.make (pc + 1) 0 in
      for p = 0 to pc - 1 do
        starts.(p + 1) <- starts.(p) + counts.(p)
      done;
      let fill = Array.copy starts in
      let by_part = Array.make n 0 in
      for i = 0 to n - 1 do
        let id = a.(i) in
        let p = Store.id_part id in
        by_part.(fill.(p)) <- id;
        fill.(p) <- fill.(p) + 1
      done;
      for p = 0 to pc - 1 do
        emit_sorted_part ~stripe_count:scounts.(p) p by_part starts.(p)
          counts.(p) a u
      done
    end;
    let a = if !u = n then a else Array.sub a 0 !u in
    make_t k (Idset.of_sorted_array a) !u
  end

let of_array k ts =
  let n = Array.length ts in
  if n = 0 then empty k
  else begin
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- Store.intern ts.(i)
    done;
    of_ids k a
  end

let of_list k ts = of_array k (Array.of_list ts)

let of_flat_rows k flat =
  let n = Array.length flat / k in
  if n = 0 then empty k
  else begin
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- Store.intern_seg flat ~pos:(i * k) ~len:k
    done;
    of_ids k a
  end

let add_all ts r =
  let ids, card, fresh =
    List.fold_left
      (fun (ids, card, fresh) t ->
        let id = Store.intern t in
        if Idset.mem id ids then (ids, card, fresh)
        else (Idset.add id ids, card + 1, t :: fresh))
      (r.ids, r.card, []) ts
  in
  if fresh = [] then r
  else { arity = r.arity; ids; card; indexes = extend_indexes r fresh }

let to_list r =
  List.sort Tuple.compare
    (Idset.fold (fun id acc -> Store.tuple id :: acc) r.ids [])

let iter f r = Idset.iter (fun id -> f (Store.tuple id)) r.ids

let fold f r init = Idset.fold (fun id acc -> f (Store.tuple id) acc) r.ids init

let for_all p r = Idset.for_all (fun id -> p (Store.tuple id)) r.ids

let exists p r = Idset.exists (fun id -> p (Store.tuple id)) r.ids

let filter p r =
  let ids, card =
    Idset.fold
      (fun id (ids, card) ->
        if p (Store.tuple id) then (Idset.add id ids, card + 1) else (ids, card))
      r.ids
      (Idset.empty, 0)
  in
  make_t r.arity ids card

let union r1 r2 =
  if is_empty r1 then r2
  else if is_empty r2 then r1
  else
    let big, small = if r1.card >= r2.card then (r1, r2) else (r2, r1) in
    (* Collect the genuinely fresh side explicitly (rather than a blind
       structural union) so the cached cardinal stays exact and [big]'s
       already-built indexes extend incrementally — the semi-naive loop
       unions a small delta into a large indexed valuation every
       iteration. *)
    let fresh_ids, fresh, card =
      Idset.fold
        (fun id (ids, ts, card) ->
          if Idset.mem id big.ids then (ids, ts, card)
          else (Idset.add id ids, Store.tuple id :: ts, card + 1))
        small.ids
        (Idset.empty, [], big.card)
    in
    if card = big.card then big
    else
      { arity = big.arity;
        ids = Idset.union big.ids fresh_ids;
        card;
        indexes = extend_indexes big fresh;
      }

let inter r1 r2 =
  let ids = Idset.inter r1.ids r2.ids in
  make_t r1.arity ids (Idset.cardinal ids)

let diff r1 r2 =
  let ids = Idset.diff r1.ids r2.ids in
  make_t r1.arity ids (Idset.cardinal ids)

let subset r1 r2 = Idset.subset r1.ids r2.ids

let equal r1 r2 = r1.card = r2.card && Idset.equal r1.ids r2.ids

let compare r1 r2 = Idset.compare r1.ids r2.ids

let choose_opt r = Option.map Store.tuple (Idset.choose_opt r.ids)

(* --- builder ------------------------------------------------------------ *)

(* A growable int vector; one per store stripe per builder. *)
module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let ensure v extra =
    let need = v.n + extra in
    if need > Array.length v.a then begin
      let cap = ref (max 16 (2 * Array.length v.a)) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let bigger = Array.make !cap 0 in
      Array.blit v.a 0 bigger 0 v.n;
      v.a <- bigger
    end

  let push v x =
    ensure v 1;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let append dst src =
    ensure dst src.n;
    Array.blit src.a 0 dst.a dst.n src.n;
    dst.n <- dst.n + src.n
end

(* The builder accumulates interned ids bucketed by store stripe, deduped
   against an open-addressed id set.  [builder_merge] is then a
   partition-wise concatenation — O(smaller's rows) array blits, no
   Patricia re-union, no per-row hashing — and [build] finishes each
   stripe's run (sort or dense sweep, as in [of_ids]) and assembles the
   relation with one [Idset.of_sorted_array] over the globally sorted
   stripe-major concatenation.  Cross-builder duplicates (the same tuple
   derived by two participants) survive until [build], so after a merge
   [b_card] is an upper bound and [builder_add] is refused (the dedup set
   is stale); [build] re-establishes the exact count. *)
type builder = {
  b_arity : int;
  mutable b_tab : int array;  (* open-addressed id set; -1 = empty slot *)
  mutable b_card : int;  (* exact until merged, then an upper bound *)
  b_parts : Ivec.t array;  (* per-stripe ids, insertion order *)
  mutable b_merged : bool;
}

let builder k =
  {
    b_arity = k;
    b_tab = Array.make 64 (-1);
    b_card = 0;
    b_parts = Array.init (Store.partitions ()) (fun _ -> Ivec.create ());
    b_merged = false;
  }

(* Fibonacci mix: ids carry the stripe in their high bits, so low bits
   alone would collide across stripes' dense locals. *)
let bslot_hash id = id * 0x2545F4914F6CDD1D

let btab_insert tab id =
  let mask = Array.length tab - 1 in
  let rec probe s =
    let v = Array.unsafe_get tab s in
    if v < 0 then begin
      Array.unsafe_set tab s id;
      true
    end
    else if v = id then false
    else probe ((s + 1) land mask)
  in
  probe (bslot_hash id land mask)

let builder_add b t =
  if b.b_merged then
    invalid_arg "Hash_store.builder_add: builder was merged";
  let id = Store.intern t in
  (* Keep the load factor at most 1/2: [b_card] is exact occupancy here
     because adds are refused after a merge. *)
  if 2 * (b.b_card + 1) > Array.length b.b_tab then begin
    let old = b.b_tab in
    b.b_tab <- Array.make (2 * Array.length old) (-1);
    Array.iter (fun v -> if v >= 0 then ignore (btab_insert b.b_tab v)) old
  end;
  if btab_insert b.b_tab id then begin
    b.b_card <- b.b_card + 1;
    Ivec.push b.b_parts.(Store.id_part id) id;
    true
  end
  else false

let builder_card b = b.b_card

let builder_arity b = b.b_arity

let builder_merge b1 b2 =
  let big, small = if b1.b_card >= b2.b_card then (b1, b2) else (b2, b1) in
  Array.iteri (fun p v -> Ivec.append big.b_parts.(p) v) small.b_parts;
  big.b_card <- big.b_card + small.b_card;
  big.b_merged <- true;
  big

let build b =
  let total =
    Array.fold_left (fun acc (v : Ivec.t) -> acc + v.Ivec.n) 0 b.b_parts
  in
  if total = 0 then empty b.b_arity
  else begin
    let scounts = Store.part_counts () in
    let dst = Array.make total 0 in
    let u = ref 0 in
    Array.iteri
      (fun p (v : Ivec.t) ->
        emit_sorted_part ~stripe_count:scounts.(p) p v.Ivec.a 0 v.Ivec.n dst u)
      b.b_parts;
    let dst = if !u = total then dst else Array.sub dst 0 !u in
    make_t b.b_arity (Idset.of_sorted_array dst) !u
  end
