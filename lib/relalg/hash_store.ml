(* The packed/hashed storage backend: a relation is a Patricia set
   ({!Idset}) of interned tuple ids from the global {!Store}, plus a cached
   cardinal and the same memoized column indexes as the tree backend.

   What this buys over {!Tree_store}:
   - [mem] is one precomputed-hash probe plus an integer-set lookup — no
     O(arity) tuple comparisons down a tree path;
   - [union]/[inter]/[diff]/[equal]/[subset] merge shared Patricia
     structure, which is what the semi-naive loop does once per iteration
     on ever-larger accumulated valuations;
   - [cardinal] is O(1) (the join-order heuristic consults it constantly);
   - tuples are boxed once at intern time, so iteration returns memoized
     tuples without re-allocation. *)

module SMap = Map.Make (Symbol)

type index = Tuple.t list SMap.t

type t = {
  arity : int;
  ids : Idset.t;
  card : int;
  indexes : index option array;
      (* Same memo discipline as the tree backend: a cell is filled at most
         once per value, lazily or incrementally; never shared between
         relations with different id sets. *)
}

let kind = `Hashed

let make_t arity ids card = { arity; ids; card; indexes = Array.make arity None }

let unsafe_make = make_t

let empty k = make_t k Idset.empty 0

let arity r = r.arity

let ids r = r.ids

let is_empty r = r.card = 0

let cardinal r = r.card

let mem t r =
  match Store.find t with
  | None -> false
  | Some id -> Idset.mem id r.ids

(* --- column indexes ----------------------------------------------------- *)

let index_add pos idx t =
  SMap.update (Tuple.get t pos)
    (fun o -> Some (t :: Option.value ~default:[] o))
    idx

let has_index r pos = r.indexes.(pos) <> None

let index r pos =
  match r.indexes.(pos) with
  | Some idx -> idx
  | None ->
    let idx =
      Idset.fold
        (fun id idx -> index_add pos idx (Store.tuple id))
        r.ids SMap.empty
    in
    (* Benign race under parallel evaluation, as in the tree backend. *)
    r.indexes.(pos) <- Some idx;
    idx

let matching pos c r =
  Option.value ~default:[] (SMap.find_opt c (index r pos))

let extend_indexes parent fresh =
  Array.mapi
    (fun pos o ->
      Option.map (fun idx -> List.fold_left (index_add pos) idx fresh) o)
    parent.indexes

(* --- construction ------------------------------------------------------- *)

let add t r =
  let id = Store.intern t in
  if Idset.mem id r.ids then r
  else
    { arity = r.arity;
      ids = Idset.add id r.ids;
      card = r.card + 1;
      indexes = extend_indexes r [ t ];
    }

let remove t r =
  match Store.find t with
  | None -> r
  | Some id ->
    if Idset.mem id r.ids then make_t r.arity (Idset.remove id r.ids) (r.card - 1)
    else r

(* Bulk construction: intern everything, then build the Patricia set in one
   sorted pass — O(n log n) at worst in the sort instead of n root-path
   copies of [Idset.add].  When the ids span most of the store — as on a
   snapshot restore, where the loaded model *is* the bulk of what has ever
   been interned — the sort-and-dedup pass is a dense mark-and-sweep over
   [0, Store.count()): O(count) array writes instead of O(n log n) indirect
   compares, and duplicates collapse for free. *)
let of_ids k a =
  let n = Array.length a in
  let limit = Store.count () in
  let u = ref 0 in
  let a =
    if limit <= (8 * n) + 4096 then begin
      let seen = Bytes.make limit '\000' in
      Array.iter (fun id -> Bytes.unsafe_set seen id '\001') a;
      for id = 0 to limit - 1 do
        if Bytes.unsafe_get seen id <> '\000' then begin
          a.(!u) <- id;
          incr u
        end
      done;
      a
    end
    else begin
      Array.sort Int.compare a;
      u := 1;
      for i = 1 to n - 1 do
        if a.(i) <> a.(!u - 1) then begin
          a.(!u) <- a.(i);
          incr u
        end
      done;
      a
    end
  in
  let a = if !u = n then a else Array.sub a 0 !u in
  make_t k (Idset.of_sorted_array a) !u

let of_array k ts =
  let n = Array.length ts in
  if n = 0 then empty k
  else begin
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- Store.intern ts.(i)
    done;
    of_ids k a
  end

let of_list k ts = of_array k (Array.of_list ts)

let of_flat_rows k flat =
  let n = Array.length flat / k in
  if n = 0 then empty k
  else begin
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- Store.intern_seg flat ~pos:(i * k) ~len:k
    done;
    of_ids k a
  end

let add_all ts r =
  let ids, card, fresh =
    List.fold_left
      (fun (ids, card, fresh) t ->
        let id = Store.intern t in
        if Idset.mem id ids then (ids, card, fresh)
        else (Idset.add id ids, card + 1, t :: fresh))
      (r.ids, r.card, []) ts
  in
  if fresh = [] then r
  else { arity = r.arity; ids; card; indexes = extend_indexes r fresh }

let to_list r =
  List.sort Tuple.compare
    (Idset.fold (fun id acc -> Store.tuple id :: acc) r.ids [])

let iter f r = Idset.iter (fun id -> f (Store.tuple id)) r.ids

let fold f r init = Idset.fold (fun id acc -> f (Store.tuple id) acc) r.ids init

let for_all p r = Idset.for_all (fun id -> p (Store.tuple id)) r.ids

let exists p r = Idset.exists (fun id -> p (Store.tuple id)) r.ids

let filter p r =
  let ids, card =
    Idset.fold
      (fun id (ids, card) ->
        if p (Store.tuple id) then (Idset.add id ids, card + 1) else (ids, card))
      r.ids
      (Idset.empty, 0)
  in
  make_t r.arity ids card

let union r1 r2 =
  if is_empty r1 then r2
  else if is_empty r2 then r1
  else
    let big, small = if r1.card >= r2.card then (r1, r2) else (r2, r1) in
    (* Collect the genuinely fresh side explicitly (rather than a blind
       structural union) so the cached cardinal stays exact and [big]'s
       already-built indexes extend incrementally — the semi-naive loop
       unions a small delta into a large indexed valuation every
       iteration. *)
    let fresh_ids, fresh, card =
      Idset.fold
        (fun id (ids, ts, card) ->
          if Idset.mem id big.ids then (ids, ts, card)
          else (Idset.add id ids, Store.tuple id :: ts, card + 1))
        small.ids
        (Idset.empty, [], big.card)
    in
    if card = big.card then big
    else
      { arity = big.arity;
        ids = Idset.union big.ids fresh_ids;
        card;
        indexes = extend_indexes big fresh;
      }

let inter r1 r2 =
  let ids = Idset.inter r1.ids r2.ids in
  make_t r1.arity ids (Idset.cardinal ids)

let diff r1 r2 =
  let ids = Idset.diff r1.ids r2.ids in
  make_t r1.arity ids (Idset.cardinal ids)

let subset r1 r2 = Idset.subset r1.ids r2.ids

let equal r1 r2 = r1.card = r2.card && Idset.equal r1.ids r2.ids

let compare r1 r2 = Idset.compare r1.ids r2.ids

let choose_opt r = Option.map Store.tuple (Idset.choose_opt r.ids)

(* --- builder ------------------------------------------------------------ *)

type builder = {
  b_arity : int;
  mutable b_ids : Idset.t;
  mutable b_card : int;
}

let builder k = { b_arity = k; b_ids = Idset.empty; b_card = 0 }

let builder_add b t =
  let id = Store.intern t in
  if Idset.mem id b.b_ids then false
  else begin
    b.b_ids <- Idset.add id b.b_ids;
    b.b_card <- b.b_card + 1;
    true
  end

let builder_card b = b.b_card

let builder_arity b = b.b_arity

let builder_merge b1 b2 =
  (* Count the smaller side's fresh ids before the Patricia union, so the
     merged cardinality stays exact without an O(result) recount. *)
  let big, small = if b1.b_card >= b2.b_card then (b1, b2) else (b2, b1) in
  let fresh =
    Idset.fold
      (fun id n -> if Idset.mem id big.b_ids then n else n + 1)
      small.b_ids 0
  in
  big.b_ids <- Idset.union big.b_ids small.b_ids;
  big.b_card <- big.b_card + fresh;
  big

let build b = make_t b.b_arity b.b_ids b.b_card
