(** Persistent sets of non-negative integers.

    Big-endian Patricia trees (Okasaki-Gill): membership, insertion and
    removal cost O(min(W, log n)) {e integer} comparisons — no boxed-key
    compare function — and the set-algebraic operations ([union], [inter],
    [diff], [subset], [equal]) merge shared structure in
    O(min(|s|, |t|)) instead of walking every element.  The representation
    is canonical, so structural equality coincides with set equality.

    These sets hold the interned tuple ids of {!Store}, making them the
    substrate of the hashed relation backend ({!Hash_store}).

    All operations that insert elements raise [Invalid_argument] on negative
    integers. *)

type t

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val mem : int -> t -> bool

val add : int -> t -> t
(** Physically returns the input set when the element is already present. *)

val remove : int -> t -> t

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order consistent with {!equal} (structural, by canonicity). *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** In increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** In increasing order. *)

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t

val elements : t -> int list
(** In increasing order. *)

val choose_opt : t -> int option
(** The minimum element, if any. *)

val of_list : int list -> t

val of_sorted_array : int array -> t
(** [of_sorted_array a] builds the set of a strictly increasing array in
    one pass: one allocation per node of the (canonical) result, where
    folding {!add} copies a root path per element — the bulk-construction
    path of the hashed backend and the snapshot restore.  The array is not
    retained.  Unspecified if [a] is not strictly increasing.
    @raise Invalid_argument on negative elements. *)
