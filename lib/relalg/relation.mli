(** Finite relations.

    A relation is a set of tuples that all share one arity, fixed at
    creation.  Operations that combine two relations require compatible
    arities and raise [Invalid_argument] otherwise.  The implementation is a
    balanced tree set, so all elementwise operations are logarithmic and
    iteration is in tuple order.

    Every relation additionally carries memoized per-column hash indexes
    (see {!matching}): a column's index is built at most once per value of
    the relation, and {!add} and {!union} maintain already-built indexes
    incrementally — unioning a delta into an indexed relation costs
    O(|delta| log |relation|) per built column instead of a full rebuild.
    Indexes are held in persistent maps, so sharing them across derived
    relations is safe, including across domains (a racy lazy build at worst
    duplicates work, never corrupts). *)

type t

val empty : int -> t
(** [empty k] is the empty relation of arity [k]. *)

val arity : t -> int

val is_empty : t -> bool

val cardinal : t -> int

val mem : Tuple.t -> t -> bool

val add : Tuple.t -> t -> t
(** @raise Invalid_argument if the tuple's arity differs from the
    relation's. *)

val remove : Tuple.t -> t -> t

val singleton : Tuple.t -> t

val of_list : int -> Tuple.t list -> t
(** [of_list k tuples] builds an arity-[k] relation.  All tuples must have
    arity [k]. *)

val to_list : t -> Tuple.t list
(** Tuples in increasing order. *)

val iter : (Tuple.t -> unit) -> t -> unit

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (Tuple.t -> bool) -> t -> bool

val exists : (Tuple.t -> bool) -> t -> bool

val filter : (Tuple.t -> bool) -> t -> t

val map : int -> (Tuple.t -> Tuple.t) -> t -> t
(** [map k f r] applies [f] to every tuple; the result has arity [k]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset r1 r2] is true when every tuple of [r1] is in [r2]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val choose_opt : t -> Tuple.t option

val product : t -> t -> t
(** Cartesian product; arities add. *)

val project : int list -> t -> t
(** [project positions r] projects every tuple onto [positions] (which may
    repeat or reorder components). *)

val select : (Tuple.t -> bool) -> t -> t
(** Synonym of {!filter}, relational-algebra flavour. *)

val select_eq : int -> Symbol.t -> t -> t
(** [select_eq i c r] keeps tuples whose [i]-th component is [c]. *)

val matching : int -> Symbol.t -> t -> Tuple.t list
(** [matching pos c r] is the list of tuples of [r] whose component [pos]
    equals [c], served from the memoized column index (built on first use,
    then reused and extended incrementally by {!add}/{!union}).
    @raise Invalid_argument if [pos] is outside the arity. *)

val has_index : t -> int -> bool
(** Whether the column-[pos] index is already materialised for this value —
    a {!matching} call on such a column is a cache hit.  Out-of-range
    columns answer [false]. *)

val join_positions : (int * int) list -> t -> t -> t
(** [join_positions eqs r1 r2] is the subset of the product of [r1] and [r2]
    where, for each [(i, j)] in [eqs], component [i] of the [r1]-tuple equals
    component [j] of the [r2]-tuple. *)

val full : Symbol.t list -> int -> t
(** [full universe k] is the complete relation [universe]{^ k}.  Use only for
    small [|universe|]{^ k}. *)

val complement : Symbol.t list -> t -> t
(** [complement universe r] is [full universe (arity r)] minus [r]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{(a, b); (c, d)}]. *)

val to_string : t -> string
