(** Finite relations.

    A relation is a set of tuples that all share one arity, fixed at
    creation.  Operations that combine two relations require compatible
    arities and raise [Invalid_argument] otherwise.

    Two storage backends implement this interface, selectable per relation
    and ablatable globally ({!set_default_storage}):
    - [`Hashed] (the default): tuples are interned once into the global
      packed {!Store} and the relation is a Patricia set of integer ids —
      membership is a precomputed-hash probe, and union / intersection /
      difference / equality merge shared structure;
    - [`Treeset]: the seed representation, a balanced tree set of tuples —
      kept as an ablation baseline ([--storage treeset], bench Part 4).

    Every relation additionally carries memoized per-column hash indexes
    (see {!matching}): a column's index is built at most once per value of
    the relation, and {!add}, {!add_all} and {!union} maintain
    already-built indexes incrementally — unioning a delta into an indexed
    relation costs O(|delta|) per built column instead of a full rebuild.
    Indexes are held in persistent maps, so sharing them across derived
    relations is safe, including across domains (a racy lazy build at worst
    duplicates work, never corrupts).

    Iteration order ({!iter}, {!fold}) is deterministic but
    backend-dependent: tuple order for [`Treeset], intern order for
    [`Hashed].  {!to_list} (and hence {!pp}) always sorts, so printed
    output is representation-independent. *)

type t

(** {1 Storage backends} *)

type storage = [ `Treeset | `Hashed ]

val set_default_storage : storage -> unit
(** Sets the backend used by constructors not given an explicit [?storage].
    Affects subsequently created relations only; existing values keep their
    representation.  Default: [`Hashed]. *)

val default_storage : unit -> storage

val storage_of : t -> storage

val pp_storage : Format.formatter -> storage -> unit
(** Prints [hashed] or [treeset]. *)

(** {1 Construction and set structure} *)

val empty : ?storage:storage -> int -> t
(** [empty k] is the empty relation of arity [k]. *)

val arity : t -> int

val is_empty : t -> bool

val cardinal : t -> int
(** O(1) in both backends. *)

val ids : t -> Idset.t option
(** The interned tuple-id set backing a [`Hashed] relation, [None] for
    [`Treeset].  Lets the snapshot writer stream packed {!Store} rows
    without boxing tuples; treeset callers fall back to {!iter}. *)

val mem : Tuple.t -> t -> bool

val add : Tuple.t -> t -> t
(** @raise Invalid_argument if the tuple's arity differs from the
    relation's. *)

val remove : Tuple.t -> t -> t

val singleton : Tuple.t -> t

val of_list : ?storage:storage -> int -> Tuple.t list -> t
(** [of_list k tuples] builds an arity-[k] relation in one bulk pass (no
    per-add index maintenance).  All tuples must have arity [k]. *)

val of_seq : ?storage:storage -> int -> Tuple.t Seq.t -> t
(** Bulk construction from a sequence; the sequence is forced once. *)

val of_array : ?storage:storage -> int -> Tuple.t array -> t
(** [of_array k tuples] builds an arity-[k] relation in one bulk pass,
    without the intermediate list of {!of_list} on the hashed backend.
    All tuples must have arity [k]; the array is not retained. *)

val of_flat_rows : ?storage:storage -> int -> Symbol.t array -> t
(** [of_flat_rows k flat] builds the arity-[k] relation whose rows are the
    consecutive length-[k] segments of [flat] — the snapshot-restore fast
    path: on the hashed backend rows are interned in place with no per-row
    boxing ({!Hash_store.of_flat_rows}).  [flat] is not retained.
    @raise Invalid_argument if [k <= 0] or [Array.length flat] is not a
    multiple of [k]. *)

val add_all : Tuple.t list -> t -> t
(** [add_all tuples r] is [r] with all tuples added, as one bulk union:
    membership is probed per tuple, the set is extended once, and [r]'s
    already-built column indexes are extended with only the fresh tuples.
    @raise Invalid_argument on an arity mismatch. *)

val to_list : t -> Tuple.t list
(** Tuples in increasing order, whatever the backend. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Backend iteration order (see the module preamble). *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (Tuple.t -> bool) -> t -> bool

val exists : (Tuple.t -> bool) -> t -> bool

val filter : (Tuple.t -> bool) -> t -> t

val map : int -> (Tuple.t -> Tuple.t) -> t -> t
(** [map k f r] applies [f] to every tuple; the result has arity [k]. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool
(** [subset r1 r2] is true when every tuple of [r1] is in [r2]. *)

val equal : t -> t -> bool
(** Same tuple set — representation-independent (a hashed and a tree
    relation with equal contents are equal). *)

val compare : t -> t -> int
(** A total order consistent with {!equal} among relations of one backend;
    mixing backends inside one ordered container is not supported (mixed
    comparisons fall back to a slower representation-independent order). *)

val choose_opt : t -> Tuple.t option

(** {1 Bulk builder}

    A mutable accumulator for streaming construction: the evaluation engine
    emits head tuples into a builder and finalises once per rule
    application, paying one membership probe and one insert per tuple —
    no intermediate relation records. *)

type builder

val builder : ?storage:storage -> int -> builder
(** [builder k]: an empty accumulator for an arity-[k] relation. *)

val builder_add : builder -> Tuple.t -> bool
(** Adds a tuple; [true] iff it was not already accumulated.  Must not be
    called after the builder has been through {!builder_merge}. *)

val builder_cardinal : builder -> int
(** Exact until {!builder_merge}; after a merge it may be an upper bound
    (cross-builder duplicates collapse in {!build}, not in the merge). *)

val builder_arity : builder -> int

val builder_merge : builder -> builder -> builder
(** Destructive union: merges the smaller builder into the larger one in
    O(smaller) work and returns the combined accumulator.  Neither argument
    may be used afterwards, and the result accepts only further merges and
    {!build}.  The sharded plan executor merges per-shard accumulators with
    this at the barrier — on the hashed backend the merge is a per-stripe
    id-run concatenation (no re-hashing), so the barrier cost is O(rows
    moved) and deduplication happens once in {!build}.
    @raise Invalid_argument on an arity or storage-backend mismatch (shard
    accumulators of one execution always share both). *)

val build : builder -> t
(** Finalise.  The builder must not be reused afterwards; the relation's
    column indexes start lazy (built on first join against it). *)

(** {1 Relational algebra} *)

val product : t -> t -> t
(** Cartesian product; arities add.  Built in one bulk pass; the result
    uses the left operand's backend. *)

val project : int list -> t -> t
(** [project positions r] projects every tuple onto [positions] (which may
    repeat or reorder components). *)

val select : (Tuple.t -> bool) -> t -> t
(** Synonym of {!filter}, relational-algebra flavour. *)

val select_eq : int -> Symbol.t -> t -> t
(** [select_eq i c r] keeps tuples whose [i]-th component is [c]. *)

val matching : int -> Symbol.t -> t -> Tuple.t list
(** [matching pos c r] is the list of tuples of [r] whose component [pos]
    equals [c], served from the memoized column index (built on first use,
    then reused and extended incrementally by {!add}/{!add_all}/{!union}).
    @raise Invalid_argument if [pos] is outside the arity. *)

val has_index : t -> int -> bool
(** Whether the column-[pos] index is already materialised for this value —
    a {!matching} call on such a column is a cache hit.  Out-of-range
    columns answer [false]. *)

val join_positions : (int * int) list -> t -> t -> t
(** [join_positions eqs r1 r2] is the subset of the product of [r1] and [r2]
    where, for each [(i, j)] in [eqs], component [i] of the [r1]-tuple equals
    component [j] of the [r2]-tuple. *)

val full : ?storage:storage -> Symbol.t list -> int -> t
(** [full universe k] is the complete relation [universe]{^ k}, built in one
    bulk pass.  Use only for small [|universe|]{^ k}. *)

val complement : Symbol.t list -> t -> t
(** [complement universe r] is [full universe (arity r)] minus [r], in
    [r]'s backend. *)

(** {1 Limit semantics}

    Support for limit predicates (min/max aggregation per group): a limit
    relation keeps, per valuation of its non-limit columns (the {e group}),
    only the tuple whose limit-column value is dominant under
    {!Symbol.compare_value}. *)

val tighten :
  kind:[ `Min | `Max ] -> col:int -> t -> t -> t * t
(** [tighten ~kind ~col current candidates] merges [candidates] into the
    limit relation [current]: for each group appearing in [candidates], the
    dominant candidate replaces [current]'s bound when it improves on it
    (strictly smaller for [`Min], strictly larger for [`Max]) and is dropped
    otherwise.  Returns [(result, changed)] where [changed] holds exactly
    the newly-dominant tuples — the {e changed-group delta} that keeps
    semi-naive evaluation semi-naive.  Group lookups go through the
    memoized column index of the first group column.
    @raise Invalid_argument on an arity mismatch or an out-of-range
    column. *)

val dominant : kind:[ `Min | `Max ] -> col:int -> t -> t
(** [dominant ~kind ~col r] keeps only the dominant tuple of each group —
    the brute-force reference semantics for a limit relation. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{(a, b); (c, d)}], in sorted tuple order. *)

val to_string : t -> string
