(* The global packed tuple store.

   Every tuple that enters a hashed relation is interned once into a flat
   [int array]: the symbol ids of all interned tuples, concatenated.  A
   tuple is then represented by a dense id, and the per-id side arrays give
   O(1) access to its offset, arity, precomputed hash and a memoized boxed
   {!Tuple.t} — so relations over ids never re-hash or re-compare symbol
   arrays, and reconstructing a tuple allocates nothing.

   Concurrency follows the same snapshot discipline as {!Symbol}: writers
   serialise on [lock], append into the arrays (slots at or beyond a
   published count are never read), and publish a fresh immutable [state]
   record through an [Atomic.t].  The hash-bucket table is a plain array of
   id lists sized to keep the load factor at most 1, so a probe costs one
   masked index and on average one packed comparison, independent of how
   large the store has grown.  Appending conses onto a bucket of the
   current array in place; a reader holding an older snapshot may observe
   such a cons, but every bucket entry is guarded by [i < st.count] against
   the reader's own published count, so a snapshot never yields an id whose
   packed slots it cannot see.  Rehashing allocates a fresh array, and
   superseded arrays are never mutated again. *)

type id = int

type state = {
  count : int;  (* ids 0 .. count-1 are valid *)
  used : int;  (* words of [data] in use *)
  data : int array;  (* packed symbol ids *)
  off : int array;  (* off.(i): offset of tuple i in [data] *)
  len : int array;  (* len.(i): arity of tuple i *)
  hsh : int array;  (* hsh.(i): Tuple.hash, precomputed *)
  tup : Tuple.t array;  (* tup.(i): memoized boxed tuple *)
  buckets : id list array;  (* hash land (capacity - 1) -> ids *)
}

let initial () =
  {
    count = 0;
    used = 0;
    data = Array.make 4096 0;
    off = Array.make 1024 0;
    len = Array.make 1024 0;
    hsh = Array.make 1024 0;
    tup = Array.make 1024 Tuple.empty;
    buckets = Array.make 1024 [];
  }

let state = Atomic.make (initial ())

let lock = Mutex.create ()

let packed_equal st i (t : Tuple.t) =
  let n = Tuple.arity t in
  st.len.(i) = n
  &&
  let o = st.off.(i) in
  let a = (t :> Symbol.t array) in
  let rec eq j =
    j = n
    || st.data.(o + j) = (Array.unsafe_get a j :> int) && eq (j + 1)
  in
  eq 0

let find_in st h t =
  let rec look = function
    | [] -> None
    | i :: rest ->
      (* [i < st.count] guards against conses appended to a shared bucket
         array after this snapshot was published. *)
      if i < st.count && st.hsh.(i) = h && packed_equal st i t then Some i
      else look rest
  in
  look st.buckets.(h land (Array.length st.buckets - 1))

let find t = find_in (Atomic.get state) (Tuple.hash t) t

let grow_ints a =
  let bigger = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

(* The miss path: take the lock, re-probe, append.  Shared by [intern] and
   [intern_seg]; [h] must be [Tuple.hash t]. *)
let intern_locked h t =
    Mutex.protect lock @@ fun () ->
    let st = Atomic.get state in
    (* Re-check against the latest snapshot: another domain may have
       interned [t] between our optimistic probe and taking the lock. *)
    (match find_in st h t with
    | Some i -> i
    | None ->
      let n = Tuple.arity t in
      let id = st.count in
      let off, len, hsh, tup =
        if id < Array.length st.off then (st.off, st.len, st.hsh, st.tup)
        else
          ( grow_ints st.off,
            grow_ints st.len,
            grow_ints st.hsh,
            (let bigger = Array.make (2 * Array.length st.tup) Tuple.empty in
             Array.blit st.tup 0 bigger 0 (Array.length st.tup);
             bigger) )
      in
      let data =
        if st.used + n <= Array.length st.data then st.data
        else begin
          let cap = max (2 * Array.length st.data) (st.used + n) in
          let bigger = Array.make cap 0 in
          Array.blit st.data 0 bigger 0 st.used;
          bigger
        end
      in
      let a = (t :> Symbol.t array) in
      for j = 0 to n - 1 do
        data.(st.used + j) <- (Array.unsafe_get a j :> int)
      done;
      off.(id) <- st.used;
      len.(id) <- n;
      hsh.(id) <- h;
      tup.(id) <- t;
      let buckets =
        if id < Array.length st.buckets then st.buckets
        else begin
          (* Load factor reached 1: rehash into a fresh, twice-as-large
             array.  Older snapshots keep the superseded array, which is
             never mutated again. *)
          let cap = 2 * Array.length st.buckets in
          let b = Array.make cap [] in
          let m = cap - 1 in
          for i = 0 to id - 1 do
            let k = hsh.(i) land m in
            b.(k) <- i :: b.(k)
          done;
          b
        end
      in
      let k = h land (Array.length buckets - 1) in
      buckets.(k) <- id :: buckets.(k);
      Atomic.set state
        {
          count = id + 1;
          used = st.used + n;
          data;
          off;
          len;
          hsh;
          tup;
          buckets;
        };
      id)

let intern t =
  let h = Tuple.hash t in
  match find_in (Atomic.get state) h t with
  | Some i -> i  (* optimistic lock-free hit: the common case once warm *)
  | None -> intern_locked h t

(* Segment variants: hash and compare a row in place inside a larger symbol
   array, so bulk loaders (the snapshot restore) probe without boxing a
   tuple per row.  [hash_seg] must agree with [Tuple.hash]. *)

let hash_seg (a : Symbol.t array) pos len =
  let acc = ref 17 in
  for j = pos to pos + len - 1 do
    acc := (!acc * 31) + (Array.unsafe_get a j :> int)
  done;
  !acc

let packed_equal_seg st i (a : Symbol.t array) pos len =
  st.len.(i) = len
  &&
  let o = st.off.(i) in
  let rec eq j =
    j = len
    || st.data.(o + j) = (Array.unsafe_get a (pos + j) :> int) && eq (j + 1)
  in
  eq 0

let find_seg_in st h a pos len =
  let rec look = function
    | [] -> None
    | i :: rest ->
      if i < st.count && st.hsh.(i) = h && packed_equal_seg st i a pos len
      then Some i
      else look rest
  in
  look st.buckets.(h land (Array.length st.buckets - 1))

let intern_seg a ~pos ~len =
  let h = hash_seg a pos len in
  match find_seg_in (Atomic.get state) h a pos len with
  | Some i -> i
  | None -> intern_locked h (Tuple.unsafe_make (Array.sub a pos len))

let mem t = find t <> None

let tuple id = (Atomic.get state).tup.(id)

let hash id = (Atomic.get state).hsh.(id)

let arity id = (Atomic.get state).len.(id)

let get id j =
  let st = Atomic.get state in
  if j < 0 || j >= st.len.(id) then invalid_arg "Store.get"
  else Symbol.unsafe_of_id st.data.(st.off.(id) + j)

let count () = (Atomic.get state).count

type view = {
  v_count : int;
  v_data : int array;
  v_off : int array;
  v_len : int array;
}

let view () =
  let st = Atomic.get state in
  { v_count = st.count; v_data = st.data; v_off = st.off; v_len = st.len }
