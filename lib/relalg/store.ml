(* The global packed tuple store, hash-partitioned into stripes.

   Every tuple that enters a hashed relation is interned once into a flat
   [int array]: the symbol ids of all interned tuples, concatenated.  A
   tuple is then represented by an id, and the per-id side arrays give
   O(1) access to its offset, arity, precomputed hash and a memoized boxed
   {!Tuple.t} — so relations over ids never re-hash or re-compare symbol
   arrays, and reconstructing a tuple allocates nothing.

   The store is split into [part_count] independently locked stripes; a
   tuple's stripe is chosen by its hash, and its id carries the stripe in
   the high bits ([id = (p lsl part_shift) lor local]).  Lookups by id
   ([tuple], [hash], [arity], [get]) decode the stripe from the id and
   read that stripe's published snapshot — still lock-free array reads.
   Writers contend only with writers hitting the same stripe, so parallel
   participants interning disjoint morsels mostly take disjoint locks.
   Putting the partition in the high bits keeps each stripe's local ids
   dense from 0 and makes the concatenation of per-stripe sorted id runs
   (stripe-ascending) a globally sorted array — the property the
   partition-wise relation builders rely on to finish with one
   [Idset.of_sorted_array].  With one partition the ids coincide with the
   seed layout (local id = global id).

   Each stripe follows the same snapshot discipline as {!Symbol}: writers
   serialise on the stripe's [lock], append into the arrays (slots at or
   beyond a published count are never read), and publish a fresh immutable
   [state] record through an [Atomic.t].  The hash-bucket table is a plain
   array of local-id lists sized to keep the load factor at most 1, so a
   probe costs one masked index and on average one packed comparison,
   independent of how large the stripe has grown.  Appending conses onto a
   bucket of the current array in place; a reader holding an older snapshot
   may observe such a cons, but every bucket entry is guarded by
   [i < st.count] against the reader's own published count, so a snapshot
   never yields an id whose packed slots it cannot see.  Rehashing
   allocates a fresh array, and superseded arrays are never mutated again.

   On top of the stripes each domain keeps a small direct-mapped intern
   cache (hash -> id, validated against the packed words), so hot repeated
   tuples — the bulk of Θ-application traffic, where the same head tuple is
   re-derived every stage — resolve without touching a stripe at all. *)

type id = int

(* --- partitioning ------------------------------------------------------- *)

(* Ids are [(partition lsl part_shift) lor local].  44 bits of local id per
   stripe keeps ids well inside OCaml's 63-bit native int for any partition
   count we allow, and leaves local ids identical to seed ids when
   [part_count = 1]. *)
let part_shift = 44

let local_mask = (1 lsl part_shift) - 1

let max_partitions = 64

(* [NEGDL_PARTITIONS] pins the stripe count for the whole process (read
   once at module initialisation); rounded up to a power of two so stripe
   selection is a mask, clamped to [1 .. max_partitions].  The default is
   one stripe per recommended domain: partition bits in the id add
   [log2 partitions] levels to every Patricia-set operation downstream
   (measured ~7-8% sequential wall per doubling on semi-naive TC), so
   stripes a host cannot run concurrently are pure cost.  A single-core
   host therefore runs one stripe with seed-identical dense ids. *)
let part_count =
  let default = Domain.recommended_domain_count () in
  let requested =
    match Sys.getenv_opt "NEGDL_PARTITIONS" with
    | None -> min default max_partitions
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_partitions
      | _ -> min default max_partitions)
  in
  let rec pow2 p = if p >= requested then p else pow2 (2 * p) in
  pow2 1

let part_mask = part_count - 1

let partitions () = part_count

let id_part id = id lsr part_shift

let id_local id = id land local_mask

let id_make ~part ~local = (part lsl part_shift) lor local

(* Stripe choice mixes the tuple hash with a golden-ratio multiplier and
   takes high-ish bits, so the stripe index is independent of the low bits
   that index the stripe's own bucket table. *)
let part_of_hash h =
  if part_count = 1 then 0 else ((h * 0x9E3779B1) lsr 20) land part_mask

(* --- stripes ------------------------------------------------------------ *)

type state = {
  count : int;  (* local ids 0 .. count-1 are valid *)
  used : int;  (* words of [data] in use *)
  data : int array;  (* packed symbol ids *)
  off : int array;  (* off.(i): offset of tuple i in [data] *)
  len : int array;  (* len.(i): arity of tuple i *)
  hsh : int array;  (* hsh.(i): Tuple.hash, precomputed *)
  tup : Tuple.t array;  (* tup.(i): memoized boxed tuple *)
  buckets : id list array;  (* hash land (capacity - 1) -> local ids *)
}

type stripe = {
  st : state Atomic.t;
  lock : Mutex.t;
  mutable locked : int;
      (* lock acquisitions; written only under [lock], read racily by
         [contention] (stats only — a stale int is harmless). *)
}

let initial () =
  {
    count = 0;
    used = 0;
    data = Array.make 1024 0;
    off = Array.make 256 0;
    len = Array.make 256 0;
    hsh = Array.make 256 0;
    tup = Array.make 256 Tuple.empty;
    buckets = Array.make 256 [];
  }

let stripes =
  Array.init part_count (fun _ ->
      { st = Atomic.make (initial ()); lock = Mutex.create (); locked = 0 })

let packed_equal st i (t : Tuple.t) =
  let n = Tuple.arity t in
  st.len.(i) = n
  &&
  let o = st.off.(i) in
  let a = (t :> Symbol.t array) in
  let rec eq j =
    j = n
    || st.data.(o + j) = (Array.unsafe_get a j :> int) && eq (j + 1)
  in
  eq 0

let find_in st h t =
  let rec look = function
    | [] -> None
    | i :: rest ->
      (* [i < st.count] guards against conses appended to a shared bucket
         array after this snapshot was published. *)
      if i < st.count && st.hsh.(i) = h && packed_equal st i t then Some i
      else look rest
  in
  look st.buckets.(h land (Array.length st.buckets - 1))

let find t =
  let h = Tuple.hash t in
  let p = part_of_hash h in
  match find_in (Atomic.get stripes.(p).st) h t with
  | Some local -> Some (id_make ~part:p ~local)
  | None -> None

let grow_ints a =
  let bigger = Array.make (2 * Array.length a) 0 in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

(* The miss path: take the stripe lock, re-probe, append.  Shared by
   [intern] and [intern_seg]; [h] must be [Tuple.hash t] and [p] its
   stripe.  Returns the full (partition-carrying) id. *)
let intern_locked p h t =
  let s = stripes.(p) in
  Mutex.protect s.lock @@ fun () ->
  s.locked <- s.locked + 1;
  let st = Atomic.get s.st in
  (* Re-check against the latest snapshot: another domain may have
     interned [t] between our optimistic probe and taking the lock. *)
  match find_in st h t with
  | Some local -> id_make ~part:p ~local
  | None ->
    let n = Tuple.arity t in
    let local = st.count in
    let off, len, hsh, tup =
      if local < Array.length st.off then (st.off, st.len, st.hsh, st.tup)
      else
        ( grow_ints st.off,
          grow_ints st.len,
          grow_ints st.hsh,
          (let bigger = Array.make (2 * Array.length st.tup) Tuple.empty in
           Array.blit st.tup 0 bigger 0 (Array.length st.tup);
           bigger) )
    in
    let data =
      if st.used + n <= Array.length st.data then st.data
      else begin
        let cap = max (2 * Array.length st.data) (st.used + n) in
        let bigger = Array.make cap 0 in
        Array.blit st.data 0 bigger 0 st.used;
        bigger
      end
    in
    let a = (t :> Symbol.t array) in
    for j = 0 to n - 1 do
      data.(st.used + j) <- (Array.unsafe_get a j :> int)
    done;
    off.(local) <- st.used;
    len.(local) <- n;
    hsh.(local) <- h;
    tup.(local) <- t;
    let buckets =
      if local < Array.length st.buckets then st.buckets
      else begin
        (* Load factor reached 1: rehash into a fresh, twice-as-large
           array.  Older snapshots keep the superseded array, which is
           never mutated again. *)
        let cap = 2 * Array.length st.buckets in
        let b = Array.make cap [] in
        let m = cap - 1 in
        for i = 0 to local - 1 do
          let k = hsh.(i) land m in
          b.(k) <- i :: b.(k)
        done;
        b
      end
    in
    let k = h land (Array.length buckets - 1) in
    buckets.(k) <- local :: buckets.(k);
    Atomic.set s.st
      {
        count = local + 1;
        used = st.used + n;
        data;
        off;
        len;
        hsh;
        tup;
        buckets;
      };
    id_make ~part:p ~local

(* --- per-domain intern cache -------------------------------------------- *)

(* A direct-mapped hash -> id cache private to each domain.  A hit is
   validated by re-reading the cached id's packed words, so hash collisions
   merely fall through to the stripe probe.  Hit/miss counters are summed
   across all domains' caches by [contention]; the reads are racy, which is
   fine for statistics (native ints do not tear). *)

let cache_bits = 9

let cache_size = 1 lsl cache_bits

let cache_mask = cache_size - 1

type dcache = {
  keys : int array;  (* keys.(s): tuple hash cached in slot s *)
  ids : int array;  (* ids.(s): interned id, or -1 for empty *)
  mutable hits : int;
  mutable misses : int;
}

let cache_registry : dcache list ref = ref []

let cache_registry_lock = Mutex.create ()

let cache_key : dcache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c =
        {
          keys = Array.make cache_size 0;
          ids = Array.make cache_size (-1);
          hits = 0;
          misses = 0;
        }
      in
      Mutex.protect cache_registry_lock (fun () ->
          cache_registry := c :: !cache_registry);
      c)

let prime_local_cache () = ignore (Domain.DLS.get cache_key : dcache)

(* Validate a cached id against [t]: published counts only grow, so any id
   ever returned by an intern is readable in the current snapshot. *)
let id_matches h (t : Tuple.t) id =
  let st = Atomic.get stripes.(id_part id).st in
  let local = id_local id in
  st.hsh.(local) = h && packed_equal st local t

let intern t =
  let h = Tuple.hash t in
  let c = Domain.DLS.get cache_key in
  let slot = (h lxor (h lsr 17)) land cache_mask in
  let cached = c.ids.(slot) in
  if cached >= 0 && c.keys.(slot) = h && id_matches h t cached then begin
    c.hits <- c.hits + 1;
    cached
  end
  else begin
    c.misses <- c.misses + 1;
    let p = part_of_hash h in
    let id =
      match find_in (Atomic.get stripes.(p).st) h t with
      | Some local -> id_make ~part:p ~local
        (* optimistic lock-free hit: the common case once warm *)
      | None -> intern_locked p h t
    in
    c.keys.(slot) <- h;
    c.ids.(slot) <- id;
    id
  end

(* Segment variants: hash and compare a row in place inside a larger symbol
   array, so bulk loaders (the snapshot restore) probe without boxing a
   tuple per row.  [hash_seg] must agree with [Tuple.hash]. *)

let hash_seg (a : Symbol.t array) pos len =
  let acc = ref 17 in
  for j = pos to pos + len - 1 do
    acc := (!acc * 31) + (Array.unsafe_get a j :> int)
  done;
  !acc

let packed_equal_seg st i (a : Symbol.t array) pos len =
  st.len.(i) = len
  &&
  let o = st.off.(i) in
  let rec eq j =
    j = len
    || st.data.(o + j) = (Array.unsafe_get a (pos + j) :> int) && eq (j + 1)
  in
  eq 0

let find_seg_in st h a pos len =
  let rec look = function
    | [] -> None
    | i :: rest ->
      if i < st.count && st.hsh.(i) = h && packed_equal_seg st i a pos len
      then Some i
      else look rest
  in
  look st.buckets.(h land (Array.length st.buckets - 1))

let intern_seg a ~pos ~len =
  let h = hash_seg a pos len in
  let p = part_of_hash h in
  match find_seg_in (Atomic.get stripes.(p).st) h a pos len with
  | Some local -> id_make ~part:p ~local
  | None -> intern_locked p h (Tuple.unsafe_make (Array.sub a pos len))

let mem t = find t <> None

let tuple id = (Atomic.get stripes.(id_part id).st).tup.(id_local id)

let hash id = (Atomic.get stripes.(id_part id).st).hsh.(id_local id)

let arity id = (Atomic.get stripes.(id_part id).st).len.(id_local id)

let get id j =
  let st = Atomic.get stripes.(id_part id).st in
  let local = id_local id in
  if j < 0 || j >= st.len.(local) then invalid_arg "Store.get"
  else Symbol.unsafe_of_id st.data.(st.off.(local) + j)

let count () =
  Array.fold_left (fun acc s -> acc + (Atomic.get s.st).count) 0 stripes

let part_counts () = Array.map (fun s -> (Atomic.get s.st).count) stripes

(* --- contention counters ------------------------------------------------ *)

type contention = {
  stripe_locks : int;
  cache_hits : int;
  cache_misses : int;
  partition_skew : int;
}

let contention () =
  let stripe_locks = Array.fold_left (fun acc s -> acc + s.locked) 0 stripes in
  let cache_hits, cache_misses =
    Mutex.protect cache_registry_lock (fun () ->
        List.fold_left
          (fun (h, m) c -> (h + c.hits, m + c.misses))
          (0, 0) !cache_registry)
  in
  let partition_skew =
    if part_count = 1 then 0
    else
      let counts = part_counts () in
      let mx = Array.fold_left max counts.(0) counts in
      let mn = Array.fold_left min counts.(0) counts in
      mx - mn
  in
  { stripe_locks; cache_hits; cache_misses; partition_skew }

(* --- packed views ------------------------------------------------------- *)

type view = {
  v_counts : int array;
  v_data : int array array;
  v_off : int array array;
  v_len : int array array;
}

let view () =
  let sts = Array.map (fun s -> Atomic.get s.st) stripes in
  {
    v_counts = Array.map (fun st -> st.count) sts;
    v_data = Array.map (fun st -> st.data) sts;
    v_off = Array.map (fun st -> st.off) sts;
    v_len = Array.map (fun st -> st.len) sts;
  }
