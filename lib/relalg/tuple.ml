type t = Symbol.t array

let make a = Array.copy a

let unsafe_make a = a

let of_list = Array.of_list

let of_strings ss = Array.of_list (List.map Symbol.intern ss)

let of_ints ns = Array.of_list (List.map Symbol.of_int ns)

let arity = Array.length

let get t i =
  if i < 0 || i >= Array.length t then invalid_arg "Tuple.get" else t.(i)

let to_list = Array.to_list

let to_array = Array.copy

let empty = [||]

let singleton s = [| s |]

let pair a b = [| a; b |]

let append = Array.append

let sub = Array.sub

let project positions t = Array.of_list (List.map (fun i -> t.(i)) positions)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec loop i =
      if i = la then 0
      else
        let c = Symbol.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash (t : t) =
  Array.fold_left (fun acc s -> (acc * 31) + Symbol.to_int s) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Symbol.pp)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
