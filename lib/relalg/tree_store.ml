(* The seed storage backend: tuples in a balanced tree set with memoized
   per-column indexes.  Kept byte-for-byte in behaviour as an ablation
   baseline for the packed/hashed backend ({!Hash_store}); see
   {!Storage_sig.S} for the contract. *)

module TSet = Set.Make (Tuple)
module SMap = Map.Make (Symbol)

type index = Tuple.t list SMap.t

type t = {
  arity : int;
  tuples : TSet.t;
  indexes : index option array;
      (* indexes.(pos): Some idx when the column-[pos] index is
         materialised for exactly [tuples].  The array is never shared
         between relations with different tuple sets. *)
}

let kind = `Treeset

let make_t arity tuples = { arity; tuples; indexes = Array.make arity None }

let empty k = make_t k TSet.empty

let arity r = r.arity

let is_empty r = TSet.is_empty r.tuples

let cardinal r = TSet.cardinal r.tuples

let mem t r = TSet.mem t r.tuples

(* --- column indexes ----------------------------------------------------- *)

let index_add pos idx t =
  SMap.update (Tuple.get t pos)
    (fun o -> Some (t :: Option.value ~default:[] o))
    idx

let has_index r pos = r.indexes.(pos) <> None

let index r pos =
  match r.indexes.(pos) with
  | Some idx -> idx
  | None ->
    let idx = TSet.fold (fun t idx -> index_add pos idx t) r.tuples SMap.empty in
    (* Benign race under parallel evaluation: two domains may both build
       the index; either result is valid for this tuple set. *)
    r.indexes.(pos) <- Some idx;
    idx

let matching pos c r =
  Option.value ~default:[] (SMap.find_opt c (index r pos))

(* Derives the index array of a relation extended by [fresh] tuples (all
   absent from the parent): already-built columns are updated incrementally,
   unbuilt ones stay lazy. *)
let extend_indexes parent fresh =
  Array.mapi
    (fun pos o ->
      Option.map (fun idx -> List.fold_left (index_add pos) idx fresh) o)
    parent.indexes

(* --- construction ------------------------------------------------------- *)

let add t r =
  if TSet.mem t r.tuples then r
  else
    { arity = r.arity;
      tuples = TSet.add t r.tuples;
      indexes = extend_indexes r [ t ];
    }

let remove t r = make_t r.arity (TSet.remove t r.tuples)

let of_list k ts =
  make_t k (List.fold_left (fun s t -> TSet.add t s) TSet.empty ts)

let add_all ts r =
  let fresh = List.filter (fun t -> not (TSet.mem t r.tuples)) ts in
  if fresh = [] then r
  else
    { arity = r.arity;
      tuples = List.fold_left (fun s t -> TSet.add t s) r.tuples fresh;
      indexes = extend_indexes r fresh;
    }

let to_list r = TSet.elements r.tuples

let iter f r = TSet.iter f r.tuples

let fold f r init = TSet.fold f r.tuples init

let for_all p r = TSet.for_all p r.tuples

let exists p r = TSet.exists p r.tuples

let filter p r = make_t r.arity (TSet.filter p r.tuples)

let union r1 r2 =
  let big, small =
    if TSet.cardinal r1.tuples >= TSet.cardinal r2.tuples then (r1, r2)
    else (r2, r1)
  in
  let fresh =
    TSet.fold
      (fun t acc -> if TSet.mem t big.tuples then acc else t :: acc)
      small.tuples []
  in
  if fresh = [] then big
  else
    { arity = big.arity;
      tuples = List.fold_left (fun s t -> TSet.add t s) big.tuples fresh;
      indexes = extend_indexes big fresh;
    }

let inter r1 r2 = make_t r1.arity (TSet.inter r1.tuples r2.tuples)

let diff r1 r2 = make_t r1.arity (TSet.diff r1.tuples r2.tuples)

let subset r1 r2 = TSet.subset r1.tuples r2.tuples

let equal r1 r2 = TSet.equal r1.tuples r2.tuples

let compare r1 r2 = TSet.compare r1.tuples r2.tuples

let choose_opt r = TSet.choose_opt r.tuples

(* --- builder ------------------------------------------------------------ *)

type builder = {
  b_arity : int;
  mutable b_set : TSet.t;
  mutable b_card : int;
}

let builder k = { b_arity = k; b_set = TSet.empty; b_card = 0 }

let builder_add b t =
  if TSet.mem t b.b_set then false
  else begin
    b.b_set <- TSet.add t b.b_set;
    b.b_card <- b.b_card + 1;
    true
  end

let builder_card b = b.b_card

let builder_arity b = b.b_arity

let builder_merge b1 b2 =
  (* Fold the smaller tree into the larger one, counting fresh tuples so
     the merged cardinality stays exact. *)
  let big, small = if b1.b_card >= b2.b_card then (b1, b2) else (b2, b1) in
  TSet.iter
    (fun t ->
      if not (TSet.mem t big.b_set) then begin
        big.b_set <- TSet.add t big.b_set;
        big.b_card <- big.b_card + 1
      end)
    small.b_set;
  big

let build b = make_t b.b_arity b.b_set
