(** The signature a relation storage backend implements.

    {!Relation} is a thin dispatcher over two structures of this shape:
    {!Tree_store} (balanced tuple sets, the seed representation, kept as an
    ablation) and {!Hash_store} (Patricia sets of packed tuple ids from
    {!Store}).  Arity checking, mixed-backend coercion and the derived
    relational algebra (product, join, projection, [full]) live in
    {!Relation}; a backend only provides the set core, the memoized column
    indexes, and a mutable bulk builder.

    Backends are free to iterate in their own order ([iter], [fold]), but
    [to_list] must return tuples in increasing {!Tuple.compare} order so
    that printing and cross-backend comparison are representation-
    independent. *)

module type S = sig
  type t

  val kind : [ `Treeset | `Hashed ]

  val empty : int -> t
  (** [empty k]: the empty relation of arity [k] (arity [>= 0] guaranteed by
      the caller). *)

  val arity : t -> int

  val is_empty : t -> bool

  val cardinal : t -> int
  (** O(1) in both backends. *)

  val mem : Tuple.t -> t -> bool

  val add : Tuple.t -> t -> t
  (** Already-built column indexes are extended incrementally. *)

  val remove : Tuple.t -> t -> t

  val of_list : int -> Tuple.t list -> t
  (** Bulk construction: one pass, no per-add index churn.  Duplicates are
      collapsed. *)

  val add_all : Tuple.t list -> t -> t
  (** Bulk union of a tuple list into a relation; already-built indexes are
      extended once with the genuinely fresh tuples. *)

  val to_list : t -> Tuple.t list
  (** In increasing {!Tuple.compare} order, whatever the backend. *)

  val iter : (Tuple.t -> unit) -> t -> unit
  (** In backend order (tuple order for trees, intern-id order for hashed
      relations) — deterministic, but backend-dependent. *)

  val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

  val for_all : (Tuple.t -> bool) -> t -> bool

  val exists : (Tuple.t -> bool) -> t -> bool

  val filter : (Tuple.t -> bool) -> t -> t

  val union : t -> t -> t

  val inter : t -> t -> t

  val diff : t -> t -> t

  val subset : t -> t -> bool

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** A total order consistent with [equal]; backend-specific (callers
      needing a representation-independent order sort [to_list]). *)

  val choose_opt : t -> Tuple.t option

  val matching : int -> Symbol.t -> t -> Tuple.t list
  (** Served from the memoized column index, built on first use (position
      validity guaranteed by the caller). *)

  val has_index : t -> int -> bool

  (** {2 Bulk builder}

      A mutable accumulator for streaming construction: the evaluation
      engine emits head tuples into a builder and finalises once, so the
      per-tuple cost is one membership probe and one set insert — no
      intermediate relation records, no index extension until the built
      relation is first joined against. *)

  type builder

  val builder : int -> builder
  (** [builder k]: an empty accumulator of arity [k]. *)

  val builder_add : builder -> Tuple.t -> bool
  (** Adds a tuple; [true] iff it was not already accumulated.  Must not be
      called on a builder that has been through {!builder_merge} (backends
      may raise [Invalid_argument]). *)

  val builder_card : builder -> int
  (** Exact for a builder that has only seen {!builder_add}; after
      {!builder_merge} it may be an upper bound (cross-builder duplicates
      are collapsed by {!build}, not by the merge). *)

  val builder_arity : builder -> int

  val builder_merge : builder -> builder -> builder
  (** Destructive union of two builders in O(smaller) work: the result
      reuses the larger builder's storage.  Neither argument may be used
      afterwards, and the result accepts only {!builder_merge} and {!build}
      (the sharded plan executor merges per-shard accumulators with this at
      the barrier).  The hashed backend concatenates per-stripe id runs
      without deduplicating across the two builders, which is what makes
      the barrier merge O(rows moved) instead of a hash-set rebuild. *)

  val build : builder -> t
  (** Finalise.  The builder must not be reused afterwards. *)
end
