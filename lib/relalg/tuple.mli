(** Tuples of constants.

    A tuple is an immutable array of symbols.  Tuples are the elements of
    {!Relation} values; the order used throughout is lexicographic on symbol
    identifiers. *)

type t = private Symbol.t array

val make : Symbol.t array -> t
(** [make a] turns [a] into a tuple; the array is copied, so later mutation
    of [a] does not affect the tuple. *)

val unsafe_make : Symbol.t array -> t
(** [unsafe_make a] adopts [a] without copying.  The caller must either
    never mutate [a] again, or only hand the tuple to operations that do
    not retain it (membership probes) — the grounding and join hot paths
    use this to fill one scratch buffer per literal instead of allocating
    per candidate binding. *)

val of_list : Symbol.t list -> t

val of_strings : string list -> t
(** [of_strings ss] interns each string and builds the tuple. *)

val of_ints : int list -> t
(** [of_ints ns] interns the decimal rendering of each integer. *)

val arity : t -> int

val get : t -> int -> Symbol.t
(** [get t i] is the [i]-th component (0-based).  @raise Invalid_argument if
    out of range. *)

val to_list : t -> Symbol.t list

val to_array : t -> Symbol.t array
(** Fresh copy of the underlying array. *)

val empty : t
(** The 0-ary tuple. *)

val singleton : Symbol.t -> t

val pair : Symbol.t -> Symbol.t -> t

val append : t -> t -> t

val sub : t -> int -> int -> t
(** [sub t pos len] is the slice of [t] starting at [pos] of length [len]. *)

val project : int list -> t -> t
(** [project positions t] keeps the listed components, in the listed order. *)

val compare : t -> t -> int
(** Shorter tuples first, then lexicographic on components. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [(a, b, c)]. *)

val to_string : t -> string
