(** Interned constants.

    Every constant appearing in a database universe or in a program is
    interned into a global table, so that a symbol is represented by a small
    integer and tuples of symbols compare and hash fast.  Interning is
    deterministic within a process: the same string always yields the same
    symbol.

    The table is domain-safe: both directions are published through
    immutable snapshots, so {!intern} probes lock-free and serialises on a
    mutex only to add a genuinely new name ({!fresh} always locks), the
    parallel engine's worker domains may intern concurrently, and
    {!name}/{!count} never lock. *)

type t = private int
(** An interned constant.  The integer representation is exposed read-only so
    that symbols can index arrays and sets of symbols can be bitsets. *)

val intern : string -> t
(** [intern s] returns the symbol for the string [s], creating it on first
    use. *)

val of_int : int -> t
(** [of_int n] interns the decimal rendering of [n]; convenient for numeric
    universes such as the vertex sets of generated graphs. *)

val name : t -> string
(** [name s] is the string that was interned to produce [s]. *)

val to_int : t -> int
(** [to_int s] is the raw identifier of [s]. *)

val unsafe_of_id : int -> t
(** [unsafe_of_id id] converts a raw identifier back to a symbol.  The caller
    must guarantee that [id] was produced by {!to_int}. *)

val count : unit -> int
(** Number of symbols interned so far. *)

val export_names : unit -> string array
(** One immutable snapshot of the intern table: index [i] holds the name of
    the symbol whose {!to_int} is [i], for every symbol interned before the
    call.  The snapshot writer uses this to resolve names by plain array
    indexing instead of one atomic read per component. *)

val compare : t -> t -> int
(** Total order on symbols (by identifier, i.e. by interning time). *)

val as_int : t -> int option
(** The symbol's name read as a decimal integer, when it is one. *)

val compare_value : t -> t -> int
(** The {e value} order used by limit predicates and by the [<=] / [>=]
    comparison literals: numeric when both names parse as integers,
    lexicographic on names otherwise.  Deterministic across processes
    (unlike {!compare}, it does not depend on interning order). *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the symbol's name. *)

val fresh : string -> t
(** [fresh prefix] interns a name based on [prefix] that is guaranteed not to
    have been interned before; used by program transformations that need new
    constants. *)
