(** The packed/hashed storage backend.

    A relation is a Patricia set ({!Idset}) of tuple ids interned in the
    global packed {!Store}, with an O(1) cached cardinal and the same
    memoized per-column indexes as {!Tree_store}.  Membership is a
    precomputed-hash probe plus an integer-set lookup; union, intersection,
    difference, equality and subset merge shared Patricia structure instead
    of comparing tuples elementwise.  [iter]/[fold] run in intern-id order
    (deterministic, but not tuple order); [to_list] sorts. *)

include Storage_sig.S

val of_array : int -> Tuple.t array -> t
(** [of_array k tuples] builds an arity-[k] relation in one bulk pass:
    tuples are interned into a preallocated id array, sorted, deduplicated
    in place and assembled with {!Idset.of_sorted_array} — no intermediate
    list and one allocation per Patricia node.  The array is not
    retained. *)

val of_flat_rows : int -> Symbol.t array -> t
(** [of_flat_rows k flat] builds the arity-[k] relation whose rows are the
    consecutive length-[k] segments of [flat] ([k > 0]).  Rows are interned
    in place ({!Store.intern_seg} — no per-row boxing on re-intern), and
    when the resulting ids span most of the store the sort-and-dedup pass
    is a dense mark-and-sweep rather than a comparison sort.  The restore
    fast path of snapshots.  [flat] is not retained; trailing words beyond
    a multiple of [k] are ignored. *)

val unsafe_make : int -> Idset.t -> int -> t
(** [unsafe_make k ids card]: a relation of arity [k] over interned tuple
    ids.  The caller guarantees every id denotes a tuple of arity [k] and
    that [card = Idset.cardinal ids]. *)

val ids : t -> Idset.t
(** The underlying interned-id set.  The snapshot writer walks this to
    stream tuple contents straight out of the packed {!Store} arrays. *)
