(** The packed/hashed storage backend.

    A relation is a Patricia set ({!Idset}) of tuple ids interned in the
    global packed {!Store}, with an O(1) cached cardinal and the same
    memoized per-column indexes as {!Tree_store}.  Membership is a
    precomputed-hash probe plus an integer-set lookup; union, intersection,
    difference, equality and subset merge shared Patricia structure instead
    of comparing tuples elementwise.  [iter]/[fold] run in intern-id order
    (deterministic, but not tuple order); [to_list] sorts. *)

include Storage_sig.S

val unsafe_make : int -> Idset.t -> int -> t
(** [unsafe_make k ids card]: a relation of arity [k] over interned tuple
    ids.  The caller guarantees every id denotes a tuple of arity [k] and
    that [card = Idset.cardinal ids]. *)
