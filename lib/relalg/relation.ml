(* A relation is one of two interchangeable storage backends behind the
   same interface: the seed balanced-tree representation ([`Treeset],
   {!Tree_store}) and the packed/hashed representation ([`Hashed],
   {!Hash_store}, the default).  This module owns arity checking, the
   derived relational algebra, mixed-backend coercion and the bulk-builder
   surface; the set core and the memoized column indexes live in the
   backends ({!Storage_sig.S}). *)

type storage = [ `Treeset | `Hashed ]

type t =
  | T of Tree_store.t
  | H of Hash_store.t

let default = Atomic.make `Hashed

let set_default_storage s = Atomic.set default s

let default_storage () = Atomic.get default

let storage_of = function T _ -> `Treeset | H _ -> `Hashed

let pp_storage ppf s =
  Format.pp_print_string ppf
    (match s with `Treeset -> "treeset" | `Hashed -> "hashed")

let make_empty storage k =
  match storage with
  | `Treeset -> T (Tree_store.empty k)
  | `Hashed -> H (Hash_store.empty k)

let empty ?storage k =
  if k < 0 then invalid_arg "Relation.empty: negative arity";
  make_empty (Option.value storage ~default:(default_storage ())) k

let arity = function T r -> Tree_store.arity r | H r -> Hash_store.arity r

let is_empty = function T r -> Tree_store.is_empty r | H r -> Hash_store.is_empty r

let cardinal = function T r -> Tree_store.cardinal r | H r -> Hash_store.cardinal r

let ids = function T _ -> None | H r -> Some (Hash_store.ids r)

let check_arity fname r t =
  if Tuple.arity t <> arity r then
    invalid_arg
      (Printf.sprintf "Relation.%s: tuple arity %d, relation arity %d" fname
         (Tuple.arity t) (arity r))

let mem t r =
  match r with T r -> Tree_store.mem t r | H r -> Hash_store.mem t r

(* --- column indexes ----------------------------------------------------- *)

let has_index r pos =
  pos >= 0 && pos < arity r
  && (match r with
     | T r -> Tree_store.has_index r pos
     | H r -> Hash_store.has_index r pos)

let matching pos c r =
  if pos < 0 || pos >= arity r then invalid_arg "Relation.matching: bad column";
  match r with
  | T r -> Tree_store.matching pos c r
  | H r -> Hash_store.matching pos c r

(* --- construction ------------------------------------------------------- *)

let add t r =
  check_arity "add" r t;
  match r with T r -> T (Tree_store.add t r) | H r -> H (Hash_store.add t r)

let remove t r =
  match r with
  | T r -> T (Tree_store.remove t r)
  | H r -> H (Hash_store.remove t r)

let singleton t = add t (empty (Tuple.arity t))

let check_arities fname k ts =
  List.iter
    (fun t ->
      if Tuple.arity t <> k then
        invalid_arg
          (Printf.sprintf "Relation.%s: tuple arity %d, relation arity %d"
             fname (Tuple.arity t) k))
    ts

let of_list_in storage k ts =
  match storage with
  | `Treeset -> T (Tree_store.of_list k ts)
  | `Hashed -> H (Hash_store.of_list k ts)

let of_list ?storage k ts =
  if k < 0 then invalid_arg "Relation.of_list: negative arity";
  check_arities "of_list" k ts;
  of_list_in (Option.value storage ~default:(default_storage ())) k ts

let of_seq ?storage k seq = of_list ?storage k (List.of_seq seq)

let of_array ?storage k ts =
  if k < 0 then invalid_arg "Relation.of_array: negative arity";
  Array.iter
    (fun t ->
      if Tuple.arity t <> k then
        invalid_arg
          (Printf.sprintf "Relation.of_array: tuple arity %d, relation arity %d"
             (Tuple.arity t) k))
    ts;
  match Option.value storage ~default:(default_storage ()) with
  | `Treeset -> T (Tree_store.of_list k (Array.to_list ts))
  | `Hashed -> H (Hash_store.of_array k ts)

let of_flat_rows ?storage k flat =
  if k <= 0 then invalid_arg "Relation.of_flat_rows: arity must be positive";
  if Array.length flat mod k <> 0 then
    invalid_arg
      (Printf.sprintf "Relation.of_flat_rows: %d words, arity %d"
         (Array.length flat) k);
  match Option.value storage ~default:(default_storage ()) with
  | `Hashed -> H (Hash_store.of_flat_rows k flat)
  | `Treeset ->
    let n = Array.length flat / k in
    T
      (Tree_store.of_list k
         (List.init n (fun i ->
              Tuple.unsafe_make (Array.sub flat (i * k) k))))

let add_all ts r =
  check_arities "add_all" (arity r) ts;
  match r with
  | T r -> T (Tree_store.add_all ts r)
  | H r -> H (Hash_store.add_all ts r)

let to_list = function T r -> Tree_store.to_list r | H r -> Hash_store.to_list r

let iter f = function T r -> Tree_store.iter f r | H r -> Hash_store.iter f r

let fold f r init =
  match r with
  | T r -> Tree_store.fold f r init
  | H r -> Hash_store.fold f r init

let for_all p = function
  | T r -> Tree_store.for_all p r
  | H r -> Hash_store.for_all p r

let exists p = function
  | T r -> Tree_store.exists p r
  | H r -> Hash_store.exists p r

let filter p = function
  | T r -> T (Tree_store.filter p r)
  | H r -> H (Hash_store.filter p r)

let map k f r = of_list_in (storage_of r) k (fold (fun t acc -> f t :: acc) r [])

let same_arity fname r1 r2 =
  if arity r1 <> arity r2 then
    invalid_arg
      (Printf.sprintf "Relation.%s: arities %d and %d differ" fname (arity r1)
         (arity r2))

(* Mixed-backend operands are rare (one evaluation sticks to one backend;
   the empty fast paths below absorb the default-storage empties that
   [Idb.empty] seeds) — when they do meet, the right operand is converted
   to the left's representation. *)
let coerce_like r1 r2 =
  match (r1, r2) with
  | T _, (T _ as r) | H _, (H _ as r) -> r
  | T _, (H _ as r) -> T (Tree_store.of_list (arity r) (to_list r))
  | H _, (T _ as r) -> H (Hash_store.of_list (arity r) (to_list r))

let union r1 r2 =
  same_arity "union" r1 r2;
  if is_empty r1 then r2
  else if is_empty r2 then r1
  else
    match (r1, coerce_like r1 r2) with
    | T a, T b -> T (Tree_store.union a b)
    | H a, H b -> H (Hash_store.union a b)
    | _ -> assert false

let inter r1 r2 =
  same_arity "inter" r1 r2;
  if is_empty r1 then r1
  else if is_empty r2 then empty ~storage:(storage_of r1) (arity r1)
  else
    match (r1, coerce_like r1 r2) with
    | T a, T b -> T (Tree_store.inter a b)
    | H a, H b -> H (Hash_store.inter a b)
    | _ -> assert false

let diff r1 r2 =
  same_arity "diff" r1 r2;
  if is_empty r1 || is_empty r2 then r1
  else
    match (r1, coerce_like r1 r2) with
    | T a, T b -> T (Tree_store.diff a b)
    | H a, H b -> H (Hash_store.diff a b)
    | _ -> assert false

let subset r1 r2 =
  same_arity "subset" r1 r2;
  if is_empty r1 then true
  else
    match (r1, coerce_like r1 r2) with
    | T a, T b -> Tree_store.subset a b
    | H a, H b -> Hash_store.subset a b
    | _ -> assert false

let equal r1 r2 =
  arity r1 = arity r2
  && cardinal r1 = cardinal r2
  &&
  match (r1, coerce_like r1 r2) with
  | T a, T b -> Tree_store.equal a b
  | H a, H b -> Hash_store.equal a b
  | _ -> assert false

let compare r1 r2 =
  let c = Int.compare (arity r1) (arity r2) in
  if c <> 0 then c
  else
    match (r1, r2) with
    | T a, T b -> Tree_store.compare a b
    | H a, H b -> Hash_store.compare a b
    | (T _ | H _), _ ->
      (* Mixed backends: representation-independent order. *)
      List.compare Tuple.compare (to_list r1) (to_list r2)

let choose_opt = function
  | T r -> Tree_store.choose_opt r
  | H r -> Hash_store.choose_opt r

(* --- bulk builder ------------------------------------------------------- *)

type builder =
  | TB of Tree_store.builder
  | HB of Hash_store.builder

let builder ?storage k =
  if k < 0 then invalid_arg "Relation.builder: negative arity";
  match Option.value storage ~default:(default_storage ()) with
  | `Treeset -> TB (Tree_store.builder k)
  | `Hashed -> HB (Hash_store.builder k)

let builder_add b t =
  match b with
  | TB b -> Tree_store.builder_add b t
  | HB b -> Hash_store.builder_add b t

let builder_cardinal = function
  | TB b -> Tree_store.builder_card b
  | HB b -> Hash_store.builder_card b

let builder_arity = function
  | TB b -> Tree_store.builder_arity b
  | HB b -> Hash_store.builder_arity b

let builder_merge b1 b2 =
  if builder_arity b1 <> builder_arity b2 then
    invalid_arg
      (Printf.sprintf "Relation.builder_merge: arities %d and %d differ"
         (builder_arity b1) (builder_arity b2));
  match (b1, b2) with
  | TB a, TB b -> TB (Tree_store.builder_merge a b)
  | HB a, HB b -> HB (Hash_store.builder_merge a b)
  | (TB _ | HB _), _ ->
    (* Shard accumulators of one execution share one backend by
       construction; a mixed merge is a caller bug, not a coercion case. *)
    invalid_arg "Relation.builder_merge: mixed storage backends"

let build = function TB b -> T (Tree_store.build b) | HB b -> H (Hash_store.build b)

(* --- derived relational algebra ----------------------------------------- *)

let product r1 r2 =
  let k = arity r1 + arity r2 in
  let pairs =
    fold
      (fun t1 acc -> fold (fun t2 acc -> Tuple.append t1 t2 :: acc) r2 acc)
      r1 []
  in
  of_list_in (storage_of r1) k pairs

let project positions r =
  let k = List.length positions in
  map k (Tuple.project positions) r

let select = filter

let select_eq i c r = filter (fun t -> Symbol.equal (Tuple.get t i) c) r

let join_positions eqs r1 r2 =
  let k = arity r1 + arity r2 in
  let rows =
    fold
      (fun t1 acc ->
        fold
          (fun t2 acc ->
            let matches =
              List.for_all
                (fun (i, j) -> Symbol.equal (Tuple.get t1 i) (Tuple.get t2 j))
                eqs
            in
            if matches then Tuple.append t1 t2 :: acc else acc)
          r2 acc)
      r1 []
  in
  of_list_in (storage_of r1) k rows

let full_in storage universe k =
  let elements = Array.of_list universe in
  let n = Array.length elements in
  if k = 0 then add Tuple.empty (make_empty storage 0)
  else if n = 0 then make_empty storage k
  else begin
    (* One bulk pass: enumerate universe^k into a list, then build the set
       and leave indexes lazy — no per-add record or index churn. *)
    let acc = ref [] in
    let slots = Array.make k elements.(0) in
    let rec fill pos =
      if pos = k then acc := Tuple.make slots :: !acc
      else
        for i = 0 to n - 1 do
          slots.(pos) <- elements.(i);
          fill (pos + 1)
        done
    in
    fill 0;
    of_list_in storage k !acc
  end

let full ?storage universe k =
  if k < 0 then invalid_arg "Relation.full: negative arity";
  full_in (Option.value storage ~default:(default_storage ())) universe k

let complement universe r = diff (full_in (storage_of r) universe (arity r)) r

let pp ppf r =
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Tuple.pp)
    (to_list r)

let to_string r = Format.asprintf "%a" pp r

(* --- limit tightening --------------------------------------------------- *)

let tighten ~kind ~col current candidates =
  let k = arity current in
  if arity candidates <> k then invalid_arg "Relation.tighten: arity mismatch";
  if col < 0 || col >= k then
    invalid_arg
      (Printf.sprintf "Relation.tighten: column %d outside arity %d" col k);
  let better a b =
    let c = Symbol.compare_value a b in
    match kind with `Min -> c < 0 | `Max -> c > 0
  in
  let gpos = Array.init (k - 1) (fun i -> if i < col then i else i + 1) in
  let group tu = Tuple.make (Array.map (fun i -> Tuple.get tu i) gpos) in
  (* Dominant candidate per group, over the candidate set alone. *)
  let best : (Tuple.t, Tuple.t) Hashtbl.t = Hashtbl.create 64 in
  iter
    (fun tu ->
      let g = group tu in
      match Hashtbl.find_opt best g with
      | Some old when not (better (Tuple.get tu col) (Tuple.get old col)) ->
        ()
      | _ -> Hashtbl.replace best g tu)
    candidates;
  (* The current bound of a group is read through the memoized column index
     on the first group column; an arity-1 limit relation holds at most the
     one global bound. *)
  let current_bound g =
    if k = 1 then choose_opt current
    else
      matching gpos.(0) (Tuple.get g 0) current
      |> List.find_opt (fun tu -> Tuple.equal (group tu) g)
  in
  let fresh = ref [] and dropped = ref [] in
  Hashtbl.iter
    (fun g cand ->
      match current_bound g with
      | None -> fresh := cand :: !fresh
      | Some old ->
        if better (Tuple.get cand col) (Tuple.get old col) then begin
          fresh := cand :: !fresh;
          dropped := old :: !dropped
        end)
    best;
  match !fresh with
  | [] -> (current, empty ~storage:(storage_of current) k)
  | fresh_list ->
    let shrunk = List.fold_left (fun r tu -> remove tu r) current !dropped in
    ( add_all fresh_list shrunk,
      of_list ~storage:(storage_of current) k fresh_list )

let dominant ~kind ~col r =
  fst (tighten ~kind ~col (empty ~storage:(storage_of r) (arity r)) r)
