module TSet = Set.Make (Tuple)
module SMap = Map.Make (Symbol)

(* A column index maps a symbol to the tuples carrying it at that column.
   Indexes live in persistent maps, so derived relations can share them
   structurally; the per-relation [indexes] array is a memo table — a cell
   is filled at most once per column, lazily on first use or incrementally
   at construction time (see [add] and [union]). *)
type index = Tuple.t list SMap.t

type t = {
  arity : int;
  tuples : TSet.t;
  indexes : index option array;
      (* indexes.(pos): Some idx when the column-[pos] index is
         materialised for exactly [tuples].  The array is never shared
         between relations with different tuple sets. *)
}

let make_t arity tuples = { arity; tuples; indexes = Array.make arity None }

let empty k =
  if k < 0 then invalid_arg "Relation.empty: negative arity";
  make_t k TSet.empty

let arity r = r.arity

let is_empty r = TSet.is_empty r.tuples

let cardinal r = TSet.cardinal r.tuples

let mem t r = TSet.mem t r.tuples

let check_arity fname r t =
  if Tuple.arity t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation.%s: tuple arity %d, relation arity %d" fname
         (Tuple.arity t) r.arity)

(* --- column indexes ----------------------------------------------------- *)

let index_add pos idx t =
  SMap.update (Tuple.get t pos)
    (fun o -> Some (t :: Option.value ~default:[] o))
    idx

let has_index r pos = pos >= 0 && pos < r.arity && r.indexes.(pos) <> None

let index r pos =
  if pos < 0 || pos >= r.arity then invalid_arg "Relation.matching: bad column";
  match r.indexes.(pos) with
  | Some idx -> idx
  | None ->
    let idx = TSet.fold (fun t idx -> index_add pos idx t) r.tuples SMap.empty in
    (* Benign race under parallel evaluation: two domains may both build
       the index; either result is valid for this tuple set. *)
    r.indexes.(pos) <- Some idx;
    idx

let matching pos c r =
  Option.value ~default:[] (SMap.find_opt c (index r pos))

(* Derives the index array of a relation extended by [fresh] tuples (all
   absent from the parent): already-built columns are updated incrementally,
   unbuilt ones stay lazy. *)
let extend_indexes parent fresh =
  Array.mapi
    (fun pos o ->
      Option.map
        (fun idx -> List.fold_left (index_add pos) idx fresh)
        o)
    parent.indexes

(* --- construction ------------------------------------------------------- *)

let add t r =
  check_arity "add" r t;
  if TSet.mem t r.tuples then r
  else
    { arity = r.arity;
      tuples = TSet.add t r.tuples;
      indexes = extend_indexes r [ t ];
    }

let remove t r = make_t r.arity (TSet.remove t r.tuples)

let singleton t = make_t (Tuple.arity t) (TSet.singleton t)

let of_list k ts = List.fold_left (fun r t -> add t r) (empty k) ts

let to_list r = TSet.elements r.tuples

let iter f r = TSet.iter f r.tuples

let fold f r init = TSet.fold f r.tuples init

let for_all p r = TSet.for_all p r.tuples

let exists p r = TSet.exists p r.tuples

let filter p r = make_t r.arity (TSet.filter p r.tuples)

let map k f r =
  fold (fun t acc -> add (f t) acc) r (empty k)

let same_arity fname r1 r2 =
  if r1.arity <> r2.arity then
    invalid_arg
      (Printf.sprintf "Relation.%s: arities %d and %d differ" fname r1.arity
         r2.arity)

let union r1 r2 =
  same_arity "union" r1 r2;
  let big, small =
    if TSet.cardinal r1.tuples >= TSet.cardinal r2.tuples then (r1, r2)
    else (r2, r1)
  in
  let fresh =
    TSet.fold
      (fun t acc -> if TSet.mem t big.tuples then acc else t :: acc)
      small.tuples []
  in
  if fresh = [] then big
  else
    { arity = big.arity;
      tuples = List.fold_left (fun s t -> TSet.add t s) big.tuples fresh;
      indexes = extend_indexes big fresh;
    }

let inter r1 r2 =
  same_arity "inter" r1 r2;
  make_t r1.arity (TSet.inter r1.tuples r2.tuples)

let diff r1 r2 =
  same_arity "diff" r1 r2;
  make_t r1.arity (TSet.diff r1.tuples r2.tuples)

let subset r1 r2 =
  same_arity "subset" r1 r2;
  TSet.subset r1.tuples r2.tuples

let equal r1 r2 = r1.arity = r2.arity && TSet.equal r1.tuples r2.tuples

let compare r1 r2 =
  let c = Int.compare r1.arity r2.arity in
  if c <> 0 then c else TSet.compare r1.tuples r2.tuples

let choose_opt r = TSet.choose_opt r.tuples

let product r1 r2 =
  let k = r1.arity + r2.arity in
  fold
    (fun t1 acc ->
      fold (fun t2 acc -> add (Tuple.append t1 t2) acc) r2 acc)
    r1 (empty k)

let project positions r =
  let k = List.length positions in
  map k (Tuple.project positions) r

let select = filter

let select_eq i c r = filter (fun t -> Symbol.equal (Tuple.get t i) c) r

let join_positions eqs r1 r2 =
  let k = r1.arity + r2.arity in
  fold
    (fun t1 acc ->
      fold
        (fun t2 acc ->
          let matches =
            List.for_all
              (fun (i, j) -> Symbol.equal (Tuple.get t1 i) (Tuple.get t2 j))
              eqs
          in
          if matches then add (Tuple.append t1 t2) acc else acc)
        r2 acc)
    r1 (empty k)

let full universe k =
  let elements = Array.of_list universe in
  let n = Array.length elements in
  if k = 0 then singleton Tuple.empty
  else if n = 0 then empty k
  else begin
    let acc = ref (empty k) in
    let slots = Array.make k elements.(0) in
    let rec fill pos =
      if pos = k then acc := add (Tuple.make slots) !acc
      else
        for i = 0 to n - 1 do
          slots.(pos) <- elements.(i);
          fill (pos + 1)
        done
    in
    fill 0;
    !acc
  end

let complement universe r = diff (full universe r.arity) r

let pp ppf r =
  Format.fprintf ppf "{@[<hov>%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Tuple.pp)
    (to_list r)

let to_string r = Format.asprintf "%a" pp r
