(** The global packed tuple store.

    Interns tuples into a flat, append-only [int array] of symbol ids with
    per-tuple precomputed hashes, so that a tuple is represented everywhere
    else by a dense integer {!id}: membership and set algebra on relations
    become integer-set operations ({!Idset}), equality never re-walks symbol
    arrays, and {!tuple} returns the memoized boxed tuple without
    allocating.

    Like {!Symbol}, the store is global and domain-safe: writers serialise
    on a mutex and publish immutable snapshots, readers ({!find}, {!mem},
    {!tuple}, {!hash}, {!arity}) never lock.  Interning is deterministic
    within a process — ids are dense and assigned in first-intern order. *)

type id = int
(** A dense tuple identifier, valid for the whole process lifetime. *)

val intern : Tuple.t -> id
(** [intern t] returns the id of [t], packing it into the store on first
    use. *)

val intern_seg : Symbol.t array -> pos:int -> len:int -> id
(** [intern_seg a ~pos ~len] interns the tuple
    [a.(pos) .. a.(pos + len - 1)]: the hash and the probe read the
    segment in place, and a boxed tuple is built only on first intern.
    Equivalent to [intern (Tuple.make (Array.sub a pos len))] — bulk
    loaders use it to probe row-major matrices without boxing a tuple per
    row. *)

val find : Tuple.t -> id option
(** [find t] is [t]'s id if it was ever interned, without interning it —
    membership tests on relations use this, so probing for unseen tuples
    does not grow the store. *)

val mem : Tuple.t -> bool

val tuple : id -> Tuple.t
(** The memoized boxed tuple; O(1), no allocation. *)

val hash : id -> int
(** [Tuple.hash] of the tuple, precomputed at intern time. *)

val arity : id -> int

val get : id -> int -> Symbol.t
(** [get id j] is component [j], read from the packed array.
    @raise Invalid_argument if [j] is out of range. *)

val count : unit -> int
(** Number of distinct tuples interned so far. *)

type view = {
  v_count : int;  (** Ids [0 .. v_count - 1] are readable through this view. *)
  v_data : int array;  (** Packed symbol ids (do not mutate). *)
  v_off : int array;  (** Offset of tuple [i] in [v_data]. *)
  v_len : int array;  (** Arity of tuple [i]. *)
}
(** A published snapshot of the packed arrays: components of tuple [i] are
    [v_data.(v_off.(i) + j)] for [j < v_len.(i)].  Slots at or beyond
    [v_count] must not be read.  The arrays are the store's own (append-only
    up to the published count) — treat them as read-only. *)

val view : unit -> view
(** The current packed snapshot, lock-free.  The snapshot writer streams
    relation contents straight out of the flat arrays through this — no
    per-tuple boxing or hashing on the export path. *)
