(** The global packed tuple store, hash-partitioned into stripes.

    Interns tuples into flat, append-only [int array]s of symbol ids with
    per-tuple precomputed hashes, so that a tuple is represented everywhere
    else by an integer {!id}: membership and set algebra on relations
    become integer-set operations ({!Idset}), equality never re-walks symbol
    arrays, and {!tuple} returns the memoized boxed tuple without
    allocating.

    The store is split into {!partitions} independently locked stripes
    (chosen by tuple hash; [NEGDL_PARTITIONS] pins the count, defaulting
    to the host's recommended domain count,
    rounded to a power of two and clamped to 1..64).  An id carries its
    stripe in the high bits ([{!id_part} lsl 44 lor {!id_local}]), so ids
    are dense {e per stripe} rather than globally, and the concatenation of
    per-stripe ascending local-id runs in stripe order is globally sorted —
    the invariant the partition-wise relation builders exploit.  With one
    partition, ids coincide with the seed's dense global layout.

    Each stripe is domain-safe like {!Symbol}: writers serialise on the
    stripe's mutex and publish immutable snapshots; readers ({!find},
    {!mem}, {!tuple}, {!hash}, {!arity}) never lock.  Each domain
    additionally keeps a small private intern cache so repeated interns of
    hot tuples skip the stripe probe entirely.  Interning is deterministic
    within a process for a fixed partition count — local ids are dense and
    assigned in first-intern order per stripe. *)

type id = int
(** A tuple identifier, valid for the whole process lifetime.  Dense within
    its stripe; the stripe index lives in the high bits. *)

val partitions : unit -> int
(** Number of stripes (a power of two, fixed at process start). *)

val id_part : id -> int
(** The stripe an id belongs to. *)

val id_local : id -> int
(** The id's dense index within its stripe ([0 .. stripe count - 1]). *)

val id_make : part:int -> local:int -> id
(** Recompose an id from its stripe and local index. *)

val intern : Tuple.t -> id
(** [intern t] returns the id of [t], packing it into the store on first
    use.  Probes the calling domain's cache, then the stripe lock-free,
    and takes the stripe lock only to append a genuinely new tuple. *)

val intern_seg : Symbol.t array -> pos:int -> len:int -> id
(** [intern_seg a ~pos ~len] interns the tuple
    [a.(pos) .. a.(pos + len - 1)]: the hash and the probe read the
    segment in place, and a boxed tuple is built only on first intern.
    Equivalent to [intern (Tuple.make (Array.sub a pos len))] — bulk
    loaders use it to probe row-major matrices without boxing a tuple per
    row. *)

val find : Tuple.t -> id option
(** [find t] is [t]'s id if it was ever interned, without interning it —
    membership tests on relations use this, so probing for unseen tuples
    does not grow the store. *)

val mem : Tuple.t -> bool

val tuple : id -> Tuple.t
(** The memoized boxed tuple; O(1), no allocation, no lock. *)

val hash : id -> int
(** [Tuple.hash] of the tuple, precomputed at intern time. *)

val arity : id -> int

val get : id -> int -> Symbol.t
(** [get id j] is component [j], read from the packed array.
    @raise Invalid_argument if [j] is out of range. *)

val count : unit -> int
(** Number of distinct tuples interned so far, summed over stripes. *)

val part_counts : unit -> int array
(** Per-stripe tuple counts, indexed by stripe.  Local ids
    [0 .. part_counts ().(p) - 1] are valid in stripe [p]. *)

val prime_local_cache : unit -> unit
(** Force-initialise the calling domain's intern cache (and register it
    with the contention counters).  Pool workers call this once at spawn so
    the first morsel doesn't pay the initialisation. *)

type contention = {
  stripe_locks : int;  (** Stripe lock acquisitions since process start. *)
  cache_hits : int;  (** Per-domain intern-cache hits, all domains. *)
  cache_misses : int;  (** Per-domain intern-cache misses, all domains. *)
  partition_skew : int;
      (** Max minus min stripe cardinality (0 when one stripe). *)
}

val contention : unit -> contention
(** Process-cumulative contention counters.  Reads are racy (stats only)
    but never torn. *)

type view = {
  v_counts : int array;
      (** Local ids [0 .. v_counts.(p) - 1] are readable in stripe [p]. *)
  v_data : int array array;  (** Per-stripe packed symbol ids. *)
  v_off : int array array;
      (** [v_off.(p).(i)]: offset of stripe [p]'s tuple [i] in
          [v_data.(p)]. *)
  v_len : int array array;  (** [v_len.(p).(i)]: arity of tuple [i]. *)
}
(** A published snapshot of the packed arrays: components of the tuple with
    id [x] are [v_data.(p).(v_off.(p).(l) + j)] for [p = id_part x],
    [l = id_local x], [j < v_len.(p).(l)].  Slots at or beyond
    [v_counts.(p)] must not be read.  The arrays are the store's own
    (append-only up to the published counts) — treat them as read-only. *)

val view : unit -> view
(** The current packed snapshot, lock-free.  The snapshot writer streams
    relation contents straight out of the flat arrays through this — no
    per-tuple boxing or hashing on the export path. *)
