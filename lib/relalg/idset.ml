(* Big-endian Patricia trees over non-negative integers (Okasaki & Gill,
   "Fast Mergeable Integer Maps").  The representation is canonical: two
   equal sets are structurally equal, so [equal] and [compare] need no
   normalisation, and the merge operations ([union], [inter], [diff]) run in
   O(min(|s|, |t|)) on the shared structure instead of elementwise. *)

type t =
  | Empty
  | Leaf of int
  | Branch of int * int * t * t
      (* Branch (prefix, mask, l, r): [mask] is a single bit, the highest
         bit at which members differ; [prefix] holds the common bits above
         it (bits <= mask cleared); [l] has the mask bit 0, [r] has it 1. *)

let empty = Empty

let is_empty t = t = Empty

let singleton k =
  if k < 0 then invalid_arg "Idset.singleton: negative element";
  Leaf k

let zero_bit k m = k land m = 0

(* Bits of [k] strictly above the mask bit [m]. *)
let mask k m = k land lnot ((m lsl 1) - 1)

let match_prefix k p m = mask k m = p

let rec mem k = function
  | Empty -> false
  | Leaf j -> j = k
  | Branch (p, m, l, r) ->
    match_prefix k p m && mem k (if zero_bit k m then l else r)

(* Highest set bit of [x] (x > 0). *)
let rec highest_bit x =
  let x' = x land (x - 1) in
  if x' = 0 then x else highest_bit x'

let join p0 t0 p1 t1 =
  let m = highest_bit (p0 lxor p1) in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

let add k t =
  if k < 0 then invalid_arg "Idset.add: negative element";
  let rec ins = function
    | Empty -> Leaf k
    | Leaf j as t -> if j = k then t else join k (Leaf k) j t
    | Branch (p, m, l, r) as t ->
      if match_prefix k p m then
        if zero_bit k m then
          let l' = ins l in
          if l' == l then t else Branch (p, m, l', r)
        else
          let r' = ins r in
          if r' == r then t else Branch (p, m, l, r')
      else join k (Leaf k) p t
  in
  ins t

(* Smart constructor collapsing empty sides. *)
let branch p m l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | _ -> Branch (p, m, l, r)

let remove k t =
  let rec rmv = function
    | Empty -> Empty
    | Leaf j as t -> if j = k then Empty else t
    | Branch (p, m, l, r) as t ->
      if match_prefix k p m then
        if zero_bit k m then
          let l' = rmv l in
          if l' == l then t else branch p m l' r
        else
          let r' = rmv r in
          if r' == r then t else branch p m l r'
      else t
  in
  rmv t

let rec union s t =
  match (s, t) with
  | Empty, t | t, Empty -> t
  | Leaf k, t -> add k t
  | s, Leaf k -> add k s
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
    if m = n && p = q then
      let l = union s0 t0 and r = union s1 t1 in
      if l == s0 && r == s1 then s else Branch (p, m, l, r)
    else if m > n && match_prefix q p m then
      if zero_bit q m then Branch (p, m, union s0 t, s1)
      else Branch (p, m, s0, union s1 t)
    else if m < n && match_prefix p q n then
      if zero_bit p n then Branch (q, n, union s t0, t1)
      else Branch (q, n, t0, union s t1)
    else join p s q t

let rec inter s t =
  match (s, t) with
  | Empty, _ | _, Empty -> Empty
  | Leaf k, t -> if mem k t then s else Empty
  | s, Leaf k -> if mem k s then t else Empty
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
    if m = n then
      if p = q then branch p m (inter s0 t0) (inter s1 t1) else Empty
    else if m > n then
      if match_prefix q p m then inter (if zero_bit q m then s0 else s1) t
      else Empty
    else if match_prefix p q n then
      inter s (if zero_bit p n then t0 else t1)
    else Empty

let rec diff s t =
  match (s, t) with
  | Empty, _ -> Empty
  | s, Empty -> s
  | Leaf k, t -> if mem k t then Empty else s
  | s, Leaf k -> remove k s
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
    if m = n then
      if p = q then branch p m (diff s0 t0) (diff s1 t1) else s
    else if m > n then
      if match_prefix q p m then
        if zero_bit q m then branch p m (diff s0 t) s1
        else branch p m s0 (diff s1 t)
      else s
    else if match_prefix p q n then diff s (if zero_bit p n then t0 else t1)
    else s

let rec subset s t =
  match (s, t) with
  | Empty, _ -> true
  | _, Empty -> false
  | Leaf k, t -> mem k t
  | Branch _, Leaf _ -> false
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
    if m = n then p = q && subset s0 t0 && subset s1 t1
    else if m > n then false
    else match_prefix p q n && subset s (if zero_bit p n then t0 else t1)

let rec equal s t =
  s == t
  ||
  match (s, t) with
  | Empty, Empty -> true
  | Leaf j, Leaf k -> j = k
  | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
    p = q && m = n && equal s0 t0 && equal s1 t1
  | _ -> false

(* Canonicity makes any structural order a total order consistent with
   [equal]. *)
let rec compare s t =
  if s == t then 0
  else
    match (s, t) with
    | Empty, Empty -> 0
    | Empty, _ -> -1
    | _, Empty -> 1
    | Leaf j, Leaf k -> Int.compare j k
    | Leaf _, Branch _ -> -1
    | Branch _, Leaf _ -> 1
    | Branch (p, m, s0, s1), Branch (q, n, t0, t1) ->
      let c = Int.compare p q in
      if c <> 0 then c
      else
        let c = Int.compare m n in
        if c <> 0 then c
        else
          let c = compare s0 t0 in
          if c <> 0 then c else compare s1 t1

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

(* All elements are non-negative, so the left (mask-bit-0) subtree holds the
   numerically smaller members: in-order traversal is increasing. *)
let rec iter f = function
  | Empty -> ()
  | Leaf k -> f k
  | Branch (_, _, l, r) ->
    iter f l;
    iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf k -> f k acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec for_all p = function
  | Empty -> true
  | Leaf k -> p k
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let rec exists p = function
  | Empty -> false
  | Leaf k -> p k
  | Branch (_, _, l, r) -> exists p l || exists p r

let filter p t = fold (fun k acc -> if p k then add k acc else acc) t empty

let elements t =
  let rec elts acc = function
    | Empty -> acc
    | Leaf k -> k :: acc
    | Branch (_, _, l, r) -> elts (elts acc r) l
  in
  elts [] t

let rec choose_opt = function
  | Empty -> None
  | Leaf k -> Some k
  | Branch (_, _, l, _) -> choose_opt l

let of_list ks = List.fold_left (fun t k -> add k t) empty ks

(* The representation is canonical — a pure function of the element set —
   so a strictly increasing array can be assembled directly: the branching
   bit of a range is the highest bit at which its minimum and maximum
   differ, and sortedness makes [zero_bit _ m] monotone over the range, so
   the split point is a binary search.  One branch allocation per internal
   node, instead of one copied root path per [add]. *)
let of_sorted_array a =
  let rec build lo hi =
    if hi - lo = 1 then Leaf a.(lo)
    else begin
      let m = highest_bit (a.(lo) lxor a.(hi - 1)) in
      let l = ref lo and r = ref hi in
      while !r - !l > 1 do
        let mid = (!l + !r) / 2 in
        if zero_bit a.(mid) m then l := mid else r := mid
      done;
      Branch (mask a.(lo) m, m, build lo !r, build !r hi)
    end
  in
  if Array.length a = 0 then Empty
  else begin
    if a.(0) < 0 then invalid_arg "Idset.of_sorted_array: negative element";
    build 0 (Array.length a)
  end
