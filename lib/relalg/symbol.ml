type t = int

(* The intern table is shared by every domain (the parallel engine fans rule
   applications across a pool), so mutation is serialised by [lock] and the
   read side works on immutable snapshots published through [state]: the
   [names] array is append-only — a slot is written before the count that
   covers it is published, and growth swaps in a fresh array — so a reader
   that obtained an id through any synchronising edge sees its name. *)
type state = {
  names : string array;
  count : int;
}

let state = Atomic.make { names = Array.make 1024 ""; count = 0 }

let lock = Mutex.create ()

let table : (string, int) Hashtbl.t = Hashtbl.create 1024
(* Only touched with [lock] held. *)

let intern_locked s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let st = Atomic.get state in
    let id = st.count in
    let names =
      if id < Array.length st.names then st.names
      else begin
        let bigger = Array.make (2 * Array.length st.names) "" in
        Array.blit st.names 0 bigger 0 (Array.length st.names);
        bigger
      end
    in
    names.(id) <- s;
    Hashtbl.add table s id;
    Atomic.set state { names; count = id + 1 };
    id

let intern s = Mutex.protect lock (fun () -> intern_locked s)

let of_int n = intern (string_of_int n)

let name id = (Atomic.get state).names.(id)

let export_names () =
  let st = Atomic.get state in
  Array.sub st.names 0 st.count

let to_int id = id

let unsafe_of_id id = id

let count () = (Atomic.get state).count

let compare = Int.compare

let as_int id = int_of_string_opt (name id)

let compare_value a b =
  if a = b then 0
  else
    match (as_int a, as_int b) with
    | Some x, Some y -> Int.compare x y
    | _ -> String.compare (name a) (name b)

let equal = Int.equal

let hash = Hashtbl.hash

let pp ppf id = Format.pp_print_string ppf (name id)

let fresh_counter = ref 0
(* Only touched with [lock] held. *)

let fresh prefix =
  Mutex.protect lock @@ fun () ->
  let rec try_next () =
    incr fresh_counter;
    let candidate = Printf.sprintf "%s#%d" prefix !fresh_counter in
    if Hashtbl.mem table candidate then try_next ()
    else intern_locked candidate
  in
  try_next ()
