type t = int

(* The intern table is shared by every domain (the parallel engine fans rule
   applications across a pool), so mutation is serialised by [lock] and the
   read side works on immutable snapshots published through [state]: the
   [names] array is append-only — a slot is written before the count that
   covers it is published, and growth swaps in a fresh array — so a reader
   that obtained an id through any synchronising edge sees its name.

   The string -> id direction lives in [buckets], an id-list hash table kept
   inside the published snapshot so [intern] can probe it without the lock
   (mirroring [Store.intern]'s find-first path): appending conses onto a
   bucket of the current array in place, and every entry is guarded by
   [i < st.count] against the reader's own published count, so a reader
   holding an older snapshot never dereferences a name slot it cannot see.
   The lock is taken only when the probe misses — re-interning an existing
   name, the overwhelmingly common case once a workload is warm, is
   lock-free. *)
type state = {
  names : string array;
  count : int;
  buckets : int list array;  (* Hashtbl.hash name land (capacity-1) -> ids *)
}

let state =
  Atomic.make
    { names = Array.make 1024 ""; count = 0; buckets = Array.make 1024 [] }

let lock = Mutex.create ()

let find_in st h s =
  let rec look = function
    | [] -> None
    | i :: rest ->
      if i < st.count && String.equal st.names.(i) s then Some i
      else look rest
  in
  look st.buckets.(h land (Array.length st.buckets - 1))

(* The miss path: re-probe the latest snapshot under the lock, then append
   and publish.  [h] must be [Hashtbl.hash s]. *)
let intern_locked h s =
  let st = Atomic.get state in
  match find_in st h s with
  | Some id -> id
  | None ->
    let id = st.count in
    let names =
      if id < Array.length st.names then st.names
      else begin
        let bigger = Array.make (2 * Array.length st.names) "" in
        Array.blit st.names 0 bigger 0 (Array.length st.names);
        bigger
      end
    in
    names.(id) <- s;
    let buckets =
      if id < Array.length st.buckets then st.buckets
      else begin
        (* Load factor reached 1: rehash into a fresh, twice-as-large
           array.  Older snapshots keep the superseded array, which is
           never mutated again. *)
        let cap = 2 * Array.length st.buckets in
        let b = Array.make cap [] in
        let m = cap - 1 in
        for i = 0 to id - 1 do
          let k = Hashtbl.hash names.(i) land m in
          b.(k) <- i :: b.(k)
        done;
        b
      end
    in
    let k = h land (Array.length buckets - 1) in
    buckets.(k) <- id :: buckets.(k);
    Atomic.set state { names; count = id + 1; buckets };
    id

let intern s =
  let h = Hashtbl.hash s in
  match find_in (Atomic.get state) h s with
  | Some id -> id  (* lock-free hit on the published snapshot *)
  | None -> Mutex.protect lock (fun () -> intern_locked h s)

let of_int n = intern (string_of_int n)

let name id = (Atomic.get state).names.(id)

let export_names () =
  let st = Atomic.get state in
  Array.sub st.names 0 st.count

let to_int id = id

let unsafe_of_id id = id

let count () = (Atomic.get state).count

let compare = Int.compare

let as_int id = int_of_string_opt (name id)

let compare_value a b =
  if a = b then 0
  else
    match (as_int a, as_int b) with
    | Some x, Some y -> Int.compare x y
    | _ -> String.compare (name a) (name b)

let equal = Int.equal

let hash = Hashtbl.hash

let pp ppf id = Format.pp_print_string ppf (name id)

let fresh_counter = ref 0
(* Only touched with [lock] held. *)

let fresh prefix =
  Mutex.protect lock @@ fun () ->
  let rec try_next () =
    incr fresh_counter;
    let candidate = Printf.sprintf "%s#%d" prefix !fresh_counter in
    let h = Hashtbl.hash candidate in
    if find_in (Atomic.get state) h candidate <> None then try_next ()
    else intern_locked h candidate
  in
  try_next ()
