(* Process-global counters for the parallel search layer.  Workers on other
   domains bump them concurrently, so every cell is an [Atomic.t]. *)

let max_workers = 64

let races_won = Array.init max_workers (fun _ -> Atomic.make 0)

let portfolio_runs = Atomic.make 0

let cubes_solved = Atomic.make 0

let budget_exhaustions = Atomic.make 0

let components_counted = Atomic.make 0

let reset () =
  Array.iter (fun c -> Atomic.set c 0) races_won;
  Atomic.set portfolio_runs 0;
  Atomic.set cubes_solved 0;
  Atomic.set budget_exhaustions 0;
  Atomic.set components_counted 0

let race_won worker =
  if worker >= 0 && worker < max_workers then
    Atomic.incr races_won.(worker)

let portfolio_run () = Atomic.incr portfolio_runs

let cube_solved () = Atomic.incr cubes_solved

let budget_exhausted () = Atomic.incr budget_exhaustions

let component_counted () = Atomic.incr components_counted

let snapshot () =
  let base =
    [
      ("sat portfolio runs", Atomic.get portfolio_runs);
      ("sat components counted", Atomic.get components_counted);
      ("sat cubes solved", Atomic.get cubes_solved);
      ("sat budget exhaustions", Atomic.get budget_exhaustions);
    ]
  in
  let races = ref [] in
  for w = max_workers - 1 downto 0 do
    let n = Atomic.get races_won.(w) in
    if n > 0 then
      races := (Printf.sprintf "sat races won by worker %d" w, n) :: !races
  done;
  base @ !races
