module ISet = Set.Make (Int)

exception Conflict

(* Assign literal [l] true: drop satisfied clauses, shrink the others.
   @raise Conflict when an empty clause appears. *)
let assign l clauses =
  List.filter_map
    (fun clause ->
      if List.mem l clause then None
      else
        match List.filter (fun l' -> l' <> -l) clause with
        | [] -> raise Conflict
        | smaller -> Some smaller)
    clauses

(* Exhaustive unit propagation; returns the simplified clauses and the set
   of variables that got forced. *)
let rec propagate clauses forced =
  match List.find_opt (fun c -> List.length c = 1) clauses with
  | None -> (clauses, forced)
  | Some [ l ] -> propagate (assign l clauses) (ISet.add (abs l) forced)
  | Some _ -> assert false

let clause_vars c = ISet.of_list (List.map abs c)

(* Partition clauses into connected components of the variable-sharing
   graph; returns (clauses, vars) per component. *)
let components clauses =
  let groups : (int list list * ISet.t) list ref = ref [] in
  List.iter
    (fun clause ->
      let cv = clause_vars clause in
      let touching, rest =
        List.partition
          (fun (_, vars) -> not (ISet.is_empty (ISet.inter cv vars)))
          !groups
      in
      let merged_clauses =
        clause :: List.concat_map fst touching
      in
      let merged_vars =
        List.fold_left (fun acc (_, vs) -> ISet.union acc vs) cv touching
      in
      groups := (merged_clauses, merged_vars) :: rest)
    clauses;
  !groups

let pow2 n =
  if n < 0 then invalid_arg "Count.pow2" else 1 lsl n

type partial = {
  value : int;
  exact : bool;
}

(* Budgeted DPLL count.  Exhaustion never discards completed work: a
   subtree the budget cannot afford contributes 0 (a sound lower bound)
   and flips [exact] off, while fully counted siblings — earlier branch
   sides, earlier components — keep their exact contribution.  Branch sums
   and component products combine values and AND exactness; an exact 0
   absorbs a product (the formula is unsatisfiable there no matter what
   the unexplored part would have said). *)
let count_nonempty ~budget clauses vars =
  let nodes = ref 0 in
  let exhausted = ref false in
  let rec go clauses vars =
    if !exhausted then { value = 0; exact = false }
    else begin
      incr nodes;
      if !nodes > budget then begin
        exhausted := true;
        Sat_stats.budget_exhausted ();
        { value = 0; exact = false }
      end
      else
        match propagate clauses ISet.empty with
        | exception Conflict -> { value = 0; exact = true }
        | clauses, forced ->
          let vars = ISet.diff vars forced in
          if clauses = [] then
            { value = pow2 (ISet.cardinal vars); exact = true }
          else begin
            let comps = components clauses in
            let constrained =
              List.fold_left
                (fun acc (_, vs) -> ISet.union acc vs)
                ISet.empty comps
            in
            let free = ISet.cardinal (ISet.diff vars constrained) in
            let product =
              List.fold_left
                (fun acc (cs, vs) ->
                  if acc.value = 0 then acc
                  else begin
                    (* Branch on some variable of the component. *)
                    let v = ISet.min_elt vs in
                    let vs' = ISet.remove v vs in
                    let pos =
                      match assign v cs with
                      | exception Conflict -> { value = 0; exact = true }
                      | cs' -> go cs' vs'
                    in
                    let neg =
                      match assign (-v) cs with
                      | exception Conflict -> { value = 0; exact = true }
                      | cs' -> go cs' vs'
                    in
                    {
                      value = acc.value * (pos.value + neg.value);
                      exact = acc.exact && pos.exact && neg.exact;
                    }
                  end)
                { value = 1; exact = true }
                comps
            in
            { product with value = product.value * pow2 free }
          end
    end
  in
  go clauses vars

(* An empty clause can only occur in the input — [assign] raises [Conflict]
   rather than ever producing one — so one up-front check keeps the
   recursion free of it (a clause with no variables would otherwise confuse
   the component split). *)
let count_clauses ~budget clauses vars =
  if List.mem [] clauses then { value = 0; exact = true }
  else count_nonempty ~budget clauses vars

let count_limited ~budget cnf =
  let clauses = Cnf.clauses cnf in
  let vars = ISet.of_list (List.init (Cnf.num_vars cnf) (fun i -> i + 1)) in
  match count_clauses ~budget clauses vars with
  | { value; exact = true } -> Outcome.Exact value
  | { value; exact = false } -> Outcome.Lower_bound (value, Outcome.Node_budget)

let count cnf =
  match count_limited ~budget:max_int cnf with
  | Outcome.Exact n -> n
  | Outcome.Lower_bound _ -> assert false
