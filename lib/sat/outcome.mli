(** The outcome lattice of the resource-bounded search layer.

    Every public search entry point that accepts a budget or a cancellation
    flag reports exhaustion as a structured [Unknown] instead of raising:
    [Sat]/[Unsat] are definite answers, [Unknown] records {e why} the search
    gave up.  Counting queries degrade the same way — a [Lower_bound]
    carries the partial work done before the budget ran out, never losing
    completed sub-counts. *)

type reason =
  | Conflict_budget  (** The CDCL conflict budget ran out. *)
  | Node_budget  (** The #SAT DPLL node budget ran out. *)
  | Time_budget  (** The wall-clock deadline passed. *)
  | Cancelled
      (** An external stop flag was raised — e.g. the search lost a
          portfolio race to a sibling worker. *)

type t =
  | Sat of bool array
      (** A satisfying assignment, indexed by variable ([.(0)] unused). *)
  | Unsat
  | Unknown of reason

type count =
  | Exact of int
  | Lower_bound of int * reason
      (** At least this many models; the search gave up for [reason] with
          this much completed work. *)

val reason_to_string : reason -> string

val pp_reason : Format.formatter -> reason -> unit

val pp : Format.formatter -> t -> unit

val pp_count : Format.formatter -> count -> unit

val count_value : count -> int
(** The exact count or the lower bound. *)

val is_exact : count -> bool
