(** Counters for the parallel search layer.

    Process-global and atomic: portfolio workers racing on other domains
    bump them concurrently.  The CLI surfaces a {!snapshot} through the
    [--stats] flag; the benchmark harness uses them to report races won per
    worker, components counted, cubes solved and budget exhaustions. *)

val reset : unit -> unit

val race_won : int -> unit
(** [race_won w]: portfolio worker [w] produced the winning answer. *)

val portfolio_run : unit -> unit

val cube_solved : unit -> unit

val budget_exhausted : unit -> unit

val component_counted : unit -> unit

val snapshot : unit -> (string * int) list
(** Current values as printable [(name, value)] pairs; per-worker race
    counters appear only for workers that have won at least once. *)
