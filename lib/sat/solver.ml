module Prng = Negdl_util.Prng
module Domain_pool = Negdl_util.Domain_pool

type result =
  | Sat of bool array
  | Unsat

type mode =
  [ `Sequential
  | `Portfolio of int
  ]

(* Literal encoding inside the solver: variable v (1-based) yields literals
   2v (positive) and 2v+1 (negative); negation is [lxor 1]. *)

let lit_of_dimacs l = if l > 0 then 2 * l else (2 * -l) + 1

let var_of_lit lit = lit / 2

let neg lit = lit lxor 1

type state = {
  nvars : int;
  (* Clause store: each clause is an int array of solver literals; the two
     watched literals are kept at positions 0 and 1.  The invariant that a
     reason clause keeps its implied literal at position 0 is maintained by
     [propagate]. *)
  mutable clauses : int array array;
  mutable clause_count : int;
  (* watches.(lit) lists the ids of clauses watching [lit]. *)
  watches : int list array;
  (* assign.(v) = 0 unassigned, 1 true, -1 false. *)
  assign : int array;
  level : int array;
  reason : int array;  (* clause id, or -1 for decisions and top-level units *)
  trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int list;  (* trail sizes at decision points, newest first *)
  mutable qhead : int;
  activity : float array;
  mutable var_inc : float;
  phase : bool array;
  seen : bool array;
  mutable conflicts : int;
  (* Restart bookkeeping lives in the state (not the solve loop) so a search
     can be paused and resumed without rewinding the Luby sequence. *)
  mutable restarts : int;
  mutable restart_base : int;
  (* Cancellation flag, shared between portfolio workers: the first worker
     with a definite answer raises it and the others stop at their next
     poll.  A fresh state gets a private, never-raised flag. *)
  mutable stop : bool Atomic.t;
}

exception Found_unsat

(* Raised inside the CDCL loop when a budget runs out or the stop flag is
   up; caught by [solve_state], which rewinds to level 0 so the state stays
   resumable. *)
exception Stop_search of Outcome.reason

let create_state nvars =
  {
    nvars;
    clauses = Array.make 16 [||];
    clause_count = 0;
    watches = Array.make ((2 * nvars) + 2) [];
    assign = Array.make (nvars + 1) 0;
    level = Array.make (nvars + 1) 0;
    reason = Array.make (nvars + 1) (-1);
    trail = Array.make (nvars + 1) 0;
    trail_size = 0;
    trail_lim = [];
    qhead = 0;
    activity = Array.make (nvars + 1) 0.0;
    var_inc = 1.0;
    phase = Array.make (nvars + 1) false;
    seen = Array.make (nvars + 1) false;
    conflicts = 0;
    restarts = 0;
    restart_base = 100;
    stop = Atomic.make false;
  }

let value st lit =
  let v = st.assign.(var_of_lit lit) in
  if v = 0 then 0 else if lit land 1 = 0 then v else -v

let decision_level st = List.length st.trail_lim

let enqueue st lit reason =
  let v = var_of_lit lit in
  st.assign.(v) <- (if lit land 1 = 0 then 1 else -1);
  st.level.(v) <- decision_level st;
  st.reason.(v) <- reason;
  st.phase.(v) <- lit land 1 = 0;
  st.trail.(st.trail_size) <- lit;
  st.trail_size <- st.trail_size + 1

(* Returns [false] when the clause makes the problem unsat immediately (at
   the current level, used only at level 0 or for fresh learned units). *)
let add_clause_array st (c : int array) =
  let n = Array.length c in
  if n = 0 then false
  else if n = 1 then begin
    match value st c.(0) with
    | 1 -> true
    | -1 -> false
    | _ ->
      enqueue st c.(0) (-1);
      true
  end
  else begin
    if st.clause_count = Array.length st.clauses then begin
      let bigger = Array.make (2 * Array.length st.clauses) [||] in
      Array.blit st.clauses 0 bigger 0 st.clause_count;
      st.clauses <- bigger
    end;
    let id = st.clause_count in
    st.clauses.(id) <- c;
    st.clause_count <- st.clause_count + 1;
    st.watches.(c.(0)) <- id :: st.watches.(c.(0));
    st.watches.(c.(1)) <- id :: st.watches.(c.(1));
    true
  end

(* Unit propagation with two watched literals.  Returns the id of a
   conflicting clause, or -1. *)
let propagate st =
  let conflict = ref (-1) in
  while !conflict < 0 && st.qhead < st.trail_size do
    let lit = st.trail.(st.qhead) in
    st.qhead <- st.qhead + 1;
    let false_lit = neg lit in
    let watching = st.watches.(false_lit) in
    st.watches.(false_lit) <- [];
    let rec process = function
      | [] -> ()
      | id :: rest ->
        let c = st.clauses.(id) in
        (* Ensure the false literal is at position 1. *)
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if value st c.(0) = 1 then begin
          (* Clause satisfied; keep watching the same literal. *)
          st.watches.(false_lit) <- id :: st.watches.(false_lit);
          process rest
        end
        else begin
          let n = Array.length c in
          let rec find i =
            if i = n then -1
            else if value st c.(i) <> -1 then i
            else find (i + 1)
          in
          let i = find 2 in
          if i >= 0 then begin
            (* Move the new watch into position 1. *)
            c.(1) <- c.(i);
            c.(i) <- false_lit;
            st.watches.(c.(1)) <- id :: st.watches.(c.(1));
            process rest
          end
          else begin
            (* Unit or conflicting; in both cases keep the watch. *)
            st.watches.(false_lit) <- id :: st.watches.(false_lit);
            if value st c.(0) = -1 then begin
              conflict := id;
              List.iter
                (fun id' ->
                  st.watches.(false_lit) <- id' :: st.watches.(false_lit))
                rest
            end
            else begin
              enqueue st c.(0) id;
              process rest
            end
          end
        end
    in
    process watching
  done;
  !conflict

let bump st v =
  st.activity.(v) <- st.activity.(v) +. st.var_inc;
  if st.activity.(v) > 1e100 then begin
    for u = 1 to st.nvars do
      st.activity.(u) <- st.activity.(u) *. 1e-100
    done;
    st.var_inc <- st.var_inc *. 1e-100
  end

let decay st = st.var_inc <- st.var_inc /. 0.95

(* First-UIP conflict analysis.  Returns the learned clause with the
   asserting literal first, and the backjump level. *)
let analyze st conflict_id =
  let current = decision_level st in
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let index = ref (st.trail_size - 1) in
  let confl = ref conflict_id in
  let finished = ref false in
  while not !finished do
    let c = st.clauses.(!confl) in
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length c - 1 do
      let q = c.(i) in
      let v = var_of_lit q in
      if (not st.seen.(v)) && st.level.(v) > 0 then begin
        st.seen.(v) <- true;
        bump st v;
        if st.level.(v) = current then incr counter
        else learned := q :: !learned
      end
    done;
    (* Walk the trail back to the next marked literal. *)
    while not st.seen.(var_of_lit st.trail.(!index)) do
      decr index
    done;
    p := st.trail.(!index);
    let v = var_of_lit !p in
    st.seen.(v) <- false;
    decr index;
    decr counter;
    if !counter = 0 then finished := true else confl := st.reason.(v)
  done;
  let learned_clause = neg !p :: !learned in
  List.iter (fun lit -> st.seen.(var_of_lit lit) <- false) !learned;
  let backjump =
    List.fold_left
      (fun acc lit -> max acc st.level.(var_of_lit lit))
      0 !learned
  in
  (learned_clause, backjump)

let cancel_until st target =
  let level = decision_level st in
  if level > target then begin
    let sizes = Array.of_list (List.rev st.trail_lim) in
    let keep_size = sizes.(target) in
    for i = st.trail_size - 1 downto keep_size do
      let v = var_of_lit st.trail.(i) in
      st.assign.(v) <- 0;
      st.reason.(v) <- -1
    done;
    st.trail_size <- keep_size;
    st.qhead <- keep_size;
    let rec drop n l =
      if n = 0 then l
      else
        match l with
        | [] -> []
        | _ :: t -> drop (n - 1) t
    in
    st.trail_lim <- drop (level - target) st.trail_lim
  end

let pick_branch_var st =
  let best = ref 0 in
  let best_act = ref neg_infinity in
  for v = 1 to st.nvars do
    if st.assign.(v) = 0 && st.activity.(v) > !best_act then begin
      best := v;
      best_act := st.activity.(v)
    end
  done;
  !best

(* The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let rec find k = if (1 lsl k) - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if (1 lsl k) - 1 = i then 1 lsl (k - 1)
  else luby (i - ((1 lsl (k - 1)) - 1))

(* Internal verdict of one (possibly budgeted) CDCL run.  [V_unsat] means
   unsatisfiable under the given assumptions; unconditional unsatisfiability
   still travels as [Found_unsat] so sessions can mark themselves broken. *)
type verdict =
  | V_sat of bool array
  | V_unsat
  | V_stopped of Outcome.reason

(* [assumptions] are solver literals assumed for this call only, realised
   as the first decisions (MiniSat-style).
   [conflict_limit] is an absolute ceiling on [st.conflicts];
   [deadline] an absolute [Unix.gettimeofday] instant;
   [should_stop] an external cancellation probe (polled together with the
   state's own atomic stop flag once per CDCL iteration, i.e. around every
   propagate call).
   On [V_stopped] the trail is rewound to level 0 but conflicts, restarts,
   learned clauses, phases and activities survive, so calling again simply
   resumes the search.
   May raise [Found_unsat] when the formula itself (independent of the
   assumptions) is contradicted at level 0; callers decide how to record
   that. *)
let solve_state ?(assumptions = [||]) ?(conflict_limit = max_int)
    ?(deadline = infinity) ?(should_stop = fun () -> false) st =
  let check_budgets () =
    if Atomic.get st.stop || should_stop () then
      raise (Stop_search Outcome.Cancelled);
    if st.conflicts >= conflict_limit then
      raise (Stop_search Outcome.Conflict_budget);
    if deadline < infinity && Unix.gettimeofday () >= deadline then
      raise (Stop_search Outcome.Time_budget)
  in
  try
    check_budgets ();
    if propagate st >= 0 then raise Found_unsat;
    let result = ref None in
    while !result = None do
      st.restarts <- st.restarts + 1;
      let limit = st.restart_base * luby st.restarts in
      let conflicts_here = ref 0 in
      let restart = ref false in
      while (not !restart) && !result = None do
        check_budgets ();
        let conflict = propagate st in
        if conflict >= 0 then begin
          st.conflicts <- st.conflicts + 1;
          incr conflicts_here;
          if decision_level st = 0 then raise Found_unsat;
          let learned, backjump = analyze st conflict in
          cancel_until st backjump;
          let c = Array.of_list learned in
          if Array.length c > 1 then begin
            (* Watch the asserting literal and a literal of the backjump
               level, so the clause wakes up correctly. *)
            let pos = ref 1 in
            for i = 1 to Array.length c - 1 do
              if
                st.level.(var_of_lit c.(i))
                > st.level.(var_of_lit c.(!pos))
              then pos := i
            done;
            let tmp = c.(1) in
            c.(1) <- c.(!pos);
            c.(!pos) <- tmp;
            if not (add_clause_array st c) then raise Found_unsat;
            enqueue st c.(0) (st.clause_count - 1)
          end
          else if not (add_clause_array st c) then raise Found_unsat;
          decay st
        end
        else if !conflicts_here >= limit then begin
          cancel_until st 0;
          restart := true
        end
        else begin
          let dl = decision_level st in
          if dl < Array.length assumptions then begin
            (* Assume the next assumption literal as a decision. *)
            let lit = assumptions.(dl) in
            match value st lit with
            | 1 ->
              (* Already true: open an empty level so indices advance. *)
              st.trail_lim <- st.trail_size :: st.trail_lim
            | -1 ->
              (* Incompatible with the formula (plus earlier assumptions). *)
              result := Some V_unsat
            | _ ->
              st.trail_lim <- st.trail_size :: st.trail_lim;
              enqueue st lit (-1)
          end
          else begin
            let v = pick_branch_var st in
            if v = 0 then begin
              let model = Array.make (st.nvars + 1) false in
              for u = 1 to st.nvars do
                model.(u) <- st.assign.(u) = 1
              done;
              result := Some (V_sat model)
            end
            else begin
              st.trail_lim <- st.trail_size :: st.trail_lim;
              let lit = if st.phase.(v) then 2 * v else (2 * v) + 1 in
              enqueue st lit (-1)
            end
          end
        end
      done
    done;
    (match !result with
    | Some r -> r
    | None -> assert false)
  with Stop_search reason ->
    cancel_until st 0;
    V_stopped reason

let load cnf extra_units =
  let st = create_state (Cnf.num_vars cnf) in
  let ok = ref true in
  let add c =
    if !ok && not (add_clause_array st (Array.of_list (List.map lit_of_dimacs c)))
    then ok := false
  in
  List.iter add (Cnf.clauses cnf);
  List.iter (fun l -> add [ l ]) extra_units;
  (st, !ok)

(* --- portfolio diversification ------------------------------------------- *)

(* Worker 0 always runs the stock configuration, so a portfolio answers no
   later than the sequential solver would (modulo scheduling).  The other
   workers diversify along the classic axes: initial phase, activity noise
   (i.e. branching order) and restart cadence, all seeded deterministically
   from the worker index via the splittable PRNG. *)
type profile = {
  seed : int;
  restart_base : int;
  phase_init : [ `Default | `Inverted | `Random ];
  activity_noise : bool;
}

let profile_for_worker = function
  | 0 -> { seed = 0; restart_base = 100; phase_init = `Default; activity_noise = false }
  | 1 -> { seed = 1; restart_base = 100; phase_init = `Inverted; activity_noise = false }
  | 2 -> { seed = 2; restart_base = 40; phase_init = `Random; activity_noise = true }
  | 3 -> { seed = 3; restart_base = 300; phase_init = `Random; activity_noise = true }
  | w ->
    let bases = [| 25; 60; 150; 400; 800 |] in
    { seed = (101 * w) + 7;
      restart_base = bases.(w mod Array.length bases);
      phase_init = `Random;
      activity_noise = true }

let apply_profile (st : state) (p : profile) =
  st.restart_base <- p.restart_base;
  let rng = Prng.create (0x5eed + (0x9e3779b9 * p.seed)) in
  (match p.phase_init with
  | `Default -> ()
  | `Inverted ->
    for v = 1 to st.nvars do
      st.phase.(v) <- true
    done
  | `Random ->
    for v = 1 to st.nvars do
      st.phase.(v) <- Prng.bool rng
    done);
  if p.activity_noise then
    for v = 1 to st.nvars do
      st.activity.(v) <- Prng.float rng *. 0.5
    done

(* --- top-level solving ---------------------------------------------------- *)

let run_to_outcome ?(conflict_limit = max_int) ?(deadline = infinity)
    ?(should_stop = fun () -> false) st =
  try
    match solve_state ~conflict_limit ~deadline ~should_stop st with
    | V_sat m -> Outcome.Sat m
    | V_unsat -> Outcome.Unsat
    | V_stopped r -> Outcome.Unknown r
  with Found_unsat -> Outcome.Unsat

let sequential_outcome ~conflict_budget ~deadline ~should_stop cnf =
  let st, ok = load cnf [] in
  if not ok then Outcome.Unsat
  else run_to_outcome ~conflict_limit:conflict_budget ~deadline ~should_stop st

(* How many conflicts a worker runs before yielding to its siblings when the
   portfolio is interleaved on one core. *)
let interleave_slice = 2000

let portfolio_outcome ~n ~conflict_budget ~deadline ~should_stop cnf =
  Sat_stats.portfolio_run ();
  let shared_stop = Atomic.make false in
  let states =
    Array.init n (fun w ->
        let st, ok = load cnf [] in
        if not ok then None
        else begin
          apply_profile st (profile_for_worker w);
          st.stop <- shared_stop;
          Some st
        end)
  in
  if Array.exists (fun s -> s = None) states then Outcome.Unsat
  else begin
    let states =
      Array.map (function Some s -> s | None -> assert false) states
    in
    let budget_limit st =
      if conflict_budget = max_int then max_int
      else st.conflicts + conflict_budget
    in
    let pool = Domain_pool.default () in
    if Domain_pool.size pool >= 1 then begin
      (* Real race: one domain per worker, first definite answer raises the
         shared stop flag and the others give up at their next poll. *)
      let decided = Atomic.make None in
      let worker w st () =
        let outcome =
          run_to_outcome ~conflict_limit:(budget_limit st) ~deadline
            ~should_stop st
        in
        (match outcome with
        | Outcome.Sat _ | Outcome.Unsat ->
          if Atomic.compare_and_set decided None (Some (w, outcome)) then
            Atomic.set shared_stop true
        | Outcome.Unknown _ -> ());
        outcome
      in
      let results =
        Domain_pool.run pool
          (Array.to_list (Array.mapi worker states))
      in
      match Atomic.get decided with
      | Some (w, answer) ->
        Sat_stats.race_won w;
        answer
      | None -> (
        (* Nobody was decisive: every worker stopped on a budget or the
           caller's flag.  Report the first worker's reason. *)
        match results with
        | first :: _ -> first
        | [] -> assert false)
    end
    else begin
      (* Single core: deterministic round-robin interleave.  Diversification
         still pays off on heavy-tailed instances — the first worker whose
         configuration gets lucky finishes the race for everyone. *)
      let limits = Array.map budget_limit states in
      let exhausted = Array.make n false in
      let decided = ref None in
      let stopped = ref None in
      let progress = ref true in
      while !decided = None && !stopped = None && !progress do
        progress := false;
        for w = 0 to n - 1 do
          if !decided = None && !stopped = None && not exhausted.(w) then begin
            let st = states.(w) in
            let slice_limit = min limits.(w) (st.conflicts + interleave_slice) in
            match
              run_to_outcome ~conflict_limit:slice_limit ~deadline
                ~should_stop st
            with
            | (Outcome.Sat _ | Outcome.Unsat) as answer ->
              decided := Some (w, answer)
            | Outcome.Unknown Outcome.Conflict_budget ->
              if st.conflicts >= limits.(w) then exhausted.(w) <- true
              else progress := true
            | Outcome.Unknown r -> stopped := Some r
          end
        done
      done;
      match !decided with
      | Some (w, answer) ->
        Sat_stats.race_won w;
        answer
      | None -> (
        match !stopped with
        | Some r -> Outcome.Unknown r
        | None -> Outcome.Unknown Outcome.Conflict_budget)
    end
  end

(* A short bounded CDCL run whose only purpose is to heat up the VSIDS
   activities; the cube-and-conquer splitter branches on the hottest
   variables.  Sequential and deterministic. *)
let probe_activity_order ?(conflicts = 200) cnf =
  let st, ok = load cnf [] in
  if not ok then []
  else begin
    (try ignore (solve_state ~conflict_limit:conflicts st)
     with Found_unsat -> ());
    let vars = List.init st.nvars (fun i -> i + 1) in
    List.stable_sort
      (fun a b -> compare st.activity.(b) st.activity.(a))
      vars
  end

let default_par = Atomic.make 1

let set_default_parallelism n = Atomic.set default_par (max 1 n)

let default_parallelism () = Atomic.get default_par

let default_mode () : mode =
  let n = default_parallelism () in
  if n >= 2 then `Portfolio n else `Sequential

let solve_outcome ?mode ?(conflict_budget = max_int) ?(time_budget = infinity)
    ?stop cnf =
  let mode = match mode with Some m -> m | None -> default_mode () in
  let deadline =
    if time_budget = infinity then infinity
    else Unix.gettimeofday () +. time_budget
  in
  let should_stop =
    match stop with
    | Some flag -> fun () -> Atomic.get flag
    | None -> fun () -> false
  in
  let outcome =
    match mode with
    | `Sequential ->
      sequential_outcome ~conflict_budget ~deadline ~should_stop cnf
    | `Portfolio n when n <= 1 ->
      sequential_outcome ~conflict_budget ~deadline ~should_stop cnf
    | `Portfolio n ->
      let n = min n 64 in
      portfolio_outcome ~n ~conflict_budget ~deadline ~should_stop cnf
  in
  (match outcome with
  | Outcome.Unknown (Outcome.Conflict_budget | Outcome.Time_budget | Outcome.Node_budget) ->
    Sat_stats.budget_exhausted ()
  | _ -> ());
  outcome

let solve ?mode cnf =
  match solve_outcome ?mode cnf with
  | Outcome.Sat m -> Sat m
  | Outcome.Unsat -> Unsat
  | Outcome.Unknown _ ->
    (* Unreachable: no budget and no stop flag were given. *)
    assert false

let solve_with_units cnf units =
  let st, ok = load cnf units in
  if not ok then Unsat
  else
    try
      match solve_state st with
      | V_sat m -> Sat m
      | V_unsat | V_stopped _ -> assert false
    with Found_unsat -> Unsat

let is_satisfiable ?mode cnf =
  match solve ?mode cnf with
  | Sat _ -> true
  | Unsat -> false

let model_checks r cnf =
  match r with
  | Unsat -> true
  | Sat model -> Cnf.eval cnf (fun v -> model.(v))

(* --- incremental sessions ------------------------------------------------ *)

type session = {
  state : state;
  mutable broken : bool;  (* formula unsatisfiable outright *)
}

let session cnf =
  let st, ok = load cnf [] in
  { state = st; broken = not ok }

let check_session_literal s l =
  let v = abs l in
  if l = 0 || v > s.state.nvars then
    invalid_arg
      (Printf.sprintf "Solver: literal %d out of range 1..%d" l s.state.nvars)

let solve_assuming_outcome ?(conflict_budget = max_int)
    ?(time_budget = infinity) s assumptions =
  List.iter (check_session_literal s) assumptions;
  if s.broken then Outcome.Unsat
  else begin
    cancel_until s.state 0;
    let conflict_limit =
      if conflict_budget = max_int then max_int
      else s.state.conflicts + conflict_budget
    in
    let deadline =
      if time_budget = infinity then infinity
      else Unix.gettimeofday () +. time_budget
    in
    let assumptions =
      Array.of_list (List.map lit_of_dimacs assumptions)
    in
    let result =
      try
        match solve_state ~assumptions ~conflict_limit ~deadline s.state with
        | V_sat m -> Outcome.Sat m
        | V_unsat -> Outcome.Unsat
        | V_stopped r -> Outcome.Unknown r
      with Found_unsat ->
        s.broken <- true;
        Outcome.Unsat
    in
    cancel_until s.state 0;
    (match result with
    | Outcome.Unknown (Outcome.Conflict_budget | Outcome.Time_budget) ->
      Sat_stats.budget_exhausted ()
    | _ -> ());
    result
  end

let solve_assuming s assumptions =
  match solve_assuming_outcome s assumptions with
  | Outcome.Sat m -> Sat m
  | Outcome.Unsat -> Unsat
  | Outcome.Unknown _ ->
    (* Unreachable: no budget was given. *)
    assert false

let add_clause s lits =
  List.iter (check_session_literal s) lits;
  if not s.broken then begin
    cancel_until s.state 0;
    let st = s.state in
    let solver_lits = List.map lit_of_dimacs lits in
    (* Level-0 values are permanent: a true literal satisfies the clause
       forever, false literals can be dropped.  What remains must carry the
       watches, because level-0 propagation has already passed. *)
    if not (List.exists (fun l -> value st l = 1) solver_lits) then begin
      let unassigned = List.filter (fun l -> value st l = 0) solver_lits in
      match unassigned with
      | [] -> s.broken <- true
      | [ unit_lit ] ->
        if not (add_clause_array st [| unit_lit |]) then s.broken <- true
        else if propagate st >= 0 then s.broken <- true
      | lits ->
        (* Keep the falsified literals too (harmless), but watch two
           unassigned ones. *)
        let falsified =
          List.filter (fun l -> value st l = -1) solver_lits
        in
        if not (add_clause_array st (Array.of_list (lits @ falsified))) then
          s.broken <- true
    end
  end
