let pp ppf cnf =
  Format.fprintf ppf "p cnf %d %d@." (Cnf.num_vars cnf) (Cnf.num_clauses cnf);
  List.iter
    (fun c ->
      List.iter (fun l -> Format.fprintf ppf "%d " l) c;
      Format.fprintf ppf "0@.")
    (Cnf.clauses cnf)

let to_string cnf = Format.asprintf "%a" pp cnf

let parse text =
  let tokenize line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> String.trim t <> "")
  in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun line ->
           let t = String.trim line in
           t <> "" && t.[0] <> 'c')
  in
  (* The header is line-scoped: a truncated [p cnf] must not swallow the
     first clause's literals as its counts. *)
  match lines with
  | [] -> Error "missing 'p cnf' header"
  | header :: body -> (
  match tokenize header with
  | "p" :: "cnf" :: nv :: nc :: header_rest -> (
    let rest = header_rest @ List.concat_map tokenize body in
    match (int_of_string_opt nv, int_of_string_opt nc) with
    | None, _ -> Error (Printf.sprintf "bad variable count %S" nv)
    | _, None -> Error (Printf.sprintf "bad clause count %S" nc)
    | Some n, _ when n < 0 ->
      Error (Printf.sprintf "negative variable count %d" n)
    | _, Some c when c < 0 -> Error (Printf.sprintf "negative clause count %d" c)
    | Some n, Some declared -> (
      let rec clauses acc current = function
        | [] ->
          if current = [] then Ok (List.rev acc)
          else Error "unterminated clause (missing 0)"
        | tok :: rest -> (
          match int_of_string_opt tok with
          | None -> Error (Printf.sprintf "bad literal %S" tok)
          | Some 0 -> clauses (List.rev current :: acc) [] rest
          | Some l when abs l > n ->
            Error
              (Printf.sprintf
                 "literal %d out of range (header declares %d variables)" l n)
          | Some l -> clauses acc (l :: current) rest)
      in
      match clauses [] [] rest with
      | Error _ as e -> e
      | Ok cs ->
        (* Compare against the raw parsed clauses: [Cnf.of_list] may drop
           tautologies, which must not count as a mismatch. *)
        let found = List.length cs in
        if found <> declared then
          Error
            (Printf.sprintf "header declares %d clauses but %d found"
               declared found)
        else (
          try Ok (Cnf.of_list n cs) with Invalid_argument msg -> Error msg)))
  | "p" :: "cnf" :: _ -> Error "truncated 'p cnf' header"
  | _ -> Error "missing 'p cnf' header")

let parse_exn text =
  match parse text with
  | Ok cnf -> cnf
  | Error msg -> failwith ("Dimacs.parse: " ^ msg)
