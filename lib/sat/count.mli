(** Exact model counting (#SAT).

    A DPLL-style counter with unit propagation, connected-component
    decomposition (disjoint variable sets multiply) and free-variable
    accounting.  Exponential in the worst case, but the component split
    makes structured instances cheap — the paper's G{_n} census is the
    poster child: the fixpoint encoding of pi_1 on k disjoint cycles falls
    apart into k independent components, so counting its 2{^ k} fixpoints
    costs O(k) component counts instead of 2{^ k} enumeration calls.

    Every total model of the fixpoint encoding is determined by its atom
    variables (the instance auxiliaries are biconditionally defined), so
    the unprojected count below {e is} the fixpoint count — the fact
    [Fixpointlib.Solve.count_exact] relies on.

    Budgets degrade gracefully: when the node budget runs out the counter
    keeps every completed sub-count and reports the total as a lower
    bound, never raising. *)

module ISet : Set.S with type elt = int

exception Conflict

val assign : int -> int list list -> int list list
(** [assign l clauses] simplifies under literal [l] made true: satisfied
    clauses are dropped, [-l] is removed from the rest.
    @raise Conflict when a clause becomes empty.  Used by the
    cube-and-conquer splitter in [Fixpointlib.Solve]. *)

val components : int list list -> (int list list * ISet.t) list
(** Partition clauses into connected components of the variable-sharing
    graph; each component comes with the set of variables it constrains. *)

type partial = {
  value : int;
  exact : bool;  (** [false]: the budget ran out and [value] is only a
                     sound lower bound. *)
}

val count_clauses : budget:int -> int list list -> ISet.t -> partial
(** Count the models of [clauses] over the variable set [vars] (variables
    in [vars] untouched by any clause contribute a factor of 2), spending
    at most [budget] DPLL nodes.  Completed branch sides and components
    keep their exact contribution when the budget runs out mid-search. *)

val count : Cnf.t -> int
(** The number of satisfying assignments over all [num_vars] variables.
    Variables not constrained by any clause contribute a factor of 2. *)

val count_limited : budget:int -> Cnf.t -> Outcome.count
(** Like {!count}, but bounded by [budget] DPLL branching nodes: either
    [Exact n], or [Lower_bound (n, Node_budget)] carrying the partial work
    completed before the budget ran out. *)
