(** A CDCL SAT solver with a parallel portfolio mode.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP conflict analysis, VSIDS-style activities, phase saving and
    Luby restarts.  This is the engine behind [Fixpointlib]: deciding
    whether a DATALOG-not program has a fixpoint on a database is
    NP-complete (Theorem 1), so a SAT solver is the natural — and the
    honest — implementation vehicle.

    The portfolio mode runs N diversified copies of the solver (seeded
    phases, activity noise and restart cadences; worker 0 always keeps the
    stock configuration) racing on the shared {!Negdl_util.Domain_pool}.
    The first definite answer wins and cancels the losers through a shared
    atomic stop flag polled in the search loop.  On a single-core host the
    workers are interleaved deterministically in round-robin slices instead
    — diversification still wins on heavy-tailed instances.  Parallelism
    never changes an answer, only how fast it arrives (and where a budget
    turns into [Unknown]). *)

type result =
  | Sat of bool array
      (** A satisfying assignment, indexed by variable ([.(0)] unused). *)
  | Unsat

type mode =
  [ `Sequential  (** One stock CDCL run. *)
  | `Portfolio of int
    (** [n] diversified workers racing; [`Portfolio 1] is [`Sequential]. *)
  ]

val set_default_parallelism : int -> unit
(** Sets the process-wide parallelism degree used when no explicit [~mode]
    is given ([--sat-par] plugs in here).  [1] means sequential. *)

val default_parallelism : unit -> int

val default_mode : unit -> mode
(** [`Portfolio n] when the default parallelism is [n >= 2], else
    [`Sequential]. *)

val solve : ?mode:mode -> Cnf.t -> result
(** Complete search: always returns a definite answer. *)

val solve_outcome :
  ?mode:mode ->
  ?conflict_budget:int ->
  ?time_budget:float ->
  ?stop:bool Atomic.t ->
  Cnf.t ->
  Outcome.t
(** Resource-bounded search.  [conflict_budget] caps the number of
    conflicts ({e per worker} in portfolio mode), [time_budget] is a
    wall-clock allowance in seconds, [stop] an external cancellation flag.
    Exhaustion or cancellation yields a structured [Unknown] — this entry
    point never raises on resource limits. *)

val probe_activity_order : ?conflicts:int -> Cnf.t -> int list
(** All variables sorted by decreasing VSIDS activity after a short probe
    run of at most [conflicts] conflicts (default 200).  Deterministic; the
    cube-and-conquer splitter in [Fixpointlib.Solve] branches on the top of
    this order. *)

val solve_with_units : Cnf.t -> int list -> result
(** [solve_with_units cnf units] solves [cnf] with the extra unit clauses
    [units] (a cheap form of assumptions). *)

val is_satisfiable : ?mode:mode -> Cnf.t -> bool

val model_checks : result -> Cnf.t -> bool
(** [model_checks r cnf] is true when [r] is [Unsat] or when the model
    satisfies every clause of [cnf]; used by the tests as a self-check. *)

(** {1 Incremental sessions}

    A session loads the CNF once and answers many queries under varying
    {e assumptions} (literals forced for one call only, realised as the
    first decisions, as in MiniSat).  Clauses learned during one call are
    implied by the formula alone, so they persist and accelerate later
    calls — this is what makes the fixpoint searcher's
    one-SAT-call-per-atom algorithms (Theorem 3's intersection, model
    enumeration) affordable.  Sessions are sequential: the portfolio pays
    off for one-shot races, not for many cheap incremental calls. *)

type session

val session : Cnf.t -> session

val solve_assuming : session -> int list -> result
(** Solve under the given assumption literals (DIMACS convention).  [Unsat]
    means unsatisfiable {e under these assumptions}. *)

val solve_assuming_outcome :
  ?conflict_budget:int ->
  ?time_budget:float ->
  session ->
  int list ->
  Outcome.t
(** Budgeted variant of {!solve_assuming}.  [conflict_budget] counts
    conflicts {e of this call} (the session's lifetime total is irrelevant).
    After an [Unknown] the session remains usable: learned clauses are kept
    and the next call resumes the search. *)

val add_clause : session -> int list -> unit
(** Permanently adds a clause (e.g. a blocking clause during model
    enumeration).
    @raise Invalid_argument on a literal out of range. *)
