(** DIMACS CNF reading and writing.

    The interchange format used by SAT solvers; provided so the CLI can load
    external instances and so instances generated here can be checked with
    third-party tools. *)

val to_string : Cnf.t -> string

val pp : Format.formatter -> Cnf.t -> unit

val parse : string -> (Cnf.t, string) result
(** Accepts comment lines [c ...], the header [p cnf <vars> <clauses>] and
    zero-terminated clauses, possibly spanning lines.  The instance is
    validated against its header: every literal must name a variable in
    [1..vars] and the number of clauses found must equal the declared
    count; violations produce a precise [Error]. *)

val parse_exn : string -> Cnf.t
(** @raise Failure on malformed input. *)
