type reason =
  | Conflict_budget
  | Node_budget
  | Time_budget
  | Cancelled

type t =
  | Sat of bool array
  | Unsat
  | Unknown of reason

type count =
  | Exact of int
  | Lower_bound of int * reason

let reason_to_string = function
  | Conflict_budget -> "conflict budget exhausted"
  | Node_budget -> "node budget exhausted"
  | Time_budget -> "time budget exhausted"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_to_string r)

let pp ppf = function
  | Sat _ -> Format.pp_print_string ppf "sat"
  | Unsat -> Format.pp_print_string ppf "unsat"
  | Unknown r -> Format.fprintf ppf "unknown (%a)" pp_reason r

let pp_count ppf = function
  | Exact n -> Format.pp_print_int ppf n
  | Lower_bound (n, r) -> Format.fprintf ppf ">= %d (%a)" n pp_reason r

let count_value = function
  | Exact n -> n
  | Lower_bound (n, _) -> n

let is_exact = function
  | Exact _ -> true
  | Lower_bound _ -> false
