(** Negation by fixpoint — the public API.

    An executable reproduction of Kolaitis & Papadimitriou, "Why Not
    Negation by Fixpoint?" (PODS 1988 / JCSS 43, 1991): a DATALOG-not
    engine with the paper's full semantics zoo (least fixpoint, inflationary,
    stratified, well-founded), a fixpoint searcher implementing the
    Section 3 decision problems on top of a built-in CDCL SAT solver, and
    the paper's reductions as program generators.

    This module re-exports the underlying libraries under one namespace and
    adds the high-level entry points most callers want.  The components:

    - {!Symbol}, {!Tuple}, {!Relation}, {!Schema}, {!Database}: finite
      relational structures;
    - {!Ast}, {!Parser}, {!Pretty}, {!Dsl}, {!Check}, {!Depgraph},
      {!Stratify}: the DATALOG-not language;
    - {!Idb}, {!Theta}, {!Naive}, {!Inflationary}, {!Stratified},
      {!Wellfounded}, {!Ground}, {!Saturate}, {!Engine}: evaluation;
    - {!Fixpoints} (= [Fixpointlib.Solve]), {!Fixpoints_brute}: the
      fixpoint query suite;
    - {!Sat_db}, {!Fagin}, {!Coloring3}, {!Succinct3col}, {!Distance},
      {!Prop1}, {!Toggle}: the paper's constructions;
    - {!Fo}, {!Nnf}, {!Eso}, {!Ifp}: the logic side;
    - {!Digraph}, {!Generate}, {!Traverse}, {!Scc}, {!Graph_coloring},
      {!Hamilton}: graphs;
    - {!Cnf}, {!Sat_solver}, {!Sat_brute}, {!Sat_enumerate}, {!Dimacs},
      {!Sat_workload}: propositional logic;
    - {!Circuit}, {!Circuit_build}, {!Tseitin}, {!Succinct}: circuits. *)

(** {1 Relational substrate} *)

module Symbol = Relalg.Symbol
module Tuple = Relalg.Tuple
module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Database = Relalg.Database

(** {1 Language} *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Pretty = Datalog.Pretty
module Dsl = Datalog.Dsl
module Check = Datalog.Check
module Depgraph = Datalog.Depgraph
module Stratify = Datalog.Stratify
module Magic = Datalog.Magic
module Transform = Datalog.Transform

(** {1 Evaluation} *)

module Idb = Evallib.Idb
module Engine = Evallib.Engine
module Theta = Evallib.Theta
module Saturate = Evallib.Saturate
module Naive = Evallib.Naive
module Inflationary = Evallib.Inflationary
module Stratified = Evallib.Stratified
module Wellfounded = Evallib.Wellfounded
module Fitting = Evallib.Fitting
module Unfounded = Evallib.Unfounded
module Ground = Evallib.Ground
module Query = Evallib.Query
module Provenance = Evallib.Provenance
module Dred = Evallib.Dred
module Serve = Evallib.Serve
module Equiv = Evallib.Equiv

(** {1 Fixpoint queries} *)

module Fixpoints = Fixpointlib.Solve
module Fixpoints_brute = Fixpointlib.Brute
module Fixpoint_encode = Fixpointlib.Encode
module Stable = Fixpointlib.Stable

(** {1 The paper's constructions} *)

module Sat_db = Reductions.Sat_db
module Fagin = Reductions.Fagin
module Coloring3 = Reductions.Coloring
module Succinct3col = Reductions.Succinct3col
module Distance = Reductions.Distance
module Prop1 = Reductions.Prop1
module Toggle = Reductions.Toggle
module Fixpoint_formula = Reductions.Fixpoint_formula
module Expressiveness = Reductions.Expressiveness
module Classics = Reductions.Classics

(** {1 Logic} *)

module Fo = Folog.Fo
module Nnf = Folog.Nnf
module Eso = Folog.Eso
module Ifp = Folog.Ifp

(** {1 Graphs} *)

module Digraph = Graphlib.Digraph
module Generate = Graphlib.Generate
module Traverse = Graphlib.Traverse
module Scc = Graphlib.Scc
module Graph_coloring = Graphlib.Coloring
module Hamilton = Graphlib.Hamilton
module Kernel = Graphlib.Kernel

(** {1 Propositional logic} *)

module Cnf = Satlib.Cnf
module Sat_solver = Satlib.Solver
module Sat_brute = Satlib.Brute
module Sat_enumerate = Satlib.Enumerate
module Dimacs = Satlib.Dimacs
module Sat_workload = Satlib.Workload
module Sat_count = Satlib.Count
module Sat_outcome = Satlib.Outcome
module Sat_stats = Satlib.Sat_stats

(** {1 Circuits} *)

module Circuit = Circuitlib.Circuit
module Circuit_build = Circuitlib.Build
module Tseitin = Circuitlib.Tseitin
module Succinct = Circuitlib.Succinct

(** {1 Utilities} *)

module Plan = Planlib.Plan
module Plan_cache = Planlib.Cache
module Snapshot = Snapshotlib.Snapshot
module Prng = Negdl_util.Prng
module Domain_pool = Negdl_util.Domain_pool
module Stats = Evallib.Stats

(** {1 High-level entry points} *)

type semantics =
  | Semantics_inflationary
      (** Section 4's proposal: total, PTIME, default. *)
  | Semantics_stratified  (** Chandra-Harel; partial. *)
  | Semantics_well_founded
      (** Three-valued; the result reports the true facts and, when the
          model is partial, the unknown ones as a second valuation. *)
  | Semantics_kripke_kleene
      (** Fitting's three-valued least fixpoint; at most as decided as the
          well-founded model. *)
  | Semantics_least_fixpoint
      (** Positive DATALOG only. *)

val semantics_of_string : string -> (semantics, string) result
(** Accepts "inflationary", "stratified", "well-founded" / "wellfounded",
    "kripke-kleene" / "kk" / "fitting", "least" / "lfp". *)

val semantics_to_string : semantics -> string

type run_result = {
  facts : Idb.t;  (** The derived relations (true facts). *)
  unknown : Idb.t option;
      (** Under the well-founded semantics, the undetermined facts (when
          any); [None] for the two-valued semantics. *)
}

val run :
  ?engine:Saturate.engine ->
  ?planner:Plan.planner ->
  ?plan_cache:Plan_cache.t ->
  ?indexing:Engine.indexing ->
  ?storage:Relation.storage ->
  ?stats:Stats.t ->
  semantics ->
  Ast.program ->
  Database.t ->
  (run_result, string) result
(** Evaluates a program under the chosen semantics; errors are returned as
    human-readable strings (not stratifiable, negation under least-fixpoint
    semantics, inconsistent arities, ...).  Programs with limit
    declarations are only defined under [Semantics_stratified] (the
    tighten-union fixpoint); every other semantics returns an error for
    them.  [engine] selects the saturation
    strategy ([`Seminaive] default, [`Naive], or [`Parallel] which fans the
    rule applications of each iteration across domains); [indexing] selects
    the column-index strategy (see {!Engine.indexing}); [storage] selects
    the relation backend the derived relations are built in (see
    {!Relation.storage}; the global default is set with
    {!Relation.set_default_storage}); [planner] selects the join-order
    planning policy ({!Plan.planner}: [`Static] compile-once plans by
    default, [`Greedy] per-application replanning, [`Scan] textual order);
    [plan_cache], when given, retains the compiled plans — the CLI's
    [--explain] prints them back with estimated and actual cardinalities;
    [stats], when given, accumulates evaluation counters and stage timings
    (the Kripke-Kleene semantics only records plan counters through its
    grounding). *)

type fixpoint_report = {
  ground_atoms : int;
  ground_rules : int;
  has_fixpoint : bool;
      (** Meaningful only when [existence_unknown] is [None]. *)
  existence_unknown : Satlib.Outcome.reason option;
      (** [Some r] when the existence SAT search ran out of its budget
          before deciding; the census, uniqueness and least-fixpoint
          fields are then skipped. *)
  fixpoint_count : int option;  (** Counted up to [count_limit]. *)
  exact_count : Satlib.Outcome.count option;
      (** #SAT census (requested via [count_budget]); a [Lower_bound] when
          the node budget ran out. *)
  count_limit : int;
  unique : bool;
  least : Idb.t option;
  example : Idb.t option;
}

val analyze_fixpoints :
  ?planner:Plan.planner ->
  ?plan_cache:Plan_cache.t ->
  ?count_limit:int ->
  ?sat_budget:int ->
  ?count_budget:int ->
  Ast.program ->
  Database.t ->
  fixpoint_report
(** Runs the whole Section 3 query suite on (pi, D) via the SAT encoding.
    [count_limit] (default 256) caps the census.  [sat_budget] bounds the
    existence search in CDCL conflicts (unbounded by default); exhaustion
    is reported through [existence_unknown], never raised.  [count_budget]
    additionally runs the exact #SAT census with that node budget and
    fills [exact_count].  SAT parallelism follows
    {!Sat_solver.set_default_parallelism}. *)

val parse_program : string -> (Ast.program, string) result
(** Alias of {!Parser.parse_program}. *)

val parse_database : string -> (Database.t, string) result
(** Alias of {!Database.parse}. *)

val version : string
