module Symbol = Relalg.Symbol
module Tuple = Relalg.Tuple
module Relation = Relalg.Relation
module Schema = Relalg.Schema
module Database = Relalg.Database
module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Pretty = Datalog.Pretty
module Dsl = Datalog.Dsl
module Check = Datalog.Check
module Depgraph = Datalog.Depgraph
module Stratify = Datalog.Stratify
module Magic = Datalog.Magic
module Transform = Datalog.Transform
module Idb = Evallib.Idb
module Engine = Evallib.Engine
module Theta = Evallib.Theta
module Saturate = Evallib.Saturate
module Naive = Evallib.Naive
module Inflationary = Evallib.Inflationary
module Stratified = Evallib.Stratified
module Wellfounded = Evallib.Wellfounded
module Fitting = Evallib.Fitting
module Unfounded = Evallib.Unfounded
module Ground = Evallib.Ground
module Query = Evallib.Query
module Provenance = Evallib.Provenance
module Dred = Evallib.Dred
module Serve = Evallib.Serve
module Equiv = Evallib.Equiv
module Fixpoints = Fixpointlib.Solve
module Fixpoints_brute = Fixpointlib.Brute
module Fixpoint_encode = Fixpointlib.Encode
module Stable = Fixpointlib.Stable
module Sat_db = Reductions.Sat_db
module Fagin = Reductions.Fagin
module Coloring3 = Reductions.Coloring
module Succinct3col = Reductions.Succinct3col
module Distance = Reductions.Distance
module Prop1 = Reductions.Prop1
module Toggle = Reductions.Toggle
module Fixpoint_formula = Reductions.Fixpoint_formula
module Expressiveness = Reductions.Expressiveness
module Classics = Reductions.Classics
module Fo = Folog.Fo
module Nnf = Folog.Nnf
module Eso = Folog.Eso
module Ifp = Folog.Ifp
module Digraph = Graphlib.Digraph
module Generate = Graphlib.Generate
module Traverse = Graphlib.Traverse
module Scc = Graphlib.Scc
module Graph_coloring = Graphlib.Coloring
module Hamilton = Graphlib.Hamilton
module Kernel = Graphlib.Kernel
module Cnf = Satlib.Cnf
module Sat_solver = Satlib.Solver
module Sat_brute = Satlib.Brute
module Sat_enumerate = Satlib.Enumerate
module Dimacs = Satlib.Dimacs
module Sat_workload = Satlib.Workload
module Sat_count = Satlib.Count
module Sat_outcome = Satlib.Outcome
module Sat_stats = Satlib.Sat_stats
module Circuit = Circuitlib.Circuit
module Circuit_build = Circuitlib.Build
module Tseitin = Circuitlib.Tseitin
module Succinct = Circuitlib.Succinct
module Plan = Planlib.Plan
module Plan_cache = Planlib.Cache
module Snapshot = Snapshotlib.Snapshot
module Prng = Negdl_util.Prng
module Domain_pool = Negdl_util.Domain_pool
module Stats = Evallib.Stats

type semantics =
  | Semantics_inflationary
  | Semantics_stratified
  | Semantics_well_founded
  | Semantics_kripke_kleene
  | Semantics_least_fixpoint

let semantics_of_string s =
  match String.lowercase_ascii s with
  | "inflationary" | "ifp" -> Ok Semantics_inflationary
  | "stratified" -> Ok Semantics_stratified
  | "well-founded" | "wellfounded" | "wf" -> Ok Semantics_well_founded
  | "kripke-kleene" | "kk" | "fitting" -> Ok Semantics_kripke_kleene
  | "least" | "lfp" | "least-fixpoint" -> Ok Semantics_least_fixpoint
  | other ->
    Error
      (Printf.sprintf
         "unknown semantics %S (expected inflationary, stratified, \
          well-founded or least)"
         other)

let semantics_to_string = function
  | Semantics_inflationary -> "inflationary"
  | Semantics_stratified -> "stratified"
  | Semantics_well_founded -> "well-founded"
  | Semantics_kripke_kleene -> "kripke-kleene"
  | Semantics_least_fixpoint -> "least"

type run_result = {
  facts : Idb.t;
  unknown : Idb.t option;
}

(* Limit declarations are defined by the tighten-union fixpoint of the
   stratified evaluator; the other semantics would silently compute the
   pair-materializing reading, so they refuse limit programs instead. *)
let reject_limits who (program : Ast.program) =
  match program.limits with
  | [] -> ()
  | l :: _ ->
    invalid_arg
      (Printf.sprintf
         "%s: limit predicates (%s %s) require the stratified semantics" who
         l.limit_pred
         (Ast.limit_kind_to_string l.kind))

let run ?engine ?planner ?plan_cache ?indexing ?storage ?stats semantics
    program db =
  let cache = plan_cache in
  try
    (match semantics with
    | Semantics_stratified -> ()
    | _ -> reject_limits (semantics_to_string semantics) program);
    match semantics with
    | Semantics_inflationary ->
      Ok
        {
          facts =
            Inflationary.eval ?engine ?planner ?cache ?indexing ?storage
              ?stats program db;
          unknown = None;
        }
    | Semantics_least_fixpoint ->
      Ok
        {
          facts =
            Naive.least_fixpoint ?engine ?planner ?cache ?indexing ?storage
              ?stats program db;
          unknown = None;
        }
    | Semantics_stratified -> (
      match
        Stratified.eval ?engine ?planner ?cache ?indexing ?storage ?stats
          program db
      with
      | Ok facts -> Ok { facts; unknown = None }
      | Error e -> Error (Stratified.error_to_string e))
    | Semantics_well_founded ->
      let model =
        Wellfounded.eval ?engine ?planner ?cache ?indexing ?storage ?stats
          program db
      in
      let unknown = Wellfounded.unknown model in
      Ok
        {
          facts = model.Wellfounded.true_facts;
          unknown = (if Idb.is_empty unknown then None else Some unknown);
        }
    | Semantics_kripke_kleene ->
      let model = Fitting.eval ?planner ?cache program db in
      let unknown = Fitting.unknown model in
      Ok
        {
          facts = model.Fitting.true_facts;
          unknown = (if Idb.is_empty unknown then None else Some unknown);
        }
  with Invalid_argument msg -> Error msg

type fixpoint_report = {
  ground_atoms : int;
  ground_rules : int;
  has_fixpoint : bool;
  existence_unknown : Satlib.Outcome.reason option;
  fixpoint_count : int option;
  exact_count : Satlib.Outcome.count option;
  count_limit : int;
  unique : bool;
  least : Idb.t option;
  example : Idb.t option;
}

let analyze_fixpoints ?planner ?plan_cache ?(count_limit = 256) ?sat_budget
    ?count_budget program db =
  reject_limits "fixpoint analysis" program;
  let solver = Fixpoints.prepare ?planner ?plan_cache program db in
  let ground = Fixpoints.ground solver in
  let example, existence_unknown =
    match sat_budget with
    | None -> (Fixpoints.find solver, None)
    | Some budget -> (
      match Fixpoints.find_outcome ~conflict_budget:budget solver with
      | `Found fp -> (Some fp, None)
      | `No_fixpoint -> (None, None)
      | `Unknown r -> (None, Some r))
  in
  let has_fixpoint = example <> None in
  let decided = existence_unknown = None in
  let count =
    if not decided then None
    else if has_fixpoint then Some (Fixpoints.count ~limit:count_limit solver)
    else Some 0
  in
  let exact_count =
    match count_budget with
    | Some budget when decided -> Some (Fixpoints.count_exact ~budget solver)
    | _ -> None
  in
  {
    ground_atoms = Ground.atom_count ground;
    ground_rules = Ground.rule_count ground;
    has_fixpoint;
    existence_unknown;
    fixpoint_count = count;
    exact_count;
    count_limit;
    unique = (count = Some 1);
    least = (if has_fixpoint && decided then Fixpoints.least solver else None);
    example;
  }

let parse_program = Parser.parse_program

let parse_database = Database.parse

let version = "1.0.0"
