(* Tests for the program simplification passes: unit behaviour of each
   pass, plus the blanket property that simplification preserves every
   semantics (inflationary, fixpoint census, well-founded) on random
   programs. *)

module Ast = Datalog.Ast
module Parser = Datalog.Parser
module Transform = Datalog.Transform
module Idb = Evallib.Idb
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let rules_of text = (Parser.parse_program_exn text).Ast.rules

let rule_of text = List.hd (rules_of text)

(* --- unit passes ------------------------------------------------------------ *)

let test_dedup_literals () =
  let r = rule_of "p(X) :- e(X, Y), e(X, Y), q(X), e(X, Y)." in
  check int "deduped" 2 (List.length (Transform.dedup_literals r).Ast.body)

let test_simplify_comparisons () =
  (match Transform.simplify_comparisons (rule_of "p(X) :- e(X, X), X = X.") with
  | Some r -> check int "reflexive eq dropped" 1 (List.length r.Ast.body)
  | None -> Alcotest.fail "rule survives");
  (match Transform.simplify_comparisons (rule_of "p(X) :- e(X, X), X != X.") with
  | None -> ()
  | Some _ -> Alcotest.fail "reflexive neq kills the rule");
  (match Transform.simplify_comparisons (rule_of "p(X) :- q(X), a = b.") with
  | None -> ()
  | Some _ -> Alcotest.fail "distinct constants kill the rule");
  match Transform.simplify_comparisons (rule_of "p(X) :- q(X), a = a.") with
  | Some r -> check int "equal constants dropped" 1 (List.length r.Ast.body)
  | None -> Alcotest.fail "rule survives"

let test_dedup_rules () =
  let p = Parser.parse_program_exn "p(X) :- q(X). p(X) :- q(X). r(X) :- q(X)." in
  check int "deduped" 2 (List.length (Transform.dedup_rules p).Ast.rules)

let test_drop_underivable () =
  (* q is IDB but underivable (its only rule needs q itself plus an EDB
     guard that could never bootstrap it); rules using q positively die,
     negations of q evaporate. *)
  let p =
    Parser.parse_program_exn
      "q(X) :- q(X), z(X).\n\
       a(X) :- e(X, Y), q(Y).\n\
       b(X) :- e(X, Y), !q(Y).\n\
       c(X) :- b(X)."
  in
  let p' = Transform.drop_underivable p in
  let preds = Ast.predicates p' in
  check bool "q gone" false (List.mem "q" preds);
  check bool "a gone" false (List.mem "a" preds);
  check bool "b kept" true (List.mem "b" preds);
  (* b's rule lost its negated literal. *)
  let b_rule =
    List.find (fun (r : Ast.rule) -> r.Ast.head.Ast.pred = "b") p'.Ast.rules
  in
  check int "one literal left" 1 (List.length b_rule.Ast.body)

let test_default_simplify_keeps_guessable_relations () =
  (* The default pipeline never drops the self-supporting copy rules the
     paper's constructions use to make relations guessable: pi_SAT must
     come through unchanged. *)
  let p = Reductions.Sat_db.program in
  check bool "pi_SAT unchanged" true (Transform.simplify p = p);
  (* The aggressive pipeline, by contrast, collapses it (sound only for
     the least-fixpoint family). *)
  let p' = Transform.simplify ~aggressive:true p in
  check bool "aggressive drops s" false (List.mem "s" (Ast.predicates p'))

let test_simplify_fagin_output () =
  (* Cheap redundancies disappear; the copy rule stays; idempotent. *)
  let p =
    Parser.parse_program_exn
      "q(X) :- s(X), s(X), X = X.\n\
       s(U1) :- s(U1).\n\
       t(Z) :- !q(U), !t(W)."
  in
  let p' = Transform.simplify p in
  check bool "idempotent" true (Transform.simplify p' = p');
  check bool "copy rule kept" true
    (List.mem (rule_of "s(U1) :- s(U1).") p'.Ast.rules);
  let q_rule =
    List.find (fun (r : Ast.rule) -> r.Ast.head.Ast.pred = "q") p'.Ast.rules
  in
  check int "q body shrunk" 1 (List.length q_rule.Ast.body)

(* --- split_independent -------------------------------------------------------- *)

let restrict_idb original result =
  (* Compare valuations on the original program's IDB predicates only. *)
  Idb.restrict (Ast.idb_predicates original) result

let test_split_toggle_shape () =
  let p = Parser.parse_program_exn "t(Z) :- !q(U), !t(W). q(X) :- e(X, X)." in
  let p' = Transform.split_independent p in
  (* The toggle rule splits into two guards; q's rule is untouched. *)
  check int "four rules" 4 (List.length p'.Ast.rules);
  let toggle_rule =
    List.find
      (fun (r : Ast.rule) ->
        r.Ast.head.Ast.pred = "t" && List.length r.Ast.body = 2)
      p'.Ast.rules
  in
  check bool "guards are 0-ary" true
    (List.for_all
       (function
         | Ast.Pos a -> a.Ast.args = []
         | _ -> false)
       toggle_rule.Ast.body)

let test_split_shrinks_grounding () =
  (* pi_SAT on a small instance: the toggle rule's |A|^3 instances collapse
     to O(|A|). *)
  let cnf = Satlib.Workload.random_3cnf ~seed:2 ~vars:6 ~clauses:12 in
  let db = Reductions.Sat_db.database_of_cnf cnf in
  let before = Evallib.Ground.ground Reductions.Sat_db.program db in
  let after =
    Evallib.Ground.ground
      (Transform.split_independent Reductions.Sat_db.program)
      db
  in
  check bool "rules shrink by >10x" true
    (Evallib.Ground.rule_count after * 10 < Evallib.Ground.rule_count before)

let test_split_preserves_census_on_pi_sat () =
  let cnf = Satlib.Cnf.of_list 3 [ [ 1; 2 ]; [ -2; 3 ] ] in
  let db = Reductions.Sat_db.database_of_cnf cnf in
  let p = Reductions.Sat_db.program in
  let p' = Transform.split_independent p in
  let count p = Fixpointlib.Solve.count (Fixpointlib.Solve.prepare p db) in
  check int "same fixpoint count" (count p) (count p');
  check bool "uniqueness agrees"
    (Fixpointlib.Solve.has_unique (Fixpointlib.Solve.prepare p db))
    (Fixpointlib.Solve.has_unique (Fixpointlib.Solve.prepare p' db))

let test_split_preserves_stratified () =
  let p = Reductions.Distance.program in
  let p' = Transform.split_independent p in
  let g = Generate.random ~seed:23 ~n:4 ~p:0.3 in
  let db = Digraph.to_database g in
  check bool "stratified semantics preserved" true
    (Idb.equal
       (Evallib.Stratified.eval_exn p db)
       (restrict_idb p (Evallib.Stratified.eval_exn p' db)))

(* --- semantics preservation -------------------------------------------------- *)

(* Shared generator (test/support), paired with a random graph. *)
let arb_case =
  QCheck.make
    QCheck.Gen.(
      pair Testsupport.Gen_programs.gen_program
        (let* seed = int_range 0 10000 in
         let* gn = int_range 2 4 in
         return (Generate.random ~seed ~n:gn ~p:0.35)))
    ~print:(fun (p, g) ->
      Printf.sprintf "%s\n-- graph %d vertices %d edges"
        (Datalog.Pretty.program_to_string p)
        (Digraph.vertex_count g) (Digraph.edge_count g))

let prop_simplify_preserves_inflationary =
  QCheck.Test.make ~name:"simplify preserves inflationary semantics" ~count:120
    arb_case (fun (p, g) ->
      let db = Digraph.to_database g in
      let p' = Transform.simplify ~aggressive:true p in
      let before = Evallib.Inflationary.eval p db in
      QCheck.assume (p'.Ast.rules <> []);
      let after = Evallib.Inflationary.eval p' db in
      (* Predicates kept in p' must agree exactly; predicates dropped must
         have been empty. *)
      List.for_all
        (fun (pred, rel) ->
          if Idb.mem after pred then
            Relalg.Relation.equal rel (Idb.get after pred)
          else Relalg.Relation.is_empty rel)
        (Idb.bindings before))

let prop_simplify_preserves_census =
  QCheck.Test.make ~name:"simplify preserves the fixpoint census" ~count:60
    arb_case (fun (p, g) ->
      let db = Digraph.to_database g in
      let p' = Transform.simplify p in
      QCheck.assume (p'.Ast.rules <> []);
      let c = Fixpointlib.Solve.count (Fixpointlib.Solve.prepare p db) in
      let c' = Fixpointlib.Solve.count (Fixpointlib.Solve.prepare p' db) in
      c = c')

let () =
  Alcotest.run "transform"
    [
      ( "passes",
        [
          Alcotest.test_case "dedup literals" `Quick test_dedup_literals;
          Alcotest.test_case "comparisons" `Quick test_simplify_comparisons;
          Alcotest.test_case "dedup rules" `Quick test_dedup_rules;
          Alcotest.test_case "drop underivable" `Quick test_drop_underivable;
          Alcotest.test_case "keeps guessable relations" `Quick
            test_default_simplify_keeps_guessable_relations;
          Alcotest.test_case "idempotent on generated code" `Quick
            test_simplify_fagin_output;
        ] );
      ( "split",
        [
          Alcotest.test_case "toggle shape" `Quick test_split_toggle_shape;
          Alcotest.test_case "shrinks grounding" `Quick
            test_split_shrinks_grounding;
          Alcotest.test_case "census on pi_SAT" `Quick
            test_split_preserves_census_on_pi_sat;
          Alcotest.test_case "stratified preserved" `Quick
            test_split_preserves_stratified;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_inflationary;
            prop_simplify_preserves_census;
          ] );
    ]
