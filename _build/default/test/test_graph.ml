(* Tests for the graph substrate: generators, traversal, SCC, colorability,
   Hamilton circuits. *)

open Graphlib

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Digraph & generators ------------------------------------------------ *)

let test_make_validates () =
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Digraph.make: edge (0, 3) outside 0..2")
    (fun () -> ignore (Digraph.make 3 [ (0, 3) ]))

let test_generators_shapes () =
  check int "path edges" 4 (Digraph.edge_count (Generate.path 5));
  check int "cycle edges" 5 (Digraph.edge_count (Generate.cycle 5));
  check int "complete edges" 12 (Digraph.edge_count (Generate.complete 4));
  check int "star edges" 3 (Digraph.edge_count (Generate.star 4));
  check int "grid 2x3 edges" 7 (Digraph.edge_count (Generate.grid 2 3));
  check int "tree depth 3" 6 (Digraph.edge_count (Generate.binary_tree 3));
  check int "bipartite 2x3" 6 (Digraph.edge_count (Generate.complete_bipartite 2 3))

let test_disjoint_copies () =
  let g = Generate.disjoint_copies 3 (Generate.cycle 4) in
  check int "vertices" 12 (Digraph.vertex_count g);
  check int "edges" 12 (Digraph.edge_count g);
  check bool "no cross edges" false (Digraph.has_edge g 3 4)

let test_random_deterministic () =
  let g1 = Generate.random ~seed:9 ~n:10 ~p:0.3 in
  let g2 = Generate.random ~seed:9 ~n:10 ~p:0.3 in
  let g3 = Generate.random ~seed:10 ~n:10 ~p:0.3 in
  check bool "same seed same graph" true (Digraph.equal g1 g2);
  check bool "different seed differs" false (Digraph.equal g1 g3)

let test_random_edges_count () =
  let g = Generate.random_edges ~seed:3 ~n:8 ~m:15 in
  check int "exact edge count" 15 (Digraph.edge_count g)

let test_reverse_union () =
  let g = Generate.path 3 in
  let r = Digraph.reverse g in
  check bool "reversed" true (Digraph.has_edge r 1 0);
  let u = Digraph.undirected_view g in
  check bool "both directions" true (Digraph.has_edge u 1 0 && Digraph.has_edge u 0 1)

let test_to_database () =
  let db = Digraph.to_database (Generate.path 3) in
  check int "universe" 3 (Relalg.Database.universe_size db);
  check bool "edge fact" true
    (Relalg.Database.mem_fact "e"
       (Relalg.Tuple.of_strings [ "v0"; "v1" ])
       db)

(* --- Traversal ------------------------------------------------------------ *)

let test_bfs () =
  let g = Generate.path 4 in
  let d = Traverse.bfs_distances g 0 in
  check bool "distances" true (d = [| 0; 1; 2; 3 |]);
  let d' = Traverse.bfs_distances g 3 in
  check bool "unreachable" true (d' = [| -1; -1; -1; 0 |])

let test_positive_distance () =
  let g = Generate.cycle 3 in
  check (Alcotest.option int) "around the cycle" (Some 3)
    (Traverse.positive_distance g 0 0);
  let p = Generate.path 3 in
  check (Alcotest.option int) "no loop on path" None
    (Traverse.positive_distance p 0 0);
  check (Alcotest.option int) "one step" (Some 1)
    (Traverse.positive_distance p 0 1)

let test_transitive_closure () =
  let g = Generate.path 3 in
  let tc = Traverse.transitive_closure g in
  check bool "0 reaches 2" true (Digraph.has_edge tc 0 2);
  check bool "no reflexive" false (Digraph.has_edge tc 0 0);
  check int "closure size" 3 (Digraph.edge_count tc)

let test_distance_query_cases () =
  let g = Generate.path 4 in
  check bool "1 <= 3" true (Traverse.distance_query g 0 1 0 3);
  check bool "3 > 1" false (Traverse.distance_query g 0 3 0 1);
  check bool "unreachable target pair" true (Traverse.distance_query g 0 1 3 0);
  check bool "unreachable source pair" false (Traverse.distance_query g 3 0 0 1)

let test_topological () =
  (match Traverse.topological_order (Generate.path 4) with
  | Some [ 0; 1; 2; 3 ] -> ()
  | Some other ->
    Alcotest.failf "unexpected order %s"
      (String.concat "," (List.map string_of_int other))
  | None -> Alcotest.fail "path is acyclic");
  check bool "cycle not acyclic" false (Traverse.is_acyclic (Generate.cycle 3))

(* --- SCC -------------------------------------------------------------------- *)

let test_scc_cycle_plus_tail () =
  (* 0 -> 1 -> 2 -> 0 and 2 -> 3: two components. *)
  let g = Digraph.make 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let { Scc.count; component } = Scc.compute g in
  check int "two components" 2 count;
  check bool "cycle together" true
    (component.(0) = component.(1) && component.(1) = component.(2));
  check bool "tail separate" false (component.(3) = component.(0))

let test_scc_topological_components () =
  let g = Digraph.make 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  match Scc.components g with
  | [ first; second ] ->
    check bool "cycle first" true (List.sort compare first = [ 0; 1; 2 ]);
    check bool "then tail" true (second = [ 3 ])
  | other -> Alcotest.failf "expected 2 components, got %d" (List.length other)

let test_scc_condensation () =
  let g = Digraph.make 5 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4) ] in
  let cond, mapped = Scc.condensation g in
  check int "three components" 3 (Digraph.vertex_count cond);
  check bool "edges go forward" true
    (List.for_all (fun (u, v) -> u < v) (Digraph.edges cond));
  check bool "mapping consistent" true (mapped.(0) = mapped.(1))

let test_scc_dag_singletons () =
  let g = Generate.path 5 in
  check int "all singletons" 5 (Scc.compute g).Scc.count

(* --- Coloring ----------------------------------------------------------------- *)

let test_coloring_basic () =
  check bool "triangle 3col" true (Coloring.is_3colorable (Generate.complete 3));
  check bool "k4 not" false (Coloring.is_3colorable (Generate.complete 4));
  check bool "odd cycle 2col fails" false
    (Coloring.is_colorable ~k:2 (Generate.cycle 5));
  check bool "even cycle 2col" true (Coloring.is_colorable ~k:2 (Generate.cycle 6))

let test_coloring_finds_valid () =
  List.iter
    (fun g ->
      match Coloring.find_coloring ~k:3 g with
      | Some colors ->
        check bool "valid" true (Coloring.check_coloring ~k:3 g colors)
      | None -> Alcotest.fail "expected colorable")
    [ Generate.cycle 5; Generate.grid 3 3; Generate.binary_tree 3 ]

let test_coloring_self_loop () =
  let g = Digraph.make 1 [ (0, 0) ] in
  check bool "self loop kills" false (Coloring.is_colorable ~k:3 g)

let test_coloring_counts () =
  (* A single vertex has k colorings; an edge has k(k-1). *)
  check int "k3 single" 3 (Coloring.count_colorings ~k:3 (Digraph.make 1 []));
  check int "k3 edge" 6 (Coloring.count_colorings ~k:3 (Digraph.make 2 [ (0, 1) ]));
  check int "triangle" 6 (Coloring.count_colorings ~k:3 (Generate.complete 3))

let test_chromatic_number () =
  check int "empty" 1 (Coloring.chromatic_number (Digraph.make 3 []));
  check int "even cycle" 2 (Coloring.chromatic_number (Generate.cycle 4));
  check int "odd cycle" 3 (Coloring.chromatic_number (Generate.cycle 5));
  check int "k4" 4 (Coloring.chromatic_number (Generate.complete 4))

(* --- Hamilton -------------------------------------------------------------------- *)

let test_hamilton_cycle_graph () =
  check int "directed cycle: one circuit" 1 (Hamilton.count (Generate.cycle 5));
  check bool "unique" true (Hamilton.has_unique_circuit (Generate.cycle 5))

let test_hamilton_complete () =
  (* K4 directed: (4-1)! = 6 circuits through vertex 0. *)
  check int "k4 circuits" 6 (Hamilton.count (Generate.complete 4));
  check bool "not unique" false (Hamilton.has_unique_circuit (Generate.complete 4))

let test_hamilton_path_none () =
  check bool "path has none" false (Hamilton.has_circuit (Generate.path 4))

let test_hamilton_circuits_are_circuits () =
  let g = Generate.complete 4 in
  List.iter
    (fun circuit ->
      check int "covers all" 4 (List.length circuit);
      let rec consecutive = function
        | a :: (b :: _ as rest) ->
          check bool "edge" true (Digraph.has_edge g a b);
          consecutive rest
        | [ last ] -> check bool "closes" true (Digraph.has_edge g last 0)
        | [] -> ()
      in
      consecutive circuit)
    (Hamilton.circuits g)

(* --- Properties -------------------------------------------------------------------- *)

let arb_graph =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 7 in
      let* edges =
        list_size (int_range 0 20)
          (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      return (n, edges))
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges)))

let prop_tc_idempotent =
  QCheck.Test.make ~name:"transitive closure idempotent" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.make n edges in
      let tc = Traverse.transitive_closure g in
      Digraph.equal tc (Traverse.transitive_closure tc))

let prop_scc_respects_reachability =
  QCheck.Test.make ~name:"same scc iff mutually reachable" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.make n edges in
      let { Scc.component; _ } = Scc.compute g in
      let tc = Traverse.transitive_closure g in
      let mutually u v =
        u = v || (Digraph.has_edge tc u v && Digraph.has_edge tc v u)
      in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> component.(u) = component.(v) = mutually u v)
            (Digraph.vertices g))
        (Digraph.vertices g))

let prop_coloring_checks =
  QCheck.Test.make ~name:"found colorings are proper" ~count:100 arb_graph
    (fun (n, edges) ->
      let g = Digraph.make n edges in
      match Coloring.find_coloring ~k:3 g with
      | Some colors -> Coloring.check_coloring ~k:3 g colors
      | None -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tc_idempotent; prop_scc_respects_reachability; prop_coloring_checks ]

let () =
  Alcotest.run "graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "generators" `Quick test_generators_shapes;
          Alcotest.test_case "disjoint copies" `Quick test_disjoint_copies;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "random edges" `Quick test_random_edges_count;
          Alcotest.test_case "reverse/union" `Quick test_reverse_union;
          Alcotest.test_case "to database" `Quick test_to_database;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "positive distance" `Quick test_positive_distance;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "distance query" `Quick test_distance_query_cases;
          Alcotest.test_case "topological" `Quick test_topological;
        ] );
      ( "scc",
        [
          Alcotest.test_case "cycle plus tail" `Quick test_scc_cycle_plus_tail;
          Alcotest.test_case "topological order" `Quick test_scc_topological_components;
          Alcotest.test_case "condensation" `Quick test_scc_condensation;
          Alcotest.test_case "dag singletons" `Quick test_scc_dag_singletons;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "basic" `Quick test_coloring_basic;
          Alcotest.test_case "finds valid" `Quick test_coloring_finds_valid;
          Alcotest.test_case "self loop" `Quick test_coloring_self_loop;
          Alcotest.test_case "counts" `Quick test_coloring_counts;
          Alcotest.test_case "chromatic number" `Quick test_chromatic_number;
        ] );
      ( "hamilton",
        [
          Alcotest.test_case "cycle" `Quick test_hamilton_cycle_graph;
          Alcotest.test_case "complete" `Quick test_hamilton_complete;
          Alcotest.test_case "path" `Quick test_hamilton_path_none;
          Alcotest.test_case "valid circuits" `Quick test_hamilton_circuits_are_circuits;
        ] );
      ("properties", qcheck_tests);
    ]
