(* Tests for the paper's constructions: Example 1 / Theorem 1 (pi_SAT and
   the generic Fagin compiler), Theorem 2 (unique fixpoints vs unique SAT),
   Theorem 3 (least fixpoints), Lemma 1 (pi_COL), Theorem 4 (succinct
   3-coloring), Proposition 2 (the distance query) and Proposition 1
   (Inflationary DATALOG vs existential FO+IFP). *)

open Reductions
module Cnf = Satlib.Cnf
module SatBrute = Satlib.Brute
module Solve = Fixpointlib.Solve
module FixBrute = Fixpointlib.Brute
module Idb = Evallib.Idb
module Theta = Evallib.Theta
module Ground = Evallib.Ground
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module GColoring = Graphlib.Coloring
module Relation = Relalg.Relation

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Example 1: pi_SAT --------------------------------------------------- *)

let sample_cnfs =
  [
    ("unit", Cnf.of_list 1 [ [ 1 ] ]);
    ("contradiction", Cnf.of_list 1 [ [ 1 ]; [ -1 ] ]);
    ("two free", Cnf.create 2);
    ("implication chain", Cnf.of_list 3 [ [ -1; 2 ]; [ -2; 3 ]; [ 1 ] ]);
    ("xor-ish", Cnf.of_list 2 [ [ 1; 2 ]; [ -1; -2 ] ]);
    ("unsat 2cnf", Cnf.of_list 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ]);
    ("random 3cnf", Satlib.Workload.random_3cnf ~seed:11 ~vars:4 ~clauses:9);
  ]

let test_pi_sat_existence () =
  List.iter
    (fun (name, cnf) ->
      let expected = SatBrute.is_satisfiable cnf in
      check bool name expected (Solve.exists (Sat_db.solver cnf)))
    sample_cnfs

let test_pi_sat_bijection () =
  (* Satisfying assignments and fixpoints correspond one to one. *)
  List.iter
    (fun (name, cnf) ->
      let models = SatBrute.count_models cnf in
      let fixpoints = Solve.count (Sat_db.solver cnf) in
      check int (name ^ ": counts equal") models fixpoints)
    sample_cnfs

let test_pi_sat_assignment_extraction () =
  let cnf = Cnf.of_list 3 [ [ -1; 2 ]; [ -2; 3 ]; [ 1 ] ] in
  let solver = Sat_db.solver cnf in
  List.iter
    (fun fp ->
      let assignment = Sat_db.assignment_of_fixpoint cnf fp in
      check bool "assignment satisfies" true
        (Cnf.eval cnf (fun v -> assignment.(v))))
    (Solve.enumerate solver)

let test_pi_sat_fixpoint_construction () =
  (* fixpoint_of_assignment really is a fixpoint of (pi_SAT, D(I)). *)
  let cnf = Cnf.of_list 2 [ [ 1; 2 ] ] in
  let db = Sat_db.database_of_cnf cnf in
  List.iter
    (fun model ->
      let fp = Sat_db.fixpoint_of_assignment cnf model in
      check bool "constructed fixpoint" true
        (Theta.is_fixpoint Sat_db.program db fp))
    (SatBrute.all_models cnf)

let test_pi_sat_database_roundtrip () =
  let cnf = Cnf.of_list 3 [ [ 1; -2 ]; [ 2; 3 ]; [ -3 ] ] in
  match Sat_db.cnf_of_database (Sat_db.database_of_cnf cnf) with
  | Error e -> Alcotest.fail e
  | Ok cnf' ->
    check int "same model count" (SatBrute.count_models cnf)
      (SatBrute.count_models cnf');
    check int "same vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf')

(* --- Theorem 2: unique fixpoints ----------------------------------------- *)

let test_unique_fixpoint_iff_unique_sat () =
  List.iter
    (fun (name, cnf) ->
      let expected = SatBrute.count_models cnf = 1 in
      check bool name expected (Solve.has_unique (Sat_db.solver cnf)))
    sample_cnfs;
  (* Engineered counts. *)
  for k = 0 to 4 do
    let cnf = Satlib.Workload.exactly_k_models 3 k in
    check bool
      (Printf.sprintf "exactly %d models" k)
      (k = 1)
      (Solve.has_unique (Sat_db.solver cnf))
  done

(* --- Theorem 3: least fixpoints on pi_SAT -------------------------------- *)

let test_least_fixpoint_horn () =
  (* A Horn CNF with a least model: x1, and x2 forced, x3 free -> two
     models {x1,x2} and {x1,x2,x3}; the intersection is a model, so a least
     fixpoint exists. *)
  let cnf = Cnf.of_list 3 [ [ 1 ]; [ -1; 2 ] ] in
  let solver = Sat_db.solver cnf in
  match Solve.least solver with
  | None -> Alcotest.fail "expected a least fixpoint"
  | Some fp ->
    let assignment = Sat_db.assignment_of_fixpoint cnf fp in
    check bool "least model {x1, x2}" true
      (assignment.(1) && assignment.(2) && not assignment.(3))

let test_no_least_fixpoint_on_disjunction () =
  (* x1 \/ x2 with neither forced: models {x1}, {x2}, {x1, x2}; the
     intersection (empty) is not a model, so no least fixpoint. *)
  let cnf = Cnf.of_list 2 [ [ 1; 2 ] ] in
  check bool "no least" true (Solve.least (Sat_db.solver cnf) = None)

(* --- Theorem 1 generic: the Fagin compiler ------------------------------- *)

(* The SAT sentence of Example 1, as a first-order matrix. *)
let sat_sentence =
  let open Folog.Fo in
  {
    Folog.Eso.second_order = [ ("S", 1) ];
    matrix =
      forall [ "x" ]
        (exists [ "y" ]
           (And
              ( Implies (atom "S" [ var "x" ], atom "v" [ var "x" ]),
                Implies
                  ( Not (atom "v" [ var "x" ]),
                    Or
                      ( And
                          ( atom "p" [ var "x"; var "y" ],
                            atom "S" [ var "y" ] ),
                        And
                          ( atom "n" [ var "x"; var "y" ],
                            Not (atom "S" [ var "y" ]) ) ) ) )));
  }

let test_fagin_on_sat_sentence () =
  let compiled =
    match Fagin.compile_sentence sat_sentence with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (name, cnf) ->
      let db = Sat_db.database_of_cnf cnf in
      let expected = SatBrute.is_satisfiable cnf in
      (* Three independent deciders agree: brute-force ESO model checking,
         the compiled program's fixpoints, and the hand-written pi_SAT. *)
      check bool (name ^ ": eso") expected (Folog.Eso.holds db sat_sentence);
      check bool (name ^ ": compiled") expected (Fagin.has_fixpoint compiled db);
      check bool (name ^ ": pi_sat") expected
        (Solve.exists (Sat_db.solver cnf)))
    (* Keep universes small: ESO checking enumerates 2^|A| values of S. *)
    [
      ("unit", Cnf.of_list 1 [ [ 1 ] ]);
      ("contradiction", Cnf.of_list 1 [ [ 1 ]; [ -1 ] ]);
      ("xor-ish", Cnf.of_list 2 [ [ 1; 2 ]; [ -1; -2 ] ]);
      ("unsat 2cnf", Cnf.of_list 2 [ [ 1; 2 ]; [ 1; -2 ]; [ -1; 2 ]; [ -1; -2 ] ]);
    ]

let test_fagin_graph_property () =
  (* "There is a set S containing, for every vertex x, either x or all its
     successors... " keep it simple: S is a kernel-ish set: every vertex is
     in S or has an out-neighbour in S.  ESO: exists S forall x exists y
     (S(x) \/ (e(x,y) /\ S(y))). *)
  let open Folog.Fo in
  let sentence =
    {
      Folog.Eso.second_order = [ ("S", 1) ];
      matrix =
        forall [ "x" ]
          (exists [ "y" ]
             (Or
                ( atom "S" [ var "x" ],
                  And (atom "e" [ var "x"; var "y" ], atom "S" [ var "y" ]) )));
    }
  in
  let compiled =
    match Fagin.compile_sentence sentence with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun g ->
      let db = Digraph.to_database g in
      check bool "fagin agrees with eso" (Folog.Eso.holds db sentence)
        (Fagin.has_fixpoint compiled db))
    [
      Generate.path 3;
      Generate.cycle 3;
      Generate.cycle 4;
      Digraph.make 3 [];
      Generate.star 3;
    ]

let test_fagin_rejects_bad_prefix () =
  (* exists y forall x e(x, y) has an existential-then-universal prefix. *)
  let open Folog.Fo in
  let sentence =
    {
      Folog.Eso.second_order = [ ("S", 1) ];
      matrix = exists [ "y" ] (forall [ "x" ] (atom "e" [ var "x"; var "y" ]));
    }
  in
  match Fagin.compile_sentence sentence with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected prefix rejection"

(* --- Lemma 1: pi_COL ------------------------------------------------------ *)

let coloring_graphs =
  [
    ("triangle", Generate.complete 3, true);
    ("k4", Generate.complete 4, false);
    ("odd cycle", Generate.cycle 5, true);
    ("path", Generate.path 4, true);
    ("self-loop", Digraph.make 2 [ (0, 0); (0, 1) ], false);
    ("empty", Digraph.make 3 [], true);
  ]

let test_pi_col_matches_backtracking () =
  List.iter
    (fun (name, g, expected) ->
      check bool (name ^ ": backtracking") expected (GColoring.is_3colorable g);
      check bool (name ^ ": pi_col") expected (Coloring.has_fixpoint g))
    coloring_graphs

let test_pi_col_fixpoints_are_colorings () =
  let g = Generate.cycle 5 in
  let solver = Coloring.solver g in
  let fps = Solve.enumerate ~limit:5 solver in
  check bool "some fixpoint" true (fps <> []);
  List.iter
    (fun fp ->
      let colors = Coloring.coloring_of_fixpoint g fp in
      check bool "proper coloring" true (GColoring.check_coloring ~k:3 g colors))
    fps

let test_pi_col_fixpoint_count_is_coloring_count () =
  let g = Generate.path 3 in
  check int "count = colorings"
    (GColoring.count_colorings ~k:3 g)
    (Solve.count (Coloring.solver g))

(* --- Theorem 4: succinct 3-coloring -------------------------------------- *)

let test_succinct_matches_explicit () =
  let cases =
    [
      ("hypercube 2", Circuitlib.Succinct.hypercube 2);
      ("complete 2", Circuitlib.Succinct.complete 2);
      ("empty 2", Circuitlib.Succinct.empty 2);
      ("explicit triangle+1", Circuitlib.Succinct.of_explicit (Generate.complete 3));
      ("explicit k4", Circuitlib.Succinct.of_explicit (Generate.complete 4));
    ]
  in
  List.iter
    (fun (name, sg) ->
      let explicit = Circuitlib.Succinct.expand sg in
      let expected = GColoring.is_3colorable explicit in
      let compiled = Succinct3col.compile sg in
      check bool name expected (Succinct3col.has_fixpoint compiled))
    cases

let test_succinct_program_shape () =
  let sg = Circuitlib.Succinct.empty 2 in
  let compiled = Succinct3col.compile sg in
  check int "bits" 2 compiled.Succinct3col.bits;
  (* 11 pi_COL rules plus one or two rules per gate. *)
  check bool "has rules" true
    (List.length compiled.Succinct3col.program.Datalog.Ast.rules > 11)

(* --- Proposition 2: the distance query ----------------------------------- *)

let distance_graphs =
  [
    ("path", Generate.path 5);
    ("cycle", Generate.cycle 4);
    ("two components", Digraph.disjoint_union (Generate.path 3) (Generate.cycle 3));
    ("random dag-ish", Generate.random ~seed:5 ~n:6 ~p:0.2);
    ("star", Generate.star 4);
  ]

let test_distance_inflationary_is_distance_query () =
  List.iter
    (fun (name, g) ->
      check bool name true
        (Relation.equal (Distance.inflationary g) (Distance.reference g)))
    distance_graphs

let test_distance_stratified_is_tc_pair () =
  List.iter
    (fun (name, g) ->
      check bool name true
        (Relation.equal (Distance.stratified g)
           (Distance.reference_stratified g)))
    distance_graphs

let test_distance_semantics_differ () =
  (* On the path 0 -> 1 -> 2 -> 3 the quadruple (0, 1, 0, 3) is in the
     distance query (dist 1 <= dist 3) but not in TC /\ not TC (both pairs
     are in the closure).  So the same program means different things. *)
  let g = Generate.path 4 in
  let infl = Distance.inflationary g in
  let strat = Distance.stratified g in
  let witness = Distance.quad 0 1 0 3 in
  check bool "inflationary has it" true (Relation.mem witness infl);
  check bool "stratified lacks it" false (Relation.mem witness strat);
  check bool "relations differ" false (Relation.equal infl strat)

let test_distance_program_is_stratifiable () =
  check bool "stratifiable" true (Datalog.Stratify.is_stratified Distance.program)

(* --- Proposition 1: inflationary datalog = existential FO+IFP ------------ *)

let prop1_programs =
  [
    ("tc", Distance.program);
    ("pi1", Datalog.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y).");
    ("toggle", Datalog.Parser.parse_program_exn "t(Z) :- !t(W).");
    ( "mixed",
      Datalog.Parser.parse_program_exn
        "p(X) :- e(X, Y), !q(Y). q(X) :- e(Y, X), p(Y). r(X, Y) :- p(X), q(Y), X != Y."
    );
  ]

let test_prop1_program_to_operators () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun seed ->
          let g = Generate.random ~seed:(700 + seed) ~n:4 ~p:0.3 in
          check bool
            (Printf.sprintf "%s seed %d" name seed)
            true
            (Prop1.agree p (Digraph.to_database g)))
        [ 1; 2; 3 ])
    prop1_programs

let test_prop1_roundtrip () =
  (* program -> operators -> program preserves inflationary semantics. *)
  List.iter
    (fun (name, p) ->
      let p' = Prop1.program_of_operators_exn (Prop1.operators_of_program p) in
      List.iter
        (fun seed ->
          let g = Generate.random ~seed:(800 + seed) ~n:4 ~p:0.3 in
          let db = Digraph.to_database g in
          check bool
            (Printf.sprintf "%s seed %d" name seed)
            true
            (Idb.equal
               (Evallib.Inflationary.eval p db)
               (Evallib.Inflationary.eval p' db)))
        [ 1; 2 ])
    prop1_programs

let test_prop1_rejects_universal_operator () =
  let open Folog.Fo in
  let op =
    {
      Folog.Ifp.pred = "s";
      vars = [ "V1" ];
      body = forall [ "z" ] (atom "e" [ var "V1"; var "z" ]);
    }
  in
  match Prop1.program_of_operators [ op ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "universal operator accepted"

(* --- Expressiveness (Section 5) ------------------------------------------- *)

let tc_prog =
  Datalog.Parser.parse_program_exn
    "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let test_tc_is_monotone_empirically () =
  let query g =
    Idb.get (Evallib.Naive.least_fixpoint tc_prog (Digraph.to_database g)) "s"
  in
  let preserved, violated =
    Expressiveness.monotonicity_trials ~seed:5 ~trials:60 ~query
  in
  check bool "some trials ran" true (preserved > 20);
  check int "no violations" 0 violated

let test_distance_is_not_monotone () =
  let g, g', quad = Expressiveness.distance_witness () in
  check bool "inclusion of graphs" true
    (List.for_all
       (fun (u, v) -> Digraph.has_edge g' u v)
       (Digraph.edges g));
  let d = Distance.inflationary g in
  let d' = Distance.inflationary g' in
  check bool "witness in D(G)" true (Relation.mem quad d);
  check bool "witness not in D(G')" false (Relation.mem quad d');
  check bool "hence not monotone" false (Relation.subset d d')

let test_distance_violations_found_randomly () =
  let preserved, violated =
    Expressiveness.monotonicity_trials ~seed:11 ~trials:80
      ~query:Distance.inflationary
  in
  ignore preserved;
  check bool "random search also finds violations" true (violated > 0)

let test_stage_growth () =
  (* The distance program's stage count grows with the path length
     (non-first-order behaviour); pi_1 stabilises immediately. *)
  let make_db n = Digraph.to_database (Generate.path n) in
  let distance_stages =
    Expressiveness.stage_counts Distance.program ~make_db [ 3; 5; 7; 9 ]
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  check bool "distance stages grow" true (strictly_increasing distance_stages);
  let pi1 = Datalog.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  let pi1_stages = Expressiveness.stage_counts pi1 ~make_db [ 3; 5; 7; 9 ] in
  check bool "pi_1 stages constant" true
    (List.for_all (fun s -> s = List.hd pi1_stages) pi1_stages)

(* --- the classics library --------------------------------------------------- *)

let test_classics_all_evaluate () =
  (* Every canonical program parses, validates, and evaluates under the
     inflationary semantics on a small graph database without raising. *)
  let db =
    Relalg.Database.merge
      (Digraph.to_database (Generate.random ~seed:3 ~n:4 ~p:0.3))
      (Relalg.Database.of_facts ~universe:[]
         [
           ("source", [ "v0" ]); ("node", [ "v0" ]); ("node", [ "v1" ]);
           ("up", [ "v0"; "v1" ]); ("flat", [ "v1"; "v2" ]);
           ("down", [ "v2"; "v3" ]);
         ])
  in
  List.iter
    (fun (name, p) ->
      (match Datalog.Check.validate p with
      | Ok _ -> ()
      | Error _ -> Alcotest.failf "%s does not validate" name);
      ignore (Evallib.Inflationary.eval p db))
    Classics.all;
  check int "eight classics" 8 (List.length Classics.all)

let test_classics_known_facts () =
  check bool "pi1 = the paper's program" true
    (Classics.pi1 = Datalog.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y).");
  check bool "toggle unstratifiable" false
    (Datalog.Stratify.is_stratified Classics.toggle);
  check bool "tc positive" true (Datalog.Ast.is_positive Classics.transitive_closure);
  check bool "pi2 stratifiable" true (Datalog.Stratify.is_stratified Classics.pi2)

(* --- The fixpoint formula phi_pi (Section 3) ------------------------------ *)

let phi_programs =
  [
    ("pi_1", Datalog.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y).");
    ("toggle", Datalog.Parser.parse_program_exn "t(Z) :- !t(W).");
    ( "two preds",
      Datalog.Parser.parse_program_exn "p(X) :- e(X, Y), !q(Y). q(X) :- p(X)."
    );
  ]

let test_phi_characterises_fixpoints () =
  (* D |= phi_pi(S) iff Theta(S) = S, for every S over tiny universes. *)
  List.iter
    (fun (name, p) ->
      let g = Generate.random ~seed:17 ~n:3 ~p:0.4 in
      let db = Digraph.to_database g in
      let ground = Ground.ground p db in
      (* Enumerate all subsets of derivable atoms plus a few sprinkled
         valuations; formula truth must track the fixpoint test. *)
      let atoms = Ground.atoms ground in
      let n = List.length atoms in
      for mask = 0 to min 63 ((1 lsl n) - 1) do
        let subset = List.filteri (fun i _ -> (mask lsr i) land 1 = 1) atoms in
        let s = Ground.to_idb ground subset in
        check bool
          (Printf.sprintf "%s mask %d" name mask)
          (Theta.is_fixpoint p db s)
          (Fixpoint_formula.is_fixpoint_via_formula p db s)
      done)
    phi_programs

let test_phi_existence_sentence () =
  (* exists S-bar phi_pi holds iff a fixpoint exists; witness count =
     fixpoint count. *)
  List.iter
    (fun (name, p) ->
      List.iter
        (fun g ->
          let db = Digraph.to_database g in
          let solver = Solve.prepare p db in
          let sentence = Fixpoint_formula.existence_sentence p in
          check bool
            (name ^ ": existence agrees")
            (Solve.exists solver)
            (Folog.Eso.holds db sentence);
          check int
            (name ^ ": witness count = fixpoint count")
            (Solve.count solver)
            (Fixpoint_formula.count_witnesses p db))
        [ Generate.path 3; Generate.cycle 3; Generate.cycle 4 ])
    phi_programs

let test_phi_unique_fixpoint_logical_form () =
  (* Theorem 2's logical form: unique fixpoint iff exactly one witness. *)
  let p = Datalog.Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  List.iter
    (fun (g, expected_unique) ->
      let db = Digraph.to_database g in
      check bool "unique iff one witness" expected_unique
        (Fixpoint_formula.count_witnesses p db = 1))
    [ (Generate.path 3, true); (Generate.cycle 4, false); (Generate.cycle 3, false) ]

(* --- Toggle gadget -------------------------------------------------------- *)

let test_toggle_shapes () =
  let r = Toggle.bare () in
  check bool "bare has empty-head body" true (List.length r.Datalog.Ast.body = 1);
  let g = Toggle.guarded ~guard:"q" ~guard_arity:2 () in
  check int "guarded body size" 2 (List.length g.Datalog.Ast.body)

let () =
  Alcotest.run "reductions"
    [
      ( "pi_sat",
        [
          Alcotest.test_case "existence" `Quick test_pi_sat_existence;
          Alcotest.test_case "bijection" `Quick test_pi_sat_bijection;
          Alcotest.test_case "assignment extraction" `Quick
            test_pi_sat_assignment_extraction;
          Alcotest.test_case "fixpoint construction" `Quick
            test_pi_sat_fixpoint_construction;
          Alcotest.test_case "database roundtrip" `Quick
            test_pi_sat_database_roundtrip;
        ] );
      ( "unique",
        [
          Alcotest.test_case "iff unique sat" `Quick
            test_unique_fixpoint_iff_unique_sat;
        ] );
      ( "least",
        [
          Alcotest.test_case "horn has least" `Quick test_least_fixpoint_horn;
          Alcotest.test_case "disjunction has none" `Quick
            test_no_least_fixpoint_on_disjunction;
        ] );
      ( "fagin",
        [
          Alcotest.test_case "sat sentence" `Quick test_fagin_on_sat_sentence;
          Alcotest.test_case "graph property" `Quick test_fagin_graph_property;
          Alcotest.test_case "bad prefix" `Quick test_fagin_rejects_bad_prefix;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "matches backtracking" `Quick
            test_pi_col_matches_backtracking;
          Alcotest.test_case "fixpoints are colorings" `Quick
            test_pi_col_fixpoints_are_colorings;
          Alcotest.test_case "counts" `Quick
            test_pi_col_fixpoint_count_is_coloring_count;
        ] );
      ( "succinct",
        [
          Alcotest.test_case "matches explicit" `Slow
            test_succinct_matches_explicit;
          Alcotest.test_case "program shape" `Quick test_succinct_program_shape;
        ] );
      ( "distance",
        [
          Alcotest.test_case "inflationary = distance" `Quick
            test_distance_inflationary_is_distance_query;
          Alcotest.test_case "stratified = tc pair" `Quick
            test_distance_stratified_is_tc_pair;
          Alcotest.test_case "semantics differ" `Quick
            test_distance_semantics_differ;
          Alcotest.test_case "stratifiable" `Quick
            test_distance_program_is_stratifiable;
        ] );
      ( "prop1",
        [
          Alcotest.test_case "program to operators" `Quick
            test_prop1_program_to_operators;
          Alcotest.test_case "roundtrip" `Quick test_prop1_roundtrip;
          Alcotest.test_case "rejects universal" `Quick
            test_prop1_rejects_universal_operator;
        ] );
      ("toggle", [ Alcotest.test_case "shapes" `Quick test_toggle_shapes ]);
      ( "classics",
        [
          Alcotest.test_case "all evaluate" `Quick test_classics_all_evaluate;
          Alcotest.test_case "known facts" `Quick test_classics_known_facts;
        ] );
      ( "expressiveness",
        [
          Alcotest.test_case "tc monotone" `Quick test_tc_is_monotone_empirically;
          Alcotest.test_case "distance not monotone" `Quick
            test_distance_is_not_monotone;
          Alcotest.test_case "random violations" `Quick
            test_distance_violations_found_randomly;
          Alcotest.test_case "stage growth" `Quick test_stage_growth;
        ] );
      ( "phi_pi",
        [
          Alcotest.test_case "characterises fixpoints" `Quick
            test_phi_characterises_fixpoints;
          Alcotest.test_case "existence sentence" `Quick
            test_phi_existence_sentence;
          Alcotest.test_case "unique logical form" `Quick
            test_phi_unique_fixpoint_logical_form;
        ] );
    ]
