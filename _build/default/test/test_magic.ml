(* Tests for the magic-sets transformation and goal-directed querying:
   answers must coincide with bottom-up evaluation restricted to the query,
   while touching only the relevant part of the data. *)

module Ast = Datalog.Ast
module Magic = Datalog.Magic
module Parser = Datalog.Parser
module Query = Evallib.Query
module Naive = Evallib.Naive
module Idb = Evallib.Idb
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tc =
  Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)."

let db_of g = Digraph.to_database g

let vsym = Digraph.vertex_symbol

(* Bottom-up reference: full lfp, then select on the query constants. *)
let reference p db (query : Ast.atom) =
  let full = Naive.least_fixpoint p db in
  let rel = Idb.get full query.Ast.pred in
  Relation.filter
    (fun t ->
      List.for_all2
        (fun term v ->
          match term with
          | Ast.Const c -> Relalg.Symbol.equal c v
          | Ast.Var _ -> true)
        query.Ast.args (Tuple.to_list t))
    rel

let test_tc_bound_free () =
  (* tc(v0, Y) on a path: successors of v0. *)
  let g = Generate.path 5 in
  let db = db_of g in
  let query = Ast.atom "s" [ Ast.const "v0"; Ast.Var "Y" ] in
  let got = Query.answer_exn tc db ~query in
  check bool "matches bottom-up" true (Relation.equal got (reference tc db query));
  check int "4 reachable" 4 (Relation.cardinal got)

let test_tc_free_bound () =
  (* tc(X, v4): ancestors of v4. *)
  let g = Generate.path 5 in
  let db = db_of g in
  let query = Ast.atom "s" [ Ast.Var "X"; Ast.const "v4" ] in
  let got = Query.answer_exn tc db ~query in
  check bool "matches bottom-up" true (Relation.equal got (reference tc db query))

let test_tc_bound_bound () =
  let g = Generate.path 5 in
  let db = db_of g in
  check bool "v0 reaches v3" true
    (Result.get_ok
       (Query.holds tc db ~query:(Ast.atom "s" [ Ast.const "v0"; Ast.const "v3" ])));
  check bool "v3 does not reach v0" false
    (Result.get_ok
       (Query.holds tc db ~query:(Ast.atom "s" [ Ast.const "v3"; Ast.const "v0" ])))

let test_tc_free_free () =
  (* All-free query degenerates to full evaluation. *)
  let g = Generate.random ~seed:3 ~n:5 ~p:0.3 in
  let db = db_of g in
  let query = Ast.atom "s" [ Ast.Var "X"; Ast.Var "Y" ] in
  let got = Query.answer_exn tc db ~query in
  check bool "matches bottom-up" true (Relation.equal got (reference tc db query))

let test_magic_is_goal_directed () =
  (* Two disconnected components; querying inside one must not derive
     adorned facts about the other. *)
  let g = Digraph.disjoint_union (Generate.path 10) (Generate.path 10) in
  let db = db_of g in
  let query = Ast.atom "s" [ Ast.const "v0"; Ast.Var "Y" ] in
  let rewritten = Magic.rewrite_exn tc ~query in
  let result = Naive.least_fixpoint rewritten.Magic.program db in
  let adorned = Idb.get result rewritten.Magic.answer_pred in
  (* Only pairs out of the first component appear at all. *)
  check bool "no facts about the second component" true
    (Relation.for_all
       (fun t -> not (Relalg.Symbol.equal (Tuple.get t 0) (vsym 10)))
       adorned);
  (* And far fewer tuples than full bottom-up (45 + 45 pairs). *)
  let full = Idb.get (Naive.least_fixpoint tc db) "s" in
  check bool "strictly smaller" true
    (Relation.cardinal adorned < Relation.cardinal full)

let test_same_generation () =
  (* The classic same-generation program. *)
  let sg =
    Parser.parse_program_exn
      "sg(X, Y) :- flat(X, Y).\n\
       sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)."
  in
  let db =
    Relalg.Database.of_facts ~universe:[]
      [
        ("up", [ "a"; "p1" ]); ("up", [ "b"; "p2" ]);
        ("flat", [ "p1"; "p2" ]); ("flat", [ "a"; "c" ]);
        ("down", [ "p1"; "a2" ]); ("down", [ "p2"; "b2" ]);
      ]
  in
  let query = Ast.atom "sg" [ Ast.const "a"; Ast.Var "Y" ] in
  let got = Query.answer_exn sg db ~query in
  check bool "matches bottom-up" true (Relation.equal got (reference sg db query));
  (* a is same-generation with c (flat) and with b2 (up-flat-down). *)
  check int "two answers" 2 (Relation.cardinal got)

let test_constants_in_rules () =
  let p = Parser.parse_program_exn "r(X) :- e(v0, X). t(X) :- r(X). t(X) :- e(X, X)." in
  let g = Digraph.make 3 [ (0, 1); (2, 2) ] in
  let db = db_of g in
  let query = Ast.atom "t" [ Ast.Var "X" ] in
  let got = Query.answer_exn p db ~query in
  check bool "matches bottom-up" true (Relation.equal got (reference p db query));
  check int "two answers" 2 (Relation.cardinal got)

let test_rejects_negation () =
  let p = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)." in
  match Magic.rewrite p ~query:(Ast.atom "t" [ Ast.Var "X" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation accepted"

let test_rejects_bad_queries () =
  (match Magic.rewrite tc ~query:(Ast.atom "e" [ Ast.Var "X"; Ast.Var "Y" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EDB query accepted");
  match Magic.rewrite tc ~query:(Ast.atom "s" [ Ast.Var "X" ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch accepted"

let test_rewrite_shape () =
  let query = Ast.atom "s" [ Ast.const "v0"; Ast.Var "Y" ] in
  let r = Magic.rewrite_exn tc ~query in
  check (Alcotest.string) "adornment" "bf" r.Magic.adornment;
  check bool "seed is a fact" true
    (List.exists
       (fun (rule : Ast.rule) ->
         rule.Ast.head.Ast.pred = r.Magic.seed_pred && rule.Ast.body = [])
       r.Magic.program.Ast.rules);
  (* Every non-seed rule is guarded by some magic literal. *)
  check bool "rules are guarded" true
    (List.for_all
       (fun (rule : Ast.rule) ->
         rule.Ast.body = []
         || List.exists
              (function
                | Ast.Pos a ->
                  String.length a.Ast.pred >= 6
                  && String.sub a.Ast.pred 0 6 = "magic_"
                | _ -> false)
              rule.Ast.body)
       r.Magic.program.Ast.rules)

(* Random positive programs: magic answers = bottom-up answers. *)
let arb_graph_query =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* seed = int_range 0 10000 in
      let* v = int_range 0 (n - 1) in
      let* side = bool in
      return (n, seed, v, side))
    ~print:(fun (n, seed, v, side) ->
      Printf.sprintf "n=%d seed=%d v=%d side=%b" n seed v side)

let prop_magic_matches_bottom_up =
  QCheck.Test.make ~name:"magic = bottom-up on tc queries" ~count:100
    arb_graph_query (fun (n, seed, v, side) ->
      let g = Generate.random ~seed ~n ~p:0.35 in
      let db = db_of g in
      let c = Ast.Const (vsym v) in
      let query =
        if side then Ast.atom "s" [ c; Ast.Var "Y" ]
        else Ast.atom "s" [ Ast.Var "X"; c ]
      in
      Relation.equal (Query.answer_exn tc db ~query) (reference tc db query))

let () =
  Alcotest.run "magic"
    [
      ( "queries",
        [
          Alcotest.test_case "tc bf" `Quick test_tc_bound_free;
          Alcotest.test_case "tc fb" `Quick test_tc_free_bound;
          Alcotest.test_case "tc bb" `Quick test_tc_bound_bound;
          Alcotest.test_case "tc ff" `Quick test_tc_free_free;
          Alcotest.test_case "goal-directed" `Quick test_magic_is_goal_directed;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "constants in rules" `Quick test_constants_in_rules;
        ] );
      ( "validation",
        [
          Alcotest.test_case "rejects negation" `Quick test_rejects_negation;
          Alcotest.test_case "rejects bad queries" `Quick test_rejects_bad_queries;
          Alcotest.test_case "rewrite shape" `Quick test_rewrite_shape;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_magic_matches_bottom_up ] );
    ]
