(* Tests for the relational substrate: symbols, tuples, relations,
   schemas, databases and the fact-file parser. *)

open Relalg

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Symbol -------------------------------------------------------------- *)

let test_symbol_interning () =
  let a1 = Symbol.intern "alpha" in
  let a2 = Symbol.intern "alpha" in
  let b = Symbol.intern "beta" in
  check bool "same symbol" true (Symbol.equal a1 a2);
  check bool "different symbols" false (Symbol.equal a1 b);
  check (Alcotest.string) "name round trip" "alpha" (Symbol.name a1)

let test_symbol_fresh () =
  let f1 = Symbol.fresh "gensym" in
  let f2 = Symbol.fresh "gensym" in
  check bool "fresh are distinct" false (Symbol.equal f1 f2)

let test_symbol_of_int () =
  check bool "of_int = intern of decimal" true
    (Symbol.equal (Symbol.of_int 42) (Symbol.intern "42"))

(* --- Tuple ---------------------------------------------------------------- *)

let test_tuple_basic () =
  let t = Tuple.of_strings [ "a"; "b"; "c" ] in
  check int "arity" 3 (Tuple.arity t);
  check (Alcotest.string) "get" "b" (Symbol.name (Tuple.get t 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Tuple.get")
    (fun () -> ignore (Tuple.get t 3))

let test_tuple_compare () =
  let t1 = Tuple.of_ints [ 1; 2 ] in
  let t2 = Tuple.of_ints [ 1; 2 ] in
  let t3 = Tuple.of_ints [ 1 ] in
  check bool "equal" true (Tuple.equal t1 t2);
  check bool "shorter first" true (Tuple.compare t3 t1 < 0)

let test_tuple_ops () =
  let t = Tuple.of_strings [ "a"; "b"; "c"; "d" ] in
  check bool "project reorders" true
    (Tuple.equal (Tuple.project [ 2; 0 ] t) (Tuple.of_strings [ "c"; "a" ]));
  check bool "append" true
    (Tuple.equal
       (Tuple.append (Tuple.of_strings [ "a" ]) (Tuple.of_strings [ "b" ]))
       (Tuple.of_strings [ "a"; "b" ]));
  check bool "sub" true
    (Tuple.equal (Tuple.sub t 1 2) (Tuple.of_strings [ "b"; "c" ]))

let test_tuple_immutability () =
  let arr = [| Symbol.intern "a" |] in
  let t = Tuple.make arr in
  arr.(0) <- Symbol.intern "b";
  check (Alcotest.string) "copy on make" "a" (Symbol.name (Tuple.get t 0))

(* --- Relation ------------------------------------------------------------- *)

let r_ab = Relation.of_list 2 [ Tuple.of_strings [ "a"; "b" ] ]

let test_relation_set_ops () =
  let r1 =
    Relation.of_list 1 [ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ]
  in
  let r2 = Relation.of_list 1 [ Tuple.of_strings [ "b" ] ] in
  check int "union" 2 (Relation.cardinal (Relation.union r1 r2));
  check int "inter" 1 (Relation.cardinal (Relation.inter r1 r2));
  check int "diff" 1 (Relation.cardinal (Relation.diff r1 r2));
  check bool "subset" true (Relation.subset r2 r1);
  check bool "not subset" false (Relation.subset r1 r2)

let test_relation_arity_mismatch () =
  Alcotest.check_raises "add wrong arity"
    (Invalid_argument "Relation.add: tuple arity 1, relation arity 2")
    (fun () -> ignore (Relation.add (Tuple.of_strings [ "a" ]) r_ab))

let test_relation_product_project () =
  let r1 = Relation.of_list 1 [ Tuple.of_strings [ "a" ]; Tuple.of_strings [ "b" ] ] in
  let r2 = Relation.of_list 1 [ Tuple.of_strings [ "c" ] ] in
  let p = Relation.product r1 r2 in
  check int "product size" 2 (Relation.cardinal p);
  check int "product arity" 2 (Relation.arity p);
  let back = Relation.project [ 0 ] p in
  check bool "project back" true (Relation.equal back r1)

let test_relation_full_complement () =
  let u = List.map Symbol.intern [ "a"; "b"; "c" ] in
  let full = Relation.full u 2 in
  check int "3^2" 9 (Relation.cardinal full);
  let c = Relation.complement u r_ab in
  check int "complement" 8 (Relation.cardinal c);
  check bool "misses ab" false (Relation.mem (Tuple.of_strings [ "a"; "b" ]) c)

let test_relation_full_zero_arity () =
  let u = List.map Symbol.intern [ "a" ] in
  check int "A^0 = {()}" 1 (Relation.cardinal (Relation.full u 0));
  check int "empty universe, arity 0" 1 (Relation.cardinal (Relation.full [] 0));
  check int "empty universe, arity 2" 0 (Relation.cardinal (Relation.full [] 2))

let test_relation_join_positions () =
  let e =
    Relation.of_list 2
      [ Tuple.of_strings [ "a"; "b" ]; Tuple.of_strings [ "b"; "c" ] ]
  in
  let joined = Relation.join_positions [ (1, 0) ] e e in
  (* (a,b) joins (b,c): one result. *)
  check int "path of length 2" 1 (Relation.cardinal joined);
  check int "arity 4" 4 (Relation.arity joined)

(* --- Schema ---------------------------------------------------------------- *)

let test_schema () =
  let s = Schema.of_list [ ("e", 2); ("t", 1) ] in
  check (Alcotest.option Alcotest.int) "arity" (Some 2) (Schema.arity "e" s);
  check (Alcotest.option Alcotest.int) "missing" None (Schema.arity "x" s);
  Alcotest.check_raises "conflict"
    (Invalid_argument "Schema.add: e declared with arity 2, then 3")
    (fun () -> ignore (Schema.add "e" 3 s))

(* --- Database --------------------------------------------------------------- *)

let test_database_basics () =
  let db =
    Database.of_facts ~universe:[ "a"; "b"; "c" ]
      [ ("e", [ "a"; "b" ]); ("e", [ "b"; "c" ]); ("v", [ "a" ]) ]
  in
  check int "universe" 3 (Database.universe_size db);
  check bool "fact" true (Database.mem_fact "e" (Tuple.of_strings [ "a"; "b" ]) db);
  check bool "no fact" false
    (Database.mem_fact "e" (Tuple.of_strings [ "b"; "a" ]) db);
  check int "schema" 2 (List.length (Schema.to_list (Database.schema db)))

let test_database_universe_guard () =
  let db = Database.create_strings [ "a" ] in
  Alcotest.check_raises "outside universe"
    (Invalid_argument
       "Database.add_fact: tuple (z) of p uses a constant outside the universe")
    (fun () -> ignore (Database.add_fact "p" (Tuple.of_strings [ "z" ]) db))

let test_database_merge_restrict () =
  let d1 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d2 = Database.of_facts ~universe:[ "b" ] [ ("q", [ "b" ]); ("p", [ "b" ]) ] in
  let m = Database.merge d1 d2 in
  check int "merged universe" 2 (Database.universe_size m);
  check int "merged p" 2
    (Relation.cardinal (Database.relation_or_empty ~arity:1 "p" m));
  let r = Database.restrict [ "q" ] m in
  check bool "restrict drops p" true (Database.relation "p" r = None);
  check bool "restrict keeps q" true (Database.relation "q" r <> None)

let test_database_parse () =
  let text =
    "% a graph\n#universe isolated.\nedge(a, b).\nedge(b, c).\nmark(a).\n"
  in
  let db = Database.parse_exn text in
  check int "universe includes isolated" 4 (Database.universe_size db);
  check bool "edge" true
    (Database.mem_fact "edge" (Tuple.of_strings [ "a"; "b" ]) db)

let test_database_parse_zero_ary () =
  let db = Database.parse_exn "flag." in
  check bool "zero-ary fact" true (Database.mem_fact "flag" Tuple.empty db)

let test_database_parse_errors () =
  (match Database.parse "edge(a, b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing paren accepted");
  match Database.parse "bad stuff(a)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

let test_database_equal () =
  let d1 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d2 = Database.of_facts ~universe:[ "a" ] [ ("p", [ "a" ]) ] in
  let d3 = Database.of_facts ~universe:[ "a"; "b" ] [ ("p", [ "a" ]) ] in
  check bool "equal" true (Database.equal d1 d2);
  check bool "universe matters" false (Database.equal d1 d3)

(* --- Properties ------------------------------------------------------------- *)

let tuple_gen =
  QCheck.Gen.(
    let* len = int_range 0 3 in
    list_size (return len) (int_range 0 5) >|= Tuple.of_ints)

let relation_of_tuples arity ts =
  List.fold_left
    (fun r t -> if Tuple.arity t = arity then Relation.add t r else r)
    (Relation.empty arity) ts

let arb_pair_of_relations =
  QCheck.make
    QCheck.Gen.(
      let* arity = int_range 0 2 in
      let tg =
        list_size (return arity) (int_range 0 4) >|= Tuple.of_ints
      in
      let* l1 = list_size (int_range 0 12) tg in
      let* l2 = list_size (int_range 0 12) tg in
      return (arity, l1, l2))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" ~count:200 arb_pair_of_relations
    (fun (arity, l1, l2) ->
      let r1 = relation_of_tuples arity l1 in
      let r2 = relation_of_tuples arity l2 in
      Relation.equal (Relation.union r1 r2) (Relation.union r2 r1))

let prop_diff_inter_partition =
  QCheck.Test.make ~name:"diff + inter = left operand" ~count:200
    arb_pair_of_relations (fun (arity, l1, l2) ->
      let r1 = relation_of_tuples arity l1 in
      let r2 = relation_of_tuples arity l2 in
      Relation.equal
        (Relation.union (Relation.diff r1 r2) (Relation.inter r1 r2))
        r1)

let prop_tuple_compare_total =
  QCheck.Test.make ~name:"tuple compare antisymmetric" ~count:200
    (QCheck.make QCheck.Gen.(pair tuple_gen tuple_gen))
    (fun (t1, t2) ->
      let c12 = Tuple.compare t1 t2 and c21 = Tuple.compare t2 t1 in
      (c12 = 0 && c21 = 0 && Tuple.equal t1 t2) || c12 * c21 < 0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_union_commutes; prop_diff_inter_partition; prop_tuple_compare_total ]

let () =
  Alcotest.run "relalg"
    [
      ( "symbol",
        [
          Alcotest.test_case "interning" `Quick test_symbol_interning;
          Alcotest.test_case "fresh" `Quick test_symbol_fresh;
          Alcotest.test_case "of_int" `Quick test_symbol_of_int;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basic" `Quick test_tuple_basic;
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          Alcotest.test_case "ops" `Quick test_tuple_ops;
          Alcotest.test_case "immutability" `Quick test_tuple_immutability;
        ] );
      ( "relation",
        [
          Alcotest.test_case "set ops" `Quick test_relation_set_ops;
          Alcotest.test_case "arity mismatch" `Quick test_relation_arity_mismatch;
          Alcotest.test_case "product/project" `Quick test_relation_product_project;
          Alcotest.test_case "full/complement" `Quick test_relation_full_complement;
          Alcotest.test_case "zero arity" `Quick test_relation_full_zero_arity;
          Alcotest.test_case "join" `Quick test_relation_join_positions;
        ] );
      ("schema", [ Alcotest.test_case "basic" `Quick test_schema ]);
      ( "database",
        [
          Alcotest.test_case "basics" `Quick test_database_basics;
          Alcotest.test_case "universe guard" `Quick test_database_universe_guard;
          Alcotest.test_case "merge/restrict" `Quick test_database_merge_restrict;
          Alcotest.test_case "parse" `Quick test_database_parse;
          Alcotest.test_case "parse zero-ary" `Quick test_database_parse_zero_ary;
          Alcotest.test_case "parse errors" `Quick test_database_parse_errors;
          Alcotest.test_case "equal" `Quick test_database_equal;
        ] );
      ("properties", qcheck_tests);
    ]
