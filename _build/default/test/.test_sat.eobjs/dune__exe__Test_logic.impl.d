test/test_logic.ml: Alcotest Eso Fo Folog Graphlib Ifp List Nnf Relalg
