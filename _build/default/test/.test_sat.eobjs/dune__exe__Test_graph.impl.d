test/test_graph.ml: Alcotest Array Coloring Digraph Generate Graphlib Hamilton List Printf QCheck QCheck_alcotest Relalg Scc String Traverse
