test/test_misc.ml: Alcotest Datalog Evallib Fixpointlib Graphlib List Reductions Relalg
