test/test_stable.mli:
