test/test_eval.ml: Alcotest Datalog Evallib Fitting Graphlib Ground Idb Inflationary List Naive Printf Provenance Relalg Saturate Stratified Theta Unfounded Wellfounded
