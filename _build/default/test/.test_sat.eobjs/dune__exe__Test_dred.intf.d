test/test_dred.mli:
