test/test_fixpoint.ml: Alcotest Brute Datalog Evallib Fixpointlib Graphlib List Printf Relalg Solve
