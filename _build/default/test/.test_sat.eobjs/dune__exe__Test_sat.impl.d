test/test_sat.ml: Alcotest Array Brute Cnf Count Dimacs Enumerate List Printf QCheck QCheck_alcotest Satlib Solver String Workload
