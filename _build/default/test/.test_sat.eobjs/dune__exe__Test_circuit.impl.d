test/test_circuit.ml: Alcotest Array Build Circuit Circuitlib Graphlib List Printf Satlib Succinct Tseitin
