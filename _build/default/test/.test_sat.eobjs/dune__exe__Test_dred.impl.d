test/test_dred.ml: Alcotest Datalog Evallib Graphlib List Printf QCheck QCheck_alcotest Relalg
