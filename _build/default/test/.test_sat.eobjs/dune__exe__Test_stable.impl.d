test/test_stable.ml: Alcotest Datalog Evallib Fixpointlib Graphlib List Printf QCheck QCheck_alcotest Relalg
