test/test_props.ml: Alcotest Datalog Evallib Fixpointlib Graphlib List QCheck QCheck_alcotest Reductions Relalg Testsupport
