test/test_magic.ml: Alcotest Datalog Evallib Graphlib List Printf QCheck QCheck_alcotest Relalg Result String
