test/test_relalg.ml: Alcotest Array Database List QCheck QCheck_alcotest Relalg Relation Schema Symbol Tuple
