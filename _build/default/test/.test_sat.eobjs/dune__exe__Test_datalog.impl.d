test/test_datalog.ml: Alcotest Datalog List Relalg String
