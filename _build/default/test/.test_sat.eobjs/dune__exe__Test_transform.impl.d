test/test_transform.ml: Alcotest Datalog Evallib Fixpointlib Graphlib List Printf QCheck QCheck_alcotest Reductions Relalg Satlib Testsupport
