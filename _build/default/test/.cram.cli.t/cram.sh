  $ negdl check pi1.dl
  $ negdl stratify pi1.dl
  $ negdl stratify tc.dl
  $ negdl eval pi1.dl c4.facts -s inflationary -p t
  $ negdl fixpoints pi1.dl c4.facts --enumerate
  $ negdl fixpoints pi1.dl path4.facts
  $ negdl stable pi1.dl c4.facts
  $ negdl query tc.dl path4.facts "s(v1, Y)"
  $ negdl query pi1.dl c4.facts "t(X)"
  $ negdl why tc.dl path4.facts "s(v0, v2)"
  $ negdl ground pi1.dl path4.facts
  $ negdl check missing.dl
  $ negdl sat inst.cnf
  $ negdl sat2fp inst.cnf -o inst
  $ negdl fixpoints inst.dl inst.facts | head -6
  $ negdl eval pi1.dl c4.facts -s kripke-kleene
  $ negdl eval pi1.dl c4.facts -s well-founded
