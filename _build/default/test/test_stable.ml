(* Tests for the stable-model extension and the kernel correspondence.

   The paper's fixpoints of Theta are the *supported* models of the
   program; stable models (Gelfond-Lifschitz) are the supported models
   without self-supporting loops.  And on pi_1, whose only positive
   subgoals are EDB atoms, the two notions coincide and both equal the
   kernels of the reversed graph — tying Section 2's census to classic
   combinatorics. *)

module Solve = Fixpointlib.Solve
module Stable = Fixpointlib.Stable
module Ground = Evallib.Ground
module Idb = Evallib.Idb
module Parser = Datalog.Parser
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph
module Kernel = Graphlib.Kernel

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let pi1 = Parser.parse_program_exn "t(X) :- e(Y, X), !t(Y)."

let db_of g = Digraph.to_database g

(* --- supported vs stable -------------------------------------------------- *)

let test_self_support_separates () =
  (* p :- p (grounded over one constant): fixpoints {} and {p}; only {} is
     stable. *)
  let p = Parser.parse_program_exn "p(X) :- p(X)." in
  let db = Relalg.Database.create_strings [ "a" ] in
  let solver = Solve.prepare p db in
  check int "two supported models" 2 (Solve.count solver);
  check int "one stable model" 1 (Stable.count_stable solver);
  match Stable.stable_models solver with
  | [ s ] -> check bool "empty" true (Idb.is_empty s)
  | _ -> Alcotest.fail "expected exactly the empty stable model"

let test_toggle_has_no_stable_model () =
  let toggle = Parser.parse_program_exn "t(Z) :- !t(W)." in
  let db = Relalg.Database.create_strings [ "a"; "b" ] in
  check bool "no stable model" false
    (Stable.has_stable_model (Solve.prepare toggle db))

let test_even_loop_two_stable_models () =
  (* a <- not b; b <- not a: the classic two answer sets. *)
  let p = Parser.parse_program_exn "a(X) :- m(X), !b(X). b(X) :- m(X), !a(X)." in
  let db = Relalg.Database.of_facts ~universe:[ "k" ] [ ("m", [ "k" ]) ] in
  let solver = Solve.prepare p db in
  check int "two stable" 2 (Stable.count_stable solver);
  check int "two supported" 2 (Solve.count solver)

let test_stable_subset_of_supported () =
  (* On pi_1, supported = stable (positive subgoals are EDB only). *)
  List.iter
    (fun g ->
      let solver = Solve.prepare pi1 (db_of g) in
      check int "stable = supported on pi_1" (Solve.count solver)
        (Stable.count_stable solver))
    [ Generate.path 5; Generate.cycle 4; Generate.cycle 5;
      Generate.disjoint_copies 2 (Generate.cycle 4) ]

let test_reduct_lfp_properties () =
  (* The reduct lfp of the empty set is the whole inflationary limit of the
     negation-erased program; on a positive program, stability of the naive
     lfp. *)
  let tc = Parser.parse_program_exn "s(X, Y) :- e(X, Y). s(X, Y) :- e(X, Z), s(Z, Y)." in
  let db = db_of (Generate.random ~seed:5 ~n:4 ~p:0.4) in
  let g = Ground.ground tc db in
  let lfp = Evallib.Naive.least_fixpoint tc db in
  check bool "naive lfp is stable" true (Stable.is_stable g lfp);
  check bool "nothing else" true
    (Stable.count_stable (Solve.prepare tc db) = 1)

let test_win_move_stable_models () =
  (* Path game: unique stable model = the well-founded total model.
     2-cycle: two stable models, mirroring the two fixpoints. *)
  let win = Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." in
  let path = db_of (Generate.path 4) in
  let solver = Solve.prepare win path in
  check int "path: unique stable" 1 (Stable.count_stable solver);
  (match Stable.stable_models solver with
  | [ s ] ->
    let wf = Evallib.Wellfounded.eval win path in
    check bool "equals well-founded" true
      (Idb.equal s wf.Evallib.Wellfounded.true_facts)
  | _ -> Alcotest.fail "expected one stable model");
  let loop = db_of (Digraph.make 2 [ (0, 1); (1, 0) ]) in
  check int "2-cycle: two stable" 2 (Stable.count_stable (Solve.prepare win loop))

let test_wellfounded_brackets_stable () =
  (* Every stable model contains the well-founded true facts and sits
     inside the possible facts. *)
  let programs =
    [
      Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y).";
      pi1;
      Parser.parse_program_exn "p(X) :- e(X, Y), !q(Y). q(X) :- e(Y, X), !p(X).";
    ]
  in
  List.iter
    (fun p ->
      for seed = 1 to 5 do
        let db = db_of (Generate.random ~seed:(60 + seed) ~n:4 ~p:0.35) in
        let wf = Evallib.Wellfounded.eval p db in
        List.iter
          (fun s ->
            check bool "wf true inside stable" true
              (Idb.subset wf.Evallib.Wellfounded.true_facts s);
            check bool "stable inside wf possible" true
              (Idb.subset s wf.Evallib.Wellfounded.possible))
          (Stable.stable_models (Solve.prepare p db))
      done)
    programs

(* --- kernels ---------------------------------------------------------------- *)

let test_kernel_basics () =
  (* On the path 0 -> 1 -> 2 the unique kernel is {0, 2}. *)
  let g = Generate.path 3 in
  check bool "is kernel" true (Kernel.is_kernel g [ 0; 2 ]);
  check bool "not independent" false (Kernel.is_kernel g [ 0; 1 ]);
  check bool "not absorbing" false (Kernel.is_kernel g [ 0 ]);
  check int "unique" 1 (Kernel.count g)

let test_kernel_census_on_cycles () =
  for n = 3 to 8 do
    let expected = if n mod 2 = 0 then 2 else 0 in
    check int (Printf.sprintf "C_%d kernels" n) expected
      (Kernel.count (Generate.cycle n))
  done

let test_fixpoints_are_reversed_kernels () =
  (* #fixpoints of pi_1 on G = #kernels of the reversed graph — and the
     fixpoints are exactly the complements of those kernels. *)
  let graphs =
    [
      Generate.path 4;
      Generate.cycle 4;
      Generate.cycle 5;
      Generate.star 4;
      Generate.random ~seed:71 ~n:5 ~p:0.3;
      Generate.random ~seed:72 ~n:5 ~p:0.5;
      Digraph.make 3 [ (0, 0); (0, 1); (1, 2) ];
    ]
  in
  List.iter
    (fun g ->
      let solver = Solve.prepare pi1 (db_of g) in
      let fixpoint_count = Solve.count solver in
      let kernel_count = Kernel.count (Digraph.reverse g) in
      check int "census matches" kernel_count fixpoint_count;
      (* Contents: complement of each fixpoint's T is a reversed kernel. *)
      List.iter
        (fun fp ->
          let t = Idb.get fp "t" in
          let complement =
            List.filter
              (fun v ->
                not
                  (Relalg.Relation.mem
                     (Relalg.Tuple.singleton (Digraph.vertex_symbol v))
                     t))
              (Digraph.vertices g)
          in
          check bool "complement is a reversed kernel" true
            (Kernel.is_kernel (Digraph.reverse g) complement))
        (Solve.enumerate solver))
    graphs

let prop_kernel_correspondence =
  QCheck.Test.make ~name:"pi_1 fixpoints = reversed kernels (random graphs)"
    ~count:60
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 5) (int_range 0 10000))
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed))
    (fun (n, seed) ->
      let g = Generate.random ~seed ~n ~p:0.4 in
      Solve.count (Solve.prepare pi1 (db_of g))
      = Kernel.count (Digraph.reverse g))

let prop_stable_subset_supported =
  QCheck.Test.make ~name:"stable models are supported models" ~count:40
    (QCheck.make
       QCheck.Gen.(pair (int_range 2 4) (int_range 0 10000))
       ~print:(fun (n, seed) -> Printf.sprintf "n=%d seed=%d" n seed))
    (fun (n, seed) ->
      let g = Generate.random ~seed ~n ~p:0.4 in
      let win = Parser.parse_program_exn "win(X) :- e(X, Y), !win(Y)." in
      let solver = Solve.prepare win (db_of g) in
      let supported = Solve.enumerate solver in
      List.for_all
        (fun s -> List.exists (Idb.equal s) supported)
        (Stable.stable_models solver))

let () =
  Alcotest.run "stable"
    [
      ( "stable-models",
        [
          Alcotest.test_case "self-support separates" `Quick
            test_self_support_separates;
          Alcotest.test_case "toggle has none" `Quick
            test_toggle_has_no_stable_model;
          Alcotest.test_case "even loop" `Quick test_even_loop_two_stable_models;
          Alcotest.test_case "pi_1: stable = supported" `Quick
            test_stable_subset_of_supported;
          Alcotest.test_case "reduct lfp" `Quick test_reduct_lfp_properties;
          Alcotest.test_case "win-move" `Quick test_win_move_stable_models;
          Alcotest.test_case "well-founded brackets" `Quick
            test_wellfounded_brackets_stable;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "basics" `Quick test_kernel_basics;
          Alcotest.test_case "cycle census" `Quick test_kernel_census_on_cycles;
          Alcotest.test_case "fixpoints = reversed kernels" `Quick
            test_fixpoints_are_reversed_kernels;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_kernel_correspondence; prop_stable_subset_supported ] );
    ]
