(* Tests for the circuit substrate: the triple encoding, the builder
   combinators, the Tseitin translation, and succinct graphs. *)

open Circuitlib

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Circuit ---------------------------------------------------------------- *)

let and_circuit =
  Circuit.create [| Circuit.In; Circuit.In; Circuit.And (0, 1) |]

let test_eval_basic_gates () =
  check bool "and tt" true (Circuit.eval and_circuit [| true; true |]);
  check bool "and tf" false (Circuit.eval and_circuit [| true; false |]);
  let or_c = Circuit.create [| Circuit.In; Circuit.In; Circuit.Or (0, 1) |] in
  check bool "or ft" true (Circuit.eval or_c [| false; true |]);
  let not_c = Circuit.create [| Circuit.In; Circuit.Not 0 |] in
  check bool "not f" true (Circuit.eval not_c [| false |])

let test_create_validates_wiring () =
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Circuit.create: gate 0 reads gate 1 (must be < 0)")
    (fun () -> ignore (Circuit.create [| Circuit.Not 1; Circuit.In |]))

let test_input_count_checked () =
  Alcotest.check_raises "wrong inputs"
    (Invalid_argument "Circuit.eval_all: expected 2 inputs, got 1") (fun () ->
      ignore (Circuit.eval and_circuit [| true |]))

let test_triples () =
  match Circuit.triples and_circuit with
  | [ ("IN", 0, 0); ("IN", 0, 0); ("AND", 0, 1) ] -> ()
  | _ -> Alcotest.fail "unexpected triples"

(* --- Build ------------------------------------------------------------------- *)

let test_build_xor () =
  let ctx = Build.create () in
  let a = Build.input ctx in
  let b = Build.input ctx in
  let c = Build.finish ctx (Build.bxor ctx a b) in
  List.iter
    (fun (x, y) ->
      check bool
        (Printf.sprintf "xor %b %b" x y)
        (x <> y)
        (Circuit.eval c [| x; y |]))
    [ (true, true); (true, false); (false, true); (false, false) ]

let test_build_iff_constants () =
  let ctx = Build.create () in
  let a = Build.input ctx in
  let b = Build.input ctx in
  let c = Build.finish ctx (Build.biff ctx a b) in
  check bool "iff tt" true (Circuit.eval c [| true; true |]);
  check bool "iff tf" false (Circuit.eval c [| true; false |]);
  let ctx = Build.create () in
  let _ = Build.input ctx in
  let t = Build.finish ctx (Build.btrue ctx) in
  check bool "const true" true (Circuit.eval t [| false |]);
  let ctx = Build.create () in
  let _ = Build.input ctx in
  let f = Build.finish ctx (Build.bfalse ctx) in
  check bool "const false" false (Circuit.eval f [| true |])

let test_build_lists () =
  let ctx = Build.create () in
  let inputs = Build.inputs ctx 3 in
  let c = Build.finish ctx (Build.band_list ctx inputs) in
  check bool "all true" true (Circuit.eval c [| true; true; true |]);
  check bool "one false" false (Circuit.eval c [| true; false; true |])

let test_btrue_requires_gate () =
  let ctx = Build.create () in
  Alcotest.check_raises "no gates"
    (Invalid_argument "Build.btrue: the circuit encoding needs at least one gate")
    (fun () -> ignore (Build.btrue ctx))

(* --- Tseitin ---------------------------------------------------------------- *)

let test_tseitin_agrees_with_eval () =
  (* For every input vector, force the inputs in the CNF and compare the
     output variable against direct evaluation. *)
  let ctx = Build.create () in
  let a = Build.input ctx in
  let b = Build.input ctx in
  let c = Build.input ctx in
  let w = Build.bor ctx (Build.band ctx a (Build.bnot ctx b)) (Build.bxor ctx b c) in
  let circuit = Build.finish ctx w in
  let cnf, input_vars, out = Tseitin.to_cnf circuit in
  for mask = 0 to 7 do
    let inputs = Array.init 3 (fun i -> (mask lsr i) land 1 = 1) in
    let expected = Circuit.eval circuit inputs in
    let units =
      Array.to_list (Array.mapi (fun i v -> if inputs.(i) then v else -v) input_vars)
    in
    let result =
      Satlib.Solver.solve_with_units cnf ((if expected then out else -out) :: units)
    in
    check bool
      (Printf.sprintf "mask %d" mask)
      true
      (match result with Satlib.Solver.Sat _ -> true | Satlib.Solver.Unsat -> false);
    (* And the opposite output value must be impossible. *)
    let opposite =
      Satlib.Solver.solve_with_units cnf ((if expected then -out else out) :: units)
    in
    check bool
      (Printf.sprintf "mask %d opposite" mask)
      true
      (match opposite with Satlib.Solver.Unsat -> true | _ -> false)
  done

let test_tseitin_satisfiable_output () =
  let ctx = Build.create () in
  let a = Build.input ctx in
  let c1 = Build.finish ctx (Build.band ctx a (Build.bnot ctx a)) in
  check bool "contradictory circuit" false (Tseitin.satisfiable_output c1);
  let ctx = Build.create () in
  let a = Build.input ctx in
  check bool "identity" true (Tseitin.satisfiable_output (Build.finish ctx a))

let test_tseitin_equivalence () =
  (* x xor y built two ways. *)
  let build1 () =
    let ctx = Build.create () in
    let a = Build.input ctx in
    let b = Build.input ctx in
    Build.finish ctx (Build.bxor ctx a b)
  in
  let build2 () =
    let ctx = Build.create () in
    let a = Build.input ctx in
    let b = Build.input ctx in
    (* (a \/ b) /\ ~(a /\ b) *)
    Build.finish ctx
      (Build.band ctx (Build.bor ctx a b) (Build.bnot ctx (Build.band ctx a b)))
  in
  check bool "equivalent" true (Tseitin.equivalent (build1 ()) (build2 ()));
  let ctx = Build.create () in
  let a = Build.input ctx in
  let _b = Build.input ctx in
  let ident = Build.finish ctx a in
  check bool "not equivalent" false (Tseitin.equivalent (build1 ()) ident)

(* --- Succinct graphs ---------------------------------------------------------- *)

let test_succinct_hypercube () =
  let sg = Succinct.hypercube 3 in
  let g = Succinct.expand sg in
  check int "8 nodes" 8 (Graphlib.Digraph.vertex_count g);
  (* Each node has 3 neighbours, both directions present: 24 edges. *)
  check int "24 directed edges" 24 (Graphlib.Digraph.edge_count g);
  check bool "000-001" true (Succinct.has_edge sg 0 1);
  check bool "000-011 not" false (Succinct.has_edge sg 0 3)

let test_succinct_complete_empty () =
  let c = Succinct.expand (Succinct.complete 2) in
  check int "complete edges" 12 (Graphlib.Digraph.edge_count c);
  let e = Succinct.expand (Succinct.empty 2) in
  check int "no edges" 0 (Graphlib.Digraph.edge_count e)

let test_succinct_of_explicit () =
  List.iter
    (fun g ->
      let sg = Succinct.of_explicit g in
      let expanded = Succinct.expand sg in
      (* The expansion pads to a power of two with isolated vertices; the
         original edges must be exactly preserved. *)
      List.iter
        (fun (u, v) ->
          check bool "edge preserved" true (Graphlib.Digraph.has_edge expanded u v))
        (Graphlib.Digraph.edges g);
      check int "no extra edges" (Graphlib.Digraph.edge_count g)
        (Graphlib.Digraph.edge_count expanded))
    [
      Graphlib.Generate.path 3;
      Graphlib.Generate.cycle 5;
      Graphlib.Generate.complete 3;
      Graphlib.Generate.random ~seed:4 ~n:6 ~p:0.3;
    ]

let test_succinct_input_validation () =
  let ctx = Build.create () in
  let a = Build.input ctx in
  let c = Build.finish ctx a in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Succinct.make: circuit has 1 inputs, expected 4")
    (fun () -> ignore (Succinct.make ~bits:2 c))

let () =
  Alcotest.run "circuit"
    [
      ( "circuit",
        [
          Alcotest.test_case "gates" `Quick test_eval_basic_gates;
          Alcotest.test_case "wiring validation" `Quick test_create_validates_wiring;
          Alcotest.test_case "input count" `Quick test_input_count_checked;
          Alcotest.test_case "triples" `Quick test_triples;
        ] );
      ( "build",
        [
          Alcotest.test_case "xor" `Quick test_build_xor;
          Alcotest.test_case "iff/constants" `Quick test_build_iff_constants;
          Alcotest.test_case "lists" `Quick test_build_lists;
          Alcotest.test_case "btrue guard" `Quick test_btrue_requires_gate;
        ] );
      ( "tseitin",
        [
          Alcotest.test_case "agrees with eval" `Quick test_tseitin_agrees_with_eval;
          Alcotest.test_case "satisfiable output" `Quick
            test_tseitin_satisfiable_output;
          Alcotest.test_case "equivalence" `Quick test_tseitin_equivalence;
        ] );
      ( "succinct",
        [
          Alcotest.test_case "hypercube" `Quick test_succinct_hypercube;
          Alcotest.test_case "complete/empty" `Quick test_succinct_complete_empty;
          Alcotest.test_case "of explicit" `Quick test_succinct_of_explicit;
          Alcotest.test_case "validation" `Quick test_succinct_input_validation;
        ] );
    ]
