(* Tests for the logic substrate: first-order evaluation, normal forms,
   existential second-order model checking, and FO+IFP. *)

open Folog
open Fo
module Database = Relalg.Database
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Generate = Graphlib.Generate
module Digraph = Graphlib.Digraph

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let path3 = Digraph.to_database (Generate.path 3)

(* --- Fo evaluation --------------------------------------------------------- *)

let test_eval_atoms () =
  check bool "edge holds" true
    (holds path3 (atom "e" [ const "v0"; const "v1" ]));
  check bool "edge absent" false
    (holds path3 (atom "e" [ const "v1"; const "v0" ]))

let test_eval_quantifiers () =
  (* Path 0 -> 1 -> 2: some vertex has no successor; not all have one. *)
  check bool "exists sink" true
    (holds path3
       (exists [ "x" ] (forall [ "y" ] (Not (atom "e" [ var "x"; var "y" ])))));
  check bool "not all have successors" false
    (holds path3
       (forall [ "x" ] (exists [ "y" ] (atom "e" [ var "x"; var "y" ]))))

let test_eval_cycle_total () =
  let c3 = Digraph.to_database (Generate.cycle 3) in
  check bool "cycle: all have successors" true
    (holds c3 (forall [ "x" ] (exists [ "y" ] (atom "e" [ var "x"; var "y" ]))))

let test_eval_connectives () =
  check bool "implies" true (holds path3 (Implies (False, False)));
  check bool "iff" true (holds path3 (Iff (True, True)));
  check bool "not iff" false (holds path3 (Iff (True, False)))

let test_eval_equality () =
  check bool "same" true (holds path3 (Equal (const "v0", const "v0")));
  check bool "different" false (holds path3 (Equal (const "v0", const "v1")))

let test_eval_extra_relations () =
  let s = Relation.of_list 1 [ Tuple.of_strings [ "v1" ] ] in
  check bool "extra relation read" true
    (holds ~extra:[ ("s", s) ] path3 (atom "s" [ const "v1" ]));
  check bool "extra shadows db" true
    (holds
       ~extra:[ ("e", Relation.empty 2) ]
       path3
       (Not (atom "e" [ const "v0"; const "v1" ])))

let test_eval_unbound_variable () =
  Alcotest.check_raises "unbound" (Invalid_argument "Fo.eval: unbound variable x")
    (fun () -> ignore (holds path3 (atom "e" [ var "x"; var "x" ])))

let test_defined_relation () =
  (* Successors of v0. *)
  let r =
    defined_relation path3 ~vars:[ "y" ] (atom "e" [ const "v0"; var "y" ])
  in
  check bool "just v1" true
    (Relation.equal r (Relation.of_list 1 [ Tuple.of_strings [ "v1" ] ]))

let test_free_variables () =
  let f = exists [ "y" ] (And (atom "e" [ var "x"; var "y" ], atom "p" [ var "z" ])) in
  Alcotest.(check (list string)) "free" [ "x"; "z" ] (free_variables f)

(* --- Normal forms ------------------------------------------------------------ *)

let graphs_for_props =
  [
    Digraph.to_database (Generate.path 4);
    Digraph.to_database (Generate.cycle 3);
    Digraph.to_database (Generate.random ~seed:1 ~n:4 ~p:0.4);
  ]

let sample_formulas =
  [
    Implies (atom "e" [ var "x"; var "y" ], atom "e" [ var "y"; var "x" ]);
    Iff (atom "e" [ var "x"; var "x" ], Not (atom "e" [ var "x"; var "y" ]));
    Not (And (atom "e" [ var "x"; var "y" ], Not (atom "e" [ var "y"; var "x" ])));
    Or (Equal (var "x", var "y"), Not (Equal (var "x", var "y")));
  ]

let close f = forall (free_variables f) f

let test_nnf_preserves_semantics () =
  List.iter
    (fun f ->
      let closed = close f in
      List.iter
        (fun db ->
          check bool "nnf equivalent" (holds db closed) (holds db (Nnf.nnf closed)))
        graphs_for_props)
    sample_formulas

let test_nnf_shape () =
  (* After NNF, negation applies only to atoms/equalities. *)
  let rec ok = function
    | True | False | Atom _ | Equal _ -> true
    | Not (Atom _) | Not (Equal _) -> true
    | Not _ -> false
    | And (f, g) | Or (f, g) -> ok f && ok g
    | Implies _ | Iff _ -> false
    | Exists (_, f) | Forall (_, f) -> ok f
  in
  List.iter
    (fun f -> check bool "nnf shape" true (ok (Nnf.nnf (close f))))
    sample_formulas

let test_prenex () =
  let f =
    And
      ( forall [ "x" ] (atom "p" [ var "x" ]),
        exists [ "x" ] (atom "q" [ var "x" ]) )
  in
  let prefix, matrix = Nnf.prenex f in
  check int "two quantifiers" 2 (List.length prefix);
  check bool "matrix quantifier-free" true
    (match matrix with And _ -> true | _ -> false);
  (* Semantics preserved. *)
  let reassemble =
    List.fold_right
      (fun q acc ->
        match q with
        | Nnf.Q_forall x -> Forall (x, acc)
        | Nnf.Q_exists x -> Exists (x, acc))
      prefix matrix
  in
  let db =
    Database.of_facts ~universe:[ "a"; "b" ] [ ("p", [ "a" ]); ("q", [ "b" ]) ]
  in
  check bool "prenex equivalent" (holds db f) (holds db reassemble)

let test_prenex_renames_apart () =
  (* Both quantifiers bind "x"; prenex must keep them distinct. *)
  let f =
    And
      ( exists [ "x" ] (atom "p" [ var "x" ]),
        exists [ "x" ] (atom "q" [ var "x" ]) )
  in
  let prefix, _ = Nnf.prenex f in
  let names =
    List.map (function Nnf.Q_forall x | Nnf.Q_exists x -> x) prefix
  in
  check int "distinct names" 2 (List.length (List.sort_uniq compare names))

let test_dnf_equivalence () =
  List.iter
    (fun f ->
      let d = Nnf.dnf_formula f in
      List.iter
        (fun db ->
          check bool "dnf equivalent" (holds db (close f)) (holds db (close d)))
        graphs_for_props)
    sample_formulas

let test_dnf_drops_contradictions () =
  let f = And (atom "p" [ var "x" ], Not (atom "p" [ var "x" ])) in
  check int "empty dnf" 0 (List.length (Nnf.dnf f))

let test_dnf_rejects_quantifiers () =
  Alcotest.check_raises "quantified"
    (Invalid_argument "Nnf.dnf: formula is not quantifier-free") (fun () ->
      ignore (Nnf.dnf (exists [ "x" ] (atom "p" [ var "x" ]))))

(* --- ESO ---------------------------------------------------------------------- *)

let two_coloring_sentence =
  (* exists S: every edge crosses S / not-S — i.e. the graph is 2-colorable. *)
  {
    Eso.second_order = [ ("S", 1) ];
    matrix =
      forall [ "x"; "y" ]
        (Implies
           ( atom "e" [ var "x"; var "y" ],
             Or
               ( And (atom "S" [ var "x" ], Not (atom "S" [ var "y" ])),
                 And (Not (atom "S" [ var "x" ]), atom "S" [ var "y" ]) ) ));
  }

let test_eso_two_coloring () =
  List.iter
    (fun (g, expected) ->
      check bool "2-colorability" expected
        (Eso.holds (Digraph.to_database g) two_coloring_sentence))
    [
      (Generate.cycle 4, true);
      (Generate.cycle 3, false);
      (Generate.path 4, true);
      (Generate.complete 3, false);
    ]

let test_eso_witness () =
  match Eso.witness (Digraph.to_database (Generate.cycle 4)) two_coloring_sentence with
  | None -> Alcotest.fail "C4 is 2-colorable"
  | Some [ ("S", s) ] -> check int "one side has 2" 2 (Relation.cardinal s)
  | Some _ -> Alcotest.fail "unexpected witness shape"

let test_eso_count_witnesses () =
  (* On C4 the proper 2-colorings are the two sides: S = evens or odds. *)
  check int "two witnesses" 2
    (Eso.count_witnesses (Digraph.to_database (Generate.cycle 4))
       two_coloring_sentence)

let test_snf_roundtrip () =
  let snf = Eso.skolem_normal_form_exn two_coloring_sentence in
  check int "no existentials" 0 (List.length snf.Eso.existentials);
  check int "two universals" 2 (List.length snf.Eso.universals);
  List.iter
    (fun g ->
      let db = Digraph.to_database g in
      check bool "snf equivalent" (Eso.holds db two_coloring_sentence)
        (Eso.snf_holds db snf))
    [ Generate.cycle 3; Generate.cycle 4; Generate.path 3 ]

let test_snf_rejects_exists_forall () =
  let bad =
    {
      Eso.second_order = [];
      matrix = exists [ "y" ] (forall [ "x" ] (atom "e" [ var "x"; var "y" ]));
    }
  in
  match Eso.skolem_normal_form bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "exists-forall accepted"

(* --- IFP ------------------------------------------------------------------------ *)

let tc_operator =
  (* phi(v1, v2, S) = e(v1, v2) \/ exists z (e(v1, z) /\ S(z, v2)) *)
  {
    Ifp.pred = "s";
    vars = [ "V1"; "V2" ];
    body =
      Or
        ( atom "e" [ var "V1"; var "V2" ],
          exists [ "z" ]
            (And (atom "e" [ var "V1"; var "z" ], atom "s" [ var "z"; var "V2" ]))
        );
  }

let tc_relation g =
  let closure = Graphlib.Traverse.transitive_closure g in
  List.fold_left
    (fun r (u, v) ->
      Relation.add
        (Tuple.pair (Digraph.vertex_symbol u) (Digraph.vertex_symbol v))
        r)
    (Relation.empty 2) (Digraph.edges closure)

let test_ifp_transitive_closure () =
  List.iter
    (fun g ->
      let db = Digraph.to_database g in
      check bool "ifp = warshall" true
        (Relation.equal (Ifp.inflationary_fixpoint db tc_operator) (tc_relation g)))
    [ Generate.path 4; Generate.cycle 3; Generate.random ~seed:2 ~n:5 ~p:0.3 ]

let test_ifp_stages_increase () =
  let db = Digraph.to_database (Generate.path 5) in
  let stages = Ifp.stages db [ tc_operator ] in
  (* Path of length 4: closure completes in 3 rounds of doubling-free
     iteration plus the final check; stages are strictly increasing. *)
  let sizes =
    List.map (fun v -> Relation.cardinal (List.assoc "s" v)) stages
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check bool "strictly increasing" true (increasing (List.tl sizes))

let test_ifp_nonmonotone_operator () =
  (* phi(x, S) = "S is empty": one stage adds everything, then stop. *)
  let op =
    {
      Ifp.pred = "s";
      vars = [ "V1" ];
      body = forall [ "z" ] (Not (atom "s" [ var "z" ]));
    }
  in
  let db = Database.create_strings [ "a"; "b" ] in
  let result = Ifp.inflationary_fixpoint db op in
  check int "saturates" 2 (Relation.cardinal result)

let test_ifp_simultaneous () =
  (* Even/odd distance from vertex 0 on a path, via mutual induction. *)
  let even_op =
    {
      Ifp.pred = "even";
      vars = [ "V1" ];
      body =
        Or
          ( Equal (var "V1", const "v0"),
            exists [ "z" ]
              (And (atom "odd" [ var "z" ], atom "e" [ var "z"; var "V1" ])) );
    }
  in
  let odd_op =
    {
      Ifp.pred = "odd";
      vars = [ "V1" ];
      body =
        exists [ "z" ]
          (And (atom "even" [ var "z" ], atom "e" [ var "z"; var "V1" ]));
    }
  in
  let db = Digraph.to_database (Generate.path 4) in
  let result = Ifp.simultaneous db [ even_op; odd_op ] in
  let evens = List.assoc "even" result in
  check bool "v0 and v2 even" true
    (Relation.equal evens
       (Relation.of_list 1 [ Tuple.of_strings [ "v0" ]; Tuple.of_strings [ "v2" ] ]))

let test_pfp_monotone_reaches_lfp () =
  (* On a monotone operator, PFP = IFP = least fixpoint. *)
  let db = Digraph.to_database (Generate.path 4) in
  match Ifp.partial_fixpoint db tc_operator with
  | Some r ->
    check bool "pfp = ifp" true
      (Relation.equal r (Ifp.inflationary_fixpoint db tc_operator))
  | None -> Alcotest.fail "monotone operator must converge"

let test_pfp_oscillation_is_undefined () =
  (* The toggle operator phi(x, S) = "S misses something" oscillates
     between empty and everything: PFP undefined, IFP total. *)
  let op =
    {
      Ifp.pred = "s";
      vars = [ "V1" ];
      body = exists [ "z" ] (Not (atom "s" [ var "z" ]));
    }
  in
  let db = Database.create_strings [ "a"; "b" ] in
  check bool "pfp undefined" true (Ifp.partial_fixpoint db op = None);
  check int "ifp total" 2 (Relation.cardinal (Ifp.inflationary_fixpoint db op))

let test_pfp_non_monotone_convergent () =
  (* phi(x, S) = "x has a successor outside S" on a path: converges to a
     proper fixpoint even though non-monotone (the pi_1 pattern, source
     side). *)
  let op =
    {
      Ifp.pred = "s";
      vars = [ "V1" ];
      body =
        exists [ "z" ]
          (And (atom "e" [ var "V1"; var "z" ], Not (atom "s" [ var "z" ])));
    }
  in
  let db = Digraph.to_database (Generate.path 4) in
  match Ifp.partial_fixpoint db op with
  | Some r ->
    (* Fixpoint: vertices with a successor outside S; on 0->1->2->3 the
       winning positions {0, 2} (this is the win-move fixpoint). *)
    check bool "pfp = {v0, v2}" true
      (Relation.equal r
         (Relation.of_list 1
            [ Tuple.of_strings [ "v0" ]; Tuple.of_strings [ "v2" ] ]))
  | None -> Alcotest.fail "expected convergence"

let () =
  Alcotest.run "logic"
    [
      ( "fo",
        [
          Alcotest.test_case "atoms" `Quick test_eval_atoms;
          Alcotest.test_case "quantifiers" `Quick test_eval_quantifiers;
          Alcotest.test_case "cycle total" `Quick test_eval_cycle_total;
          Alcotest.test_case "connectives" `Quick test_eval_connectives;
          Alcotest.test_case "equality" `Quick test_eval_equality;
          Alcotest.test_case "extra relations" `Quick test_eval_extra_relations;
          Alcotest.test_case "unbound variable" `Quick test_eval_unbound_variable;
          Alcotest.test_case "defined relation" `Quick test_defined_relation;
          Alcotest.test_case "free variables" `Quick test_free_variables;
        ] );
      ( "nnf",
        [
          Alcotest.test_case "semantics" `Quick test_nnf_preserves_semantics;
          Alcotest.test_case "shape" `Quick test_nnf_shape;
          Alcotest.test_case "prenex" `Quick test_prenex;
          Alcotest.test_case "prenex renames" `Quick test_prenex_renames_apart;
          Alcotest.test_case "dnf equivalence" `Quick test_dnf_equivalence;
          Alcotest.test_case "dnf contradictions" `Quick test_dnf_drops_contradictions;
          Alcotest.test_case "dnf rejects quantifiers" `Quick
            test_dnf_rejects_quantifiers;
        ] );
      ( "eso",
        [
          Alcotest.test_case "two-coloring" `Quick test_eso_two_coloring;
          Alcotest.test_case "witness" `Quick test_eso_witness;
          Alcotest.test_case "count witnesses" `Quick test_eso_count_witnesses;
          Alcotest.test_case "snf roundtrip" `Quick test_snf_roundtrip;
          Alcotest.test_case "snf rejects" `Quick test_snf_rejects_exists_forall;
        ] );
      ( "ifp",
        [
          Alcotest.test_case "transitive closure" `Quick test_ifp_transitive_closure;
          Alcotest.test_case "stages increase" `Quick test_ifp_stages_increase;
          Alcotest.test_case "nonmonotone" `Quick test_ifp_nonmonotone_operator;
          Alcotest.test_case "simultaneous" `Quick test_ifp_simultaneous;
          Alcotest.test_case "pfp monotone" `Quick test_pfp_monotone_reaches_lfp;
          Alcotest.test_case "pfp oscillation" `Quick
            test_pfp_oscillation_is_undefined;
          Alcotest.test_case "pfp non-monotone" `Quick
            test_pfp_non_monotone_convergent;
        ] );
    ]
