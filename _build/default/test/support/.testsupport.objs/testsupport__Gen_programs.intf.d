test/support/gen_programs.mli: Datalog QCheck Relalg
