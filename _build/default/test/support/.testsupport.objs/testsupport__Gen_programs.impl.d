test/support/gen_programs.ml: Datalog Graphlib List Printf QCheck Relalg
