module Ast = Datalog.Ast

let variables = [ "X"; "Y"; "Z" ]

let preds = [ ("p", 1); ("q", 1); ("r", 2); ("e", 2); ("u", 1) ]

let idb_preds = [ ("p", 1); ("q", 1); ("r", 2) ]

let gen_term = QCheck.Gen.(map (fun v -> Ast.Var v) (oneofl variables))

let gen_atom_of preds =
  QCheck.Gen.(
    let* name, arity = oneofl preds in
    let* args = list_size (return arity) gen_term in
    return (Ast.atom name args))

let gen_literal =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun a -> Ast.Pos a) (gen_atom_of preds));
        (3, map (fun a -> Ast.Neg a) (gen_atom_of preds));
        ( 1,
          let* v1 = oneofl variables in
          let* v2 = oneofl variables in
          let* eq = bool in
          return
            (if eq then Ast.Eq (Ast.Var v1, Ast.Var v2)
             else Ast.Neq (Ast.Var v1, Ast.Var v2)) );
      ])

let gen_rule =
  QCheck.Gen.(
    let* head = gen_atom_of idb_preds in
    let* body_len = int_range 1 3 in
    let* body = list_size (return body_len) gen_literal in
    return (Ast.rule head body))

let gen_program =
  QCheck.Gen.(
    let* n = int_range 1 4 in
    let* rules = list_size (return n) gen_rule in
    return (Ast.program rules))

let gen_database =
  QCheck.Gen.(
    let* n = int_range 2 4 in
    let* seed = int_range 0 10000 in
    let g = Graphlib.Generate.random ~seed ~n ~p:0.35 in
    let db = Graphlib.Digraph.to_database g in
    let* marks = list_size (return n) bool in
    let db =
      List.fold_left
        (fun db (v, marked) ->
          if marked then
            Relalg.Database.add_fact "u"
              (Relalg.Tuple.singleton (Graphlib.Digraph.vertex_symbol v))
              db
          else db)
        db
        (List.mapi (fun v m -> (v, m)) marks)
    in
    return db)

let print_case (p, db) =
  Printf.sprintf "program:\n%s\ndatabase:\n%s"
    (Datalog.Pretty.program_to_string p)
    (Relalg.Database.to_string db)

let arb_case =
  QCheck.make (QCheck.Gen.pair gen_program gen_database) ~print:print_case

let positivise (p : Ast.program) =
  let fix_rule (r : Ast.rule) =
    let body =
      List.filter
        (function
          | Ast.Pos _ | Ast.Eq _ -> true
          | Ast.Neg _ | Ast.Neq _ -> false)
        r.body
    in
    let body =
      if List.exists (function Ast.Pos _ -> true | _ -> false) body then body
      else Ast.Pos (Ast.atom "e" [ Ast.Var "X"; Ast.Var "Y" ]) :: body
    in
    { r with Ast.body }
  in
  Ast.program (List.map fix_rule p.Ast.rules)
