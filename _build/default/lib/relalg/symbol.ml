type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 1024

let names : string array ref = ref (Array.make 1024 "")

let next = ref 0

let grow () =
  let old = !names in
  let bigger = Array.make (2 * Array.length old) "" in
  Array.blit old 0 bigger 0 (Array.length old);
  names := bigger

let intern s =
  match Hashtbl.find_opt table s with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    if id >= Array.length !names then grow ();
    !names.(id) <- s;
    Hashtbl.add table s id;
    id

let of_int n = intern (string_of_int n)

let name id = !names.(id)

let to_int id = id

let unsafe_of_id id = id

let count () = !next

let compare = Int.compare

let equal = Int.equal

let hash = Hashtbl.hash

let pp ppf id = Format.pp_print_string ppf (name id)

let fresh_counter = ref 0

let fresh prefix =
  let rec try_next () =
    incr fresh_counter;
    let candidate = Printf.sprintf "%s#%d" prefix !fresh_counter in
    if Hashtbl.mem table candidate then try_next () else intern candidate
  in
  try_next ()
