module SymSet = Set.Make (Symbol)
module SMap = Map.Make (String)

type t = {
  universe : SymSet.t;
  relations : Relation.t SMap.t;
}

let create ~universe =
  { universe = SymSet.of_list universe; relations = SMap.empty }

let create_strings names = create ~universe:(List.map Symbol.intern names)

let create_ints n =
  create ~universe:(List.init n Symbol.of_int)

let universe db = SymSet.elements db.universe

let universe_size db = SymSet.cardinal db.universe

let in_universe s db = SymSet.mem s db.universe

let add_universe syms db =
  { db with universe = SymSet.union db.universe (SymSet.of_list syms) }

let tuple_in_universe db t =
  List.for_all (fun s -> SymSet.mem s db.universe) (Tuple.to_list t)

let set_relation name r db =
  Relation.iter
    (fun t ->
      if not (tuple_in_universe db t) then
        invalid_arg
          (Printf.sprintf
             "Database.set_relation: tuple %s of %s uses a constant outside \
              the universe"
             (Tuple.to_string t) name))
    r;
  { db with relations = SMap.add name r db.relations }

let relation name db = SMap.find_opt name db.relations

let relation_or_empty ~arity name db =
  match relation name db with
  | Some r -> r
  | None -> Relation.empty arity

let add_fact name t db =
  if not (tuple_in_universe db t) then
    invalid_arg
      (Printf.sprintf
         "Database.add_fact: tuple %s of %s uses a constant outside the \
          universe"
         (Tuple.to_string t) name);
  let r = relation_or_empty ~arity:(Tuple.arity t) name db in
  { db with relations = SMap.add name (Relation.add t r) db.relations }

let relations db = SMap.bindings db.relations

let schema db =
  SMap.fold (fun n r s -> Schema.add n (Relation.arity r) s) db.relations
    Schema.empty

let mem_fact name t db =
  match relation name db with
  | Some r -> Relation.arity r = Tuple.arity t && Relation.mem t r
  | None -> false

let remove_relation name db =
  { db with relations = SMap.remove name db.relations }

let restrict names db =
  let wanted = List.sort_uniq String.compare names in
  let relations = SMap.filter (fun n _ -> List.mem n wanted) db.relations in
  { db with relations }

let merge d1 d2 =
  let universe = SymSet.union d1.universe d2.universe in
  let relations =
    SMap.union
      (fun _name r1 r2 ->
        if Relation.arity r1 <> Relation.arity r2 then
          invalid_arg "Database.merge: conflicting arities"
        else Some (Relation.union r1 r2))
      d1.relations d2.relations
  in
  { universe; relations }

let equal d1 d2 =
  SymSet.equal d1.universe d2.universe
  && SMap.equal Relation.equal d1.relations d2.relations

let pp ppf db =
  Format.fprintf ppf "@[<v>universe: {%a}@,%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Symbol.pp)
    (universe db)
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf (n, r) -> Format.fprintf ppf "%s = %a" n Relation.pp r))
    (relations db)

let to_string db = Format.asprintf "%a" pp db

let of_facts ~universe facts =
  let db = create_strings universe in
  let db =
    add_universe
      (List.concat_map (fun (_, args) -> List.map Symbol.intern args) facts)
      db
  in
  List.fold_left
    (fun db (name, args) -> add_fact name (Tuple.of_strings args) db)
    db facts

(* --- textual fact format ------------------------------------------------ *)

let strip_comments s =
  let buf = Buffer.create (String.length s) in
  let in_comment = ref false in
  String.iter
    (fun c ->
      if c = '%' then in_comment := true
      else if c = '\n' then begin
        in_comment := false;
        Buffer.add_char buf '\n'
      end
      else if not !in_comment then Buffer.add_char buf c)
    s;
  Buffer.contents buf

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let split_statements s =
  String.split_on_char '.' s
  |> List.map String.trim
  |> List.filter (fun stmt -> stmt <> "")

let parse_args inside =
  String.split_on_char ',' inside
  |> List.map String.trim

let valid_constant name =
  name <> "" && String.for_all is_ident_char name

exception Parse_error of string

let parse_statement db stmt =
  if String.length stmt >= 9 && String.sub stmt 0 9 = "#universe" then begin
    let rest = String.sub stmt 9 (String.length stmt - 9) in
    let names =
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char '\t')
      |> List.concat_map (String.split_on_char '\n')
      |> List.map String.trim
      |> List.filter (fun n -> n <> "")
    in
    List.iter
      (fun n ->
        if not (valid_constant n) then
          raise (Parse_error (Printf.sprintf "bad universe element %S" n)))
      names;
    add_universe (List.map Symbol.intern names) db
  end
  else
    match String.index_opt stmt '(' with
    | None ->
      (* A 0-ary fact: just a predicate name. *)
      if valid_constant stmt then add_fact stmt Tuple.empty db
      else raise (Parse_error (Printf.sprintf "malformed statement %S" stmt))
    | Some lp ->
      let name = String.trim (String.sub stmt 0 lp) in
      if not (valid_constant name) then
        raise (Parse_error (Printf.sprintf "bad predicate name %S" name));
      if stmt.[String.length stmt - 1] <> ')' then
        raise (Parse_error (Printf.sprintf "missing ')' in %S" stmt));
      let inside = String.sub stmt (lp + 1) (String.length stmt - lp - 2) in
      let args = parse_args inside in
      List.iter
        (fun a ->
          if not (valid_constant a) then
            raise
              (Parse_error (Printf.sprintf "bad constant %S in %S" a stmt)))
        args;
      let db = add_universe (List.map Symbol.intern args) db in
      add_fact name (Tuple.of_strings args) db

let parse text =
  let text = strip_comments text in
  let statements = split_statements text in
  try
    Ok
      (List.fold_left
         (fun db stmt -> parse_statement db stmt)
         (create ~universe:[])
         statements)
  with Parse_error msg -> Error msg

let parse_exn text =
  match parse text with
  | Ok db -> db
  | Error msg -> failwith ("Database.parse: " ^ msg)
