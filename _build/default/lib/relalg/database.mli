(** Finite databases.

    A database D = (A, R1, ..., Rl) is a finite universe [A] of constants
    together with named relations over [A].  The universe is explicit and may
    be larger than the active domain of the stored facts: the paper's
    constructions (the toggle rule, the {0,1} domain of Theorem 4) quantify
    over the whole universe. *)

type t

val create : universe:Symbol.t list -> t
(** A database with the given universe (duplicates removed) and no
    relations. *)

val create_strings : string list -> t
(** Universe given by constant names. *)

val create_ints : int -> t
(** [create_ints n] has universe [{0, ..., n-1}] (interned decimals). *)

val universe : t -> Symbol.t list
(** Sorted, duplicate-free. *)

val universe_size : t -> int

val in_universe : Symbol.t -> t -> bool

val add_universe : Symbol.t list -> t -> t
(** Enlarges the universe. *)

val set_relation : string -> Relation.t -> t -> t
(** [set_relation name r db] binds [name] to [r], replacing any previous
    binding.
    @raise Invalid_argument if some tuple of [r] uses a constant outside the
    universe. *)

val add_fact : string -> Tuple.t -> t -> t
(** Inserts one tuple, creating the relation if absent (arity taken from the
    tuple).  Constants outside the universe are rejected. *)

val relation : string -> t -> Relation.t option

val relation_or_empty : arity:int -> string -> t -> Relation.t
(** The named relation, or the empty relation of the given arity when the
    name is unbound. *)

val relations : t -> (string * Relation.t) list
(** Sorted by name. *)

val schema : t -> Schema.t

val mem_fact : string -> Tuple.t -> t -> bool

val remove_relation : string -> t -> t

val restrict : string list -> t -> t
(** Keeps only the named relations (universe unchanged). *)

val merge : t -> t -> t
(** Union of universes and of relations; a relation present in both databases
    must have the same arity on both sides and the tuples are unioned. *)

val equal : t -> t -> bool
(** Same universe and same relations (missing relation = empty relation of
    any arity is {e not} assumed: names must match). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_facts :
  universe:string list -> (string * string list) list -> t
(** [of_facts ~universe facts] interns everything and builds the database;
    universe is extended with any constant appearing in the facts. *)

val parse : string -> (t, string) result
(** Parses the textual fact format:

    {v
    % comment lines start with '%'
    #universe a b c.        (declares extra universe elements)
    edge(a, b).             (a fact)
    v}

    Constants are identifiers or integers.  Returns [Error msg] with a
    1-based line number on malformed input. *)

val parse_exn : string -> t
(** @raise Failure on malformed input. *)
