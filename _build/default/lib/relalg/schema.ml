module SMap = Map.Make (String)

type t = int SMap.t

let empty = SMap.empty

let add name arity schema =
  match SMap.find_opt name schema with
  | Some a when a <> arity ->
    invalid_arg
      (Printf.sprintf "Schema.add: %s declared with arity %d, then %d" name a
         arity)
  | _ -> SMap.add name arity schema

let of_list l = List.fold_left (fun s (n, a) -> add n a s) empty l

let to_list s = SMap.bindings s

let arity name s = SMap.find_opt name s

let arity_exn name s =
  match SMap.find_opt name s with
  | Some a -> a
  | None -> raise Not_found

let mem = SMap.mem

let names s = List.map fst (SMap.bindings s)

let union s1 s2 = SMap.fold add s2 s1

let equal = SMap.equal Int.equal

let pp ppf s =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (n, a) -> Format.fprintf ppf "%s/%d" n a))
    (to_list s)
