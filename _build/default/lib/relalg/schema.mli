(** Relational schemas (vocabularies).

    A schema is a finite map from predicate names to arities.  In the paper's
    terminology this is the vocabulary sigma = (R1, ..., Rl) of database
    relation symbols; we also use schemas for the nondatabase (IDB) symbols
    of a program. *)

type t

val empty : t

val add : string -> int -> t -> t
(** [add name arity schema] declares a predicate.
    @raise Invalid_argument if [name] is already declared with a different
    arity. *)

val of_list : (string * int) list -> t

val to_list : t -> (string * int) list
(** Sorted by predicate name. *)

val arity : string -> t -> int option

val arity_exn : string -> t -> int
(** @raise Not_found if the predicate is not declared. *)

val mem : string -> t -> bool

val names : t -> string list

val union : t -> t -> t
(** @raise Invalid_argument on conflicting arities. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
