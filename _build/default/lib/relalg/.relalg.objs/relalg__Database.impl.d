lib/relalg/database.ml: Buffer Format List Map Printf Relation Schema Set String Symbol Tuple
