lib/relalg/tuple.ml: Array Format Int List Symbol
