lib/relalg/schema.ml: Format Int List Map Printf String
