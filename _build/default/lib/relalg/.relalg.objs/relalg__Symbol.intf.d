lib/relalg/symbol.mli: Format
