lib/relalg/symbol.ml: Array Format Hashtbl Int Printf
