lib/relalg/tuple.mli: Format Symbol
