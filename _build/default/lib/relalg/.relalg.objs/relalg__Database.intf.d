lib/relalg/database.mli: Format Relation Schema Symbol Tuple
