lib/relalg/relation.mli: Format Symbol Tuple
