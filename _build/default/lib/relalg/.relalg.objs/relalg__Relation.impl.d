lib/relalg/relation.ml: Array Format Int List Printf Set Symbol Tuple
