lib/fixpoint/brute.mli: Evallib
