lib/fixpoint/encode.mli: Evallib Satlib
