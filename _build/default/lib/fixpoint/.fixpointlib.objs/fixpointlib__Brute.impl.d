lib/fixpoint/brute.ml: Array Evallib List Printf
