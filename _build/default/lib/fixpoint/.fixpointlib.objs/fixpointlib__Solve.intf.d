lib/fixpoint/solve.mli: Datalog Evallib Relalg
