lib/fixpoint/solve.ml: Array Datalog Encode Evallib List Relalg Satlib
