lib/fixpoint/stable.ml: Evallib List Relalg Solve
