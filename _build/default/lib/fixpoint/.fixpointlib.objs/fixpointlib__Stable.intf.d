lib/fixpoint/stable.mli: Evallib Solve
