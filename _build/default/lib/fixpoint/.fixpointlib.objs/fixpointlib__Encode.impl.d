lib/fixpoint/encode.ml: Array Evallib List Map Satlib
