(** SAT encoding of the fixpoint condition Theta(S) = S.

    One propositional variable per derivable ground atom, plus one auxiliary
    variable per ground rule instance:

    - instance variable b {e iff} all its positive subgoals hold and no
      negated one does;
    - atom variable p {e iff} some instance with head p fires.

    Models of the CNF restricted to the atom variables are exactly the
    fixpoints of (pi, D) — the constructive heart of "existence of
    fixpoints is in NP" (Section 3), run in reverse as a decision
    procedure. *)

type t

val build : Evallib.Ground.t -> t

val cnf : t -> Satlib.Cnf.t

val atom_variables : t -> int list
(** The projection set: variables standing for ground atoms (instance
    auxiliaries excluded). *)

val var_of_atom : t -> Evallib.Ground.gatom -> int
(** @raise Not_found for an atom outside the grounding. *)

val idb_of_model : t -> bool array -> Evallib.Idb.t
(** Reads a solver model back into an IDB valuation. *)

val idb_of_true_vars : t -> int list -> Evallib.Idb.t
(** Valuation containing the atoms of the listed variables. *)
