(** Stable models (Gelfond-Lifschitz), for comparison with the paper's
    fixpoint semantics.

    A fixpoint of the operator Theta is precisely a {e supported} model of
    the program (every fact is the head of a rule whose body it satisfies —
    the Clark-completion reading).  The later answer-set literature
    strengthens support to {e stability}: S is stable when S is the least
    fixpoint of the reduct P{^ S}, the positive program obtained by
    deleting the rules with a negated atom inside S and erasing the
    remaining negative literals.

    Every stable model is a fixpoint of Theta; the converse fails — for
    the self-supporting program [p :- p] both {} and {p} are fixpoints but
    only {} is stable.  On the paper's program pi_1 the two notions
    coincide (its only positive subgoals are EDB atoms), which is why the
    Section 2 census can equally be read as a census of kernels.  This
    module decides stability on the grounding and enumerates stable models
    by filtering the SAT-enumerated fixpoints — sound and complete because
    stable implies supported. *)

val reduct_least_fixpoint :
  Evallib.Ground.t -> Evallib.Idb.t -> Evallib.Idb.t
(** [reduct_least_fixpoint g s]: the least fixpoint of the
    Gelfond-Lifschitz reduct of the ground program with respect to [s]. *)

val is_stable : Evallib.Ground.t -> Evallib.Idb.t -> bool
(** [is_stable g s] iff [s] equals {!reduct_least_fixpoint}[ g s]. *)

val stable_models :
  ?limit:int -> Solve.t -> Evallib.Idb.t list
(** All stable models (up to [limit]), obtained by filtering the supported
    models (= fixpoints of Theta) for stability. *)

val has_stable_model : Solve.t -> bool

val count_stable : ?limit:int -> Solve.t -> int
