module Ground = Evallib.Ground
module Idb = Evallib.Idb

let fold_fixpoints f init ?limit g =
  let atoms = Array.of_list (Ground.atoms g) in
  let n = Array.length atoms in
  if n > 24 then
    invalid_arg
      (Printf.sprintf
         "Brute.fold_fixpoints: %d ground atoms is too many for exhaustive \
          search"
         n);
  let acc = ref init in
  let found = ref 0 in
  let capped () =
    match limit with
    | Some l -> !found >= l
    | None -> false
  in
  let mask = ref 0 in
  let total = 1 lsl n in
  while !mask < total && not (capped ()) do
    let subset =
      List.filteri (fun i _ -> (!mask lsr i) land 1 = 1) (Array.to_list atoms)
    in
    let s = Ground.to_idb g subset in
    if Idb.equal (Ground.apply g s) s then begin
      acc := f !acc s;
      incr found
    end;
    incr mask
  done;
  !acc

let all_fixpoints ?limit g =
  List.rev (fold_fixpoints (fun acc s -> s :: acc) [] ?limit g)

let count g = fold_fixpoints (fun acc _ -> acc + 1) 0 g

let exists g = all_fixpoints ~limit:1 g <> []

let has_unique g = List.length (all_fixpoints ~limit:2 g) = 1

let least g =
  match all_fixpoints g with
  | [] -> None
  | first :: rest ->
    let intersection = List.fold_left Idb.inter first rest in
    if Idb.equal (Ground.apply g intersection) intersection then
      Some intersection
    else None

let minimal_fixpoints g =
  let fps = all_fixpoints g in
  List.filter
    (fun s ->
      not
        (List.exists (fun s' -> (not (Idb.equal s s')) && Idb.subset s' s) fps))
    fps
