module Ground = Evallib.Ground
module Idb = Evallib.Idb

let holds idb (a : Ground.gatom) =
  Idb.mem idb a.Ground.pred
  && Relalg.Relation.mem a.Ground.tuple (Idb.get idb a.Ground.pred)

let reduct_least_fixpoint g s =
  (* Keep the instances whose negative subgoals all fail in [s]; their
     positive parts form a definite program whose least fixpoint we compute
     by iteration. *)
  let kept =
    List.filter
      (fun (gr : Ground.grule) -> not (List.exists (holds s) gr.Ground.neg))
      (Ground.rules g)
  in
  let schema = Idb.schema (Ground.to_idb g []) in
  let rec iterate current =
    let next =
      List.fold_left
        (fun acc (gr : Ground.grule) ->
          if List.for_all (holds current) gr.Ground.pos then
            Idb.add_fact acc gr.Ground.head.Ground.pred
              gr.Ground.head.Ground.tuple
          else acc)
        (Idb.empty schema) kept
    in
    let next = Idb.union current next in
    if Idb.equal next current then current else iterate next
  in
  iterate (Idb.empty schema)

let is_stable g s = Idb.equal (reduct_least_fixpoint g s) s

let stable_models ?limit solver =
  (* Stable implies supported, and the supported models are exactly the
     SAT-enumerated fixpoints; filter those for stability.  The limit
     applies to the stable models returned. *)
  let g = Solve.ground solver in
  let stable = List.filter (is_stable g) (Solve.enumerate solver) in
  match limit with
  | None -> stable
  | Some l -> List.filteri (fun i _ -> i < l) stable

let has_stable_model solver = stable_models ~limit:1 solver <> []

let count_stable ?limit solver = List.length (stable_models ?limit solver)
