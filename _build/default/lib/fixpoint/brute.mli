(** Exhaustive fixpoint search over the ground atom space.

    Every fixpoint of (pi, D) is a subset of the derivable ground atoms
    (Theta must re-derive each of its tuples), so enumerating the 2{^ n}
    subsets of [Ground.atoms] and testing Theta(S) = S finds them all.
    This is the ground truth against which the SAT-based searcher of
    {!Solve} is validated, and the "guess and check" upper-bound algorithm
    the paper mentions at the start of Section 3. *)

val all_fixpoints : ?limit:int -> Evallib.Ground.t -> Evallib.Idb.t list
(** All fixpoints (up to [limit] when given), in subset-enumeration order.
    Exponential in [Ground.atom_count]; refuses more than 24 atoms. *)

val count : Evallib.Ground.t -> int

val exists : Evallib.Ground.t -> bool

val has_unique : Evallib.Ground.t -> bool

val least : Evallib.Ground.t -> Evallib.Idb.t option
(** The least fixpoint if one exists: the pointwise intersection of all
    fixpoints when that intersection is itself a fixpoint (Theorem 3's
    characterisation), [None] otherwise. *)

val minimal_fixpoints : Evallib.Ground.t -> Evallib.Idb.t list
(** The fixpoints that are minimal under pointwise inclusion. *)
