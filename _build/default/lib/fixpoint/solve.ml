module Ground = Evallib.Ground
module Idb = Evallib.Idb
module Cnf = Satlib.Cnf
module Solver = Satlib.Solver
module Enumerate = Satlib.Enumerate

type t = {
  program : Datalog.Ast.program;
  db : Relalg.Database.t;
  ground : Ground.t;
  encoding : Encode.t;
}

let prepare program db =
  let ground = Ground.ground program db in
  { program; db; ground; encoding = Encode.build ground }

let ground t = t.ground

let atom_count t = Ground.atom_count t.ground

let exists t = Solver.is_satisfiable (Encode.cnf t.encoding)

let find t =
  match Solver.solve (Encode.cnf t.encoding) with
  | Solver.Unsat -> None
  | Solver.Sat model -> Some (Encode.idb_of_model t.encoding model)

let enumerate ?limit t =
  Enumerate.models
    ~projection:(Encode.atom_variables t.encoding)
    ?limit (Encode.cnf t.encoding)
  |> List.map (Encode.idb_of_model t.encoding)

let count ?limit t = List.length (enumerate ?limit t)

let count_exact ?(budget = 2_000_000) t =
  Satlib.Count.count_limited ~budget (Encode.cnf t.encoding)

let has_unique t =
  Enumerate.is_unique
    ~projection:(Encode.atom_variables t.encoding)
    (Encode.cnf t.encoding)

let intersection t =
  let cnf = Encode.cnf t.encoding in
  match Solver.solve cnf with
  | Solver.Unsat -> None
  | Solver.Sat _ ->
    let forced =
      Enumerate.forced_true cnf (Encode.atom_variables t.encoding)
    in
    Some (Encode.idb_of_true_vars t.encoding forced)

let least t =
  match intersection t with
  | None -> None
  | Some inter ->
    if Idb.equal (Ground.apply t.ground inter) inter then Some inter
    else None

let minimal t =
  let session = Solver.session (Encode.cnf t.encoding) in
  let atom_vars = Encode.atom_variables t.encoding in
  match Solver.solve_assuming session [] with
  | Solver.Unsat -> None
  | Solver.Sat model ->
    (* Shrink: demand a model strictly below the current one until UNSAT.
       The narrowing clauses accumulate monotonically, so one incremental
       session serves the whole descent. *)
    let rec shrink model =
      let true_vars = List.filter (fun v -> model.(v)) atom_vars in
      let false_vars = List.filter (fun v -> not model.(v)) atom_vars in
      List.iter (fun v -> Solver.add_clause session [ -v ]) false_vars;
      Solver.add_clause session (List.map (fun v -> -v) true_vars);
      match Solver.solve_assuming session [] with
      | Solver.Unsat -> model
      | Solver.Sat smaller -> shrink smaller
    in
    Some (Encode.idb_of_model t.encoding (shrink model))
