open Datalog.Dsl
module Cnf = Satlib.Cnf
module Database = Relalg.Database
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple
module Symbol = Relalg.Symbol
module Idb = Evallib.Idb

let program =
  prog
    [
      ("s", [ v "X" ]) <-- [ pos "s" [ v "X" ] ];
      ("q", [ v "X" ]) <-- [ pos "v" [ v "X" ] ];
      ("q", [ v "X" ])
      <-- [ neg "s" [ v "X" ]; pos "p" [ v "X"; v "Y" ]; pos "s" [ v "Y" ] ];
      ("q", [ v "X" ])
      <-- [ neg "s" [ v "X" ]; pos "n" [ v "X"; v "Y" ]; neg "s" [ v "Y" ] ];
      Toggle.guarded ~guard:"q" ~guard_arity:1 ();
    ]

let var_name i = Printf.sprintf "x%d" i

let clause_name j = Printf.sprintf "c%d" j

let var_sym i = Symbol.intern (var_name i)

let clause_sym j = Symbol.intern (clause_name j)

let database_of_cnf cnf =
  let nv = Cnf.num_vars cnf in
  let clauses = Cnf.clauses cnf in
  let universe =
    List.init nv (fun i -> var_sym (i + 1))
    @ List.mapi (fun j _ -> clause_sym j) clauses
  in
  let db = Database.create ~universe in
  let db =
    List.fold_left
      (fun db i -> Database.add_fact "v" (Tuple.singleton (var_sym i)) db)
      db
      (List.init nv (fun i -> i + 1))
  in
  let db =
    (* Make sure p and n exist even when empty, so the schema is stable. *)
    Database.set_relation "p" (Relation.empty 2)
      (Database.set_relation "n" (Relation.empty 2) db)
  in
  List.fold_left
    (fun db (j, clause) ->
      List.fold_left
        (fun db lit ->
          let rel = if lit > 0 then "p" else "n" in
          Database.add_fact rel
            (Tuple.pair (clause_sym j) (var_sym (abs lit)))
            db)
        db clause)
    db
    (List.mapi (fun j c -> (j, c)) clauses)

let cnf_of_database db =
  let get name = Database.relation_or_empty ~arity:2 name db in
  let vrel = Database.relation_or_empty ~arity:1 "v" db in
  let universe = Database.universe db in
  let variables =
    List.filter (fun s -> Relation.mem (Tuple.singleton s) vrel) universe
  in
  let clauses =
    List.filter
      (fun s -> not (Relation.mem (Tuple.singleton s) vrel))
      universe
  in
  let var_index =
    List.mapi (fun i s -> (s, i + 1)) variables
  in
  let check_edges name =
    Relation.fold
      (fun t acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let c = Tuple.get t 0 and x = Tuple.get t 1 in
          if Relation.mem (Tuple.singleton c) vrel then
            Error
              (Printf.sprintf "%s(%s, %s): first component is a variable"
                 name (Symbol.name c) (Symbol.name x))
          else if not (Relation.mem (Tuple.singleton x) vrel) then
            Error
              (Printf.sprintf "%s(%s, %s): second component is not a variable"
                 name (Symbol.name c) (Symbol.name x))
          else Ok ())
      (get name) (Ok ())
  in
  match (check_edges "p", check_edges "n") with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
    let lits_of_clause c =
      let collect rel sign =
        Relation.fold
          (fun t acc ->
            if Symbol.equal (Tuple.get t 0) c then
              (sign * List.assoc (Tuple.get t 1) var_index) :: acc
            else acc)
          (get rel) []
      in
      collect "p" 1 @ collect "n" (-1)
    in
    Ok
      (Cnf.of_list (List.length variables) (List.map lits_of_clause clauses))

let assignment_of_fixpoint cnf fp =
  let nv = Cnf.num_vars cnf in
  let s =
    if Idb.mem fp "s" then Idb.get fp "s" else Relation.empty 1
  in
  Array.init (nv + 1) (fun i ->
      i > 0 && Relation.mem (Tuple.singleton (var_sym i)) s)

let fixpoint_of_assignment cnf assignment =
  let nv = Cnf.num_vars cnf in
  let db = database_of_cnf cnf in
  let s =
    List.fold_left
      (fun r i ->
        if assignment.(i) then Relation.add (Tuple.singleton (var_sym i)) r
        else r)
      (Relation.empty 1)
      (List.init nv (fun i -> i + 1))
  in
  let q = Relation.full (Database.universe db) 1 in
  let idb = Idb.of_program program in
  Idb.set (Idb.set (Idb.set idb "s" s) "q" q) "t" (Relation.empty 1)

let solver cnf = Fixpointlib.Solve.prepare program (database_of_cnf cnf)
