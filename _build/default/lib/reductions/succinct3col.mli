(** Theorem 4: SUCCINCT 3-COLORING as fixpoint existence on domain {0,1}.

    The input graph lives on {0,1}{^ n} and is presented by a Boolean
    circuit with 2n inputs.  The construction makes every gate g{_i} of the
    circuit a 2n-ary IDB relation [gi(x-bar, y-bar)] holding the input
    pairs that set the gate to 1:

    - AND gate:  [gi(..) :- gb(..), gc(..)]
    - OR gate:   [gi(..) :- gb(..)]  and  [gi(..) :- gc(..)]
    - NOT gate:  [gi(..) :- !gb(..)]
    - j-th IN gate: the fact rule [gi(Z1, ..., 1, ..., Z2n).] with the
      constant 1 at position j — its value is its own input bit.

    The output gate doubles as the edge relation [e] of a vectorised
    pi_COL (colors and penalties take n-tuples of bits).  The resulting
    program — over a database that is nothing but the two-element universe
    {0,1} — has a fixpoint iff the presented graph is 3-colorable.  Note
    how the construction shifts the blow-up from the data to the program:
    this is the expression-complexity jump from NP to NEXP. *)

type t = {
  program : Datalog.Ast.program;
  bits : int;
  edge_pred : string;  (** The output gate's predicate, aliased to [e]. *)
}

val compile : Circuitlib.Succinct.t -> t
(** The program pi_SC for a succinctly presented graph. *)

val database : unit -> Relalg.Database.t
(** The fixed database: universe {0, 1}, no relations. *)

val solver : t -> Fixpointlib.Solve.t

val has_fixpoint : t -> bool
(** Decides SUCCINCT 3-COLORING via the fixpoint encoding. *)

val node_tuple : bits:int -> int -> Relalg.Tuple.t
(** The n-tuple of bit constants encoding a node (bit 0 first, matching
    [Circuitlib.Succinct]). *)
