open Datalog.Dsl
module Relation = Relalg.Relation
module Tuple = Relalg.Tuple

let copy p = (p, [ v "X" ]) <-- [ pos p [ v "X" ] ]

let monochromatic color =
  ("p", [ v "X" ])
  <-- [ pos "e" [ v "X"; v "Y" ]; pos color [ v "X" ]; pos color [ v "Y" ] ]

let two_colors c1 c2 = ("p", [ v "X" ]) <-- [ pos c1 [ v "X" ]; pos c2 [ v "X" ] ]

let program =
  prog
    [
      copy "r";
      copy "b";
      copy "g";
      monochromatic "r";
      monochromatic "b";
      monochromatic "g";
      two_colors "g" "b";
      two_colors "b" "r";
      two_colors "r" "g";
      ("p", [ v "X" ]) <-- [ neg "r" [ v "X" ]; neg "b" [ v "X" ]; neg "g" [ v "X" ] ];
      ("t", [ v "Z" ]) <-- [ pos "p" [ v "X" ]; neg "t" [ v "W" ] ];
    ]

let solver g =
  Fixpointlib.Solve.prepare program (Graphlib.Digraph.to_database g)

let has_fixpoint g = Fixpointlib.Solve.exists (solver g)

let coloring_of_fixpoint g fp =
  let module Idb = Evallib.Idb in
  let has color vertex =
    Idb.mem fp color
    && Relation.mem
         (Tuple.singleton (Graphlib.Digraph.vertex_symbol vertex))
         (Idb.get fp color)
  in
  Array.init (Graphlib.Digraph.vertex_count g) (fun vertex ->
      if has "r" vertex then 0
      else if has "b" vertex then 1
      else if has "g" vertex then 2
      else
        invalid_arg
          (Printf.sprintf "Coloring.coloring_of_fixpoint: vertex %d uncolored"
             vertex))
