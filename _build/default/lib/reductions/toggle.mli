(** The toggle gadget.

    The rule [T(z) <- not T(w)] "toggles": it puts every constant in T iff
    some constant is outside T, so it has no fixpoint on a non-empty
    universe.  Guarded by a negated predicate — [T(z) <- not Q(u-bar), not
    T(w)] — it instead has the empty T as unique fixpoint iff the
    complement of Q is empty.  This is the engine of every hardness proof
    in Section 3. *)

val bare : ?t:string -> unit -> Datalog.Ast.rule
(** [t(Z) :- !t(W)].  Default predicate name ["t"]. *)

val guarded : ?t:string -> guard:string -> guard_arity:int -> unit -> Datalog.Ast.rule
(** [t(Z) :- !guard(U1, ..., Uk), !t(W)] — fires unless [guard] covers the
    whole k-th power of the universe. *)
